file(REMOVE_RECURSE
  "CMakeFiles/nfs_protocol_test.dir/nfs_protocol_test.cpp.o"
  "CMakeFiles/nfs_protocol_test.dir/nfs_protocol_test.cpp.o.d"
  "nfs_protocol_test"
  "nfs_protocol_test.pdb"
  "nfs_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfs_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
