# Empty dependencies file for nfs_protocol_test.
# This may be replaced when dependencies are built.
