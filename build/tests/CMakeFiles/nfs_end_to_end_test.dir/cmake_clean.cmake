file(REMOVE_RECURSE
  "CMakeFiles/nfs_end_to_end_test.dir/nfs_end_to_end_test.cpp.o"
  "CMakeFiles/nfs_end_to_end_test.dir/nfs_end_to_end_test.cpp.o.d"
  "nfs_end_to_end_test"
  "nfs_end_to_end_test.pdb"
  "nfs_end_to_end_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfs_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
