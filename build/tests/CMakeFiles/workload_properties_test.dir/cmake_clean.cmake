file(REMOVE_RECURSE
  "CMakeFiles/workload_properties_test.dir/workload_properties_test.cpp.o"
  "CMakeFiles/workload_properties_test.dir/workload_properties_test.cpp.o.d"
  "workload_properties_test"
  "workload_properties_test.pdb"
  "workload_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
