# Empty dependencies file for workload_properties_test.
# This may be replaced when dependencies are built.
