file(REMOVE_RECURSE
  "CMakeFiles/lfs_object_store_test.dir/lfs_object_store_test.cpp.o"
  "CMakeFiles/lfs_object_store_test.dir/lfs_object_store_test.cpp.o.d"
  "lfs_object_store_test"
  "lfs_object_store_test.pdb"
  "lfs_object_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfs_object_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
