file(REMOVE_RECURSE
  "CMakeFiles/rpc_fabric_test.dir/rpc_fabric_test.cpp.o"
  "CMakeFiles/rpc_fabric_test.dir/rpc_fabric_test.cpp.o.d"
  "rpc_fabric_test"
  "rpc_fabric_test.pdb"
  "rpc_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
