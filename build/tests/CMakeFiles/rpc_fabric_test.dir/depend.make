# Empty dependencies file for rpc_fabric_test.
# This may be replaced when dependencies are built.
