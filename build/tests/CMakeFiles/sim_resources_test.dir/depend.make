# Empty dependencies file for sim_resources_test.
# This may be replaced when dependencies are built.
