file(REMOVE_RECURSE
  "CMakeFiles/sim_resources_test.dir/sim_resources_test.cpp.o"
  "CMakeFiles/sim_resources_test.dir/sim_resources_test.cpp.o.d"
  "sim_resources_test"
  "sim_resources_test.pdb"
  "sim_resources_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_resources_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
