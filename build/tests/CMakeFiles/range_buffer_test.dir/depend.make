# Empty dependencies file for range_buffer_test.
# This may be replaced when dependencies are built.
