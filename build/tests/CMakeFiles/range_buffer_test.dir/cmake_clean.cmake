file(REMOVE_RECURSE
  "CMakeFiles/range_buffer_test.dir/range_buffer_test.cpp.o"
  "CMakeFiles/range_buffer_test.dir/range_buffer_test.cpp.o.d"
  "range_buffer_test"
  "range_buffer_test.pdb"
  "range_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
