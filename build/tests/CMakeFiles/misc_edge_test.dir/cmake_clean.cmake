file(REMOVE_RECURSE
  "CMakeFiles/misc_edge_test.dir/misc_edge_test.cpp.o"
  "CMakeFiles/misc_edge_test.dir/misc_edge_test.cpp.o.d"
  "misc_edge_test"
  "misc_edge_test.pdb"
  "misc_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
