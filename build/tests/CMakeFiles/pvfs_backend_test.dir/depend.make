# Empty dependencies file for pvfs_backend_test.
# This may be replaced when dependencies are built.
