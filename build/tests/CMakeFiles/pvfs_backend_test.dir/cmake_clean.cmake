file(REMOVE_RECURSE
  "CMakeFiles/pvfs_backend_test.dir/pvfs_backend_test.cpp.o"
  "CMakeFiles/pvfs_backend_test.dir/pvfs_backend_test.cpp.o.d"
  "pvfs_backend_test"
  "pvfs_backend_test.pdb"
  "pvfs_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
