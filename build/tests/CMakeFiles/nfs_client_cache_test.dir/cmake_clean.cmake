file(REMOVE_RECURSE
  "CMakeFiles/nfs_client_cache_test.dir/nfs_client_cache_test.cpp.o"
  "CMakeFiles/nfs_client_cache_test.dir/nfs_client_cache_test.cpp.o.d"
  "nfs_client_cache_test"
  "nfs_client_cache_test.pdb"
  "nfs_client_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfs_client_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
