# Empty dependencies file for nfs_client_cache_test.
# This may be replaced when dependencies are built.
