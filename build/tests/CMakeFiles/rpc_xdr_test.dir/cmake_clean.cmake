file(REMOVE_RECURSE
  "CMakeFiles/rpc_xdr_test.dir/rpc_xdr_test.cpp.o"
  "CMakeFiles/rpc_xdr_test.dir/rpc_xdr_test.cpp.o.d"
  "rpc_xdr_test"
  "rpc_xdr_test.pdb"
  "rpc_xdr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_xdr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
