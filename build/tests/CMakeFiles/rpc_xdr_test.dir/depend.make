# Empty dependencies file for rpc_xdr_test.
# This may be replaced when dependencies are built.
