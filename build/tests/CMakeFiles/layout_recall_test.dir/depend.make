# Empty dependencies file for layout_recall_test.
# This may be replaced when dependencies are built.
