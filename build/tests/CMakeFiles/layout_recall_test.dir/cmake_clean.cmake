file(REMOVE_RECURSE
  "CMakeFiles/layout_recall_test.dir/layout_recall_test.cpp.o"
  "CMakeFiles/layout_recall_test.dir/layout_recall_test.cpp.o.d"
  "layout_recall_test"
  "layout_recall_test.pdb"
  "layout_recall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_recall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
