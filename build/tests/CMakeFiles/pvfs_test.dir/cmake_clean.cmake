file(REMOVE_RECURSE
  "CMakeFiles/pvfs_test.dir/pvfs_test.cpp.o"
  "CMakeFiles/pvfs_test.dir/pvfs_test.cpp.o.d"
  "pvfs_test"
  "pvfs_test.pdb"
  "pvfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
