# Empty compiler generated dependencies file for architecture_tour.
# This may be replaced when dependencies are built.
