file(REMOVE_RECURSE
  "CMakeFiles/architecture_tour.dir/architecture_tour.cpp.o"
  "CMakeFiles/architecture_tour.dir/architecture_tour.cpp.o.d"
  "architecture_tour"
  "architecture_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
