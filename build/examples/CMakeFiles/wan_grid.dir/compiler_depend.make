# Empty compiler generated dependencies file for wan_grid.
# This may be replaced when dependencies are built.
