file(REMOVE_RECURSE
  "CMakeFiles/wan_grid.dir/wan_grid.cpp.o"
  "CMakeFiles/wan_grid.dir/wan_grid.cpp.o.d"
  "wan_grid"
  "wan_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
