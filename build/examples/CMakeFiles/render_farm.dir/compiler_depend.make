# Empty compiler generated dependencies file for render_farm.
# This may be replaced when dependencies are built.
