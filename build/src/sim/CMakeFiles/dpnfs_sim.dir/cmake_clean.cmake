file(REMOVE_RECURSE
  "CMakeFiles/dpnfs_sim.dir/network.cpp.o"
  "CMakeFiles/dpnfs_sim.dir/network.cpp.o.d"
  "CMakeFiles/dpnfs_sim.dir/simulation.cpp.o"
  "CMakeFiles/dpnfs_sim.dir/simulation.cpp.o.d"
  "libdpnfs_sim.a"
  "libdpnfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
