file(REMOVE_RECURSE
  "libdpnfs_sim.a"
)
