# Empty compiler generated dependencies file for dpnfs_sim.
# This may be replaced when dependencies are built.
