# Empty dependencies file for dpnfs_util.
# This may be replaced when dependencies are built.
