file(REMOVE_RECURSE
  "libdpnfs_util.a"
)
