file(REMOVE_RECURSE
  "CMakeFiles/dpnfs_util.dir/bytes.cpp.o"
  "CMakeFiles/dpnfs_util.dir/bytes.cpp.o.d"
  "CMakeFiles/dpnfs_util.dir/format.cpp.o"
  "CMakeFiles/dpnfs_util.dir/format.cpp.o.d"
  "CMakeFiles/dpnfs_util.dir/log.cpp.o"
  "CMakeFiles/dpnfs_util.dir/log.cpp.o.d"
  "CMakeFiles/dpnfs_util.dir/range_buffer.cpp.o"
  "CMakeFiles/dpnfs_util.dir/range_buffer.cpp.o.d"
  "CMakeFiles/dpnfs_util.dir/stats.cpp.o"
  "CMakeFiles/dpnfs_util.dir/stats.cpp.o.d"
  "libdpnfs_util.a"
  "libdpnfs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnfs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
