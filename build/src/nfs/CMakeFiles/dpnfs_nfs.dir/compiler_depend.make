# Empty compiler generated dependencies file for dpnfs_nfs.
# This may be replaced when dependencies are built.
