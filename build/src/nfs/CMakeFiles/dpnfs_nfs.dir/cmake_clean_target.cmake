file(REMOVE_RECURSE
  "libdpnfs_nfs.a"
)
