file(REMOVE_RECURSE
  "CMakeFiles/dpnfs_nfs.dir/client.cpp.o"
  "CMakeFiles/dpnfs_nfs.dir/client.cpp.o.d"
  "CMakeFiles/dpnfs_nfs.dir/layout.cpp.o"
  "CMakeFiles/dpnfs_nfs.dir/layout.cpp.o.d"
  "CMakeFiles/dpnfs_nfs.dir/local_backend.cpp.o"
  "CMakeFiles/dpnfs_nfs.dir/local_backend.cpp.o.d"
  "CMakeFiles/dpnfs_nfs.dir/server.cpp.o"
  "CMakeFiles/dpnfs_nfs.dir/server.cpp.o.d"
  "CMakeFiles/dpnfs_nfs.dir/types.cpp.o"
  "CMakeFiles/dpnfs_nfs.dir/types.cpp.o.d"
  "libdpnfs_nfs.a"
  "libdpnfs_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnfs_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
