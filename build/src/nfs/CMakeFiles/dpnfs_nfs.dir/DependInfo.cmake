
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nfs/client.cpp" "src/nfs/CMakeFiles/dpnfs_nfs.dir/client.cpp.o" "gcc" "src/nfs/CMakeFiles/dpnfs_nfs.dir/client.cpp.o.d"
  "/root/repo/src/nfs/layout.cpp" "src/nfs/CMakeFiles/dpnfs_nfs.dir/layout.cpp.o" "gcc" "src/nfs/CMakeFiles/dpnfs_nfs.dir/layout.cpp.o.d"
  "/root/repo/src/nfs/local_backend.cpp" "src/nfs/CMakeFiles/dpnfs_nfs.dir/local_backend.cpp.o" "gcc" "src/nfs/CMakeFiles/dpnfs_nfs.dir/local_backend.cpp.o.d"
  "/root/repo/src/nfs/server.cpp" "src/nfs/CMakeFiles/dpnfs_nfs.dir/server.cpp.o" "gcc" "src/nfs/CMakeFiles/dpnfs_nfs.dir/server.cpp.o.d"
  "/root/repo/src/nfs/types.cpp" "src/nfs/CMakeFiles/dpnfs_nfs.dir/types.cpp.o" "gcc" "src/nfs/CMakeFiles/dpnfs_nfs.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lfs/CMakeFiles/dpnfs_lfs.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dpnfs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpnfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpnfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
