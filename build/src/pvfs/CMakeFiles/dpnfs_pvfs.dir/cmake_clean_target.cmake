file(REMOVE_RECURSE
  "libdpnfs_pvfs.a"
)
