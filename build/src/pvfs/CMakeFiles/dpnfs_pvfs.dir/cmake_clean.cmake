file(REMOVE_RECURSE
  "CMakeFiles/dpnfs_pvfs.dir/client.cpp.o"
  "CMakeFiles/dpnfs_pvfs.dir/client.cpp.o.d"
  "CMakeFiles/dpnfs_pvfs.dir/meta_server.cpp.o"
  "CMakeFiles/dpnfs_pvfs.dir/meta_server.cpp.o.d"
  "CMakeFiles/dpnfs_pvfs.dir/protocol.cpp.o"
  "CMakeFiles/dpnfs_pvfs.dir/protocol.cpp.o.d"
  "CMakeFiles/dpnfs_pvfs.dir/storage_server.cpp.o"
  "CMakeFiles/dpnfs_pvfs.dir/storage_server.cpp.o.d"
  "libdpnfs_pvfs.a"
  "libdpnfs_pvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnfs_pvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
