# Empty dependencies file for dpnfs_pvfs.
# This may be replaced when dependencies are built.
