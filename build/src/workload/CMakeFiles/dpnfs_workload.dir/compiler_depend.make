# Empty compiler generated dependencies file for dpnfs_workload.
# This may be replaced when dependencies are built.
