file(REMOVE_RECURSE
  "libdpnfs_workload.a"
)
