
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/atlas.cpp" "src/workload/CMakeFiles/dpnfs_workload.dir/atlas.cpp.o" "gcc" "src/workload/CMakeFiles/dpnfs_workload.dir/atlas.cpp.o.d"
  "/root/repo/src/workload/btio.cpp" "src/workload/CMakeFiles/dpnfs_workload.dir/btio.cpp.o" "gcc" "src/workload/CMakeFiles/dpnfs_workload.dir/btio.cpp.o.d"
  "/root/repo/src/workload/ior.cpp" "src/workload/CMakeFiles/dpnfs_workload.dir/ior.cpp.o" "gcc" "src/workload/CMakeFiles/dpnfs_workload.dir/ior.cpp.o.d"
  "/root/repo/src/workload/oltp.cpp" "src/workload/CMakeFiles/dpnfs_workload.dir/oltp.cpp.o" "gcc" "src/workload/CMakeFiles/dpnfs_workload.dir/oltp.cpp.o.d"
  "/root/repo/src/workload/postmark.cpp" "src/workload/CMakeFiles/dpnfs_workload.dir/postmark.cpp.o" "gcc" "src/workload/CMakeFiles/dpnfs_workload.dir/postmark.cpp.o.d"
  "/root/repo/src/workload/runner.cpp" "src/workload/CMakeFiles/dpnfs_workload.dir/runner.cpp.o" "gcc" "src/workload/CMakeFiles/dpnfs_workload.dir/runner.cpp.o.d"
  "/root/repo/src/workload/sshbuild.cpp" "src/workload/CMakeFiles/dpnfs_workload.dir/sshbuild.cpp.o" "gcc" "src/workload/CMakeFiles/dpnfs_workload.dir/sshbuild.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/dpnfs_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/dpnfs_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpnfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/dpnfs_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/pvfs/CMakeFiles/dpnfs_pvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/lfs/CMakeFiles/dpnfs_lfs.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dpnfs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpnfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpnfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
