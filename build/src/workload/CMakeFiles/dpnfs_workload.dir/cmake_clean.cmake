file(REMOVE_RECURSE
  "CMakeFiles/dpnfs_workload.dir/atlas.cpp.o"
  "CMakeFiles/dpnfs_workload.dir/atlas.cpp.o.d"
  "CMakeFiles/dpnfs_workload.dir/btio.cpp.o"
  "CMakeFiles/dpnfs_workload.dir/btio.cpp.o.d"
  "CMakeFiles/dpnfs_workload.dir/ior.cpp.o"
  "CMakeFiles/dpnfs_workload.dir/ior.cpp.o.d"
  "CMakeFiles/dpnfs_workload.dir/oltp.cpp.o"
  "CMakeFiles/dpnfs_workload.dir/oltp.cpp.o.d"
  "CMakeFiles/dpnfs_workload.dir/postmark.cpp.o"
  "CMakeFiles/dpnfs_workload.dir/postmark.cpp.o.d"
  "CMakeFiles/dpnfs_workload.dir/runner.cpp.o"
  "CMakeFiles/dpnfs_workload.dir/runner.cpp.o.d"
  "CMakeFiles/dpnfs_workload.dir/sshbuild.cpp.o"
  "CMakeFiles/dpnfs_workload.dir/sshbuild.cpp.o.d"
  "CMakeFiles/dpnfs_workload.dir/trace.cpp.o"
  "CMakeFiles/dpnfs_workload.dir/trace.cpp.o.d"
  "libdpnfs_workload.a"
  "libdpnfs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnfs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
