file(REMOVE_RECURSE
  "CMakeFiles/dpnfs_rpc.dir/fabric.cpp.o"
  "CMakeFiles/dpnfs_rpc.dir/fabric.cpp.o.d"
  "CMakeFiles/dpnfs_rpc.dir/xdr.cpp.o"
  "CMakeFiles/dpnfs_rpc.dir/xdr.cpp.o.d"
  "libdpnfs_rpc.a"
  "libdpnfs_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnfs_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
