# Empty dependencies file for dpnfs_rpc.
# This may be replaced when dependencies are built.
