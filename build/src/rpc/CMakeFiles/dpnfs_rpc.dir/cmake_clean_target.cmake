file(REMOVE_RECURSE
  "libdpnfs_rpc.a"
)
