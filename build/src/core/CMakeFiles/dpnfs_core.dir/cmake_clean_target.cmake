file(REMOVE_RECURSE
  "libdpnfs_core.a"
)
