
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adapters.cpp" "src/core/CMakeFiles/dpnfs_core.dir/adapters.cpp.o" "gcc" "src/core/CMakeFiles/dpnfs_core.dir/adapters.cpp.o.d"
  "/root/repo/src/core/aggregation_drivers.cpp" "src/core/CMakeFiles/dpnfs_core.dir/aggregation_drivers.cpp.o" "gcc" "src/core/CMakeFiles/dpnfs_core.dir/aggregation_drivers.cpp.o.d"
  "/root/repo/src/core/deployment.cpp" "src/core/CMakeFiles/dpnfs_core.dir/deployment.cpp.o" "gcc" "src/core/CMakeFiles/dpnfs_core.dir/deployment.cpp.o.d"
  "/root/repo/src/core/pvfs_backend.cpp" "src/core/CMakeFiles/dpnfs_core.dir/pvfs_backend.cpp.o" "gcc" "src/core/CMakeFiles/dpnfs_core.dir/pvfs_backend.cpp.o.d"
  "/root/repo/src/core/translator.cpp" "src/core/CMakeFiles/dpnfs_core.dir/translator.cpp.o" "gcc" "src/core/CMakeFiles/dpnfs_core.dir/translator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nfs/CMakeFiles/dpnfs_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/pvfs/CMakeFiles/dpnfs_pvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/lfs/CMakeFiles/dpnfs_lfs.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dpnfs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dpnfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpnfs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
