file(REMOVE_RECURSE
  "CMakeFiles/dpnfs_core.dir/adapters.cpp.o"
  "CMakeFiles/dpnfs_core.dir/adapters.cpp.o.d"
  "CMakeFiles/dpnfs_core.dir/aggregation_drivers.cpp.o"
  "CMakeFiles/dpnfs_core.dir/aggregation_drivers.cpp.o.d"
  "CMakeFiles/dpnfs_core.dir/deployment.cpp.o"
  "CMakeFiles/dpnfs_core.dir/deployment.cpp.o.d"
  "CMakeFiles/dpnfs_core.dir/pvfs_backend.cpp.o"
  "CMakeFiles/dpnfs_core.dir/pvfs_backend.cpp.o.d"
  "CMakeFiles/dpnfs_core.dir/translator.cpp.o"
  "CMakeFiles/dpnfs_core.dir/translator.cpp.o.d"
  "libdpnfs_core.a"
  "libdpnfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
