# Empty compiler generated dependencies file for dpnfs_core.
# This may be replaced when dependencies are built.
