file(REMOVE_RECURSE
  "CMakeFiles/dpnfs_lfs.dir/object_store.cpp.o"
  "CMakeFiles/dpnfs_lfs.dir/object_store.cpp.o.d"
  "libdpnfs_lfs.a"
  "libdpnfs_lfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpnfs_lfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
