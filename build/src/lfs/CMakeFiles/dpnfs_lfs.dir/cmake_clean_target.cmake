file(REMOVE_RECURSE
  "libdpnfs_lfs.a"
)
