# Empty compiler generated dependencies file for dpnfs_lfs.
# This may be replaced when dependencies are built.
