# Empty compiler generated dependencies file for bench_fig8c_oltp.
# This may be replaced when dependencies are built.
