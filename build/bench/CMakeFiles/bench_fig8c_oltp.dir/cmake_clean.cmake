file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8c_oltp.dir/bench_fig8c_oltp.cpp.o"
  "CMakeFiles/bench_fig8c_oltp.dir/bench_fig8c_oltp.cpp.o.d"
  "bench_fig8c_oltp"
  "bench_fig8c_oltp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8c_oltp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
