file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_read.dir/bench_fig7_read.cpp.o"
  "CMakeFiles/bench_fig7_read.dir/bench_fig7_read.cpp.o.d"
  "bench_fig7_read"
  "bench_fig7_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
