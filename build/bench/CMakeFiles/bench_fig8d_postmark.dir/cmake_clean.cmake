file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8d_postmark.dir/bench_fig8d_postmark.cpp.o"
  "CMakeFiles/bench_fig8d_postmark.dir/bench_fig8d_postmark.cpp.o.d"
  "bench_fig8d_postmark"
  "bench_fig8d_postmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8d_postmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
