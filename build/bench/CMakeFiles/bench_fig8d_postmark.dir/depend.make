# Empty dependencies file for bench_fig8d_postmark.
# This may be replaced when dependencies are built.
