# Empty dependencies file for bench_fig8a_atlas.
# This may be replaced when dependencies are built.
