file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_atlas.dir/bench_fig8a_atlas.cpp.o"
  "CMakeFiles/bench_fig8a_atlas.dir/bench_fig8a_atlas.cpp.o.d"
  "bench_fig8a_atlas"
  "bench_fig8a_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
