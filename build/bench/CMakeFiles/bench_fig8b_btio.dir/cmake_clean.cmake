file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_btio.dir/bench_fig8b_btio.cpp.o"
  "CMakeFiles/bench_fig8b_btio.dir/bench_fig8b_btio.cpp.o.d"
  "bench_fig8b_btio"
  "bench_fig8b_btio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_btio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
