# Empty compiler generated dependencies file for bench_fig8b_btio.
# This may be replaced when dependencies are built.
