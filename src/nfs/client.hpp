// NFSv4.1 client with pNFS file-layout support.
//
// This is the "stock NFSv4.1 client" of the paper: it implements
//   * sessions (EXCHANGE_ID / CREATE_SESSION, bounded slot tables),
//   * a write-back data cache that coalesces application writes into
//     wsize-sized WRITEs (the reason Figs 6d/6e match 6a/6b),
//   * sequential-read detection with asynchronous readahead into the page
//     cache (the reason Figs 7c/7d match 7a/7b),
//   * COMMIT on fsync/close only (the paper's deliberate departure from
//     NFSv4 to match PVFS2 durability semantics),
//   * pNFS: GETDEVICELIST at mount, LAYOUTGET at open, a file-layout driver
//     that fans READ/WRITE/COMMIT out to data servers through pluggable
//     aggregation drivers, and LAYOUTCOMMIT after size-changing writes.
//
// When a server grants no layout (plain NFSv4), all I/O flows to the
// metadata server — no client change required, exactly the transparency
// Direct-pNFS advertises.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "nfs/layout.hpp"
#include "nfs/ops.hpp"
#include "nfs/types.hpp"
#include "rpc/fabric.hpp"
#include "util/interval_set.hpp"
#include "util/range_buffer.hpp"

namespace dpnfs::nfs {

/// Page-cache granularity for demand fetches.
inline constexpr uint64_t kPageBytes = 4096;

struct ClientConfig {
  uint32_t rsize = 2u << 20;               ///< max READ size (paper: 2 MB)
  uint32_t wsize = 2u << 20;               ///< max WRITE size (paper: 2 MB)
  uint64_t cache_limit_bytes = 1ull << 30; ///< page-cache budget
  uint64_t dirty_limit_bytes = 256ull << 20;
  uint32_t readahead_window = 4;           ///< readahead depth, in rsize units
  bool data_cache = true;                  ///< ablation switch
  bool pnfs_enabled = true;                ///< issue LAYOUTGET at open
  bool commit_on_close = true;
  /// Register a backchannel with the MDS so it can recall layouts.
  bool enable_backchannel = true;
  uint32_t session_slots = 64;
  /// Max concurrent write-back WRITEs **per data server**.  Each DS gets its
  /// own bounded pipeline (semaphore + elevator queue), so a slow or failed
  /// DS never stalls flushes destined for healthy ones — the serialization
  /// the old global write-back window imposed.
  uint32_t wb_window_per_ds = 8;
  /// Merge adjacent dirty extents bound for the same DS into one WRITE of up
  /// to wsize before dispatch (elevator-style coalescing).  Ablation switch.
  bool coalesce_writes = true;
  /// List I/O: fold multiple *non-adjacent* dirty runs for the same DS into
  /// one vectored WRITEV (up to wsize total bytes), and batch strided read
  /// misses into READV the same way.  Single-range requests always use the
  /// classic one-range ops regardless of this switch.  Ablation switch.
  bool listio_enabled = true;
  /// Max (offset, length) regions one vectored request may carry.
  uint32_t listio_max_regions = 64;
  /// Write-back dispatches admitted to the NIC concurrently.  The NIC
  /// serializes frames, so launching every per-DS pipeline at once just
  /// time-slices the link and bunches all completions (and the server disk
  /// work behind them) at the tail.  A dispatch holds a transmit token only
  /// for its payload's estimated serialization time — never for the full
  /// RPC — so a slow or dead DS cannot pin the gate.
  uint32_t wb_wire_tokens = 1;
  /// Once a data server holds this many completed-but-uncommitted write-back
  /// bytes for a file, the scheduler issues an asynchronous COMMIT to it so
  /// the server starts its disk flush under the remaining transmissions
  /// instead of bunching the whole flush behind fsync's final COMMIT.
  /// fsync still sends its own one-per-DS COMMIT to cover stragglers.
  /// 0 disables background commits.
  uint64_t wb_commit_backlog = 1ull << 20;
  sim::Duration cpu_per_rpc = sim::us(8);
  /// Client copy/checksum cost, charged once at the syscall boundary and
  /// once per RPC carrying data.  Calibrated so one client box sustains
  /// ~64 MB/s on the read path (the paper's P3 clients: 8 of them cap
  /// warm-cache reads at ~510-530 MB/s aggregate).
  double cpu_ns_per_byte = 15.5;

  // -- Failure recovery (see docs/failures.md) -------------------------------
  /// Per-attempt deadline on data-server COMPOUNDs; 0 disables deadlines
  /// (and all watchdog events) — the default, so fault-free runs are
  /// event-for-event identical to the pre-recovery client.
  sim::Duration ds_timeout = 0;
  /// Transport-level retries (same DS, exponential backoff) inside the RPC
  /// client before a timed-out data-server call surfaces as an error.
  uint32_t ds_rpc_retries = 1;
  /// NFS-level retries of a failed READ/WRITE/COMMIT slice against the same
  /// DS before degrading.
  uint32_t slice_retries = 1;
  /// Consecutive slice failures that open a data server's circuit breaker.
  uint32_t breaker_threshold = 3;
  /// How long an open breaker diverts that DS's slices to the MDS.
  sim::Duration breaker_reset = sim::sec(5);
  /// Degrade to proxying failed slices through the MDS (the plain-NFSv4
  /// path).  Off: slice failures surface to the application immediately.
  bool mds_fallback = true;
  /// Per-attempt deadline on MDS COMPOUNDs; 0 keeps the unbounded legacy
  /// behavior.  Set it when the MDS itself can crash (chaos runs): session
  /// re-establishment must be able to give up on the dead incarnation and
  /// retry against the revived one.
  sim::Duration mds_timeout = 0;

  /// Tenant identity stamped into every RPC this client originates (0: none).
  /// Carried flag-gated in the call header and propagated through proxied
  /// hops, so servers at every tier attribute work to the right tenant.
  uint32_t tenant_id = 0;
};

struct ClientStats {
  uint64_t bytes_read = 0;          ///< returned to the application
  uint64_t bytes_written = 0;       ///< accepted from the application
  uint64_t wire_read_bytes = 0;     ///< fetched via READ
  uint64_t wire_write_bytes = 0;    ///< sent via WRITE
  uint64_t rpcs = 0;
  uint64_t cache_hit_bytes = 0;
  uint64_t readahead_fetches = 0;
  // Write-back scheduler (mirrored in the "client.sched" metrics component).
  uint64_t sched_writes = 0;             ///< write-back WRITEs dispatched
  uint64_t sched_coalesced_extents = 0;  ///< extents merged into a prior WRITE
  uint64_t sched_coalesced_bytes = 0;    ///< bytes riding merged WRITEs
  uint64_t vectored_writes = 0;   ///< multi-region WRITEV dispatches
  uint64_t vectored_regions = 0;  ///< regions carried by those WRITEVs
  uint64_t vectored_bytes = 0;    ///< bytes carried by those WRITEVs
  uint64_t vectored_reads = 0;    ///< multi-region READV fetches issued
  // Recovery (mirrored in the "client.recovery" metrics component).
  uint64_t recovery_retries = 0;    ///< slice retried against the same DS
  uint64_t mds_fallbacks = 0;       ///< slices degraded to MDS proxy I/O
  uint64_t breaker_trips = 0;       ///< DS circuit breakers opened
  uint64_t layout_refetches = 0;    ///< LAYOUTGETs after slice failures
  // Unstable-write replay (mirrored in the "client.replay" component).
  uint64_t verifier_mismatches = 0; ///< WRITE/COMMIT verifier changes seen
  uint64_t replayed_extents = 0;    ///< retained extents re-dirtied for replay
  uint64_t replayed_bytes = 0;      ///< bytes those extents covered
  uint64_t session_recoveries = 0;  ///< sessions re-established after restart
  // Redundancy (mirrored in the "client.redundancy" metrics component).
  uint64_t replica_reroutes = 0;    ///< reads routed around an unhealthy DS
  uint64_t degraded_reads = 0;      ///< reads served without the home DS
  uint64_t degraded_read_bytes = 0; ///< bytes those reads returned
  uint64_t ec_reconstructions = 0;  ///< erasure blocks rebuilt from k shards
  uint64_t degraded_writes = 0;     ///< writes absorbed by surviving redundancy
  uint64_t degraded_commits = 0;    ///< COMMIT targets dropped as dead
};

/// Records the first non-OK status across a fan-out of concurrent slice
/// operations, plus which device produced it.  Replaces the old
/// `bool failed; Status fail_status;` out-param pairs.
class StatusCollector {
 public:
  static constexpr size_t kNoDevice = static_cast<size_t>(-1);

  void record(Status s, size_t device_index = kNoDevice) noexcept {
    if (s == Status::kOk || failed_) return;
    failed_ = true;
    status_ = s;
    device_index_ = device_index;
  }
  bool failed() const noexcept { return failed_; }
  Status status() const noexcept { return status_; }
  size_t device_index() const noexcept { return device_index_; }
  void throw_if_failed(const std::string& what) const {
    if (failed_) throw NfsError(status_, what);
  }

 private:
  bool failed_ = false;
  Status status_ = Status::kOk;
  size_t device_index_ = kNoDevice;
};

class NfsClient {
 public:
  class FileState;
  using FilePtr = std::shared_ptr<FileState>;

  NfsClient(rpc::RpcFabric& fabric, sim::Node& node, rpc::RpcAddress mds,
            std::string principal, ClientConfig config = {},
            std::shared_ptr<const AggregationRegistry> aggregations = nullptr);
  ~NfsClient();

  /// EXCHANGE_ID + CREATE_SESSION + root filehandle (+ GETDEVICELIST when
  /// pNFS is enabled).  Must complete before any other call.
  sim::Task<void> mount();

  // -- Namespace ------------------------------------------------------------

  sim::Task<void> mkdir(const std::string& path);
  sim::Task<void> remove(const std::string& path);
  /// SETATTR(size).  Conflicting layouts held by other clients are
  /// recalled by the server before this returns.
  sim::Task<void> truncate(const std::string& path, uint64_t size);
  sim::Task<void> rename(const std::string& from, const std::string& to);
  sim::Task<std::vector<DirEntry>> readdir(const std::string& path);
  sim::Task<Fattr> stat(const std::string& path);

  // -- File I/O ---------------------------------------------------------------

  /// Opens (optionally creating) a file.  `read_only` opens request a read
  /// delegation; while one is held, a re-open of the same file is served
  /// locally with no RPC at all.
  sim::Task<FilePtr> open(const std::string& path, bool create,
                          bool read_only = false);
  sim::Task<rpc::Payload> read(FilePtr file, uint64_t offset, uint64_t length);
  sim::Task<void> write(FilePtr file, uint64_t offset, rpc::Payload data);
  sim::Task<void> fsync(FilePtr file);
  sim::Task<void> close(FilePtr file);

  uint64_t file_size(const FilePtr& file) const;
  bool file_has_layout(const FilePtr& file) const;

  /// Drops all clean cached data (like `echo 3 > drop_caches`).  State for
  /// closed files is discarded entirely; open files keep dirty data.
  void drop_caches();

  const ClientStats& stats() const noexcept { return stats_; }
  const ClientConfig& config() const noexcept { return config_; }
  sim::Node& node() noexcept { return node_; }
  uint64_t layout_recalls_served() const noexcept { return recalls_served_; }
  uint64_t delegation_recalls_served() const noexcept {
    return delegation_recalls_served_;
  }
  bool file_has_delegation(const FilePtr& file) const;

 private:
  struct Session {
    SessionId id;
    std::unique_ptr<sim::Semaphore> slots;
  };

  /// One I/O assignment: a byte range sent to one server.
  struct IoSlice {
    static constexpr size_t kMds = static_cast<size_t>(-1);
    size_t device_index = kMds;
    rpc::RpcAddress addr;
    FileHandle fh;
    Stateid stateid;
    uint64_t target_offset = 0;  ///< offset in the target's address space
    uint64_t file_offset = 0;
    uint64_t length = 0;
    /// Erasure parity block: payload is derived (never file content), so it
    /// must not fall back to the MDS and failures re-dirty the source group
    /// instead of restoring payload bytes into the cache.
    bool parity = false;
  };

  // Per-data-server write-back scheduler (see flush_dirty): each DS owns a
  // bounded in-flight window plus an elevator queue of dirty extents; queued
  // adjacent extents merge into up-to-wsize WRITEs at dispatch.
  struct QueuedWrite {
    FilePtr file;
    IoSlice slice;
    rpc::Payload data;
    sim::Time enqueued_at = 0;
  };
  struct DsSched {
    std::unique_ptr<sim::Semaphore> window;
    /// fileid -> queued extents keyed by target offset (elevator order).
    std::map<uint64_t, util::ExtentQueue<QueuedWrite>> queues;
    uint32_t inflight = 0;      ///< WRITEs holding a window permit
    double queue_peak = 0;      ///< high-water extent count
    /// fileid -> completed-but-uncommitted bytes (background-COMMIT trigger).
    std::map<uint64_t, uint64_t> uncommitted;
    std::set<uint64_t> commit_inflight;  ///< fileids with a COMMIT running
    std::string label;          ///< "ds<node>" or "mds" (metric suffix)
    obs::Gauge* m_queue_depth;
    obs::Gauge* m_queue_peak;
    obs::Gauge* m_window_inflight;
  };
  DsSched& sched_for(const rpc::RpcAddress& addr);
  void note_sched_queue(DsSched& sched);
  /// Queues one routed dirty extent, trimming any queued extent the new
  /// bytes overlap (newest data wins), and spawns a drain worker.
  void enqueue_writeback(const FilePtr& file, IoSlice slice,
                         rpc::Payload data);
  sim::Task<void> wb_worker(FilePtr file, rpc::RpcAddress addr);
  /// Best-effort COMMIT to one DS while write-back continues (see
  /// ClientConfig::wb_commit_backlog); fsync's COMMIT covers stragglers.
  sim::Task<void> wb_background_commit(FilePtr file, rpc::RpcAddress addr,
                                       size_t device_index);

  // Compound plumbing.  Every compound built by this client starts with a
  // SEQUENCE op; call() owns session recovery: it patches the current
  // session id into the encoded compound, and when the reply's SEQUENCE
  // answers BADSESSION or GRACE (the server restarted and forgot us) it
  // drops the dead session, re-establishes one, and re-sends — so restart
  // recovery is invisible to every call site.
  sim::Task<rpc::RpcClient::Reply> call(rpc::RpcAddress addr,
                                        CompoundBuilder builder,
                                        uint64_t data_bytes,
                                        obs::TraceContext trace_parent = {});
  sim::Task<std::shared_ptr<Session>> session_for(rpc::RpcAddress addr);
  /// Forgets `sid` for `addr` (a later call re-establishes).  Losing the
  /// *MDS* session means the MDS restarted: every layout and open stateid it
  /// granted came from the dead incarnation, so layouts are marked stale
  /// (re-fetched lazily, once per file) and opens fall back to the
  /// anonymous stateid.
  void session_lost(const rpc::RpcAddress& addr, const SessionId& sid);
  rpc::CallOptions call_options(const rpc::RpcAddress& addr) const;

  // Path machinery.
  sim::Task<FileHandle> resolve(const std::string& path);
  void invalidate_dentries(const std::string& prefix);

  // Data path.
  std::vector<IoSlice> route(FileState& f, uint64_t offset, uint64_t length,
                             bool for_write);
  IoSlice mds_slice(const FileState& f, uint64_t offset,
                    uint64_t length) const;
  static std::shared_ptr<sim::Latch> find_inflight_overlap(FileState& f,
                                                           uint64_t start,
                                                           uint64_t end);
  /// Returns the number of bytes actually fetched over the wire (0 when the
  /// whole range was already valid or in flight).
  sim::Task<uint64_t> fetch_range(FilePtr file, uint64_t start, uint64_t end);
  sim::Task<rpc::Payload> read_slices(FileState& f, uint64_t offset,
                                      uint64_t length);
  sim::Task<void> write_slices(FileState& f, uint64_t offset,
                               const rpc::Payload& data);
  // Single-attempt slice ops (throw NfsError on failure)...
  sim::Task<rpc::Payload> read_slice_op(FileState& f, const IoSlice& slice);
  /// Multi-region READV to one server: returns each slice's bytes.  Regions
  /// read short mid-object are re-filled via read_slice_op; short reads at
  /// EOF zero-fill like the single-range path.
  sim::Task<std::vector<rpc::Payload>> read_vector_op(
      FileState& f, const std::vector<IoSlice>& slices);
  /// WRITE/WRITEV to one server: one slice emits the classic single-range
  /// op (wire-identical to the old write_slice_op), 2+ slices a vectored
  /// one.  The reply's single verifier is recorded for every region.
  sim::Task<void> write_vector_op(FileState& f,
                                  const std::vector<IoSlice>& slices,
                                  rpc::Payload data,
                                  obs::TraceContext trace_parent = {});
  /// COMMIT to one server; returns the write verifier its reply carried.
  sim::Task<uint64_t> commit_op(rpc::RpcAddress addr, FileHandle fh);
  // ...and their recovering wrappers: retry same DS, re-fetch the layout,
  // then degrade to the MDS; errors land in the collector.
  sim::Task<void> run_read_slice(FileState& f, IoSlice slice,
                                 rpc::Payload& out, StatusCollector& errors);
  sim::Task<void> run_write_slice(FileState& f, IoSlice slice,
                                  rpc::Payload piece, StatusCollector& errors,
                                  obs::TraceContext trace_parent = {});
  /// Vectored wrappers: one retry round against the DS as a whole, then
  /// degrade region-by-region through the single-slice ladders (so each
  /// region keeps its own retry/breaker/MDS-fallback recovery).
  sim::Task<void> run_write_vector(FileState& f, std::vector<IoSlice> slices,
                                   rpc::Payload data, StatusCollector& errors,
                                   obs::TraceContext trace_parent = {});
  sim::Task<void> run_read_vector(FileState& f, std::vector<IoSlice> slices,
                                  std::vector<rpc::Payload>& out,
                                  StatusCollector& errors);
  sim::Task<void> run_commit_target(FileState& f, size_t device_index,
                                    StatusCollector& errors,
                                    uint64_t* verifier_out = nullptr);

  // Crash-consistent unstable writes: every UNSTABLE WRITE's byte range is
  // retained (pinned in the cache) together with the server's write
  // verifier until a COMMIT whose verifier matches covers it.  A verifier
  // change — seen on a WRITE mid-stream or on the COMMIT itself — means the
  // server restarted and dropped its volatile data; the retained ranges are
  // re-dirtied and flow back out through the normal write-back machinery.
  void note_unstable_write(FileState& f, const IoSlice& slice,
                           uint64_t verifier);
  void redirty_lost(FileState& f, size_t target);

  /// A stale layout (MDS restart) is refreshed exactly once, lazily, at the
  /// next data-path entry.
  sim::Task<void> ensure_layout_fresh(FileState& f);

  // Per-data-server health (consecutive-failure circuit breaker).
  bool breaker_open(const rpc::RpcAddress& addr) const;
  void record_ds_result(const rpc::RpcAddress& addr, bool ok);
  sim::Task<void> refetch_layout(FileState& f, bool force = false);
  sim::Task<void> flush_dirty(FilePtr file, bool only_full_chunks,
                              bool wait_completion);

  // -- Redundancy (replicated / nested-mirror / erasure-coded layouts) -----
  /// True when this device may not hold valid bytes for [start, end): its
  /// breaker is open or the range overlaps its degraded (skipped-write) set.
  bool device_unhealthy(const FileState& f, size_t device,
                        uint64_t start, uint64_t end) const;
  /// For replicated/nested layouts: redirects `slice` to a healthy device
  /// holding the same bytes.  `avoid` is the device being routed around.
  /// False when no healthy alternate exists.
  bool remap_replica(const FileState& f, IoSlice& slice, size_t avoid) const;
  /// Degraded-read rung: serve `slice` without its home DS — surviving
  /// replica / mirror-group member, or reconstruction from k surviving
  /// erasure shards.  Fills `out` and returns true on success.
  sim::Task<bool> degraded_read(FileState& f, IoSlice slice,
                                rpc::Payload& out);
  /// Reads the `su`-sized erasure shards of the group containing
  /// `slice.file_offset` from any k healthy devices and decodes the target
  /// block.  Returns the reconstructed block (zero-padded to su).
  sim::Task<bool> ec_reconstruct_block(FileState& f, const IoSlice& slice,
                                       rpc::Payload& block);
  /// Records that `slice`'s bytes were not written to its device (the
  /// redundancy absorbed a terminal failure).
  void note_degraded_write(FileState& f, const IoSlice& slice);
  /// Erasure-coded flush: expands dirty ranges to stripe-group boundaries,
  /// read-modify-writes missing group bytes, computes parity, and enqueues
  /// data + parity write-back.
  sim::Task<void> flush_dirty_ec(FilePtr file, bool wait_completion);
  sim::Task<void> commit_unstable(FileState& f);
  void account_valid_delta(FileState& f, int64_t delta);
  void evict_clean_if_needed();
  /// Drops all clean cached ranges of one file (revalidation failure).
  void invalidate_clean(FileState& st);
  sim::Task<void> readahead(FilePtr file, uint64_t from, uint64_t to);

  // Backchannel (CB_LAYOUTRECALL service).
  void start_backchannel();
  sim::Task<void> serve_callback(const rpc::CallContext& ctx,
                                 rpc::XdrDecoder& args,
                                 rpc::XdrEncoder& results);

  rpc::RpcFabric& fabric_;
  sim::Node& node_;
  rpc::RpcAddress mds_;
  rpc::RpcClient rpc_;
  ClientConfig config_;
  std::shared_ptr<const AggregationRegistry> aggregations_;

  bool mounted_ = false;
  std::unique_ptr<rpc::RpcServer> backchannel_;
  uint64_t recalls_served_ = 0;
  uint64_t delegation_recalls_served_ = 0;
  FileHandle root_fh_;
  /// shared_ptr values: call() holds the session (and its slot semaphore)
  /// across suspension points while session_lost() may erase the map entry.
  std::map<rpc::RpcAddress, std::shared_ptr<Session>> sessions_;
  std::map<rpc::RpcAddress, std::shared_ptr<sim::Latch>> session_creating_;
  std::map<DeviceId, rpc::RpcAddress> devices_;

  /// Data-server circuit breakers: consecutive failures and, once tripped,
  /// how long routing diverts this DS's slices to the MDS.
  struct DsHealth {
    uint32_t consecutive_failures = 0;
    sim::Time open_until = 0;
  };
  std::map<rpc::RpcAddress, DsHealth> ds_health_;

  /// Per-data-server write-back pipelines (std::map: references stay stable
  /// across co_await while new DSes appear).
  std::map<rpc::RpcAddress, DsSched> scheds_;

  /// NIC admission gate for write-back dispatch (see wb_wire_tokens).
  std::unique_ptr<sim::Semaphore> tx_gate_;

  std::map<std::string, FileHandle> dentry_cache_;
  std::map<uint64_t, FilePtr> files_;  ///< fileid -> shared state

  uint64_t cached_bytes_ = 0;  ///< sum of valid (clean+dirty) cached bytes
  uint64_t dirty_bytes_ = 0;
  uint64_t lru_clock_ = 0;

  ClientStats stats_;

  // "client.cache" component handles, resolved once at construction (null
  // sinks when the fabric carries no registry).
  obs::Counter* m_hit_bytes_;
  obs::Counter* m_miss_bytes_;
  obs::Counter* m_read_bytes_;
  obs::Counter* m_write_bytes_;
  obs::Counter* m_readahead_fetches_;
  obs::Counter* m_rpcs_;
  // "client.sched" component handles (per-DS gauges live in DsSched).
  obs::Counter* m_sched_writes_;
  obs::Counter* m_sched_bytes_;
  obs::Counter* m_sched_coalesced_extents_;
  obs::Counter* m_sched_coalesced_bytes_;
  obs::Counter* m_vectored_writes_;
  obs::Counter* m_vectored_regions_;
  obs::Counter* m_vectored_bytes_;
  // "client.recovery" component handles.
  obs::Counter* m_retries_;
  obs::Counter* m_fallbacks_;
  obs::Counter* m_breaker_trips_;
  obs::Counter* m_layout_refetches_;
  obs::Counter* m_rpc_retries_;
  // "client.replay" component handles.
  obs::Counter* m_verifier_mismatches_;
  obs::Counter* m_replayed_extents_;
  obs::Counter* m_replayed_bytes_;
  obs::Counter* m_session_recoveries_;
  // "client.redundancy" component handles.
  obs::Counter* m_replica_reroutes_;
  obs::Counter* m_degraded_reads_;
  obs::Counter* m_degraded_read_bytes_;
  obs::Counter* m_ec_reconstructions_;
  obs::Counter* m_degraded_writes_;
  obs::Counter* m_degraded_commits_;
  /// Trace sink (null when the fabric carries no tracer); write-back
  /// dispatches emit a root span here so analyze_trace can attribute
  /// client-queue time per DS.
  obs::Tracer* tracer_ = nullptr;
};

/// Open-file state; exposed so deployments can inspect (tests) but opaque in
/// normal use.
class NfsClient::FileState {
 public:
  FileHandle fh;
  Stateid stateid;
  Fattr attr;
  uint64_t size = 0;
  bool size_dirty = false;
  std::optional<FileLayout> layout;
  bool read_delegation = false;
  std::string path;  ///< last path this file was opened under
  uint32_t open_count = 0;
  /// OPEN stateids live at the server.  Delegation fast-path opens are
  /// purely local, so open_count can exceed server_opens; CLOSE RPCs are
  /// only sent while server_opens exceeds the remaining handles.
  uint32_t server_opens = 0;
  /// Every outstanding server-side OPEN stateid, oldest first.  The server
  /// mints a distinct stateid per OPEN and CLOSE retires exactly one, so
  /// with concurrent handles on the same file each CLOSE must present a
  /// stateid that is still live — closing the newest twice earns
  /// NFS4ERR_BAD_STATEID and leaks the rest.  `stateid` mirrors the most
  /// recent entry for the I/O path.
  std::vector<Stateid> open_stateids;

  // Page cache.
  util::RangeBuffer content;
  util::IntervalSet valid;
  util::IntervalSet dirty;

  // Sequential-read tracking.
  uint64_t expected_seq_offset = 0;
  uint64_t readahead_high = 0;
  /// In-flight fetches: start -> (end, completion latch).
  std::map<uint64_t, std::pair<uint64_t, std::shared_ptr<sim::Latch>>> inflight;

  // Commit bookkeeping: device indices (or IoSlice::kMds) holding
  // uncommitted writes.
  std::set<size_t> unstable_targets;

  /// Per-target crash-consistency state: the write verifier the target's
  /// UNSTABLE WRITE replies carried, and the file ranges still covered only
  /// by those volatile writes.  The ranges stay pinned in the page cache
  /// until a COMMIT with a matching verifier retires them; on a mismatch
  /// (the server restarted) they are re-dirtied and replayed.
  struct TargetCommitState {
    bool verifier_known = false;
    uint64_t verifier = 0;
    util::IntervalSet uncommitted;
  };
  std::map<size_t, TargetCommitState> commit_targets;

  /// Set when the MDS session died (server restart): the layout came from
  /// the dead incarnation and is re-fetched once before the next I/O.
  bool layout_stale = false;

  /// Per-device ranges known NOT to hold current data: writes or COMMITs
  /// that terminally failed against the device while surviving redundancy
  /// absorbed them.  Reads must route around these ranges (and erasure
  /// reconstruction must not source from them).  Entries are sticky — a
  /// rebuilt replacement device arrives under a fresh layout whose reads
  /// the rebuild made whole, while these ranges keep being served by the
  /// surviving copies either way.
  std::map<size_t, util::IntervalSet> degraded;

  /// Ranges that must not be evicted: dirty data plus retained
  /// uncommitted writes (the client's only copy if a server restarts).
  util::IntervalSet pinned() const {
    util::IntervalSet p = dirty;
    for (const auto& [idx, t] : commit_targets) {
      for (const auto& iv : t.uncommitted.intervals()) p.add(iv.start, iv.end);
    }
    return p;
  }

  // Async write-back pipeline state (created lazily by the client).  The
  // in-flight windows themselves live per data server in the client's
  // scheduler; this only joins this file's outstanding write-backs.
  std::unique_ptr<sim::WaitGroup> wb_inflight;
  bool wb_error = false;

  /// Last failure-driven LAYOUTGET (-1: never); rate-limits re-fetches.
  sim::Time layout_refetched_at = -1;

  uint64_t last_use = 0;
};

}  // namespace dpnfs::nfs
