#include "nfs/server.hpp"

#include "sim/fault.hpp"
#include "util/format.hpp"
#include "util/log.hpp"

namespace dpnfs::nfs {

using rpc::XdrDecoder;
using rpc::XdrEncoder;
using sim::Task;

NfsServer::NfsServer(rpc::RpcFabric& fabric, sim::Node& node, uint16_t port,
                     Backend& backend, LayoutSource* layouts,
                     ServerConfig config)
    : fabric_(fabric),
      node_(node),
      port_(port),
      backend_(backend),
      layouts_(layouts),
      config_(config) {
  if (obs::MetricsRegistry* reg = fabric.metrics()) {
    const std::string& n = node.name();
    m_compounds_ = &reg->counter(n, "nfs.server", "compounds");
    m_read_bytes_ = &reg->counter(n, "nfs.server", "read_bytes");
    m_write_bytes_ = &reg->counter(n, "nfs.server", "write_bytes");
    m_layouts_recalled_ = &reg->counter(n, "nfs.server", "layout_recalls");
    m_delegation_recalls_ =
        &reg->counter(n, "nfs.server", "delegation_recalls");
  } else {
    m_compounds_ = &obs::MetricsRegistry::null_counter();
    m_read_bytes_ = &obs::MetricsRegistry::null_counter();
    m_write_bytes_ = &obs::MetricsRegistry::null_counter();
    m_layouts_recalled_ = &obs::MetricsRegistry::null_counter();
    m_delegation_recalls_ = &obs::MetricsRegistry::null_counter();
  }
  rpc_server_ = std::make_unique<rpc::RpcServer>(
      fabric, node, port, config.worker_threads,
      [this](const rpc::CallContext& ctx, XdrDecoder& args,
             XdrEncoder& results) -> Task<void> {
        return serve(ctx, args, results);
      });
}

uint64_t NfsServer::current_instance(sim::Time now) const {
  const sim::FaultInjector* faults = fabric_.network().faults();
  return faults != nullptr ? faults->boot_instance(node_.id(), port_, now) : 1;
}

uint64_t NfsServer::current_verifier(sim::Time now) const {
  const sim::FaultInjector* faults = fabric_.network().faults();
  if (faults != nullptr) return faults->boot_verifier(node_.id(), port_, now);
  // Fault-free runs: any stable nonzero cookie will do.
  const uint64_t x =
      0x9E3779B97F4A7C15ull ^ ((uint64_t{node_.id()} << 16) | port_);
  return x == 0 ? 1 : x;
}

void NfsServer::check_restart(sim::Time now) {
  const uint64_t instance = current_instance(now);
  if (instance == boot_instance_) return;
  const bool first_sight = boot_instance_ == 0;
  boot_instance_ = instance;
  boot_verifier_ = current_verifier(now);
  if (first_sight) return;  // initial adoption, nothing was lost
  // The previous incarnation's volatile state died with it: sessions, open
  // state, layout and delegation bookkeeping, and the backend's unflushed
  // write-behind data.  Clients find out through NFS4ERR_BADSESSION /
  // NFS4ERR_GRACE and through the changed write verifier.
  sessions_.clear();
  backchannels_.clear();
  layout_holders_.clear();
  delegation_holders_.clear();
  write_opens_.clear();
  open_states_.clear();
  backend_.on_server_restart();
  if (config_.grace_period > 0) grace_until_ = now + config_.grace_period;
  ++restarts_;
  util::logf(util::LogLevel::kInfo, "nfs.server", now,
             "%s:%u restarted (instance %llu, verifier %016llx)",
             node_.name().c_str(), port_,
             static_cast<unsigned long long>(instance),
             static_cast<unsigned long long>(boot_verifier_));
  if (obs::FlightRecorder* flight = fabric_.flight()) {
    flight->record(now, node_.name(), "nfs.server", "restart",
                   util::sformat("port %u instance %llu verifier %016llx",
                                 port_,
                                 static_cast<unsigned long long>(instance),
                                 static_cast<unsigned long long>(
                                     boot_verifier_)));
    if (config_.grace_period > 0) {
      flight->record(now, node_.name(), "nfs.server", "grace.enter",
                     util::sformat("port %u until %lld ns", port_,
                                   static_cast<long long>(grace_until_)));
      grace_logged_ = false;
    }
  }
}

Task<void> NfsServer::charge_cpu(uint64_t data_bytes) {
  const auto work =
      config_.cpu_per_op +
      static_cast<sim::Duration>(config_.cpu_ns_per_byte *
                                 static_cast<double>(data_bytes));
  co_await node_.cpu().execute(work);
}

Task<void> NfsServer::send_recalls(FileHandle fh, std::set<uint64_t> holders,
                                   uint32_t proc) {
  if (!cb_client_) {
    cb_client_ = std::make_unique<rpc::RpcClient>(fabric_, node_,
                                                  node_.name() + "-cb@SIM");
  }
  // Recall every holder concurrently; each CB reply implies the client has
  // flushed (if needed) and dropped the recalled state — a compressed
  // CB_*RECALL + *RETURN exchange; see DESIGN.md.
  sim::WaitGroup wg(fabric_.simulation());
  for (uint64_t session : holders) {
    auto addr_it = backchannels_.find(session);
    if (addr_it == backchannels_.end()) continue;
    wg.spawn([](NfsServer& self, rpc::RpcAddress addr, FileHandle fh,
                uint32_t proc) -> Task<void> {
      XdrEncoder args;
      fh.encode(args);
      auto reply = co_await self.cb_client_->call(addr, rpc::Program::kNfs, 4,
                                                  proc, std::move(args));
      if (reply.status != rpc::ReplyStatus::kAccepted) {
        util::logf(util::LogLevel::kWarn, "nfs.server",
                   self.fabric_.simulation().now(),
                   "callback recall rejected by client");
      }
    }(*this, addr_it->second, fh, proc));
  }
  co_await wg.wait();
}

Task<void> NfsServer::recall_layouts(FileHandle fh) {
  auto it = layout_holders_.find(fh.id);
  if (it == layout_holders_.end()) co_return;
  std::set<uint64_t> holders = std::move(it->second);
  layout_holders_.erase(it);
  recalls_ += holders.size();
  m_layouts_recalled_->add(holders.size());
  co_await send_recalls(fh, std::move(holders), kProcCbLayoutRecall);
}

Task<void> NfsServer::recall_delegations(FileHandle fh, uint64_t keep_session) {
  auto it = delegation_holders_.find(fh.id);
  if (it == delegation_holders_.end()) co_return;
  std::set<uint64_t> holders;
  for (uint64_t s : it->second) {
    if (s != keep_session) holders.insert(s);
  }
  if (holders.empty()) co_return;
  if (keep_session != 0 && it->second.contains(keep_session)) {
    it->second = {keep_session};
  } else {
    delegation_holders_.erase(it);
  }
  delegation_recalls_ += holders.size();
  m_delegation_recalls_->add(holders.size());
  co_await send_recalls(fh, std::move(holders), kProcCbRecallDelegation);
}

bool NfsServer::stateid_ok(const Stateid& sid) const {
  if (sid == kAnonymousStateid) return true;
  if (sid == kDataServerStateid) return true;  // pNFS data-path access
  return open_states_.contains(sid.id);
}

Task<void> NfsServer::serve(const rpc::CallContext& ctx, XdrDecoder& args,
                            XdrEncoder& results) {
  ++compounds_;
  m_compounds_->inc();
  check_restart(fabric_.simulation().now());
  if (!grace_logged_ && !in_grace(fabric_.simulation().now())) {
    grace_logged_ = true;
    if (obs::FlightRecorder* flight = fabric_.flight()) {
      flight->record(fabric_.simulation().now(), node_.name(), "nfs.server",
                     "grace.exit",
                     util::sformat("port %u instance %llu", unsigned{port_},
                                   static_cast<unsigned long long>(
                                       boot_instance_)));
    }
  }
  const uint32_t op_count = args.get_u32();
  if (op_count > 64) throw rpc::XdrError("compound too long");

  // Result layout: u32 count (back-patched), then per-op results.
  const size_t count_pos = results.encoded_size();
  results.put_u32(0);

  // Credential check (RPCSEC_GSS stand-in): reject the whole compound.
  if (!config_.required_principal_suffix.empty() && op_count > 0) {
    const std::string& who = ctx.header.principal;
    const std::string& suffix = config_.required_principal_suffix;
    const bool ok = who.size() >= suffix.size() &&
                    who.compare(who.size() - suffix.size(), suffix.size(),
                                suffix) == 0;
    if (!ok) {
      const auto op = static_cast<OpCode>(args.get_u32());
      OpResultHeader{op, Status::kPerm}.encode(results);
      results.patch_u32(count_pos, 1);
      util::logf(util::LogLevel::kWarn, "nfs.server",
                 fabric_.simulation().now(), "rejected principal '%s'",
                 who.c_str());
      co_return;
    }
  }

  uint32_t executed = 0;
  FileHandle current_fh{};
  FileHandle saved_fh{};
  uint64_t session = 0;
  for (uint32_t i = 0; i < op_count; ++i) {
    const auto op = static_cast<OpCode>(args.get_u32());
    const size_t header_pos = results.encoded_size();
    OpResultHeader{op, Status::kOk}.encode(results);
    const Status st =
        co_await dispatch(op, ctx, args, results, current_fh, saved_fh, session);
    ++executed;
    if (st != Status::kOk) {
      // Re-patch the status; any partial result body was written before the
      // failure was known, so ops must encode results only on success.
      results.patch_u32(header_pos + 4, static_cast<uint32_t>(st));
      util::logf(util::LogLevel::kDebug, "nfs.server",
                 fabric_.simulation().now(), "%s -> %s on %s",
                 opcode_name(op), status_name(st), node_.name().c_str());
      break;
    }
  }
  results.patch_u32(count_pos, executed);
}

Task<Status> NfsServer::dispatch(OpCode op, const rpc::CallContext& ctx,
                                 XdrDecoder& args, XdrEncoder& results,
                                 FileHandle& current_fh, FileHandle& saved_fh,
                                 uint64_t& session) {
  // Data servers accept only the pNFS data path: READ/WRITE/COMMIT plus
  // session management and filehandle ops (paper §3.4).
  if (config_.is_data_server) {
    switch (op) {
      case OpCode::kSequence:
      case OpCode::kExchangeId:
      case OpCode::kCreateSession:
      case OpCode::kPutFh:
      case OpCode::kRead:
      case OpCode::kWrite:
      case OpCode::kReadv:
      case OpCode::kWritev:
      case OpCode::kCommit:
        break;
      default:
        co_return Status::kNotSupp;
    }
  }

  switch (op) {
    case OpCode::kExchangeId: {
      (void)ExchangeIdArgs::decode(args);
      co_await charge_cpu(0);
      ExchangeIdRes{next_client_id_++}.encode(results);
      co_return Status::kOk;
    }
    case OpCode::kCreateSession: {
      const auto a = CreateSessionArgs::decode(args);
      co_await charge_cpu(0);
      const uint64_t sid = next_session_id_++;
      sessions_.insert(sid);
      if (a.callback_port != 0) {
        backchannels_[sid] = rpc::RpcAddress{
            ctx.client_node, static_cast<uint16_t>(a.callback_port)};
      }
      const uint32_t slots =
          std::min(a.requested_slots, config_.max_session_slots);
      CreateSessionRes{SessionId{sid}, slots}.encode(results);
      co_return Status::kOk;
    }
    case OpCode::kSequence: {
      const auto a = SequenceArgs::decode(args);
      if (!sessions_.contains(a.session.id)) {
        // During the post-restart grace window an unknown session means
        // "this server rebooted under you": NFS4ERR_GRACE tells the client
        // to re-establish state and reclaim, rather than treat its session
        // as administratively revoked.
        co_return in_grace(fabric_.simulation().now()) ? Status::kGrace
                                                       : Status::kBadSession;
      }
      session = a.session.id;
      co_return Status::kOk;
    }
    case OpCode::kPutRootFh:
      current_fh = backend_.root_fh();
      co_return Status::kOk;
    case OpCode::kPutFh:
      current_fh = PutFhArgs::decode(args).fh;
      co_return Status::kOk;
    case OpCode::kGetFh:
      GetFhRes{current_fh}.encode(results);
      co_return Status::kOk;
    case OpCode::kSaveFh:
      saved_fh = current_fh;
      co_return Status::kOk;
    case OpCode::kRestoreFh:
      current_fh = saved_fh;
      co_return Status::kOk;
    case OpCode::kLookup: {
      const auto a = LookupArgs::decode(args);
      co_await charge_cpu(0);
      FileHandle out;
      const Status st = co_await backend_.lookup(current_fh, a.name, &out);
      if (st == Status::kOk) current_fh = out;
      co_return st;
    }
    case OpCode::kGetattr: {
      co_await charge_cpu(0);
      Fattr attr;
      const Status st = co_await backend_.getattr(current_fh, &attr);
      if (st == Status::kOk) GetattrRes{attr}.encode(results);
      co_return st;
    }
    case OpCode::kSetattr: {
      const auto a = SetattrArgs::decode(args);
      co_await charge_cpu(0);
      if (!a.set_size) co_return Status::kOk;
      // A size change conflicts with outstanding layouts and delegations:
      // recall them before mutating (RFC 5661 §12.5.5 flavour).
      co_await recall_layouts(current_fh);
      co_await recall_delegations(current_fh, 0);
      co_return co_await backend_.set_size(current_fh, a.size);
    }
    case OpCode::kCreate: {
      const auto a = CreateArgs::decode(args);
      co_await charge_cpu(0);
      FileHandle out;
      const Status st = co_await backend_.mkdir(current_fh, a.name, &out);
      if (st == Status::kOk) current_fh = out;
      co_return st;
    }
    case OpCode::kOpen: {
      const auto a = OpenArgs::decode(args);
      co_await charge_cpu(0);
      FileHandle out;
      Fattr attr;
      const Status st =
          co_await backend_.open(current_fh, a.name, a.create, &out, &attr);
      if (st != Status::kOk) co_return st;
      current_fh = out;
      const bool for_write = a.share != ShareAccess::kRead;
      if (for_write) {
        // A writer conflicts with everyone else's read delegations.
        co_await recall_delegations(out, session);
        ++write_opens_[out.id];
      }
      const Stateid sid{next_stateid_++};
      open_states_.emplace(sid.id, OpenState{out, for_write});
      // Grant a read delegation to read-only openers when nobody writes
      // and the session has a backchannel to recall it through.
      DelegationType delegation = DelegationType::kNone;
      if (!for_write && session != 0 && backchannels_.contains(session) &&
          write_opens_[out.id] == 0) {
        delegation = DelegationType::kRead;
        delegation_holders_[out.id].insert(session);
        ++delegations_granted_;
      }
      OpenRes{sid, attr, delegation}.encode(results);
      co_return Status::kOk;
    }
    case OpCode::kClose: {
      const auto a = CloseArgs::decode(args);
      co_await charge_cpu(0);
      auto it = open_states_.find(a.stateid.id);
      if (it == open_states_.end()) co_return Status::kBadStateid;
      if (it->second.write) {
        auto wit = write_opens_.find(it->second.fh.id);
        if (wit != write_opens_.end() && --wit->second == 0) {
          write_opens_.erase(wit);
        }
      }
      open_states_.erase(it);
      co_return Status::kOk;
    }
    case OpCode::kRemove: {
      const auto a = RemoveArgs::decode(args);
      co_await charge_cpu(0);
      // Recall any layouts and delegations for the victim before unlinking.
      FileHandle victim;
      if (co_await backend_.lookup(current_fh, a.name, &victim) == Status::kOk) {
        co_await recall_layouts(victim);
        co_await recall_delegations(victim, 0);
      }
      co_return co_await backend_.remove(current_fh, a.name);
    }
    case OpCode::kRename: {
      const auto a = RenameArgs::decode(args);
      co_await charge_cpu(0);
      co_return co_await backend_.rename(saved_fh, a.old_name, current_fh,
                                         a.new_name);
    }
    case OpCode::kReaddir: {
      co_await charge_cpu(0);
      std::vector<DirEntry> entries;
      const Status st = co_await backend_.readdir(current_fh, &entries);
      if (st == Status::kOk) ReaddirRes{std::move(entries)}.encode(results);
      co_return st;
    }
    case OpCode::kRead:
    case OpCode::kReadv: {
      const auto a = op == OpCode::kRead ? ReadArgs::decode(args)
                                         : ReadArgs::decode_vectored(args);
      if (!stateid_ok(a.stateid)) co_return Status::kBadStateid;
      co_await charge_cpu(a.total_count());
      ReadvRes res;
      for (const IoRegion& r : a.regions) {
        rpc::Payload data;
        bool eof = false;
        const Status st = co_await backend_.read(current_fh, r.offset, r.count,
                                                 &data, &eof, ctx.trace);
        if (st != Status::kOk) co_return st;
        res.eof = res.eof || eof;
        res.lengths.push_back(static_cast<uint32_t>(data.size()));
        res.data.append(std::move(data));
      }
      m_read_bytes_->add(res.data.size());
      if (obs::TenantLedger* tenants = fabric_.tenants()) {
        tenants->account_data(ctx.trace.tenant, res.data.size(), 0);
      }
      if (op == OpCode::kRead) {
        ReadRes{res.eof, std::move(res.data)}.encode(results);
      } else {
        res.encode(results);
      }
      co_return Status::kOk;
    }
    case OpCode::kWrite:
    case OpCode::kWritev: {
      const auto a = op == OpCode::kWrite ? WriteArgs::decode(args)
                                          : WriteArgs::decode_vectored(args);
      if (!stateid_ok(a.stateid)) co_return Status::kBadStateid;
      // MDS-path writes conflict with other clients' read delegations.
      if (!config_.is_data_server && delegation_holders_.contains(current_fh.id)) {
        co_await recall_delegations(current_fh, session);
      }
      co_await charge_cpu(a.data.size());
      // One stable_how in and, in the reply, one (weakest-across-regions)
      // stability and one boot verifier covering every region of the list.
      StableHow committed = StableHow::kFileSync;
      uint64_t post_change = 0;
      uint64_t pos = 0;
      for (const IoRegion& r : a.regions) {
        StableHow c = a.stable;
        uint64_t pc = 0;
        const Status st = co_await backend_.write(current_fh, r.offset,
                                                  a.data.slice(pos, r.count),
                                                  a.stable, &c, &pc, ctx.trace);
        if (st != Status::kOk) co_return st;
        pos += r.count;
        committed = std::min(committed, c);
        post_change = std::max(post_change, pc);
      }
      m_write_bytes_->add(a.data.size());
      if (obs::TenantLedger* tenants = fabric_.tenants()) {
        tenants->account_data(ctx.trace.tenant, 0, a.data.size());
      }
      WriteRes{a.data.size(), committed, post_change, boot_verifier_}
          .encode(results);
      co_return Status::kOk;
    }
    case OpCode::kCommit: {
      (void)CommitArgs::decode(args);
      co_await charge_cpu(0);
      const Status st = co_await backend_.commit(current_fh, ctx.trace);
      // The verifier is re-read *after* the commit ran: if this instance
      // died mid-commit and revived, the reply must carry the incarnation
      // that actually holds (or lost) the data.
      check_restart(fabric_.simulation().now());
      if (st == Status::kOk) CommitRes{boot_verifier_}.encode(results);
      co_return st;
    }
    case OpCode::kGetDeviceList:
    case OpCode::kGetDeviceInfo: {
      co_await charge_cpu(0);
      if (layouts_ == nullptr) co_return Status::kNotSupp;
      std::vector<DeviceEntry> devices;
      const Status st = co_await layouts_->get_device_list(&devices);
      if (st == Status::kOk) GetDeviceListRes{std::move(devices)}.encode(results);
      co_return st;
    }
    case OpCode::kLayoutGet: {
      const auto a = LayoutGetArgs::decode(args);
      co_await charge_cpu(0);
      if (layouts_ == nullptr) co_return Status::kLayoutUnavailable;
      // A read-write layout means the holder may write through the data
      // servers, bypassing this server: recall others' read delegations.
      if (a.iomode == LayoutIoMode::kReadWrite) {
        co_await recall_delegations(current_fh, session);
      }
      FileLayout layout;
      const Status st = co_await layouts_->layout_get(current_fh, a.iomode, &layout);
      if (st == Status::kOk) {
        if (session != 0 && backchannels_.contains(session)) {
          layout_holders_[current_fh.id].insert(session);
        }
        LayoutGetRes{std::move(layout)}.encode(results);
      }
      co_return st;
    }
    case OpCode::kLayoutCommit: {
      const auto a = LayoutCommitArgs::decode(args);
      co_await charge_cpu(0);
      if (layouts_ == nullptr) co_return Status::kNotSupp;
      uint64_t post_change = 0;
      const Status st = co_await layouts_->layout_commit(
          current_fh, a.new_size, a.size_changed, &post_change);
      if (st == Status::kOk) LayoutCommitRes{post_change}.encode(results);
      co_return st;
    }
    case OpCode::kLayoutReturn: {
      (void)LayoutReturnArgs::decode(args);
      co_await charge_cpu(0);
      if (layouts_ == nullptr) co_return Status::kNotSupp;
      if (session != 0) {
        auto it = layout_holders_.find(current_fh.id);
        if (it != layout_holders_.end()) {
          it->second.erase(session);
          if (it->second.empty()) layout_holders_.erase(it);
        }
      }
      co_return co_await layouts_->layout_return(current_fh);
    }
  }
  co_return Status::kNotSupp;
}

}  // namespace dpnfs::nfs
