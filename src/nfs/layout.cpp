#include "nfs/layout.hpp"

#include <algorithm>
#include <stdexcept>

namespace dpnfs::nfs {
namespace {

/// Shared dense-striping walk; `first_device` rotates the pattern.
std::vector<StripeSegment> map_dense(const FileLayout& layout, uint64_t offset,
                                     uint64_t length, uint64_t first_device) {
  if (!layout.valid()) throw std::invalid_argument("invalid layout");
  std::vector<StripeSegment> out;
  const uint64_t su = layout.stripe_unit;
  const uint64_t n = layout.devices.size();
  uint64_t pos = offset;
  const uint64_t end = offset + length;
  while (pos < end) {
    const uint64_t stripe = pos / su;
    const uint64_t in_stripe = pos % su;
    const uint64_t take = std::min(su - in_stripe, end - pos);
    StripeSegment seg;
    seg.device_index = static_cast<size_t>((stripe + first_device) % n);
    // Dense packing: each device stores its stripes back-to-back.
    seg.dev_offset = (stripe / n) * su + in_stripe;
    seg.file_offset = pos;
    seg.length = take;
    // Merge with the previous segment when contiguous on the same device
    // (happens when a single device holds consecutive stripes, n == 1).
    if (!out.empty() && out.back().device_index == seg.device_index &&
        out.back().dev_offset + out.back().length == seg.dev_offset &&
        out.back().file_offset + out.back().length == seg.file_offset) {
      out.back().length += take;
    } else {
      out.push_back(seg);
    }
    pos += take;
  }
  return out;
}

}  // namespace

std::vector<StripeSegment> RoundRobinDriver::map_read(const FileLayout& layout,
                                                      uint64_t offset,
                                                      uint64_t length) const {
  return map_dense(layout, offset, length, 0);
}

std::vector<StripeSegment> CyclicDriver::map_read(const FileLayout& layout,
                                                  uint64_t offset,
                                                  uint64_t length) const {
  const uint64_t first = layout.params.empty() ? 0 : layout.params[0];
  return map_dense(layout, offset, length, first);
}

AggregationRegistry AggregationRegistry::with_standard_drivers() {
  AggregationRegistry reg;
  reg.add(std::make_unique<RoundRobinDriver>());
  reg.add(std::make_unique<CyclicDriver>());
  return reg;
}

void AggregationRegistry::add(std::unique_ptr<AggregationDriver> driver) {
  const AggregationType type = driver->type();
  drivers_[type] = std::move(driver);
}

const AggregationDriver* AggregationRegistry::find(AggregationType type) const {
  const auto it = drivers_.find(type);
  return it == drivers_.end() ? nullptr : it->second.get();
}

}  // namespace dpnfs::nfs
