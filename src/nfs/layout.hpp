// pNFS file-based layout types and aggregation drivers.
//
// A file-based layout (RFC 5661 §13) tells the client exactly how a file's
// bytes map onto NFSv4.1 data servers: an aggregation scheme, a stripe unit,
// an ordered device list, and one data-server filehandle per device.
//
// The NFSv4.1 protocol itself defines two aggregation schemes (dense
// round-robin striping and a cyclical device-list pattern).  Direct-pNFS
// adds optional *aggregation drivers* — small, portable plugins that let a
// stock client understand unconventional striping (variable stripe size,
// replication, nested/hierarchical striping) without a full layout driver.
// The extra drivers live in src/core; this header defines the interface and
// the two standard schemes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "nfs/types.hpp"
#include "rpc/xdr.hpp"

namespace dpnfs::nfs {

/// Identifies one data server within a layout's device list.
struct DeviceId {
  uint32_t id = 0;

  bool operator==(const DeviceId&) const = default;
  auto operator<=>(const DeviceId&) const = default;

  void encode(rpc::XdrEncoder& enc) const { enc.put_u32(id); }
  static DeviceId decode(rpc::XdrDecoder& dec) { return DeviceId{dec.get_u32()}; }
};

/// Network address of a data server (GETDEVICELIST / GETDEVICEINFO result).
struct DeviceEntry {
  DeviceId device;
  uint32_t node_id = 0;
  uint16_t port = 0;

  void encode(rpc::XdrEncoder& enc) const {
    device.encode(enc);
    enc.put_u32(node_id);
    enc.put_u32(port);
  }
  static DeviceEntry decode(rpc::XdrDecoder& dec) {
    DeviceEntry e;
    e.device = DeviceId::decode(dec);
    e.node_id = dec.get_u32();
    e.port = static_cast<uint16_t>(dec.get_u32());
    return e;
  }
};

/// Aggregation scheme identifiers.  kRoundRobin and kCyclic are the two
/// standard NFSv4.1 schemes; the rest require an aggregation driver.
enum class AggregationType : uint32_t {
  kRoundRobin = 1,     ///< dense round-robin striping
  kCyclic = 2,         ///< cyclical device pattern with a start offset
  kVariableStripe = 3, ///< per-extent stripe sizes (Exedra-style)
  kReplicated = 4,     ///< full replication across devices (RAID-1-style)
  kNested = 5,         ///< striping across mirror groups (RAID-1+0-style)
  kErasureCoded = 6,   ///< systematic Reed-Solomon k+m; params = [k, m]
};

/// True for schemes that store enough redundancy to survive the loss of at
/// least one device (replica reroute or parity reconstruction).
constexpr bool redundant_aggregation(AggregationType t) noexcept {
  return t == AggregationType::kReplicated || t == AggregationType::kNested ||
         t == AggregationType::kErasureCoded;
}

/// A pNFS file-based layout for a whole file.
struct FileLayout {
  AggregationType aggregation = AggregationType::kRoundRobin;
  uint64_t stripe_unit = 0;
  std::vector<DeviceId> devices;   ///< stripe order
  std::vector<FileHandle> fhs;     ///< per-device data-server filehandles
  std::vector<uint64_t> params;    ///< aggregation-driver parameters

  bool valid() const noexcept {
    return stripe_unit > 0 && !devices.empty() && fhs.size() == devices.size();
  }

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_u32(static_cast<uint32_t>(aggregation));
    enc.put_u64(stripe_unit);
    enc.put_array(devices);
    enc.put_array(fhs);
    enc.put_u32(static_cast<uint32_t>(params.size()));
    for (uint64_t p : params) enc.put_u64(p);
  }
  static FileLayout decode(rpc::XdrDecoder& dec) {
    FileLayout l;
    const uint32_t agg = dec.get_u32();
    if (agg < 1 || agg > 6) throw rpc::XdrError("bad aggregation type");
    l.aggregation = static_cast<AggregationType>(agg);
    l.stripe_unit = dec.get_u64();
    l.devices = dec.get_array<DeviceId>();
    l.fhs = dec.get_array<FileHandle>();
    const uint32_t n = dec.get_u32();
    if (n > 4096) throw rpc::XdrError("too many layout params");
    l.params.reserve(n);
    for (uint32_t i = 0; i < n; ++i) l.params.push_back(dec.get_u64());
    return l;
  }
};

/// Geometry of an erasure-coded layout: params = [k, m] with
/// devices.size() == k + m.  Stripe group g covers file bytes
/// [g*k*su, (g+1)*k*su); data stripe s lives on device s % k at device
/// offset (s / k) * su; parity block j of group g lives on device k + j at
/// device offset g * su.
struct EcGeometry {
  uint64_t k = 0;
  uint64_t m = 0;
  uint64_t su = 0;

  static std::optional<EcGeometry> from(const FileLayout& l) {
    if (l.aggregation != AggregationType::kErasureCoded) return std::nullopt;
    if (l.params.size() < 2 || l.params[0] == 0 || l.params[1] == 0 ||
        l.stripe_unit == 0 ||
        l.devices.size() != l.params[0] + l.params[1]) {
      return std::nullopt;
    }
    return EcGeometry{l.params[0], l.params[1], l.stripe_unit};
  }

  uint64_t group_bytes() const noexcept { return k * su; }
  uint64_t group_of(uint64_t file_offset) const noexcept {
    return file_offset / group_bytes();
  }
};

/// One contiguous piece of a striped request: `length` bytes at `dev_offset`
/// of device `device_index` (an index into FileLayout::devices).
///
/// `parity` marks segments that carry derived redundancy rather than file
/// bytes: `file_offset` then names the start of the stripe group the parity
/// covers, and the payload must be computed by the writer (never loaded from
/// file content).  Only `map_write` of an erasure-coded layout emits these.
struct StripeSegment {
  size_t device_index = 0;
  uint64_t dev_offset = 0;
  uint64_t file_offset = 0;
  uint64_t length = 0;
  bool parity = false;

  bool operator==(const StripeSegment&) const = default;
};

/// Maps file byte ranges onto data servers for one aggregation scheme.
///
/// Implementations must be stateless and deterministic: the same (layout,
/// range) always produces the same segments, on any client.
class AggregationDriver {
 public:
  virtual ~AggregationDriver() = default;

  virtual AggregationType type() const noexcept = 0;

  /// Segments covering [offset, offset+length) for reads, in file order.
  virtual std::vector<StripeSegment> map_read(const FileLayout& layout,
                                              uint64_t offset,
                                              uint64_t length) const = 0;

  /// Segments to write for [offset, offset+length).  Differs from map_read
  /// only for redundant schemes (replication writes everywhere).
  virtual std::vector<StripeSegment> map_write(const FileLayout& layout,
                                               uint64_t offset,
                                               uint64_t length) const {
    return map_read(layout, offset, length);
  }
};

/// Dense round-robin striping (standard scheme 1): stripe s lives on device
/// s % N at device offset (s / N) * stripe_unit.
class RoundRobinDriver final : public AggregationDriver {
 public:
  AggregationType type() const noexcept override {
    return AggregationType::kRoundRobin;
  }
  std::vector<StripeSegment> map_read(const FileLayout& layout, uint64_t offset,
                                      uint64_t length) const override;
};

/// Cyclical pattern (standard scheme 2): round-robin whose first stripe
/// starts at device `params[0]` of the device list.
class CyclicDriver final : public AggregationDriver {
 public:
  AggregationType type() const noexcept override {
    return AggregationType::kCyclic;
  }
  std::vector<StripeSegment> map_read(const FileLayout& layout, uint64_t offset,
                                      uint64_t length) const override;
};

/// Registry of aggregation drivers available to a client or server.
/// Standard schemes are pre-registered; Direct-pNFS deployments add the
/// optional drivers from src/core.
class AggregationRegistry {
 public:
  /// Creates a registry holding the two standard NFSv4.1 schemes.
  static AggregationRegistry with_standard_drivers();

  void add(std::unique_ptr<AggregationDriver> driver);

  /// nullptr when the scheme is unknown to this registry.
  const AggregationDriver* find(AggregationType type) const;

 private:
  std::map<AggregationType, std::unique_ptr<AggregationDriver>> drivers_;
};

}  // namespace dpnfs::nfs
