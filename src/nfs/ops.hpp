// NFSv4.1 COMPOUND operation arguments and results.
//
// A COMPOUND request is a sequence of operations executed against an
// implicit "current filehandle" (and a saved filehandle for RENAME).  The
// server evaluates ops in order and stops at the first failure, exactly as
// RFC 5661 prescribes.  Each op's argument/result struct carries its own
// XDR codec; CompoundBuilder/CompoundReader (client side) and the server's
// dispatcher share these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nfs/layout.hpp"
#include "nfs/types.hpp"
#include "rpc/payload.hpp"
#include "rpc/xdr.hpp"

namespace dpnfs::nfs {

// ---------------------------------------------------------------------------
// Session management
// ---------------------------------------------------------------------------

struct ExchangeIdArgs {
  std::string client_owner;

  void encode(rpc::XdrEncoder& enc) const { enc.put_string(client_owner); }
  static ExchangeIdArgs decode(rpc::XdrDecoder& dec) {
    return ExchangeIdArgs{dec.get_string()};
  }
};

struct ExchangeIdRes {
  uint64_t client_id = 0;

  void encode(rpc::XdrEncoder& enc) const { enc.put_u64(client_id); }
  static ExchangeIdRes decode(rpc::XdrDecoder& dec) {
    return ExchangeIdRes{dec.get_u64()};
  }
};

struct CreateSessionArgs {
  uint64_t client_id = 0;
  uint32_t requested_slots = 0;
  /// Backchannel port on the caller's node (0 = no backchannel).  Stands in
  /// for NFSv4.1's fore/back channel binding.
  uint32_t callback_port = 0;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_u64(client_id);
    enc.put_u32(requested_slots);
    enc.put_u32(callback_port);
  }
  static CreateSessionArgs decode(rpc::XdrDecoder& dec) {
    CreateSessionArgs a;
    a.client_id = dec.get_u64();
    a.requested_slots = dec.get_u32();
    a.callback_port = dec.get_u32();
    return a;
  }
};

struct CreateSessionRes {
  SessionId session;
  uint32_t max_slots = 0;

  void encode(rpc::XdrEncoder& enc) const {
    session.encode(enc);
    enc.put_u32(max_slots);
  }
  static CreateSessionRes decode(rpc::XdrDecoder& dec) {
    CreateSessionRes r;
    r.session = SessionId::decode(dec);
    r.max_slots = dec.get_u32();
    return r;
  }
};

struct SequenceArgs {
  SessionId session;
  uint32_t slot = 0;

  void encode(rpc::XdrEncoder& enc) const {
    session.encode(enc);
    enc.put_u32(slot);
  }
  static SequenceArgs decode(rpc::XdrDecoder& dec) {
    SequenceArgs a;
    a.session = SessionId::decode(dec);
    a.slot = dec.get_u32();
    return a;
  }
};

// ---------------------------------------------------------------------------
// Filehandle navigation
// ---------------------------------------------------------------------------

struct PutFhArgs {
  FileHandle fh;

  void encode(rpc::XdrEncoder& enc) const { fh.encode(enc); }
  static PutFhArgs decode(rpc::XdrDecoder& dec) {
    return PutFhArgs{FileHandle::decode(dec)};
  }
};

struct GetFhRes {
  FileHandle fh;

  void encode(rpc::XdrEncoder& enc) const { fh.encode(enc); }
  static GetFhRes decode(rpc::XdrDecoder& dec) {
    return GetFhRes{FileHandle::decode(dec)};
  }
};

struct LookupArgs {
  std::string name;

  void encode(rpc::XdrEncoder& enc) const { enc.put_string(name); }
  static LookupArgs decode(rpc::XdrDecoder& dec) {
    return LookupArgs{dec.get_string()};
  }
};

// ---------------------------------------------------------------------------
// Namespace operations
// ---------------------------------------------------------------------------

struct CreateArgs {
  std::string name;  ///< directory to create under the current fh

  void encode(rpc::XdrEncoder& enc) const { enc.put_string(name); }
  static CreateArgs decode(rpc::XdrDecoder& dec) {
    return CreateArgs{dec.get_string()};
  }
};

/// OPEN share access (RFC 5661 §18.16 flavour).
enum class ShareAccess : uint32_t { kRead = 1, kWrite = 2, kBoth = 3 };

/// Delegation granted with an OPEN.
enum class DelegationType : uint32_t { kNone = 0, kRead = 1 };

struct OpenArgs {
  std::string name;
  bool create = false;
  ShareAccess share = ShareAccess::kBoth;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_string(name);
    enc.put_bool(create);
    enc.put_u32(static_cast<uint32_t>(share));
  }
  static OpenArgs decode(rpc::XdrDecoder& dec) {
    OpenArgs a;
    a.name = dec.get_string();
    a.create = dec.get_bool();
    const uint32_t s = dec.get_u32();
    if (s < 1 || s > 3) throw rpc::XdrError("bad share access");
    a.share = static_cast<ShareAccess>(s);
    return a;
  }
};

struct OpenRes {
  Stateid stateid;
  Fattr attr;
  DelegationType delegation = DelegationType::kNone;

  void encode(rpc::XdrEncoder& enc) const {
    stateid.encode(enc);
    attr.encode(enc);
    enc.put_u32(static_cast<uint32_t>(delegation));
  }
  static OpenRes decode(rpc::XdrDecoder& dec) {
    OpenRes r;
    r.stateid = Stateid::decode(dec);
    r.attr = Fattr::decode(dec);
    const uint32_t d = dec.get_u32();
    if (d > 1) throw rpc::XdrError("bad delegation type");
    r.delegation = static_cast<DelegationType>(d);
    return r;
  }
};

struct CloseArgs {
  Stateid stateid;

  void encode(rpc::XdrEncoder& enc) const { stateid.encode(enc); }
  static CloseArgs decode(rpc::XdrDecoder& dec) {
    return CloseArgs{Stateid::decode(dec)};
  }
};

struct RemoveArgs {
  std::string name;

  void encode(rpc::XdrEncoder& enc) const { enc.put_string(name); }
  static RemoveArgs decode(rpc::XdrDecoder& dec) {
    return RemoveArgs{dec.get_string()};
  }
};

struct RenameArgs {
  std::string old_name;  ///< in the saved fh directory
  std::string new_name;  ///< in the current fh directory

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_string(old_name);
    enc.put_string(new_name);
  }
  static RenameArgs decode(rpc::XdrDecoder& dec) {
    RenameArgs a;
    a.old_name = dec.get_string();
    a.new_name = dec.get_string();
    return a;
  }
};

struct DirEntry {
  std::string name;
  uint64_t fileid = 0;
  FileType type = FileType::kRegular;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_string(name);
    enc.put_u64(fileid);
    enc.put_u32(static_cast<uint32_t>(type));
  }
  static DirEntry decode(rpc::XdrDecoder& dec) {
    DirEntry e;
    e.name = dec.get_string();
    e.fileid = dec.get_u64();
    const uint32_t t = dec.get_u32();
    if (t != 1 && t != 2) throw rpc::XdrError("bad dirent type");
    e.type = static_cast<FileType>(t);
    return e;
  }
};

struct ReaddirRes {
  std::vector<DirEntry> entries;

  void encode(rpc::XdrEncoder& enc) const { enc.put_array(entries); }
  static ReaddirRes decode(rpc::XdrDecoder& dec) {
    return ReaddirRes{dec.get_array<DirEntry>()};
  }
};

struct GetattrRes {
  Fattr attr;

  void encode(rpc::XdrEncoder& enc) const { attr.encode(enc); }
  static GetattrRes decode(rpc::XdrDecoder& dec) {
    return GetattrRes{Fattr::decode(dec)};
  }
};

struct SetattrArgs {
  bool set_size = false;
  uint64_t size = 0;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_bool(set_size);
    enc.put_u64(size);
  }
  static SetattrArgs decode(rpc::XdrDecoder& dec) {
    SetattrArgs a;
    a.set_size = dec.get_bool();
    a.size = dec.get_u64();
    return a;
  }
};

// ---------------------------------------------------------------------------
// Data operations
// ---------------------------------------------------------------------------

/// One (offset, count) region of a vectored READ/WRITE.  A vectored
/// operation carries a sorted list of these; the data bytes travel as one
/// scatter-gather payload holding the regions' contents concatenated in
/// list order.
struct IoRegion {
  uint64_t offset = 0;
  uint32_t count = 0;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_u64(offset);
    enc.put_u32(count);
  }
  static IoRegion decode(rpc::XdrDecoder& dec) {
    IoRegion r;
    r.offset = dec.get_u64();
    r.count = dec.get_u32();
    return r;
  }
};

/// READ / READV arguments.  The request API is vectored: `regions` holds
/// one or more ranges and the classic single-range READ is the 1-element
/// case.  On the wire a 1-element request still travels as OpCode::kRead
/// with the original (golden-pinned) encoding; 2+ regions travel as
/// OpCode::kReadv — `opcode()` picks, so call sites write
/// `b.add(a.opcode(), a)` and stay wire-compatible for singles.
struct ReadArgs {
  Stateid stateid;
  std::vector<IoRegion> regions;

  ReadArgs() = default;
  ReadArgs(Stateid sid, uint64_t offset, uint32_t count)
      : stateid(sid), regions{{offset, count}} {}
  ReadArgs(Stateid sid, std::vector<IoRegion> r)
      : stateid(sid), regions(std::move(r)) {}

  OpCode opcode() const {
    return regions.size() > 1 ? OpCode::kReadv : OpCode::kRead;
  }
  uint64_t total_count() const {
    uint64_t n = 0;
    for (const IoRegion& r : regions) n += r.count;
    return n;
  }

  void encode(rpc::XdrEncoder& enc) const {
    stateid.encode(enc);
    if (regions.size() > 1) {
      enc.put_array(regions);
    } else {
      enc.put_u64(regions.empty() ? 0 : regions[0].offset);
      enc.put_u32(regions.empty() ? 0 : regions[0].count);
    }
  }
  /// Decoder for the single-range kRead encoding.
  static ReadArgs decode(rpc::XdrDecoder& dec) {
    ReadArgs a;
    a.stateid = Stateid::decode(dec);
    const uint64_t offset = dec.get_u64();
    a.regions = {{offset, dec.get_u32()}};
    return a;
  }
  /// Decoder for the multi-range kReadv encoding.
  static ReadArgs decode_vectored(rpc::XdrDecoder& dec) {
    ReadArgs a;
    a.stateid = Stateid::decode(dec);
    a.regions = dec.get_array<IoRegion>();
    if (a.regions.empty()) throw rpc::XdrError("empty READV region list");
    return a;
  }
};

struct ReadRes {
  bool eof = false;
  rpc::Payload data;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_bool(eof);
    enc.put_payload(data);
  }
  static ReadRes decode(rpc::XdrDecoder& dec) {
    ReadRes r;
    r.eof = dec.get_bool();
    r.data = dec.get_payload();
    return r;
  }
};

/// READV result: per-region byte counts plus one concatenated payload.  A
/// region read short (past EOF) contributes fewer bytes than requested;
/// `eof` is set when any region touched end-of-file.
struct ReadvRes {
  bool eof = false;
  std::vector<uint32_t> lengths;
  rpc::Payload data;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_bool(eof);
    enc.put_u32(static_cast<uint32_t>(lengths.size()));
    for (uint32_t n : lengths) enc.put_u32(n);
    enc.put_payload(data);
  }
  static ReadvRes decode(rpc::XdrDecoder& dec) {
    ReadvRes r;
    r.eof = dec.get_bool();
    const uint32_t n = dec.get_u32();
    if (n > (1u << 20)) throw rpc::XdrError("READV length list too long");
    r.lengths.reserve(n);
    for (uint32_t i = 0; i < n; ++i) r.lengths.push_back(dec.get_u32());
    r.data = dec.get_payload();
    return r;
  }
};

/// WRITE / WRITEV arguments, vectored the same way as ReadArgs: `data`
/// holds the regions' bytes concatenated in list order, one stable_how and
/// (in the reply) one verifier cover every region.
struct WriteArgs {
  Stateid stateid;
  StableHow stable = StableHow::kUnstable;
  std::vector<IoRegion> regions;
  rpc::Payload data;

  WriteArgs() = default;
  WriteArgs(Stateid sid, uint64_t offset, StableHow s, rpc::Payload d)
      : stateid(sid),
        stable(s),
        regions{{offset, static_cast<uint32_t>(d.size())}},
        data(std::move(d)) {}
  WriteArgs(Stateid sid, std::vector<IoRegion> r, StableHow s, rpc::Payload d)
      : stateid(sid), stable(s), regions(std::move(r)), data(std::move(d)) {}

  OpCode opcode() const {
    return regions.size() > 1 ? OpCode::kWritev : OpCode::kWrite;
  }
  uint64_t total_count() const {
    uint64_t n = 0;
    for (const IoRegion& r : regions) n += r.count;
    return n;
  }

  void encode(rpc::XdrEncoder& enc) const {
    stateid.encode(enc);
    if (regions.size() > 1) {
      enc.put_u32(static_cast<uint32_t>(stable));
      enc.put_array(regions);
      enc.put_payload(data);
    } else {
      enc.put_u64(regions.empty() ? 0 : regions[0].offset);
      enc.put_u32(static_cast<uint32_t>(stable));
      enc.put_payload(data);
    }
  }
  /// Decoder for the single-range kWrite encoding.
  static WriteArgs decode(rpc::XdrDecoder& dec) {
    WriteArgs a;
    a.stateid = Stateid::decode(dec);
    const uint64_t offset = dec.get_u64();
    const uint32_t s = dec.get_u32();
    if (s > 2) throw rpc::XdrError("bad stable_how");
    a.stable = static_cast<StableHow>(s);
    a.data = dec.get_payload();
    a.regions = {{offset, static_cast<uint32_t>(a.data.size())}};
    return a;
  }
  /// Decoder for the multi-range kWritev encoding.
  static WriteArgs decode_vectored(rpc::XdrDecoder& dec) {
    WriteArgs a;
    a.stateid = Stateid::decode(dec);
    const uint32_t s = dec.get_u32();
    if (s > 2) throw rpc::XdrError("bad stable_how");
    a.stable = static_cast<StableHow>(s);
    a.regions = dec.get_array<IoRegion>();
    a.data = dec.get_payload();
    if (a.regions.empty()) throw rpc::XdrError("empty WRITEV region list");
    if (a.total_count() != a.data.size()) {
      throw rpc::XdrError("WRITEV payload does not match region list");
    }
    return a;
  }
};

struct WriteRes {
  uint64_t count = 0;
  StableHow committed = StableHow::kUnstable;
  /// Post-operation change attribute (keeps the writer's cached attributes
  /// coherent with its own I/O; 0 when the backend does not track one).
  uint64_t post_change = 0;
  /// Write verifier (RFC 5661 §18.32): the server's boot-instance cookie.
  /// A client holding UNSTABLE data must re-send it if a later COMMIT
  /// returns a different verifier — the server restarted in between and its
  /// volatile write cache is gone.
  uint64_t verifier = 0;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_u64(count);
    enc.put_u32(static_cast<uint32_t>(committed));
    enc.put_u64(post_change);
    enc.put_u64(verifier);
  }
  static WriteRes decode(rpc::XdrDecoder& dec) {
    WriteRes r;
    r.count = dec.get_u64();
    const uint32_t s = dec.get_u32();
    if (s > 2) throw rpc::XdrError("bad stable_how");
    r.committed = static_cast<StableHow>(s);
    r.post_change = dec.get_u64();
    r.verifier = dec.get_u64();
    return r;
  }
};

struct CommitArgs {
  uint64_t offset = 0;
  uint64_t count = 0;  ///< 0 == whole file

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_u64(offset);
    enc.put_u64(count);
  }
  static CommitArgs decode(rpc::XdrDecoder& dec) {
    CommitArgs a;
    a.offset = dec.get_u64();
    a.count = dec.get_u64();
    return a;
  }
};

struct CommitRes {
  /// Write verifier of the incarnation that executed the COMMIT.  Equal to
  /// the verifier of every WRITE it covers iff no restart intervened.
  uint64_t verifier = 0;

  void encode(rpc::XdrEncoder& enc) const { enc.put_u64(verifier); }
  static CommitRes decode(rpc::XdrDecoder& dec) {
    return CommitRes{dec.get_u64()};
  }
};

// ---------------------------------------------------------------------------
// pNFS operations
// ---------------------------------------------------------------------------

struct GetDeviceListRes {
  std::vector<DeviceEntry> devices;

  void encode(rpc::XdrEncoder& enc) const { enc.put_array(devices); }
  static GetDeviceListRes decode(rpc::XdrDecoder& dec) {
    return GetDeviceListRes{dec.get_array<DeviceEntry>()};
  }
};

enum class LayoutIoMode : uint32_t { kRead = 1, kReadWrite = 2 };

struct LayoutGetArgs {
  LayoutIoMode iomode = LayoutIoMode::kReadWrite;
  uint64_t offset = 0;
  uint64_t length = ~0ull;  ///< whole file by default

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_u32(static_cast<uint32_t>(iomode));
    enc.put_u64(offset);
    enc.put_u64(length);
  }
  static LayoutGetArgs decode(rpc::XdrDecoder& dec) {
    LayoutGetArgs a;
    const uint32_t m = dec.get_u32();
    if (m != 1 && m != 2) throw rpc::XdrError("bad iomode");
    a.iomode = static_cast<LayoutIoMode>(m);
    a.offset = dec.get_u64();
    a.length = dec.get_u64();
    return a;
  }
};

struct LayoutGetRes {
  FileLayout layout;

  void encode(rpc::XdrEncoder& enc) const { layout.encode(enc); }
  static LayoutGetRes decode(rpc::XdrDecoder& dec) {
    return LayoutGetRes{FileLayout::decode(dec)};
  }
};

struct LayoutCommitArgs {
  uint64_t new_size = 0;
  bool size_changed = false;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_u64(new_size);
    enc.put_bool(size_changed);
  }
  static LayoutCommitArgs decode(rpc::XdrDecoder& dec) {
    LayoutCommitArgs a;
    a.new_size = dec.get_u64();
    a.size_changed = dec.get_bool();
    return a;
  }
};

struct LayoutCommitRes {
  /// Post-commit change attribute (0 when untracked).
  uint64_t post_change = 0;

  void encode(rpc::XdrEncoder& enc) const { enc.put_u64(post_change); }
  static LayoutCommitRes decode(rpc::XdrDecoder& dec) {
    return LayoutCommitRes{dec.get_u64()};
  }
};

struct LayoutReturnArgs {
  uint64_t offset = 0;
  uint64_t length = ~0ull;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_u64(offset);
    enc.put_u64(length);
  }
  static LayoutReturnArgs decode(rpc::XdrDecoder& dec) {
    LayoutReturnArgs a;
    a.offset = dec.get_u64();
    a.length = dec.get_u64();
    return a;
  }
};

// ---------------------------------------------------------------------------
// Callback (backchannel) operations
// ---------------------------------------------------------------------------

/// RPC procedure numbers on the NFS program.
inline constexpr uint32_t kProcCompound = 1;
inline constexpr uint32_t kProcCbLayoutRecall = 2;
inline constexpr uint32_t kProcCbRecallDelegation = 3;

struct CbLayoutRecallArgs {
  FileHandle fh;

  void encode(rpc::XdrEncoder& enc) const { fh.encode(enc); }
  static CbLayoutRecallArgs decode(rpc::XdrDecoder& dec) {
    return CbLayoutRecallArgs{FileHandle::decode(dec)};
  }
};

struct CbRecallDelegationArgs {
  FileHandle fh;

  void encode(rpc::XdrEncoder& enc) const { fh.encode(enc); }
  static CbRecallDelegationArgs decode(rpc::XdrDecoder& dec) {
    return CbRecallDelegationArgs{FileHandle::decode(dec)};
  }
};

// ---------------------------------------------------------------------------
// COMPOUND framing helpers
// ---------------------------------------------------------------------------

/// Client-side COMPOUND assembly: ops are appended in execution order.
class CompoundBuilder {
 public:
  CompoundBuilder() { enc_.put_u32(0); /* op count, back-patched */ }

  /// Op with no arguments (PUTROOTFH, GETFH, SAVEFH, RESTOREFH, READDIR...).
  void add(OpCode op) {
    ++count_;
    enc_.put_u32(static_cast<uint32_t>(op));
  }

  template <typename Args>
  void add(OpCode op, const Args& args) {
    ++count_;
    enc_.put_u32(static_cast<uint32_t>(op));
    args.encode(enc_);
  }

  uint32_t op_count() const noexcept { return count_; }

  /// Finalizes into an encoder suitable for RpcClient::call.
  rpc::XdrEncoder finish() && {
    enc_.patch_u32(0, count_);
    return std::move(enc_);
  }

 private:
  uint32_t count_ = 0;
  rpc::XdrEncoder enc_;
};

/// Per-op result header inside a COMPOUND reply.
struct OpResultHeader {
  OpCode op;
  Status status;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_u32(static_cast<uint32_t>(op));
    enc.put_u32(static_cast<uint32_t>(status));
  }
  static OpResultHeader decode(rpc::XdrDecoder& dec) {
    OpResultHeader h;
    h.op = static_cast<OpCode>(dec.get_u32());
    h.status = static_cast<Status>(dec.get_u32());
    return h;
  }
};

}  // namespace dpnfs::nfs
