#include "nfs/client.hpp"

#include <algorithm>
#include <cassert>

#include "nfs/compound_reply.hpp"
#include "util/format.hpp"
#include "util/log.hpp"
#include "util/reed_solomon.hpp"

namespace dpnfs::nfs {

using rpc::Payload;
using sim::Task;

namespace {

constexpr uint32_t kNfsVersion = 4;
constexpr uint16_t kBackchannelPortBase = 4044;

uint64_t round_down(uint64_t v, uint64_t m) { return v / m * m; }
uint64_t round_up(uint64_t v, uint64_t m) { return (v + m - 1) / m * m; }

/// Splits "/a/b/c" into ("/a/b", "c").  The parent of "/x" is "/".
std::pair<std::string, std::string> split_parent(const std::string& path) {
  if (path.empty() || path[0] != '/' || path == "/") {
    throw NfsError(Status::kInval, "bad path: " + path);
  }
  const size_t slash = path.find_last_of('/');
  std::string dir = (slash == 0) ? "/" : path.substr(0, slash);
  return {std::move(dir), path.substr(slash + 1)};
}

std::vector<std::string> path_components(const std::string& path) {
  std::vector<std::string> out;
  size_t pos = 1;
  while (pos < path.size()) {
    const size_t next = path.find('/', pos);
    const size_t end = (next == std::string::npos) ? path.size() : next;
    if (end > pos) out.push_back(path.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

}  // namespace

NfsClient::NfsClient(rpc::RpcFabric& fabric, sim::Node& node,
                     rpc::RpcAddress mds, std::string principal,
                     ClientConfig config,
                     std::shared_ptr<const AggregationRegistry> aggregations)
    : fabric_(fabric),
      node_(node),
      mds_(mds),
      rpc_(fabric, node, std::move(principal)),
      config_(config),
      aggregations_(std::move(aggregations)) {
  rpc_.set_tenant(config_.tenant_id);
  if (!aggregations_) {
    aggregations_ = std::make_shared<const AggregationRegistry>(
        AggregationRegistry::with_standard_drivers());
  }
  if (obs::MetricsRegistry* reg = fabric.metrics()) {
    const std::string& n = node.name();
    m_hit_bytes_ = &reg->counter(n, "client.cache", "hit_bytes");
    m_miss_bytes_ = &reg->counter(n, "client.cache", "miss_bytes");
    m_read_bytes_ = &reg->counter(n, "client.cache", "read_bytes");
    m_write_bytes_ = &reg->counter(n, "client.cache", "write_bytes");
    m_readahead_fetches_ =
        &reg->counter(n, "client.cache", "readahead_fetches");
    m_rpcs_ = &reg->counter(n, "client.cache", "rpcs");
    m_sched_writes_ = &reg->counter(n, "client.sched", "dispatched_writes");
    m_sched_bytes_ = &reg->counter(n, "client.sched", "dispatched_bytes");
    m_sched_coalesced_extents_ =
        &reg->counter(n, "client.sched", "coalesced_extents");
    m_sched_coalesced_bytes_ =
        &reg->counter(n, "client.sched", "coalesced_bytes");
    m_vectored_writes_ = &reg->counter(n, "client.sched", "vectored_writes");
    m_vectored_regions_ = &reg->counter(n, "client.sched", "vectored_regions");
    m_vectored_bytes_ = &reg->counter(n, "client.sched", "vectored_bytes");
    m_retries_ = &reg->counter(n, "client.recovery", "retries");
    m_fallbacks_ = &reg->counter(n, "client.recovery", "fallbacks");
    m_breaker_trips_ = &reg->counter(n, "client.recovery", "breaker_trips");
    m_layout_refetches_ =
        &reg->counter(n, "client.recovery", "layout_refetches");
    m_rpc_retries_ = &reg->counter(n, "client.recovery", "rpc_retries");
    m_verifier_mismatches_ =
        &reg->counter(n, "client.replay", "verifier_mismatches");
    m_replayed_extents_ = &reg->counter(n, "client.replay", "replayed_extents");
    m_replayed_bytes_ = &reg->counter(n, "client.replay", "replayed_bytes");
    m_session_recoveries_ =
        &reg->counter(n, "client.replay", "session_recoveries");
    m_replica_reroutes_ =
        &reg->counter(n, "client.redundancy", "replica_reroutes");
    m_degraded_reads_ = &reg->counter(n, "client.redundancy", "degraded_reads");
    m_degraded_read_bytes_ =
        &reg->counter(n, "client.redundancy", "degraded_read_bytes");
    m_ec_reconstructions_ =
        &reg->counter(n, "client.redundancy", "ec_reconstructions");
    m_degraded_writes_ =
        &reg->counter(n, "client.redundancy", "degraded_writes");
    m_degraded_commits_ =
        &reg->counter(n, "client.redundancy", "degraded_commits");
  } else {
    m_hit_bytes_ = &obs::MetricsRegistry::null_counter();
    m_miss_bytes_ = &obs::MetricsRegistry::null_counter();
    m_read_bytes_ = &obs::MetricsRegistry::null_counter();
    m_write_bytes_ = &obs::MetricsRegistry::null_counter();
    m_readahead_fetches_ = &obs::MetricsRegistry::null_counter();
    m_rpcs_ = &obs::MetricsRegistry::null_counter();
    m_sched_writes_ = &obs::MetricsRegistry::null_counter();
    m_sched_bytes_ = &obs::MetricsRegistry::null_counter();
    m_sched_coalesced_extents_ = &obs::MetricsRegistry::null_counter();
    m_sched_coalesced_bytes_ = &obs::MetricsRegistry::null_counter();
    m_vectored_writes_ = &obs::MetricsRegistry::null_counter();
    m_vectored_regions_ = &obs::MetricsRegistry::null_counter();
    m_vectored_bytes_ = &obs::MetricsRegistry::null_counter();
    m_retries_ = &obs::MetricsRegistry::null_counter();
    m_fallbacks_ = &obs::MetricsRegistry::null_counter();
    m_breaker_trips_ = &obs::MetricsRegistry::null_counter();
    m_layout_refetches_ = &obs::MetricsRegistry::null_counter();
    m_rpc_retries_ = &obs::MetricsRegistry::null_counter();
    m_verifier_mismatches_ = &obs::MetricsRegistry::null_counter();
    m_replayed_extents_ = &obs::MetricsRegistry::null_counter();
    m_replayed_bytes_ = &obs::MetricsRegistry::null_counter();
    m_session_recoveries_ = &obs::MetricsRegistry::null_counter();
    m_replica_reroutes_ = &obs::MetricsRegistry::null_counter();
    m_degraded_reads_ = &obs::MetricsRegistry::null_counter();
    m_degraded_read_bytes_ = &obs::MetricsRegistry::null_counter();
    m_ec_reconstructions_ = &obs::MetricsRegistry::null_counter();
    m_degraded_writes_ = &obs::MetricsRegistry::null_counter();
    m_degraded_commits_ = &obs::MetricsRegistry::null_counter();
  }
  // Transport-level retries surface under this client's recovery component.
  rpc_.set_retry_counter(m_rpc_retries_);
  tracer_ = fabric.tracer();
  tx_gate_ = std::make_unique<sim::Semaphore>(
      fabric.simulation(), std::max<uint32_t>(1, config_.wb_wire_tokens));
}

NfsClient::~NfsClient() = default;

// ---------------------------------------------------------------------------
// Sessions and compound plumbing
// ---------------------------------------------------------------------------

Task<std::shared_ptr<NfsClient::Session>> NfsClient::session_for(
    rpc::RpcAddress addr) {
  while (true) {
    if (auto it = sessions_.find(addr); it != sessions_.end()) {
      co_return it->second;
    }
    if (auto it = session_creating_.find(addr); it != session_creating_.end()) {
      auto latch = it->second;
      co_await latch->wait();
      continue;  // re-check
    }
    auto latch = std::make_shared<sim::Latch>(fabric_.simulation());
    session_creating_.emplace(addr, latch);

    try {
      CompoundBuilder b;
      b.add(OpCode::kExchangeId, ExchangeIdArgs{rpc_.principal()});
      auto raw = co_await rpc_.call(addr, rpc::Program::kNfs, kNfsVersion,
                                    kProcCompound, std::move(b).finish(),
                                    call_options(addr));
      ++stats_.rpcs;
      m_rpcs_->inc();
      CompoundReply r1(std::move(raw));
      const auto eid = r1.expect<ExchangeIdRes>(OpCode::kExchangeId);

      // Bind the backchannel to the MDS session only: layouts (the things a
      // server recalls) are granted there.
      uint32_t cb_port = 0;
      if (addr == mds_ && config_.enable_backchannel) {
        start_backchannel();
        if (backchannel_) cb_port = backchannel_->address().port;
      }
      CompoundBuilder b2;
      b2.add(OpCode::kCreateSession,
             CreateSessionArgs{eid.client_id, config_.session_slots, cb_port});
      auto raw2 = co_await rpc_.call(addr, rpc::Program::kNfs, kNfsVersion,
                                     kProcCompound, std::move(b2).finish(),
                                     call_options(addr));
      ++stats_.rpcs;
      m_rpcs_->inc();
      CompoundReply r2(std::move(raw2));
      const auto cs = r2.expect<CreateSessionRes>(OpCode::kCreateSession);

      auto session = std::make_shared<Session>();
      session->id = cs.session;
      session->slots = std::make_unique<sim::Semaphore>(
          fabric_.simulation(), std::max<uint32_t>(1, cs.max_slots));
      sessions_[addr] = session;
      session_creating_.erase(addr);
      latch->set();
      co_return session;
    } catch (...) {
      // Wake anyone parked on the latch; they retry (and likely fail the
      // same way) instead of hanging forever on a dead server.
      session_creating_.erase(addr);
      latch->set();
      throw;
    }
  }
}

/// Call policy for `addr`: data-server calls carry the configured deadline
/// and transport retry budget; MDS calls keep the unbounded legacy behavior
/// (the MDS is the recovery path — timing it out has nowhere to go).
rpc::CallOptions NfsClient::call_options(const rpc::RpcAddress& addr) const {
  rpc::CallOptions opts;
  if (addr == mds_) {
    if (config_.mds_timeout > 0) {
      opts.timeout = config_.mds_timeout;
      opts.max_retries = config_.ds_rpc_retries;
      opts.backoff = config_.mds_timeout / 4;
    }
  } else if (config_.ds_timeout > 0) {
    opts.timeout = config_.ds_timeout;
    opts.max_retries = config_.ds_rpc_retries;
    opts.backoff = config_.ds_timeout / 4;
  }
  return opts;
}

namespace {

/// The SEQUENCE result is always the compound's first; its status tells us
/// whether the server recognized our session.  Returns kOk for replies that
/// cannot be peeked (transport failures surface via CompoundReply instead).
Status peek_sequence_status(const rpc::RpcClient::Reply& reply) {
  if (!reply.ok()) return Status::kOk;
  try {
    rpc::XdrDecoder dec = reply.body();
    if (dec.get_u32() == 0) return Status::kOk;
    const OpResultHeader h = OpResultHeader::decode(dec);
    return h.op == OpCode::kSequence ? h.status : Status::kOk;
  } catch (const rpc::XdrError&) {
    return Status::kOk;
  }
}

}  // namespace

void NfsClient::session_lost(const rpc::RpcAddress& addr,
                             const SessionId& sid) {
  if (auto it = sessions_.find(addr);
      it != sessions_.end() && it->second->id == sid) {
    sessions_.erase(it);
  }
  ++stats_.session_recoveries;
  m_session_recoveries_->inc();
  if (addr == mds_) {
    // The MDS restarted: layouts and open stateids it granted died with it.
    // Layouts are re-fetched once per file at the next data-path entry;
    // opens degrade to the anonymous stateid (the revived server holds no
    // open state to match, and CLOSE would only earn a BAD_STATEID).
    for (auto& [ino, f] : files_) {
      if (f->layout) f->layout_stale = true;
      f->server_opens = 0;
      f->open_stateids.clear();
    }
  }
  util::logf(util::LogLevel::kInfo, "nfs.client", fabric_.simulation().now(),
             "session %llu to node %u port %u lost (server restart); "
             "re-establishing",
             static_cast<unsigned long long>(sid.id), addr.node_id,
             static_cast<unsigned>(addr.port));
  if (obs::FlightRecorder* flight = fabric_.flight()) {
    flight->record(fabric_.simulation().now(), node_.name(), "nfs.client",
                   "session.lost",
                   util::sformat("session %llu node %u port %u",
                                 static_cast<unsigned long long>(sid.id),
                                 addr.node_id,
                                 static_cast<unsigned>(addr.port)));
  }
}

Task<rpc::RpcClient::Reply> NfsClient::call(rpc::RpcAddress addr,
                                            CompoundBuilder builder,
                                            uint64_t data_bytes,
                                            obs::TraceContext trace_parent) {
  // Attempts to revive a session against a restarted server before the
  // BADSESSION/GRACE answer surfaces to the caller as an error.
  constexpr uint32_t kSessionRetries = 3;
  rpc::XdrEncoder encoded = std::move(builder).finish();
  for (uint32_t attempt = 0;; ++attempt) {
    std::shared_ptr<Session> s = co_await session_for(addr);
    // Every compound starts with SEQUENCE, so the session id sits at a fixed
    // offset: [0,4) op count, [4,8) opcode, [8,16) session id.  Patching it
    // here (instead of trusting the id baked in at build time) lets a
    // re-established session re-send the identical compound.
    rpc::XdrEncoder msg = encoded;
    msg.patch_u32(8, static_cast<uint32_t>(s->id.id >> 32));
    msg.patch_u32(12, static_cast<uint32_t>(s->id.id & 0xFFFFFFFFu));
    co_await s->slots->acquire();
    const auto cpu = config_.cpu_per_rpc +
                     static_cast<sim::Duration>(config_.cpu_ns_per_byte *
                                                static_cast<double>(data_bytes));
    co_await node_.cpu().execute(cpu);
    ++stats_.rpcs;
    m_rpcs_->inc();
    rpc::CallOptions opts = call_options(addr);
    opts.parent = trace_parent;
    auto reply = co_await rpc_.call(addr, rpc::Program::kNfs, kNfsVersion,
                                    kProcCompound, std::move(msg), opts);
    s->slots->release();
    if (attempt < kSessionRetries) {
      const Status seq = peek_sequence_status(reply);
      if (seq == Status::kBadSession || seq == Status::kGrace) {
        session_lost(addr, s->id);
        continue;
      }
    }
    co_return reply;
  }
}

/// Starts a compound with a SEQUENCE op for `addr`'s session.  The session
/// must already exist (call() creates it on demand, but the SEQUENCE carries
/// the id, so callers go through session_for first).
static CompoundBuilder with_sequence(const SessionId& sid) {
  CompoundBuilder b;
  b.add(OpCode::kSequence, SequenceArgs{sid, 0});
  return b;
}

// ---------------------------------------------------------------------------
// Mount and path resolution
// ---------------------------------------------------------------------------

Task<void> NfsClient::mount() {
  if (mounted_) co_return;
  auto s = co_await session_for(mds_);

  CompoundBuilder b = with_sequence(s->id);
  b.add(OpCode::kPutRootFh);
  b.add(OpCode::kGetFh);
  CompoundReply r(co_await call(mds_, std::move(b), 0));
  r.expect(OpCode::kSequence);
  r.expect(OpCode::kPutRootFh);
  root_fh_ = r.expect<GetFhRes>(OpCode::kGetFh).fh;
  dentry_cache_["/"] = root_fh_;

  if (config_.pnfs_enabled) {
    CompoundBuilder b2 = with_sequence(s->id);
    b2.add(OpCode::kPutRootFh);
    b2.add(OpCode::kGetDeviceList);
    CompoundReply r2(co_await call(mds_, std::move(b2), 0));
    r2.expect(OpCode::kSequence);
    r2.expect(OpCode::kPutRootFh);
    if (r2.try_next(OpCode::kGetDeviceList) == Status::kOk) {
      const auto res = GetDeviceListRes::decode(r2.dec());
      for (const auto& d : res.devices) {
        devices_[d.device] = rpc::RpcAddress{d.node_id, d.port};
      }
    }
  }
  mounted_ = true;
}

Task<FileHandle> NfsClient::resolve(const std::string& path) {
  if (auto it = dentry_cache_.find(path); it != dentry_cache_.end()) {
    co_return it->second;
  }
  // Deepest cached ancestor.
  const auto comps = path_components(path);
  std::string cur = "/";
  FileHandle cur_fh = root_fh_;
  size_t start = 0;
  {
    std::string probe = "";
    for (size_t i = 0; i < comps.size(); ++i) {
      probe += "/" + comps[i];
      auto it = dentry_cache_.find(probe);
      if (it == dentry_cache_.end()) break;
      cur = probe;
      cur_fh = it->second;
      start = i + 1;
    }
  }
  if (start == comps.size()) co_return cur_fh;

  auto s = co_await session_for(mds_);
  CompoundBuilder b = with_sequence(s->id);
  b.add(OpCode::kPutFh, PutFhArgs{cur_fh});
  for (size_t i = start; i < comps.size(); ++i) {
    b.add(OpCode::kLookup, LookupArgs{comps[i]});
    b.add(OpCode::kGetFh);
  }
  CompoundReply r(co_await call(mds_, std::move(b), 0));
  r.expect(OpCode::kSequence);
  r.expect(OpCode::kPutFh);
  std::string walked = (cur == "/") ? "" : cur;
  FileHandle fh = cur_fh;
  for (size_t i = start; i < comps.size(); ++i) {
    r.expect(OpCode::kLookup);
    fh = r.expect<GetFhRes>(OpCode::kGetFh).fh;
    walked += "/" + comps[i];
    dentry_cache_[walked] = fh;
  }
  co_return fh;
}

void NfsClient::invalidate_dentries(const std::string& prefix) {
  auto it = dentry_cache_.lower_bound(prefix);
  while (it != dentry_cache_.end() && it->first.rfind(prefix, 0) == 0) {
    it = dentry_cache_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// Namespace operations
// ---------------------------------------------------------------------------

void NfsClient::start_backchannel() {
  if (backchannel_) return;
  // Pick the first free port in the backchannel range (several clients may
  // share one simulated node in tests).
  for (uint16_t port = kBackchannelPortBase; port < kBackchannelPortBase + 256;
       ++port) {
    try {
      backchannel_ = std::make_unique<rpc::RpcServer>(
          fabric_, node_, port, /*workers=*/2,
          [this](const rpc::CallContext& ctx, rpc::XdrDecoder& args,
                 rpc::XdrEncoder& results) -> Task<void> {
            return serve_callback(ctx, args, results);
          });
      backchannel_->start();
      return;
    } catch (const std::logic_error&) {
      continue;  // port taken
    }
  }
  util::logf(util::LogLevel::kWarn, "nfs.client", fabric_.simulation().now(),
             "no free backchannel port; layout recalls disabled");
}

Task<void> NfsClient::serve_callback(const rpc::CallContext& ctx,
                                     rpc::XdrDecoder& args,
                                     rpc::XdrEncoder& results) {
  (void)results;
  switch (ctx.header.proc) {
    case kProcCbLayoutRecall: {
      const auto a = CbLayoutRecallArgs::decode(args);
      ++recalls_served_;
      // Flush everything that went through this layout, then drop it;
      // further I/O flows through the MDS (or re-fetches a layout at the
      // next open).  Snapshot the FilePtr before suspending: the flush
      // co_awaits, and a concurrent close + drop_caches can erase map
      // entries out from under a live files_ iterator.
      FilePtr file;
      uint64_t ino = 0;
      for (auto& [id, state] : files_) {
        if (!(state->fh == a.fh) || !state->layout) continue;
        file = state;
        ino = id;
        break;
      }
      if (file) {
        for (int round = 0; round < 4; ++round) {
          co_await flush_dirty(file, /*only_full_chunks=*/false, /*wait=*/true);
          co_await commit_unstable(*file);
          if (file->dirty.empty() && file->unstable_targets.empty()) break;
        }
        file->layout.reset();
        util::logf(util::LogLevel::kInfo, "nfs.client",
                   fabric_.simulation().now(), "layout for fileid %llu recalled",
                   static_cast<unsigned long long>(ino));
      }
      co_return;
    }
    case kProcCbRecallDelegation: {
      const auto a = CbRecallDelegationArgs::decode(args);
      ++delegation_recalls_served_;
      for (auto& [ino, state] : files_) {
        if (!(state->fh == a.fh) || !state->read_delegation) continue;
        state->read_delegation = false;
        util::logf(util::LogLevel::kInfo, "nfs.client",
                   fabric_.simulation().now(),
                   "read delegation for fileid %llu recalled",
                   static_cast<unsigned long long>(ino));
        break;
      }
      co_return;
    }
    default:
      throw NfsError(Status::kNotSupp, "unknown callback procedure");
  }
}

Task<void> NfsClient::truncate(const std::string& path, uint64_t size) {
  const FileHandle fh = co_await resolve(path);
  auto s = co_await session_for(mds_);
  CompoundBuilder b = with_sequence(s->id);
  b.add(OpCode::kPutFh, PutFhArgs{fh});
  b.add(OpCode::kSetattr, SetattrArgs{true, size});
  CompoundReply r(co_await call(mds_, std::move(b), 0));
  r.expect(OpCode::kSequence);
  r.expect(OpCode::kPutFh);
  r.expect(OpCode::kSetattr);
  // Our own cached view of the file, if any, must shrink too.
  for (auto& [ino, state] : files_) {
    if (!(state->fh == fh)) continue;
    if (size < state->size) {
      const uint64_t valid_before = state->valid.total_length();
      const uint64_t dirty_before = state->dirty.total_length();
      state->valid.subtract(size, ~0ull);
      state->dirty.subtract(size, ~0ull);
      state->content.drop(size, ~0ull);
      // Truncated bytes need no replay either.
      for (auto& [idx, t] : state->commit_targets) {
        t.uncommitted.subtract(size, ~0ull);
      }
      account_valid_delta(*state, -static_cast<int64_t>(
                                      valid_before - state->valid.total_length()));
      dirty_bytes_ -= dirty_before - state->dirty.total_length();
    }
    state->size = size;
    break;
  }
}

Task<void> NfsClient::mkdir(const std::string& path) {
  const auto [dir, name] = split_parent(path);
  const FileHandle parent = co_await resolve(dir);
  auto s = co_await session_for(mds_);
  CompoundBuilder b = with_sequence(s->id);
  b.add(OpCode::kPutFh, PutFhArgs{parent});
  b.add(OpCode::kCreate, CreateArgs{name});
  b.add(OpCode::kGetFh);
  CompoundReply r(co_await call(mds_, std::move(b), 0));
  r.expect(OpCode::kSequence);
  r.expect(OpCode::kPutFh);
  r.expect(OpCode::kCreate);
  dentry_cache_[path] = r.expect<GetFhRes>(OpCode::kGetFh).fh;
}

Task<void> NfsClient::remove(const std::string& path) {
  const auto [dir, name] = split_parent(path);
  const FileHandle parent = co_await resolve(dir);
  auto s = co_await session_for(mds_);
  CompoundBuilder b = with_sequence(s->id);
  b.add(OpCode::kPutFh, PutFhArgs{parent});
  b.add(OpCode::kRemove, RemoveArgs{name});
  CompoundReply r(co_await call(mds_, std::move(b), 0));
  r.expect(OpCode::kSequence);
  r.expect(OpCode::kPutFh);
  r.expect(OpCode::kRemove);
  invalidate_dentries(path);
}

Task<void> NfsClient::rename(const std::string& from, const std::string& to) {
  const auto [src_dir, old_name] = split_parent(from);
  const auto [dst_dir, new_name] = split_parent(to);
  const FileHandle src = co_await resolve(src_dir);
  const FileHandle dst = co_await resolve(dst_dir);
  auto s = co_await session_for(mds_);
  CompoundBuilder b = with_sequence(s->id);
  b.add(OpCode::kPutFh, PutFhArgs{src});
  b.add(OpCode::kSaveFh);
  b.add(OpCode::kPutFh, PutFhArgs{dst});
  b.add(OpCode::kRename, RenameArgs{old_name, new_name});
  CompoundReply r(co_await call(mds_, std::move(b), 0));
  r.expect(OpCode::kSequence);
  r.expect(OpCode::kPutFh);
  r.expect(OpCode::kSaveFh);
  r.expect(OpCode::kPutFh);
  r.expect(OpCode::kRename);
  invalidate_dentries(from);
  invalidate_dentries(to);
}

Task<std::vector<DirEntry>> NfsClient::readdir(const std::string& path) {
  const FileHandle dir = co_await resolve(path);
  auto s = co_await session_for(mds_);
  CompoundBuilder b = with_sequence(s->id);
  b.add(OpCode::kPutFh, PutFhArgs{dir});
  b.add(OpCode::kReaddir);
  CompoundReply r(co_await call(mds_, std::move(b), 0));
  r.expect(OpCode::kSequence);
  r.expect(OpCode::kPutFh);
  co_return r.expect<ReaddirRes>(OpCode::kReaddir).entries;
}

Task<Fattr> NfsClient::stat(const std::string& path) {
  const FileHandle fh = co_await resolve(path);
  auto s = co_await session_for(mds_);
  CompoundBuilder b = with_sequence(s->id);
  b.add(OpCode::kPutFh, PutFhArgs{fh});
  b.add(OpCode::kGetattr);
  CompoundReply r(co_await call(mds_, std::move(b), 0));
  r.expect(OpCode::kSequence);
  r.expect(OpCode::kPutFh);
  co_return r.expect<GetattrRes>(OpCode::kGetattr).attr;
}

// ---------------------------------------------------------------------------
// Open / close
// ---------------------------------------------------------------------------

Task<NfsClient::FilePtr> NfsClient::open(const std::string& path, bool create,
                                         bool read_only) {
  // Delegation fast path: a held read delegation makes re-opens purely
  // local — no RPC, guaranteed-fresh cache.
  if (!create && read_only) {
    if (auto it = dentry_cache_.find(path); it != dentry_cache_.end()) {
      for (auto& [ino, state] : files_) {
        if (state->fh == it->second && state->read_delegation) {
          ++state->open_count;
          state->last_use = ++lru_clock_;
          co_return state;
        }
      }
    }
  }

  const auto [dir, name] = split_parent(path);
  const FileHandle parent = co_await resolve(dir);
  auto s = co_await session_for(mds_);
  CompoundBuilder b = with_sequence(s->id);
  b.add(OpCode::kPutFh, PutFhArgs{parent});
  b.add(OpCode::kOpen,
        OpenArgs{name, create,
                 read_only ? ShareAccess::kRead : ShareAccess::kBoth});
  b.add(OpCode::kGetFh);
  if (config_.pnfs_enabled) {
    b.add(OpCode::kLayoutGet,
          LayoutGetArgs{read_only ? LayoutIoMode::kRead
                                  : LayoutIoMode::kReadWrite,
                        0, ~0ull});
  }
  CompoundReply r(co_await call(mds_, std::move(b), 0));
  r.expect(OpCode::kSequence);
  r.expect(OpCode::kPutFh);
  const auto open_res = r.expect<OpenRes>(OpCode::kOpen);
  const FileHandle fh = r.expect<GetFhRes>(OpCode::kGetFh).fh;

  std::optional<FileLayout> layout;
  if (config_.pnfs_enabled && r.try_next(OpCode::kLayoutGet) == Status::kOk) {
    FileLayout l = LayoutGetRes::decode(r.dec()).layout;
    // Usable only when the aggregation scheme and every device are known.
    const bool driver_ok = aggregations_->find(l.aggregation) != nullptr;
    bool devices_ok = l.valid();
    for (const auto& d : l.devices) devices_ok &= devices_.contains(d);
    if (driver_ok && devices_ok) {
      layout = std::move(l);
    } else {
      util::logf(util::LogLevel::kWarn, "nfs.client",
                 fabric_.simulation().now(),
                 "layout for %s unusable (driver/devices); falling back to MDS I/O",
                 path.c_str());
    }
  }

  auto it = files_.find(open_res.attr.fileid);
  if (it == files_.end()) {
    auto state = std::make_shared<FileState>();
    state->fh = fh;
    state->stateid = open_res.stateid;
    state->attr = open_res.attr;
    state->size = open_res.attr.size;
    state->layout = std::move(layout);
    state->open_count = 1;
    // server_opens incremented below, with the reopen path.
    it = files_.emplace(open_res.attr.fileid, std::move(state)).first;
  } else {
    FileState& st = *it->second;
    // Close-to-open consistency: cached data from a previous open stays
    // valid only if the server-side file is unchanged.  A held read
    // delegation guarantees freshness without the comparison.
    if (st.open_count == 0 && !st.read_delegation &&
        (open_res.attr.change != st.attr.change ||
         open_res.attr.size != st.size)) {
      invalidate_clean(st);
      st.size = open_res.attr.size;
    }
    st.attr = open_res.attr;
    ++st.open_count;
    st.stateid = open_res.stateid;
    if (!st.layout) st.layout = std::move(layout);
  }
  ++it->second->server_opens;
  it->second->open_stateids.push_back(open_res.stateid);
  if (open_res.delegation == DelegationType::kRead) {
    it->second->read_delegation = true;
  }
  it->second->path = path;
  dentry_cache_[path] = fh;
  co_return it->second;
}

bool NfsClient::file_has_delegation(const FilePtr& file) const {
  return file->read_delegation;
}

Task<void> NfsClient::close(FilePtr file) {
  if (config_.commit_on_close) co_await fsync(file);

  if (file->open_count > 0) --file->open_count;
  // Delegation-elided opens have no server stateid; send CLOSE only while
  // the server holds more opens than we have handles left.
  Fattr fresh = file->attr;
  if (file->server_opens > file->open_count) {
    // Retire the newest still-live OPEN stateid (LIFO).  With concurrent
    // handles on one file the server holds one stateid per OPEN; presenting
    // the same one twice earns NFS4ERR_BAD_STATEID.
    Stateid closing = file->stateid;
    if (!file->open_stateids.empty()) {
      closing = file->open_stateids.back();
      file->open_stateids.pop_back();
      file->stateid =
          file->open_stateids.empty() ? closing : file->open_stateids.back();
    }
    auto s = co_await session_for(mds_);
    CompoundBuilder b = with_sequence(s->id);
    b.add(OpCode::kPutFh, PutFhArgs{file->fh});
    b.add(OpCode::kGetattr);  // refresh change/size for close-to-open caching
    b.add(OpCode::kClose, CloseArgs{closing});
    CompoundReply r(co_await call(mds_, std::move(b), 0));
    r.expect(OpCode::kSequence);
    r.expect(OpCode::kPutFh);
    fresh = r.expect<GetattrRes>(OpCode::kGetattr).attr;
    r.expect(OpCode::kClose);
    --file->server_opens;
  }

  if (file->open_count == 0) {
    // The page cache survives close (Linux semantics): clean data stays for
    // the next open, subject to close-to-open revalidation against these
    // freshly fetched attributes, and to LRU eviction.  If the attributes
    // already show someone else's changes, drop the cache now.
    if (!file->read_delegation && (fresh.change != file->attr.change ||
                                   fresh.size != file->size)) {
      invalidate_clean(*file);
    }
    file->attr = fresh;
    file->size = fresh.size;
    file->expected_seq_offset = 0;
    file->readahead_high = 0;
  }
}

void NfsClient::invalidate_clean(FileState& st) {
  // Pinned ranges (dirty + retained uncommitted writes) survive: dropping a
  // retained range would discard the only copy a restart replay needs.
  const util::IntervalSet pin = st.pinned();
  account_valid_delta(st, -static_cast<int64_t>(st.valid.total_length() -
                                                pin.total_length()));
  for (const auto& iv : st.valid.intervals()) {
    for (const auto& clean : pin.gaps(iv.start, iv.end)) {
      st.content.drop(clean.start, clean.end);
    }
  }
  st.valid = pin;
  st.readahead_high = 0;
}

uint64_t NfsClient::file_size(const FilePtr& file) const { return file->size; }

void NfsClient::drop_caches() {
  for (auto it = files_.begin(); it != files_.end();) {
    FileState& st = *it->second;
    const util::IntervalSet pin = st.pinned();
    if (st.open_count == 0 && pin.empty()) {
      account_valid_delta(st, -static_cast<int64_t>(st.valid.total_length()));
      dirty_bytes_ -= st.dirty.total_length();
      it = files_.erase(it);
      continue;
    }
    for (const auto& iv : st.valid.intervals()) {
      for (const auto& clean : pin.gaps(iv.start, iv.end)) {
        st.content.drop(clean.start, clean.end);
        account_valid_delta(st, -static_cast<int64_t>(clean.length()));
      }
    }
    st.valid = pin;
    st.readahead_high = 0;
    ++it;
  }
}

bool NfsClient::file_has_layout(const FilePtr& file) const {
  return file->layout.has_value();
}

// ---------------------------------------------------------------------------
// I/O routing
// ---------------------------------------------------------------------------

NfsClient::IoSlice NfsClient::mds_slice(const FileState& f, uint64_t offset,
                                        uint64_t length) const {
  IoSlice slice;
  slice.device_index = IoSlice::kMds;
  slice.addr = mds_;
  slice.fh = f.fh;
  // Under a delegation-elided open there is no server-side open stateid;
  // reads ride the anonymous stateid (the delegation stateid, in effect).
  slice.stateid = f.server_opens > 0 ? f.stateid : kAnonymousStateid;
  slice.target_offset = offset;
  slice.file_offset = offset;
  slice.length = length;
  return slice;
}

std::vector<NfsClient::IoSlice> NfsClient::route(FileState& f, uint64_t offset,
                                                 uint64_t length,
                                                 bool for_write) {
  std::vector<IoSlice> out;
  if (f.layout) {
    const AggregationDriver* driver = aggregations_->find(f.layout->aggregation);
    assert(driver != nullptr);  // checked at open
    const auto segments = for_write
                              ? driver->map_write(*f.layout, offset, length)
                              : driver->map_read(*f.layout, offset, length);
    out.reserve(segments.size());
    const bool redundant = redundant_aggregation(f.layout->aggregation);
    for (const auto& seg : segments) {
      IoSlice slice;
      slice.device_index = seg.device_index;
      slice.addr = devices_.at(f.layout->devices[seg.device_index]);
      slice.fh = f.layout->fhs[seg.device_index];
      slice.stateid = kDataServerStateid;
      slice.target_offset = seg.dev_offset;
      slice.file_offset = seg.file_offset;
      slice.length = seg.length;
      slice.parity = seg.parity;
      if (!for_write && redundant &&
          device_unhealthy(f, seg.device_index, seg.file_offset,
                           seg.file_offset + seg.length)) {
        // Health-aware replica selection: route the read to a surviving
        // copy up front instead of burning retries on a sick device.
        // Erasure-coded layouts have no same-bytes replica; their slices go
        // out unchanged and reconstruct in run_read_slice's degraded rung.
        if (remap_replica(f, slice, seg.device_index)) {
          ++stats_.replica_reroutes;
          m_replica_reroutes_->inc();
        }
        out.push_back(slice);
        continue;
      }
      if (config_.mds_fallback && !redundant && !slice.parity &&
          breaker_open(slice.addr)) {
        // Open breaker: don't even try the sick DS, proxy through the MDS.
        // Redundant layouts never take this path — their surviving copies
        // or parity serve the bytes via the degraded rungs instead.
        slice = mds_slice(f, seg.file_offset, seg.length);
        ++stats_.mds_fallbacks;
        m_fallbacks_->inc();
        if (obs::FlightRecorder* flight = fabric_.flight()) {
          flight->record(fabric_.simulation().now(), node_.name(),
                         "nfs.client", "mds.fallback",
                         util::sformat("fileid %llu dev %zu %llu+%llu",
                                       static_cast<unsigned long long>(
                                           f.attr.fileid),
                                       seg.device_index,
                                       static_cast<unsigned long long>(
                                           seg.file_offset),
                                       static_cast<unsigned long long>(
                                           seg.length)));
        }
      }
      out.push_back(slice);
    }
    return out;
  }
  out.push_back(mds_slice(f, offset, length));
  return out;
}

// ---------------------------------------------------------------------------
// Data-server health and failure recovery
// ---------------------------------------------------------------------------

bool NfsClient::breaker_open(const rpc::RpcAddress& addr) const {
  const auto it = ds_health_.find(addr);
  return it != ds_health_.end() &&
         fabric_.simulation().now() < it->second.open_until;
}

void NfsClient::record_ds_result(const rpc::RpcAddress& addr, bool ok) {
  DsHealth& h = ds_health_[addr];
  if (ok) {
    h.consecutive_failures = 0;
    h.open_until = 0;
    return;
  }
  ++h.consecutive_failures;
  if (h.consecutive_failures == config_.breaker_threshold) {
    h.open_until = fabric_.simulation().now() + config_.breaker_reset;
    ++stats_.breaker_trips;
    m_breaker_trips_->inc();
    util::logf(util::LogLevel::kWarn, "nfs.client", fabric_.simulation().now(),
               "circuit breaker opened for DS node %u port %u",
               addr.node_id, static_cast<unsigned>(addr.port));
    if (obs::FlightRecorder* flight = fabric_.flight()) {
      flight->record(fabric_.simulation().now(), node_.name(), "nfs.client",
                     "breaker.trip",
                     util::sformat("ds node %u port %u until %lld ns",
                                   addr.node_id,
                                   static_cast<unsigned>(addr.port),
                                   static_cast<long long>(h.open_until)));
    }
  }
}

Task<void> NfsClient::refetch_layout(FileState& f, bool force) {
  if (!config_.pnfs_enabled || !f.layout) co_return;
  const sim::Time now = fabric_.simulation().now();
  if (!force && f.layout_refetched_at >= 0 &&
      now - f.layout_refetched_at < config_.breaker_reset) {
    co_return;  // refreshed recently; don't hammer the MDS per failed slice
  }
  f.layout_refetched_at = now;
  ++stats_.layout_refetches;
  m_layout_refetches_->inc();
  if (obs::FlightRecorder* flight = fabric_.flight()) {
    flight->record(now, node_.name(), "nfs.client", "layout.refetch",
                   util::sformat("fileid %llu%s",
                                 static_cast<unsigned long long>(
                                     f.attr.fileid),
                                 force ? " forced" : ""));
  }
  try {
    auto s = co_await session_for(mds_);
    CompoundBuilder b = with_sequence(s->id);
    b.add(OpCode::kPutFh, PutFhArgs{f.fh});
    b.add(OpCode::kLayoutGet,
          LayoutGetArgs{LayoutIoMode::kReadWrite, 0, ~0ull});
    CompoundReply r(co_await call(mds_, std::move(b), 0));
    r.expect(OpCode::kSequence);
    r.expect(OpCode::kPutFh);
    if (r.try_next(OpCode::kLayoutGet) == Status::kOk) {
      FileLayout l = LayoutGetRes::decode(r.dec()).layout;
      const bool driver_ok = aggregations_->find(l.aggregation) != nullptr;
      bool devices_ok = l.valid();
      for (const auto& d : l.devices) devices_ok &= devices_.contains(d);
      if (driver_ok && devices_ok) f.layout = std::move(l);
    }
  } catch (const NfsError&) {
    // Keep the stale layout; per-slice fallback still makes progress.
  }
}

Task<void> NfsClient::ensure_layout_fresh(FileState& f) {
  if (!f.layout_stale) co_return;
  // Exactly one LAYOUTGET per stale file, even if the refresh fails (the
  // stale layout then keeps serving; per-slice recovery handles fallout).
  f.layout_stale = false;
  co_await refetch_layout(f, /*force=*/true);
}

void NfsClient::note_unstable_write(FileState& f, const IoSlice& slice,
                                    uint64_t verifier) {
  f.unstable_targets.insert(slice.device_index);
  auto& t = f.commit_targets[slice.device_index];
  if (t.verifier_known && t.verifier != verifier) {
    // The target restarted between two of our WRITEs: everything retained
    // under the old verifier sat in volatile memory of the dead incarnation.
    // Re-dirty it now — minus the range this WRITE just (re)covered.
    t.uncommitted.subtract(slice.file_offset,
                           slice.file_offset + slice.length);
    redirty_lost(f, slice.device_index);
  }
  t.verifier_known = true;
  t.verifier = verifier;
  t.uncommitted.add(slice.file_offset, slice.file_offset + slice.length);
}

void NfsClient::redirty_lost(FileState& f, size_t target) {
  auto it = f.commit_targets.find(target);
  ++stats_.verifier_mismatches;
  m_verifier_mismatches_->inc();
  if (it == f.commit_targets.end() || it->second.uncommitted.empty()) return;
  uint64_t bytes = 0;
  uint64_t extents = 0;
  for (const auto& iv : it->second.uncommitted.intervals()) {
    const uint64_t before = f.dirty.total_length();
    f.dirty.add(iv.start, iv.end);
    dirty_bytes_ += f.dirty.total_length() - before;
    bytes += iv.length();
    ++extents;
  }
  it->second.uncommitted.clear();
  stats_.replayed_extents += extents;
  stats_.replayed_bytes += bytes;
  m_replayed_extents_->add(extents);
  m_replayed_bytes_->add(bytes);
  if (tracer_ != nullptr && tracer_->enabled()) {
    obs::TraceContext ctx = tracer_->begin({});
    obs::Span span;
    span.trace_id = ctx.trace_id;
    span.span_id = ctx.span_id;
    span.kind = obs::SpanKind::kInternal;
    span.name = "wb.replay/" +
                (target == IoSlice::kMds ? std::string("mds")
                                         : "dev" + std::to_string(target));
    span.node = node_.name();
    span.start = fabric_.simulation().now();
    span.end = fabric_.simulation().now();
    span.bytes_out = bytes;
    tracer_->record(std::move(span));
  }
  if (obs::FlightRecorder* flight = fabric_.flight()) {
    flight->record(fabric_.simulation().now(), node_.name(), "nfs.client",
                   "wb.replay",
                   util::sformat("fileid %llu target %lld %llu bytes "
                                 "%llu extents",
                                 static_cast<unsigned long long>(
                                     f.attr.fileid),
                                 static_cast<long long>(
                                     static_cast<int64_t>(target)),
                                 static_cast<unsigned long long>(bytes),
                                 static_cast<unsigned long long>(extents)));
  }
  util::logf(util::LogLevel::kWarn, "nfs.client", fabric_.simulation().now(),
             "write verifier changed for fileid %llu target %lld: replaying "
             "%llu bytes in %llu extents",
             static_cast<unsigned long long>(f.attr.fileid),
             static_cast<long long>(static_cast<int64_t>(target)),
             static_cast<unsigned long long>(bytes),
             static_cast<unsigned long long>(extents));
}

// ---------------------------------------------------------------------------
// Redundancy: replica reroute, degraded reads, erasure reconstruction
// ---------------------------------------------------------------------------

namespace {

/// The contiguous device-index span [base, base+count) holding the same
/// bytes as device `avoid` under a mirror-style layout.  False for layouts
/// without same-bytes replicas (erasure coding reconstructs instead).
bool replica_span(const FileLayout& l, size_t avoid, size_t* base,
                  size_t* count) {
  switch (l.aggregation) {
    case AggregationType::kReplicated:
      *base = 0;
      *count = l.devices.size();
      return true;
    case AggregationType::kNested: {
      if (l.params.empty() || l.params[0] == 0) return false;
      const size_t g = static_cast<size_t>(l.params[0]);
      *base = avoid / g * g;
      *count = g;
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

bool NfsClient::device_unhealthy(const FileState& f, size_t device,
                                 uint64_t start, uint64_t end) const {
  if (!f.layout || device >= f.layout->devices.size()) return false;
  const auto it = devices_.find(f.layout->devices[device]);
  if (it == devices_.end()) return true;
  if (breaker_open(it->second)) return true;
  const auto d = f.degraded.find(device);
  return d != f.degraded.end() && d->second.intersects(start, end);
}

bool NfsClient::remap_replica(const FileState& f, IoSlice& slice,
                              size_t avoid) const {
  if (!f.layout) return false;
  size_t base = 0;
  size_t count = 0;
  if (!replica_span(*f.layout, avoid, &base, &count)) return false;
  // Rotate from the avoided device so concurrent degraded readers spread
  // across the surviving copies.  Replicas hold the same bytes at the same
  // device offset, so only the identity fields change.
  for (size_t i = 1; i < count; ++i) {
    const size_t cand = base + ((avoid - base) + i) % count;
    if (cand >= f.layout->devices.size()) continue;
    if (device_unhealthy(f, cand, slice.file_offset,
                         slice.file_offset + slice.length)) {
      continue;
    }
    slice.device_index = cand;
    slice.addr = devices_.at(f.layout->devices[cand]);
    slice.fh = f.layout->fhs[cand];
    return true;
  }
  return false;
}

Task<bool> NfsClient::ec_reconstruct_block(FileState& f, const IoSlice& slice,
                                           Payload& block) {
  const auto geo = EcGeometry::from(*f.layout);
  if (!geo) co_return false;
  const uint64_t su = geo->su;
  const uint64_t stripe = slice.file_offset / su;
  const size_t want = static_cast<size_t>(stripe % geo->k);
  const uint64_t grp = stripe / geo->k;
  const uint64_t grp_start = grp * geo->group_bytes();
  const uint64_t grp_end = grp_start + geo->group_bytes();
  const size_t n = static_cast<size_t>(geo->k + geo->m);

  // Gather su-sized shards of the group from any k healthy devices.  Every
  // shard of group g — data and parity alike — sits at device offset g*su;
  // short reads zero-fill, matching the zero padding the writer encoded
  // over.
  std::vector<std::optional<std::vector<std::byte>>> shards(n);
  uint64_t have = 0;
  for (size_t dev = 0; dev < n && have < geo->k; ++dev) {
    if (dev == want) continue;
    if (device_unhealthy(f, dev, grp_start, grp_end)) continue;
    IoSlice sh;
    sh.device_index = dev;
    sh.addr = devices_.at(f.layout->devices[dev]);
    sh.fh = f.layout->fhs[dev];
    sh.stateid = kDataServerStateid;
    sh.target_offset = grp * su;
    sh.file_offset = dev < geo->k ? grp_start + dev * su : grp_start;
    sh.length = su;
    try {
      Payload p = co_await read_slice_op(f, sh);
      record_ds_result(sh.addr, true);
      const auto span = p.data();
      std::vector<std::byte> bytes(static_cast<size_t>(su), std::byte{0});
      std::copy(span.begin(), span.end(), bytes.begin());
      shards[dev] = std::move(bytes);
      ++have;
    } catch (const NfsError&) {
      record_ds_result(sh.addr, false);
    }
  }
  if (have < geo->k) co_return false;

  util::ReedSolomon rs(static_cast<uint32_t>(geo->k),
                       static_cast<uint32_t>(geo->m));
  if (!rs.reconstruct(&shards) || !shards[want]) co_return false;
  block = Payload::inline_bytes(std::move(*shards[want]));
  ++stats_.ec_reconstructions;
  m_ec_reconstructions_->inc();
  co_return true;
}

Task<bool> NfsClient::degraded_read(FileState& f, IoSlice slice, Payload& out) {
  if (!f.layout || !redundant_aggregation(f.layout->aggregation)) {
    co_return false;
  }
  const size_t home = slice.device_index;
  bool served = false;
  if (f.layout->aggregation == AggregationType::kErasureCoded) {
    // Reconstruct su-block by su-block: a merged slice can span several
    // stripes of the home device.
    const auto geo = EcGeometry::from(*f.layout);
    if (!geo) co_return false;
    Payload assembled;
    uint64_t pos = slice.file_offset;
    const uint64_t end = pos + slice.length;
    while (pos < end) {
      const uint64_t block_start = pos / geo->su * geo->su;
      const uint64_t take = std::min(geo->su - (pos - block_start), end - pos);
      IoSlice sub = slice;
      sub.file_offset = pos;
      sub.length = take;
      Payload block;
      if (!co_await ec_reconstruct_block(f, sub, block)) co_return false;
      assembled.append(block.slice(pos - block_start, take));
      pos += take;
    }
    out = std::move(assembled);
    served = true;
  } else {
    size_t base = 0;
    size_t count = 0;
    if (!replica_span(*f.layout, home, &base, &count)) co_return false;
    for (size_t i = 1; i < count && !served; ++i) {
      const size_t cand = base + ((home - base) + i) % count;
      if (cand >= f.layout->devices.size()) continue;
      if (device_unhealthy(f, cand, slice.file_offset,
                           slice.file_offset + slice.length)) {
        continue;
      }
      IoSlice alt = slice;
      alt.device_index = cand;
      alt.addr = devices_.at(f.layout->devices[cand]);
      alt.fh = f.layout->fhs[cand];
      try {
        out = co_await read_slice_op(f, alt);
        record_ds_result(alt.addr, true);
        served = true;
      } catch (const NfsError&) {
        record_ds_result(alt.addr, false);
      }
    }
  }
  if (!served) co_return false;
  ++stats_.degraded_reads;
  stats_.degraded_read_bytes += slice.length;
  m_degraded_reads_->inc();
  m_degraded_read_bytes_->add(slice.length);
  if (obs::FlightRecorder* flight = fabric_.flight()) {
    flight->record(fabric_.simulation().now(), node_.name(), "nfs.client",
                   "degraded.read",
                   util::sformat("fileid %llu dev %zu %llu+%llu",
                                 static_cast<unsigned long long>(f.attr.fileid),
                                 home,
                                 static_cast<unsigned long long>(
                                     slice.file_offset),
                                 static_cast<unsigned long long>(
                                     slice.length)));
  }
  co_return true;
}

void NfsClient::note_degraded_write(FileState& f, const IoSlice& slice) {
  uint64_t end = slice.file_offset + slice.length;
  if (slice.parity && f.layout) {
    // A lost parity block degrades the whole stripe group it covers: any
    // reconstruction sourcing this device over those file bytes would mix
    // stale parity with fresh data.
    if (const auto geo = EcGeometry::from(*f.layout)) {
      end = slice.file_offset + slice.length * geo->k;
    }
  }
  f.degraded[slice.device_index].add(slice.file_offset, end);
  ++stats_.degraded_writes;
  m_degraded_writes_->inc();
  if (obs::FlightRecorder* flight = fabric_.flight()) {
    flight->record(fabric_.simulation().now(), node_.name(), "nfs.client",
                   "degraded.write",
                   util::sformat("fileid %llu dev %zu %llu+%llu%s",
                                 static_cast<unsigned long long>(f.attr.fileid),
                                 slice.device_index,
                                 static_cast<unsigned long long>(
                                     slice.file_offset),
                                 static_cast<unsigned long long>(
                                     end - slice.file_offset),
                                 slice.parity ? " parity" : ""));
  }
  util::logf(util::LogLevel::kWarn, "nfs.client", fabric_.simulation().now(),
             "degraded write: fileid %llu dev %zu [%llu, %llu) absorbed by "
             "surviving redundancy",
             static_cast<unsigned long long>(f.attr.fileid),
             slice.device_index,
             static_cast<unsigned long long>(slice.file_offset),
             static_cast<unsigned long long>(end));
}

Task<Payload> NfsClient::read_slice_op(FileState& f, const IoSlice& slice) {
  (void)f;
  auto s = co_await session_for(slice.addr);
  // A short reply means one of two things, and they need opposite handling:
  // EOF on the stripe object (a hole — the missing tail genuinely reads as
  // zeros) vs. a mid-object short READ (the server returned fewer bytes than
  // exist — re-issue for the missing tail, never fabricate zeros).
  Payload out;
  bool eof = false;
  while (out.size() < slice.length && !eof) {
    const uint64_t got = out.size();
    const uint64_t want = slice.length - got;
    CompoundBuilder b = with_sequence(s->id);
    b.add(OpCode::kPutFh, PutFhArgs{slice.fh});
    b.add(OpCode::kRead, ReadArgs{slice.stateid, slice.target_offset + got,
                                  static_cast<uint32_t>(want)});
    CompoundReply r(co_await call(slice.addr, std::move(b), want));
    r.expect(OpCode::kSequence);
    r.expect(OpCode::kPutFh);
    auto res = r.expect<ReadRes>(OpCode::kRead);
    if (res.data.size() > want) {
      throw NfsError(Status::kIo, "overlong READ reply");
    }
    if (res.data.size() == 0 && !res.eof) {
      throw NfsError(Status::kIo, "zero-byte READ reply before EOF");
    }
    eof = res.eof;
    out.append(std::move(res.data));
  }
  if (out.size() < slice.length) {
    const uint64_t missing = slice.length - out.size();
    if (out.size() == 0 || out.is_inline()) {
      out.append(Payload::inline_bytes(
          std::vector<std::byte>(missing, std::byte{0})));
    } else {
      out.append(Payload::virtual_bytes(missing));
    }
  }
  co_return out;
}

Task<std::vector<Payload>> NfsClient::read_vector_op(
    FileState& f, const std::vector<IoSlice>& slices) {
  const IoSlice& first = slices.front();
  auto s = co_await session_for(first.addr);
  std::vector<IoRegion> regions;
  regions.reserve(slices.size());
  uint64_t total = 0;
  for (const IoSlice& sl : slices) {
    regions.push_back({sl.target_offset, static_cast<uint32_t>(sl.length)});
    total += sl.length;
  }
  CompoundBuilder b = with_sequence(s->id);
  b.add(OpCode::kPutFh, PutFhArgs{first.fh});
  ReadArgs a{first.stateid, std::move(regions)};
  b.add(a.opcode(), a);
  CompoundReply r(co_await call(first.addr, std::move(b), total));
  r.expect(OpCode::kSequence);
  r.expect(OpCode::kPutFh);
  auto res = r.expect<ReadvRes>(OpCode::kReadv);
  if (res.lengths.size() != slices.size()) {
    throw NfsError(Status::kIo, "READV reply region count mismatch");
  }
  ++stats_.vectored_reads;
  std::vector<Payload> out(slices.size());
  uint64_t pos = 0;
  for (size_t i = 0; i < slices.size(); ++i) {
    const uint64_t got = res.lengths[i];
    if (got > slices[i].length) {
      throw NfsError(Status::kIo, "overlong READV region");
    }
    out[i] = res.data.slice(pos, got);
    pos += got;
    if (got == slices[i].length) continue;
    const uint64_t missing = slices[i].length - got;
    if (res.eof && i + 1 == slices.size()) {
      // Hole at end-of-file: the missing tail genuinely reads as zeros.
      if (out[i].size() == 0 || out[i].is_inline()) {
        out[i].append(Payload::inline_bytes(
            std::vector<std::byte>(missing, std::byte{0})));
      } else {
        out[i].append(Payload::virtual_bytes(missing));
      }
    } else {
      // Short region that is not the EOF tail: re-issue it alone —
      // read_slice_op distinguishes mid-object short READs from holes.
      IoSlice tail = slices[i];
      tail.target_offset += got;
      tail.file_offset += got;
      tail.length = missing;
      out[i].append(co_await read_slice_op(f, tail));
    }
  }
  co_return out;
}

Task<void> NfsClient::write_vector_op(FileState& f,
                                      const std::vector<IoSlice>& slices,
                                      Payload data,
                                      obs::TraceContext trace_parent) {
  const IoSlice& first = slices.front();
  const uint64_t total = data.size();
  auto s = co_await session_for(first.addr);
  CompoundBuilder b = with_sequence(s->id);
  b.add(OpCode::kPutFh, PutFhArgs{first.fh});
  std::vector<IoRegion> regions;
  regions.reserve(slices.size());
  for (const IoSlice& sl : slices) {
    regions.push_back({sl.target_offset, static_cast<uint32_t>(sl.length)});
  }
  WriteArgs a{first.stateid, std::move(regions), StableHow::kUnstable,
              std::move(data)};
  const OpCode op = a.opcode();
  b.add(op, a);
  CompoundReply r(
      co_await call(first.addr, std::move(b), total, trace_parent));
  r.expect(OpCode::kSequence);
  r.expect(OpCode::kPutFh);
  const auto res = r.expect<WriteRes>(op);
  if (res.committed == StableHow::kUnstable) {
    // The reply's single verifier covers every region of the list.
    for (const IoSlice& sl : slices) note_unstable_write(f, sl, res.verifier);
  }
  // MDS-path writes move the file's change attribute; track it so our own
  // I/O does not look like someone else's at revalidation time.
  if (first.device_index == IoSlice::kMds && res.post_change != 0) {
    f.attr.change = std::max(f.attr.change, res.post_change);
  }
}

Task<uint64_t> NfsClient::commit_op(rpc::RpcAddress addr, FileHandle fh) {
  auto s = co_await session_for(addr);
  CompoundBuilder b = with_sequence(s->id);
  b.add(OpCode::kPutFh, PutFhArgs{fh});
  b.add(OpCode::kCommit, CommitArgs{0, 0});
  CompoundReply r(co_await call(addr, std::move(b), 0));
  r.expect(OpCode::kSequence);
  r.expect(OpCode::kPutFh);
  co_return r.expect<CommitRes>(OpCode::kCommit).verifier;
}

Task<void> NfsClient::run_read_slice(FileState& f, IoSlice slice, Payload& out,
                                     StatusCollector& errors) {
  const bool via_ds = slice.device_index != IoSlice::kMds;
  const bool redundant =
      via_ds && f.layout && redundant_aggregation(f.layout->aggregation);
  // Known-unhealthy home device (open breaker, or a degraded range a dead
  // incarnation never received): go straight to the surviving redundancy
  // instead of burning the retry budget.
  if (redundant &&
      device_unhealthy(f, slice.device_index, slice.file_offset,
                       slice.file_offset + slice.length) &&
      co_await degraded_read(f, slice, out)) {
    co_return;
  }
  for (uint32_t attempt = 0;; ++attempt) {
    Status fail = Status::kOk;
    try {
      out = co_await read_slice_op(f, slice);
      if (via_ds) record_ds_result(slice.addr, true);
      co_return;
    } catch (const NfsError& e) {
      if (!via_ds) {
        errors.record(e.status(), slice.device_index);
        co_return;
      }
      record_ds_result(slice.addr, false);
      if (attempt < config_.slice_retries && !breaker_open(slice.addr)) {
        ++stats_.recovery_retries;
        m_retries_->inc();
        continue;  // same DS, next attempt
      }
      fail = e.status();  // terminal: degrade outside the handler
    }
    // Degraded-read rung: a surviving replica or k-of-n reconstruction
    // serves the bytes without the home DS — and without the MDS.
    if (redundant && co_await degraded_read(f, slice, out)) co_return;
    if (!config_.mds_fallback) {
      errors.record(fail, slice.device_index);
      co_return;
    }
    break;  // degrade below
  }
  // Degraded path: refresh the layout for future routing decisions, then
  // proxy this byte range through the MDS — the plain-NFSv4 path.
  co_await refetch_layout(f);
  ++stats_.mds_fallbacks;
  m_fallbacks_->inc();
  try {
    out = co_await read_slice_op(f, mds_slice(f, slice.file_offset,
                                              slice.length));
  } catch (const NfsError& e) {
    errors.record(e.status(), slice.device_index);
  }
}

Task<void> NfsClient::run_write_slice(FileState& f, IoSlice slice,
                                      Payload piece, StatusCollector& errors,
                                      obs::TraceContext trace_parent) {
  const bool via_ds = slice.device_index != IoSlice::kMds;
  // Known-unhealthy device under a redundant layout: absorb immediately —
  // the surviving copies carry the bytes, and the degraded set keeps reads
  // away from this device's stale range.
  if (via_ds && f.layout && redundant_aggregation(f.layout->aggregation) &&
      device_unhealthy(f, slice.device_index, slice.file_offset,
                       slice.file_offset + slice.length)) {
    note_degraded_write(f, slice);
    co_return;
  }
  const std::vector<IoSlice> one{slice};
  for (uint32_t attempt = 0;; ++attempt) {
    try {
      co_await write_vector_op(f, one, piece, trace_parent);
      if (via_ds) record_ds_result(slice.addr, true);
      co_return;
    } catch (const NfsError& e) {
      if (!via_ds) {
        errors.record(e.status(), slice.device_index);
        co_return;
      }
      record_ds_result(slice.addr, false);
      if (attempt < config_.slice_retries && !breaker_open(slice.addr)) {
        ++stats_.recovery_retries;
        m_retries_->inc();
        continue;
      }
      if (f.layout && redundant_aggregation(f.layout->aggregation)) {
        // Surviving redundancy absorbs the loss: record the device's stale
        // range so reads route around it, and succeed without it.
        note_degraded_write(f, slice);
        co_return;
      }
      if (slice.parity || !config_.mds_fallback) {
        // Parity payloads are derived bytes — proxying them through the MDS
        // would overwrite file content with parity.
        errors.record(e.status(), slice.device_index);
        co_return;
      }
      break;
    }
  }
  co_await refetch_layout(f);
  ++stats_.mds_fallbacks;
  m_fallbacks_->inc();
  try {
    const std::vector<IoSlice> via_mds{
        mds_slice(f, slice.file_offset, slice.length)};
    co_await write_vector_op(f, via_mds, std::move(piece), trace_parent);
  } catch (const NfsError& e) {
    errors.record(e.status(), slice.device_index);
  }
}

Task<void> NfsClient::run_write_vector(FileState& f,
                                       std::vector<IoSlice> slices,
                                       Payload data, StatusCollector& errors,
                                       obs::TraceContext trace_parent) {
  if (slices.size() == 1) {
    co_return co_await run_write_slice(f, slices.front(), std::move(data),
                                       errors, trace_parent);
  }
  const bool via_ds = slices.front().device_index != IoSlice::kMds;
  try {
    co_await write_vector_op(f, slices, data, trace_parent);
    if (via_ds) record_ds_result(slices.front().addr, true);
    co_return;
  } catch (const NfsError&) {
    if (via_ds) record_ds_result(slices.front().addr, false);
  }
  // Degrade region-by-region: each slice gets the full single-range ladder
  // (same-DS retries, layout refetch, MDS fallback) and its own error slot.
  uint64_t pos = 0;
  for (const IoSlice& sl : slices) {
    Payload piece = data.slice(pos, sl.length);
    pos += sl.length;
    co_await run_write_slice(f, sl, std::move(piece), errors, trace_parent);
  }
}

Task<void> NfsClient::run_read_vector(FileState& f, std::vector<IoSlice> slices,
                                      std::vector<Payload>& out,
                                      StatusCollector& errors) {
  if (slices.size() == 1) {
    co_return co_await run_read_slice(f, slices.front(), out[0], errors);
  }
  const bool via_ds = slices.front().device_index != IoSlice::kMds;
  try {
    out = co_await read_vector_op(f, slices);
    if (via_ds) record_ds_result(slices.front().addr, true);
    co_return;
  } catch (const NfsError&) {
    if (via_ds) record_ds_result(slices.front().addr, false);
  }
  sim::WaitGroup wg(fabric_.simulation());
  for (size_t i = 0; i < slices.size(); ++i) {
    wg.spawn(run_read_slice(f, slices[i], out[i], errors));
  }
  co_await wg.wait();
}

Task<void> NfsClient::run_commit_target(FileState& f, size_t device_index,
                                        StatusCollector& errors,
                                        uint64_t* verifier_out) {
  rpc::RpcAddress addr = mds_;
  FileHandle fh = f.fh;
  const bool via_ds = device_index != IoSlice::kMds && f.layout;
  if (via_ds) {
    addr = devices_.at(f.layout->devices[device_index]);
    fh = f.layout->fhs[device_index];
  }
  for (uint32_t attempt = 0;; ++attempt) {
    try {
      const uint64_t v = co_await commit_op(addr, fh);
      if (verifier_out != nullptr) *verifier_out = v;
      if (via_ds) record_ds_result(addr, true);
      co_return;
    } catch (const NfsError& e) {
      if (!via_ds) {
        errors.record(e.status(), device_index);
        co_return;
      }
      record_ds_result(addr, false);
      if (attempt < config_.slice_retries && !breaker_open(addr)) {
        ++stats_.recovery_retries;
        m_retries_->inc();
        continue;
      }
      if (f.layout && redundant_aggregation(f.layout->aggregation)) {
        // The target is gone and its volatile bytes with it.  Move the
        // retained ranges into the degraded set — the surviving redundancy
        // holds the data — and drop the target so fsync converges.
        if (auto it = f.commit_targets.find(device_index);
            it != f.commit_targets.end()) {
          for (const auto& iv : it->second.uncommitted.intervals()) {
            f.degraded[device_index].add(iv.start, iv.end);
          }
          f.commit_targets.erase(it);
        }
        ++stats_.degraded_commits;
        m_degraded_commits_->inc();
        if (obs::FlightRecorder* flight = fabric_.flight()) {
          flight->record(fabric_.simulation().now(), node_.name(),
                         "nfs.client", "degraded.commit",
                         util::sformat("fileid %llu dev %zu",
                                       static_cast<unsigned long long>(
                                           f.attr.fileid),
                                       device_index));
        }
        co_return;
      }
      if (!config_.mds_fallback) {
        errors.record(e.status(), device_index);
        co_return;
      }
      break;
    }
  }
  // An MDS COMMIT flushes the whole file through the parallel FS — a
  // superset of the stripe commit that failed.  The MDS verifier never
  // matches the DS verifier recorded at WRITE time, so the caller replays
  // the retained extents — conservative but safe when the DS's fate is
  // unknown.
  ++stats_.mds_fallbacks;
  m_fallbacks_->inc();
  try {
    const uint64_t v = co_await commit_op(mds_, f.fh);
    if (verifier_out != nullptr) *verifier_out = v;
  } catch (const NfsError& e) {
    errors.record(e.status(), device_index);
  }
}

Task<Payload> NfsClient::read_slices(FileState& f, uint64_t offset,
                                     uint64_t length) {
  co_await ensure_layout_fresh(f);
  const auto slices = route(f, offset, length, /*for_write=*/false);
  std::vector<Payload> results(slices.size());
  StatusCollector errors;
  sim::WaitGroup wg(fabric_.simulation());
  for (size_t i = 0; i < slices.size(); ++i) {
    wg.spawn(run_read_slice(f, slices[i], results[i], errors));
  }
  co_await wg.wait();
  errors.throw_if_failed("READ");

  Payload assembled;
  for (auto& piece : results) assembled.append(std::move(piece));
  stats_.wire_read_bytes += assembled.size();
  m_miss_bytes_->add(assembled.size());
  co_return assembled;
}

Task<void> NfsClient::write_slices(FileState& f, uint64_t offset,
                                   const Payload& data) {
  co_await ensure_layout_fresh(f);
  const auto slices = route(f, offset, data.size(), /*for_write=*/true);
  StatusCollector errors;
  sim::WaitGroup wg(fabric_.simulation());
  for (const auto& slice : slices) {
    Payload piece = data.slice(slice.file_offset - offset, slice.length);
    wg.spawn(run_write_slice(f, slice, std::move(piece), errors));
  }
  co_await wg.wait();
  errors.throw_if_failed("WRITE");
  stats_.wire_write_bytes += data.size();
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

Task<Payload> NfsClient::read(FilePtr file, uint64_t offset, uint64_t length) {
  file->last_use = ++lru_clock_;
  if (offset >= file->size || length == 0) co_return Payload{};
  const uint64_t end = std::min(file->size, offset + length);
  const uint64_t want = end - offset;

  co_await node_.cpu().execute(static_cast<sim::Duration>(
      config_.cpu_ns_per_byte * static_cast<double>(want)));

  if (!config_.data_cache) {
    Payload p = co_await read_slices(*file, offset, want);
    stats_.bytes_read += p.size();
    m_read_bytes_->add(p.size());
    // Sequential detection still applies (kernel readahead exists even for
    // O_DIRECT-less uncached mode is moot — without a cache there is nowhere
    // to put readahead data, so skip it).
    co_return p;
  }

  // Fill the gaps; wait out any overlapping in-flight fetches (readahead or
  // a concurrent reader).  A read that never issues its own fetch counts as
  // a cache hit — it was served by the cache or by readahead it piggybacked.
  bool fetched = false;
  while (true) {
    const auto gaps = file->valid.gaps(offset, end);
    if (gaps.empty()) break;
    auto latch = find_inflight_overlap(*file, gaps.front().start,
                                       gaps.front().end);
    if (latch != nullptr) {
      co_await latch->wait();
      continue;
    }
    fetched = true;
    // Fetch every missing piece of the span in one call: fetch_range walks
    // the gaps itself and, with list I/O on, folds strided misses bound for
    // the same server into vectored READs.
    co_await fetch_range(file, gaps.front().start, gaps.back().end);
  }
  if (!fetched) {
    stats_.cache_hit_bytes += want;
    m_hit_bytes_->add(want);
  }

  Payload out = file->content.load(offset, want);
  stats_.bytes_read += out.size();
  m_read_bytes_->add(out.size());

  // Sequential readahead.  Extensions are quantized to whole rsize chunks
  // so the wire sees rsize-sized READs, not request-sized dribbles.
  if (offset == file->expected_seq_offset && config_.readahead_window > 0) {
    const uint64_t target = std::min<uint64_t>(
        file->size,
        end + static_cast<uint64_t>(config_.readahead_window) * config_.rsize);
    const uint64_t from = std::max(end, file->readahead_high);
    if (target > from && (target - from >= config_.rsize || target == file->size)) {
      file->readahead_high = target;
      fabric_.simulation().spawn(readahead(file, from, target));
    }
  }
  file->expected_seq_offset = end;
  co_return out;
}

Task<void> NfsClient::readahead(FilePtr file, uint64_t from, uint64_t to) {
  // The file can shrink (truncate) between scheduling and execution; clamp
  // to the server-reported size so readahead never issues a READ that is
  // guaranteed to come back empty.
  to = std::min(to, file->size);
  if (from >= to) co_return;
  try {
    const uint64_t fetched = co_await fetch_range(file, from, to);
    // Count only readaheads that really hit the wire; ranges that were
    // already cached or in flight are not fetches.
    if (fetched > 0) {
      ++stats_.readahead_fetches;
      m_readahead_fetches_->inc();
    }
  } catch (const NfsError&) {
    // Readahead failures are harmless; the demand read will retry and
    // surface the error.
  }
}

std::shared_ptr<sim::Latch> NfsClient::find_inflight_overlap(FileState& f,
                                                             uint64_t start,
                                                             uint64_t end) {
  auto it = f.inflight.lower_bound(start);
  if (it != f.inflight.begin()) {
    auto prev = std::prev(it);
    if (prev->second.first > start) return prev->second.second;
  }
  if (it != f.inflight.end() && it->first < end) return it->second.second;
  return nullptr;
}

Task<uint64_t> NfsClient::fetch_range(FilePtr file, uint64_t start,
                                      uint64_t end) {
  // Demand fetches are page-granular (like the Linux page cache); only the
  // readahead path asks for ranges big enough to fill rsize-sized READs.
  start = round_down(start, kPageBytes);
  end = std::min(round_up(end, kPageBytes), file->size);
  if (start >= end) co_return 0;

  struct Fetch {
    uint64_t start;
    uint64_t len;
    std::shared_ptr<sim::Latch> latch;
  };
  std::vector<Fetch> fetches;
  for (const auto& gap : file->valid.gaps(start, end)) {
    // Skip parts someone else is already fetching; our caller re-checks and
    // waits on their latch.
    uint64_t pos = gap.start;
    while (pos < gap.end) {
      uint64_t piece_end = gap.end;
      auto it = file->inflight.lower_bound(pos);
      if (it != file->inflight.begin() && std::prev(it)->second.first > pos) {
        pos = std::prev(it)->second.first;  // inside an in-flight range
        continue;
      }
      if (it != file->inflight.end() && it->first < piece_end) {
        piece_end = it->first;
      }
      if (piece_end <= pos) break;
      // Split into rsize-bounded READs.
      while (pos < piece_end) {
        const uint64_t n = std::min<uint64_t>(config_.rsize, piece_end - pos);
        auto latch = std::make_shared<sim::Latch>(fabric_.simulation());
        file->inflight.emplace(pos, std::make_pair(pos + n, latch));
        fetches.push_back(Fetch{pos, n, std::move(latch)});
        pos += n;
      }
    }
  }

  StatusCollector errors;
  uint64_t fetched = 0;

  // List I/O read batching: when the span needs several distinct fetches
  // (strided misses — a dense demand read or readahead always collapses to
  // rsize-sized pieces), route them all up front and fold the slices bound
  // for the same server into vectored READs of up to rsize total bytes.
  if (config_.listio_enabled && fetches.size() > 1) {
    co_await ensure_layout_fresh(*file);
    struct SliceRef {
      size_t fetch_idx;
      IoSlice slice;
    };
    std::vector<SliceRef> refs;
    std::vector<uint32_t> remaining(fetches.size(), 0);
    for (size_t i = 0; i < fetches.size(); ++i) {
      for (const IoSlice& s :
           route(*file, fetches[i].start, fetches[i].len, /*for_write=*/false)) {
        refs.push_back({i, s});
        ++remaining[i];
      }
    }
    // Group per device (one filehandle per compound), then split each group
    // into region- and byte-capped batches, preserving offset order.
    std::map<size_t, std::vector<SliceRef>> groups;
    for (auto& r : refs) groups[r.slice.device_index].push_back(r);
    std::vector<std::vector<SliceRef>> batches;
    for (auto& [dev, group] : groups) {
      std::vector<SliceRef> cur;
      uint64_t bytes = 0;
      for (auto& r : group) {
        if (!cur.empty() && (cur.size() >= config_.listio_max_regions ||
                             bytes + r.slice.length > config_.rsize)) {
          batches.push_back(std::move(cur));
          cur.clear();
          bytes = 0;
        }
        cur.push_back(r);
        bytes += r.slice.length;
      }
      if (!cur.empty()) batches.push_back(std::move(cur));
    }

    sim::WaitGroup wg(fabric_.simulation());
    for (auto& batch : batches) {
      wg.spawn([](NfsClient& self, FilePtr file, std::vector<SliceRef> b,
                  StatusCollector& errors, uint64_t& fetched,
                  std::vector<uint32_t>& remaining,
                  std::vector<Fetch>& fetches) -> Task<void> {
        std::vector<IoSlice> slices;
        slices.reserve(b.size());
        for (auto& r : b) slices.push_back(r.slice);
        std::vector<Payload> out(slices.size());
        co_await self.run_read_vector(*file, std::move(slices), out, errors);
        uint64_t got = 0;
        for (size_t i = 0; i < b.size(); ++i) {
          const IoSlice& s = b[i].slice;
          if (out[i].size() > 0) {
            got += out[i].size();
            fetched += out[i].size();
            file->content.store(s.file_offset, out[i]);
            const uint64_t before = file->valid.total_length();
            file->valid.add(s.file_offset, s.file_offset + out[i].size());
            self.account_valid_delta(
                *file,
                static_cast<int64_t>(file->valid.total_length() - before));
          }
          if (--remaining[b[i].fetch_idx] == 0) {
            Fetch& f = fetches[b[i].fetch_idx];
            file->inflight.erase(f.start);
            f.latch->set();
          }
        }
        self.stats_.wire_read_bytes += got;
        self.m_miss_bytes_->add(got);
      }(*this, file, std::move(batch), errors, fetched, remaining, fetches));
    }
    co_await wg.wait();
    evict_clean_if_needed();
    errors.throw_if_failed("fetch_range");
    co_return fetched;
  }

  sim::WaitGroup wg(fabric_.simulation());
  for (auto& fetch : fetches) {
    wg.spawn([](NfsClient& self, FilePtr file, Fetch f, StatusCollector& errors,
                uint64_t& fetched) -> Task<void> {
      try {
        Payload data = co_await self.read_slices(*file, f.start, f.len);
        fetched += data.size();
        file->content.store(f.start, data);
        const uint64_t before = file->valid.total_length();
        file->valid.add(f.start, f.start + data.size());
        self.account_valid_delta(*file,
                                 static_cast<int64_t>(file->valid.total_length() - before));
      } catch (const NfsError& e) {
        errors.record(e.status(), StatusCollector::kNoDevice);
      }
      file->inflight.erase(f.start);
      f.latch->set();
    }(*this, file, std::move(fetch), errors, fetched));
  }
  co_await wg.wait();
  evict_clean_if_needed();
  errors.throw_if_failed("fetch_range");
  co_return fetched;
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Task<void> NfsClient::write(FilePtr file, uint64_t offset, Payload data) {
  file->last_use = ++lru_clock_;
  const uint64_t len = data.size();
  if (len == 0) co_return;
  const uint64_t end = offset + len;

  co_await node_.cpu().execute(static_cast<sim::Duration>(
      config_.cpu_ns_per_byte * static_cast<double>(len)));

  const bool ec = file->layout &&
                  file->layout->aggregation == AggregationType::kErasureCoded;
  if (!config_.data_cache) {
    if (ec) {
      // Parity is computed over whole stripe groups from cached content;
      // a write-through client has no group to encode from.
      throw NfsError(Status::kInval,
                     "erasure-coded layouts require the data cache");
    }
    co_await write_slices(*file, offset, data);
    file->size = std::max(file->size, end);
    file->size_dirty = true;
    stats_.bytes_written += len;
    m_write_bytes_->add(len);
    co_return;
  }

  file->content.store(offset, data);
  {
    const uint64_t before = file->valid.total_length();
    file->valid.add(offset, end);
    account_valid_delta(*file,
                        static_cast<int64_t>(file->valid.total_length() - before));
  }
  {
    const uint64_t before = file->dirty.total_length();
    file->dirty.add(offset, end);
    dirty_bytes_ += file->dirty.total_length() - before;
  }
  file->size = std::max(file->size, end);
  file->size_dirty = true;
  stats_.bytes_written += len;
  m_write_bytes_->add(len);

  // Write-back: push out every fully-dirty wsize chunk asynchronously (a
  // bounded pipeline of in-flight WRITEs, like the kernel flusher).
  // Erasure-coded files skip the eager chunk flush: flushing partial
  // groups would recompute and rewrite parity once per chunk instead of
  // once per group at fsync.
  if (!ec) co_await flush_dirty(file, /*only_full_chunks=*/true, /*wait=*/false);

  if (dirty_bytes_ > config_.dirty_limit_bytes) {
    // Over the dirty limit: the writer blocks until its data is on the wire
    // (memory-pressure throttling).
    co_await flush_dirty(file, /*only_full_chunks=*/false, /*wait=*/true);
  }
  evict_clean_if_needed();
}

// ---------------------------------------------------------------------------
// Per-data-server write-back scheduler
// ---------------------------------------------------------------------------

NfsClient::DsSched& NfsClient::sched_for(const rpc::RpcAddress& addr) {
  auto it = scheds_.find(addr);
  if (it != scheds_.end()) return it->second;
  DsSched sched;
  sched.window = std::make_unique<sim::Semaphore>(
      fabric_.simulation(), std::max<uint32_t>(1, config_.wb_window_per_ds));
  sched.label =
      (addr == mds_) ? "mds" : "ds" + std::to_string(addr.node_id);
  if (obs::MetricsRegistry* reg = fabric_.metrics()) {
    const std::string& n = node_.name();
    sched.m_queue_depth =
        &reg->gauge(n, "client.sched", "queue_depth_" + sched.label);
    sched.m_queue_peak =
        &reg->gauge(n, "client.sched", "queue_depth_peak_" + sched.label);
    sched.m_window_inflight =
        &reg->gauge(n, "client.sched", "window_inflight_" + sched.label);
  } else {
    sched.m_queue_depth = &obs::MetricsRegistry::null_gauge();
    sched.m_queue_peak = &obs::MetricsRegistry::null_gauge();
    sched.m_window_inflight = &obs::MetricsRegistry::null_gauge();
  }
  return scheds_.emplace(addr, std::move(sched)).first->second;
}

void NfsClient::note_sched_queue(DsSched& sched) {
  uint64_t depth = 0;
  for (const auto& [ino, q] : sched.queues) depth += q.size();
  sched.m_queue_depth->set(static_cast<double>(depth));
  if (static_cast<double>(depth) > sched.queue_peak) {
    sched.queue_peak = static_cast<double>(depth);
    sched.m_queue_peak->set(sched.queue_peak);
  }
}

void NfsClient::enqueue_writeback(const FilePtr& file, IoSlice slice,
                                  Payload data) {
  DsSched& sched = sched_for(slice.addr);
  auto& q = sched.queues[file->attr.fileid];
  const uint64_t start = slice.target_offset;
  const uint64_t end = start + slice.length;

  // Newest data wins: trim every queued extent the new bytes overlap down
  // to its surviving head/tail and re-push those.  The queue stays disjoint,
  // so dispatch order can never resurrect stale bytes.
  while (auto hit = q.pop_overlap(start, end)) {
    const uint64_t old_start = hit->start;
    const uint64_t old_end = hit->start + hit->length;
    QueuedWrite& old_qw = hit->value;
    if (old_start < start) {
      const uint64_t head_len = start - old_start;
      QueuedWrite head;
      head.file = old_qw.file;
      head.slice = old_qw.slice;
      head.slice.length = head_len;
      head.data = old_qw.data.slice(0, head_len);
      head.enqueued_at = old_qw.enqueued_at;
      q.push(old_start, head_len, std::move(head));
    }
    if (old_end > end) {
      const uint64_t skip = end - old_start;
      const uint64_t tail_len = old_end - end;
      QueuedWrite tail;
      tail.file = old_qw.file;
      tail.slice = old_qw.slice;
      tail.slice.target_offset = end;
      tail.slice.file_offset += skip;
      tail.slice.length = tail_len;
      tail.data = old_qw.data.slice(skip, tail_len);
      tail.enqueued_at = old_qw.enqueued_at;
      q.push(end, tail_len, std::move(tail));
    }
  }

  QueuedWrite item;
  item.file = file;
  item.slice = slice;
  item.data = std::move(data);
  item.enqueued_at = fabric_.simulation().now();
  q.push(start, slice.length, std::move(item));
  note_sched_queue(sched);

  if (!file->wb_inflight) {
    file->wb_inflight = std::make_unique<sim::WaitGroup>(fabric_.simulation());
  }
  // The worker is scheduled, not run inline, so every extent of this flush
  // is queued before the first dispatch — that's what makes runs mergeable.
  file->wb_inflight->spawn(wb_worker(file, slice.addr));
}

Task<void> NfsClient::wb_worker(FilePtr file, rpc::RpcAddress addr) {
  DsSched& sched = sched_for(addr);  // stable: scheds_ entries never erased
  const uint64_t ino = file->attr.fileid;
  for (;;) {
    {
      auto qit = sched.queues.find(ino);
      if (qit == sched.queues.end() || qit->second.empty()) co_return;
    }
    co_await sched.window->acquire();
    // Re-check: a sibling worker may have drained the queue while this one
    // waited for a window slot.
    auto qit = sched.queues.find(ino);
    if (qit == sched.queues.end() || qit->second.empty()) {
      if (qit != sched.queues.end()) sched.queues.erase(qit);
      sched.window->release();
      co_return;
    }

    const auto merge_ok = [this](const QueuedWrite& prev,
                                 const QueuedWrite& next) {
      // Adjacent in the target's address space (ExtentQueue's invariant)
      // AND contiguous in file space through the same route: the merged
      // WRITE must be one valid slice on both axes.
      return config_.coalesce_writes &&
             next.slice.device_index == prev.slice.device_index &&
             next.slice.file_offset ==
                 prev.slice.file_offset + prev.slice.length;
    };
    const auto splitter = [](QueuedWrite& v, uint64_t head_len) {
      QueuedWrite head;
      head.file = v.file;
      head.slice = v.slice;
      head.slice.length = head_len;
      head.data = v.data.slice(0, head_len);
      head.enqueued_at = v.enqueued_at;
      v.slice.target_offset += head_len;
      v.slice.file_offset += head_len;
      v.slice.length -= head_len;
      v.data = v.data.slice(head_len, v.slice.length);
      return head;
    };
    auto run = qit->second.pop_run(config_.wsize, merge_ok, splitter);
    if (qit->second.empty()) sched.queues.erase(qit);
    note_sched_queue(sched);
    if (run.empty()) {
      sched.window->release();
      continue;
    }

    IoSlice s = run.front().value.slice;
    Payload first_data = std::move(run.front().value.data);
    sim::Time first_enq = run.front().value.enqueued_at;
    for (size_t i = 1; i < run.size(); ++i) {
      QueuedWrite& qw = run[i].value;
      s.length += qw.slice.length;
      first_data.append(std::move(qw.data));
      first_enq = std::min(first_enq, qw.enqueued_at);
      ++stats_.sched_coalesced_extents;
      stats_.sched_coalesced_bytes += qw.slice.length;
      m_sched_coalesced_extents_->inc();
      m_sched_coalesced_bytes_->add(qw.slice.length);
    }

    // List I/O: fold further runs from the same queue — mutually
    // non-adjacent by construction, or pop_run would have merged them —
    // into one vectored WRITEV of up to wsize total bytes.  Contiguity is
    // no longer the price of batching strided extents.
    std::vector<IoSlice> slices{s};
    std::vector<Payload> payloads;
    payloads.push_back(std::move(first_data));
    uint64_t total = s.length;
    if (config_.coalesce_writes && config_.listio_enabled) {
      while (slices.size() < config_.listio_max_regions &&
             total < config_.wsize) {
        auto more = sched.queues.find(ino);
        if (more == sched.queues.end() || more->second.empty()) break;
        auto run2 =
            more->second.pop_run(config_.wsize - total, merge_ok, splitter);
        if (more->second.empty()) sched.queues.erase(more);
        if (run2.empty()) break;
        IoSlice s2 = run2.front().value.slice;
        Payload d2 = std::move(run2.front().value.data);
        sim::Time enq2 = run2.front().value.enqueued_at;
        for (size_t i = 1; i < run2.size(); ++i) {
          QueuedWrite& qw = run2[i].value;
          s2.length += qw.slice.length;
          d2.append(std::move(qw.data));
          enq2 = std::min(enq2, qw.enqueued_at);
          ++stats_.sched_coalesced_extents;
          stats_.sched_coalesced_bytes += qw.slice.length;
          m_sched_coalesced_extents_->inc();
          m_sched_coalesced_bytes_->add(qw.slice.length);
        }
        if (s2.device_index != s.device_index) {
          // Same DS address, different route (different filehandle): a
          // compound holds one PUTFH, so requeue for the next dispatch.
          QueuedWrite back;
          back.file = file;
          back.slice = s2;
          back.data = std::move(d2);
          back.enqueued_at = enq2;
          sched.queues[ino].push(s2.target_offset, s2.length,
                                 std::move(back));
          break;
        }
        first_enq = std::min(first_enq, enq2);
        slices.push_back(s2);
        payloads.push_back(std::move(d2));
        total += s2.length;
      }
      note_sched_queue(sched);
    }
    if (slices.size() > 1) {
      ++stats_.vectored_writes;
      stats_.vectored_regions += slices.size();
      stats_.vectored_bytes += total;
      m_vectored_writes_->inc();
      m_vectored_regions_->add(slices.size());
      m_vectored_bytes_->add(total);
    }

    ++sched.inflight;
    sched.m_window_inflight->set(static_cast<double>(sched.inflight));

    // NIC admission pacing: hold a transmit token for this WRITE's estimated
    // serialization time, then hand it on while the RPC is still in flight.
    // Dispatches across all per-DS pipelines thus stagger at wire rate —
    // keeping server disk work overlapped with later transmissions instead
    // of bunched after a convoy of time-sliced transfers — and a slow or
    // dead DS holds the gate for one wire-time at most.
    co_await tx_gate_->acquire();
    {
      sim::Simulation& sim = fabric_.simulation();
      const double nic_bps = node_.nic().params().bytes_per_sec;
      const sim::Duration wire = sim::duration_for_bytes(total, nic_bps);
      sim.spawn([](sim::Simulation& sim, sim::Semaphore& gate,
                   sim::Duration d) -> Task<void> {
        co_await sim.delay(d);
        gate.release();
      }(sim, *tx_gate_, wire));
    }

    // Root an internal span over queue-entry -> WRITE-done so analyze_trace
    // can attribute client-queue time per DS; the WRITE RPC below becomes
    // its child hop.
    obs::TraceContext ctx;
    if (tracer_ != nullptr && tracer_->enabled()) ctx = tracer_->begin({});
    const sim::Time dispatched_at = fabric_.simulation().now();

    StatusCollector errors;
    // `payloads` keeps each region's bytes for re-dirtying if the WRITE
    // fails; the wire payload is their scatter-gather concatenation.
    Payload data;
    for (const Payload& p : payloads) data.append(p);
    co_await run_write_vector(*file, slices, std::move(data), errors, ctx);
    if (errors.failed()) {
      file->wb_error = true;
      // A failed write-back keeps its pages dirty (kernel semantics): the
      // bytes were claimed from the dirty set at flush time, so put them
      // back — except where a newer write already re-dirtied the range.
      for (size_t i = 0; i < slices.size(); ++i) {
        if (slices[i].parity) {
          // Parity payloads are derived, never file bytes: restoring them
          // into the cache would corrupt content.  Re-dirty the stripe
          // group they cover so the next flush recomputes data + parity.
          uint64_t span = slices[i].length;
          if (file->layout) {
            if (const auto geo = EcGeometry::from(*file->layout)) {
              span = slices[i].length * geo->k;
            }
          }
          const uint64_t gs = slices[i].file_offset;
          const uint64_t ge = std::min(file->size, gs + span);
          if (ge > gs) {
            const uint64_t dbefore = file->dirty.total_length();
            file->dirty.add(gs, ge);
            dirty_bytes_ += file->dirty.total_length() - dbefore;
          }
          continue;
        }
        const uint64_t ws = slices[i].file_offset;
        const uint64_t we = ws + slices[i].length;
        for (const auto& gap : file->dirty.gaps(ws, we)) {
          file->content.store(gap.start,
                              payloads[i].slice(gap.start - ws, gap.length()));
          const uint64_t vbefore = file->valid.total_length();
          file->valid.add(gap.start, gap.end);
          account_valid_delta(
              *file,
              static_cast<int64_t>(file->valid.total_length() - vbefore));
          const uint64_t dbefore = file->dirty.total_length();
          file->dirty.add(gap.start, gap.end);
          dirty_bytes_ += file->dirty.total_length() - dbefore;
        }
      }
    }
    stats_.wire_write_bytes += total;
    ++stats_.sched_writes;
    m_sched_writes_->inc();
    m_sched_bytes_->add(total);

    if (tracer_ != nullptr && ctx.valid()) {
      obs::Span span;
      span.trace_id = ctx.trace_id;
      span.span_id = ctx.span_id;
      span.kind = obs::SpanKind::kInternal;
      span.name = "wb.sched/" + sched.label;
      span.node = node_.name();
      span.start = first_enq;
      span.end = fabric_.simulation().now();
      span.queue_wait = dispatched_at - first_enq;
      span.bytes_out = total;
      span.error = errors.failed();
      tracer_->record(std::move(span));
    }

    if (!errors.failed() && config_.wb_commit_backlog != 0) {
      uint64_t& backlog = sched.uncommitted[ino];
      backlog += total;
      if (backlog >= config_.wb_commit_backlog &&
          !sched.commit_inflight.contains(ino)) {
        // Enough unstable bytes parked at this DS: start its disk flush
        // now, under the remaining transmissions, instead of letting it
        // all pile up behind fsync's final COMMIT.
        file->wb_inflight->spawn(
            wb_background_commit(file, addr, s.device_index));
      }
    }

    --sched.inflight;
    sched.m_window_inflight->set(static_cast<double>(sched.inflight));
    sched.window->release();
  }
}

Task<void> NfsClient::wb_background_commit(FilePtr file, rpc::RpcAddress addr,
                                           size_t device_index) {
  DsSched& sched = sched_for(addr);
  const uint64_t ino = file->attr.fileid;
  sched.commit_inflight.insert(ino);
  // Bytes completing while this COMMIT is in flight are not covered by it;
  // they accumulate toward the next trigger.
  sched.uncommitted[ino] = 0;
  StatusCollector errors;  // best-effort: fsync's COMMIT retries stragglers
  co_await run_commit_target(*file, device_index, errors);
  sched.commit_inflight.erase(ino);
}

Task<void> NfsClient::flush_dirty(FilePtr file, bool only_full_chunks,
                                  bool wait_completion) {
  co_await ensure_layout_fresh(*file);
  if (file->layout &&
      file->layout->aggregation == AggregationType::kErasureCoded) {
    // Group-granular flush: data and parity leave together.
    co_return co_await flush_dirty_ec(file, wait_completion);
  }
  const uint64_t chunk = config_.wsize;
  std::vector<util::IntervalSet::Interval> ranges;
  for (const auto& iv : file->dirty.intervals()) {
    if (only_full_chunks) {
      const uint64_t cs = round_up(iv.start, chunk);
      const uint64_t ce = round_down(iv.end, chunk);
      if (ce > cs) ranges.push_back({cs, ce});
    } else {
      ranges.push_back(iv);
    }
  }

  if (!file->wb_inflight) {
    file->wb_inflight = std::make_unique<sim::WaitGroup>(fabric_.simulation());
  }

  // Claim the ranges before suspending so concurrent flushes don't repeat
  // the work, then route each range and queue the pieces on their data
  // servers' pipelines.  Content is loaded here, synchronously: once
  // claimed, the bytes look clean and are fair game for eviction.
  for (const auto& r : ranges) {
    const uint64_t before = file->dirty.total_length();
    file->dirty.subtract(r.start, r.end);
    dirty_bytes_ -= before - file->dirty.total_length();
  }
  for (const auto& r : ranges) {
    const auto slices = route(*file, r.start, r.end - r.start,
                              /*for_write=*/true);
    for (const auto& s : slices) {
      uint64_t pos = 0;
      while (pos < s.length) {
        const uint64_t n = std::min<uint64_t>(chunk, s.length - pos);
        IoSlice piece = s;
        piece.target_offset += pos;
        piece.file_offset += pos;
        piece.length = n;
        Payload data = file->content.load(piece.file_offset, n);
        enqueue_writeback(file, piece, std::move(data));
        pos += n;
      }
    }
  }

  if (wait_completion) {
    co_await file->wb_inflight->wait();
    if (file->wb_error) {
      file->wb_error = false;
      throw NfsError(Status::kIo, "flush");
    }
  }
}

Task<void> NfsClient::flush_dirty_ec(FilePtr file, bool wait_completion) {
  FileState& f = *file;
  const auto geo = f.layout ? EcGeometry::from(*f.layout) : std::nullopt;
  if (!geo) throw NfsError(Status::kInval, "malformed erasure-coded layout");
  const uint64_t gb = geo->group_bytes();
  const uint64_t su = geo->su;

  if (!f.wb_inflight) {
    f.wb_inflight = std::make_unique<sim::WaitGroup>(fabric_.simulation());
  }

  // Snapshot the touched stripe groups; groups dirtied while this flush
  // runs belong to the next one.
  std::vector<uint64_t> group_starts;
  for (const auto& iv : f.dirty.intervals()) {
    for (uint64_t gs = round_down(iv.start, gb); gs < iv.end; gs += gb) {
      if (group_starts.empty() || group_starts.back() != gs) {
        group_starts.push_back(gs);
      }
    }
  }

  util::ReedSolomon rs(static_cast<uint32_t>(geo->k),
                       static_cast<uint32_t>(geo->m));
  for (const uint64_t gs : group_starts) {
    const uint64_t ge = gs + gb;
    // Read-modify-write: parity covers the whole group, so resident-but-
    // invalid bytes below EOF must be fetched before encoding.  This can
    // suspend; the group's bytes stay dirty — and thus pinned — until the
    // synchronous claim below.
    if (std::min<uint64_t>(ge, f.size) > gs &&
        !f.valid.covers(gs, std::min<uint64_t>(ge, f.size))) {
      co_await fetch_range(file, gs, std::min<uint64_t>(ge, f.size));
    }
    const uint64_t data_end = std::min<uint64_t>(ge, f.size);
    const auto todo = f.dirty.intersection(gs, ge);
    if (todo.empty()) continue;  // a concurrent flush claimed this group
    {
      const uint64_t before = f.dirty.total_length();
      f.dirty.subtract(gs, ge);
      dirty_bytes_ -= before - f.dirty.total_length();
    }

    // Encode the group's parity from the zero-padded cached shards.  All of
    // [gs, data_end) is valid here, and no suspension separates the claim
    // above from the loads below.  Virtual content (benchmarks) yields
    // virtual parity: sizes are billed, bytes never materialize.
    std::vector<Payload> parity;
    if (data_end > gs && f.content.tainted(gs, data_end)) {
      for (uint64_t j = 0; j < geo->m; ++j) {
        parity.push_back(Payload::virtual_bytes(su));
      }
    } else {
      std::vector<std::vector<std::byte>> shards(static_cast<size_t>(geo->k));
      for (uint64_t p = 0; p < geo->k; ++p) {
        auto& shard = shards[static_cast<size_t>(p)];
        shard.assign(static_cast<size_t>(su), std::byte{0});
        const uint64_t ss = gs + p * su;
        const uint64_t se = std::min(ss + su, data_end);
        if (se > ss) {
          Payload chunk = f.content.load(ss, se - ss);
          const auto span = chunk.data();
          std::copy(span.begin(), span.end(), shard.begin());
        }
      }
      std::vector<std::vector<std::byte>> pbytes;
      rs.encode(shards, &pbytes);
      for (auto& pb : pbytes) {
        parity.push_back(Payload::inline_bytes(std::move(pb)));
      }
    }

    // Data: exactly the claimed dirty ranges, wsize-chunked through the
    // data mapping (the EC driver's map_read is the data half of its
    // map_write).
    for (const auto& div : todo) {
      const auto slices =
          route(f, div.start, div.end - div.start, /*for_write=*/false);
      for (const auto& s : slices) {
        uint64_t pos = 0;
        while (pos < s.length) {
          const uint64_t n = std::min<uint64_t>(config_.wsize, s.length - pos);
          IoSlice piece = s;
          piece.target_offset += pos;
          piece.file_offset += pos;
          piece.length = n;
          Payload data = f.content.load(piece.file_offset, n);
          enqueue_writeback(file, piece, std::move(data));
          pos += n;
        }
      }
    }
    // Parity: one whole-su block per parity device.  Every shard of group
    // g sits at device offset g*su.
    for (uint64_t j = 0; j < geo->m; ++j) {
      const size_t dev = static_cast<size_t>(geo->k + j);
      IoSlice ps;
      ps.device_index = dev;
      ps.addr = devices_.at(f.layout->devices[dev]);
      ps.fh = f.layout->fhs[dev];
      ps.stateid = kDataServerStateid;
      ps.target_offset = gs / gb * su;
      ps.file_offset = gs;
      ps.length = su;
      ps.parity = true;
      enqueue_writeback(file, ps, std::move(parity[static_cast<size_t>(j)]));
    }
  }

  if (wait_completion) {
    co_await f.wb_inflight->wait();
    if (f.wb_error) {
      f.wb_error = false;
      throw NfsError(Status::kIo, "flush");
    }
  }
}

Task<void> NfsClient::commit_unstable(FileState& f) {
  if (f.unstable_targets.empty()) co_return;
  co_await ensure_layout_fresh(f);
  const std::set<size_t> targets = std::exchange(f.unstable_targets, {});
  // Snapshot what each COMMIT is about to cover: ranges written during the
  // COMMIT's flight belong to the next one.
  std::map<size_t, util::IntervalSet> covered;
  std::map<size_t, uint64_t> verifiers;
  for (size_t idx : targets) {
    if (auto it = f.commit_targets.find(idx); it != f.commit_targets.end()) {
      covered[idx] = it->second.uncommitted;
    }
    verifiers[idx] = 0;
  }
  StatusCollector errors;
  sim::WaitGroup wg(fabric_.simulation());
  for (size_t idx : targets) {
    wg.spawn(run_commit_target(f, idx, errors, &verifiers[idx]));
  }
  co_await wg.wait();
  if (errors.failed()) {
    // Put the targets back: a later fsync must re-COMMIT them, or their
    // retained extents would never be retired (or replayed).
    for (size_t idx : targets) f.unstable_targets.insert(idx);
    errors.throw_if_failed("COMMIT");
  }
  for (size_t idx : targets) {
    auto it = f.commit_targets.find(idx);
    if (it == f.commit_targets.end()) continue;
    FileState::TargetCommitState& t = it->second;
    if (t.verifier_known && verifiers[idx] != t.verifier) {
      // The server restarted (or the COMMIT degraded to another server):
      // the reply's verifier does not vouch for our WRITEs.  Replay.
      redirty_lost(f, idx);
      f.commit_targets.erase(it);
      continue;
    }
    // Matching verifier: the covered ranges are durable.
    for (const auto& iv : covered[idx].intervals()) {
      t.uncommitted.subtract(iv.start, iv.end);
    }
    if (t.uncommitted.empty()) f.commit_targets.erase(it);
  }
  // Everything written so far is now stable; reset the background-COMMIT
  // backlog so the next write burst starts counting from zero.
  for (auto& [addr, sched] : scheds_) sched.uncommitted.erase(f.attr.fileid);
}

Task<void> NfsClient::fsync(FilePtr file) {
  // Flush + COMMIT until quiescent: a COMMIT that discovers a restarted
  // server re-dirties the retained extents, which the next round re-writes
  // (against the revived incarnation) and re-commits.  One round suffices
  // per restart; the bound only guards against a server that crash-loops
  // faster than we can replay.
  constexpr int kMaxRounds = 8;
  for (int round = 0;; ++round) {
    bool transient_error = false;
    try {
      co_await flush_dirty(file, /*only_full_chunks=*/false, /*wait=*/true);
      co_await commit_unstable(*file);
    } catch (const NfsError&) {
      // Transient write-back/COMMIT failure (a server mid-restart): the
      // failed pages were re-dirtied, the un-committed targets re-queued.
      // Back off one deadline and re-drive; only a persistent outage
      // (every round failing) surfaces to the caller.
      if (round >= kMaxRounds) throw;
      transient_error = true;
    }
    if (transient_error && config_.ds_timeout > 0) {
      co_await fabric_.simulation().delay(config_.ds_timeout);
    }
    if (file->dirty.empty() && file->unstable_targets.empty()) break;
    if (round == kMaxRounds) {
      throw NfsError(Status::kIo, "fsync: replay did not converge");
    }
  }
  if (file->size_dirty && file->layout) {
    auto s = co_await session_for(mds_);
    CompoundBuilder b = with_sequence(s->id);
    b.add(OpCode::kPutFh, PutFhArgs{file->fh});
    b.add(OpCode::kLayoutCommit, LayoutCommitArgs{file->size, true});
    CompoundReply r(co_await call(mds_, std::move(b), 0));
    r.expect(OpCode::kSequence);
    r.expect(OpCode::kPutFh);
    const auto lc = r.expect<LayoutCommitRes>(OpCode::kLayoutCommit);
    if (lc.post_change != 0) {
      file->attr.change = std::max(file->attr.change, lc.post_change);
    }
  }
  file->size_dirty = false;
}

// ---------------------------------------------------------------------------
// Cache accounting
// ---------------------------------------------------------------------------

void NfsClient::account_valid_delta(FileState& f, int64_t delta) {
  (void)f;
  if (delta >= 0) {
    cached_bytes_ += static_cast<uint64_t>(delta);
  } else {
    cached_bytes_ -= std::min<uint64_t>(cached_bytes_,
                                        static_cast<uint64_t>(-delta));
  }
}

void NfsClient::evict_clean_if_needed() {
  while (cached_bytes_ > config_.cache_limit_bytes) {
    // Victim: least-recently-used file with evictable bytes.  Pinned ranges
    // (dirty + retained uncommitted writes) are not evictable.
    FileState* victim = nullptr;
    for (auto& [ino, state] : files_) {
      const uint64_t clean =
          state->valid.total_length() - state->pinned().total_length();
      if (clean == 0) continue;
      if (victim == nullptr || state->last_use < victim->last_use) {
        victim = state.get();
      }
    }
    if (victim == nullptr) break;  // everything is pinned: nothing to evict
    const util::IntervalSet pin = victim->pinned();
    uint64_t evicted = 0;
    for (const auto& iv : victim->valid.intervals()) {
      for (const auto& clean : pin.gaps(iv.start, iv.end)) {
        victim->content.drop(clean.start, clean.end);
        evicted += clean.length();
      }
    }
    // valid := pinned (only unevictable ranges remain cached).
    victim->valid = pin;
    victim->readahead_high = 0;
    account_valid_delta(*victim, -static_cast<int64_t>(evicted));
    if (evicted == 0) break;
  }
}

}  // namespace dpnfs::nfs
