#include "nfs/local_backend.hpp"

namespace dpnfs::nfs {

using rpc::Payload;
using sim::Task;

LocalBackend::LocalBackend(lfs::ObjectStore& store, bool flat_object_mode)
    : store_(store), flat_(flat_object_mode) {
  if (!flat_) {
    Inode root;
    root.type = FileType::kDirectory;
    inodes_.emplace(kRootIno, std::move(root));
  }
}

LocalBackend::Inode* LocalBackend::find(uint64_t ino) {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

uint64_t LocalBackend::alloc_inode(FileType type) {
  const uint64_t ino = next_ino_++;
  Inode node;
  node.type = type;
  node.mtime_ns = store_.node().simulation().now();
  inodes_.emplace(ino, std::move(node));
  if (type == FileType::kRegular) store_.create(ino);
  return ino;
}

void LocalBackend::bump(Inode& inode) {
  ++inode.change;
  inode.mtime_ns = store_.node().simulation().now();
}

Task<Status> LocalBackend::getattr(FileHandle fh, Fattr* out) {
  if (flat_) {
    if (!store_.exists(fh.id)) co_return Status::kBadHandle;
    *out = Fattr{FileType::kRegular, fh.id, store_.size(fh.id), 0, 0};
    co_return Status::kOk;
  }
  Inode* node = find(fh.id);
  if (node == nullptr) co_return Status::kStale;
  out->type = node->type;
  out->fileid = fh.id;
  out->size =
      node->type == FileType::kRegular ? store_.size(fh.id) : node->children.size();
  out->change = node->change;
  out->mtime_ns = node->mtime_ns;
  co_return Status::kOk;
}

Task<Status> LocalBackend::set_size(FileHandle fh, uint64_t size) {
  if (flat_) {
    if (!store_.exists(fh.id)) store_.create(fh.id);
    store_.truncate(fh.id, size);
    co_return Status::kOk;
  }
  Inode* node = find(fh.id);
  if (node == nullptr) co_return Status::kStale;
  if (node->type != FileType::kRegular) co_return Status::kIsDir;
  store_.truncate(fh.id, size);
  bump(*node);
  co_return Status::kOk;
}

Task<Status> LocalBackend::lookup(FileHandle dir, const std::string& name,
                                  FileHandle* out) {
  if (flat_) co_return Status::kNotSupp;
  Inode* parent = find(dir.id);
  if (parent == nullptr) co_return Status::kStale;
  if (parent->type != FileType::kDirectory) co_return Status::kNotDir;
  const auto it = parent->children.find(name);
  if (it == parent->children.end()) co_return Status::kNoEnt;
  *out = FileHandle{it->second};
  co_return Status::kOk;
}

Task<Status> LocalBackend::mkdir(FileHandle dir, const std::string& name,
                                 FileHandle* out) {
  if (flat_) co_return Status::kNotSupp;
  Inode* parent = find(dir.id);
  if (parent == nullptr) co_return Status::kStale;
  if (parent->type != FileType::kDirectory) co_return Status::kNotDir;
  if (parent->children.contains(name)) co_return Status::kExist;
  const uint64_t ino = alloc_inode(FileType::kDirectory);
  parent->children.emplace(name, ino);
  bump(*parent);
  *out = FileHandle{ino};
  co_return Status::kOk;
}

Task<Status> LocalBackend::open(FileHandle dir, const std::string& name,
                                bool create, FileHandle* out, Fattr* attr) {
  if (flat_) {
    // Flat mode: "open" of a numeric name maps straight to an object id.
    co_return Status::kNotSupp;
  }
  Inode* parent = find(dir.id);
  if (parent == nullptr) co_return Status::kStale;
  if (parent->type != FileType::kDirectory) co_return Status::kNotDir;
  auto it = parent->children.find(name);
  uint64_t ino = 0;
  if (it == parent->children.end()) {
    if (!create) co_return Status::kNoEnt;
    ino = alloc_inode(FileType::kRegular);
    parent->children.emplace(name, ino);
    bump(*parent);
  } else {
    ino = it->second;
    if (find(ino)->type != FileType::kRegular) co_return Status::kIsDir;
  }
  *out = FileHandle{ino};
  co_return co_await getattr(*out, attr);
}

Task<Status> LocalBackend::remove(FileHandle dir, const std::string& name) {
  if (flat_) co_return Status::kNotSupp;
  Inode* parent = find(dir.id);
  if (parent == nullptr) co_return Status::kStale;
  if (parent->type != FileType::kDirectory) co_return Status::kNotDir;
  const auto it = parent->children.find(name);
  if (it == parent->children.end()) co_return Status::kNoEnt;
  Inode* victim = find(it->second);
  if (victim->type == FileType::kDirectory && !victim->children.empty()) {
    co_return Status::kNotEmpty;
  }
  if (victim->type == FileType::kRegular && store_.exists(it->second)) {
    store_.remove(it->second);
  }
  inodes_.erase(it->second);
  parent->children.erase(it);
  bump(*parent);
  co_return Status::kOk;
}

Task<Status> LocalBackend::rename(FileHandle src_dir,
                                  const std::string& old_name,
                                  FileHandle dst_dir,
                                  const std::string& new_name) {
  if (flat_) co_return Status::kNotSupp;
  Inode* src = find(src_dir.id);
  Inode* dst = find(dst_dir.id);
  if (src == nullptr || dst == nullptr) co_return Status::kStale;
  if (src->type != FileType::kDirectory || dst->type != FileType::kDirectory) {
    co_return Status::kNotDir;
  }
  const auto it = src->children.find(old_name);
  if (it == src->children.end()) co_return Status::kNoEnt;
  if (dst->children.contains(new_name)) co_return Status::kExist;
  const uint64_t ino = it->second;
  src->children.erase(it);
  dst->children.emplace(new_name, ino);
  bump(*src);
  bump(*dst);
  co_return Status::kOk;
}

Task<Status> LocalBackend::readdir(FileHandle dir, std::vector<DirEntry>* out) {
  if (flat_) co_return Status::kNotSupp;
  Inode* parent = find(dir.id);
  if (parent == nullptr) co_return Status::kStale;
  if (parent->type != FileType::kDirectory) co_return Status::kNotDir;
  out->clear();
  out->reserve(parent->children.size());
  for (const auto& [name, ino] : parent->children) {
    out->push_back(DirEntry{name, ino, find(ino)->type});
  }
  co_return Status::kOk;
}

void LocalBackend::trace_store_op(obs::TraceContext trace, const char* op,
                                  int64_t start, uint64_t bytes_in,
                                  uint64_t bytes_out, int64_t disk_ns) const {
  // Disk attribution happens even untraced: the tenant rode in on the call
  // header, not the (sampled) trace.
  if (tenants_ != nullptr) tenants_->account_disk(trace.tenant, disk_ns);
  if (tracer_ == nullptr || !trace.valid()) return;
  obs::Span span;
  span.trace_id = trace.trace_id;
  span.span_id = tracer_->begin(trace).span_id;
  span.parent_span_id = trace.span_id;
  span.kind = obs::SpanKind::kInternal;
  span.name = std::string("store/") + op;
  span.node = node_name_;
  span.start = start;
  span.end = store_.node().simulation().now();
  span.bytes_out = bytes_out;
  span.bytes_in = bytes_in;
  span.disk = disk_ns;
  tracer_->record(std::move(span));
}

Task<Status> LocalBackend::read(FileHandle fh, uint64_t offset, uint32_t count,
                                rpc::Payload* out, bool* eof,
                                obs::TraceContext trace) {
  if (!flat_) {
    Inode* node = find(fh.id);
    if (node == nullptr) co_return Status::kStale;
    if (node->type != FileType::kRegular) co_return Status::kIsDir;
  } else if (!store_.exists(fh.id)) {
    // Reading a never-written stripe object: empty (all data elsewhere).
    *out = Payload{};
    *eof = true;
    co_return Status::kOk;
  }
  const int64_t start = store_.node().simulation().now();
  const uint64_t disk0 = store_.stats().disk_time_ns;
  *out = co_await store_.read(fh.id, offset, count);
  *eof = (offset + out->size() >= store_.size(fh.id));
  trace_store_op(trace, "read", start, 0, out->size(),
                 static_cast<int64_t>(store_.stats().disk_time_ns - disk0));
  co_return Status::kOk;
}

Task<Status> LocalBackend::write(FileHandle fh, uint64_t offset,
                                 const rpc::Payload& data, StableHow stable,
                                 StableHow* committed, uint64_t* post_change,
                                 obs::TraceContext trace) {
  *post_change = 0;
  if (!flat_) {
    Inode* node = find(fh.id);
    if (node == nullptr) co_return Status::kStale;
    if (node->type != FileType::kRegular) co_return Status::kIsDir;
    bump(*node);
    *post_change = node->change;
  }
  const int64_t start = store_.node().simulation().now();
  const uint64_t disk0 = store_.stats().disk_time_ns;
  co_await store_.write(fh.id, offset, data, stable != StableHow::kUnstable);
  *committed = stable;
  trace_store_op(trace, "write", start, data.size(), 0,
                 static_cast<int64_t>(store_.stats().disk_time_ns - disk0));
  co_return Status::kOk;
}

Task<Status> LocalBackend::commit(FileHandle fh, obs::TraceContext trace) {
  if (!flat_ && find(fh.id) == nullptr) co_return Status::kStale;
  const int64_t start = store_.node().simulation().now();
  const uint64_t disk0 = store_.stats().disk_time_ns;
  co_await store_.commit(fh.id);
  trace_store_op(trace, "commit", start, 0, 0,
                 static_cast<int64_t>(store_.stats().disk_time_ns - disk0));
  co_return Status::kOk;
}

}  // namespace dpnfs::nfs
