// NFSv4.1 server: COMPOUND dispatch, sessions, open state, pNFS ops.
//
// One NfsServer exports one Backend through the RPC fabric.  The paper's
// configuration — eight nfsd threads — maps to eight RPC worker coroutines.
// CPU cost is charged per operation plus per byte moved, which is what makes
// warm-cache reads CPU-bound at scale (paper §6.2.1).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "nfs/backend.hpp"
#include "rpc/fabric.hpp"

namespace dpnfs::nfs {

struct ServerConfig {
  uint32_t worker_threads = 8;        ///< nfsd threads (paper: 8)
  uint32_t max_session_slots = 64;    ///< CREATE_SESSION grant
  sim::Duration cpu_per_op = sim::us(12);
  double cpu_ns_per_byte = 2.2;       ///< copy/checksum cost on data ops
  bool is_data_server = false;        ///< restricts ops to the pNFS data path
  /// RPCSEC_GSS stand-in: when non-empty, calls whose principal does not
  /// end with this suffix are rejected with NFS4ERR_PERM.  Because both
  /// the control path (MDS) and the data path (data servers) speak NFSv4,
  /// one credential covers everything — the access-transparency property
  /// Direct-pNFS inherits (paper §4).
  std::string required_principal_suffix;
  /// Grace window after a restart (RFC 5661 §8.4 flavour): for this long,
  /// a SEQUENCE on a session the revived instance does not know answers
  /// NFS4ERR_GRACE — "I restarted, reclaim your state" — instead of a bare
  /// NFS4ERR_BADSESSION.  State *establishment* (EXCHANGE_ID,
  /// CREATE_SESSION, LAYOUTGET reclaim) is always admitted.  0 (the
  /// default, used on data servers) skips the grace distinction: stateless
  /// per-stripe I/O recovers through session re-creation alone.
  sim::Duration grace_period = 0;
};

class NfsServer {
 public:
  NfsServer(rpc::RpcFabric& fabric, sim::Node& node, uint16_t port,
            Backend& backend, LayoutSource* layouts = nullptr,
            ServerConfig config = {});

  void start() { rpc_server_->start(); }
  void stop() { rpc_server_->stop(); }

  rpc::RpcAddress address() const { return rpc_server_->address(); }
  /// Requests queued at the RPC daemon right now (utilization sampler).
  size_t rpc_queue_depth() const { return rpc_server_->queue_depth(); }
  sim::Node& node() noexcept { return node_; }
  const ServerConfig& config() const noexcept { return config_; }
  uint64_t compounds_served() const noexcept { return compounds_; }

  uint64_t layout_recalls_issued() const noexcept { return recalls_; }
  uint64_t delegations_granted() const noexcept { return delegations_granted_; }
  uint64_t delegation_recalls_issued() const noexcept {
    return delegation_recalls_;
  }

  /// Write verifier of the incarnation serving right now (the cookie WRITE
  /// and COMMIT replies carry).  Stable across a fault-free run.
  uint64_t boot_verifier() const noexcept { return boot_verifier_; }
  /// Restarts this server has detected and recovered from.
  uint64_t restarts_observed() const noexcept { return restarts_; }

 private:
  /// Executes one COMPOUND (the RpcService body).
  sim::Task<void> serve(const rpc::CallContext& ctx, rpc::XdrDecoder& args,
                        rpc::XdrEncoder& results);

  /// Per-op dispatch; returns the op status and encodes its result body.
  /// `session` is the id carried by this compound's SEQUENCE (0 if none).
  sim::Task<Status> dispatch(OpCode op, const rpc::CallContext& ctx,
                             rpc::XdrDecoder& args, rpc::XdrEncoder& results,
                             FileHandle& current_fh, FileHandle& saved_fh,
                             uint64_t& session);

  bool stateid_ok(const Stateid& sid) const;

  /// Lazily detects a boot-instance bump (the fault injector revived this
  /// service after a crash window).  On a bump: all volatile NFSv4.1 state
  /// — sessions, open state, layout/delegation holders — is gone, the
  /// backend sheds its volatile data, a fresh write verifier is adopted,
  /// and (when configured) a grace window opens.  Equivalent to an eager
  /// revive hook: nothing is served between the crash and the next request.
  void check_restart(sim::Time now);
  uint64_t current_instance(sim::Time now) const;
  uint64_t current_verifier(sim::Time now) const;
  bool in_grace(sim::Time now) const noexcept {
    return now < grace_until_;
  }

  sim::Task<void> charge_cpu(uint64_t data_bytes);

  /// CB_LAYOUTRECALL to every layout holder of `fh` with a backchannel.
  /// Completes once every holder has acknowledged (and thereby returned
  /// the layout).
  sim::Task<void> recall_layouts(FileHandle fh);

  /// CB_RECALL to every delegation holder of `fh`, except `keep_session`
  /// (the conflicting requester's own delegation survives an upgrade).
  sim::Task<void> recall_delegations(FileHandle fh, uint64_t keep_session);

  /// Shared recall machinery: sends `proc` to each holder's backchannel.
  sim::Task<void> send_recalls(FileHandle fh, std::set<uint64_t> holders,
                               uint32_t proc);

  rpc::RpcFabric& fabric_;
  sim::Node& node_;
  uint16_t port_;
  Backend& backend_;
  LayoutSource* layouts_;
  ServerConfig config_;
  std::unique_ptr<rpc::RpcServer> rpc_server_;
  std::unique_ptr<rpc::RpcClient> cb_client_;  ///< backchannel caller

  // Boot identity: 0 = not yet observed (adopted without a reset on the
  // first compound, so fault-free runs never shed state).
  uint64_t boot_instance_ = 0;
  uint64_t boot_verifier_ = 0;
  sim::Time grace_until_ = 0;
  uint64_t restarts_ = 0;
  /// False while a "grace.exit" flight event is still owed for the current
  /// grace window (armed by check_restart when grace begins).
  bool grace_logged_ = true;

  uint64_t next_client_id_ = 1;
  uint64_t next_session_id_ = 1;
  uint64_t next_stateid_ = 1;
  std::set<uint64_t> sessions_;
  /// session id -> backchannel address (absent: no backchannel).
  std::unordered_map<uint64_t, rpc::RpcAddress> backchannels_;
  /// fh id -> sessions holding a layout for it.
  std::unordered_map<uint64_t, std::set<uint64_t>> layout_holders_;
  /// fh id -> sessions holding a read delegation.
  std::unordered_map<uint64_t, std::set<uint64_t>> delegation_holders_;
  /// fh id -> number of write-mode opens (delegation-conflict detection).
  std::unordered_map<uint64_t, uint32_t> write_opens_;

  struct OpenState {
    FileHandle fh;
    bool write = false;
  };
  std::unordered_map<uint64_t, OpenState> open_states_;  // stateid -> state
  uint64_t compounds_ = 0;
  uint64_t recalls_ = 0;
  uint64_t delegations_granted_ = 0;
  uint64_t delegation_recalls_ = 0;

  // "nfs.server" component handles, resolved once at construction (null
  // sinks when the fabric carries no registry).
  obs::Counter* m_compounds_;
  obs::Counter* m_read_bytes_;
  obs::Counter* m_write_bytes_;
  obs::Counter* m_layouts_recalled_;
  obs::Counter* m_delegation_recalls_;
};

}  // namespace dpnfs::nfs
