// NFSv4.1 server: COMPOUND dispatch, sessions, open state, pNFS ops.
//
// One NfsServer exports one Backend through the RPC fabric.  The paper's
// configuration — eight nfsd threads — maps to eight RPC worker coroutines.
// CPU cost is charged per operation plus per byte moved, which is what makes
// warm-cache reads CPU-bound at scale (paper §6.2.1).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "nfs/backend.hpp"
#include "rpc/fabric.hpp"

namespace dpnfs::nfs {

struct ServerConfig {
  uint32_t worker_threads = 8;        ///< nfsd threads (paper: 8)
  uint32_t max_session_slots = 64;    ///< CREATE_SESSION grant
  sim::Duration cpu_per_op = sim::us(12);
  double cpu_ns_per_byte = 2.2;       ///< copy/checksum cost on data ops
  bool is_data_server = false;        ///< restricts ops to the pNFS data path
  /// RPCSEC_GSS stand-in: when non-empty, calls whose principal does not
  /// end with this suffix are rejected with NFS4ERR_PERM.  Because both
  /// the control path (MDS) and the data path (data servers) speak NFSv4,
  /// one credential covers everything — the access-transparency property
  /// Direct-pNFS inherits (paper §4).
  std::string required_principal_suffix;
};

class NfsServer {
 public:
  NfsServer(rpc::RpcFabric& fabric, sim::Node& node, uint16_t port,
            Backend& backend, LayoutSource* layouts = nullptr,
            ServerConfig config = {});

  void start() { rpc_server_->start(); }
  void stop() { rpc_server_->stop(); }

  rpc::RpcAddress address() const { return rpc_server_->address(); }
  /// Requests queued at the RPC daemon right now (utilization sampler).
  size_t rpc_queue_depth() const { return rpc_server_->queue_depth(); }
  sim::Node& node() noexcept { return node_; }
  const ServerConfig& config() const noexcept { return config_; }
  uint64_t compounds_served() const noexcept { return compounds_; }

  uint64_t layout_recalls_issued() const noexcept { return recalls_; }
  uint64_t delegations_granted() const noexcept { return delegations_granted_; }
  uint64_t delegation_recalls_issued() const noexcept {
    return delegation_recalls_;
  }

 private:
  /// Executes one COMPOUND (the RpcService body).
  sim::Task<void> serve(const rpc::CallContext& ctx, rpc::XdrDecoder& args,
                        rpc::XdrEncoder& results);

  /// Per-op dispatch; returns the op status and encodes its result body.
  /// `session` is the id carried by this compound's SEQUENCE (0 if none).
  sim::Task<Status> dispatch(OpCode op, const rpc::CallContext& ctx,
                             rpc::XdrDecoder& args, rpc::XdrEncoder& results,
                             FileHandle& current_fh, FileHandle& saved_fh,
                             uint64_t& session);

  bool stateid_ok(const Stateid& sid) const;

  sim::Task<void> charge_cpu(uint64_t data_bytes);

  /// CB_LAYOUTRECALL to every layout holder of `fh` with a backchannel.
  /// Completes once every holder has acknowledged (and thereby returned
  /// the layout).
  sim::Task<void> recall_layouts(FileHandle fh);

  /// CB_RECALL to every delegation holder of `fh`, except `keep_session`
  /// (the conflicting requester's own delegation survives an upgrade).
  sim::Task<void> recall_delegations(FileHandle fh, uint64_t keep_session);

  /// Shared recall machinery: sends `proc` to each holder's backchannel.
  sim::Task<void> send_recalls(FileHandle fh, std::set<uint64_t> holders,
                               uint32_t proc);

  rpc::RpcFabric& fabric_;
  sim::Node& node_;
  Backend& backend_;
  LayoutSource* layouts_;
  ServerConfig config_;
  std::unique_ptr<rpc::RpcServer> rpc_server_;
  std::unique_ptr<rpc::RpcClient> cb_client_;  ///< backchannel caller

  uint64_t next_client_id_ = 1;
  uint64_t next_session_id_ = 1;
  uint64_t next_stateid_ = 1;
  std::set<uint64_t> sessions_;
  /// session id -> backchannel address (absent: no backchannel).
  std::unordered_map<uint64_t, rpc::RpcAddress> backchannels_;
  /// fh id -> sessions holding a layout for it.
  std::unordered_map<uint64_t, std::set<uint64_t>> layout_holders_;
  /// fh id -> sessions holding a read delegation.
  std::unordered_map<uint64_t, std::set<uint64_t>> delegation_holders_;
  /// fh id -> number of write-mode opens (delegation-conflict detection).
  std::unordered_map<uint64_t, uint32_t> write_opens_;

  struct OpenState {
    FileHandle fh;
    bool write = false;
  };
  std::unordered_map<uint64_t, OpenState> open_states_;  // stateid -> state
  uint64_t compounds_ = 0;
  uint64_t recalls_ = 0;
  uint64_t delegations_granted_ = 0;
  uint64_t delegation_recalls_ = 0;

  // "nfs.server" component handles, resolved once at construction (null
  // sinks when the fabric carries no registry).
  obs::Counter* m_compounds_;
  obs::Counter* m_read_bytes_;
  obs::Counter* m_write_bytes_;
  obs::Counter* m_layouts_recalled_;
  obs::Counter* m_delegation_recalls_;
};

}  // namespace dpnfs::nfs
