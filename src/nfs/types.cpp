#include "nfs/types.hpp"

namespace dpnfs::nfs {

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "NFS4_OK";
    case Status::kPerm: return "NFS4ERR_PERM";
    case Status::kNoEnt: return "NFS4ERR_NOENT";
    case Status::kIo: return "NFS4ERR_IO";
    case Status::kAccess: return "NFS4ERR_ACCESS";
    case Status::kExist: return "NFS4ERR_EXIST";
    case Status::kNotDir: return "NFS4ERR_NOTDIR";
    case Status::kIsDir: return "NFS4ERR_ISDIR";
    case Status::kInval: return "NFS4ERR_INVAL";
    case Status::kNoSpc: return "NFS4ERR_NOSPC";
    case Status::kNotEmpty: return "NFS4ERR_NOTEMPTY";
    case Status::kStale: return "NFS4ERR_STALE";
    case Status::kBadHandle: return "NFS4ERR_BADHANDLE";
    case Status::kNotSupp: return "NFS4ERR_NOTSUPP";
    case Status::kDelay: return "NFS4ERR_DELAY";
    case Status::kGrace: return "NFS4ERR_GRACE";
    case Status::kBadSession: return "NFS4ERR_BADSESSION";
    case Status::kBadStateid: return "NFS4ERR_BAD_STATEID";
    case Status::kLayoutUnavailable: return "NFS4ERR_LAYOUTUNAVAILABLE";
    case Status::kUnknownLayoutType: return "NFS4ERR_UNKNOWN_LAYOUTTYPE";
    case Status::kTimedOut: return "CLIENT_TIMED_OUT";
  }
  return "NFS4ERR_?";
}

const char* opcode_name(OpCode op) {
  switch (op) {
    case OpCode::kClose: return "CLOSE";
    case OpCode::kCommit: return "COMMIT";
    case OpCode::kCreate: return "CREATE";
    case OpCode::kGetattr: return "GETATTR";
    case OpCode::kGetFh: return "GETFH";
    case OpCode::kLookup: return "LOOKUP";
    case OpCode::kOpen: return "OPEN";
    case OpCode::kPutFh: return "PUTFH";
    case OpCode::kPutRootFh: return "PUTROOTFH";
    case OpCode::kRead: return "READ";
    case OpCode::kReaddir: return "READDIR";
    case OpCode::kRemove: return "REMOVE";
    case OpCode::kRename: return "RENAME";
    case OpCode::kRestoreFh: return "RESTOREFH";
    case OpCode::kSaveFh: return "SAVEFH";
    case OpCode::kSetattr: return "SETATTR";
    case OpCode::kWrite: return "WRITE";
    case OpCode::kExchangeId: return "EXCHANGE_ID";
    case OpCode::kCreateSession: return "CREATE_SESSION";
    case OpCode::kGetDeviceInfo: return "GETDEVICEINFO";
    case OpCode::kGetDeviceList: return "GETDEVICELIST";
    case OpCode::kLayoutCommit: return "LAYOUTCOMMIT";
    case OpCode::kLayoutGet: return "LAYOUTGET";
    case OpCode::kLayoutReturn: return "LAYOUTRETURN";
    case OpCode::kSequence: return "SEQUENCE";
    case OpCode::kReadv: return "READV";
    case OpCode::kWritev: return "WRITEV";
  }
  return "OP_?";
}

}  // namespace dpnfs::nfs
