// Local-filesystem backend: a directory tree + regular files whose data
// lives in the node's lfs::ObjectStore.
//
// Used by standalone NFSv4 servers in unit tests and — in "flat object"
// mode — by Direct-pNFS data servers, where filehandles name stripe objects
// directly (handed out by the layout translator) and no directory tree is
// involved.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "lfs/object_store.hpp"
#include "nfs/backend.hpp"
#include "util/tenant.hpp"

namespace dpnfs::nfs {

class LocalBackend final : public Backend {
 public:
  /// `flat_object_mode`: any filehandle is treated as an object id in the
  /// store (created on first write).  Namespace ops return NOTSUPP.
  explicit LocalBackend(lfs::ObjectStore& store, bool flat_object_mode = false);

  FileHandle root_fh() const override { return FileHandle{kRootIno}; }

  sim::Task<Status> getattr(FileHandle fh, Fattr* out) override;
  sim::Task<Status> set_size(FileHandle fh, uint64_t size) override;
  sim::Task<Status> lookup(FileHandle dir, const std::string& name,
                           FileHandle* out) override;
  sim::Task<Status> mkdir(FileHandle dir, const std::string& name,
                          FileHandle* out) override;
  sim::Task<Status> open(FileHandle dir, const std::string& name, bool create,
                         FileHandle* out, Fattr* attr) override;
  sim::Task<Status> remove(FileHandle dir, const std::string& name) override;
  sim::Task<Status> rename(FileHandle src_dir, const std::string& old_name,
                           FileHandle dst_dir,
                           const std::string& new_name) override;
  sim::Task<Status> readdir(FileHandle dir, std::vector<DirEntry>* out) override;

  sim::Task<Status> read(FileHandle fh, uint64_t offset, uint32_t count,
                         rpc::Payload* out, bool* eof,
                         obs::TraceContext trace = {}) override;
  sim::Task<Status> write(FileHandle fh, uint64_t offset,
                          const rpc::Payload& data, StableHow stable,
                          StableHow* committed, uint64_t* post_change,
                          obs::TraceContext trace = {}) override;
  sim::Task<Status> commit(FileHandle fh, obs::TraceContext trace = {}) override;

  /// Crash semantics: the store's write-behind buffer and page cache were
  /// volatile memory of the daemon that just died.  The namespace (inode
  /// table) is kept — it stands in for the on-disk file system metadata a
  /// real server journals.
  void on_server_restart() override {
    store_.drop_dirty();
    store_.drop_caches();
  }

  /// Attaches a tracer: local store accesses then show up as internal spans
  /// under the serving request (the Direct-pNFS "no extra hop" evidence).
  void attach_tracer(obs::Tracer* tracer, std::string node_name) {
    tracer_ = tracer;
    node_name_ = std::move(node_name);
  }

  /// Attaches a tenant ledger: local store disk time is then charged to the
  /// tenant each serving request carries (tenant 0 → "none").
  void attach_tenants(obs::TenantLedger* tenants) { tenants_ = tenants; }

  lfs::ObjectStore& store() noexcept { return store_; }

 private:
  static constexpr uint64_t kRootIno = 1;

  struct Inode {
    FileType type = FileType::kRegular;
    uint64_t change = 0;
    int64_t mtime_ns = 0;
    std::map<std::string, uint64_t> children;  ///< directories only
  };

  Inode* find(uint64_t ino);
  uint64_t alloc_inode(FileType type);
  void bump(Inode& inode);

  /// Records one internal span covering a store access (no-op untraced) and
  /// charges the request tenant's disk time when a ledger is attached.
  /// `disk_ns` is the store's disk-time delta across the access; with
  /// concurrent ops on one store it can include writeback the store did
  /// while this op was blocked on it — which is still the time this op
  /// spent waiting on the disk.
  void trace_store_op(obs::TraceContext trace, const char* op, int64_t start,
                      uint64_t bytes_in, uint64_t bytes_out,
                      int64_t disk_ns) const;

  lfs::ObjectStore& store_;
  bool flat_;
  obs::Tracer* tracer_ = nullptr;
  obs::TenantLedger* tenants_ = nullptr;
  std::string node_name_;
  std::unordered_map<uint64_t, Inode> inodes_;
  uint64_t next_ino_ = 2;
};

}  // namespace dpnfs::nfs
