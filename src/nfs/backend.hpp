// Server-side export interfaces.
//
// `Backend` is the VFS the NFS server exports.  Implementations in this
// repository:
//   * nfs::LocalBackend   — a local file system on an lfs::ObjectStore
//                           (Direct-pNFS data servers, standalone servers).
//   * pvfs::PvfsBackend   — a PVFS2-client proxy (the 2-tier/3-tier pNFS
//                           data servers and the plain NFSv4 server of the
//                           paper's evaluation).
//
// `LayoutSource` supplies pNFS layouts to the server.  Direct-pNFS wires in
// the layout translator (src/core); the 2-/3-tier deployments wire in a
// synthetic round-robin source that — faithfully to the paper's critique —
// knows nothing about where data really lives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nfs/layout.hpp"
#include "nfs/ops.hpp"
#include "nfs/types.hpp"
#include "rpc/payload.hpp"
#include "sim/task.hpp"
#include "util/obs.hpp"

namespace dpnfs::nfs {

class Backend {
 public:
  virtual ~Backend() = default;

  virtual FileHandle root_fh() const = 0;

  virtual sim::Task<Status> getattr(FileHandle fh, Fattr* out) = 0;
  virtual sim::Task<Status> set_size(FileHandle fh, uint64_t size) = 0;
  virtual sim::Task<Status> lookup(FileHandle dir, const std::string& name,
                                   FileHandle* out) = 0;
  virtual sim::Task<Status> mkdir(FileHandle dir, const std::string& name,
                                  FileHandle* out) = 0;
  /// Opens (optionally creating) a regular file under `dir`.
  virtual sim::Task<Status> open(FileHandle dir, const std::string& name,
                                 bool create, FileHandle* out, Fattr* attr) = 0;
  virtual sim::Task<Status> remove(FileHandle dir, const std::string& name) = 0;
  virtual sim::Task<Status> rename(FileHandle src_dir,
                                   const std::string& old_name,
                                   FileHandle dst_dir,
                                   const std::string& new_name) = 0;
  virtual sim::Task<Status> readdir(FileHandle dir,
                                    std::vector<DirEntry>* out) = 0;

  // Data operations carry the server's trace context so proxy backends
  // (pvfs::PvfsBackend) can parent the RPCs they re-issue under the request
  // that triggered them — that re-route hop is exactly what the paper's
  // Figure 6 argument is about.  The default `{}` means "untraced".
  virtual sim::Task<Status> read(FileHandle fh, uint64_t offset, uint32_t count,
                                 rpc::Payload* out, bool* eof,
                                 obs::TraceContext trace = {}) = 0;
  /// `committed` reports the achieved stability (>= requested);
  /// `post_change` the file's change attribute after this write (clients
  /// use it to keep their cached attributes coherent with their own I/O).
  virtual sim::Task<Status> write(FileHandle fh, uint64_t offset,
                                  const rpc::Payload& data, StableHow stable,
                                  StableHow* committed, uint64_t* post_change,
                                  obs::TraceContext trace = {}) = 0;
  virtual sim::Task<Status> commit(FileHandle fh,
                                   obs::TraceContext trace = {}) = 0;

  /// Invoked by the server when it detects its own restart (boot instance
  /// bump): the backend must shed whatever state the crash made volatile.
  /// LocalBackend drops its store's unflushed dirty extents; proxy backends
  /// hold no volatile data of their own and keep the default no-op.
  virtual void on_server_restart() {}
};

/// Supplies pNFS device lists and layouts.  Absent (nullptr) on servers
/// that do not speak pNFS — LAYOUTGET then returns NFS4ERR_LAYOUTUNAVAILABLE
/// and clients fall back to MDS I/O.
class LayoutSource {
 public:
  virtual ~LayoutSource() = default;

  virtual sim::Task<Status> get_device_list(std::vector<DeviceEntry>* out) = 0;
  virtual sim::Task<Status> layout_get(FileHandle fh, LayoutIoMode iomode,
                                       FileLayout* out) = 0;
  /// `post_change` reports the file's change attribute after the commit
  /// (0 when the source does not track one).
  virtual sim::Task<Status> layout_commit(FileHandle fh, uint64_t new_size,
                                          bool size_changed,
                                          uint64_t* post_change) = 0;
  virtual sim::Task<Status> layout_return(FileHandle fh) = 0;
};

}  // namespace dpnfs::nfs
