// NFSv4 / NFSv4.1 protocol types.
//
// Status codes and operation numbers use the real protocol values (RFC 3530 /
// RFC 5661) so traces read like the genuine article.  Attributes are a fixed
// struct rather than the full NFSv4 bitmap machinery — the reproduction needs
// size/type/change semantics, not per-attribute negotiation.
#pragma once

#include <cstdint>
#include <string>

#include "rpc/xdr.hpp"

namespace dpnfs::nfs {

/// NFSv4.1 status codes (subset; values per RFC 5661).
enum class Status : uint32_t {
  kOk = 0,
  kPerm = 1,
  kNoEnt = 2,
  kIo = 5,
  kAccess = 13,
  kExist = 17,
  kNotDir = 20,
  kIsDir = 21,
  kInval = 22,
  kNoSpc = 28,
  kNotEmpty = 66,
  kStale = 70,
  kBadHandle = 10001,
  kNotSupp = 10004,
  kDelay = 10008,
  kGrace = 10013,
  kBadSession = 10052,
  kBadStateid = 10025,
  kLayoutUnavailable = 10059,
  kUnknownLayoutType = 10062,
  // Client-side pseudo-status, never on the wire: the RPC transport gave up
  // (deadline expired / lost message / crashed daemon) before any reply.
  kTimedOut = 0xF000,
};

const char* status_name(Status s);

/// Thrown by client-side wrappers when a server returns a non-OK status.
class NfsError : public std::runtime_error {
 public:
  explicit NfsError(Status status, const std::string& context)
      : std::runtime_error(context + ": " + status_name(status)),
        status_(status) {}
  Status status() const noexcept { return status_; }

 private:
  Status status_;
};

/// Opaque-to-the-client file handle.  In this reproduction a handle is a
/// 64-bit id in the issuing server's space; pNFS data-server handles name
/// stripe objects directly (the layout translator's doing).
struct FileHandle {
  uint64_t id = 0;

  bool operator==(const FileHandle&) const = default;
  auto operator<=>(const FileHandle&) const = default;

  void encode(rpc::XdrEncoder& enc) const { enc.put_u64(id); }
  static FileHandle decode(rpc::XdrDecoder& dec) { return FileHandle{dec.get_u64()}; }
};

/// Open/lock state identifier (simplified: one 64-bit token).
struct Stateid {
  uint64_t id = 0;

  bool operator==(const Stateid&) const = default;

  void encode(rpc::XdrEncoder& enc) const { enc.put_u64(id); }
  static Stateid decode(rpc::XdrDecoder& dec) { return Stateid{dec.get_u64()}; }
};

/// Special stateids (RFC 5661 §8.2.3 style).  pNFS data-server access in the
/// prototype uses a reserved stateid, as the paper describes.
inline constexpr Stateid kAnonymousStateid{0};
inline constexpr Stateid kDataServerStateid{0xD5D5D5D5D5D5D5D5ull};

enum class FileType : uint32_t { kRegular = 1, kDirectory = 2 };

/// Fixed attribute bundle (stands in for the NFSv4 attribute bitmap).
struct Fattr {
  FileType type = FileType::kRegular;
  uint64_t fileid = 0;
  uint64_t size = 0;
  uint64_t change = 0;    ///< change attribute (cache validation)
  int64_t mtime_ns = 0;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_u32(static_cast<uint32_t>(type));
    enc.put_u64(fileid);
    enc.put_u64(size);
    enc.put_u64(change);
    enc.put_i64(mtime_ns);
  }
  static Fattr decode(rpc::XdrDecoder& dec) {
    Fattr a;
    const uint32_t t = dec.get_u32();
    if (t != 1 && t != 2) throw rpc::XdrError("bad file type");
    a.type = static_cast<FileType>(t);
    a.fileid = dec.get_u64();
    a.size = dec.get_u64();
    a.change = dec.get_u64();
    a.mtime_ns = dec.get_i64();
    return a;
  }
};

/// WRITE stability levels (RFC 5661 §18.32).
enum class StableHow : uint32_t {
  kUnstable = 0,
  kDataSync = 1,
  kFileSync = 2,
};

/// NFSv4.1 operation numbers (RFC 5661 §16.2; real values).
enum class OpCode : uint32_t {
  kClose = 4,
  kCommit = 5,
  kCreate = 6,
  kGetattr = 9,
  kGetFh = 10,
  kLookup = 15,
  kOpen = 18,
  kPutFh = 22,
  kPutRootFh = 24,
  kRead = 25,
  kReaddir = 26,
  kRemove = 28,
  kRename = 29,
  kRestoreFh = 31,
  kSaveFh = 32,
  kSetattr = 34,
  kWrite = 38,
  kExchangeId = 42,
  kCreateSession = 43,
  kGetDeviceInfo = 47,
  kGetDeviceList = 48,
  kLayoutCommit = 49,
  kLayoutGet = 50,
  kLayoutReturn = 51,
  kSequence = 53,
  // Vectored (list) I/O extensions: one operation carrying many
  // (offset, length) regions backed by a single scatter-gather payload.
  // Not in RFC 5661/7862 — numbered above the standard range so they can
  // never collide with a real NFSv4.x assignment.
  kReadv = 70,
  kWritev = 71,
};

const char* opcode_name(OpCode op);

/// Session identifier granted by CREATE_SESSION.
struct SessionId {
  uint64_t id = 0;

  bool operator==(const SessionId&) const = default;

  void encode(rpc::XdrEncoder& enc) const { enc.put_u64(id); }
  static SessionId decode(rpc::XdrDecoder& dec) { return SessionId{dec.get_u64()}; }
};

}  // namespace dpnfs::nfs
