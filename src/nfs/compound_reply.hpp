// Client-side COMPOUND reply walker.
//
// Results are consumed in the same order the ops were added.  `expect`
// throws NfsError when the op failed, which unwinds through the client's
// coroutines like a syscall error.  `try_next` reads a status without
// throwing — used for ops that are allowed to fail (LAYOUTGET on a server
// that grants no layouts).
#pragma once

#include <utility>

#include "nfs/ops.hpp"
#include "nfs/types.hpp"
#include "rpc/fabric.hpp"

namespace dpnfs::nfs {

class CompoundReply {
 public:
  explicit CompoundReply(rpc::RpcClient::Reply raw)
      : raw_(std::move(raw)), dec_(raw_.body()) {
    if (raw_.transport != rpc::Status::kOk) {
      throw NfsError(Status::kTimedOut, "RPC transport");
    }
    if (raw_.status != rpc::ReplyStatus::kAccepted) {
      throw NfsError(Status::kIo, "RPC layer rejected call");
    }
    count_ = dec_.get_u32();
  }
  CompoundReply(const CompoundReply&) = delete;
  CompoundReply& operator=(const CompoundReply&) = delete;

  uint32_t result_count() const noexcept { return count_; }
  bool has_more() const noexcept { return consumed_ < count_; }

  /// Consumes the next result header; throws on opcode mismatch or error
  /// status.  The result body (if any) is then readable from dec().
  void expect(OpCode op) {
    const Status st = try_next(op);
    if (st != Status::kOk) throw NfsError(st, opcode_name(op));
  }

  /// Consumes the next header and decodes a typed result body.
  template <typename Res>
  Res expect(OpCode op) {
    expect(op);
    return Res::decode(dec_);
  }

  /// Consumes the next result header and returns its status without
  /// throwing.  Returns kIo if the compound ended early (a prior op failed).
  Status try_next(OpCode op) {
    if (!has_more()) return Status::kIo;
    const OpResultHeader h = OpResultHeader::decode(dec_);
    if (h.op != op) throw NfsError(Status::kIo, "compound result out of order");
    ++consumed_;
    return h.status;
  }

  rpc::XdrDecoder& dec() noexcept { return dec_; }

 private:
  rpc::RpcClient::Reply raw_;
  rpc::XdrDecoder dec_;
  uint32_t count_ = 0;
  uint32_t consumed_ = 0;
};

}  // namespace dpnfs::nfs
