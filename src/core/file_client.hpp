// Uniform file-system client API.
//
// Every workload in this repository runs against this interface, and every
// access architecture of the paper's evaluation — Direct-pNFS, native PVFS2,
// pNFS-2tier, pNFS-3tier, plain NFSv4 — provides an implementation.  That is
// the paper's "keep the back end constant, swap the access path"
// methodology in code form.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rpc/payload.hpp"
#include "sim/task.hpp"

namespace dpnfs::core {

/// An open file.
class File {
 public:
  virtual ~File() = default;

  virtual sim::Task<rpc::Payload> read(uint64_t offset, uint64_t length) = 0;
  virtual sim::Task<void> write(uint64_t offset, rpc::Payload data) = 0;
  virtual sim::Task<void> fsync() = 0;
  /// Closing commits buffered data (both NFS and exported-PVFS semantics
  /// in this reproduction, per §5).
  virtual sim::Task<void> close() = 0;
  virtual uint64_t size() const = 0;
};

/// A per-client-node handle to one file system deployment.
class FileSystemClient {
 public:
  virtual ~FileSystemClient() = default;

  virtual sim::Task<void> mount() = 0;

  virtual sim::Task<std::unique_ptr<File>> open(const std::string& path,
                                                bool create) = 0;

  /// Read-only open.  NFS clients may receive a read delegation, making
  /// repeated opens free; the default forwards to `open`.
  virtual sim::Task<std::unique_ptr<File>> open_read(const std::string& path) {
    return open(path, false);
  }
  virtual sim::Task<void> mkdir(const std::string& path) = 0;
  virtual sim::Task<void> remove(const std::string& path) = 0;
  virtual sim::Task<void> rename(const std::string& from,
                                 const std::string& to) = 0;
  /// Names in a directory.
  virtual sim::Task<std::vector<std::string>> list(const std::string& path) = 0;
  virtual sim::Task<uint64_t> stat_size(const std::string& path) = 0;

  /// Application-level byte counters (for throughput reporting).
  virtual uint64_t bytes_read() const = 0;
  virtual uint64_t bytes_written() const = 0;

  /// Drops client-side caches (no-op for cacheless clients).  Benchmarks
  /// use this between phases to separate warm-server from warm-client
  /// effects, as the paper's separate write/read runs do.
  virtual void drop_caches() {}
};

}  // namespace dpnfs::core
