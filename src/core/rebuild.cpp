#include "core/rebuild.hpp"

#include <algorithm>
#include <optional>

#include "util/bytes.hpp"
#include "util/format.hpp"
#include "util/log.hpp"
#include "util/reed_solomon.hpp"

namespace dpnfs::core {

using pvfs::DfileRef;
using pvfs::FileMeta;
using pvfs::IoProc;
using pvfs::PvfsError;
using pvfs::PvfsStatus;
using rpc::Payload;
using rpc::XdrEncoder;
using sim::Task;

namespace {
constexpr uint32_t kPvfsVersion = 2;
}

RebuildManager::RebuildManager(rpc::RpcFabric& fabric, sim::Node& node,
                               pvfs::PvfsMetaServer& meta,
                               std::vector<rpc::RpcAddress> storage,
                               const sim::FaultInjector* injector,
                               RebuildConfig config)
    : fabric_(fabric),
      node_(node),
      meta_(meta),
      storage_(std::move(storage)),
      injector_(injector),
      config_(config),
      rpc_(fabric, node, "rebuild@SIM"),
      down_since_(storage_.size(), sim::kNever) {
  if (obs::MetricsRegistry* reg = fabric.metrics()) {
    const std::string& n = node.name();
    m_declared_dead_ = &reg->counter(n, "mds.rebuild", "dses_declared_dead");
    m_started_ = &reg->counter(n, "mds.rebuild", "rebuilds_started");
    m_completed_ = &reg->counter(n, "mds.rebuild", "rebuilds_completed");
    m_objects_ = &reg->counter(n, "mds.rebuild", "objects_rebuilt");
    m_bytes_ = &reg->counter(n, "mds.rebuild", "bytes_rebuilt");
    m_failed_ = &reg->counter(n, "mds.rebuild", "objects_failed");
  } else {
    m_declared_dead_ = &obs::MetricsRegistry::null_counter();
    m_started_ = &obs::MetricsRegistry::null_counter();
    m_completed_ = &obs::MetricsRegistry::null_counter();
    m_objects_ = &obs::MetricsRegistry::null_counter();
    m_bytes_ = &obs::MetricsRegistry::null_counter();
    m_failed_ = &obs::MetricsRegistry::null_counter();
  }
}

RebuildManager::~RebuildManager() { stop_ = true; }

void RebuildManager::start() {
  if (running_ || injector_ == nullptr) return;
  running_ = true;
  stop_ = false;
  fabric_.simulation().spawn(monitor_loop());
}

bool RebuildManager::daemon_down(uint32_t index, sim::Time now) const {
  if (injector_ == nullptr || index >= storage_.size()) return false;
  const rpc::RpcAddress& a = storage_[index];
  return injector_->service_down(a.node_id, a.port, now);
}

Task<void> RebuildManager::monitor_loop() {
  while (!stop_) {
    co_await fabric_.simulation().delay(config_.check_interval);
    if (stop_) break;
    const sim::Time now = fabric_.simulation().now();
    for (uint32_t i = 0; i < storage_.size(); ++i) {
      if (!daemon_down(i, now)) {
        down_since_[i] = sim::kNever;
        continue;
      }
      if (down_since_[i] == sim::kNever) {
        down_since_[i] = now;
        continue;
      }
      if (now - down_since_[i] < config_.dead_threshold) continue;
      if (std::find(dead_.begin(), dead_.end(), i) != dead_.end()) continue;
      dead_.push_back(i);
      co_await rebuild_node(i);
    }
  }
  running_ = false;
}

Task<rpc::RpcClient::Reply> RebuildManager::io_call(uint32_t server_index,
                                                    IoProc proc,
                                                    XdrEncoder args) {
  rpc::CallOptions opts;
  opts.timeout = sim::ms(500);
  opts.max_retries = 2;
  auto reply = co_await rpc_.call(storage_.at(server_index),
                                  rpc::Program::kPvfsIo, kPvfsVersion,
                                  static_cast<uint32_t>(proc), std::move(args),
                                  opts);
  if (reply.transport != rpc::Status::kOk) {
    throw PvfsError(PvfsStatus::kIo, "rebuild RPC timed out");
  }
  co_return reply;
}

Task<Payload> RebuildManager::read_object(uint32_t server, uint64_t oid,
                                          uint64_t offset, uint64_t length) {
  XdrEncoder a;
  a.put_u64(oid);
  a.put_u64(offset);
  a.put_u64(length);
  auto r = co_await io_call(server, IoProc::kRead, std::move(a));
  auto d = r.body();
  if (static_cast<PvfsStatus>(d.get_u32()) != PvfsStatus::kOk) {
    throw PvfsError(PvfsStatus::kIo, "rebuild read");
  }
  co_return d.get_payload();
}

Task<void> RebuildManager::write_object(uint32_t server, uint64_t oid,
                                        uint64_t offset, Payload data) {
  XdrEncoder a;
  a.put_u64(oid);
  a.put_u64(offset);
  a.put_payload(std::move(data));
  auto r = co_await io_call(server, IoProc::kWrite, std::move(a));
  auto d = r.body();
  if (static_cast<PvfsStatus>(d.get_u32()) != PvfsStatus::kOk) {
    throw PvfsError(PvfsStatus::kIo, "rebuild write");
  }
}

Task<void> RebuildManager::pace(uint64_t bytes) {
  if (config_.rate_bytes_per_sec <= 0 || bytes == 0) co_return;
  const double sec = static_cast<double>(bytes) / config_.rate_bytes_per_sec;
  co_await fabric_.simulation().delay(
      static_cast<sim::Duration>(sec * 1e9));
}

Task<void> RebuildManager::rebuild_node(uint32_t index) {
  const sim::Time now = fabric_.simulation().now();
  ++stats_.dses_declared_dead;
  m_declared_dead_->inc();
  util::logf(util::LogLevel::kWarn, "mds.rebuild", now,
             "storage daemon %u declared permanently failed", index);
  if (obs::FlightRecorder* flight = fabric_.flight()) {
    flight->record(now, node_.name(), "mds.rebuild", "ds.declared_dead",
                   util::sformat("storage %u (down %lld ms)", index,
                                 static_cast<long long>(
                                     (now - down_since_[index]) / 1'000'000)));
  }

  // A spare must exist and itself be alive.
  const uint32_t active = meta_.active_storage();
  uint32_t spare = storage_.size();  // invalid
  while (active + spares_used_ < storage_.size()) {
    const uint32_t cand = active + spares_used_;
    ++spares_used_;
    if (cand != index && !daemon_down(cand, now)) {
      spare = cand;
      break;
    }
  }
  if (spare >= storage_.size()) {
    util::logf(util::LogLevel::kError, "mds.rebuild", now,
               "no live spare for failed storage daemon %u; data stays "
               "degraded", index);
    co_return;
  }

  ++stats_.rebuilds_started;
  m_started_->inc();
  if (obs::FlightRecorder* flight = fabric_.flight()) {
    flight->record(now, node_.name(), "mds.rebuild", "rebuild.start",
                   util::sformat("storage %u -> spare %u", index, spare));
  }

  // Snapshot the victim's files first: the visitor is synchronous, the
  // copies are not.  FileMeta entries are stable in the metadata tree.
  std::vector<FileMeta*> files;
  meta_.for_each_file([&](FileMeta& m) {
    for (const DfileRef& d : m.dfiles) {
      if (d.server_index == index) {
        files.push_back(&m);
        break;
      }
    }
  });

  uint64_t ok = 0, failed = 0;
  for (FileMeta* m : files) {
    for (uint32_t pos = 0; pos < m->dfiles.size(); ++pos) {
      if (m->dfiles[pos].server_index != index) continue;
      bool rebuilt = false;
      try {
        rebuilt = co_await rebuild_dfile(*m, pos, spare);
      } catch (const PvfsError& e) {
        util::logf(util::LogLevel::kError, "mds.rebuild",
                   fabric_.simulation().now(),
                   "rebuild of file %llu dfile %u failed: %s",
                   static_cast<unsigned long long>(m->handle), pos, e.what());
      }
      if (rebuilt) {
        ++ok;
        ++stats_.objects_rebuilt;
        m_objects_->inc();
      } else {
        ++failed;
        ++stats_.objects_failed;
        m_failed_->inc();
      }
    }
  }

  ++stats_.rebuilds_completed;
  m_completed_->inc();
  const sim::Time end = fabric_.simulation().now();
  util::logf(util::LogLevel::kInfo, "mds.rebuild", end,
             "rebuild of storage %u onto %u complete: %llu objects, "
             "%llu failed, %s copied",
             index, spare, static_cast<unsigned long long>(ok),
             static_cast<unsigned long long>(failed),
             util::format_bytes(stats_.bytes_rebuilt).c_str());
  if (obs::FlightRecorder* flight = fabric_.flight()) {
    flight->record(end, node_.name(), "mds.rebuild", "rebuild.complete",
                   util::sformat("storage %u -> spare %u, %llu objects, "
                                 "%llu failed",
                                 index, spare,
                                 static_cast<unsigned long long>(ok),
                                 static_cast<unsigned long long>(failed)));
  }
}

Task<bool> RebuildManager::rebuild_dfile(FileMeta& meta, uint32_t pos,
                                         uint32_t spare) {
  const sim::Time now = fabric_.simulation().now();
  if (meta.kind == pvfs::DistKind::kStripe) {
    co_return false;  // no redundancy: those bytes are gone
  }

  // Logical size from the surviving daemons (PVFS keeps no size at the
  // metadata server; redundant distributions tolerate the dead entry).
  std::vector<uint64_t> sizes(meta.dfiles.size(), 0);
  for (uint32_t i = 0; i < meta.dfiles.size(); ++i) {
    if (i == pos || daemon_down(meta.dfiles[i].server_index, now)) continue;
    XdrEncoder a;
    a.put_u64(meta.dfiles[i].object_id);
    try {
      auto r = co_await io_call(meta.dfiles[i].server_index, IoProc::kGetSize,
                                std::move(a));
      auto d = r.body();
      if (static_cast<PvfsStatus>(d.get_u32()) == PvfsStatus::kOk) {
        sizes[i] = d.get_u64();
      }
    } catch (const PvfsError&) {
      // Treated as size 0; redundancy covers the estimate.
    }
  }
  const uint64_t logical = pvfs::logical_size(meta, sizes);
  const uint64_t target = pvfs::dfile_size_for(meta, pos, logical);

  // Materialize the replacement object on the spare.
  const uint64_t oid = meta_.allocate_object();
  {
    XdrEncoder a;
    a.put_u64(oid);
    auto r = co_await io_call(spare, IoProc::kCreate, std::move(a));
    auto d = r.body();
    if (static_cast<PvfsStatus>(d.get_u32()) != PvfsStatus::kOk) {
      throw PvfsError(PvfsStatus::kIo, "rebuild create");
    }
  }

  if (meta.kind == pvfs::DistKind::kMirror) {
    // Copy from the first live replica, chunk by chunk.
    uint32_t src = meta.dfiles.size();
    for (uint32_t i = 0; i < meta.dfiles.size(); ++i) {
      if (i != pos && !daemon_down(meta.dfiles[i].server_index, now) &&
          sizes[i] >= target) {
        src = i;
        break;
      }
    }
    if (src >= meta.dfiles.size()) co_return false;
    for (uint64_t off = 0; off < target; off += config_.chunk_bytes) {
      const uint64_t len = std::min(config_.chunk_bytes, target - off);
      Payload chunk = co_await read_object(meta.dfiles[src].server_index,
                                           meta.dfiles[src].object_id, off,
                                           len);
      const uint64_t copied = chunk.size();
      co_await write_object(spare, oid, off, std::move(chunk));
      stats_.bytes_rebuilt += copied;
      m_bytes_->add(copied);
      co_await pace(copied);
    }
  } else {
    // Erasure: decode the missing shard round by round from any k live
    // shards (all shards of group g sit at dfile offset g * su).
    const uint32_t k = meta.ec_k;
    const uint32_t n = static_cast<uint32_t>(meta.dfiles.size());
    const uint64_t su = meta.stripe_unit;
    const util::ReedSolomon rs(k, meta.ec_m);
    for (uint64_t off = 0; off < target; off += su) {
      std::vector<std::optional<std::vector<std::byte>>> shards(n);
      uint32_t have = 0;
      for (uint32_t i = 0; i < n && have < k; ++i) {
        if (i == pos || daemon_down(meta.dfiles[i].server_index, now)) {
          continue;
        }
        Payload p = co_await read_object(meta.dfiles[i].server_index,
                                         meta.dfiles[i].object_id, off, su);
        std::vector<std::byte> shard(su, std::byte{0});
        const auto span = p.data();
        std::copy(span.begin(), span.end(), shard.begin());
        shards[i] = std::move(shard);
        ++have;
      }
      if (have < k || !rs.reconstruct(&shards)) co_return false;
      const uint64_t len = std::min(su, target - off);
      std::vector<std::byte> out(shards[pos]->begin(),
                                 shards[pos]->begin() + len);
      co_await write_object(spare, oid, off, Payload::inline_bytes(out));
      stats_.bytes_rebuilt += len;
      m_bytes_->add(len);
      co_await pace(len);
    }
  }

  {
    XdrEncoder a;
    a.put_u64(oid);
    a.put_u64(target);
    co_await io_call(spare, IoProc::kTruncate, std::move(a));
  }
  {
    XdrEncoder a;
    a.put_u64(oid);
    co_await io_call(spare, IoProc::kCommit, std::move(a));
  }

  // Retarget the distribution: layouts handed out from here on point at
  // the spare.
  meta.dfiles[pos] = DfileRef{spare, oid};
  co_return true;
}

}  // namespace dpnfs::core
