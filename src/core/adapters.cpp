#include "core/adapters.hpp"

namespace dpnfs::core {

using rpc::Payload;
using sim::Task;

namespace {

class NfsFile final : public File {
 public:
  NfsFile(nfs::NfsClient& client, nfs::NfsClient::FilePtr file)
      : client_(client), file_(std::move(file)) {}

  Task<Payload> read(uint64_t offset, uint64_t length) override {
    co_return co_await client_.read(file_, offset, length);
  }
  Task<void> write(uint64_t offset, Payload data) override {
    co_await client_.write(file_, offset, std::move(data));
  }
  Task<void> fsync() override { co_await client_.fsync(file_); }
  Task<void> close() override { co_await client_.close(file_); }
  uint64_t size() const override { return client_.file_size(file_); }

 private:
  nfs::NfsClient& client_;
  nfs::NfsClient::FilePtr file_;
};

class PvfsFileWrapper final : public File {
 public:
  PvfsFileWrapper(pvfs::PvfsClient& client, pvfs::PvfsFilePtr file)
      : client_(client), file_(std::move(file)) {}

  Task<Payload> read(uint64_t offset, uint64_t length) override {
    co_return co_await client_.read(file_, offset, length);
  }
  Task<void> write(uint64_t offset, Payload data) override {
    co_await client_.write(file_, offset, std::move(data));
  }
  Task<void> fsync() override { co_await client_.fsync(file_); }
  Task<void> close() override { co_await client_.close(file_); }
  uint64_t size() const override { return file_->size; }

 private:
  pvfs::PvfsClient& client_;
  pvfs::PvfsFilePtr file_;
};

}  // namespace

Task<std::unique_ptr<File>> NfsFileSystemClient::open(const std::string& path,
                                                      bool create) {
  auto file = co_await client_->open(path, create);
  co_return std::make_unique<NfsFile>(*client_, std::move(file));
}

Task<std::unique_ptr<File>> NfsFileSystemClient::open_read(
    const std::string& path) {
  auto file = co_await client_->open(path, /*create=*/false, /*read_only=*/true);
  co_return std::make_unique<NfsFile>(*client_, std::move(file));
}

Task<std::unique_ptr<File>> PvfsFileSystemClient::open(const std::string& path,
                                                       bool create) {
  pvfs::PvfsFilePtr file;
  if (create) {
    bool exists = false;
    try {
      file = co_await client_->create(path);
    } catch (const pvfs::PvfsError& e) {
      if (e.status() != pvfs::PvfsStatus::kExist) throw;
      exists = true;  // co_await is not permitted inside a handler
    }
    if (exists) file = co_await client_->open(path);
  } else {
    file = co_await client_->open(path);
  }
  co_return std::make_unique<PvfsFileWrapper>(*client_, std::move(file));
}

}  // namespace dpnfs::core
