#include "core/translator.hpp"

namespace dpnfs::core {

using nfs::Status;
using sim::Task;

LayoutTranslator::LayoutTranslator(PfsLayoutProvider& provider,
                                   std::vector<nfs::DeviceEntry> devices)
    : provider_(provider), devices_(std::move(devices)) {}

void LayoutTranslator::attach_metrics(obs::MetricsRegistry& registry,
                                      const std::string& node) {
  m_layouts_granted_ = &registry.counter(node, "nfs.layout", "layouts_granted");
  m_layout_commits_ = &registry.counter(node, "nfs.layout", "layout_commits");
  m_layout_returns_ = &registry.counter(node, "nfs.layout", "layout_returns");
}

Task<Status> LayoutTranslator::get_device_list(
    std::vector<nfs::DeviceEntry>* out) {
  *out = devices_;
  co_return Status::kOk;
}

Task<Status> LayoutTranslator::layout_get(nfs::FileHandle fh,
                                          nfs::LayoutIoMode /*iomode*/,
                                          nfs::FileLayout* out) {
  PfsLayoutDescription desc;
  if (!provider_.describe(fh, &desc)) co_return Status::kLayoutUnavailable;
  if (desc.placements.empty() || desc.stripe_unit == 0) {
    co_return Status::kLayoutUnavailable;
  }
  out->aggregation = desc.aggregation;
  out->stripe_unit = desc.stripe_unit;
  out->params = desc.params;
  out->devices.clear();
  out->fhs.clear();
  for (const auto& p : desc.placements) {
    if (p.storage_index >= devices_.size()) co_return Status::kLayoutUnavailable;
    // Device ids are storage-node indices; the data-server filehandle *is*
    // the PFS storage object id — the essence of the translation: clients
    // address physical stripe objects through plain NFSv4 handles.
    out->devices.push_back(devices_[p.storage_index].device);
    out->fhs.push_back(nfs::FileHandle{p.object_id});
  }
  ++layouts_granted_;
  m_layouts_granted_->inc();
  co_return Status::kOk;
}

Task<Status> LayoutTranslator::layout_commit(nfs::FileHandle fh,
                                             uint64_t new_size,
                                             bool size_changed,
                                             uint64_t* post_change) {
  *post_change = 0;
  m_layout_commits_->inc();
  if (size_changed) {
    *post_change = co_await provider_.on_layout_commit(fh, new_size);
  }
  co_return Status::kOk;
}

Task<Status> LayoutTranslator::layout_return(nfs::FileHandle /*fh*/) {
  m_layout_returns_->inc();
  co_return Status::kOk;
}

SyntheticLayoutSource::SyntheticLayoutSource(
    std::vector<nfs::DeviceEntry> devices, uint64_t stripe_unit)
    : devices_(std::move(devices)), stripe_unit_(stripe_unit) {}

void SyntheticLayoutSource::attach_metrics(obs::MetricsRegistry& registry,
                                           const std::string& node) {
  m_layouts_granted_ = &registry.counter(node, "nfs.layout", "layouts_granted");
}

Task<Status> SyntheticLayoutSource::get_device_list(
    std::vector<nfs::DeviceEntry>* out) {
  *out = devices_;
  co_return Status::kOk;
}

Task<Status> SyntheticLayoutSource::layout_get(nfs::FileHandle fh,
                                               nfs::LayoutIoMode /*iomode*/,
                                               nfs::FileLayout* out) {
  out->aggregation = nfs::AggregationType::kRoundRobin;
  out->stripe_unit = stripe_unit_;
  out->devices.clear();
  out->fhs.clear();
  for (const auto& d : devices_) {
    out->devices.push_back(d.device);
    out->fhs.push_back(fh);  // every DS proxies the same exported file
  }
  m_layouts_granted_->inc();
  co_return Status::kOk;
}

Task<Status> SyntheticLayoutSource::layout_commit(nfs::FileHandle /*fh*/,
                                                  uint64_t /*new_size*/,
                                                  bool /*size_changed*/,
                                                  uint64_t* post_change) {
  *post_change = 0;
  co_return Status::kOk;  // the exported PFS tracks sizes itself
}

Task<Status> SyntheticLayoutSource::layout_return(nfs::FileHandle /*fh*/) {
  co_return Status::kOk;
}

}  // namespace dpnfs::core
