// FileSystemClient adapters over the two native clients.
#pragma once

#include <memory>

#include "core/file_client.hpp"
#include "nfs/client.hpp"
#include "pvfs/client.hpp"

namespace dpnfs::core {

/// Adapter over nfs::NfsClient (used by Direct-pNFS, 2-/3-tier, plain NFS).
class NfsFileSystemClient final : public FileSystemClient {
 public:
  explicit NfsFileSystemClient(std::unique_ptr<nfs::NfsClient> client)
      : client_(std::move(client)) {}

  sim::Task<void> mount() override { co_await client_->mount(); }

  sim::Task<std::unique_ptr<File>> open(const std::string& path,
                                        bool create) override;
  sim::Task<std::unique_ptr<File>> open_read(const std::string& path) override;
  sim::Task<void> mkdir(const std::string& path) override {
    co_await client_->mkdir(path);
  }
  sim::Task<void> remove(const std::string& path) override {
    co_await client_->remove(path);
  }
  sim::Task<void> rename(const std::string& from,
                         const std::string& to) override {
    co_await client_->rename(from, to);
  }
  sim::Task<std::vector<std::string>> list(const std::string& path) override {
    auto entries = co_await client_->readdir(path);
    std::vector<std::string> names;
    names.reserve(entries.size());
    for (auto& e : entries) names.push_back(e.name);
    co_return names;
  }
  sim::Task<uint64_t> stat_size(const std::string& path) override {
    const nfs::Fattr attr = co_await client_->stat(path);
    co_return attr.size;
  }

  uint64_t bytes_read() const override { return client_->stats().bytes_read; }
  uint64_t bytes_written() const override {
    return client_->stats().bytes_written;
  }
  void drop_caches() override { client_->drop_caches(); }

  nfs::NfsClient& native() noexcept { return *client_; }

 private:
  std::unique_ptr<nfs::NfsClient> client_;
};

/// Adapter over pvfs::PvfsClient (the native-PVFS2 baseline).
class PvfsFileSystemClient final : public FileSystemClient {
 public:
  explicit PvfsFileSystemClient(std::unique_ptr<pvfs::PvfsClient> client)
      : client_(std::move(client)) {}

  sim::Task<void> mount() override { co_return; }  // PVFS has no mount step

  sim::Task<std::unique_ptr<File>> open(const std::string& path,
                                        bool create) override;
  sim::Task<void> mkdir(const std::string& path) override {
    co_await client_->mkdir(path);
  }
  sim::Task<void> remove(const std::string& path) override {
    co_await client_->remove(path);
  }
  sim::Task<void> rename(const std::string& from,
                         const std::string& to) override {
    co_await client_->rename(from, to);
  }
  sim::Task<std::vector<std::string>> list(const std::string& path) override {
    auto entries = co_await client_->readdir(path);
    std::vector<std::string> names;
    names.reserve(entries.size());
    for (auto& [name, is_dir] : entries) names.push_back(name);
    co_return names;
  }
  sim::Task<uint64_t> stat_size(const std::string& path) override {
    auto file = co_await client_->open(path);
    co_return file->size;
  }

  uint64_t bytes_read() const override { return client_->stats().bytes_read; }
  uint64_t bytes_written() const override {
    return client_->stats().bytes_written;
  }

  pvfs::PvfsClient& native() noexcept { return *client_; }

 private:
  std::unique_ptr<pvfs::PvfsClient> client_;
};

}  // namespace dpnfs::core
