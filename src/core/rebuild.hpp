// Background rebuild service for permanently failed storage daemons.
//
// Runs co-located with the PVFS metadata manager (the Direct-pNFS MDS node).
// A monitor loop samples the fault injector's view of every storage daemon;
// a daemon continuously unreachable for `dead_threshold` is declared
// permanently failed.  The manager then re-materializes every dfile the dead
// node held onto a spare node — copying from a surviving replica (mirror
// distributions) or decoding from k surviving shards (erasure
// distributions) — and retargets the file's distribution metadata, so
// layouts handed out after the rebuild point at the spare.  Foreground
// traffic keeps flowing throughout: clients serve reads through their own
// degraded paths (docs/failures.md) until the rebuilt placement reaches
// them via layout refetch.
//
// Everything is observable: `mds.rebuild` counters, `ds.declared_dead` /
// `rebuild.start` / `rebuild.complete` flight-recorder events, and an
// optional copy-rate throttle so rebuild traffic cannot starve the
// foreground.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "pvfs/meta_server.hpp"
#include "rpc/fabric.hpp"
#include "sim/fault.hpp"

namespace dpnfs::core {

struct RebuildConfig {
  /// Liveness-sampling period of the monitor loop.
  sim::Duration check_interval = sim::ms(100);
  /// A daemon continuously down for at least this long is declared
  /// permanently failed (transient crashes that revive sooner are left to
  /// the client recovery ladder).
  sim::Duration dead_threshold = sim::ms(600);
  /// Copy granularity for mirror-replica copies.
  uint64_t chunk_bytes = 1ull << 20;
  /// Rebuild-rate throttle in bytes/sec; 0 disables throttling.  Applied
  /// as a pacing delay after each copied chunk so foreground traffic keeps
  /// its share of the disks and NICs.
  double rate_bytes_per_sec = 0.0;
};

/// Per-manager totals, mirrored into the "mds.rebuild" metric family.
struct RebuildStats {
  uint64_t dses_declared_dead = 0;
  uint64_t rebuilds_started = 0;
  uint64_t rebuilds_completed = 0;
  uint64_t objects_rebuilt = 0;
  uint64_t bytes_rebuilt = 0;
  /// Objects that could not be rebuilt (no spare, too many shards lost).
  uint64_t objects_failed = 0;
};

class RebuildManager {
 public:
  /// `storage` lists every storage daemon (active + spares) in node-index
  /// order; `injector` may be null (the monitor then never fires).
  RebuildManager(rpc::RpcFabric& fabric, sim::Node& node,
                 pvfs::PvfsMetaServer& meta,
                 std::vector<rpc::RpcAddress> storage,
                 const sim::FaultInjector* injector,
                 RebuildConfig config = {});
  ~RebuildManager();
  RebuildManager(const RebuildManager&) = delete;
  RebuildManager& operator=(const RebuildManager&) = delete;

  /// Spawns the monitor loop (must run while the simulation is live).
  /// Call `stop()` before expecting `Simulation::run()` to drain.
  void start();
  void stop() { stop_ = true; }

  const RebuildStats& stats() const noexcept { return stats_; }
  const RebuildConfig& config() const noexcept { return config_; }

  /// Storage indexes declared permanently failed so far.
  const std::vector<uint32_t>& dead_nodes() const noexcept { return dead_; }

 private:
  sim::Task<void> monitor_loop();
  /// Declares `index` dead and rebuilds everything it held.
  sim::Task<void> rebuild_node(uint32_t index);
  /// Rebuilds one file's dfile at position `pos` onto `spare`.  Returns
  /// false when the source data is unrecoverable.
  sim::Task<bool> rebuild_dfile(pvfs::FileMeta& meta, uint32_t pos,
                                uint32_t spare);

  /// One storage-daemon RPC; throws PvfsError on transport or status
  /// failure.
  sim::Task<rpc::RpcClient::Reply> io_call(uint32_t server_index,
                                           pvfs::IoProc proc,
                                           rpc::XdrEncoder args);
  sim::Task<rpc::Payload> read_object(uint32_t server, uint64_t oid,
                                      uint64_t offset, uint64_t length);
  sim::Task<void> write_object(uint32_t server, uint64_t oid, uint64_t offset,
                               rpc::Payload data);
  /// Throttle pacing after copying `bytes`.
  sim::Task<void> pace(uint64_t bytes);

  bool daemon_down(uint32_t index, sim::Time now) const;

  rpc::RpcFabric& fabric_;
  sim::Node& node_;
  pvfs::PvfsMetaServer& meta_;
  std::vector<rpc::RpcAddress> storage_;
  const sim::FaultInjector* injector_;
  RebuildConfig config_;
  rpc::RpcClient rpc_;

  bool running_ = false;
  bool stop_ = false;
  RebuildStats stats_;
  std::vector<uint32_t> dead_;
  /// Spares consumed so far; the next rebuild takes active + consumed.
  uint32_t spares_used_ = 0;
  /// Since when each daemon has been continuously down (kNever = up).
  std::vector<sim::Time> down_since_;

  obs::Counter* m_declared_dead_;
  obs::Counter* m_started_;
  obs::Counter* m_completed_;
  obs::Counter* m_objects_;
  obs::Counter* m_bytes_;
  obs::Counter* m_failed_;
};

}  // namespace dpnfs::core
