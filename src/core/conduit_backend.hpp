// The Direct-pNFS prototype's loopback conduit (paper §5, Figure 5).
//
// "At this writing, the user-level PVFS2 storage daemon does not support
//  direct VFS access.  Instead, the Direct-pNFS data servers simulate
//  direct storage access by way of the existing PVFS2 client and the
//  loopback device. ... PVFS2 uses a fixed number of buffers to transfer
//  data between the kernel and the user-level storage daemon, creating an
//  additional bottleneck."
//
// This decorator reproduces that prototype artifact: every data operation
// crosses a bounded buffer pool and pays a kernel/daemon crossing cost plus
// a loopback copy.  It explains why the paper's Direct-pNFS trails PVFS2
// slightly on 8-client single-file reads (Fig 7b).  Disable it
// (`ClusterConfig::direct_ds_conduit = false`) to model a data server with
// true direct VFS access — the architecture's intended end state.
#pragma once

#include "nfs/backend.hpp"
#include "sim/sync.hpp"

namespace dpnfs::core {

struct ConduitParams {
  uint32_t buffers = 8;                       ///< fixed transfer-buffer pool
  sim::Duration cpu_per_request = sim::us(150);
  double loopback_bytes_per_sec = 1.5e9;      ///< same-node copy bandwidth
};

class ConduitBackend final : public nfs::Backend {
 public:
  ConduitBackend(nfs::Backend& inner, sim::Node& node, ConduitParams params)
      : inner_(inner),
        node_(node),
        params_(params),
        pool_(node.simulation(), params.buffers) {}

  nfs::FileHandle root_fh() const override { return inner_.root_fh(); }

  // Metadata operations pass straight through (the conduit only carries
  // data between the kernel and the storage daemon).
  sim::Task<nfs::Status> getattr(nfs::FileHandle fh, nfs::Fattr* out) override {
    return inner_.getattr(fh, out);
  }
  sim::Task<nfs::Status> set_size(nfs::FileHandle fh, uint64_t size) override {
    return inner_.set_size(fh, size);
  }
  sim::Task<nfs::Status> lookup(nfs::FileHandle dir, const std::string& name,
                                nfs::FileHandle* out) override {
    return inner_.lookup(dir, name, out);
  }
  sim::Task<nfs::Status> mkdir(nfs::FileHandle dir, const std::string& name,
                               nfs::FileHandle* out) override {
    return inner_.mkdir(dir, name, out);
  }
  sim::Task<nfs::Status> open(nfs::FileHandle dir, const std::string& name,
                              bool create, nfs::FileHandle* out,
                              nfs::Fattr* attr) override {
    return inner_.open(dir, name, create, out, attr);
  }
  sim::Task<nfs::Status> remove(nfs::FileHandle dir,
                                const std::string& name) override {
    return inner_.remove(dir, name);
  }
  sim::Task<nfs::Status> rename(nfs::FileHandle sd, const std::string& o,
                                nfs::FileHandle dd,
                                const std::string& n) override {
    return inner_.rename(sd, o, dd, n);
  }
  sim::Task<nfs::Status> readdir(nfs::FileHandle dir,
                                 std::vector<nfs::DirEntry>* out) override {
    return inner_.readdir(dir, out);
  }

  sim::Task<nfs::Status> read(nfs::FileHandle fh, uint64_t offset,
                              uint32_t count, rpc::Payload* out, bool* eof,
                              obs::TraceContext trace = {}) override {
    co_await pool_.acquire();
    co_await cross(count);
    const nfs::Status st =
        co_await inner_.read(fh, offset, count, out, eof, trace);
    pool_.release();
    co_return st;
  }

  sim::Task<nfs::Status> write(nfs::FileHandle fh, uint64_t offset,
                               const rpc::Payload& data, nfs::StableHow stable,
                               nfs::StableHow* committed, uint64_t* post_change,
                               obs::TraceContext trace = {}) override {
    co_await pool_.acquire();
    co_await cross(data.size());
    const nfs::Status st = co_await inner_.write(fh, offset, data, stable,
                                                 committed, post_change, trace);
    pool_.release();
    co_return st;
  }

  sim::Task<nfs::Status> commit(nfs::FileHandle fh,
                                obs::TraceContext trace = {}) override {
    co_await pool_.acquire();
    co_await cross(0);
    const nfs::Status st = co_await inner_.commit(fh, trace);
    pool_.release();
    co_return st;
  }

  // A restart of the exporting server kills the wrapped backend's volatile
  // state too — the conduit itself holds none.
  void on_server_restart() override { inner_.on_server_restart(); }

 private:
  /// One kernel<->daemon crossing: fixed CPU plus a loopback copy.
  sim::Task<void> cross(uint64_t bytes) {
    co_await node_.cpu().execute(params_.cpu_per_request);
    if (bytes > 0) {
      co_await node_.simulation().delay(
          sim::duration_for_bytes(bytes, params_.loopback_bytes_per_sec));
    }
  }

  nfs::Backend& inner_;
  sim::Node& node_;
  ConduitParams params_;
  sim::Semaphore pool_;
};

}  // namespace dpnfs::core
