#include "core/pvfs_backend.hpp"

#include <algorithm>

namespace dpnfs::core {

using nfs::Fattr;
using nfs::FileHandle;
using nfs::Status;
using rpc::Payload;
using sim::Task;

namespace {

Status from_pvfs(pvfs::PvfsStatus st) {
  switch (st) {
    case pvfs::PvfsStatus::kOk: return Status::kOk;
    case pvfs::PvfsStatus::kNoEnt: return Status::kNoEnt;
    case pvfs::PvfsStatus::kExist: return Status::kExist;
    case pvfs::PvfsStatus::kNotDir: return Status::kNotDir;
    case pvfs::PvfsStatus::kIsDir: return Status::kIsDir;
    case pvfs::PvfsStatus::kNotEmpty: return Status::kNotEmpty;
    case pvfs::PvfsStatus::kInval: return Status::kInval;
    case pvfs::PvfsStatus::kIo: return Status::kIo;
  }
  return Status::kIo;
}

}  // namespace

// ---------------------------------------------------------------------------
// FhRegistry
// ---------------------------------------------------------------------------

FileHandle FhRegistry::intern_dir(const std::string& path) {
  if (auto it = by_path_.find(path); it != by_path_.end()) {
    return FileHandle{it->second};
  }
  const uint64_t id = next_id_++;
  entries_[id] = Entry{path, true, nullptr};
  by_path_[path] = id;
  return FileHandle{id};
}

FileHandle FhRegistry::intern_file(const std::string& path,
                                   pvfs::PvfsFilePtr file) {
  if (auto it = by_path_.find(path); it != by_path_.end()) {
    Entry& e = entries_.at(it->second);
    if (e.file == nullptr) e.file = std::move(file);
    return FileHandle{it->second};
  }
  const uint64_t id = next_id_++;
  entries_[id] = Entry{path, false, std::move(file)};
  by_path_[path] = id;
  return FileHandle{id};
}

FhRegistry::Entry* FhRegistry::find(FileHandle fh) {
  auto it = entries_.find(fh.id);
  return it == entries_.end() ? nullptr : &it->second;
}

std::optional<FileHandle> FhRegistry::find_path(const std::string& path) const {
  auto it = by_path_.find(path);
  if (it == by_path_.end()) return std::nullopt;
  return FileHandle{it->second};
}

void FhRegistry::erase(const std::string& path) {
  auto it = by_path_.find(path);
  if (it == by_path_.end()) return;
  entries_.erase(it->second);
  by_path_.erase(it);
}

void FhRegistry::rename(const std::string& from, const std::string& to) {
  auto it = by_path_.find(from);
  if (it == by_path_.end()) return;
  const uint64_t id = it->second;
  by_path_.erase(it);
  by_path_[to] = id;
  entries_.at(id).path = to;
}

// ---------------------------------------------------------------------------
// PvfsBackend
// ---------------------------------------------------------------------------

PvfsBackend::PvfsBackend(pvfs::PvfsClient& client,
                         std::shared_ptr<FhRegistry> registry,
                         std::optional<StripeView> stripe_view)
    : client_(client),
      registry_(std::move(registry)),
      stripe_view_(stripe_view) {}

FhRegistry::Entry* PvfsBackend::dir_entry(FileHandle fh, Status* st) {
  FhRegistry::Entry* e = registry_->find(fh);
  if (e == nullptr) {
    *st = Status::kStale;
    return nullptr;
  }
  if (!e->is_dir) {
    *st = Status::kNotDir;
    return nullptr;
  }
  return e;
}

FhRegistry::Entry* PvfsBackend::file_entry(FileHandle fh, Status* st) {
  FhRegistry::Entry* e = registry_->find(fh);
  if (e == nullptr) {
    *st = Status::kStale;
    return nullptr;
  }
  if (e->is_dir) {
    *st = Status::kIsDir;
    return nullptr;
  }
  if (e->file == nullptr) {
    *st = Status::kStale;
    return nullptr;
  }
  return e;
}

Task<Status> PvfsBackend::getattr(FileHandle fh, Fattr* out) {
  Status st = Status::kOk;
  FhRegistry::Entry* e = registry_->find(fh);
  if (e == nullptr) co_return Status::kStale;
  if (e->is_dir) {
    *out = Fattr{nfs::FileType::kDirectory, fh.id, 0, 0, 0};
    co_return Status::kOk;
  }
  if (e->file == nullptr) co_return Status::kStale;
  // The "ripple effect": an NFS GETATTR becomes a PVFS size gather across
  // the storage nodes.
  const uint64_t size = co_await client_.fetch_size(e->file);
  *out = Fattr{nfs::FileType::kRegular, e->file->meta.handle, size, e->change, 0};
  (void)st;
  co_return Status::kOk;
}

Task<Status> PvfsBackend::set_size(FileHandle fh, uint64_t size) {
  Status st = Status::kOk;
  FhRegistry::Entry* e = file_entry(fh, &st);
  if (e == nullptr) co_return st;
  try {
    co_await client_.truncate(e->file, size);
  } catch (const pvfs::PvfsError& err) {
    co_return from_pvfs(err.status());
  }
  ++e->change;
  co_return Status::kOk;
}

Task<Status> PvfsBackend::lookup(FileHandle dir, const std::string& name,
                                 FileHandle* out) {
  Status st = Status::kOk;
  FhRegistry::Entry* d = dir_entry(dir, &st);
  if (d == nullptr) co_return st;
  const std::string path = join(d->path, name);
  if (auto fh = registry_->find_path(path)) {
    *out = *fh;
    co_return Status::kOk;
  }
  try {
    auto file = co_await client_.open(path);
    *out = registry_->intern_file(path, std::move(file));
    co_return Status::kOk;
  } catch (const pvfs::PvfsError& err) {
    if (err.status() == pvfs::PvfsStatus::kIsDir) {
      *out = registry_->intern_dir(path);
      co_return Status::kOk;
    }
    co_return from_pvfs(err.status());
  }
}

Task<Status> PvfsBackend::mkdir(FileHandle dir, const std::string& name,
                                FileHandle* out) {
  Status st = Status::kOk;
  FhRegistry::Entry* d = dir_entry(dir, &st);
  if (d == nullptr) co_return st;
  const std::string path = join(d->path, name);
  try {
    co_await client_.mkdir(path);
  } catch (const pvfs::PvfsError& err) {
    co_return from_pvfs(err.status());
  }
  *out = registry_->intern_dir(path);
  co_return Status::kOk;
}

Task<Status> PvfsBackend::open(FileHandle dir, const std::string& name,
                               bool create, FileHandle* out, Fattr* attr) {
  Status st = Status::kOk;
  FhRegistry::Entry* d = dir_entry(dir, &st);
  if (d == nullptr) co_return st;
  const std::string path = join(d->path, name);

  pvfs::PvfsFilePtr file;
  // Fast path: a data server or the MDS already interned this file.
  if (auto fh = registry_->find_path(path)) {
    FhRegistry::Entry* e = registry_->find(*fh);
    if (e->is_dir) co_return Status::kIsDir;
    file = e->file;
  }
  if (file == nullptr) {
    bool must_create = false;
    try {
      file = co_await client_.open(path);
    } catch (const pvfs::PvfsError& err) {
      if (err.status() != pvfs::PvfsStatus::kNoEnt || !create) {
        co_return from_pvfs(err.status());
      }
      must_create = true;  // co_await is not permitted inside a handler
    }
    if (must_create) {
      try {
        file = co_await client_.create(path);
      } catch (const pvfs::PvfsError& err2) {
        co_return from_pvfs(err2.status());
      }
    }
  }
  *out = registry_->intern_file(path, file);
  // Attribute gathering on open: the authoritative size lives on the
  // storage nodes (stale for files written through co-located pNFS data
  // servers, which bypass this PVFS client).
  co_await client_.fetch_size(file);
  FhRegistry::Entry* e = registry_->find(*out);
  *attr = Fattr{nfs::FileType::kRegular, file->meta.handle, file->size,
                e != nullptr ? e->change : 0, 0};
  co_return Status::kOk;
}

Task<Status> PvfsBackend::remove(FileHandle dir, const std::string& name) {
  Status st = Status::kOk;
  FhRegistry::Entry* d = dir_entry(dir, &st);
  if (d == nullptr) co_return st;
  const std::string path = join(d->path, name);
  try {
    co_await client_.remove(path);
  } catch (const pvfs::PvfsError& err) {
    co_return from_pvfs(err.status());
  }
  registry_->erase(path);
  co_return Status::kOk;
}

Task<Status> PvfsBackend::rename(FileHandle src_dir, const std::string& old_name,
                                 FileHandle dst_dir,
                                 const std::string& new_name) {
  Status st = Status::kOk;
  FhRegistry::Entry* s = dir_entry(src_dir, &st);
  if (s == nullptr) co_return st;
  FhRegistry::Entry* t = dir_entry(dst_dir, &st);
  if (t == nullptr) co_return st;
  const std::string from = join(s->path, old_name);
  const std::string to = join(t->path, new_name);
  try {
    co_await client_.rename(from, to);
  } catch (const pvfs::PvfsError& err) {
    co_return from_pvfs(err.status());
  }
  registry_->rename(from, to);
  co_return Status::kOk;
}

Task<Status> PvfsBackend::readdir(FileHandle dir,
                                  std::vector<nfs::DirEntry>* out) {
  Status st = Status::kOk;
  FhRegistry::Entry* d = dir_entry(dir, &st);
  if (d == nullptr) co_return st;
  try {
    const auto entries = co_await client_.readdir(d->path);
    out->clear();
    for (const auto& [name, is_dir] : entries) {
      out->push_back(nfs::DirEntry{
          name, 0, is_dir ? nfs::FileType::kDirectory : nfs::FileType::kRegular});
    }
  } catch (const pvfs::PvfsError& err) {
    co_return from_pvfs(err.status());
  }
  co_return Status::kOk;
}

uint64_t PvfsBackend::to_file_offset(uint64_t dev_offset) const {
  const uint64_t su = stripe_view_->stripe_unit;
  const uint64_t n = stripe_view_->device_count;
  const uint64_t i = stripe_view_->device_index;
  return ((dev_offset / su) * n + i) * su + dev_offset % su;
}

Task<Status> PvfsBackend::read(FileHandle fh, uint64_t offset, uint32_t count,
                               Payload* out, bool* eof,
                               obs::TraceContext trace) {
  Status st = Status::kOk;
  FhRegistry::Entry* e = file_entry(fh, &st);
  if (e == nullptr) co_return st;
  try {
    if (!stripe_view_) {
      *out = co_await client_.read(e->file, offset, count, trace);
      *eof = (offset + out->size() >= e->file->size);
      co_return Status::kOk;
    }
    // Dense device offsets -> scattered logical reads against the PFS.
    const uint64_t su = stripe_view_->stripe_unit;
    Payload assembled;
    uint64_t pos = offset;
    const uint64_t end = offset + count;
    while (pos < end) {
      const uint64_t in_stripe = pos % su;
      const uint64_t take = std::min(su - in_stripe, end - pos);
      Payload piece =
          co_await client_.read(e->file, to_file_offset(pos), take, trace);
      const bool short_read = piece.size() < take;
      if (short_read && pos + take < end) {
        // Interior hole in the dense view: pad to keep offsets aligned.
        const uint64_t missing = take - piece.size();
        piece.append(piece.is_inline() || piece.size() == 0
                         ? Payload::inline_bytes(
                               std::vector<std::byte>(missing, std::byte{0}))
                         : Payload::virtual_bytes(missing));
      }
      assembled.append(piece);
      if (short_read && pos + take >= end) break;
      pos += take;
    }
    *out = std::move(assembled);
    *eof = (out->size() < count);
    co_return Status::kOk;
  } catch (const pvfs::PvfsError& err) {
    co_return from_pvfs(err.status());
  }
}

Task<Status> PvfsBackend::write(FileHandle fh, uint64_t offset,
                                const Payload& data, nfs::StableHow stable,
                                nfs::StableHow* committed,
                                uint64_t* post_change,
                                obs::TraceContext trace) {
  Status st = Status::kOk;
  FhRegistry::Entry* e = file_entry(fh, &st);
  if (e == nullptr) co_return st;
  try {
    if (!stripe_view_) {
      co_await client_.write(e->file, offset, data, trace);
    } else {
      // Dense device offsets -> scattered logical writes; the PVFS client's
      // buffer pool provides what parallelism there is.
      const uint64_t su = stripe_view_->stripe_unit;
      uint64_t pos = offset;
      const uint64_t end = offset + data.size();
      while (pos < end) {
        const uint64_t in_stripe = pos % su;
        const uint64_t take = std::min(su - in_stripe, end - pos);
        co_await client_.write(e->file, to_file_offset(pos),
                               data.slice(pos - offset, take), trace);
        pos += take;
      }
    }
    if (stable != nfs::StableHow::kUnstable) {
      co_await client_.fsync(e->file, trace);
    }
    ++e->change;
    *post_change = e->change;
    *committed = stable;
    co_return Status::kOk;
  } catch (const pvfs::PvfsError& err) {
    co_return from_pvfs(err.status());
  }
}

Task<Status> PvfsBackend::commit(FileHandle fh, obs::TraceContext trace) {
  Status st = Status::kOk;
  FhRegistry::Entry* e = file_entry(fh, &st);
  if (e == nullptr) co_return st;
  try {
    co_await client_.fsync(e->file, trace);
  } catch (const pvfs::PvfsError& err) {
    co_return from_pvfs(err.status());
  }
  co_return Status::kOk;
}

bool PvfsBackend::describe(FileHandle fh, PfsLayoutDescription* out) {
  FhRegistry::Entry* e = registry_->find(fh);
  if (e == nullptr || e->is_dir || e->file == nullptr) return false;
  // The PFS distribution kind becomes the layout's aggregation scheme: the
  // client-side aggregation driver then reproduces the exact placement the
  // PVFS distribution uses (Direct-pNFS identity: DS object == PFS object).
  const pvfs::FileMeta& meta = e->file->meta;
  out->params.clear();
  switch (meta.kind) {
    case pvfs::DistKind::kMirror:
      out->aggregation = nfs::AggregationType::kReplicated;
      break;
    case pvfs::DistKind::kErasure:
      out->aggregation = nfs::AggregationType::kErasureCoded;
      out->params = {meta.ec_k, meta.ec_m};
      break;
    case pvfs::DistKind::kStripe:
      out->aggregation = nfs::AggregationType::kRoundRobin;
      break;
  }
  out->stripe_unit = meta.stripe_unit;
  out->placements.clear();
  for (const auto& dfile : meta.dfiles) {
    out->placements.push_back(
        PfsLayoutDescription::Placement{dfile.server_index, dfile.object_id});
  }
  return true;
}

Task<uint64_t> PvfsBackend::on_layout_commit(FileHandle fh, uint64_t new_size) {
  FhRegistry::Entry* e = registry_->find(fh);
  if (e == nullptr || e->file == nullptr) co_return 0;
  e->file->size = std::max(e->file->size, new_size);
  // Data-server writes bypassed this backend; the LAYOUTCOMMIT is how the
  // MDS learns the file changed.
  ++e->change;
  co_return e->change;
}

}  // namespace dpnfs::core
