// The Direct-pNFS layout translator (the paper's §4.2) and the synthetic
// layout source of the 2-/3-tier file-layout deployments.
//
// The translator converts a parallel file system's native layout into a
// pNFS file-based layout without interpreting file-system-specific layout
// information: the PFS describes its layout in a generic form
// (`PfsLayoutDescription`), the translator emits the protocol object
// (`nfs::FileLayout`).  The result gives clients *exact* knowledge of data
// placement, so every READ/WRITE goes to the storage node that physically
// holds the stripe.
//
// `SyntheticLayoutSource` is the foil: it stripes requests round-robin
// across the data-server list with no knowledge of actual placement —
// faithfully reproducing the conventional pNFS file-layout deployments the
// paper measures against (§3.4.1).
#pragma once

#include <functional>
#include <vector>

#include "nfs/backend.hpp"
#include "nfs/layout.hpp"

namespace dpnfs::core {

/// Generic description of how a parallel FS lays out one file.  Produced by
/// the PFS-facing side (e.g. PvfsBackend), consumed by the translator.
struct PfsLayoutDescription {
  nfs::AggregationType aggregation = nfs::AggregationType::kRoundRobin;
  uint64_t stripe_unit = 0;
  /// Per stripe position: which storage node and which object on it.
  struct Placement {
    uint32_t storage_index = 0;
    uint64_t object_id = 0;
  };
  std::vector<Placement> placements;
  std::vector<uint64_t> params;  ///< aggregation-driver parameters
};

/// Supplies the translator with PFS layout descriptions, keyed by the
/// metadata server's filehandles.
class PfsLayoutProvider {
 public:
  virtual ~PfsLayoutProvider() = default;

  /// False when `fh` is unknown or not a regular file.
  virtual bool describe(nfs::FileHandle fh, PfsLayoutDescription* out) = 0;

  /// Called on LAYOUTCOMMIT with a client-reported size change.  Returns
  /// the file's new change attribute (0 when untracked).
  virtual sim::Task<uint64_t> on_layout_commit(nfs::FileHandle fh,
                                               uint64_t new_size) = 0;
};

/// Direct-pNFS layout translator: PFS layout -> pNFS file-based layout.
class LayoutTranslator final : public nfs::LayoutSource {
 public:
  /// `devices[i]` is the NFSv4.1 data server co-located with PFS storage
  /// node i.
  LayoutTranslator(PfsLayoutProvider& provider,
                   std::vector<nfs::DeviceEntry> devices);

  sim::Task<nfs::Status> get_device_list(
      std::vector<nfs::DeviceEntry>* out) override;
  sim::Task<nfs::Status> layout_get(nfs::FileHandle fh,
                                    nfs::LayoutIoMode iomode,
                                    nfs::FileLayout* out) override;
  sim::Task<nfs::Status> layout_commit(nfs::FileHandle fh, uint64_t new_size,
                                       bool size_changed,
                                       uint64_t* post_change) override;
  sim::Task<nfs::Status> layout_return(nfs::FileHandle fh) override;

  uint64_t layouts_granted() const noexcept { return layouts_granted_; }

  /// Wires "nfs.layout" counters on `node` (the MDS hosting the translator).
  void attach_metrics(obs::MetricsRegistry& registry, const std::string& node);

 private:
  PfsLayoutProvider& provider_;
  std::vector<nfs::DeviceEntry> devices_;
  uint64_t layouts_granted_ = 0;
  obs::Counter* m_layouts_granted_ = &obs::MetricsRegistry::null_counter();
  obs::Counter* m_layout_commits_ = &obs::MetricsRegistry::null_counter();
  obs::Counter* m_layout_returns_ = &obs::MetricsRegistry::null_counter();
};

/// Layout source for conventional file-layout pNFS (2-/3-tier): stripes
/// round-robin over the data servers, oblivious to data placement.  Every
/// data server shares the MDS's filehandle for the file (they proxy to the
/// exported PFS), so `fhs[i] == fh` for all i.
class SyntheticLayoutSource final : public nfs::LayoutSource {
 public:
  SyntheticLayoutSource(std::vector<nfs::DeviceEntry> devices,
                        uint64_t stripe_unit);

  sim::Task<nfs::Status> get_device_list(
      std::vector<nfs::DeviceEntry>* out) override;
  sim::Task<nfs::Status> layout_get(nfs::FileHandle fh,
                                    nfs::LayoutIoMode iomode,
                                    nfs::FileLayout* out) override;
  sim::Task<nfs::Status> layout_commit(nfs::FileHandle fh, uint64_t new_size,
                                       bool size_changed,
                                       uint64_t* post_change) override;
  sim::Task<nfs::Status> layout_return(nfs::FileHandle fh) override;

  /// Wires "nfs.layout" counters on `node` (the MDS hosting this source).
  void attach_metrics(obs::MetricsRegistry& registry, const std::string& node);

 private:
  std::vector<nfs::DeviceEntry> devices_;
  uint64_t stripe_unit_;
  obs::Counter* m_layouts_granted_ = &obs::MetricsRegistry::null_counter();
};

}  // namespace dpnfs::core
