// Optional aggregation drivers (paper §4.3).
//
// The NFSv4.1 protocol understands round-robin and cyclic striping; these
// pluggable drivers extend a stock client to unconventional schemes at a
// fraction of a layout driver's cost:
//
//   * VariableStripeDriver — per-region stripe sizes (Exedra-style media
//     layouts): params = [k, su_1, count_1, su_2, count_2, ...] where each
//     (su_i, count_i) pair describes a run of count_i stripes of su_i bytes
//     striped round-robin; the final pair repeats indefinitely.
//   * ReplicatedDriver — every device holds a full copy (RAID-1): writes go
//     everywhere, reads pick a replica by stripe index so concurrent
//     readers spread load.
//   * NestedDriver — hierarchical striping (RAID-0 of mirror groups or of
//     sub-stripes): params = [group_size]; devices are grouped; stripes go
//     round-robin across groups, then round-robin within the group.
#pragma once

#include "nfs/layout.hpp"

namespace dpnfs::core {

class VariableStripeDriver final : public nfs::AggregationDriver {
 public:
  nfs::AggregationType type() const noexcept override {
    return nfs::AggregationType::kVariableStripe;
  }
  std::vector<nfs::StripeSegment> map_read(const nfs::FileLayout& layout,
                                           uint64_t offset,
                                           uint64_t length) const override;
};

class ReplicatedDriver final : public nfs::AggregationDriver {
 public:
  nfs::AggregationType type() const noexcept override {
    return nfs::AggregationType::kReplicated;
  }
  std::vector<nfs::StripeSegment> map_read(const nfs::FileLayout& layout,
                                           uint64_t offset,
                                           uint64_t length) const override;
  std::vector<nfs::StripeSegment> map_write(const nfs::FileLayout& layout,
                                            uint64_t offset,
                                            uint64_t length) const override;
};

class NestedDriver final : public nfs::AggregationDriver {
 public:
  nfs::AggregationType type() const noexcept override {
    return nfs::AggregationType::kNested;
  }
  std::vector<nfs::StripeSegment> map_read(const nfs::FileLayout& layout,
                                           uint64_t offset,
                                           uint64_t length) const override;
};

/// Registry with the standard schemes plus all Direct-pNFS extras.
nfs::AggregationRegistry full_aggregation_registry();

}  // namespace dpnfs::core
