// Optional aggregation drivers (paper §4.3).
//
// The NFSv4.1 protocol understands round-robin and cyclic striping; these
// pluggable drivers extend a stock client to unconventional schemes at a
// fraction of a layout driver's cost:
//
//   * VariableStripeDriver — per-region stripe sizes (Exedra-style media
//     layouts): params = [k, su_1, count_1, su_2, count_2, ...] where each
//     (su_i, count_i) pair describes a run of count_i stripes of su_i bytes
//     striped round-robin; the final pair repeats indefinitely.
//   * ReplicatedDriver — every device holds a full copy (RAID-1): writes go
//     everywhere, reads pick a replica by stripe index so concurrent
//     readers spread load.
//   * NestedDriver — hierarchical striping (RAID-1+0): params = [group_size];
//     devices are grouped into mirror groups; stripes go round-robin across
//     groups, every member of a group holds the same copy of its stripes.
//     Reads rotate across group members; writes go to every member.
//   * ErasureCodedDriver — systematic Reed-Solomon k+m: params = [k, m];
//     the first k devices carry data striped round-robin, the last m carry
//     one parity block per k-stripe group.  map_write emits the data
//     segments plus parity segments (StripeSegment::parity) whose payloads
//     the writer computes with util::ReedSolomon; reads touch only data
//     devices and any <= m lost devices are reconstructable.
#pragma once

#include "nfs/layout.hpp"

namespace dpnfs::core {

class VariableStripeDriver final : public nfs::AggregationDriver {
 public:
  nfs::AggregationType type() const noexcept override {
    return nfs::AggregationType::kVariableStripe;
  }
  std::vector<nfs::StripeSegment> map_read(const nfs::FileLayout& layout,
                                           uint64_t offset,
                                           uint64_t length) const override;
};

class ReplicatedDriver final : public nfs::AggregationDriver {
 public:
  nfs::AggregationType type() const noexcept override {
    return nfs::AggregationType::kReplicated;
  }
  std::vector<nfs::StripeSegment> map_read(const nfs::FileLayout& layout,
                                           uint64_t offset,
                                           uint64_t length) const override;
  std::vector<nfs::StripeSegment> map_write(const nfs::FileLayout& layout,
                                            uint64_t offset,
                                            uint64_t length) const override;
};

class NestedDriver final : public nfs::AggregationDriver {
 public:
  nfs::AggregationType type() const noexcept override {
    return nfs::AggregationType::kNested;
  }
  std::vector<nfs::StripeSegment> map_read(const nfs::FileLayout& layout,
                                           uint64_t offset,
                                           uint64_t length) const override;
  std::vector<nfs::StripeSegment> map_write(const nfs::FileLayout& layout,
                                            uint64_t offset,
                                            uint64_t length) const override;
};

class ErasureCodedDriver final : public nfs::AggregationDriver {
 public:
  nfs::AggregationType type() const noexcept override {
    return nfs::AggregationType::kErasureCoded;
  }
  std::vector<nfs::StripeSegment> map_read(const nfs::FileLayout& layout,
                                           uint64_t offset,
                                           uint64_t length) const override;
  std::vector<nfs::StripeSegment> map_write(const nfs::FileLayout& layout,
                                            uint64_t offset,
                                            uint64_t length) const override;
};

/// Registry with the standard schemes plus all Direct-pNFS extras.
nfs::AggregationRegistry full_aggregation_registry();

}  // namespace dpnfs::core
