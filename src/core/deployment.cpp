#include "core/deployment.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "sim/frame_pool.hpp"
#include "util/bytes.hpp"
#include "util/format.hpp"
#include "util/pool.hpp"
#include "util/rng.hpp"

namespace dpnfs::core {

using sim::Task;

const char* architecture_name(Architecture a) {
  switch (a) {
    case Architecture::kDirectPnfs: return "Direct-pNFS";
    case Architecture::kNativePvfs: return "PVFS2";
    case Architecture::kPnfs2Tier: return "pNFS-2tier";
    case Architecture::kPnfs3Tier: return "pNFS-3tier";
    case Architecture::kPlainNfs: return "NFSv4";
  }
  return "?";
}

namespace {

// Legacy-core mode also reverts the network transfer shortcuts, so the
// whole pre-overhaul hot path is measurable as one switch.
ClusterConfig normalize_core_mode(ClusterConfig c) {
  if (c.legacy_core) c.network.fast_path = false;
  return c;
}

}  // namespace

Deployment::Deployment(ClusterConfig config)
    : config_(normalize_core_mode(std::move(config))),
      sim_(config_.legacy_core ? sim::QueueKind::kBinaryHeap
                               : sim::QueueKind::kCalendar),
      net_(sim_, config_.network),
      tenants_ledger_(config_.tenant_topk),
      flight_(config_.flight_capacity),
      fabric_(net_) {
  // Before any server/client is constructed: they resolve their metric
  // handles from the fabric at construction time.
  tracer_.set_span_capacity(config_.trace_span_capacity);
  tracer_.set_sample_rate(config_.trace_sample_rate);
  tracer_.set_sample_seed(
      util::Rng(config_.trace_sample_seed).next());  // decorrelate from ids
  tracer_.set_slo_threshold(config_.trace_slo_threshold);
  tracer_.set_staging_capacity(config_.trace_span_capacity);
  fabric_.set_observability(&metrics_, &tracer_);
  tenants_ledger_.set_slo_threshold(config_.trace_slo_threshold);
  fabric_.set_accounting(&tenants_ledger_, &flight_);
  // Allocation pools follow the core mode (thread-local switches; the next
  // Deployment built on this thread re-asserts its own mode).
  sim::FramePool::set_enabled(!config_.legacy_core);
  util::BufferPool::set_enabled(!config_.legacy_core);
  // WARN+ log lines ride the flight ring, so a dump carries the log tail
  // without an always-on log file.  The previous sink is restored at
  // destruction (deployments nest in tests).
  prev_log_sink_ = util::set_log_sink(
      [this](util::LogLevel level, std::string_view component,
             int64_t sim_time_ns, std::string_view message) {
        flight_.record(sim_time_ns, "-", component,
                       level >= util::LogLevel::kError ? "log.error"
                                                       : "log.warn",
                       std::string(message));
      });
  // Likewise the fault injector: nodes pick up their injector pointer as
  // they are added to the network.
  if (!config_.faults.empty()) {
    fault_injector_ = std::make_unique<sim::FaultInjector>(config_.faults);
    net_.set_fault_injector(fault_injector_.get());
  }
  config_.pvfs_meta.stripe_unit = config_.stripe_unit;
  config_.pvfs_meta.distribution = config_.distribution;
  config_.pvfs_meta.replicas = config_.replicas;
  config_.pvfs_meta.ec_k = config_.ec_k;
  config_.pvfs_meta.ec_m = config_.ec_m;
  config_.pvfs_meta.spare_nodes = config_.spare_nodes;
  config_.nfs_client.listio_enabled = config_.listio_enabled;
  config_.nfs_client.listio_max_regions = config_.listio_max_regions;
  config_.pvfs_client.listio_enabled = config_.listio_enabled;
  config_.pvfs_client.listio_max_regions = config_.listio_max_regions;
  registry_ = std::make_shared<FhRegistry>();
  aggregations_ = std::make_shared<const nfs::AggregationRegistry>(
      full_aggregation_registry());

  switch (config_.architecture) {
    case Architecture::kDirectPnfs: build_direct_pnfs(); break;
    case Architecture::kNativePvfs: build_native_pvfs(); break;
    case Architecture::kPnfs2Tier: build_pnfs_2tier(); break;
    case Architecture::kPnfs3Tier: build_pnfs_3tier(); break;
    case Architecture::kPlainNfs: build_plain_nfs(); break;
  }
}

Deployment::~Deployment() {
  util::set_log_sink(std::move(prev_log_sink_));
  for (auto& server : nfs_servers_) server->stop();
  for (auto& server : pvfs_storage_) server->stop();
  if (pvfs_meta_) pvfs_meta_->stop();
}

// ---------------------------------------------------------------------------
// Shared building blocks
// ---------------------------------------------------------------------------

void Deployment::build_backend_cluster(uint32_t storage_count,
                                       double disk_scale) {
  sim::DiskParams disk = config_.disk;
  disk.bytes_per_sec *= disk_scale;
  for (uint32_t i = 0; i < storage_count; ++i) {
    auto& node = net_.add_node(sim::NodeParams{
        .name = "storage" + std::to_string(i),
        .nic = config_.nic,
        .disk = disk,
        .cpu = config_.server_cpu});
    storage_nodes_.push_back(&node);
    stores_.push_back(std::make_unique<lfs::ObjectStore>(node, config_.store));
    pvfs_storage_.push_back(std::make_unique<pvfs::PvfsStorageServer>(
        fabric_, node, rpc::kPvfsIoPort, *stores_.back(),
        config_.pvfs_storage));
    pvfs_storage_.back()->start();
  }
  // Metadata manager doubles on storage node 0 (paper §6.1).
  pvfs_meta_ = std::make_unique<pvfs::PvfsMetaServer>(
      fabric_, *storage_nodes_[0], rpc::kPvfsMetaPort, storage_count,
      config_.pvfs_meta);
  pvfs_meta_->start();
  // Rebuild service co-located with the metadata manager.  It monitors the
  // injector's liveness view, so fault-free runs never construct one.
  if (config_.rebuild_enabled && fault_injector_ != nullptr) {
    rebuild_ = std::make_unique<RebuildManager>(
        fabric_, *storage_nodes_[0], *pvfs_meta_, storage_addresses(),
        fault_injector_.get(), config_.rebuild);
  }
}

sim::Node& Deployment::add_client_node(const std::string& name) {
  auto& node = net_.add_node(sim::NodeParams{.name = name,
                                             .nic = config_.nic,
                                             .disk = std::nullopt,
                                             .cpu = config_.client_cpu});
  client_nodes_.push_back(&node);
  return node;
}

std::vector<rpc::RpcAddress> Deployment::storage_addresses() const {
  std::vector<rpc::RpcAddress> out;
  out.reserve(pvfs_storage_.size());
  for (const auto& s : pvfs_storage_) out.push_back(s->address());
  return out;
}

std::unique_ptr<pvfs::PvfsClient> Deployment::make_pvfs_client(
    sim::Node& node, const std::string& who, bool proxy, uint32_t tenant) {
  // Server-side proxies (NFS servers re-exporting the PFS) pay the extra
  // same-box copy cost.
  pvfs::PvfsClientConfig cfg = config_.pvfs_client;
  if (proxy) cfg.cpu_ns_per_byte += config_.proxy_extra_cpu_ns_per_byte;
  cfg.tenant_id = tenant;
  return std::make_unique<pvfs::PvfsClient>(fabric_, node,
                                            pvfs_meta_->address(),
                                            storage_addresses(), who, cfg);
}

void Deployment::add_nfs_clients(rpc::RpcAddress mds, bool pnfs_enabled) {
  nfs::ClientConfig ccfg = config_.nfs_client;
  ccfg.pnfs_enabled = pnfs_enabled;
  for (uint32_t i = 0; i < config_.clients; ++i) {
    auto& node = add_client_node("client" + std::to_string(i));
    ccfg.tenant_id =
        config_.tenants != 0 ? 1 + (i % config_.tenants) : 0;
    auto nfs_client = std::make_unique<nfs::NfsClient>(
        fabric_, node, mds, "client" + std::to_string(i) + "@SIM", ccfg,
        aggregations_);
    health_clients_.emplace_back(node.name(), nfs_client.get());
    fs_clients_.push_back(
        std::make_unique<NfsFileSystemClient>(std::move(nfs_client)));
  }
}

// ---------------------------------------------------------------------------
// Architectures
// ---------------------------------------------------------------------------

nfs::ServerConfig Deployment::mds_server_config() const {
  nfs::ServerConfig scfg = config_.nfs_server;
  scfg.grace_period = config_.mds_grace_period;
  return scfg;
}

void Deployment::build_direct_pnfs() {
  build_backend_cluster(config_.storage_nodes, 1.0);

  // NFSv4.1 data server on every storage node, exporting the local stripe
  // objects directly (filehandle == stripe-object id, per the translator).
  std::vector<nfs::DeviceEntry> devices;
  for (uint32_t i = 0; i < config_.storage_nodes; ++i) {
    auto local =
        std::make_unique<nfs::LocalBackend>(*stores_[i], /*flat=*/true);
    local->attach_tracer(&tracer_, storage_nodes_[i]->name());
    local->attach_tenants(&tenants_ledger_);
    nfs::Backend* exported = local.get();
    std::unique_ptr<ConduitBackend> conduit;
    if (config_.direct_ds_conduit) {
      // Figure 5 fidelity: the prototype data server reaches its stripe
      // objects through the local PVFS2 client/daemon buffer pool.
      conduit = std::make_unique<ConduitBackend>(*local, *storage_nodes_[i],
                                                 config_.conduit);
      exported = conduit.get();
    }
    nfs::ServerConfig scfg = config_.nfs_server;
    scfg.is_data_server = true;
    nfs_servers_.push_back(std::make_unique<nfs::NfsServer>(
        fabric_, *storage_nodes_[i], rpc::kNfsPort, *exported, nullptr, scfg));
    nfs_servers_.back()->start();
    backends_.push_back(std::move(local));
    if (conduit) backends_.push_back(std::move(conduit));
    devices.push_back(nfs::DeviceEntry{nfs::DeviceId{i},
                                       storage_nodes_[i]->id(), rpc::kNfsPort});
  }

  // MDS co-located with the PVFS metadata manager on storage node 0.  Its
  // PVFS client's meta/storage traffic to node 0 rides the loopback, and —
  // per Figure 5 — it links the PFS library directly, skipping the kernel
  // module's metadata upcall path.
  {
    pvfs::PvfsClientConfig mds_cfg = config_.pvfs_client;
    mds_cfg.vfs_meta_latency = 0;
    server_pvfs_clients_.push_back(std::make_unique<pvfs::PvfsClient>(
        fabric_, *storage_nodes_[0], pvfs_meta_->address(),
        storage_addresses(), "mds@SIM", mds_cfg));
  }
  auto mds_backend = std::make_unique<PvfsBackend>(*server_pvfs_clients_.back(),
                                                   registry_);
  translator_ = std::make_unique<LayoutTranslator>(*mds_backend, devices);
  translator_->attach_metrics(metrics_, storage_nodes_[0]->name());
  nfs_servers_.push_back(std::make_unique<nfs::NfsServer>(
      fabric_, *storage_nodes_[0], kMdsPort, *mds_backend, translator_.get(),
      mds_server_config()));
  nfs_servers_.back()->start();
  const rpc::RpcAddress mds = nfs_servers_.back()->address();
  backends_.push_back(std::move(mds_backend));

  add_nfs_clients(mds, /*pnfs_enabled=*/true);
}

void Deployment::build_native_pvfs() {
  build_backend_cluster(config_.storage_nodes, 1.0);
  for (uint32_t i = 0; i < config_.clients; ++i) {
    auto& node = add_client_node("client" + std::to_string(i));
    const uint32_t tenant =
        config_.tenants != 0 ? 1 + (i % config_.tenants) : 0;
    fs_clients_.push_back(std::make_unique<PvfsFileSystemClient>(
        make_pvfs_client(node, "client" + std::to_string(i) + "@SIM", false,
                         tenant)));
  }
}

void Deployment::build_pnfs_2tier() {
  build_backend_cluster(config_.storage_nodes, 1.0);

  // Data servers co-located with the storage nodes, but each exports the
  // *whole* file system through a PVFS client; the synthetic layout has no
  // placement knowledge, so ~(N-1)/N of each DS's traffic is remote.
  std::vector<nfs::DeviceEntry> devices;
  for (uint32_t i = 0; i < config_.storage_nodes; ++i) {
    server_pvfs_clients_.push_back(make_pvfs_client(
        *storage_nodes_[i], "ds" + std::to_string(i) + "@SIM", true));
    auto backend = std::make_unique<PvfsBackend>(
        *server_pvfs_clients_.back(), registry_,
        StripeView{config_.stripe_unit, config_.storage_nodes, i});
    // These data servers reach PVFS through the kernel client, so every
    // data op crosses the kernel<->daemon boundary serialized by the
    // module's upcall queue, pinned across a (mostly remote) PVFS round
    // trip.  This intermediate-file-system traversal is exactly the
    // overhead the paper says Direct-pNFS eliminates (§5, Figure 5).
    auto conduit = std::make_unique<ConduitBackend>(
        *backend, *storage_nodes_[i], config_.vfs_conduit);
    nfs::ServerConfig scfg = config_.nfs_server;
    scfg.is_data_server = true;
    nfs_servers_.push_back(std::make_unique<nfs::NfsServer>(
        fabric_, *storage_nodes_[i], rpc::kNfsPort, *conduit, nullptr, scfg));
    nfs_servers_.back()->start();
    backends_.push_back(std::move(backend));
    backends_.push_back(std::move(conduit));
    devices.push_back(nfs::DeviceEntry{nfs::DeviceId{i},
                                       storage_nodes_[i]->id(), rpc::kNfsPort});
  }

  server_pvfs_clients_.push_back(
      make_pvfs_client(*storage_nodes_[0], "mds@SIM", true));
  auto mds_backend = std::make_unique<PvfsBackend>(*server_pvfs_clients_.back(),
                                                   registry_);
  synthetic_layouts_ =
      std::make_unique<SyntheticLayoutSource>(devices, config_.stripe_unit);
  synthetic_layouts_->attach_metrics(metrics_, storage_nodes_[0]->name());
  nfs_servers_.push_back(std::make_unique<nfs::NfsServer>(
      fabric_, *storage_nodes_[0], kMdsPort, *mds_backend,
      synthetic_layouts_.get(), mds_server_config()));
  nfs_servers_.back()->start();
  const rpc::RpcAddress mds = nfs_servers_.back()->address();
  backends_.push_back(std::move(mds_backend));

  add_nfs_clients(mds, /*pnfs_enabled=*/true);
}

void Deployment::build_pnfs_3tier() {
  // The six machines split: 3 storage nodes (holding all the disks) and 3
  // dedicated NFS data servers in front of them.
  const uint32_t storage_count = config_.storage_nodes / 2;
  const uint32_t ds_count = config_.three_tier_data_servers;
  build_backend_cluster(storage_count, config_.three_tier_disk_scale);

  std::vector<nfs::DeviceEntry> devices;
  std::vector<sim::Node*> ds_nodes;
  for (uint32_t i = 0; i < ds_count; ++i) {
    auto& node = net_.add_node(sim::NodeParams{.name = "ds" + std::to_string(i),
                                               .nic = config_.nic,
                                               .disk = std::nullopt,
                                               .cpu = config_.server_cpu});
    ds_nodes.push_back(&node);
    server_pvfs_clients_.push_back(
        make_pvfs_client(node, "ds" + std::to_string(i) + "@SIM", true));
    auto backend = std::make_unique<PvfsBackend>(
        *server_pvfs_clients_.back(), registry_,
        StripeView{config_.stripe_unit, ds_count, i});
    // Same serialized kernel-client traversal as the 2-tier data servers.
    auto conduit = std::make_unique<ConduitBackend>(*backend, node,
                                                    config_.vfs_conduit);
    nfs::ServerConfig scfg = config_.nfs_server;
    scfg.is_data_server = true;
    nfs_servers_.push_back(std::make_unique<nfs::NfsServer>(
        fabric_, node, rpc::kNfsPort, *conduit, nullptr, scfg));
    nfs_servers_.back()->start();
    backends_.push_back(std::move(backend));
    backends_.push_back(std::move(conduit));
    devices.push_back(
        nfs::DeviceEntry{nfs::DeviceId{i}, node.id(), rpc::kNfsPort});
  }

  server_pvfs_clients_.push_back(make_pvfs_client(*ds_nodes[0], "mds@SIM", true));
  auto mds_backend = std::make_unique<PvfsBackend>(*server_pvfs_clients_.back(),
                                                   registry_);
  synthetic_layouts_ =
      std::make_unique<SyntheticLayoutSource>(devices, config_.stripe_unit);
  synthetic_layouts_->attach_metrics(metrics_, ds_nodes[0]->name());
  nfs_servers_.push_back(std::make_unique<nfs::NfsServer>(
      fabric_, *ds_nodes[0], kMdsPort, *mds_backend, synthetic_layouts_.get(),
      mds_server_config()));
  nfs_servers_.back()->start();
  const rpc::RpcAddress mds = nfs_servers_.back()->address();
  backends_.push_back(std::move(mds_backend));

  add_nfs_clients(mds, /*pnfs_enabled=*/true);
}

void Deployment::build_plain_nfs() {
  build_backend_cluster(config_.storage_nodes, 1.0);

  auto& server_node = net_.add_node(sim::NodeParams{.name = "nfsd",
                                                    .nic = config_.nic,
                                                    .disk = std::nullopt,
                                                    .cpu = config_.server_cpu});
  server_pvfs_clients_.push_back(make_pvfs_client(server_node, "nfsd@SIM", true));
  auto backend = std::make_unique<PvfsBackend>(*server_pvfs_clients_.back(),
                                               registry_);
  nfs_servers_.push_back(std::make_unique<nfs::NfsServer>(
      fabric_, server_node, rpc::kNfsPort, *backend, nullptr,
      mds_server_config()));
  nfs_servers_.back()->start();
  const rpc::RpcAddress mds = nfs_servers_.back()->address();
  backends_.push_back(std::move(backend));

  add_nfs_clients(mds, /*pnfs_enabled=*/false);
}

// ---------------------------------------------------------------------------
// Introspection & lifecycle
// ---------------------------------------------------------------------------

Task<void> Deployment::mount_all() {
  for (auto& client : fs_clients_) co_await client->mount();
}

std::vector<lfs::ObjectStore*> Deployment::stores() {
  std::vector<lfs::ObjectStore*> out;
  out.reserve(stores_.size());
  for (auto& s : stores_) out.push_back(s.get());
  return out;
}

void Deployment::drop_all_server_caches() {
  for (auto& s : stores_) s->drop_caches();
}

uint64_t Deployment::disk_write_bytes() const {
  uint64_t total = 0;
  for (const auto& s : stores_) total += s->stats().disk_write_bytes;
  return total;
}

uint64_t Deployment::disk_read_bytes() const {
  uint64_t total = 0;
  for (const auto& s : stores_) total += s->stats().disk_read_bytes;
  return total;
}

uint64_t Deployment::server_tx_bytes() const {
  uint64_t total = 0;
  for (const sim::Node* n : storage_nodes_) {
    total += const_cast<sim::Node*>(n)->nic().tx_bytes();
  }
  return total;
}

uint64_t Deployment::server_rx_bytes() const {
  uint64_t total = 0;
  for (const sim::Node* n : storage_nodes_) {
    total += const_cast<sim::Node*>(n)->nic().rx_bytes();
  }
  return total;
}

void Deployment::print_traffic_report() const {
  std::printf("%-12s%14s%14s%14s%14s\n", "node", "nic tx", "nic rx",
              "disk write", "disk read");
  for (size_t i = 0; i < storage_nodes_.size(); ++i) {
    sim::Node* n = storage_nodes_[i];
    std::printf("%-12s%14s%14s%14s%14s\n", n->name().c_str(),
                util::format_bytes(n->nic().tx_bytes()).c_str(),
                util::format_bytes(n->nic().rx_bytes()).c_str(),
                util::format_bytes(stores_[i]->stats().disk_write_bytes).c_str(),
                util::format_bytes(stores_[i]->stats().disk_read_bytes).c_str());
  }
  for (sim::Node* n : client_nodes_) {
    std::printf("%-12s%14s%14s%14s%14s\n", n->name().c_str(),
                util::format_bytes(n->nic().tx_bytes()).c_str(),
                util::format_bytes(n->nic().rx_bytes()).c_str(), "-", "-");
  }
}

void Deployment::snapshot_resource_gauges() {
  // NICs exist on every node; only storage nodes have stores/disks.  Data
  // paths that bypass the instrumented daemons (Direct-pNFS serves stripe
  // objects straight from the local store) still show up here.
  for (uint32_t i = 0; i < net_.node_count(); ++i) {
    sim::Node& n = net_.node(i);
    metrics_.gauge(n.name(), "node", "nic_tx_bytes")
        .set(static_cast<double>(n.nic().tx_bytes()));
    metrics_.gauge(n.name(), "node", "nic_rx_bytes")
        .set(static_cast<double>(n.nic().rx_bytes()));
  }
  for (size_t i = 0; i < storage_nodes_.size(); ++i) {
    const std::string& name = storage_nodes_[i]->name();
    const lfs::ObjectStoreStats& st = stores_[i]->stats();
    metrics_.gauge(name, "node", "disk_write_bytes")
        .set(static_cast<double>(st.disk_write_bytes));
    metrics_.gauge(name, "node", "disk_read_bytes")
        .set(static_cast<double>(st.disk_read_bytes));
    metrics_.gauge(name, "node", "disk_writes")
        .set(static_cast<double>(st.disk_writes));
    metrics_.gauge(name, "node", "disk_reads")
        .set(static_cast<double>(st.disk_reads));
    metrics_.gauge(name, "node", "store_cache_hit_bytes")
        .set(static_cast<double>(st.cache_hit_bytes));
    metrics_.gauge(name, "node", "store_cache_miss_bytes")
        .set(static_cast<double>(st.cache_miss_bytes));
  }
}

// ---------------------------------------------------------------------------
// Utilization sampling
// ---------------------------------------------------------------------------

void Deployment::start_sampling() {
  if (sampling_ || config_.sample_interval <= 0) return;
  sampling_ = true;
  sampler_stop_ = false;
  sim_.spawn(sampler_loop());
}

void Deployment::stop_sampling() { sampler_stop_ = true; }

Task<void> Deployment::sampler_loop() {
  const sim::Duration interval = config_.sample_interval;
  const double window = static_cast<double>(interval);
  // Previous busy-time totals: utilization over a window is the delta of
  // the resource's busy accumulator divided by the window.
  std::vector<sim::Duration> prev_tx(net_.node_count(), 0);
  std::vector<sim::Duration> prev_rx(net_.node_count(), 0);
  std::vector<sim::Duration> prev_disk(storage_nodes_.size(), 0);
  for (uint32_t i = 0; i < net_.node_count(); ++i) {
    prev_tx[i] = net_.node(i).nic().tx_busy();
    prev_rx[i] = net_.node(i).nic().rx_busy();
  }
  for (size_t i = 0; i < storage_nodes_.size(); ++i) {
    prev_disk[i] = storage_nodes_[i]->disk().busy();
  }
  while (!sampler_stop_) {
    co_await sim_.delay(interval);
    if (sampler_stop_) break;
    const obs::TimeNs t = sim_.now();
    // Nodes added after the sampler started are not expected; guard anyway.
    const uint32_t n_nodes =
        static_cast<uint32_t>(std::min<size_t>(net_.node_count(),
                                               prev_tx.size()));
    for (uint32_t i = 0; i < n_nodes; ++i) {
      sim::Node& n = net_.node(i);
      const sim::Duration tx = n.nic().tx_busy();
      const sim::Duration rx = n.nic().rx_busy();
      samples_.add(n.name(), "nic_tx_util", t,
                   static_cast<double>(tx - prev_tx[i]) / window);
      samples_.add(n.name(), "nic_rx_util", t,
                   static_cast<double>(rx - prev_rx[i]) / window);
      prev_tx[i] = tx;
      prev_rx[i] = rx;
    }
    for (size_t i = 0; i < storage_nodes_.size(); ++i) {
      const std::string& name = storage_nodes_[i]->name();
      const sim::Duration db = storage_nodes_[i]->disk().busy();
      samples_.add(name, "disk_util", t,
                   static_cast<double>(db - prev_disk[i]) / window);
      prev_disk[i] = db;
      samples_.add(name, "store_dirty_bytes", t,
                   static_cast<double>(stores_[i]->dirty_bytes()));
    }
    // RPC queue depth per node, summed over the daemons it hosts.
    for (const auto& [node, d] : rpc_queue_depths()) {
      samples_.add(node, "rpc_queue_depth", t, d);
    }
    // Fold the fault/queue/restart/breaker signals into per-node health
    // states and track them as a numeric series (0 ok, 1 degraded,
    // 2 critical).
    evaluate_health();
    for (const auto& [node, h] : health_) {
      samples_.add(node, "health", t, static_cast<double>(h.level));
    }
  }
  sampling_ = false;
}

std::map<std::string, double> Deployment::rpc_queue_depths() {
  std::map<std::string, double> depth;
  for (const auto& s : nfs_servers_) {
    depth[net_.node(s->address().node_id).name()] +=
        static_cast<double>(s->rpc_queue_depth());
  }
  for (const auto& s : pvfs_storage_) {
    depth[net_.node(s->address().node_id).name()] +=
        static_cast<double>(s->rpc_queue_depth());
  }
  if (pvfs_meta_) {
    depth[net_.node(pvfs_meta_->address().node_id).name()] +=
        static_cast<double>(pvfs_meta_->rpc_queue_depth());
  }
  return depth;
}

void Deployment::evaluate_health() {
  const sim::Time now = sim_.now();
  const std::map<std::string, double> depth = rpc_queue_depths();

  // Restarts detected so far, per node (NFS servers + storage daemons).
  std::map<std::string, uint64_t> restarts;
  for (const auto& s : nfs_servers_) {
    restarts[net_.node(s->address().node_id).name()] += s->restarts_observed();
  }
  for (const auto& s : pvfs_storage_) {
    restarts[net_.node(s->address().node_id).name()] += s->restarts_observed();
  }

  // Circuit breakers tripped so far, per client node.
  std::map<std::string, uint64_t> breakers;
  for (const auto& [name, client] : health_clients_) {
    breakers[name] += client->stats().breaker_trips;
  }

  // A daemon the fault injector holds down right now.
  std::map<std::string, bool> down;
  if (fault_injector_ != nullptr) {
    for (const auto& s : nfs_servers_) {
      const rpc::RpcAddress a = s->address();
      if (fault_injector_->service_down(a.node_id, a.port, now)) {
        down[net_.node(a.node_id).name()] = true;
      }
    }
    for (const auto& s : pvfs_storage_) {
      const rpc::RpcAddress a = s->address();
      if (fault_injector_->service_down(a.node_id, a.port, now)) {
        down[net_.node(a.node_id).name()] = true;
      }
    }
    if (pvfs_meta_) {
      const rpc::RpcAddress a = pvfs_meta_->address();
      if (fault_injector_->service_down(a.node_id, a.port, now)) {
        down[net_.node(a.node_id).name()] = true;
      }
    }
  }

  health_.clear();
  for (uint32_t i = 0; i < net_.node_count(); ++i) {
    const sim::Node& n = net_.node(i);
    const std::string& name = n.name();
    NodeHealth h;
    if (auto it = breakers.find(name); it != breakers.end()) {
      const uint64_t delta = it->second - health_prev_breakers_[name];
      if (delta > 0) {
        h.level = 1;
        h.reason = util::sformat(
            "breaker trips +%llu", static_cast<unsigned long long>(delta));
      }
    }
    if (auto it = depth.find(name);
        it != depth.end() &&
        it->second >= static_cast<double>(config_.health_queue_threshold)) {
      h.level = std::max(h.level, 1);
      h.reason = util::sformat("rpc queue depth %.0f", it->second);
    }
    if (auto it = restarts.find(name); it != restarts.end()) {
      const uint64_t delta = it->second - health_prev_restarts_[name];
      if (delta > 0) {
        h.level = 2;
        h.reason = util::sformat(
            "service restarts +%llu", static_cast<unsigned long long>(delta));
      }
    }
    if (auto it = down.find(name); it != down.end() && it->second) {
      h.level = 2;
      h.reason = "service down (fault injection)";
    }
    if (fault_injector_ != nullptr &&
        fault_injector_->node_down(n.id(), now)) {
      h.level = 2;
      h.reason = "node down (fault injection)";
    }
    health_[name] = std::move(h);
  }
  for (const auto& [name, v] : restarts) health_prev_restarts_[name] = v;
  for (const auto& [name, v] : breakers) health_prev_breakers_[name] = v;
}

std::string Deployment::health_json() {
  evaluate_health();
  std::string out = "{";
  bool first = true;
  for (const auto& [name, h] : health_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += obs::json_escape(name);
    out += "\":{\"state\":\"";
    out += h.level == 0 ? "ok" : (h.level == 1 ? "degraded" : "critical");
    out += "\",\"reason\":\"";
    out += obs::json_escape(h.reason);
    out += "\"}";
  }
  out += "}";
  return out;
}

bool Deployment::write_flight(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = flight_.to_json();
  const size_t n = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && n == json.size();
}

std::string Deployment::metrics_json() {
  snapshot_resource_gauges();
  std::string out = "{\"architecture\":\"";
  out += obs::json_escape(architecture_name(config_.architecture));
  out += "\",\"sim_time_ns\":";
  out += std::to_string(sim_.now());
  out += ",\"nodes\":";
  out += metrics_.to_json();
  out += ",\"trace\":";
  out += tracer_.to_json();
  out += ",\"slo\":";
  out += tracer_.slo_json();
  out += ",\"tenants\":";
  out += tenants_ledger_.to_json();
  out += ",\"health\":";
  out += health_json();
  if (!samples_.empty()) {
    out += ",\"timeseries\":{\"interval_ns\":";
    out += std::to_string(config_.sample_interval);
    out += ",\"series\":";
    out += samples_.to_json();
    out += "}";
  }
  out += "}";
  return out;
}

std::string Deployment::trace_json() {
  return obs::TraceExporter::to_chrome_json(
      tracer_, architecture_name(config_.architecture),
      samples_.empty() ? nullptr : &samples_);
}

bool Deployment::write_trace(const std::string& path) {
  return obs::TraceExporter::write_file(
      path, tracer_, architecture_name(config_.architecture),
      samples_.empty() ? nullptr : &samples_);
}

void Deployment::print_metrics_report() {
  snapshot_resource_gauges();
  std::printf("== metrics report: %s ==\n",
              architecture_name(config_.architecture));
  std::fputs(metrics_.report().c_str(), stdout);
  std::printf(
      "trace: %llu traces, %llu rpc hops (mean %.2f max %u per trace), "
      "%llu spans recorded, %llu dropped\n",
      static_cast<unsigned long long>(tracer_.traces_started()),
      static_cast<unsigned long long>(tracer_.rpc_hops_total()),
      tracer_.mean_hops_per_trace(), tracer_.max_hops_per_trace(),
      static_cast<unsigned long long>(tracer_.spans_recorded()),
      static_cast<unsigned long long>(tracer_.spans_dropped()));
  std::printf(
      "sampling: rate %.4g, %llu traces sampled, %llu promoted, "
      "%llu spans sampled out\n",
      tracer_.sample_rate(),
      static_cast<unsigned long long>(tracer_.traces_sampled()),
      static_cast<unsigned long long>(tracer_.traces_promoted()),
      static_cast<unsigned long long>(tracer_.spans_sampled_out()));
}

}  // namespace dpnfs::core
