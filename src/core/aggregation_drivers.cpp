#include "core/aggregation_drivers.hpp"

#include <algorithm>
#include <stdexcept>

namespace dpnfs::core {

using nfs::FileLayout;
using nfs::StripeSegment;

namespace {

void append_or_merge(std::vector<StripeSegment>& out, StripeSegment seg) {
  if (!out.empty() && out.back().device_index == seg.device_index &&
      out.back().dev_offset + out.back().length == seg.dev_offset &&
      out.back().file_offset + out.back().length == seg.file_offset) {
    out.back().length += seg.length;
  } else {
    out.push_back(seg);
  }
}

}  // namespace

std::vector<StripeSegment> VariableStripeDriver::map_read(
    const FileLayout& layout, uint64_t offset, uint64_t length) const {
  // params = [k, su_1, count_1, ..., su_k, count_k]; last pair repeats.
  if (layout.params.size() < 3 || layout.params[0] == 0 ||
      layout.params.size() != 1 + 2 * layout.params[0]) {
    throw std::invalid_argument("variable-stripe params malformed");
  }
  const uint64_t k = layout.params[0];
  const uint64_t n = layout.devices.size();
  std::vector<StripeSegment> out;
  if (length == 0) return out;
  const uint64_t end = offset + length;

  // Walk stripes from the file start, tracking dense per-device offsets.
  std::vector<uint64_t> dev_used(n, 0);
  uint64_t file_pos = 0;
  uint64_t stripe = 0;
  uint64_t region = 0;
  uint64_t in_region = 0;  // stripes consumed in the current region
  while (file_pos < end) {
    const uint64_t su = layout.params[1 + 2 * region];
    const uint64_t region_count = layout.params[2 + 2 * region];
    if (su == 0) throw std::invalid_argument("zero stripe size");
    const size_t dev = static_cast<size_t>(stripe % n);
    const uint64_t stripe_end = file_pos + su;
    if (stripe_end > offset) {
      const uint64_t lo = std::max(offset, file_pos);
      const uint64_t hi = std::min(end, stripe_end);
      StripeSegment seg;
      seg.device_index = dev;
      seg.dev_offset = dev_used[dev] + (lo - file_pos);
      seg.file_offset = lo;
      seg.length = hi - lo;
      append_or_merge(out, seg);
    }
    dev_used[dev] += su;
    file_pos = stripe_end;
    ++stripe;
    if (++in_region >= region_count && region + 1 < k) {
      ++region;
      in_region = 0;
    }
  }
  return out;
}

std::vector<StripeSegment> ReplicatedDriver::map_read(const FileLayout& layout,
                                                      uint64_t offset,
                                                      uint64_t length) const {
  if (!layout.valid()) throw std::invalid_argument("invalid layout");
  std::vector<StripeSegment> out;
  const uint64_t su = layout.stripe_unit;
  const uint64_t n = layout.devices.size();
  uint64_t pos = offset;
  const uint64_t end = offset + length;
  while (pos < end) {
    const uint64_t stripe = pos / su;
    const uint64_t take = std::min(su - pos % su, end - pos);
    StripeSegment seg;
    // Deterministic replica choice spreads concurrent readers.
    seg.device_index = static_cast<size_t>(stripe % n);
    seg.dev_offset = pos;  // full copies: device offset == file offset
    seg.file_offset = pos;
    seg.length = take;
    append_or_merge(out, seg);
    pos += take;
  }
  return out;
}

std::vector<StripeSegment> ReplicatedDriver::map_write(const FileLayout& layout,
                                                       uint64_t offset,
                                                       uint64_t length) const {
  if (!layout.valid()) throw std::invalid_argument("invalid layout");
  std::vector<StripeSegment> out;
  for (size_t d = 0; d < layout.devices.size(); ++d) {
    StripeSegment seg;
    seg.device_index = d;
    seg.dev_offset = offset;
    seg.file_offset = offset;
    seg.length = length;
    out.push_back(seg);
  }
  return out;
}

namespace {

struct NestedGeometry {
  uint64_t g = 0;       // devices per mirror group
  uint64_t groups = 0;  // number of mirror groups
};

NestedGeometry nested_geometry(const FileLayout& layout) {
  if (!layout.valid()) throw std::invalid_argument("invalid layout");
  if (layout.params.empty() || layout.params[0] == 0 ||
      layout.devices.size() % layout.params[0] != 0) {
    throw std::invalid_argument("nested params malformed");
  }
  const uint64_t g = layout.params[0];
  return {g, layout.devices.size() / g};
}

}  // namespace

std::vector<StripeSegment> NestedDriver::map_read(const FileLayout& layout,
                                                  uint64_t offset,
                                                  uint64_t length) const {
  // RAID-1+0: stripes round-robin across mirror groups; every member of a
  // group holds the group's stripes at the same dense device offset, and
  // reads rotate across the members to spread load.
  const auto [g, groups] = nested_geometry(layout);
  const uint64_t su = layout.stripe_unit;
  std::vector<StripeSegment> out;
  uint64_t pos = offset;
  const uint64_t end = offset + length;
  while (pos < end) {
    const uint64_t stripe = pos / su;
    const uint64_t take = std::min(su - pos % su, end - pos);
    const uint64_t group = stripe % groups;
    const uint64_t sub = (stripe / groups) % g;
    StripeSegment seg;
    seg.device_index = static_cast<size_t>(group * g + sub);
    seg.dev_offset = (stripe / groups) * su + pos % su;
    seg.file_offset = pos;
    seg.length = take;
    append_or_merge(out, seg);
    pos += take;
  }
  return out;
}

std::vector<StripeSegment> NestedDriver::map_write(const FileLayout& layout,
                                                   uint64_t offset,
                                                   uint64_t length) const {
  // Every member of the stripe's mirror group gets a copy at the same
  // device offset, so any single member can serve the stripe later.
  const auto [g, groups] = nested_geometry(layout);
  const uint64_t su = layout.stripe_unit;
  std::vector<StripeSegment> out;
  uint64_t pos = offset;
  const uint64_t end = offset + length;
  while (pos < end) {
    const uint64_t stripe = pos / su;
    const uint64_t take = std::min(su - pos % su, end - pos);
    const uint64_t group = stripe % groups;
    for (uint64_t sub = 0; sub < g; ++sub) {
      StripeSegment seg;
      seg.device_index = static_cast<size_t>(group * g + sub);
      seg.dev_offset = (stripe / groups) * su + pos % su;
      seg.file_offset = pos;
      seg.length = take;
      out.push_back(seg);
    }
    pos += take;
  }
  return out;
}

std::vector<StripeSegment> ErasureCodedDriver::map_read(
    const FileLayout& layout, uint64_t offset, uint64_t length) const {
  const auto geo = nfs::EcGeometry::from(layout);
  if (!geo) throw std::invalid_argument("erasure-coded params malformed");
  const uint64_t su = geo->su;
  std::vector<StripeSegment> out;
  uint64_t pos = offset;
  const uint64_t end = offset + length;
  while (pos < end) {
    const uint64_t stripe = pos / su;
    const uint64_t take = std::min(su - pos % su, end - pos);
    StripeSegment seg;
    seg.device_index = static_cast<size_t>(stripe % geo->k);
    seg.dev_offset = (stripe / geo->k) * su + pos % su;
    seg.file_offset = pos;
    seg.length = take;
    append_or_merge(out, seg);
    pos += take;
  }
  return out;
}

std::vector<StripeSegment> ErasureCodedDriver::map_write(
    const FileLayout& layout, uint64_t offset, uint64_t length) const {
  // Data segments as for reads, plus one parity segment per touched stripe
  // group per parity device.  Parity payloads are not file bytes: the
  // writer computes them over the (zero-padded) group with
  // util::ReedSolomon before issuing the WRITEs.
  const auto geo = nfs::EcGeometry::from(layout);
  if (!geo) throw std::invalid_argument("erasure-coded params malformed");
  std::vector<StripeSegment> out = map_read(layout, offset, length);
  if (length == 0) return out;
  const uint64_t gb = geo->group_bytes();
  const uint64_t first_group = offset / gb;
  const uint64_t last_group = (offset + length - 1) / gb;
  for (uint64_t grp = first_group; grp <= last_group; ++grp) {
    for (uint64_t j = 0; j < geo->m; ++j) {
      StripeSegment seg;
      seg.device_index = static_cast<size_t>(geo->k + j);
      seg.dev_offset = grp * geo->su;
      seg.file_offset = grp * gb;
      seg.length = geo->su;
      seg.parity = true;
      out.push_back(seg);
    }
  }
  return out;
}

nfs::AggregationRegistry full_aggregation_registry() {
  auto reg = nfs::AggregationRegistry::with_standard_drivers();
  reg.add(std::make_unique<VariableStripeDriver>());
  reg.add(std::make_unique<ReplicatedDriver>());
  reg.add(std::make_unique<NestedDriver>());
  reg.add(std::make_unique<ErasureCodedDriver>());
  return reg;
}

}  // namespace dpnfs::core
