// NFS backends that export a PVFS2-like file system.
//
// `PvfsBackend` implements nfs::Backend on top of a pvfs::PvfsClient — the
// "pNFS server + PVFS2 client" pairing of the paper's Figures 2 and 5.  It
// also implements PfsLayoutProvider, which is how the Direct-pNFS layout
// translator learns a file's native distribution.
//
// An optional *stripe view* turns the backend into the data-server proxy of
// the conventional 2-/3-tier file-layout deployments: the pNFS client
// addresses this server through dense-striped device offsets (it believes
// device i stores every i-th stripe back to back), and the proxy converts
// those device offsets back to logical file offsets before forwarding to
// the exported PFS.  Each forwarded range re-stripes across the PFS —
// producing exactly the overlapping-protocol request amplification and
// inter-server transfers the paper measures (§3.4.1).
//
// Filehandles are interned in an `FhRegistry` shared by the MDS and all
// data servers of one deployment (standing in for the pNFS control
// protocol's filehandle agreement).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/translator.hpp"
#include "nfs/backend.hpp"
#include "pvfs/client.hpp"

namespace dpnfs::core {

/// Shared filehandle table: fh <-> exported-PFS path (+ file metadata).
class FhRegistry {
 public:
  struct Entry {
    std::string path;
    bool is_dir = false;
    pvfs::PvfsFilePtr file;  ///< regular files only
    /// NFSv4 change attribute.  Bumped by every mutation that any server
    /// sharing this registry observes (writes proxied through a backend,
    /// truncates, LAYOUTCOMMITs after direct data-server writes).
    uint64_t change = 0;
  };

  FhRegistry() {
    entries_[kRootId] = Entry{"/", true, nullptr};
    by_path_["/"] = kRootId;
  }

  static constexpr uint64_t kRootId = 1;

  nfs::FileHandle root() const { return nfs::FileHandle{kRootId}; }

  nfs::FileHandle intern_dir(const std::string& path);
  nfs::FileHandle intern_file(const std::string& path, pvfs::PvfsFilePtr file);
  Entry* find(nfs::FileHandle fh);
  std::optional<nfs::FileHandle> find_path(const std::string& path) const;
  void erase(const std::string& path);
  void rename(const std::string& from, const std::string& to);

 private:
  std::map<uint64_t, Entry> entries_;
  std::map<std::string, uint64_t> by_path_;
  uint64_t next_id_ = 2;
};

/// 2-/3-tier data-server offset conversion parameters.
struct StripeView {
  uint64_t stripe_unit = 0;
  uint32_t device_count = 0;
  uint32_t device_index = 0;
};

class PvfsBackend final : public nfs::Backend, public PfsLayoutProvider {
 public:
  PvfsBackend(pvfs::PvfsClient& client, std::shared_ptr<FhRegistry> registry,
              std::optional<StripeView> stripe_view = std::nullopt);

  // -- nfs::Backend ----------------------------------------------------------
  nfs::FileHandle root_fh() const override { return registry_->root(); }
  sim::Task<nfs::Status> getattr(nfs::FileHandle fh, nfs::Fattr* out) override;
  sim::Task<nfs::Status> set_size(nfs::FileHandle fh, uint64_t size) override;
  sim::Task<nfs::Status> lookup(nfs::FileHandle dir, const std::string& name,
                                nfs::FileHandle* out) override;
  sim::Task<nfs::Status> mkdir(nfs::FileHandle dir, const std::string& name,
                               nfs::FileHandle* out) override;
  sim::Task<nfs::Status> open(nfs::FileHandle dir, const std::string& name,
                              bool create, nfs::FileHandle* out,
                              nfs::Fattr* attr) override;
  sim::Task<nfs::Status> remove(nfs::FileHandle dir,
                                const std::string& name) override;
  sim::Task<nfs::Status> rename(nfs::FileHandle src_dir,
                                const std::string& old_name,
                                nfs::FileHandle dst_dir,
                                const std::string& new_name) override;
  sim::Task<nfs::Status> readdir(nfs::FileHandle dir,
                                 std::vector<nfs::DirEntry>* out) override;
  sim::Task<nfs::Status> read(nfs::FileHandle fh, uint64_t offset,
                              uint32_t count, rpc::Payload* out, bool* eof,
                              obs::TraceContext trace = {}) override;
  sim::Task<nfs::Status> write(nfs::FileHandle fh, uint64_t offset,
                               const rpc::Payload& data, nfs::StableHow stable,
                               nfs::StableHow* committed, uint64_t* post_change,
                               obs::TraceContext trace = {}) override;
  sim::Task<nfs::Status> commit(nfs::FileHandle fh,
                                obs::TraceContext trace = {}) override;

  // A restart of the exporting NFS server must not let its embedded PVFS
  // client resurrect the dead incarnation's buffered write pieces.
  void on_server_restart() override { client_.drop_replay_state(); }

  // -- PfsLayoutProvider -------------------------------------------------------
  bool describe(nfs::FileHandle fh, PfsLayoutDescription* out) override;
  sim::Task<uint64_t> on_layout_commit(nfs::FileHandle fh,
                                       uint64_t new_size) override;

 private:
  /// Joins a directory entry's path with a component.
  static std::string join(const std::string& dir, const std::string& name) {
    return dir == "/" ? "/" + name : dir + "/" + name;
  }

  FhRegistry::Entry* dir_entry(nfs::FileHandle fh, nfs::Status* st);
  FhRegistry::Entry* file_entry(nfs::FileHandle fh, nfs::Status* st);

  /// Device offset -> logical file offset under the synthetic dense view.
  uint64_t to_file_offset(uint64_t dev_offset) const;

  pvfs::PvfsClient& client_;
  std::shared_ptr<FhRegistry> registry_;
  std::optional<StripeView> stripe_view_;
};

}  // namespace dpnfs::core
