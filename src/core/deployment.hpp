// Cluster deployments for the five access architectures of the evaluation.
//
// All five share the same back end — N storage nodes running the PVFS2-like
// storage daemons, one doubling as metadata manager — and differ only in the
// access path (paper §6.1 keeps nodes and disks constant):
//
//   kDirectPnfs  — NFSv4.1 data server on *every* storage node exporting the
//                  local stripe objects directly; MDS co-located with the
//                  PVFS metadata manager; exact layouts via LayoutTranslator.
//   kNativePvfs  — clients run the native PVFS2-like client.
//   kPnfs2Tier   — file-layout pNFS data servers on the storage nodes, but
//                  each proxies the whole file system through a PVFS client
//                  (no placement knowledge: SyntheticLayoutSource).
//   kPnfs3Tier   — 3 dedicated NFS data servers in front of 3 storage nodes
//                  (disks consolidated: fewer spindles behind faster nodes).
//   kPlainNfs    — one NFSv4 server exporting the PVFS client; no pNFS.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/adapters.hpp"
#include "core/aggregation_drivers.hpp"
#include "core/conduit_backend.hpp"
#include "core/pvfs_backend.hpp"
#include "core/translator.hpp"
#include "lfs/object_store.hpp"
#include "nfs/client.hpp"
#include "nfs/local_backend.hpp"
#include "nfs/server.hpp"
#include "core/rebuild.hpp"
#include "pvfs/meta_server.hpp"
#include "pvfs/storage_server.hpp"
#include "sim/fault.hpp"
#include "util/flight.hpp"
#include "util/log.hpp"
#include "util/obs_analysis.hpp"
#include "util/tenant.hpp"

namespace dpnfs::core {

enum class Architecture {
  kDirectPnfs,
  kNativePvfs,
  kPnfs2Tier,
  kPnfs3Tier,
  kPlainNfs,
};

const char* architecture_name(Architecture a);

/// Well-known service ports, public so fault plans can target a specific
/// service on a node (e.g. crash the MDS but not the co-located storage
/// daemon).  Data servers listen on rpc::kNfsPort (2049); the PVFS daemons
/// on rpc::kPvfsMetaPort / rpc::kPvfsIoPort.
inline constexpr uint16_t kMdsPort = 2050;

/// Every knob of the testbed.  Defaults reproduce the paper's setup:
/// 6 storage nodes (+1 metadata double-duty), gigabit Ethernet with jumbo
/// frames, 2 MB stripes, 2 MB rsize/wsize, 8 nfsd threads.
struct ClusterConfig {
  Architecture architecture = Architecture::kDirectPnfs;
  uint32_t storage_nodes = 6;
  uint32_t clients = 8;
  uint32_t three_tier_data_servers = 3;
  /// 3-tier consolidates 6 disks behind 3 nodes; two disks per node do not
  /// double bandwidth (paper §6.2) — this factor models the shortfall.
  double three_tier_disk_scale = 1.6;

  sim::NicParams nic{.bytes_per_sec = 117e6, .latency = sim::us(60)};
  sim::NetworkParams network{};

  /// Event-core mode.  false (default): calendar-queue event core with
  /// coroutine-frame/byte-buffer pooling and the network fast path.  true:
  /// the pre-overhaul binary heap, plain malloc, and per-chunk transfer
  /// legs — the honest baseline `bench_scale` measures its speedup against.
  /// Both modes realize the identical (time, seq) event order, so simulated
  /// results are bit-identical; only wall-clock cost differs.
  bool legacy_core = false;

  /// Seeded per-client start stagger: client i sleeps uniform
  /// [0, start_stagger) — drawn from fork(i) of start_stagger_seed — before
  /// its first op, so closed-loop sweeps measure steady state instead of a
  /// lockstep convoy.  0 disables.
  sim::Duration start_stagger = sim::ms(20);
  uint64_t start_stagger_seed = 0x57a66e12;
  sim::DiskParams disk{.bytes_per_sec = 23e6,
                       .positioning = sim::ms(3),
                       .per_request = sim::us(100)};
  sim::CpuParams server_cpu{.cores = 2};
  sim::CpuParams client_cpu{.cores = 2};

  /// Extra per-byte CPU for *server-side* PVFS clients: an NFS server box
  /// that re-exports the parallel FS pays for a second full data copy
  /// through the kernel/daemon boundary on the same machine.  This is the
  /// per-box ceiling that makes the 2-/3-tier data servers and the plain
  /// NFSv4 server CPU-limited in the paper — and that Direct-pNFS bypasses
  /// by serving stripe objects locally.
  double proxy_extra_cpu_ns_per_byte = 24.0;

  /// Model the prototype's loopback conduit on Direct-pNFS data servers
  /// (Figure 5: the PVFS2 client ferries data between the NFSv4 server and
  /// the local storage daemon through a fixed buffer pool).
  bool direct_ds_conduit = true;
  ConduitParams conduit{};

  /// The 2-/3-tier data servers re-export PVFS through the *kernel* client:
  /// every data op funnels through the pvfs2 kernel module's single upcall
  /// queue to the user-level client daemon, and an nfsd thread's synchronous
  /// VFS write pins that crossing for the full (mostly remote) PVFS round
  /// trip.  One buffer models the serialized traversal — the intermediate
  /// file system overhead §6.2 blames for pNFS-2tier losing half its
  /// bandwidth on a slow network, and which Direct-pNFS eliminates.
  ConduitParams vfs_conduit{.buffers = 1};

  /// Scripted failures (node/service crashes, link faults, disk faults)
  /// injected into the cluster's network.  Empty by default: fault-free
  /// runs build no injector and pay nothing.
  sim::FaultPlan faults{};

  /// Grace window the MDS opens after a restart: sessions unknown to the
  /// new boot instance get NFS4ERR_GRACE (retryable) instead of
  /// BADSESSION while state is re-established.  Data servers stay at 0
  /// (stateless data path; see nfs::ServerConfig::grace_period).
  sim::Duration mds_grace_period = 0;

  /// Simulated-time interval between utilization samples once
  /// `start_sampling()` runs (run_workload starts/stops it around the timed
  /// phase).  0 disables sampling.
  sim::Duration sample_interval = sim::ms(100);
  /// Span-detail retention for the tracer (hop *accounting* is always
  /// exact).  Raise it when exporting full timelines (`--trace-out`).
  size_t trace_span_capacity = 4096;
  /// Head-sampling rate for span detail in [0, 1]: the fraction of traces
  /// whose spans are retained.  Aggregate counters and the SLO digests stay
  /// exact for all traffic at any rate.  1.0 keeps today's always-on
  /// behavior.
  double trace_sample_rate = 1.0;
  /// Seed for the deterministic per-trace sampling verdict; the same seed
  /// and schedule sample the same trace ids (chaos runs stay reproducible).
  uint64_t trace_sample_seed = 0x9e1ddca7;
  /// Root-span latency SLO: unsampled traces ending slower than this (or
  /// with an error) are tail-promoted with full span detail.  0 disables
  /// the slow-trace trigger.
  sim::Duration trace_slo_threshold = 0;

  /// Tenant mix: NFS/PVFS clients are assigned tenant ids 1..tenants
  /// round-robin by client index.  0 disables tenant stamping entirely —
  /// the wire stays byte-identical to the pre-tenant layout.
  uint32_t tenants = 0;
  /// Capacity of the Space-Saving heavy-hitter tracker behind per-tenant
  /// accounting: memory stays O(tenant_topk) at thousands of tenants, and
  /// counts are exact while distinct tenants fit.
  uint32_t tenant_topk = 64;
  /// Bounded structured-event ring (recovery ladder, restarts, WARN+ log
  /// lines) dumped as JSON on faults or on demand.
  size_t flight_capacity = 4096;
  /// Per-node RPC queue depth (summed over the daemons a node hosts) at or
  /// above which the health evaluator reports the node "degraded".
  size_t health_queue_threshold = 64;

  uint64_t stripe_unit = 2ull << 20;

  /// File distribution for new files (copied into pvfs_meta at build time):
  /// kStripe (default, no redundancy), kMirror (`replicas` full copies), or
  /// kErasure (RS `ec_k`+`ec_m`).  Redundant distributions surface to pNFS
  /// clients as the replicated / erasure-coded layout aggregations, whose
  /// degraded read and write paths survive data-server loss without MDS
  /// fallback (docs/failures.md).
  pvfs::DistKind distribution = pvfs::DistKind::kStripe;
  uint32_t replicas = 2;
  uint32_t ec_k = 4;
  uint32_t ec_m = 2;
  /// Trailing storage nodes held out of new distributions as rebuild
  /// spares (copied into pvfs_meta).
  uint32_t spare_nodes = 0;

  /// Background rebuild service on the MDS node (Direct-pNFS only): when a
  /// storage daemon stays continuously unreachable past
  /// `rebuild.dead_threshold`, its dfiles are re-materialized onto a spare
  /// from replicas/parity while foreground traffic continues.  Requires a
  /// fault injector (the monitor reads its liveness view) — fault-free
  /// runs never start the loop.
  bool rebuild_enabled = false;
  RebuildConfig rebuild{};

  /// List I/O: clients fold multiple regions for the same data server or
  /// storage daemon into one vectored request (kReadv/kWritev on the PVFS
  /// wire, READV/WRITEV in NFS compounds).  Copied into the NFS and PVFS
  /// client configs at build time.
  bool listio_enabled = true;
  uint32_t listio_max_regions = 64;

  lfs::ObjectStoreParams store{};
  nfs::ServerConfig nfs_server{};
  nfs::ClientConfig nfs_client{};
  pvfs::MetaServerConfig pvfs_meta{};
  pvfs::StorageServerConfig pvfs_storage{};
  pvfs::PvfsClientConfig pvfs_client{};
};

/// One assembled cluster: simulation, nodes, servers, and per-client-node
/// FileSystemClient handles.
class Deployment {
 public:
  explicit Deployment(ClusterConfig config);
  ~Deployment();
  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  sim::Simulation& simulation() noexcept { return sim_; }
  const ClusterConfig& config() const noexcept { return config_; }
  Architecture architecture() const noexcept { return config_.architecture; }

  size_t client_count() const noexcept { return fs_clients_.size(); }
  FileSystemClient& client(size_t i) { return *fs_clients_.at(i); }

  /// Mounts every client (must run inside the simulation).
  sim::Task<void> mount_all();

  /// Back-end object stores (one per storage node).
  std::vector<lfs::ObjectStore*> stores();
  void drop_all_server_caches();

  /// Aggregate bytes the back-end disks absorbed.
  uint64_t disk_write_bytes() const;
  uint64_t disk_read_bytes() const;

  /// Bytes moved by the storage/server-node NICs.  Inter-server forwarding
  /// shows up here: with exact layouts, servers transmit ~nothing during a
  /// write workload; the 2-/3-tier proxies re-send everything they receive.
  uint64_t server_tx_bytes() const;
  uint64_t server_rx_bytes() const;

  /// Prints a per-node traffic/disk table (bench `--verbose` support).
  void print_traffic_report() const;

  /// Per-node metric registry; every RPC server/client in the deployment
  /// resolved its counter handles from this at construction.
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  obs::Tracer& tracer() noexcept { return tracer_; }
  const obs::Tracer& tracer() const noexcept { return tracer_; }

  /// Deployment-global per-tenant resource ledger (always on; traffic with
  /// no tenant is exported under "none", so per-tenant sums equal the
  /// aggregate counters exactly while nothing has been evicted).
  obs::TenantLedger& tenant_ledger() noexcept { return tenants_ledger_; }
  const obs::TenantLedger& tenant_ledger() const noexcept {
    return tenants_ledger_;
  }

  /// Flight recorder: bounded ring of recovery-ladder events, restarts,
  /// breaker trips, replay, grace transitions, and WARN+ log lines.
  obs::FlightRecorder& flight() noexcept { return flight_; }
  const obs::FlightRecorder& flight() const noexcept { return flight_; }
  std::string flight_json() { return flight_.to_json(); }
  /// Writes `flight_json()` to `path`; false on I/O failure.
  bool write_flight(const std::string& path);

  /// Folds queue/restart/breaker/fault-injection signals into per-node
  /// `ok|degraded|critical` states and returns the JSON "health" section
  /// (also embedded in `metrics_json`; the sampler adds a per-node numeric
  /// 0/1/2 "health" series to the timeseries).
  std::string health_json();

  /// Full observability export: architecture, per-node metrics (with NIC
  /// and object-store snapshots folded in as "node" gauges — this is what
  /// carries per-storage-node bytes even for Direct-pNFS, whose data path
  /// bypasses the PVFS I/O daemons), the trace aggregate, and — when the
  /// sampler ran — the utilization time series.
  std::string metrics_json();

  /// Starts the periodic utilization sampler (NIC/disk utilization, RPC
  /// queue depths, dirty bytes) on `config().sample_interval`.  Must run
  /// while the simulation is live; call `stop_sampling()` before expecting
  /// `Simulation::run()` to drain, or the sampler keeps the event queue
  /// alive forever.
  void start_sampling();
  void stop_sampling();
  const obs::TimeSeries& samples() const noexcept { return samples_; }

  /// Chrome/Perfetto trace_event JSON of all retained spans plus sampled
  /// counter tracks; load in ui.perfetto.dev.
  std::string trace_json();
  /// Writes `trace_json()` to `path`; false on I/O failure.
  bool write_trace(const std::string& path);

  /// Human-readable per-node metric + trace report.
  void print_metrics_report();

  /// The Direct-pNFS layout translator (null for other architectures).
  LayoutTranslator* translator() noexcept { return translator_.get(); }

  /// The fault injector driving `config().faults` (null when the plan is
  /// empty).
  sim::FaultInjector* fault_injector() noexcept { return fault_injector_.get(); }

  /// The background rebuild service (null unless `rebuild_enabled` and the
  /// architecture hosts one).  `start_rebuild()` spawns its monitor loop;
  /// call `stop_rebuild()` before expecting `Simulation::run()` to drain.
  RebuildManager* rebuild() noexcept { return rebuild_.get(); }
  void start_rebuild() {
    if (rebuild_) rebuild_->start();
  }
  void stop_rebuild() {
    if (rebuild_) rebuild_->stop();
  }

 private:
  void build_backend_cluster(uint32_t storage_count, double disk_scale);
  void build_direct_pnfs();
  void build_native_pvfs();
  void build_pnfs_2tier();
  void build_pnfs_3tier();
  void build_plain_nfs();

  sim::Node& add_client_node(const std::string& name);
  std::vector<rpc::RpcAddress> storage_addresses() const;
  std::unique_ptr<pvfs::PvfsClient> make_pvfs_client(sim::Node& node,
                                                     const std::string& who,
                                                     bool proxy,
                                                     uint32_t tenant = 0);
  void add_nfs_clients(rpc::RpcAddress mds, bool pnfs_enabled);

  /// Folds current NIC/disk/object-store totals into "node" gauges so
  /// exports see resource usage regardless of which software path moved
  /// the bytes.
  void snapshot_resource_gauges();

  /// Per-node RPC queue depth, summed over the daemons each node hosts.
  std::map<std::string, double> rpc_queue_depths();

  /// Re-evaluates per-node health states from the current signals.
  void evaluate_health();

  sim::Task<void> sampler_loop();

  /// config_.nfs_server with the MDS grace window applied.
  nfs::ServerConfig mds_server_config() const;

  ClusterConfig config_;
  sim::Simulation sim_;
  sim::Network net_;
  std::unique_ptr<sim::FaultInjector> fault_injector_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  obs::TenantLedger tenants_ledger_;
  obs::FlightRecorder flight_;
  rpc::RpcFabric fabric_;
  obs::TimeSeries samples_;
  bool sampling_ = false;
  bool sampler_stop_ = false;
  util::LogSink prev_log_sink_;

  struct NodeHealth {
    int level = 0;  ///< 0 ok, 1 degraded, 2 critical
    std::string reason = "ok";
  };
  std::map<std::string, NodeHealth> health_;
  std::map<std::string, uint64_t> health_prev_restarts_;
  std::map<std::string, uint64_t> health_prev_breakers_;
  /// (node name, client) pairs for breaker/error health signals.
  std::vector<std::pair<std::string, const nfs::NfsClient*>> health_clients_;

  std::vector<sim::Node*> storage_nodes_;
  std::vector<sim::Node*> client_nodes_;
  std::vector<std::unique_ptr<lfs::ObjectStore>> stores_;
  std::vector<std::unique_ptr<pvfs::PvfsStorageServer>> pvfs_storage_;
  std::unique_ptr<pvfs::PvfsMetaServer> pvfs_meta_;
  std::unique_ptr<RebuildManager> rebuild_;

  std::shared_ptr<FhRegistry> registry_;
  std::shared_ptr<const nfs::AggregationRegistry> aggregations_;
  std::vector<std::unique_ptr<pvfs::PvfsClient>> server_pvfs_clients_;
  std::vector<std::unique_ptr<nfs::Backend>> backends_;
  std::unique_ptr<LayoutTranslator> translator_;
  std::unique_ptr<SyntheticLayoutSource> synthetic_layouts_;
  std::vector<std::unique_ptr<nfs::NfsServer>> nfs_servers_;

  std::vector<std::unique_ptr<FileSystemClient>> fs_clients_;
};

}  // namespace dpnfs::core
