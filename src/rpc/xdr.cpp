#include "rpc/xdr.hpp"

namespace dpnfs::rpc {

void XdrEncoder::patch_u32(size_t pos, uint32_t v) {
  if (pos + 4 > buf_.size()) throw XdrError("patch_u32 out of range");
  buf_[pos] = static_cast<std::byte>((v >> 24) & 0xFF);
  buf_[pos + 1] = static_cast<std::byte>((v >> 16) & 0xFF);
  buf_[pos + 2] = static_cast<std::byte>((v >> 8) & 0xFF);
  buf_[pos + 3] = static_cast<std::byte>(v & 0xFF);
}

void XdrEncoder::pad() {
  while (buf_.size() % 4 != 0) buf_.push_back(std::byte{0});
}

void XdrEncoder::put_opaque_fixed(std::span<const std::byte> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  pad();
}

void XdrEncoder::put_opaque_var(std::span<const std::byte> data) {
  put_u32(static_cast<uint32_t>(data.size()));
  put_opaque_fixed(data);
}

void XdrEncoder::put_string(std::string_view s) {
  put_u32(static_cast<uint32_t>(s.size()));
  for (char c : s) buf_.push_back(static_cast<std::byte>(c));
  pad();
}

void XdrEncoder::put_payload(const Payload& p) {
  put_bool(p.is_inline());
  if (p.is_inline()) {
    // Scatter-gather: emit the fragments back-to-back so the wire image is
    // identical to a single contiguous opaque — no client-side gather copy.
    put_u32(static_cast<uint32_t>(p.size()));
    for (const auto& frag : p.fragments()) {
      const auto v = frag.view();
      buf_.insert(buf_.end(), v.begin(), v.end());
    }
    pad();
  } else {
    put_u64(p.size());
    virtual_bytes_ += p.size();
  }
}

uint32_t XdrDecoder::get_u32() {
  need(4);
  uint32_t v = (static_cast<uint32_t>(data_[pos_]) << 24) |
               (static_cast<uint32_t>(data_[pos_ + 1]) << 16) |
               (static_cast<uint32_t>(data_[pos_ + 2]) << 8) |
               static_cast<uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

uint64_t XdrDecoder::get_u64() {
  const uint64_t hi = get_u32();
  const uint64_t lo = get_u32();
  return (hi << 32) | lo;
}

bool XdrDecoder::get_bool() {
  const uint32_t v = get_u32();
  if (v > 1) throw XdrError("bool out of range");
  return v != 0;
}

void XdrDecoder::skip_pad() {
  while (pos_ % 4 != 0) {
    need(1);
    if (data_[pos_] != std::byte{0}) throw XdrError("nonzero padding");
    ++pos_;
  }
}

std::vector<std::byte> XdrDecoder::get_opaque_fixed(size_t len) {
  need(len);
  std::vector<std::byte> out = util::BufferPool::take(len);
  out.assign(data_.begin() + static_cast<ptrdiff_t>(pos_),
             data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
  pos_ += len;
  skip_pad();
  return out;
}

std::vector<std::byte> XdrDecoder::get_opaque_var() {
  const uint32_t len = get_u32();
  if (len > data_.size()) throw XdrError("opaque length exceeds buffer");
  return get_opaque_fixed(len);
}

std::string XdrDecoder::get_string() {
  const auto bytes = get_opaque_var();
  std::string s;
  s.reserve(bytes.size());
  for (std::byte b : bytes) s.push_back(static_cast<char>(b));
  return s;
}

Payload XdrDecoder::get_payload() {
  const bool is_inline = get_bool();
  if (is_inline) return Payload::inline_bytes(get_opaque_var());
  return Payload::virtual_bytes(get_u64());
}

}  // namespace dpnfs::rpc
