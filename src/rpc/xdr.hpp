// XDR (RFC 4506) serialization.
//
// Every message that crosses the simulated wire is encoded and decoded
// through these codecs, so the protocol engines on either side can only
// communicate through well-defined wire formats — exactly as a real NFS
// implementation would.  Quantities are big-endian; opaque/string data is
// padded to 4-byte alignment.
//
// Bulk file data travels as a `Payload` (see payload.hpp): either inline
// bytes (fully materialized, used by tests and small I/O) or a counted
// virtual extent (used by large benchmarks to avoid gigabytes of memcpy
// while still charging the wire for every byte).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rpc/payload.hpp"
#include "util/pool.hpp"

namespace dpnfs::rpc {

/// Thrown on malformed or truncated XDR input.
class XdrError : public std::runtime_error {
 public:
  explicit XdrError(const std::string& what) : std::runtime_error(what) {}
};

class XdrEncoder {
 public:
  // Encoder buffers come from (and return to) the byte-buffer pool: one
  // encoder per message means steady-state encoding allocates nothing.
  XdrEncoder() : buf_(util::BufferPool::take(192)) {}
  XdrEncoder(XdrEncoder&&) = default;
  XdrEncoder& operator=(XdrEncoder&& other) noexcept {
    if (this != &other) {
      util::BufferPool::give(std::move(buf_));
      buf_ = std::move(other.buf_);
      virtual_bytes_ = other.virtual_bytes_;
    }
    return *this;
  }
  XdrEncoder(const XdrEncoder&) = default;
  XdrEncoder& operator=(const XdrEncoder&) = default;
  ~XdrEncoder() { util::BufferPool::give(std::move(buf_)); }

  // Hot primitives are inline: a single 4/8-byte insert (one capacity
  // check) instead of per-byte push_backs — these run tens of millions of
  // times in a scale sweep.
  void put_u32(uint32_t v) {
    const std::byte b[4] = {
        static_cast<std::byte>((v >> 24) & 0xFF),
        static_cast<std::byte>((v >> 16) & 0xFF),
        static_cast<std::byte>((v >> 8) & 0xFF),
        static_cast<std::byte>(v & 0xFF)};
    buf_.insert(buf_.end(), b, b + 4);
  }
  void put_u64(uint64_t v) {
    const std::byte b[8] = {
        static_cast<std::byte>((v >> 56) & 0xFF),
        static_cast<std::byte>((v >> 48) & 0xFF),
        static_cast<std::byte>((v >> 40) & 0xFF),
        static_cast<std::byte>((v >> 32) & 0xFF),
        static_cast<std::byte>((v >> 24) & 0xFF),
        static_cast<std::byte>((v >> 16) & 0xFF),
        static_cast<std::byte>((v >> 8) & 0xFF),
        static_cast<std::byte>(v & 0xFF)};
    buf_.insert(buf_.end(), b, b + 8);
  }
  void put_i32(int32_t v) { put_u32(static_cast<uint32_t>(v)); }
  void put_i64(int64_t v) { put_u64(static_cast<uint64_t>(v)); }
  void put_bool(bool v) { put_u32(v ? 1 : 0); }

  /// Fixed-length opaque: bytes plus padding, no length prefix.
  void put_opaque_fixed(std::span<const std::byte> data);

  /// Variable-length opaque: u32 length, bytes, padding.
  void put_opaque_var(std::span<const std::byte> data);

  void put_string(std::string_view s);

  /// Bulk data: discriminant + length (+ bytes when inline).  The virtual
  /// portion is charged to `wire_size()` but not materialized.
  void put_payload(const Payload& p);

  template <typename T>
  void put(const T& value) {
    value.encode(*this);
  }

  template <typename T>
  void put_array(const std::vector<T>& items) {
    put_u32(static_cast<uint32_t>(items.size()));
    for (const auto& item : items) put(item);
  }

  /// Overwrites a previously written u32 at byte position `pos` (used to
  /// back-patch counts, e.g. the COMPOUND op count).
  void patch_u32(size_t pos, uint32_t v);

  /// Adds unmaterialized bytes to the wire-size accounting without writing
  /// anything (used when flattening nested encoders).
  void add_virtual_bytes(uint64_t bytes) noexcept { virtual_bytes_ += bytes; }

  /// Bytes materialized so far.
  size_t encoded_size() const noexcept { return buf_.size(); }

  /// Total bytes this message occupies on the wire, including virtual
  /// payload bytes that were counted but not materialized.
  uint64_t wire_size() const noexcept { return buf_.size() + virtual_bytes_; }

  /// Consumes the encoder, returning the materialized buffer.  The caller
  /// pairs it with `wire_size()` when handing it to the transport.
  std::vector<std::byte> take() && { return std::move(buf_); }

 private:
  void pad();

  std::vector<std::byte> buf_;
  uint64_t virtual_bytes_ = 0;
};

class XdrDecoder {
 public:
  explicit XdrDecoder(std::span<const std::byte> data) : data_(data) {}

  uint32_t get_u32();
  uint64_t get_u64();
  int32_t get_i32() { return static_cast<int32_t>(get_u32()); }
  int64_t get_i64() { return static_cast<int64_t>(get_u64()); }
  bool get_bool();

  std::vector<std::byte> get_opaque_fixed(size_t len);
  std::vector<std::byte> get_opaque_var();
  std::string get_string();
  Payload get_payload();

  template <typename T>
  T get() {
    return T::decode(*this);
  }

  template <typename T>
  std::vector<T> get_array() {
    const uint32_t n = get_u32();
    if (n > kMaxArrayLen) throw XdrError("array length implausible");
    std::vector<T> items;
    items.reserve(n);
    for (uint32_t i = 0; i < n; ++i) items.push_back(get<T>());
    return items;
  }

  size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  static constexpr uint32_t kMaxArrayLen = 1u << 20;

  void need(size_t n) const {
    if (pos_ + n > data_.size()) throw XdrError("XDR underflow");
  }
  void skip_pad();

  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

}  // namespace dpnfs::rpc
