// Bulk-data representation for the simulated data path.
//
// A Payload is a run of file bytes.  Tests and small-I/O paths carry the
// bytes inline, so end-to-end data integrity is checked through every layer
// (client cache -> XDR -> wire -> server -> object store and back).  Large
// benchmarks use *virtual* payloads: the byte count is preserved (and billed
// to NICs and disks) but no buffer is allocated.
//
// Inline payloads are scatter-gather: content lives in an ordered list of
// fragments, and `append(Payload&&)` splices the other payload's fragments
// in without copying a byte.  That lets the client coalesce adjacent dirty
// extents into one WRITE, and reassemble striped READ replies, in O(#pieces)
// instead of O(bytes).  The fragmentation is invisible on the wire (XDR
// emits one contiguous opaque) and to comparisons; `data()` gathers into a
// single buffer on first use for callers that need contiguous bytes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

namespace dpnfs::rpc {

class Payload {
 public:
  Payload() = default;

  /// Virtual payload: `bytes` of unmaterialized data.
  static Payload virtual_bytes(uint64_t bytes) {
    Payload p;
    p.size_ = bytes;
    return p;
  }

  /// Inline payload holding real content.
  static Payload inline_bytes(std::vector<std::byte> data) {
    Payload p;
    p.size_ = data.size();
    if (!data.empty()) p.frags_.push_back(std::move(data));
    p.inline_ = true;
    return p;
  }

  static Payload from_string(std::string_view s) {
    std::vector<std::byte> v(s.size());
    for (size_t i = 0; i < s.size(); ++i) v[i] = static_cast<std::byte>(s[i]);
    return inline_bytes(std::move(v));
  }

  uint64_t size() const noexcept { return size_; }
  bool is_inline() const noexcept { return inline_; }

  /// Contiguous view of the content.  A multi-fragment payload is gathered
  /// into one buffer on first use (the one place fragmentation costs a
  /// copy); single-fragment and virtual payloads are free.
  std::span<const std::byte> data() const {
    if (frags_.empty()) return {};
    if (frags_.size() > 1) gather();
    return frags_.front();
  }

  /// The scatter-gather fragment list (empty for virtual payloads).
  const std::vector<std::vector<std::byte>>& fragments() const noexcept {
    return frags_;
  }
  size_t fragment_count() const noexcept { return frags_.size(); }

  /// Sub-range [offset, offset+len).  Virtual payloads slice virtually.
  Payload slice(uint64_t offset, uint64_t len) const {
    if (offset > size_ || offset + len > size_) {
      throw std::out_of_range("Payload::slice out of range");
    }
    if (!inline_) return virtual_bytes(len);
    std::vector<std::byte> out;
    out.reserve(len);
    uint64_t pos = 0;  // running offset of the current fragment
    for (const auto& f : frags_) {
      const uint64_t lo = std::max(offset, pos);
      const uint64_t hi = std::min(offset + len, pos + f.size());
      if (lo < hi) {
        out.insert(out.end(), f.begin() + static_cast<ptrdiff_t>(lo - pos),
                   f.begin() + static_cast<ptrdiff_t>(hi - pos));
      }
      pos += f.size();
      if (pos >= offset + len) break;
    }
    return inline_bytes(std::move(out));
  }

  /// Concatenates `other` after this payload by splicing its fragments in —
  /// no byte copy.  Mixing inline and virtual degrades to virtual (content
  /// cannot be trusted past a virtual gap).  Appending to an empty payload
  /// adopts `other` wholesale.
  void append(Payload&& other) {
    if (size_ == 0) {
      *this = std::move(other);
      return;
    }
    if (other.size_ == 0) return;
    if (inline_ && other.inline_) {
      for (auto& f : other.frags_) frags_.push_back(std::move(f));
      size_ += other.size_;
      return;
    }
    size_ += other.size_;
    inline_ = false;
    frags_.clear();
  }

  /// Copying form for callers that must keep `other` intact.
  void append(const Payload& other) { append(Payload(other)); }

  /// Content equality; fragmentation boundaries are irrelevant.
  bool operator==(const Payload& other) const noexcept {
    if (size_ != other.size_ || inline_ != other.inline_) return false;
    if (!inline_) return true;
    // Walk both fragment lists with cursors; no gather needed.
    size_t ai = 0, bi = 0, ao = 0, bo = 0;
    uint64_t left = size_;
    while (left > 0) {
      while (ai < frags_.size() && ao == frags_[ai].size()) ++ai, ao = 0;
      while (bi < other.frags_.size() && bo == other.frags_[bi].size())
        ++bi, bo = 0;
      const size_t n = std::min({frags_[ai].size() - ao,
                                 other.frags_[bi].size() - bo,
                                 static_cast<size_t>(left)});
      if (std::memcmp(frags_[ai].data() + ao, other.frags_[bi].data() + bo,
                      n) != 0) {
        return false;
      }
      ao += n;
      bo += n;
      left -= n;
    }
    return true;
  }

 private:
  void gather() const {
    std::vector<std::byte> flat;
    flat.reserve(size_);
    for (const auto& f : frags_) flat.insert(flat.end(), f.begin(), f.end());
    frags_.clear();
    frags_.push_back(std::move(flat));
  }

  uint64_t size_ = 0;
  bool inline_ = false;
  /// Inline content in order; mutable so `data()` can gather lazily.
  mutable std::vector<std::vector<std::byte>> frags_;
};

}  // namespace dpnfs::rpc
