// Bulk-data representation for the simulated data path.
//
// A Payload is a run of file bytes.  Tests and small-I/O paths carry the
// bytes inline, so end-to-end data integrity is checked through every layer
// (client cache -> XDR -> wire -> server -> object store and back).  Large
// benchmarks use *virtual* payloads: the byte count is preserved (and billed
// to NICs and disks) but no buffer is allocated.
//
// Inline payloads are scatter-gather: content is an ordered list of
// *fragment views* — shared-ownership references into immutable backing
// buffers.  `append(Payload&&)` splices fragments, and `slice()` builds
// sub-views, without copying a byte; the same backing buffer can be
// referenced by many payloads at different offsets (a striped WRITE slices
// one application buffer into per-DS payloads for free).  Fragmentation is
// invisible on the wire (XDR emits one contiguous opaque) and to
// comparisons.  The only copy on the whole path is `data()` gathering a
// multi-fragment payload into one pooled buffer on first use; the
// thread-local `copy_stats()` counters let tests pin exactly how many bytes
// that costs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "util/pool.hpp"

namespace dpnfs::rpc {

/// Copy accounting for Payload (thread-local): how often and how many bytes
/// `data()` had to gather.  Zero-copy regressions are pinned against these.
struct PayloadCopyStats {
  uint64_t gathers = 0;
  uint64_t gathered_bytes = 0;
};

class Payload {
 public:
  /// A view into an immutable, shared backing buffer.
  struct Fragment {
    std::shared_ptr<const std::vector<std::byte>> buf;
    uint64_t off = 0;
    uint64_t len = 0;

    std::span<const std::byte> view() const noexcept {
      return {buf->data() + off, static_cast<size_t>(len)};
    }
  };

  using CopyStats = PayloadCopyStats;
  static CopyStats copy_stats() noexcept { return copy_stats_; }
  static void reset_copy_stats() noexcept { copy_stats_ = CopyStats{}; }

  Payload() = default;

  /// Virtual payload: `bytes` of unmaterialized data.
  static Payload virtual_bytes(uint64_t bytes) {
    Payload p;
    p.size_ = bytes;
    return p;
  }

  /// Inline payload holding real content.  The buffer becomes immutable and
  /// shared; on release it is recycled through the byte-buffer pool.
  static Payload inline_bytes(std::vector<std::byte> data) {
    Payload p;
    p.size_ = data.size();
    if (!data.empty()) {
      const uint64_t len = data.size();
      p.frags_.push_back(Fragment{share(std::move(data)), 0, len});
    }
    p.inline_ = true;
    return p;
  }

  static Payload from_string(std::string_view s) {
    std::vector<std::byte> v(s.size());
    for (size_t i = 0; i < s.size(); ++i) v[i] = static_cast<std::byte>(s[i]);
    return inline_bytes(std::move(v));
  }

  uint64_t size() const noexcept { return size_; }
  bool is_inline() const noexcept { return inline_; }

  /// Contiguous view of the content.  A multi-fragment payload is gathered
  /// into one pooled buffer on first use (the one place fragmentation costs
  /// a copy); single-fragment and virtual payloads are zero-copy.
  std::span<const std::byte> data() const {
    if (frags_.empty()) return {};
    if (frags_.size() > 1) gather();
    return frags_.front().view();
  }

  /// The scatter-gather fragment list (empty for virtual payloads).
  const std::vector<Fragment>& fragments() const noexcept { return frags_; }
  size_t fragment_count() const noexcept { return frags_.size(); }

  /// Sub-range [offset, offset+len).  Inline payloads slice by building
  /// views into the same backing buffers — no bytes move.  Virtual payloads
  /// slice virtually.
  Payload slice(uint64_t offset, uint64_t len) const {
    if (offset > size_ || offset + len > size_) {
      throw std::out_of_range("Payload::slice out of range");
    }
    if (!inline_) return virtual_bytes(len);
    Payload out;
    out.inline_ = true;
    out.size_ = len;
    uint64_t pos = 0;  // running offset of the current fragment
    for (const auto& f : frags_) {
      const uint64_t lo = std::max(offset, pos);
      const uint64_t hi = std::min(offset + len, pos + f.len);
      if (lo < hi) {
        out.frags_.push_back(
            Fragment{f.buf, f.off + (lo - pos), hi - lo});
      }
      pos += f.len;
      if (pos >= offset + len) break;
    }
    return out;
  }

  /// Concatenates `other` after this payload by splicing its fragments in —
  /// no byte copy.  Mixing inline and virtual degrades to virtual (content
  /// cannot be trusted past a virtual gap).  Appending to an empty payload
  /// adopts `other` wholesale.
  void append(Payload&& other) {
    if (size_ == 0) {
      *this = std::move(other);
      return;
    }
    if (other.size_ == 0) return;
    if (inline_ && other.inline_) {
      for (auto& f : other.frags_) frags_.push_back(std::move(f));
      size_ += other.size_;
      return;
    }
    size_ += other.size_;
    inline_ = false;
    frags_.clear();
  }

  /// Copying form for callers that must keep `other` intact.  Fragments are
  /// views, so this copies refcounts, not bytes.
  void append(const Payload& other) { append(Payload(other)); }

  /// Content equality; fragmentation boundaries are irrelevant.
  bool operator==(const Payload& other) const noexcept {
    if (size_ != other.size_ || inline_ != other.inline_) return false;
    if (!inline_) return true;
    // Walk both fragment lists with cursors; no gather needed.
    size_t ai = 0, bi = 0, ao = 0, bo = 0;
    uint64_t left = size_;
    while (left > 0) {
      while (ai < frags_.size() && ao == frags_[ai].len) ++ai, ao = 0;
      while (bi < other.frags_.size() && bo == other.frags_[bi].len)
        ++bi, bo = 0;
      const size_t n = static_cast<size_t>(
          std::min({frags_[ai].len - ao, other.frags_[bi].len - bo,
                    static_cast<uint64_t>(left)}));
      if (std::memcmp(frags_[ai].view().data() + ao,
                      other.frags_[bi].view().data() + bo, n) != 0) {
        return false;
      }
      ao += n;
      bo += n;
      left -= n;
    }
    return true;
  }

 private:
  /// Wraps a buffer for shared immutable use; the deleter retires the
  /// storage through the BufferPool so payload churn recycles allocations.
  static std::shared_ptr<const std::vector<std::byte>> share(
      std::vector<std::byte> v) {
    auto* owned = new std::vector<std::byte>(std::move(v));
    return std::shared_ptr<const std::vector<std::byte>>(
        owned, [](const std::vector<std::byte>* p) {
          auto* mut = const_cast<std::vector<std::byte>*>(p);
          util::BufferPool::give(std::move(*mut));
          delete mut;
        });
  }

  void gather() const {
    std::vector<std::byte> flat = util::BufferPool::take(size_);
    for (const auto& f : frags_) {
      const auto v = f.view();
      flat.insert(flat.end(), v.begin(), v.end());
    }
    ++copy_stats_.gathers;
    copy_stats_.gathered_bytes += flat.size();
    const uint64_t len = flat.size();
    frags_.clear();
    frags_.push_back(Fragment{share(std::move(flat)), 0, len});
  }

  static inline thread_local CopyStats copy_stats_;

  uint64_t size_ = 0;
  bool inline_ = false;
  /// Fragment views in order; mutable so `data()` can gather lazily.
  mutable std::vector<Fragment> frags_;
};

}  // namespace dpnfs::rpc
