// Bulk-data representation for the simulated data path.
//
// A Payload is a run of file bytes.  Tests and small-I/O paths carry the
// bytes inline, so end-to-end data integrity is checked through every layer
// (client cache -> XDR -> wire -> server -> object store and back).  Large
// benchmarks use *virtual* payloads: the byte count is preserved (and billed
// to NICs and disks) but no buffer is allocated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace dpnfs::rpc {

class Payload {
 public:
  Payload() = default;

  /// Virtual payload: `bytes` of unmaterialized data.
  static Payload virtual_bytes(uint64_t bytes) {
    Payload p;
    p.size_ = bytes;
    return p;
  }

  /// Inline payload holding real content.
  static Payload inline_bytes(std::vector<std::byte> data) {
    Payload p;
    p.size_ = data.size();
    p.data_ = std::move(data);
    p.inline_ = true;
    return p;
  }

  static Payload from_string(std::string_view s) {
    std::vector<std::byte> v(s.size());
    for (size_t i = 0; i < s.size(); ++i) v[i] = static_cast<std::byte>(s[i]);
    return inline_bytes(std::move(v));
  }

  uint64_t size() const noexcept { return size_; }
  bool is_inline() const noexcept { return inline_; }
  std::span<const std::byte> data() const noexcept { return data_; }

  /// Sub-range [offset, offset+len).  Virtual payloads slice virtually.
  Payload slice(uint64_t offset, uint64_t len) const {
    if (offset > size_ || offset + len > size_) {
      throw std::out_of_range("Payload::slice out of range");
    }
    if (!inline_) return virtual_bytes(len);
    std::vector<std::byte> out(
        data_.begin() + static_cast<ptrdiff_t>(offset),
        data_.begin() + static_cast<ptrdiff_t>(offset + len));
    return inline_bytes(std::move(out));
  }

  /// Concatenates `other` after this payload.  Mixing inline and virtual
  /// degrades to virtual (content cannot be trusted past a virtual gap).
  /// Appending to an empty payload adopts `other` wholesale.
  void append(const Payload& other) {
    if (size_ == 0) {
      *this = other;
      return;
    }
    if (other.size_ == 0) return;
    if (inline_ && other.inline_) {
      data_.insert(data_.end(), other.data_.begin(), other.data_.end());
      size_ += other.size_;
      return;
    }
    size_ += other.size_;
    inline_ = false;
    data_.clear();
  }

  bool operator==(const Payload& other) const noexcept {
    if (size_ != other.size_ || inline_ != other.inline_) return false;
    return !inline_ || data_ == other.data_;
  }

 private:
  uint64_t size_ = 0;
  bool inline_ = false;
  std::vector<std::byte> data_;
};

}  // namespace dpnfs::rpc
