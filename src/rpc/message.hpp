// ONC-RPC style message framing (simplified RFC 5531).
//
// Calls carry (xid, program, version, procedure, principal); replies carry
// (xid, status).  The principal string stands in for RPCSEC_GSS credentials:
// it crosses the wire with every call and servers evaluate it, preserving
// the paper's "NFSv4.1 security on the control and data paths" property
// without a Kerberos substrate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rpc/xdr.hpp"
#include "util/pool.hpp"

namespace dpnfs::rpc {

/// Program numbers for the protocols in this reproduction.
enum class Program : uint32_t {
  kNfs = 100003,        ///< NFSv4 / NFSv4.1 (incl. pNFS ops)
  kPvfsMeta = 400100,   ///< PVFS2-like metadata protocol
  kPvfsIo = 400101,     ///< PVFS2-like storage/IO protocol
  kPvfsMgmt = 400102,   ///< PVFS2-like management protocol
};

/// CallHeader::flags bit: the caller's trace carries a head-sampling "keep
/// span detail" verdict.  Servers copy it into the child spans they open so
/// a trace is sampled (or not) end-to-end, never per-hop.
inline constexpr uint32_t kFlagSampled = 0x1;

/// CallHeader::flags bit: an optional `tenant_id` u32 follows the flags
/// word.  Set by the encoder iff `tenant_id != 0`, so legacy (untenanted)
/// traffic stays byte-identical to the pre-tenant wire layout.
inline constexpr uint32_t kFlagHasTenant = 0x2;

struct CallHeader {
  uint32_t xid = 0;
  uint32_t prog = 0;
  uint32_t vers = 0;
  uint32_t proc = 0;
  // Trace propagation (obs layer): the caller's trace id and span id, so a
  // server can parent its own span under the RPC that reached it.  Zero
  // means untraced.  Carried on the wire like everything else — tracing a
  // distributed path has a (small, visible) byte cost.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint32_t flags = 0;  ///< kFlagSampled and future trace bits
  std::string principal;
  /// Tenant/workload identity the caller acts for (0: none).  Flag-gated
  /// on the wire: encoded (and kFlagHasTenant raised) only when nonzero,
  /// so tenant-free traffic keeps the legacy byte layout exactly.
  uint32_t tenant_id = 0;

  void encode(XdrEncoder& enc) const {
    enc.put_u32(xid);
    enc.put_u32(prog);
    enc.put_u32(vers);
    enc.put_u32(proc);
    enc.put_u64(trace_id);
    enc.put_u64(span_id);
    enc.put_u32(tenant_id != 0 ? (flags | kFlagHasTenant)
                               : (flags & ~kFlagHasTenant));
    if (tenant_id != 0) enc.put_u32(tenant_id);
    enc.put_string(principal);
  }
  static CallHeader decode(XdrDecoder& dec) {
    CallHeader h;
    h.xid = dec.get_u32();
    h.prog = dec.get_u32();
    h.vers = dec.get_u32();
    h.proc = dec.get_u32();
    h.trace_id = dec.get_u64();
    h.span_id = dec.get_u64();
    h.flags = dec.get_u32();
    if ((h.flags & kFlagHasTenant) != 0) h.tenant_id = dec.get_u32();
    h.principal = dec.get_string();
    return h;
  }
};

enum class ReplyStatus : uint32_t {
  kAccepted = 0,
  kProgUnavail = 1,
  kProcUnavail = 2,
  kGarbageArgs = 3,
  kSystemErr = 4,
  kAuthError = 5,
};

struct ReplyHeader {
  uint32_t xid = 0;
  ReplyStatus status = ReplyStatus::kAccepted;

  void encode(XdrEncoder& enc) const {
    enc.put_u32(xid);
    enc.put_u32(static_cast<uint32_t>(status));
  }
  static ReplyHeader decode(XdrDecoder& dec) {
    ReplyHeader h;
    h.xid = dec.get_u32();
    const uint32_t s = dec.get_u32();
    if (s > static_cast<uint32_t>(ReplyStatus::kAuthError)) {
      throw XdrError("bad reply status");
    }
    h.status = static_cast<ReplyStatus>(s);
    return h;
  }
};

/// A framed message: materialized header/metadata bytes plus the total
/// on-the-wire size (which includes virtual bulk-data bytes).
struct WireBuffer {
  std::vector<std::byte> bytes;
  uint64_t wire_size = 0;

  WireBuffer() = default;
  WireBuffer(std::vector<std::byte> b, uint64_t ws)
      : bytes(std::move(b)), wire_size(ws) {}
  WireBuffer(WireBuffer&&) = default;
  WireBuffer& operator=(WireBuffer&&) = default;
  WireBuffer(const WireBuffer&) = default;
  WireBuffer& operator=(const WireBuffer&) = default;
  // Framing buffers churn once per message; retire them into the pool.
  ~WireBuffer() { util::BufferPool::give(std::move(bytes)); }

  static WireBuffer from_encoder(XdrEncoder&& enc) {
    WireBuffer w;
    w.wire_size = enc.wire_size();
    w.bytes = std::move(enc).take();
    return w;
  }
};

}  // namespace dpnfs::rpc
