#include "rpc/fabric.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace dpnfs::rpc {

using sim::Task;

void RpcFabric::bind(RpcAddress addr, RpcServer* server) {
  const auto [it, inserted] = servers_.emplace(addr, server);
  (void)it;
  if (!inserted) throw std::logic_error("RPC address already bound");
}

void RpcFabric::unbind(RpcAddress addr) { servers_.erase(addr); }

Task<WireBuffer> RpcFabric::call(sim::Node& from, RpcAddress to,
                                 WireBuffer request) {
  const auto it = servers_.find(to);
  if (it == servers_.end()) throw std::logic_error("RPC call to unbound address");
  RpcServer* server = it->second;

  co_await net_.transfer(from, server->node(), request.wire_size + overhead_);

  sim::Oneshot<WireBuffer> reply(net_.simulation());
  server->queue_.push(RpcServer::Pending{std::move(request), from.id(), &reply});
  co_return co_await reply.take();
}

RpcServer::RpcServer(RpcFabric& fabric, sim::Node& node, uint16_t port,
                     uint32_t worker_count, RpcService service)
    : fabric_(fabric),
      node_(node),
      port_(port),
      worker_count_(worker_count),
      service_(std::move(service)),
      queue_(fabric.simulation()),
      workers_done_(fabric.simulation()) {
  fabric_.bind(address(), this);
}

RpcServer::~RpcServer() { fabric_.unbind(address()); }

void RpcServer::start() {
  if (started_) return;
  started_ = true;
  for (uint32_t i = 0; i < worker_count_; ++i) workers_done_.spawn(worker());
}

void RpcServer::stop() { queue_.close(); }

Task<void> RpcServer::worker() {
  while (true) {
    auto pending = co_await queue_.recv();
    if (!pending) break;

    XdrDecoder dec(pending->request.bytes);
    XdrEncoder enc;
    CallHeader header;
    try {
      header = CallHeader::decode(dec);
    } catch (const XdrError&) {
      // Unparseable call: no xid to echo; drop it (a real server would
      // sever the connection).
      util::logf(util::LogLevel::kWarn, "rpc.server",
                 fabric_.simulation().now(), "dropping unparseable call");
      continue;
    }

    ReplyHeader reply_header{header.xid, ReplyStatus::kAccepted};
    XdrEncoder body;
    try {
      CallContext ctx{header, pending->client_node};
      co_await service_(ctx, dec, body);
    } catch (const XdrError& e) {
      util::logf(util::LogLevel::kWarn, "rpc.server",
                 fabric_.simulation().now(), "garbage args: %s", e.what());
      reply_header.status = ReplyStatus::kGarbageArgs;
      body = XdrEncoder{};
    } catch (const std::exception& e) {
      util::logf(util::LogLevel::kError, "rpc.server",
                 fabric_.simulation().now(), "service error: %s", e.what());
      reply_header.status = ReplyStatus::kSystemErr;
      body = XdrEncoder{};
    }

    reply_header.encode(enc);
    const uint64_t body_virtual = body.wire_size() - body.encoded_size();
    const std::vector<std::byte> body_bytes = std::move(body).take();
    enc.put_opaque_fixed(body_bytes);  // already 4-aligned: offsets preserved
    const uint64_t reply_wire_size = enc.wire_size() + body_virtual;
    WireBuffer reply{std::move(enc).take(), reply_wire_size};
    ++requests_served_;

    co_await fabric_.network().transfer(
        node_, fabric_.network().node(pending->client_node),
        reply.wire_size + fabric_.per_message_overhead());
    pending->reply->set(std::move(reply));
  }
}

Task<RpcClient::Reply> RpcClient::call(RpcAddress to, Program prog,
                                       uint32_t vers, uint32_t proc,
                                       XdrEncoder args) {
  XdrEncoder enc;
  CallHeader header{next_xid_++, static_cast<uint32_t>(prog), vers, proc,
                    principal_};
  header.encode(enc);
  const uint64_t args_virtual = args.wire_size() - args.encoded_size();
  enc.put_opaque_fixed(std::move(args).take());

  WireBuffer request{std::move(enc).take(), 0};
  request.wire_size = request.bytes.size() + args_virtual;

  WireBuffer raw = co_await fabric_.call(node_, to, std::move(request));

  Reply reply;
  reply.buffer = std::move(raw.bytes);
  XdrDecoder dec(reply.buffer);
  const ReplyHeader rh = ReplyHeader::decode(dec);
  reply.status = rh.status;
  reply.body_offset = reply.buffer.size() - dec.remaining();
  co_return reply;
}

}  // namespace dpnfs::rpc
