#include "rpc/fabric.hpp"

#include <stdexcept>

#include "util/format.hpp"
#include "util/log.hpp"

namespace dpnfs::rpc {

using sim::Task;

const char* program_component(Program prog) {
  switch (prog) {
    case Program::kNfs: return "nfs";
    case Program::kPvfsMeta: return "pvfs.meta";
    case Program::kPvfsIo: return "pvfs.io";
    case Program::kPvfsMgmt: return "pvfs.mgmt";
  }
  return "rpc";
}

void RpcFabric::bind(RpcAddress addr, RpcServer* server) {
  const auto [it, inserted] = servers_.emplace(addr, server);
  (void)it;
  if (!inserted) throw std::logic_error("RPC address already bound");
}

void RpcFabric::unbind(RpcAddress addr) { servers_.erase(addr); }

Task<WireBuffer> RpcFabric::call(sim::Node& from, RpcAddress to,
                                 WireBuffer request) {
  const auto it = servers_.find(to);
  if (it == servers_.end()) throw std::logic_error("RPC call to unbound address");
  RpcServer* server = it->second;

  co_await net_.transfer(from, server->node(), request.wire_size + overhead_);

  sim::Oneshot<WireBuffer> reply(net_.simulation());
  server->queue_.push(RpcServer::Pending{std::move(request), from.id(), &reply,
                                         net_.simulation().now()});
  co_return co_await reply.take();
}

RpcServer::RpcServer(RpcFabric& fabric, sim::Node& node, uint16_t port,
                     uint32_t worker_count, RpcService service)
    : fabric_(fabric),
      node_(node),
      port_(port),
      worker_count_(worker_count),
      service_(std::move(service)),
      queue_(fabric.simulation()),
      workers_done_(fabric.simulation()) {
  if (obs::MetricsRegistry* reg = fabric_.metrics()) {
    const std::string& n = node_.name();
    m_requests_ = &reg->counter(n, "rpc", "requests");
    m_bytes_in_ = &reg->counter(n, "rpc", "wire_bytes_in");
    m_bytes_out_ = &reg->counter(n, "rpc", "wire_bytes_out");
    m_queue_us_ =
        &reg->histogram(n, "rpc", "queue_us", obs::latency_us_boundaries());
    m_service_us_ =
        &reg->histogram(n, "rpc", "service_us", obs::latency_us_boundaries());
  } else {
    m_requests_ = &obs::MetricsRegistry::null_counter();
    m_bytes_in_ = &obs::MetricsRegistry::null_counter();
    m_bytes_out_ = &obs::MetricsRegistry::null_counter();
    m_queue_us_ = &obs::MetricsRegistry::null_histogram();
    m_service_us_ = &obs::MetricsRegistry::null_histogram();
  }
  fabric_.bind(address(), this);
}

RpcServer::~RpcServer() { fabric_.unbind(address()); }

void RpcServer::start() {
  if (started_) return;
  started_ = true;
  for (uint32_t i = 0; i < worker_count_; ++i) workers_done_.spawn(worker());
}

void RpcServer::stop() { queue_.close(); }

Task<void> RpcServer::worker() {
  while (true) {
    auto pending = co_await queue_.recv();
    if (!pending) break;

    const sim::Time picked_up = fabric_.simulation().now();
    const sim::Duration queue_wait = picked_up - pending->enqueued;
    queue_wait_total_ += queue_wait;
    m_queue_us_->observe(static_cast<double>(queue_wait) * 1e-3);

    XdrDecoder dec(pending->request.bytes);
    XdrEncoder enc;
    CallHeader header;
    try {
      header = CallHeader::decode(dec);
    } catch (const XdrError&) {
      // Unparseable call: no xid to echo; drop it (a real server would
      // sever the connection).
      util::logf(util::LogLevel::kWarn, "rpc.server",
                 fabric_.simulation().now(), "dropping unparseable call");
      continue;
    }

    // Open a server span under the caller's wire span so nested RPCs issued
    // by the service stay in the same trace.
    obs::Tracer* tracer = fabric_.tracer();
    obs::TraceContext server_span;
    if (tracer != nullptr && tracer->enabled() && header.trace_id != 0) {
      server_span = tracer->begin(
          obs::TraceContext{header.trace_id, header.span_id});
    }

    ReplyHeader reply_header{header.xid, ReplyStatus::kAccepted};
    XdrEncoder body;
    try {
      CallContext ctx{header, pending->client_node, server_span};
      co_await service_(ctx, dec, body);
    } catch (const XdrError& e) {
      util::logf(util::LogLevel::kWarn, "rpc.server",
                 fabric_.simulation().now(), "garbage args: %s", e.what());
      reply_header.status = ReplyStatus::kGarbageArgs;
      body = XdrEncoder{};
    } catch (const std::exception& e) {
      util::logf(util::LogLevel::kError, "rpc.server",
                 fabric_.simulation().now(), "service error: %s", e.what());
      reply_header.status = ReplyStatus::kSystemErr;
      body = XdrEncoder{};
    }

    reply_header.encode(enc);
    const uint64_t body_virtual = body.wire_size() - body.encoded_size();
    const std::vector<std::byte> body_bytes = std::move(body).take();
    enc.put_opaque_fixed(body_bytes);  // already 4-aligned: offsets preserved
    const uint64_t reply_wire_size = enc.wire_size() + body_virtual;
    WireBuffer reply{std::move(enc).take(), reply_wire_size};
    ++requests_served_;

    const sim::Time done = fabric_.simulation().now();
    m_requests_->inc();
    m_bytes_in_->add(pending->request.wire_size);
    m_bytes_out_->add(reply.wire_size);
    m_service_us_->observe(static_cast<double>(done - picked_up) * 1e-3);
    if (server_span.valid()) {
      tracer->record(obs::Span{
          header.trace_id, server_span.span_id, header.span_id,
          obs::SpanKind::kServerExec,
          util::sformat("%s/%u",
                        program_component(static_cast<Program>(header.prog)),
                        header.proc),
          node_.name(), picked_up, done, queue_wait,
          reply.wire_size, pending->request.wire_size});
    }

    co_await fabric_.network().transfer(
        node_, fabric_.network().node(pending->client_node),
        reply.wire_size + fabric_.per_message_overhead());
    pending->reply->set(std::move(reply));
  }
}

Task<RpcClient::Reply> RpcClient::call(RpcAddress to, Program prog,
                                       uint32_t vers, uint32_t proc,
                                       XdrEncoder args,
                                       obs::TraceContext parent) {
  obs::Tracer* tracer = fabric_.tracer();
  obs::TraceContext span;
  if (tracer != nullptr && tracer->enabled()) span = tracer->begin(parent);

  XdrEncoder enc;
  CallHeader header{next_xid_++, static_cast<uint32_t>(prog), vers, proc,
                    span.trace_id, span.span_id, principal_};
  header.encode(enc);
  const uint64_t args_virtual = args.wire_size() - args.encoded_size();
  enc.put_opaque_fixed(std::move(args).take());

  WireBuffer request{std::move(enc).take(), 0};
  request.wire_size = request.bytes.size() + args_virtual;
  const uint64_t request_wire = request.wire_size;

  const sim::Time sent = fabric_.simulation().now();
  WireBuffer raw = co_await fabric_.call(node_, to, std::move(request));
  if (span.valid()) {
    tracer->record(obs::Span{
        span.trace_id, span.span_id, parent.span_id,
        obs::SpanKind::kClientCall,
        util::sformat("%s/%u", program_component(prog), proc), node_.name(),
        sent, fabric_.simulation().now(), 0, request_wire, raw.wire_size});
  }

  Reply reply;
  reply.buffer = std::move(raw.bytes);
  XdrDecoder dec(reply.buffer);
  const ReplyHeader rh = ReplyHeader::decode(dec);
  reply.status = rh.status;
  reply.body_offset = reply.buffer.size() - dec.remaining();
  co_return reply;
}

}  // namespace dpnfs::rpc
