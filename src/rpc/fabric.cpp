#include "rpc/fabric.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/fault.hpp"
#include "util/format.hpp"
#include "util/log.hpp"

namespace dpnfs::rpc {

using sim::Task;

const char* program_component(Program prog) {
  switch (prog) {
    case Program::kNfs: return "nfs";
    case Program::kPvfsMeta: return "pvfs.meta";
    case Program::kPvfsIo: return "pvfs.io";
    case Program::kPvfsMgmt: return "pvfs.mgmt";
  }
  return "rpc";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kTimedOut: return "TIMED_OUT";
  }
  return "?";
}

namespace {

// Wakes the caller at `deadline` whether or not the reply ever arrives
// (Latch::set is idempotent, so a reply beating the watchdog is fine).
sim::Task<void> deadline_watchdog(sim::Simulation& sim,
                                  std::shared_ptr<RpcFabric::ReplySlot> slot,
                                  sim::Time deadline) {
  if (deadline > sim.now()) co_await sim.delay(deadline - sim.now());
  slot->done.set();
}

}  // namespace

void RpcFabric::bind(RpcAddress addr, RpcServer* server) {
  const auto [it, inserted] = servers_.emplace(addr, server);
  (void)it;
  if (!inserted) throw std::logic_error("RPC address already bound");
}

void RpcFabric::unbind(RpcAddress addr) { servers_.erase(addr); }

Task<RpcFabric::RawResult> RpcFabric::call(sim::Node& from, RpcAddress to,
                                           WireBuffer request,
                                           sim::Time deadline) {
  const auto it = servers_.find(to);
  if (it == servers_.end()) throw std::logic_error("RPC call to unbound address");
  RpcServer* server = it->second;
  sim::Simulation& sim = net_.simulation();

  sim::Network::TransferStats send_stats;
  const bool delivered = co_await net_.transfer(
      from, server->node(), request.wire_size + overhead_, &send_stats);
  const sim::FaultInjector* faults = net_.faults();
  const bool daemon_up =
      faults == nullptr || !faults->service_down(to.node_id, to.port, sim.now());

  if (!delivered || !daemon_up) {
    // The request is gone: a real client learns that only by its timer
    // expiring.  With no explicit deadline, fall back to the fabric's drop
    // timeout so the simulation still cannot hang on a scripted fault.
    const sim::Time give_up =
        deadline > 0 ? deadline : sim.now() + drop_timeout_;
    if (give_up > sim.now()) co_await sim.delay(give_up - sim.now());
    co_return RawResult{Status::kTimedOut, WireBuffer{},
                        send_stats.tx_queue_wait};
  }

  auto slot = std::make_shared<ReplySlot>(sim);
  server->queue_.push(
      RpcServer::Pending{std::move(request), from.id(), slot, sim.now()});
  if (deadline > 0) sim.spawn(deadline_watchdog(sim, slot, deadline));
  co_await slot->done.wait();

  if (!slot->reply.has_value()) {
    // Either the deadline beat the reply, or the worker dropped the reply
    // (crashed daemon / lost message) and woke us early: wait out whatever
    // budget remains before reporting the timeout.
    const sim::Time give_up =
        deadline > 0 ? deadline : sim.now() + drop_timeout_;
    if (give_up > sim.now()) co_await sim.delay(give_up - sim.now());
    co_return RawResult{Status::kTimedOut, WireBuffer{},
                        send_stats.tx_queue_wait};
  }
  co_return RawResult{Status::kOk, std::move(*slot->reply),
                      send_stats.tx_queue_wait};
}

RpcServer::RpcServer(RpcFabric& fabric, sim::Node& node, uint16_t port,
                     uint32_t worker_count, RpcService service)
    : fabric_(fabric),
      node_(node),
      port_(port),
      worker_count_(worker_count),
      service_(std::move(service)),
      queue_(fabric.simulation()),
      workers_done_(fabric.simulation()) {
  if (obs::MetricsRegistry* reg = fabric_.metrics()) {
    const std::string& n = node_.name();
    m_requests_ = &reg->counter(n, "rpc", "requests");
    m_bytes_in_ = &reg->counter(n, "rpc", "wire_bytes_in");
    m_bytes_out_ = &reg->counter(n, "rpc", "wire_bytes_out");
    m_queue_us_ =
        &reg->histogram(n, "rpc", "queue_us", obs::latency_us_boundaries());
    m_service_us_ =
        &reg->histogram(n, "rpc", "service_us", obs::latency_us_boundaries());
    m_service_digest_ = &reg->digest(n, "rpc", "service_us");
  } else {
    m_requests_ = &obs::MetricsRegistry::null_counter();
    m_bytes_in_ = &obs::MetricsRegistry::null_counter();
    m_bytes_out_ = &obs::MetricsRegistry::null_counter();
    m_queue_us_ = &obs::MetricsRegistry::null_histogram();
    m_service_us_ = &obs::MetricsRegistry::null_histogram();
    m_service_digest_ = &obs::MetricsRegistry::null_digest();
  }
  fabric_.bind(address(), this);
}

RpcServer::~RpcServer() { fabric_.unbind(address()); }

void RpcServer::start() {
  if (started_) return;
  started_ = true;
  for (uint32_t i = 0; i < worker_count_; ++i) workers_done_.spawn(worker());
}

void RpcServer::stop() { queue_.close(); }

Task<void> RpcServer::worker() {
  while (true) {
    auto pending = co_await queue_.recv();
    if (!pending) break;

    const sim::Time picked_up = fabric_.simulation().now();
    const sim::FaultInjector* faults = fabric_.network().faults();
    if (faults != nullptr && faults->service_down(node_.id(), port_, picked_up)) {
      // The daemon crashed with this request queued: the request dies with
      // it.  The caller's deadline (or the fabric drop timeout) reports it.
      pending->slot->done.set();
      continue;
    }
    if (faults != nullptr &&
        faults->boot_instance(node_.id(), port_, pending->enqueued) !=
            faults->boot_instance(node_.id(), port_, picked_up)) {
      // The daemon crashed *and revived* while this request sat in the
      // queue.  The old incarnation's socket/queue died with it — the new
      // instance must not serve its predecessor's requests, or a client
      // could see a reply stamped by state that no longer exists.
      pending->slot->done.set();
      continue;
    }

    const sim::Duration queue_wait = picked_up - pending->enqueued;
    queue_wait_total_ += queue_wait;
    m_queue_us_->observe(static_cast<double>(queue_wait) * 1e-3);

    XdrDecoder dec(pending->request.bytes);
    XdrEncoder enc;
    CallHeader header;
    try {
      header = CallHeader::decode(dec);
    } catch (const XdrError&) {
      // Unparseable call: no xid to echo; drop it (a real server would
      // sever the connection).
      util::logf(util::LogLevel::kWarn, "rpc.server",
                 fabric_.simulation().now(), "dropping unparseable call");
      continue;
    }

    // Open a server span under the caller's wire span so nested RPCs issued
    // by the service stay in the same trace.
    obs::Tracer* tracer = fabric_.tracer();
    obs::TraceContext server_span;
    if (tracer != nullptr && tracer->enabled() && header.trace_id != 0) {
      server_span = tracer->begin(obs::TraceContext{
          header.trace_id, header.span_id,
          (header.flags & kFlagSampled) != 0});
    }
    // The tenant rides the context even when the request is untraced, so
    // nested RPCs (proxied 2-/3-tier hops) and backend disk charges stay
    // attributed to the original caller at any sample rate.
    server_span.tenant = header.tenant_id;

    ReplyHeader reply_header{header.xid, ReplyStatus::kAccepted};
    XdrEncoder body;
    try {
      CallContext ctx{header, pending->client_node, server_span};
      co_await service_(ctx, dec, body);
    } catch (const XdrError& e) {
      util::logf(util::LogLevel::kWarn, "rpc.server",
                 fabric_.simulation().now(), "garbage args: %s", e.what());
      reply_header.status = ReplyStatus::kGarbageArgs;
      body = XdrEncoder{};
    } catch (const std::exception& e) {
      util::logf(util::LogLevel::kError, "rpc.server",
                 fabric_.simulation().now(), "service error: %s", e.what());
      reply_header.status = ReplyStatus::kSystemErr;
      body = XdrEncoder{};
    }

    reply_header.encode(enc);
    const uint64_t body_virtual = body.wire_size() - body.encoded_size();
    const std::vector<std::byte> body_bytes = std::move(body).take();
    enc.put_opaque_fixed(body_bytes);  // already 4-aligned: offsets preserved
    const uint64_t reply_wire_size = enc.wire_size() + body_virtual;
    WireBuffer reply{std::move(enc).take(), reply_wire_size};
    ++requests_served_;

    const sim::Time done = fabric_.simulation().now();
    m_requests_->inc();
    m_bytes_in_->add(pending->request.wire_size);
    m_bytes_out_->add(reply.wire_size);
    m_service_us_->observe(static_cast<double>(done - picked_up) * 1e-3);
    m_service_digest_->add(static_cast<double>(done - picked_up) * 1e-3);
    if (obs::TenantLedger* tenants = fabric_.tenants()) {
      tenants->account_rpc(header.tenant_id, pending->request.wire_size,
                           reply.wire_size, queue_wait, done - picked_up,
                           reply_header.status != ReplyStatus::kAccepted);
    }
    if (server_span.valid()) {
      obs::Span span{
          header.trace_id, server_span.span_id, header.span_id,
          obs::SpanKind::kServerExec,
          util::sformat("%s/%u",
                        program_component(static_cast<Program>(header.prog)),
                        header.proc),
          node_.name(), picked_up, done, queue_wait,
          reply.wire_size, pending->request.wire_size};
      span.error = reply_header.status != ReplyStatus::kAccepted;
      tracer->record(std::move(span));
    }

    // Send the reply.  If the daemon or node died while the request was in
    // service (even if it already revived — the reply belongs to the dead
    // incarnation), or the reply is lost on the wire, wake the caller with
    // an empty slot — its deadline machinery turns that into kTimedOut.
    bool reply_ok =
        faults == nullptr ||
        (!faults->service_down(node_.id(), port_, fabric_.simulation().now()) &&
         faults->boot_instance(node_.id(), port_, picked_up) ==
             faults->boot_instance(node_.id(), port_,
                                   fabric_.simulation().now()));
    if (reply_ok) {
      reply_ok = co_await fabric_.network().transfer(
          node_, fabric_.network().node(pending->client_node),
          reply.wire_size + fabric_.per_message_overhead());
    }
    if (reply_ok) pending->slot->reply = std::move(reply);
    pending->slot->done.set();
  }
}

Task<RpcClient::Reply> RpcClient::call(RpcAddress to, Program prog,
                                       uint32_t vers, uint32_t proc,
                                       XdrEncoder args, CallOptions opts) {
  obs::Tracer* tracer = fabric_.tracer();
  sim::Simulation& sim = fabric_.simulation();

  // Encode the args once up front so every retry resends identical bytes.
  const uint64_t args_virtual = args.wire_size() - args.encoded_size();
  const std::vector<std::byte> args_bytes = std::move(args).take();

  const uint32_t attempts = 1 + (opts.idempotent ? opts.max_retries : 0);
  // Retries parent under the first attempt's span: one logical call with
  // several attempts reads as one trace even when `opts.parent` is invalid.
  obs::TraceContext anchor = opts.parent;
  sim::Duration backoff = opts.backoff;

  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      if (retry_counter_ != nullptr) retry_counter_->inc();
      sim::Duration pause = backoff;
      if (opts.jitter > 0.0) {
        const double spread = (rng_.uniform() * 2.0 - 1.0) * opts.jitter;
        pause = static_cast<sim::Duration>(
            static_cast<double>(backoff) * (1.0 + spread));
      }
      if (pause > 0) co_await sim.delay(pause);
      backoff = static_cast<sim::Duration>(
          static_cast<double>(backoff) * opts.backoff_multiplier);
    }

    const uint64_t parent_span_id =
        attempt == 0 ? opts.parent.span_id : anchor.span_id;
    obs::TraceContext span;
    if (tracer != nullptr && tracer->enabled()) {
      span = tracer->begin(anchor);
      if (!anchor.valid()) anchor = span;
    }

    XdrEncoder enc;
    CallHeader header{next_xid_++, static_cast<uint32_t>(prog), vers, proc,
                      span.trace_id, span.span_id,
                      span.valid() && span.sampled ? kFlagSampled : 0u,
                      principal_};
    // Proxied hops act for the original caller's tenant; calls this client
    // originates carry its own.  Independent of tracing: the parent context
    // carries the tenant even when its trace_id is 0.
    header.tenant_id =
        opts.parent.tenant != 0 ? opts.parent.tenant : tenant_id_;
    header.encode(enc);
    enc.put_opaque_fixed(args_bytes);

    WireBuffer request{std::move(enc).take(), 0};
    request.wire_size = request.bytes.size() + args_virtual;
    const uint64_t request_wire = request.wire_size;

    const sim::Time sent = sim.now();
    const sim::Time deadline = opts.timeout > 0 ? sent + opts.timeout : 0;
    RpcFabric::RawResult raw =
        co_await fabric_.call(node_, to, std::move(request), deadline);
    if (span.valid()) {
      obs::Span client_span{
          span.trace_id, span.span_id, parent_span_id,
          obs::SpanKind::kClientCall,
          util::sformat("%s/%u%s", program_component(prog), proc,
                        raw.status == Status::kOk ? "" : " timeout"),
          node_.name(), sent, sim.now(), 0, request_wire,
          raw.status == Status::kOk ? raw.reply.wire_size : 0,
          raw.send_wait};
      client_span.error = raw.status != Status::kOk;
      tracer->record(std::move(client_span));
    }

    if (raw.status == Status::kOk) {
      Reply reply;
      reply.buffer = std::move(raw.reply.bytes);
      XdrDecoder dec(reply.buffer);
      const ReplyHeader rh = ReplyHeader::decode(dec);
      reply.status = rh.status;
      reply.body_offset = reply.buffer.size() - dec.remaining();
      co_return reply;
    }
    ++timeouts_;
  }

  Reply reply;
  reply.transport = Status::kTimedOut;
  reply.status = ReplyStatus::kSystemErr;  // legacy status checks stay safe
  co_return reply;
}

}  // namespace dpnfs::rpc
