// RPC transport fabric over the simulated network.
//
// `RpcFabric` is the rendezvous between RPC clients and servers: servers
// bind (node, port); clients call (node, port).  Requests and replies move
// across `sim::Network` paying full wire cost (encoded bytes + virtual bulk
// bytes + per-message framing overhead).
//
// `RpcServer` models a multi-threaded RPC daemon: `worker_count` coroutines
// (nfsd threads in the paper's setup: eight) pull requests from a single
// queue, dispatch to the bound service, and send the reply.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "rpc/message.hpp"
#include "sim/network.hpp"
#include "sim/sync.hpp"
#include "util/obs.hpp"

namespace dpnfs::rpc {

struct RpcAddress {
  uint32_t node_id = 0;
  uint16_t port = 0;

  auto operator<=>(const RpcAddress&) const = default;
};

/// Well-known ports.
inline constexpr uint16_t kNfsPort = 2049;
inline constexpr uint16_t kPvfsMetaPort = 3334;
inline constexpr uint16_t kPvfsIoPort = 3335;

/// Observability component name for a program's RPC spans ("nfs",
/// "pvfs.io", ...).
const char* program_component(Program prog);

/// Server-side request context.  `trace` is the server's own span for this
/// request (already parented under the caller's wire span); services pass it
/// down so nested RPCs join the same trace.
struct CallContext {
  CallHeader header;
  uint32_t client_node = 0;
  obs::TraceContext trace;
};

/// Service implementation: decode args from `args`, perform the operation,
/// encode results into `results`.  Throwing maps to a SYSTEM_ERR reply.
using RpcService =
    std::function<sim::Task<void>(const CallContext&, XdrDecoder& args,
                                  XdrEncoder& results)>;

class RpcServer;

class RpcFabric {
 public:
  explicit RpcFabric(sim::Network& net, uint64_t per_message_overhead = 128)
      : net_(net), overhead_(per_message_overhead) {}
  RpcFabric(const RpcFabric&) = delete;
  RpcFabric& operator=(const RpcFabric&) = delete;

  sim::Network& network() noexcept { return net_; }
  sim::Simulation& simulation() noexcept { return net_.simulation(); }
  uint64_t per_message_overhead() const noexcept { return overhead_; }

  /// Attaches metrics/tracing.  Must be called before servers or clients
  /// that should be instrumented are constructed — they resolve their
  /// metric handles once, at construction.  Either pointer may be null.
  void set_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer) {
    metrics_ = metrics;
    tracer_ = tracer;
  }
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }
  obs::Tracer* tracer() const noexcept { return tracer_; }

  /// Issues one RPC from `from` to `to`; resolves with the raw reply buffer.
  sim::Task<WireBuffer> call(sim::Node& from, RpcAddress to, WireBuffer request);

 private:
  friend class RpcServer;
  void bind(RpcAddress addr, RpcServer* server);
  void unbind(RpcAddress addr);

  sim::Network& net_;
  uint64_t overhead_;
  std::map<RpcAddress, RpcServer*> servers_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

class RpcServer {
 public:
  RpcServer(RpcFabric& fabric, sim::Node& node, uint16_t port,
            uint32_t worker_count, RpcService service);
  ~RpcServer();
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Spawns the worker coroutines.  Must be called before traffic arrives.
  void start();

  /// Closes the request queue; workers exit after draining.
  void stop();

  sim::Node& node() noexcept { return node_; }
  RpcAddress address() const noexcept { return RpcAddress{node_.id(), port_}; }
  uint64_t requests_served() const noexcept { return requests_served_; }

  /// Requests sitting in the queue right now (excludes in-service ones).
  size_t queue_depth() const noexcept { return queue_.size(); }
  /// Total time served requests spent queued before a worker picked them up.
  sim::Duration queue_wait_total() const noexcept { return queue_wait_total_; }

 private:
  friend class RpcFabric;

  struct Pending {
    WireBuffer request;
    uint32_t client_node;
    sim::Oneshot<WireBuffer>* reply;
    sim::Time enqueued = 0;
  };

  sim::Task<void> worker();

  RpcFabric& fabric_;
  sim::Node& node_;
  uint16_t port_;
  uint32_t worker_count_;
  RpcService service_;
  sim::Channel<Pending> queue_;
  sim::WaitGroup workers_done_;
  bool started_ = false;
  uint64_t requests_served_ = 0;
  sim::Duration queue_wait_total_ = 0;
  // Per-node "rpc" component handles, resolved once at construction (null
  // sinks when the fabric carries no registry).
  obs::Counter* m_requests_;
  obs::Counter* m_bytes_in_;
  obs::Counter* m_bytes_out_;
  obs::HistogramMetric* m_queue_us_;
  obs::HistogramMetric* m_service_us_;
};

/// Client-side call helper bound to one node and principal.
class RpcClient {
 public:
  RpcClient(RpcFabric& fabric, sim::Node& node, std::string principal)
      : fabric_(fabric), node_(node), principal_(std::move(principal)) {}

  /// Decoded reply: holds the buffer and exposes a decoder over the result
  /// body (positioned after the reply header).
  struct Reply {
    ReplyStatus status = ReplyStatus::kAccepted;
    std::vector<std::byte> buffer;
    size_t body_offset = 0;

    XdrDecoder body() const {
      return XdrDecoder(std::span<const std::byte>(buffer).subspan(body_offset));
    }
  };

  /// Issues one call.  When the fabric carries a tracer, the call becomes a
  /// client span: a new trace when `parent` is invalid (an application-level
  /// root), a child hop otherwise (servers pass their CallContext trace).
  sim::Task<Reply> call(RpcAddress to, Program prog, uint32_t vers,
                        uint32_t proc, XdrEncoder args,
                        obs::TraceContext parent = obs::TraceContext{});

  sim::Node& node() noexcept { return node_; }
  const std::string& principal() const noexcept { return principal_; }

 private:
  RpcFabric& fabric_;
  sim::Node& node_;
  std::string principal_;
  uint32_t next_xid_ = 1;
};

}  // namespace dpnfs::rpc
