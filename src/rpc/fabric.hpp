// RPC transport fabric over the simulated network.
//
// `RpcFabric` is the rendezvous between RPC clients and servers: servers
// bind (node, port); clients call (node, port).  Requests and replies move
// across `sim::Network` paying full wire cost (encoded bytes + virtual bulk
// bytes + per-message framing overhead).
//
// `RpcServer` models a multi-threaded RPC daemon: `worker_count` coroutines
// (nfsd threads in the paper's setup: eight) pull requests from a single
// queue, dispatch to the bound service, and send the reply.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rpc/message.hpp"
#include "sim/network.hpp"
#include "sim/sync.hpp"
#include "util/flight.hpp"
#include "util/obs.hpp"
#include "util/rng.hpp"
#include "util/tenant.hpp"

namespace dpnfs::rpc {

struct RpcAddress {
  uint32_t node_id = 0;
  uint16_t port = 0;

  auto operator<=>(const RpcAddress&) const = default;
};

/// Well-known ports.
inline constexpr uint16_t kNfsPort = 2049;
inline constexpr uint16_t kPvfsMetaPort = 3334;
inline constexpr uint16_t kPvfsIoPort = 3335;

/// Transport outcome of a call, orthogonal to the server's `ReplyStatus`:
/// `kTimedOut` means no reply arrived before the deadline (lost message,
/// crashed node or daemon, or a reply in flight past the budget).
enum class Status : uint8_t {
  kOk = 0,
  kTimedOut = 1,
};

const char* status_name(Status s);

/// Per-call policy: deadline, retry budget, backoff, trace parentage.
/// The default (`timeout == 0`, no retries) behaves exactly like the old
/// bare call: wait forever for the reply.  Even then, a message the fault
/// injector *knows* it lost completes with `kTimedOut` after the fabric's
/// drop timeout instead of hanging the simulation.
struct CallOptions {
  /// Per-attempt reply deadline; 0 disables the deadline (and its watchdog
  /// event) entirely.
  sim::Duration timeout = 0;
  /// Extra attempts after a timed-out one.  Only honored when `idempotent`.
  uint32_t max_retries = 0;
  /// Pause before the first retry; grows by `backoff_multiplier` per retry.
  sim::Duration backoff = sim::ms(10);
  double backoff_multiplier = 2.0;
  /// Uniform ± fraction of the backoff, from the client's own RNG stream.
  double jitter = 0.25;
  /// Retrying a non-idempotent call could apply it twice; callers must opt
  /// such calls out (the retry budget is then ignored).
  bool idempotent = true;
  /// Trace parentage: invalid → this call roots a new trace; retries are
  /// recorded as child spans of the first attempt so one logical call with
  /// three attempts reads as one trace.
  obs::TraceContext parent{};
};

/// Observability component name for a program's RPC spans ("nfs",
/// "pvfs.io", ...).
const char* program_component(Program prog);

/// Server-side request context.  `trace` is the server's own span for this
/// request (already parented under the caller's wire span); services pass it
/// down so nested RPCs join the same trace.
struct CallContext {
  CallHeader header;
  uint32_t client_node = 0;
  obs::TraceContext trace;
};

/// Service implementation: decode args from `args`, perform the operation,
/// encode results into `results`.  Throwing maps to a SYSTEM_ERR reply.
using RpcService =
    std::function<sim::Task<void>(const CallContext&, XdrDecoder& args,
                                  XdrEncoder& results)>;

class RpcServer;

class RpcFabric {
 public:
  explicit RpcFabric(sim::Network& net, uint64_t per_message_overhead = 128)
      : net_(net), overhead_(per_message_overhead) {}
  RpcFabric(const RpcFabric&) = delete;
  RpcFabric& operator=(const RpcFabric&) = delete;

  sim::Network& network() noexcept { return net_; }
  sim::Simulation& simulation() noexcept { return net_.simulation(); }
  uint64_t per_message_overhead() const noexcept { return overhead_; }

  /// Attaches metrics/tracing.  Must be called before servers or clients
  /// that should be instrumented are constructed — they resolve their
  /// metric handles once, at construction.  Either pointer may be null.
  void set_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer) {
    metrics_ = metrics;
    tracer_ = tracer;
  }
  obs::MetricsRegistry* metrics() const noexcept { return metrics_; }
  obs::Tracer* tracer() const noexcept { return tracer_; }

  /// Attaches per-tenant accounting and the flight recorder (either may be
  /// null).  Same contract as `set_observability`: call before the daemons
  /// and clients that should feed them are constructed.
  void set_accounting(obs::TenantLedger* tenants,
                      obs::FlightRecorder* flight) {
    tenants_ = tenants;
    flight_ = flight;
  }
  obs::TenantLedger* tenants() const noexcept { return tenants_; }
  obs::FlightRecorder* flight() const noexcept { return flight_; }

  /// Raw transport result: `reply` is meaningful only when `status == kOk`.
  /// `send_wait` is the time the request spent queued behind the sender's
  /// own NIC before transmitting — the trace layer reports it as client
  /// queue rather than wire time.
  struct RawResult {
    Status status = Status::kOk;
    WireBuffer reply;
    sim::Duration send_wait = 0;
  };

  /// Reply rendezvous that survives timeouts: the worker may complete it
  /// (or drop it) long after the caller has given up and gone away.
  struct ReplySlot {
    explicit ReplySlot(sim::Simulation& sim) : done(sim) {}
    sim::Latch done;
    std::optional<WireBuffer> reply;
  };

  /// Issues one RPC from `from` to `to`.  `deadline` is an absolute sim
  /// time (0: none); if no reply arrives by then the call resolves with
  /// `kTimedOut` — the simulation never hangs on a lost message.  Calling
  /// an address that was never bound is still a configuration error and
  /// throws; a *crashed* daemon stays bound and times out instead.
  sim::Task<RawResult> call(sim::Node& from, RpcAddress to, WireBuffer request,
                            sim::Time deadline = 0);

  /// How long a call with no explicit deadline waits before giving up on a
  /// message the fault injector dropped (a stand-in for TCP giving up).
  sim::Duration drop_timeout() const noexcept { return drop_timeout_; }
  void set_drop_timeout(sim::Duration t) noexcept { drop_timeout_ = t; }

 private:
  friend class RpcServer;
  void bind(RpcAddress addr, RpcServer* server);
  void unbind(RpcAddress addr);

  sim::Network& net_;
  uint64_t overhead_;
  std::map<RpcAddress, RpcServer*> servers_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::TenantLedger* tenants_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  sim::Duration drop_timeout_ = sim::sec(2);
};

class RpcServer {
 public:
  RpcServer(RpcFabric& fabric, sim::Node& node, uint16_t port,
            uint32_t worker_count, RpcService service);
  ~RpcServer();
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Spawns the worker coroutines.  Must be called before traffic arrives.
  void start();

  /// Closes the request queue; workers exit after draining.
  void stop();

  sim::Node& node() noexcept { return node_; }
  RpcAddress address() const noexcept { return RpcAddress{node_.id(), port_}; }
  uint64_t requests_served() const noexcept { return requests_served_; }

  /// Requests sitting in the queue right now (excludes in-service ones).
  size_t queue_depth() const noexcept { return queue_.size(); }
  /// Total time served requests spent queued before a worker picked them up.
  sim::Duration queue_wait_total() const noexcept { return queue_wait_total_; }

 private:
  friend class RpcFabric;

  struct Pending {
    WireBuffer request;
    uint32_t client_node;
    std::shared_ptr<RpcFabric::ReplySlot> slot;
    sim::Time enqueued = 0;
  };

  sim::Task<void> worker();

  RpcFabric& fabric_;
  sim::Node& node_;
  uint16_t port_;
  uint32_t worker_count_;
  RpcService service_;
  sim::Channel<Pending> queue_;
  sim::WaitGroup workers_done_;
  bool started_ = false;
  uint64_t requests_served_ = 0;
  sim::Duration queue_wait_total_ = 0;
  // Per-node "rpc" component handles, resolved once at construction (null
  // sinks when the fabric carries no registry).
  obs::Counter* m_requests_;
  obs::Counter* m_bytes_in_;
  obs::Counter* m_bytes_out_;
  obs::HistogramMetric* m_queue_us_;
  obs::HistogramMetric* m_service_us_;
  util::PercentileDigest* m_service_digest_;
};

/// Client-side call helper bound to one node and principal.
class RpcClient {
 public:
  RpcClient(RpcFabric& fabric, sim::Node& node, std::string principal)
      : fabric_(fabric),
        node_(node),
        principal_(std::move(principal)),
        rng_(0x5ca1ab1eULL ^ (uint64_t{node_.id()} << 20)) {}

  /// Decoded reply: holds the buffer and exposes a decoder over the result
  /// body (positioned after the reply header).  On a transport failure
  /// (`transport != Status::kOk`) there is no buffer and `status` is forced
  /// to `kSystemErr` so legacy `status != kAccepted` checks stay safe.
  struct Reply {
    ReplyStatus status = ReplyStatus::kAccepted;
    Status transport = Status::kOk;
    std::vector<std::byte> buffer;
    size_t body_offset = 0;

    Reply() = default;
    Reply(Reply&&) = default;
    Reply& operator=(Reply&&) = default;
    Reply(const Reply&) = default;
    Reply& operator=(const Reply&) = default;
    // Reply framing buffers churn once per call; retire them into the pool.
    ~Reply() { util::BufferPool::give(std::move(buffer)); }

    bool ok() const noexcept {
      return transport == Status::kOk && status == ReplyStatus::kAccepted;
    }
    XdrDecoder body() const {
      return XdrDecoder(std::span<const std::byte>(buffer).subspan(body_offset));
    }
  };

  /// Issues one call under `opts` (deadline, retry budget, backoff, trace
  /// parent).  When the fabric carries a tracer, each attempt becomes a
  /// client span: a new trace when `opts.parent` is invalid (an
  /// application-level root), a child hop otherwise; retry attempts parent
  /// under the first attempt's span, so a retried call reads as one trace.
  sim::Task<Reply> call(RpcAddress to, Program prog, uint32_t vers,
                        uint32_t proc, XdrEncoder args, CallOptions opts = {});

  sim::Node& node() noexcept { return node_; }
  const std::string& principal() const noexcept { return principal_; }

  /// Transport-level retries and timed-out calls issued by this client.
  uint64_t retries() const noexcept { return retries_; }
  uint64_t timeouts() const noexcept { return timeouts_; }
  /// Optional external counter bumped on every transport retry (lets an
  /// owner surface retries under its own metrics component).
  void set_retry_counter(obs::Counter* c) noexcept { retry_counter_ = c; }

  /// Tenant identity stamped into every call this client originates.  Calls
  /// issued on behalf of another tenant (a proxied hop whose
  /// `CallOptions::parent` carries a tenant) propagate that one instead.
  void set_tenant(uint32_t tenant) noexcept { tenant_id_ = tenant; }
  uint32_t tenant() const noexcept { return tenant_id_; }

 private:
  RpcFabric& fabric_;
  sim::Node& node_;
  std::string principal_;
  uint32_t next_xid_ = 1;
  uint32_t tenant_id_ = 0;
  util::Rng rng_;
  uint64_t retries_ = 0;
  uint64_t timeouts_ = 0;
  obs::Counter* retry_counter_ = nullptr;
};

}  // namespace dpnfs::rpc
