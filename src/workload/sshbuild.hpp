// SSH-build style benchmark (paper §6.4.3 discussion).
//
// Models the three phases of "uncompress, configure, build OpenSSH":
//   * uncompress — read a tarball sequentially, create every source file;
//     dominated by file creation.
//   * configure  — many stats, small script reads, small result writes;
//     dominated by attribute traffic.
//   * compile    — per source file: read it, read a few headers, write an
//     object file, fsync; dominated by small reads and writes.
// Per-phase elapsed times are recorded so the bench can reproduce the
// paper's observation: Direct-pNFS helps the compile phase but slows the
// metadata-bound phases relative to the parallel FS.
#pragma once

#include <array>

#include "util/rng.hpp"
#include "workload/runner.hpp"

namespace dpnfs::workload {

struct SshBuildConfig {
  uint32_t source_files = 150;
  uint32_t header_files = 40;
  uint64_t archive_bytes = 4ull << 20;
  uint64_t source_min = 2 * 1024;
  uint64_t source_max = 40 * 1024;
  uint32_t configure_probes = 200;   ///< stat calls during configure
  uint32_t configure_scripts = 40;   ///< small files read + written
  uint32_t headers_per_compile = 5;
  uint64_t seed = 1234;
};

class SshBuildWorkload final : public Workload {
 public:
  explicit SshBuildWorkload(SshBuildConfig config) : config_(config) {}

  std::string name() const override { return "SSH-build"; }
  sim::Task<void> setup(core::Deployment& d) override;
  sim::Task<void> client_main(core::Deployment& d, size_t client) override;

  /// Aggregate per-phase seconds (max across clients).
  double uncompress_seconds() const { return phase_seconds_[0]; }
  double configure_seconds() const { return phase_seconds_[1]; }
  double compile_seconds() const { return phase_seconds_[2]; }

 private:
  std::string root(size_t client) const {
    return "/ssh" + std::to_string(client);
  }

  SshBuildConfig config_;
  std::array<double, 3> phase_seconds_{};
};

}  // namespace dpnfs::workload
