// ATLAS Digitization write replay (paper §6.3.1).
//
// Models the detector-simulation stage's I/O signature: each client writes
// ~650 MB spread randomly over a single per-client file with a bimodal
// request-size distribution calibrated to the paper's characterization —
// 95% of *requests* are small (< 275 KB) while 95% of *bytes* arrive in
// requests >= 275 KB.
#pragma once

#include "util/rng.hpp"
#include "workload/runner.hpp"

namespace dpnfs::workload {

struct AtlasConfig {
  uint64_t bytes_per_client = 650'000'000;
  uint64_t file_span = 650'000'000;   ///< offsets drawn over this range
  uint64_t small_min = 1024;          ///< small request sizes (bytes)
  uint64_t small_max = 16 * 1024;
  uint64_t large_min = 275 * 1024;    ///< large request sizes (bytes)
  uint64_t large_max = 5'800 * 1024;
  double p_small = 0.95;              ///< fraction of requests that are small
  uint64_t seed = 42;
};

class AtlasWorkload final : public Workload {
 public:
  explicit AtlasWorkload(AtlasConfig config) : config_(config) {}

  std::string name() const override { return "ATLAS-digitization"; }
  sim::Task<void> setup(core::Deployment& d) override;
  sim::Task<void> client_main(core::Deployment& d, size_t client) override;

  /// Draws one request size (exposed for distribution tests).
  uint64_t draw_request_size(util::Rng& rng) const;

 private:
  AtlasConfig config_;
};

}  // namespace dpnfs::workload
