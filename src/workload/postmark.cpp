#include "workload/postmark.hpp"

namespace dpnfs::workload {

using rpc::Payload;
using sim::Task;

std::string PostmarkWorkload::dir_of(size_t client, uint32_t dir) const {
  return "/pm" + std::to_string(client) + "/d" + std::to_string(dir);
}

Task<void> PostmarkWorkload::create_file(core::Deployment& d, size_t client,
                                         Instance& inst, util::Rng& rng) {
  const uint32_t dir = static_cast<uint32_t>(rng.below(config_.directories));
  const std::string path =
      dir_of(client, dir) + "/f" + std::to_string(inst.next_serial++);
  const uint64_t size = rng.range(config_.min_file_bytes, config_.max_file_bytes);
  auto f = co_await d.client(client).open(path, true);
  co_await f->write(0, Payload::virtual_bytes(size));
  co_await f->close();
  inst.files.push_back(path);
  inst.sizes.push_back(size);
}

Task<void> PostmarkWorkload::setup(core::Deployment& d) {
  for (size_t c = 0; c < d.client_count(); ++c) {
    co_await d.client(c).mkdir("/pm" + std::to_string(c));
    for (uint32_t dir = 0; dir < config_.directories; ++dir) {
      co_await d.client(c).mkdir(dir_of(c, dir));
    }
  }
}

Task<void> PostmarkWorkload::client_main(core::Deployment& d, size_t client) {
  util::Rng rng = util::Rng(config_.seed).fork(client);
  Instance inst;

  // Initial file population (part of the measured Postmark run).
  for (uint32_t i = 0; i < config_.initial_files; ++i) {
    co_await create_file(d, client, inst, rng);
  }

  for (uint32_t txn = 0; txn < config_.transactions; ++txn) {
    // Phase 1: delete, create, or open.
    const uint64_t kind = rng.below(3);
    if (kind == 0 && inst.files.size() > 4) {
      const size_t victim = rng.below(inst.files.size());
      co_await d.client(client).remove(inst.files[victim]);
      inst.files.erase(inst.files.begin() + static_cast<ptrdiff_t>(victim));
      inst.sizes.erase(inst.sizes.begin() + static_cast<ptrdiff_t>(victim));
      ++completed_;
      continue;  // a pure delete transaction
    }
    if (kind == 1) {
      co_await create_file(d, client, inst, rng);
      ++completed_;
      continue;
    }
    // Open an existing file, then read or append 512 bytes.
    const size_t idx = rng.below(inst.files.size());
    auto f = co_await d.client(client).open(inst.files[idx], false);
    if (rng.chance(0.5)) {
      const uint64_t max_off =
          inst.sizes[idx] > config_.io_bytes ? inst.sizes[idx] - config_.io_bytes : 0;
      (void)co_await f->read(max_off > 0 ? rng.below(max_off) : 0,
                             config_.io_bytes);
    } else {
      co_await f->write(inst.sizes[idx],
                        Payload::virtual_bytes(config_.io_bytes));
      inst.sizes[idx] += config_.io_bytes;
      co_await f->fsync();  // stable before close
    }
    co_await f->close();
    ++completed_;
  }
}

}  // namespace dpnfs::workload
