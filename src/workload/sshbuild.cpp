#include "workload/sshbuild.hpp"

#include <algorithm>

namespace dpnfs::workload {

using rpc::Payload;
using sim::Task;

Task<void> SshBuildWorkload::setup(core::Deployment& d) {
  // The distribution tarball, pre-seeded on the file system.
  for (size_t c = 0; c < d.client_count(); ++c) {
    co_await d.client(c).mkdir(root(c));
    auto tar = co_await d.client(c).open(root(c) + "/openssh.tar", true);
    co_await tar->write(0, Payload::virtual_bytes(config_.archive_bytes));
    co_await tar->close();
  }
}

Task<void> SshBuildWorkload::client_main(core::Deployment& d, size_t client) {
  util::Rng rng = util::Rng(config_.seed).fork(client);
  auto& fs = d.client(client);
  const std::string base = root(client);

  // ---- Phase 1: uncompress -------------------------------------------------
  const sim::Time t0 = d.simulation().now();
  {
    auto tar = co_await fs.open(base + "/openssh.tar", false);
    co_await fs.mkdir(base + "/src");
    co_await fs.mkdir(base + "/src/headers");
    uint64_t tar_off = 0;
    for (uint32_t i = 0; i < config_.source_files; ++i) {
      const uint64_t size = rng.range(config_.source_min, config_.source_max);
      (void)co_await tar->read(tar_off % config_.archive_bytes, 16 * 1024);
      tar_off += 16 * 1024;
      auto f = co_await fs.open(base + "/src/s" + std::to_string(i) + ".c", true);
      co_await f->write(0, Payload::virtual_bytes(size));
      co_await f->close();
    }
    for (uint32_t i = 0; i < config_.header_files; ++i) {
      auto f = co_await fs.open(base + "/src/headers/h" + std::to_string(i),
                                true);
      co_await f->write(0, Payload::virtual_bytes(rng.range(512, 8 * 1024)));
      co_await f->close();
    }
    co_await tar->close();
  }
  const sim::Time t1 = d.simulation().now();

  // ---- Phase 2: configure ----------------------------------------------------
  {
    for (uint32_t i = 0; i < config_.configure_probes; ++i) {
      // Feature probes stat files that mostly do not exist.
      try {
        (void)co_await fs.stat_size(base + "/src/s" +
                                    std::to_string(rng.below(config_.source_files)) +
                                    ".c");
      } catch (const std::exception&) {
        // missing probe targets are expected
      }
    }
    for (uint32_t i = 0; i < config_.configure_scripts; ++i) {
      auto f = co_await fs.open(base + "/conf" + std::to_string(i), true);
      co_await f->write(0, Payload::virtual_bytes(rng.range(256, 4096)));
      co_await f->fsync();
      co_await f->close();
    }
  }
  const sim::Time t2 = d.simulation().now();

  // ---- Phase 3: compile -------------------------------------------------------
  {
    co_await fs.mkdir(base + "/obj");
    for (uint32_t i = 0; i < config_.source_files; ++i) {
      auto src = co_await fs.open(base + "/src/s" + std::to_string(i) + ".c",
                                  false);
      const uint64_t src_size = src->size();
      // Small sequential reads, 8 KB at a time (compiler front end).
      for (uint64_t off = 0; off < src_size; off += 8 * 1024) {
        (void)co_await src->read(off, 8 * 1024);
      }
      co_await src->close();
      for (uint32_t h = 0; h < config_.headers_per_compile; ++h) {
        auto header = co_await fs.open_read(
            base + "/src/headers/h" +
            std::to_string(rng.below(config_.header_files)));
        (void)co_await header->read(0, 4 * 1024);
        co_await header->close();
      }
      auto obj = co_await fs.open(base + "/obj/s" + std::to_string(i) + ".o",
                                  true);
      co_await obj->write(0, Payload::virtual_bytes(src_size * 2));
      co_await obj->close();
    }
  }
  const sim::Time t3 = d.simulation().now();

  phase_seconds_[0] = std::max(phase_seconds_[0], sim::to_seconds(t1 - t0));
  phase_seconds_[1] = std::max(phase_seconds_[1], sim::to_seconds(t2 - t1));
  phase_seconds_[2] = std::max(phase_seconds_[2], sim::to_seconds(t3 - t2));
}

}  // namespace dpnfs::workload
