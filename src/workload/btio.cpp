#include "workload/btio.hpp"

namespace dpnfs::workload {

using rpc::Payload;
using sim::Task;

Task<void> BtioWorkload::setup(core::Deployment& d) {
  barrier_ = std::make_unique<sim::Barrier>(d.simulation(), d.client_count());
  co_await d.client(0).mkdir("/btio");
  auto f = co_await d.client(0).open("/btio/out", true);
  co_await f->close();
}

Task<void> BtioWorkload::client_main(core::Deployment& d, size_t client) {
  const uint64_t n_clients = d.client_count();
  const uint32_t checkpoints = config_.time_steps / config_.checkpoint_every;
  const uint64_t checkpoint_bytes = config_.file_bytes / checkpoints;
  const uint64_t base_share = checkpoint_bytes / n_clients;
  // The last rank absorbs the rounding remainder so the file is complete.
  const uint64_t my_share = (client == n_clients - 1)
                                ? checkpoint_bytes - base_share * (n_clients - 1)
                                : base_share;
  const sim::Duration compute_per_step =
      config_.compute_total / config_.time_steps / static_cast<int64_t>(n_clients);

  auto f = co_await d.client(client).open("/btio/out", false);
  uint32_t checkpoint = 0;
  for (uint32_t step = 1; step <= config_.time_steps; ++step) {
    co_await d.simulation().delay(compute_per_step);
    if (step % config_.checkpoint_every != 0) continue;
    // Collective buffering: each rank writes one contiguous >= 1 MB chunk.
    const uint64_t base =
        static_cast<uint64_t>(checkpoint) * checkpoint_bytes + client * base_share;
    co_await f->write(base, Payload::virtual_bytes(my_share));
    ++checkpoint;
  }
  co_await f->fsync();
  co_await f->close();
  co_await barrier_->arrive_and_wait();  // MPI_Barrier before verification

  if (config_.verify_read && client == 0) {
    // Ingest and verify the result file (rank 0), 2 MB at a time; reopen so
    // the size reflects every rank's committed writes.
    auto rf = co_await d.client(client).open("/btio/out", false);
    if (rf->size() < config_.file_bytes) {
      throw std::runtime_error("BTIO result file short");
    }
    const uint64_t chunk = 2ull << 20;
    for (uint64_t off = 0; off < config_.file_bytes;) {
      const uint64_t n = std::min(chunk, config_.file_bytes - off);
      Payload p = co_await rf->read(off, n);
      if (p.size() != n) throw std::runtime_error("BTIO short read");
      off += n;
    }
    co_await rf->close();
  }
}

}  // namespace dpnfs::workload
