#include "workload/openloop.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sim/sync.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace dpnfs::workload {

using rpc::Payload;
using sim::Task;

namespace {

// Instantaneous diurnal rate multiplier at fraction `x` in [0,1] of the
// arrival window: 1 at the edges, `peak` at mid-window (triangular tide).
double diurnal_multiplier(double x, double peak) {
  if (peak == 1.0) return 1.0;
  const double tri = 1.0 - std::abs(2.0 * x - 1.0);
  return 1.0 + (peak - 1.0) * tri;
}

// Inverse CDF of bounded Pareto(alpha, lo, hi) at u in [0,1).
double bounded_pareto_quantile(double u, double alpha, double lo, double hi) {
  const double ratio = 1.0 - std::pow(lo / hi, alpha);
  return lo * std::pow(1.0 - u * ratio, -1.0 / alpha);
}

}  // namespace

std::vector<Arrival> generate_arrivals(const OpenLoopConfig& cfg) {
  if (cfg.rate_per_sec <= 0 || cfg.duration <= 0) return {};
  util::Rng times = util::Rng(cfg.seed).fork(1);
  util::Rng tenants = util::Rng(cfg.seed).fork(2);
  util::Rng seeds = util::Rng(cfg.seed).fork(3);

  // Mean inter-arrival gap in ns at the base rate.
  const double base_gap_ns = 1e9 / cfg.rate_per_sec;
  // Heavy-tailed draws are dimensionless on [lo, hi]; dividing by their mean
  // makes the realized mean gap equal base_gap_ns while preserving the tail
  // index (scaling is tail-invariant).
  double pareto_scale = 0;
  if (cfg.process == ArrivalProcess::kBoundedPareto) {
    const double a = cfg.pareto_alpha, lo = cfg.pareto_lo, hi = cfg.pareto_hi;
    double mean;
    if (a == 1.0) {
      mean = std::log(hi / lo) / ((1.0 / lo - 1.0 / hi) / (1.0 - lo / hi));
    } else {
      mean = (a * std::pow(lo, a) / (1.0 - std::pow(lo / hi, a))) *
             (std::pow(lo, 1.0 - a) - std::pow(hi, 1.0 - a)) / (a - 1.0);
    }
    pareto_scale = base_gap_ns / mean;
  }

  double total_weight = 0;
  for (double w : cfg.tenant_weights) {
    if (w < 0) throw std::invalid_argument("negative tenant weight");
    total_weight += w;
  }

  const double window_ns = static_cast<double>(cfg.duration);
  std::vector<Arrival> out;
  out.reserve(static_cast<size_t>(cfg.rate_per_sec *
                                  sim::to_seconds(cfg.duration) * 1.25) +
              16);
  double t_ns = 0;
  while (true) {
    // Draw the next gap at the base rate, then compress it by the diurnal
    // multiplier at the current position (rate modulation).
    const double u = times.uniform();
    double gap;
    if (cfg.process == ArrivalProcess::kBoundedPareto) {
      gap = bounded_pareto_quantile(u, cfg.pareto_alpha, cfg.pareto_lo,
                                    cfg.pareto_hi) *
            pareto_scale;
    } else {
      gap = -std::log(1.0 - u) * base_gap_ns;
    }
    gap /= diurnal_multiplier(t_ns / window_ns, cfg.diurnal_peak_ratio);
    t_ns += gap;
    if (t_ns >= window_ns) break;

    Arrival a;
    a.at = static_cast<sim::Time>(t_ns);
    if (total_weight > 0) {
      double pick = tenants.uniform() * total_weight;
      uint32_t t = 1;
      for (size_t i = 0; i < cfg.tenant_weights.size(); ++i) {
        pick -= cfg.tenant_weights[i];
        if (pick < 0) {
          t = static_cast<uint32_t>(i + 1);
          break;
        }
      }
      a.tenant = std::min<uint32_t>(
          t, static_cast<uint32_t>(cfg.tenant_weights.size()));
    }
    a.session_seed = seeds.next();
    out.push_back(a);
  }
  return out;
}

namespace {

// Concurrency bookkeeping: integral of in-flight sessions over sim time.
struct ConcurrencyTracker {
  uint64_t current = 0;
  uint64_t peak = 0;
  sim::Time last = 0;
  double integral_ns = 0;

  void change(sim::Time now, int64_t delta) {
    integral_ns += static_cast<double>(now - last) * current;
    last = now;
    current = static_cast<uint64_t>(static_cast<int64_t>(current) + delta);
    peak = std::max(peak, current);
  }
};

struct OpenLoopState {
  const OpenLoopConfig& cfg;
  OpenLoopResult& result;
  ConcurrencyTracker conc;
  sim::Time t0 = 0;
  sim::Time last_done = 0;
  std::string first_error;
  // Round-robin cursors: [0] global, [t] per-tenant (nodes are stamped
  // tenant 1 + (i % tenants), so tenant t's nodes are t-1, t-1+T, ...).
  std::vector<uint64_t> rr;
};

std::string node_file(size_t node) {
  return "/openloop/f" + std::to_string(node);
}

// Which client node serves this session.  Tenant-labeled sessions land on a
// node carrying the same tenant id so the per-tenant ledger attributes their
// traffic to the offered mix.
size_t pick_node(OpenLoopState& st, core::Deployment& d, uint32_t tenant) {
  const size_t n = d.client_count();
  const uint32_t T = d.config().tenants;
  if (tenant != 0 && T != 0 && tenant <= T) {
    const size_t stride_count = (n - (tenant - 1) + T - 1) / T;
    if (stride_count > 0) {
      const size_t k = st.rr[tenant]++ % stride_count;
      return (tenant - 1) + k * T;
    }
  }
  return st.rr[0]++ % n;
}

Task<void> session(core::Deployment& d, OpenLoopState& st, Arrival a,
                   size_t node) {
  const OpenLoopConfig& cfg = st.cfg;
  try {
    util::Rng rng(a.session_seed);
    auto f = co_await d.client(node).open(node_file(node), false);
    const uint64_t slots = std::max<uint64_t>(1, cfg.file_bytes / cfg.bytes_per_op);
    for (uint32_t op = 0; op < cfg.ops_per_session; ++op) {
      const uint64_t offset = rng.below(slots) * cfg.bytes_per_op;
      if (rng.chance(cfg.read_fraction)) {
        Payload got = co_await f->read(offset, cfg.bytes_per_op);
        if (got.size() != cfg.bytes_per_op) {
          throw std::runtime_error("open-loop short read");
        }
      } else if (cfg.inline_payloads) {
        std::vector<std::byte> bytes(cfg.bytes_per_op,
                                     std::byte{static_cast<uint8_t>(op)});
        co_await f->write(offset, Payload::inline_bytes(std::move(bytes)));
      } else {
        co_await f->write(offset, Payload::virtual_bytes(cfg.bytes_per_op));
      }
      ++st.result.ops;
      st.result.app_bytes += cfg.bytes_per_op;
    }
    if (cfg.fsync_at_end) co_await f->fsync();
    co_await f->close();
  } catch (const std::exception& e) {
    if (st.first_error.empty()) st.first_error = e.what();
  }
  const sim::Time now = d.simulation().now();
  st.conc.change(now, -1);
  st.last_done = std::max(st.last_done, now);
  // Sojourn: scheduled arrival to completion.  When delivery lags offered
  // load the backlog shows up here, as it would to an arriving user.
  st.result.sojourn_seconds.add(sim::to_seconds(now - (st.t0 + a.at)));
  ++st.result.sessions;
}

Task<void> drive_open_loop(core::Deployment& d, OpenLoopState& st,
                           std::vector<Arrival> arrivals, bool& completed) {
  try {
    co_await d.mount_all();
    // Populate one working-set file per client node (untimed).
    co_await d.client(0).mkdir("/openloop");
    for (size_t i = 0; i < d.client_count(); ++i) {
      auto f = co_await d.client(i).open(node_file(i), true);
      const uint64_t chunk = 4ull << 20;
      for (uint64_t off = 0; off < st.cfg.file_bytes; off += chunk) {
        co_await f->write(off, Payload::virtual_bytes(std::min(
                                   chunk, st.cfg.file_bytes - off)));
      }
      co_await f->close();
    }
  } catch (const std::exception& e) {
    st.first_error = e.what();
    completed = true;
    co_return;
  }

  st.t0 = d.simulation().now();
  st.conc.last = st.t0;
  d.start_sampling();

  sim::WaitGroup wg(d.simulation());
  for (const Arrival& a : arrivals) {
    const sim::Time target = st.t0 + a.at;
    if (target > d.simulation().now()) {
      co_await d.simulation().delay(target - d.simulation().now());
    }
    st.conc.change(d.simulation().now(), +1);
    wg.spawn(session(d, st, a, pick_node(st, d, a.tenant)));
  }
  co_await wg.wait();
  d.stop_sampling();
  completed = true;
}

}  // namespace

OpenLoopResult run_open_loop(core::Deployment& d, const OpenLoopConfig& cfg) {
  if (d.client_count() == 0) {
    throw std::invalid_argument("open-loop run needs at least one client");
  }
  OpenLoopResult result;
  OpenLoopState st{cfg, result, {}, 0, 0, {}, {}};
  st.rr.assign(2 + d.config().tenants, 0);

  std::vector<Arrival> arrivals = generate_arrivals(cfg);
  bool completed = false;
  d.simulation().spawn(drive_open_loop(d, st, std::move(arrivals), completed));
  d.simulation().run();
  if (!st.first_error.empty()) {
    throw std::runtime_error("open-loop run failed: " + st.first_error);
  }
  if (!completed) {
    throw std::runtime_error("open-loop run deadlocked: simulation drained");
  }

  const sim::Time end = std::max(st.last_done, st.t0);
  result.elapsed_seconds = sim::to_seconds(end - st.t0);
  result.client_seconds = st.conc.integral_ns / 1e9;
  result.peak_concurrency = st.conc.peak;
  result.mean_concurrency =
      result.elapsed_seconds > 0 ? result.client_seconds / result.elapsed_seconds
                                 : 0;
  util::logf(util::LogLevel::kInfo, "openloop", d.simulation().now(),
             "%llu sessions, peak %llu concurrent, %.1f client-s over %.3fs",
             static_cast<unsigned long long>(result.sessions),
             static_cast<unsigned long long>(result.peak_concurrency),
             result.client_seconds, result.elapsed_seconds);
  return result;
}

}  // namespace dpnfs::workload
