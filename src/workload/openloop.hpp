// Open-loop traffic generation (ROADMAP item 1).
//
// The closed-loop `Workload` harness measures N workers in lockstep: each
// client issues its next op when the previous completes, so offered load
// collapses exactly when the system slows down — the opposite of a real
// client population.  This generator models *arrivals*: ephemeral sessions
// enter by a seeded stochastic process (Poisson or bounded-Pareto
// inter-arrivals, optionally modulated by a diurnal ramp), run a short I/O
// job against the deployment, and leave.  Offered load is independent of
// delivered latency, which is what lets `bench_scale` report
// offered-vs-delivered percentiles and sustain thousands of concurrent
// sessions over a fixed set of client nodes.
//
// Determinism: the arrival schedule (times, tenant labels, per-session
// seeds) is pure Rng arithmetic over the config — independent of cluster
// architecture, topology, and simulator scheduling.  Same seed, same
// schedule, bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/deployment.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

namespace dpnfs::workload {

enum class ArrivalProcess {
  kPoisson,        ///< exponential inter-arrivals (memoryless)
  kBoundedPareto,  ///< heavy-tailed inter-arrivals with tail index alpha
};

struct OpenLoopConfig {
  uint64_t seed = 0xD15EA5EULL;
  ArrivalProcess process = ArrivalProcess::kPoisson;

  /// Mean arrival rate (sessions per simulated second) before the diurnal
  /// profile is applied.
  double rate_per_sec = 1000.0;

  /// Arrival window: sessions arrive in [0, duration); the run ends when
  /// the last session completes.
  sim::Duration duration = sim::sec(5);

  /// Bounded-Pareto shape for the heavy-tailed mode: tail index `alpha` on
  /// support [lo, hi] (dimensionless draw; draws are rescaled so the mean
  /// inter-arrival matches rate_per_sec).
  double pareto_alpha = 1.5;
  double pareto_lo = 1.0;
  double pareto_hi = 1e4;

  /// Diurnal ramp: instantaneous rate climbs linearly from the base rate to
  /// peak_ratio * base at mid-window, then back — a one-day tide compressed
  /// into the window.  Disabled when peak_ratio == 1.
  double diurnal_peak_ratio = 1.0;

  /// Tenant mix: arrival i is labeled tenant t (1-based) with probability
  /// weights[t-1] / sum(weights).  Empty: all arrivals are tenant 0
  /// (unstamped).
  std::vector<double> tenant_weights;

  /// Session shape: ops_per_session random-offset I/Os of bytes_per_op
  /// against the session's client-node file, read_fraction of them reads,
  /// one fsync at the end when fsync_at_end.
  uint32_t ops_per_session = 4;
  uint64_t bytes_per_op = 64 * 1024;
  double read_fraction = 0.5;
  bool fsync_at_end = true;

  /// Materialize payload bytes (exercises the inline scatter-gather path)
  /// instead of virtual byte-counting.
  bool inline_payloads = false;

  /// Working-set size of each client node's file.
  uint64_t file_bytes = 64ull << 20;
};

/// One scheduled arrival.
struct Arrival {
  sim::Time at = 0;           ///< simulated arrival time (ns from window start)
  uint32_t tenant = 0;        ///< tenant label (0: unstamped)
  uint64_t session_seed = 0;  ///< seeds the session's op stream
};

/// The deterministic arrival schedule for `cfg` (sorted by time).
std::vector<Arrival> generate_arrivals(const OpenLoopConfig& cfg);

struct OpenLoopResult {
  uint64_t sessions = 0;            ///< arrivals scheduled (== completed)
  uint64_t ops = 0;                 ///< I/Os issued by all sessions
  uint64_t app_bytes = 0;           ///< bytes moved by those I/Os
  double elapsed_seconds = 0;       ///< first arrival -> last completion (sim)
  double client_seconds = 0;        ///< integral of in-flight sessions (sim)
  uint64_t peak_concurrency = 0;    ///< max simultaneous sessions
  double mean_concurrency = 0;      ///< client_seconds / elapsed_seconds
  /// Offered-vs-delivered sojourn latency: scheduled arrival to completion,
  /// so backlog from under-delivery shows up as latency, as it would to an
  /// arriving user.
  util::PercentileDigest sojourn_seconds;
};

/// Drives the full run: mounts, preps files (untimed), then replays the
/// arrival schedule over the deployment's client nodes (session s runs on
/// client node s % client_count).  Runs the simulation to completion.
OpenLoopResult run_open_loop(core::Deployment& d, const OpenLoopConfig& cfg);

}  // namespace dpnfs::workload
