#include "workload/ior.hpp"

#include "util/format.hpp"

namespace dpnfs::workload {

using rpc::Payload;
using sim::Task;

std::string IorWorkload::name() const {
  return util::sformat("IOR-%s-%s-%lluKB", config_.write ? "write" : "read",
                       config_.single_file ? "single" : "separate",
                       static_cast<unsigned long long>(config_.block_size / 1024));
}

std::string IorWorkload::path_for(size_t client) const {
  return config_.single_file ? "/ior/shared" : "/ior/f" + std::to_string(client);
}

uint64_t IorWorkload::base_offset(size_t client) const {
  return config_.single_file ? client * config_.bytes_per_client : 0;
}

Task<void> IorWorkload::stream(core::File& file, uint64_t base, bool do_write) {
  const uint64_t total = config_.bytes_per_client;
  for (uint64_t done = 0; done < total;) {
    const uint64_t n = std::min(config_.block_size, total - done);
    if (do_write) {
      co_await file.write(base + done, Payload::virtual_bytes(n));
    } else {
      Payload p = co_await file.read(base + done, n);
      if (p.size() != n) {
        throw std::runtime_error("IOR short read");
      }
    }
    done += n;
  }
}

Task<void> IorWorkload::setup(core::Deployment& d) {
  co_await d.client(0).mkdir("/ior");
  if (config_.single_file) {
    auto f = co_await d.client(0).open("/ior/shared", true);
    co_await f->close();
  }
  if (!config_.write) {
    // Pre-write the dataset so reads hit warm server caches (paper §6.2),
    // then drop the *client* caches: the paper's read runs start with cold
    // clients.
    sim::WaitGroup wg(d.simulation());
    for (size_t i = 0; i < d.client_count(); ++i) {
      wg.spawn([](IorWorkload& self, core::Deployment& d, size_t i) -> Task<void> {
        auto f = co_await d.client(i).open(self.path_for(i), true);
        co_await self.stream(*f, self.base_offset(i), /*do_write=*/true);
        co_await f->close();
      }(*this, d, i));
    }
    co_await wg.wait();
    for (size_t i = 0; i < d.client_count(); ++i) d.client(i).drop_caches();
  }
}

Task<void> IorWorkload::client_main(core::Deployment& d, size_t client) {
  std::unique_ptr<core::File> f;
  if (config_.write) {
    f = co_await d.client(client).open(path_for(client), true);
  } else {
    f = co_await d.client(client).open_read(path_for(client));
  }
  co_await stream(*f, base_offset(client), config_.write);
  co_await f->close();
}

}  // namespace dpnfs::workload
