// IOR micro-benchmark (paper §6.2).
//
// Each client sequentially writes (or reads) a 500 MB stream — either a
// separate file per client or a disjoint portion of one shared file — using
// a configurable application block size (the paper uses 2-4 MB "large" and
// 8 KB "small" blocks).  Read runs pre-write the data in setup, leaving the
// server caches warm exactly as the paper's read experiments do.
#pragma once

#include "workload/runner.hpp"

namespace dpnfs::workload {

struct IorConfig {
  bool write = true;           ///< false: read (after a warm-up pre-write)
  bool single_file = false;    ///< true: disjoint regions of one file
  uint64_t bytes_per_client = 500'000'000;
  uint64_t block_size = 2ull << 20;
};

class IorWorkload final : public Workload {
 public:
  explicit IorWorkload(IorConfig config) : config_(config) {}

  std::string name() const override;
  sim::Task<void> setup(core::Deployment& d) override;
  sim::Task<void> client_main(core::Deployment& d, size_t client) override;

 private:
  std::string path_for(size_t client) const;
  uint64_t base_offset(size_t client) const;
  sim::Task<void> stream(core::File& file, uint64_t base, bool do_write);

  IorConfig config_;
};

}  // namespace dpnfs::workload
