#include "workload/tenant_mix.hpp"

#include <stdexcept>

namespace dpnfs::workload {

using sim::Task;

TenantMixWorkload::TenantMixWorkload(
    std::vector<std::unique_ptr<Workload>> children)
    : children_(std::move(children)) {
  if (children_.empty()) {
    throw std::invalid_argument("tenant mix needs at least one child");
  }
}

std::string TenantMixWorkload::name() const {
  std::string out = "tenant-mix(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) out += "+";
    out += children_[i]->name();
  }
  out += ")";
  return out;
}

Task<void> TenantMixWorkload::setup(core::Deployment& d) {
  // Every child prepares its own files; clients are disjoint across
  // children, so the setups don't contend for paths.
  for (auto& child : children_) co_await child->setup(d);
}

Task<void> TenantMixWorkload::client_main(core::Deployment& d, size_t client) {
  co_await children_[client % children_.size()]->client_main(d, client);
}

uint64_t TenantMixWorkload::total_transactions() const {
  uint64_t total = 0;
  for (const auto& child : children_) total += child->total_transactions();
  return total;
}

}  // namespace dpnfs::workload
