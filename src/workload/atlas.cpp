#include "workload/atlas.hpp"

#include <utility>
#include <vector>

namespace dpnfs::workload {

using rpc::Payload;
using sim::Task;

uint64_t AtlasWorkload::draw_request_size(util::Rng& rng) const {
  if (rng.chance(config_.p_small)) {
    return rng.range(config_.small_min, config_.small_max);
  }
  return rng.range(config_.large_min, config_.large_max);
}

Task<void> AtlasWorkload::setup(core::Deployment& d) {
  co_await d.client(0).mkdir("/atlas");
}

Task<void> AtlasWorkload::client_main(core::Deployment& d, size_t client) {
  util::Rng rng = util::Rng(config_.seed).fork(client);
  auto f = co_await d.client(client).open("/atlas/f" + std::to_string(client),
                                          true);
  // Digitization writes each region of the output file exactly once, but in
  // data-driven (effectively random) order: cut the file into segments with
  // the published size distribution, then shuffle the issue order.
  struct Segment {
    uint64_t offset;
    uint64_t length;
  };
  std::vector<Segment> segments;
  uint64_t pos = 0;
  while (pos < config_.bytes_per_client) {
    const uint64_t n = std::min(draw_request_size(rng),
                                config_.bytes_per_client - pos);
    segments.push_back(Segment{pos, n});
    pos += n;
  }
  for (size_t i = segments.size(); i > 1; --i) {  // Fisher-Yates
    std::swap(segments[i - 1], segments[rng.below(i)]);
  }
  for (const Segment& seg : segments) {
    co_await f->write(seg.offset, Payload::virtual_bytes(seg.length));
  }
  co_await f->close();
}

}  // namespace dpnfs::workload
