#include "workload/oltp.hpp"

namespace dpnfs::workload {

using rpc::Payload;
using sim::Task;

Task<void> OltpWorkload::setup(core::Deployment& d) {
  // Populate the database file (untimed), then force it to disk.
  co_await d.client(0).mkdir("/oltp");
  auto f = co_await d.client(0).open("/oltp/db", true);
  const uint64_t chunk = 4ull << 20;
  for (uint64_t off = 0; off < config_.file_bytes; off += chunk) {
    co_await f->write(off, Payload::virtual_bytes(
                               std::min(chunk, config_.file_bytes - off)));
  }
  co_await f->close();
}

Task<void> OltpWorkload::client_main(core::Deployment& d, size_t client) {
  util::Rng rng = util::Rng(config_.seed).fork(client);
  auto f = co_await d.client(client).open("/oltp/db", false);
  const uint64_t slots = config_.file_bytes / config_.io_size;
  for (uint32_t txn = 0; txn < config_.transactions_per_client; ++txn) {
    const sim::Time t0 = d.simulation().now();
    if (config_.update_only) {
      for (uint32_t u = 0; u < config_.updates_per_txn; ++u) {
        const uint64_t offset = rng.below(slots) * config_.io_size;
        co_await f->write(offset, Payload::virtual_bytes(config_.io_size));
      }
    } else {
      const uint64_t offset = rng.below(slots) * config_.io_size;
      Payload page = co_await f->read(offset, config_.io_size);
      if (page.size() != config_.io_size) {
        throw std::runtime_error("OLTP short read");
      }
      co_await f->write(offset, Payload::virtual_bytes(config_.io_size));
    }
    co_await f->fsync();  // data to stable storage after each transaction
    latencies_.add(sim::to_seconds(d.simulation().now() - t0));
    ++completed_;
  }
  co_await f->close();
}

}  // namespace dpnfs::workload
