// Tenant-mix composite workload.
//
// Partitions the deployment's clients across N child workloads by global
// client index (client i runs children[i % N]), matching the round-robin
// tenant assignment ClusterConfig::tenants applies — so with tenants == N,
// tenant k's traffic is exactly child workload (k - 1)'s traffic.  Used for
// the per-tenant attribution experiments (e.g. sequential ingest on one
// tenant vs. OLTP on the other).
#pragma once

#include <memory>
#include <vector>

#include "workload/runner.hpp"

namespace dpnfs::workload {

class TenantMixWorkload final : public Workload {
 public:
  explicit TenantMixWorkload(std::vector<std::unique_ptr<Workload>> children);

  std::string name() const override;
  sim::Task<void> setup(core::Deployment& d) override;
  sim::Task<void> client_main(core::Deployment& d, size_t client) override;
  uint64_t total_transactions() const override;

  size_t child_count() const noexcept { return children_.size(); }

 private:
  std::vector<std::unique_ptr<Workload>> children_;
};

}  // namespace dpnfs::workload
