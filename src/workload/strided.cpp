#include "workload/strided.hpp"

namespace dpnfs::workload {

using rpc::Payload;
using sim::Task;

Task<void> StridedWorkload::setup(core::Deployment& d) {
  barrier_ = std::make_unique<sim::Barrier>(d.simulation(), d.client_count());
  co_await d.client(0).mkdir("/strided");
  auto f = co_await d.client(0).open("/strided/out", true);
  co_await f->close();
}

Task<void> StridedWorkload::client_main(core::Deployment& d, size_t client) {
  const uint64_t n = d.client_count();
  const sim::Duration compute =
      config_.compute_per_checkpoint / static_cast<int64_t>(n);
  auto f = co_await d.client(client).open("/strided/out", false);
  for (uint32_t k = 0; k < config_.checkpoints; ++k) {
    co_await d.simulation().delay(compute);
    for (uint32_t r = 0; r < config_.records_per_checkpoint; ++r) {
      const uint64_t slot =
          (static_cast<uint64_t>(k) * config_.records_per_checkpoint + r) * n +
          client;
      co_await f->write(slot * config_.record_bytes,
                        Payload::virtual_bytes(config_.record_bytes));
    }
    co_await f->fsync();  // checkpoint: records to stable storage
  }
  co_await f->close();
  co_await barrier_->arrive_and_wait();  // MPI_Barrier before verification

  if (config_.verify_read && client == 0) {
    // Rank 0 re-reads the dense result file, 2 MB at a time; reopen so the
    // size reflects every rank's committed records.
    const uint64_t total = config_.file_bytes(n);
    auto rf = co_await d.client(client).open("/strided/out", false);
    if (rf->size() < total) {
      throw std::runtime_error("strided result file short");
    }
    const uint64_t chunk = 2ull << 20;
    for (uint64_t off = 0; off < total;) {
      const uint64_t len = std::min(chunk, total - off);
      Payload p = co_await rf->read(off, len);
      if (p.size() != len) throw std::runtime_error("strided short read");
      off += len;
    }
    co_await rf->close();
  }
}

}  // namespace dpnfs::workload
