// I/O trace replay (the paper replays ATLAS Digitization traces with
// IOZone; this is the general facility).
//
// A trace is an ordered list of records, one per client operation:
//
//   # comment
//   <client> <op> <path> <offset> <length>
//
// with op in {read, write, fsync, open, close, mkdir}.  `parse_trace`
// reads the textual form; `TraceWorkload` replays a record list against
// any deployment, each client replaying its own subsequence in order.
// Ordering is guaranteed only WITHIN a client; records of different
// clients replay concurrently.
#pragma once

#include <string>
#include <vector>

#include "workload/runner.hpp"

namespace dpnfs::workload {

struct TraceRecord {
  enum class Op { kRead, kWrite, kFsync, kOpen, kClose, kMkdir };

  uint32_t client = 0;
  Op op = Op::kWrite;
  std::string path;
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// Parses the textual trace format; throws std::invalid_argument with a
/// line number on malformed input.  Lines starting with '#' and blank
/// lines are skipped.
std::vector<TraceRecord> parse_trace(const std::string& text);

class TraceWorkload final : public Workload {
 public:
  explicit TraceWorkload(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}

  std::string name() const override { return "trace-replay"; }
  sim::Task<void> setup(core::Deployment& d) override;
  sim::Task<void> client_main(core::Deployment& d, size_t client) override;

  uint64_t operations_replayed() const noexcept { return replayed_; }

 private:
  std::vector<TraceRecord> records_;
  uint64_t replayed_ = 0;
};

}  // namespace dpnfs::workload
