#include "workload/trace.hpp"

#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace dpnfs::workload {

using sim::Task;

std::vector<TraceRecord> parse_trace(const std::string& text) {
  std::vector<TraceRecord> out;
  std::istringstream lines(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    TraceRecord rec;
    std::string op;
    if (!(fields >> rec.client >> op >> rec.path)) {
      throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                  ": expected '<client> <op> <path> ...'");
    }
    if (op == "read") {
      rec.op = TraceRecord::Op::kRead;
    } else if (op == "write") {
      rec.op = TraceRecord::Op::kWrite;
    } else if (op == "fsync") {
      rec.op = TraceRecord::Op::kFsync;
    } else if (op == "open") {
      rec.op = TraceRecord::Op::kOpen;
    } else if (op == "close") {
      rec.op = TraceRecord::Op::kClose;
    } else if (op == "mkdir") {
      rec.op = TraceRecord::Op::kMkdir;
    } else {
      throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                  ": unknown op '" + op + "'");
    }
    if (rec.op == TraceRecord::Op::kRead || rec.op == TraceRecord::Op::kWrite) {
      if (!(fields >> rec.offset >> rec.length)) {
        throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                    ": read/write need offset and length");
      }
    }
    out.push_back(std::move(rec));
  }
  return out;
}

Task<void> TraceWorkload::setup(core::Deployment& d) {
  // Create any directories referenced by mkdir records up front would be
  // wrong (they are part of the replay); nothing to do here.
  (void)d;
  co_return;
}

Task<void> TraceWorkload::client_main(core::Deployment& d, size_t client) {
  auto& fs = d.client(client);
  std::map<std::string, std::unique_ptr<core::File>> open_files;

  for (const TraceRecord& rec : records_) {
    if (rec.client != client) continue;
    switch (rec.op) {
      case TraceRecord::Op::kMkdir:
        co_await fs.mkdir(rec.path);
        break;
      case TraceRecord::Op::kOpen:
        if (!open_files.contains(rec.path)) {
          open_files[rec.path] = co_await fs.open(rec.path, /*create=*/true);
        }
        break;
      case TraceRecord::Op::kClose: {
        auto it = open_files.find(rec.path);
        if (it != open_files.end()) {
          co_await it->second->close();
          open_files.erase(it);
        }
        break;
      }
      case TraceRecord::Op::kRead:
      case TraceRecord::Op::kWrite:
      case TraceRecord::Op::kFsync: {
        auto it = open_files.find(rec.path);
        if (it == open_files.end()) {
          open_files[rec.path] = co_await fs.open(rec.path, /*create=*/true);
          it = open_files.find(rec.path);
        }
        if (rec.op == TraceRecord::Op::kRead) {
          (void)co_await it->second->read(rec.offset, rec.length);
        } else if (rec.op == TraceRecord::Op::kWrite) {
          co_await it->second->write(rec.offset,
                                     rpc::Payload::virtual_bytes(rec.length));
        } else {
          co_await it->second->fsync();
        }
        break;
      }
    }
    ++replayed_;
  }
  for (auto& [path, file] : open_files) co_await file->close();
}

}  // namespace dpnfs::workload
