// Postmark (paper §6.4.2): mail/news/web-service style metadata and small
// I/O.  Each client owns an instance: 100 files (1 KB - 500 KB) in 10
// directories; 2,000 transactions, each of which first deletes, creates, or
// opens a file and then reads or appends 512 bytes, with appended data
// stable before close.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "workload/runner.hpp"

namespace dpnfs::workload {

struct PostmarkConfig {
  uint32_t directories = 10;
  uint32_t initial_files = 100;
  uint32_t transactions = 2'000;
  uint64_t min_file_bytes = 1024;
  uint64_t max_file_bytes = 500 * 1024;
  uint32_t io_bytes = 512;
  uint64_t seed = 99;
};

class PostmarkWorkload final : public Workload {
 public:
  explicit PostmarkWorkload(PostmarkConfig config) : config_(config) {}

  std::string name() const override { return "Postmark"; }
  sim::Task<void> setup(core::Deployment& d) override;
  sim::Task<void> client_main(core::Deployment& d, size_t client) override;
  uint64_t total_transactions() const override { return completed_; }

 private:
  struct Instance {
    std::vector<std::string> files;  ///< live file paths
    std::vector<uint64_t> sizes;     ///< tracked sizes (offsets for reads)
    uint32_t next_serial = 0;
  };

  std::string dir_of(size_t client, uint32_t dir) const;
  sim::Task<void> create_file(core::Deployment& d, size_t client, Instance& inst,
                              util::Rng& rng);

  PostmarkConfig config_;
  uint64_t completed_ = 0;
};

}  // namespace dpnfs::workload
