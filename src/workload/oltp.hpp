// OLTP macro-benchmark (paper §6.4.1).
//
// A database-style workload: each client performs transactions against one
// large shared file; a transaction is a random 8 KB read-modify-write with
// the data forced to stable storage afterwards.
#pragma once

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/runner.hpp"

namespace dpnfs::workload {

struct OltpConfig {
  uint64_t file_bytes = 512ull << 20;
  uint32_t transactions_per_client = 20'000;
  uint32_t io_size = 8192;
  uint64_t seed = 7;
  /// Update-only mode: skip the read half and batch `updates_per_txn`
  /// random page writes per transaction, forced together by one fsync.
  /// Random small updates rarely land adjacent, so the batch exercises the
  /// vectored write-back path.
  bool update_only = false;
  uint32_t updates_per_txn = 8;
};

class OltpWorkload final : public Workload {
 public:
  explicit OltpWorkload(OltpConfig config) : config_(config) {}

  std::string name() const override {
    return config_.update_only ? "OLTP-update" : "OLTP";
  }
  sim::Task<void> setup(core::Deployment& d) override;
  sim::Task<void> client_main(core::Deployment& d, size_t client) override;
  uint64_t total_transactions() const override { return completed_; }

  /// Per-transaction latencies in seconds (all clients pooled).  A
  /// streaming digest, not a keep-every-sample Summary: thousand-client
  /// runs stay O(1) memory per added transaction.
  const util::PercentileDigest& latencies() const noexcept {
    return latencies_;
  }

 private:
  OltpConfig config_;
  uint64_t completed_ = 0;
  util::PercentileDigest latencies_;
};

}  // namespace dpnfs::workload
