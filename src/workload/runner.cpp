#include "workload/runner.hpp"

#include <cstdlib>
#include <stdexcept>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace dpnfs::workload {

using sim::Task;

namespace {

uint64_t total_app_bytes(core::Deployment& d) {
  uint64_t total = 0;
  for (size_t i = 0; i < d.client_count(); ++i) {
    total += d.client(i).bytes_read() + d.client(i).bytes_written();
  }
  return total;
}

Task<void> drive(core::Deployment& d, Workload& w, RunResult& result,
                 bool& completed, std::string& first_error) {
  try {
    co_await d.mount_all();
    co_await w.setup(d);
  } catch (const std::exception& e) {
    first_error = e.what();
    completed = true;  // completed-with-error; run_workload rethrows
    co_return;
  }

  const sim::Time t0 = d.simulation().now();
  const uint64_t bytes0 = total_app_bytes(d);

  // Utilization sampling covers the timed phase only (like the reported
  // numbers); the stop below lets the event queue drain after the clients
  // finish.
  d.start_sampling();

  sim::WaitGroup wg(d.simulation());
  for (size_t i = 0; i < d.client_count(); ++i) {
    wg.spawn([](core::Deployment& d, Workload& w, size_t i,
                std::string& first_error) -> Task<void> {
      // Seeded start stagger, as on a real cluster (also prevents the
      // phase-locked request convoys a deterministic simulator would
      // otherwise manufacture).  Uniform per client — unlike the old
      // linear i*2.3ms ramp, the spread does not grow with client count,
      // so sweeps compare steady state at every point.
      const auto& cfg = d.config();
      if (cfg.start_stagger > 0) {
        co_await d.simulation().delay(static_cast<sim::Duration>(
            util::Rng(cfg.start_stagger_seed)
                .fork(static_cast<uint64_t>(i))
                .below(static_cast<uint64_t>(cfg.start_stagger))));
      }
      try {
        co_await w.client_main(d, i);
      } catch (const std::exception& e) {
        if (first_error.empty()) first_error = e.what();
      }
    }(d, w, i, first_error));
  }
  co_await wg.wait();
  d.stop_sampling();

  result.elapsed_seconds = sim::to_seconds(d.simulation().now() - t0);
  result.app_bytes = total_app_bytes(d) - bytes0;
  result.transactions = w.total_transactions();
  completed = true;
}

}  // namespace

RunResult run_workload(core::Deployment& d, Workload& w) {
  RunResult result;
  bool completed = false;
  std::string first_error;
  d.simulation().spawn(drive(d, w, result, completed, first_error));
  d.simulation().run();
  if (!first_error.empty()) {
    throw std::runtime_error("workload '" + w.name() +
                             "' failed: " + first_error);
  }
  if (!completed) {
    throw std::runtime_error("workload '" + w.name() +
                             "' deadlocked: simulation drained early");
  }
  result.metrics_json = d.metrics_json();
  result.breakdown_json = obs::analyze_all(d.tracer()).to_json(
      core::architecture_name(d.architecture()));
  util::logf(util::LogLevel::kInfo, "runner", d.simulation().now(),
             "%s on %s: %.3fs, %.1f MB/s", w.name().c_str(),
             core::architecture_name(d.architecture()), result.elapsed_seconds,
             result.aggregate_mbps());
  if (const char* flag = std::getenv("DPNFS_METRICS_REPORT");
      flag != nullptr && flag[0] != '\0' && flag[0] != '0') {
    d.print_metrics_report();
  }
  return result;
}

}  // namespace dpnfs::workload
