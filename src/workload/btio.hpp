// NPB 2.4 BT-IO, class A (paper §6.3.2).
//
// 200 time steps of CFD computation; every 5th step the solution is
// appended to a shared checkpoint file via MPI-IO collective buffering
// (requests >= 1 MB, rank-contiguous).  The final file is 400 MB; the
// benchmark time also includes re-reading and verifying the result, which
// rank 0 performs here.  Computation parallelizes across clients.
#pragma once

#include "workload/runner.hpp"

namespace dpnfs::workload {

struct BtioConfig {
  uint64_t file_bytes = 400'000'000;
  uint32_t time_steps = 200;
  uint32_t checkpoint_every = 5;
  /// Total single-node compute time for all steps (divided by client count).
  sim::Duration compute_total = sim::sec(900);
  bool verify_read = true;
};

class BtioWorkload final : public Workload {
 public:
  explicit BtioWorkload(BtioConfig config) : config_(config) {}

  std::string name() const override { return "NPB-BTIO-classA"; }
  sim::Task<void> setup(core::Deployment& d) override;
  sim::Task<void> client_main(core::Deployment& d, size_t client) override;

 private:
  BtioConfig config_;
  std::unique_ptr<sim::Barrier> barrier_;
};

}  // namespace dpnfs::workload
