// Strided checkpoint variant of BT-IO (the list-I/O showcase).
//
// Each checkpoint interleaves fixed-size records round-robin across the
// clients: client c owns file slots (k*R + r)*n_clients + c.  Within one
// checkpoint a client's dirty extents are therefore mutually non-adjacent
// (stride = n_clients * record_bytes), so plain extent coalescing cannot
// merge them — only vectored WRITEs fold them into few RPCs.  Across all
// clients the final file is dense.  Fully deterministic: no RNG anywhere.
#pragma once

#include "workload/runner.hpp"

namespace dpnfs::workload {

struct StridedConfig {
  uint32_t record_bytes = 8192;
  uint32_t records_per_checkpoint = 64;  ///< per client per checkpoint
  uint32_t checkpoints = 4;
  /// Single-node compute time per checkpoint (divided by client count).
  sim::Duration compute_per_checkpoint = sim::ms(50);
  bool verify_read = true;

  uint64_t file_bytes(uint64_t n_clients) const {
    return static_cast<uint64_t>(checkpoints) * records_per_checkpoint *
           n_clients * record_bytes;
  }
};

class StridedWorkload final : public Workload {
 public:
  explicit StridedWorkload(StridedConfig config) : config_(config) {}

  std::string name() const override { return "BTIO-strided"; }
  sim::Task<void> setup(core::Deployment& d) override;
  sim::Task<void> client_main(core::Deployment& d, size_t client) override;

 private:
  StridedConfig config_;
  std::unique_ptr<sim::Barrier> barrier_;
};

}  // namespace dpnfs::workload
