// Workload runner: drives a workload against a deployment and measures the
// paper's metrics (aggregate MB/s, transactions/s, elapsed time) over the
// timed phase only — setup (file creation, pre-writes for warm-cache reads)
// is excluded, mirroring how IOR/IOZone/Postmark report.
#pragma once

#include <string>

#include "core/deployment.hpp"

namespace dpnfs::workload {

struct RunResult {
  double elapsed_seconds = 0;
  uint64_t app_bytes = 0;      ///< application-level bytes moved while timed
  uint64_t transactions = 0;
  /// Full observability export (Deployment::metrics_json) taken when the
  /// run finished: per-node metrics plus the RPC trace aggregate.
  std::string metrics_json;
  /// Critical-path latency attribution over every retained trace
  /// (obs::BreakdownReport::to_json): exclusive per-phase nanoseconds —
  /// client queue, request wire, server queue, service CPU, disk, reply
  /// wire — totalled and split per op.
  std::string breakdown_json;

  const std::string& latency_breakdown_json() const { return breakdown_json; }

  /// Decimal MB/s, the paper's unit.
  double aggregate_mbps() const {
    return elapsed_seconds > 0 ? static_cast<double>(app_bytes) / 1e6 / elapsed_seconds
                               : 0.0;
  }
  double tps() const {
    return elapsed_seconds > 0 ? static_cast<double>(transactions) / elapsed_seconds
                               : 0.0;
  }
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Untimed preparation (directories, pre-written data).  Runs after all
  /// clients have mounted.
  virtual sim::Task<void> setup(core::Deployment& d) {
    (void)d;
    co_return;
  }

  /// The timed per-client body; one invocation per client node, concurrent.
  virtual sim::Task<void> client_main(core::Deployment& d, size_t client) = 0;

  /// Transactions completed across all clients (OLTP/Postmark metrics).
  virtual uint64_t total_transactions() const { return 0; }
};

/// Runs `w` on `d` to completion and reports the timed phase.  Set the
/// environment variable DPNFS_METRICS_REPORT=1 to print the per-node
/// metrics report after every run.
RunResult run_workload(core::Deployment& d, Workload& w);

}  // namespace dpnfs::workload
