#include "lfs/object_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/fault.hpp"

namespace dpnfs::lfs {

using rpc::Payload;
using sim::Task;

ObjectStore::ObjectStore(sim::Node& node, ObjectStoreParams params)
    : node_(node), params_(params) {
  if (!node.has_disk()) {
    throw std::logic_error("ObjectStore requires a node with a disk");
  }
}

void ObjectStore::create(ObjectId oid) {
  const auto [it, inserted] = objects_.try_emplace(oid);
  if (!inserted) throw std::logic_error("object already exists");
  it->second.slab_index = next_slab_++;
}

void ObjectStore::remove(ObjectId oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) throw std::logic_error("remove: no such object");
  dirty_bytes_ -= it->second.dirty.total_length();
  objects_.erase(it);
  // Stale dirty_queue_ and cache entries are skipped lazily.
}

uint64_t ObjectStore::size(ObjectId oid) const { return get(oid).size; }

ObjectStore::Object& ObjectStore::get(ObjectId oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) throw std::logic_error("no such object");
  return it->second;
}

const ObjectStore::Object& ObjectStore::get(ObjectId oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) throw std::logic_error("no such object");
  return it->second;
}

uint64_t ObjectStore::disk_position(const Object& obj, uint64_t offset) const {
  return obj.slab_index * params_.object_slab_bytes + offset;
}

Task<void> ObjectStore::disk_io(uint64_t pos, uint64_t bytes) {
  if (node_.disk_failed()) throw sim::DiskFailedError(node_.name());
  const sim::Time t0 = node_.simulation().now();
  co_await node_.disk().io(pos, bytes);
  stats_.disk_time_ns +=
      static_cast<uint64_t>(node_.simulation().now() - t0);
}

void ObjectStore::truncate(ObjectId oid, uint64_t new_size) {
  Object& obj = get(oid);
  if (new_size < obj.size) {
    const uint64_t kEnd = ~0ull;
    obj.content.drop(new_size, kEnd);
    const uint64_t before = obj.dirty.total_length();
    obj.dirty.subtract(new_size, kEnd);
    dirty_bytes_ -= before - obj.dirty.total_length();
  }
  obj.size = new_size;
}

void ObjectStore::touch_cache(ObjectId oid, uint64_t start, uint64_t end) {
  const uint64_t block = params_.cache_block_bytes;
  const uint64_t max_blocks = params_.cache_limit_bytes / block;
  for (uint64_t b = start / block; b <= (end == 0 ? 0 : (end - 1) / block); ++b) {
    const BlockKey key{oid, b};
    auto it = resident_.find(key);
    if (it != resident_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      continue;
    }
    lru_.push_front(key);
    resident_.emplace(key, lru_.begin());
    while (resident_.size() > max_blocks) {
      resident_.erase(lru_.back());
      lru_.pop_back();
    }
  }
}

bool ObjectStore::cache_covers(ObjectId oid, uint64_t start, uint64_t end) {
  const uint64_t block = params_.cache_block_bytes;
  if (start >= end) return true;
  for (uint64_t b = start / block; b <= (end - 1) / block; ++b) {
    if (!resident_.contains(BlockKey{oid, b})) return false;
  }
  return true;
}

void ObjectStore::warm(ObjectId oid) {
  const Object& obj = get(oid);
  if (obj.size > 0) touch_cache(oid, 0, obj.size);
}

void ObjectStore::drop_caches() {
  lru_.clear();
  resident_.clear();
}

uint64_t ObjectStore::drop_dirty() {
  const uint64_t lost = dirty_bytes_;
  for (auto& [oid, obj] : objects_) {
    for (const auto& iv : obj.dirty.intervals()) {
      obj.content.drop(iv.start, iv.end);
    }
    obj.dirty.clear();
  }
  dirty_queue_.clear();
  dirty_bytes_ = 0;
  return lost;
}

Task<void> ObjectStore::write(ObjectId oid, uint64_t offset, Payload data,
                              bool stable) {
  if (!exists(oid)) create(oid);
  Object& obj = get(oid);
  const uint64_t len = data.size();
  const uint64_t end = offset + len;

  obj.content.store(offset, data);
  obj.size = std::max(obj.size, end);

  const uint64_t before = obj.dirty.total_length();
  obj.dirty.add(offset, end);
  dirty_bytes_ += obj.dirty.total_length() - before;
  dirty_queue_.push_back(DirtyExtent{oid, offset, end});
  touch_cache(oid, offset, end);

  if (stable) {
    co_await flush_object(oid);
  } else if (dirty_bytes_ > params_.dirty_limit_bytes) {
    // Throttled write-behind: the writer that overflows the buffer pays for
    // draining it back under the limit.
    co_await flush_until(params_.dirty_limit_bytes);
  }
}

Task<void> ObjectStore::flush_until(uint64_t target_dirty) {
  while (dirty_bytes_ > target_dirty && !dirty_queue_.empty()) {
    DirtyExtent ext = dirty_queue_.front();
    dirty_queue_.pop_front();
    auto it = objects_.find(ext.oid);
    if (it == objects_.end()) continue;  // removed since queueing
    Object& obj = it->second;
    // Skip entries whose own range was already flushed (by coalescing or a
    // commit); otherwise coalesce up to a full chunk of dirty bytes starting
    // where this entry's dirty data begins — interleaved small writers must
    // not degrade the disk to seek-per-write.
    const auto own = obj.dirty.intersection(ext.start, ext.end);
    if (own.empty()) continue;
    const uint64_t anchor = own.front().start;
    const uint64_t flush_end =
        std::max(ext.end, anchor + params_.flush_chunk_bytes);
    const auto todo = obj.dirty.intersection(anchor, flush_end);
    for (const auto& iv : todo) {
      obj.dirty.subtract(iv.start, iv.end);
      dirty_bytes_ -= iv.length();
    }
    try {
      co_await write_extents(obj, todo);
    } catch (...) {
      requeue_unflushed(ext.oid, obj, todo);
      throw;
    }
  }
}

Task<void> ObjectStore::write_extents(
    Object& obj, const std::vector<util::IntervalSet::Interval>& todo) {
  for (size_t i = 0; i < todo.size(); ++i) {
    uint64_t pos = todo[i].start;
    while (pos < todo[i].end) {
      const uint64_t n = std::min(params_.flush_chunk_bytes, todo[i].end - pos);
      try {
        co_await disk_io(disk_position(obj, pos), n);
      } catch (...) {
        flush_fail_index_ = i;
        flush_fail_pos_ = pos;
        throw;
      }
      stats_.disk_write_bytes += n;
      ++stats_.disk_writes;
      pos += n;
    }
  }
}

void ObjectStore::requeue_unflushed(ObjectId oid, Object& obj,
                                    const std::vector<util::IntervalSet::Interval>& todo) {
  // Everything from the failing chunk onward never reached the disk: put it
  // back so a later commit retries instead of silently dropping it.
  for (size_t j = flush_fail_index_; j < todo.size(); ++j) {
    const uint64_t from = j == flush_fail_index_ ? flush_fail_pos_ : todo[j].start;
    if (from >= todo[j].end) continue;
    const uint64_t before = obj.dirty.total_length();
    obj.dirty.add(from, todo[j].end);
    dirty_bytes_ += obj.dirty.total_length() - before;
    dirty_queue_.push_back(DirtyExtent{oid, from, todo[j].end});
  }
}

Task<void> ObjectStore::flush_object(ObjectId oid) {
  Object& obj = get(oid);
  if (!obj.flush_lock) {
    obj.flush_lock = std::make_unique<sim::Semaphore>(node_.simulation(), 1);
  }
  co_await obj.flush_lock->acquire();
  const auto todo = obj.dirty.intervals();
  for (const auto& iv : todo) {
    obj.dirty.subtract(iv.start, iv.end);
    dirty_bytes_ -= iv.length();
  }
  try {
    co_await write_extents(obj, todo);
  } catch (...) {
    // Disk failed mid-flush: the unwritten tail is still dirty, and the
    // lock must not wedge the retry a later commit will attempt.
    requeue_unflushed(oid, obj, todo);
    obj.flush_lock->release();
    throw;
  }
  obj.flush_lock->release();
}

Task<void> ObjectStore::commit(ObjectId oid) {
  if (!exists(oid)) co_return;
  co_await flush_object(oid);
}

Task<void> ObjectStore::commit_all() {
  // Snapshot ids first: flushing suspends and the map may grow meanwhile.
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [oid, obj] : objects_) {
    if (!obj.dirty.empty()) ids.push_back(oid);
  }
  for (ObjectId oid : ids) co_await commit(oid);
}

Task<Payload> ObjectStore::read(ObjectId oid, uint64_t offset, uint64_t length) {
  Object& obj = get(oid);
  if (offset >= obj.size) co_return Payload{};
  const uint64_t end = std::min(obj.size, offset + length);

  if (cache_covers(oid, offset, end)) {
    stats_.cache_hit_bytes += end - offset;
  } else {
    // Fetch the missing blocks from disk, block-aligned, coalescing
    // contiguous misses into single I/Os.
    stats_.cache_miss_bytes += end - offset;
    const uint64_t block = params_.cache_block_bytes;
    uint64_t run_start = 0;
    bool in_run = false;
    const uint64_t first_b = offset / block;
    const uint64_t last_b = (end - 1) / block;
    for (uint64_t b = first_b; b <= last_b + 1; ++b) {
      const bool miss = (b <= last_b) && !resident_.contains(BlockKey{oid, b});
      if (miss && !in_run) {
        run_start = b;
        in_run = true;
      } else if (!miss && in_run) {
        const uint64_t io_start = run_start * block;
        const uint64_t io_end = std::min(obj.size, b * block);
        co_await disk_io(disk_position(obj, io_start), io_end - io_start);
        stats_.disk_read_bytes += io_end - io_start;
        ++stats_.disk_reads;
        in_run = false;
      }
    }
  }
  touch_cache(oid, offset, end);
  co_return obj.content.load(offset, end - offset);
}

}  // namespace dpnfs::lfs
