// Per-node local object store.
//
// Every storage node — whether it backs a PVFS2 storage daemon or an NFSv4
// data server — keeps its file stripes in one of these.  The store models
// the performance-relevant behaviour of a local file system:
//
//   * Write-behind buffering: unstable writes land in a bounded dirty
//     buffer; when the buffer is full, writers flush the oldest dirty
//     extents to disk before proceeding (throttled write-back).
//   * Commit/fsync: flushes an object's dirty extents to stable storage.
//   * Page-cache tracking: recently written/read blocks are "resident";
//     resident reads cost no disk time (the paper's warm-cache reads).
//   * Disk layout: each object occupies a contiguous slab of the disk
//     address space, so in-object sequential access is sequential on disk
//     and cross-object interleaving pays positioning costs.
//
// Content handling mirrors rpc::Payload: real bytes are stored and verified
// end-to-end; virtual bytes are tracked by size only.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>

#include "rpc/payload.hpp"
#include "sim/network.hpp"
#include "sim/sync.hpp"
#include "util/interval_set.hpp"
#include "util/range_buffer.hpp"

namespace dpnfs::lfs {

using ObjectId = uint64_t;

struct ObjectStoreParams {
  uint64_t dirty_limit_bytes = 64ull << 20;   ///< write-behind buffer cap
  uint64_t cache_limit_bytes = 1536ull << 20; ///< page-cache budget
  uint64_t cache_block_bytes = 1ull << 20;    ///< cache-residency granularity
  uint64_t flush_chunk_bytes = 2ull << 20;    ///< writeback I/O size
  uint64_t object_slab_bytes = 16ull << 30;   ///< disk address spacing
};

struct ObjectStoreStats {
  uint64_t disk_read_bytes = 0;
  uint64_t disk_write_bytes = 0;
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t cache_hit_bytes = 0;
  uint64_t cache_miss_bytes = 0;
  /// Simulated time spent in disk I/O issued by this store, including arm
  /// queue wait.  Deltas across an operation give its disk attribution.
  uint64_t disk_time_ns = 0;
};

class ObjectStore {
 public:
  /// `node` must have a disk.
  ObjectStore(sim::Node& node, ObjectStoreParams params = {});
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  // -- Namespace (instant: callers charge CPU/metadata costs) --------------

  /// Creates an empty object.  Creating an existing object is an error.
  void create(ObjectId oid);
  bool exists(ObjectId oid) const noexcept { return objects_.contains(oid); }
  void remove(ObjectId oid);
  uint64_t size(ObjectId oid) const;
  void truncate(ObjectId oid, uint64_t new_size);

  // -- Data path (costs simulated time) -------------------------------------

  /// Writes `data` at `offset`.  `stable` forces the range to disk before
  /// returning (NFS FILE_SYNC / O_SYNC).  Extends the object as needed;
  /// creates it implicitly if absent.
  sim::Task<void> write(ObjectId oid, uint64_t offset, rpc::Payload data,
                        bool stable);

  /// Reads up to `length` bytes at `offset`; short at EOF.  Returns inline
  /// bytes whenever the range holds only real content (holes read as
  /// zeros); ranges touched by virtual writes return virtual payloads.
  sim::Task<rpc::Payload> read(ObjectId oid, uint64_t offset, uint64_t length);

  /// Flushes the object's dirty extents to disk (COMMIT / fsync).
  sim::Task<void> commit(ObjectId oid);

  /// Flushes everything (unmount / shutdown).
  sim::Task<void> commit_all();

  // -- Introspection ---------------------------------------------------------

  uint64_t dirty_bytes() const noexcept { return dirty_bytes_; }
  const ObjectStoreStats& stats() const noexcept { return stats_; }
  sim::Node& node() noexcept { return node_; }

  /// Marks an object's content resident in the page cache without disk I/O
  /// (benchmark warm-up helper).
  void warm(ObjectId oid);

  /// Drops all clean cache residency (benchmark cold-cache helper).
  void drop_caches();

  /// Crash semantics: the write-behind buffer was volatile memory, so a
  /// service restart loses every unflushed dirty extent.  Their content is
  /// dropped (lost ranges read back as zeros — the loss is observable, not
  /// papered over) and the dirty bookkeeping is cleared.  Object sizes and
  /// flushed data survive: metadata and stable storage are durable.
  /// Returns the number of dirty bytes lost.
  uint64_t drop_dirty();

 private:
  struct Object {
    uint64_t size = 0;
    uint64_t slab_index = 0;
    util::RangeBuffer content;
    util::IntervalSet dirty;  ///< not yet on disk
    std::unique_ptr<sim::Semaphore> flush_lock;  ///< serializes fsync
  };

  struct DirtyExtent {
    ObjectId oid;
    uint64_t start;
    uint64_t end;
  };

  Object& get(ObjectId oid);
  const Object& get(ObjectId oid) const;
  uint64_t disk_position(const Object& obj, uint64_t offset) const;

  /// One media access; throws sim::DiskFailedError while a scripted disk
  /// fault is active on this node.
  sim::Task<void> disk_io(uint64_t pos, uint64_t bytes);

  /// Marks [start, end) of `oid` cache-resident, evicting LRU blocks.
  void touch_cache(ObjectId oid, uint64_t start, uint64_t end);
  bool cache_covers(ObjectId oid, uint64_t start, uint64_t end);

  /// Flushes dirty extents (oldest first) until `target_dirty` or less
  /// remains.  Several writers may flush concurrently; the queue hand-off
  /// keeps each extent flushed exactly once.
  sim::Task<void> flush_until(uint64_t target_dirty);

  /// Flushes all dirty extents belonging to `oid`.
  sim::Task<void> flush_object(ObjectId oid);

  /// Writes `todo` to disk chunk by chunk.  On a disk fault, records how far
  /// it got in flush_fail_index_/flush_fail_pos_ and rethrows; the caller
  /// must requeue_unflushed() so the unwritten tail stays dirty.
  sim::Task<void> write_extents(
      Object& obj, const std::vector<util::IntervalSet::Interval>& todo);
  void requeue_unflushed(ObjectId oid, Object& obj,
                         const std::vector<util::IntervalSet::Interval>& todo);

  sim::Node& node_;
  ObjectStoreParams params_;
  std::unordered_map<ObjectId, Object> objects_;
  uint64_t next_slab_ = 0;

  std::deque<DirtyExtent> dirty_queue_;  ///< FIFO writeback order
  uint64_t dirty_bytes_ = 0;

  // Progress of the last failed write_extents() call, consumed by
  // requeue_unflushed() before the exception propagates further.
  size_t flush_fail_index_ = 0;
  uint64_t flush_fail_pos_ = 0;

  // Page-cache residency: block key -> LRU list position.
  using BlockKey = std::pair<ObjectId, uint64_t>;
  struct BlockKeyHash {
    size_t operator()(const BlockKey& k) const noexcept {
      return std::hash<uint64_t>()(k.first * 0x9E3779B97F4A7C15ULL ^ k.second);
    }
  };
  std::list<BlockKey> lru_;  // front = most recent
  std::unordered_map<BlockKey, std::list<BlockKey>::iterator, BlockKeyHash>
      resident_;

  ObjectStoreStats stats_;
};

}  // namespace dpnfs::lfs
