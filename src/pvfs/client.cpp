#include "pvfs/client.hpp"

#include <algorithm>

#include "sim/sync.hpp"
#include "util/log.hpp"

namespace dpnfs::pvfs {

using rpc::Payload;
using rpc::XdrDecoder;
using rpc::XdrEncoder;
using sim::Task;

namespace {
constexpr uint32_t kPvfsVersion = 2;
}

PvfsClient::PvfsClient(rpc::RpcFabric& fabric, sim::Node& node,
                       rpc::RpcAddress meta,
                       std::vector<rpc::RpcAddress> storage,
                       std::string principal, PvfsClientConfig config)
    : fabric_(fabric),
      node_(node),
      meta_(meta),
      storage_(std::move(storage)),
      rpc_(fabric, node, std::move(principal)),
      config_(config),
      buffers_(fabric.simulation(), config.buffer_count),
      daemons_(storage_.size()) {
  if (obs::MetricsRegistry* reg = fabric.metrics()) {
    const std::string& n = node.name();
    m_verifier_mismatches_ =
        &reg->counter(n, "client.replay", "verifier_mismatches");
    m_replayed_extents_ = &reg->counter(n, "client.replay", "replayed_extents");
    m_replayed_bytes_ = &reg->counter(n, "client.replay", "replayed_bytes");
  } else {
    m_verifier_mismatches_ = &obs::MetricsRegistry::null_counter();
    m_replayed_extents_ = &obs::MetricsRegistry::null_counter();
    m_replayed_bytes_ = &obs::MetricsRegistry::null_counter();
  }
}

PvfsStatus PvfsClient::reply_status(XdrDecoder& dec) {
  const uint32_t raw = dec.get_u32();
  return static_cast<PvfsStatus>(raw);
}

Task<rpc::RpcClient::Reply> PvfsClient::meta_call(MetaProc proc,
                                                  XdrEncoder args) {
  ++stats_.meta_requests;
  co_await node_.cpu().execute(config_.cpu_per_request);
  if (config_.vfs_meta_latency > 0) {
    co_await fabric_.simulation().delay(config_.vfs_meta_latency);
  }
  rpc::CallOptions opts;
  opts.timeout = config_.meta_timeout;
  opts.max_retries = config_.meta_retries > 0 ? config_.meta_retries - 1 : 0;
  auto reply = co_await rpc_.call(meta_, rpc::Program::kPvfsMeta, kPvfsVersion,
                                  static_cast<uint32_t>(proc), std::move(args),
                                  opts);
  if (reply.transport != rpc::Status::kOk) {
    throw PvfsError(PvfsStatus::kIo, "meta RPC timed out");
  }
  co_return reply;
}

Task<rpc::RpcClient::Reply> PvfsClient::io_call(uint32_t server_index,
                                                IoProc proc, XdrEncoder args,
                                                uint64_t data_bytes,
                                                obs::TraceContext trace) {
  co_await buffers_.acquire();
  ++stats_.storage_requests;
  co_await node_.cpu().execute(
      config_.cpu_per_request +
      static_cast<sim::Duration>(config_.cpu_ns_per_byte *
                                 static_cast<double>(data_bytes)));
  rpc::CallOptions opts;
  opts.timeout = config_.io_timeout;
  opts.max_retries = config_.io_retries > 0 ? config_.io_retries - 1 : 0;
  opts.parent = trace;
  auto reply = co_await rpc_.call(storage_.at(server_index),
                                  rpc::Program::kPvfsIo, kPvfsVersion,
                                  static_cast<uint32_t>(proc), std::move(args),
                                  opts);
  buffers_.release();
  if (reply.transport != rpc::Status::kOk) {
    throw PvfsError(PvfsStatus::kIo, "storage RPC timed out");
  }
  co_return reply;
}

// ---------------------------------------------------------------------------
// Crash recovery: write verifiers and replay
// ---------------------------------------------------------------------------

void PvfsClient::trim_range(PieceMap& pieces, uint64_t offset, uint64_t len) {
  if (len == 0 || pieces.empty()) return;
  const uint64_t end = offset + len;
  auto it = pieces.upper_bound(offset);
  if (it != pieces.begin()) --it;
  while (it != pieces.end() && it->first < end) {
    const uint64_t po = it->first;
    const uint64_t pe = po + it->second.data.size();
    if (pe <= offset) {
      ++it;
      continue;
    }
    RetainedPiece head;
    RetainedPiece tail;
    if (po < offset) {
      head.seq = it->second.seq;
      head.data = it->second.data.slice(0, offset - po);
    }
    if (pe > end) {
      tail.seq = it->second.seq;
      tail.data = it->second.data.slice(end - po, pe - end);
    }
    it = pieces.erase(it);
    if (head.data.size() > 0) pieces.emplace(po, std::move(head));
    if (tail.data.size() > 0) it = pieces.emplace(end, std::move(tail)).first;
  }
}

void PvfsClient::retain_piece(uint32_t server_index, uint64_t object_id,
                              uint64_t dfile_offset, Payload piece) {
  const uint64_t len = piece.size();
  if (len == 0) return;
  DaemonState& d = daemons_.at(server_index);
  // This write supersedes whatever it overlaps: older retained bytes of the
  // same incarnation and stale bytes awaiting replay (the daemon now holds
  // fresher data for the range).
  trim_range(d.retained[object_id], dfile_offset, len);
  auto sit = d.stale.find(object_id);
  if (sit != d.stale.end()) {
    trim_range(sit->second, dfile_offset, len);
    if (sit->second.empty()) d.stale.erase(sit);
  }
  d.retained[object_id].emplace(dfile_offset,
                                RetainedPiece{++retain_seq_, std::move(piece)});
}

void PvfsClient::note_daemon_verifier(uint32_t server_index,
                                      uint64_t verifier) {
  DaemonState& d = daemons_.at(server_index);
  if (!d.verifier_known) {
    d.verifier_known = true;
    d.verifier = verifier;
    return;
  }
  if (d.verifier == verifier) return;
  // The daemon restarted: every byte it buffered for us died with the old
  // incarnation.  Requeue our retained copies for replay.
  ++stats_.verifier_mismatches;
  m_verifier_mismatches_->inc();
  const uint64_t old_verifier = d.verifier;
  uint64_t moved = 0;
  for (auto& [oid, pieces] : d.retained) {
    PieceMap& stale = d.stale[oid];
    for (auto& [off, piece] : pieces) {
      trim_range(stale, off, piece.data.size());
      moved += piece.data.size();
      stale.emplace(off, std::move(piece));
    }
  }
  d.retained.clear();
  d.verifier = verifier;
  util::logf(util::LogLevel::kWarn, "pvfs.client", node_.simulation().now(),
             "%s: daemon %u write verifier changed (%016llx -> %016llx), "
             "%llu uncommitted bytes queued for replay",
             node_.name().c_str(), static_cast<unsigned>(server_index),
             static_cast<unsigned long long>(old_verifier),
             static_cast<unsigned long long>(verifier),
             static_cast<unsigned long long>(moved));
}

void PvfsClient::drop_replay_state() {
  for (DaemonState& d : daemons_) {
    d.retained.clear();
    d.stale.clear();
    // Verifiers survive: they identify *daemon* incarnations, which did not
    // restart just because this client's host did.
  }
}

Task<uint64_t> PvfsClient::replay_stale(PvfsFilePtr file,
                                        obs::TraceContext trace) {
  uint64_t replayed = 0;
  for (const auto& dfile : file->meta.dfiles) {
    DaemonState& d = daemons_.at(dfile.server_index);
    auto sit = d.stale.find(dfile.object_id);
    if (sit == d.stale.end() || sit->second.empty()) continue;
    PieceMap pieces = std::move(sit->second);
    d.stale.erase(sit);
    for (auto pit = pieces.begin(); pit != pieces.end();) {
      const uint64_t off = pit->first;
      Payload data = std::move(pit->second.data);
      pit = pieces.erase(pit);
      const uint64_t len = data.size();
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      a.put_u64(off);
      a.put_payload(data);
      try {
        auto r = co_await io_call(dfile.server_index, IoProc::kWrite,
                                  std::move(a), len, trace);
        auto dec = r.body();
        if (reply_status(dec) != PvfsStatus::kOk) {
          throw PvfsError(PvfsStatus::kIo, "replay write");
        }
        const uint64_t verifier = dec.get_u64();
        ++replayed;
        ++stats_.replayed_extents;
        stats_.replayed_bytes += len;
        m_replayed_extents_->inc();
        m_replayed_bytes_->add(len);
        note_daemon_verifier(dfile.server_index, verifier);
        retain_piece(dfile.server_index, dfile.object_id, off,
                     std::move(data));
      } catch (...) {
        // Preserve this piece and every not-yet-attempted one: they are the
        // only copy of the data.  A later fsync retries.
        PieceMap& stale = daemons_.at(dfile.server_index).stale[dfile.object_id];
        trim_range(stale, off, len);
        stale.emplace(off, RetainedPiece{0, std::move(data)});
        for (auto& [ro, rest] : pieces) {
          trim_range(stale, ro, rest.data.size());
          stale.emplace(ro, std::move(rest));
        }
        throw;
      }
    }
  }
  co_return replayed;
}

// ---------------------------------------------------------------------------
// Namespace
// ---------------------------------------------------------------------------

Task<void> PvfsClient::mkdir(const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kMkdir, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "mkdir " + path);
}

Task<void> PvfsClient::remove(const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kRemove, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "remove " + path);
  const FileMeta removed = FileMeta::decode(dec);
  if (removed.handle == 0) co_return;  // was a directory
  // Client-driven reaping of storage objects.
  sim::WaitGroup wg(fabric_.simulation());
  for (const auto& dfile : removed.dfiles) {
    wg.spawn([](PvfsClient& self, DfileRef dfile) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      try {
        auto r = co_await self.io_call(dfile.server_index, IoProc::kRemove,
                                       std::move(a), 0);
        auto d = r.body();
        (void)reply_status(d);
      } catch (const PvfsError&) {
        // Best-effort reaping; a leaked object is not a correctness issue.
      }
    }(*this, dfile));
  }
  co_await wg.wait();
}

Task<void> PvfsClient::rename(const std::string& from, const std::string& to) {
  XdrEncoder args;
  args.put_string(from);
  args.put_string(to);
  auto reply = co_await meta_call(MetaProc::kRename, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "rename " + from);
}

Task<std::vector<std::pair<std::string, bool>>> PvfsClient::readdir(
    const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kReaddir, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "readdir " + path);
  const uint32_t n = dec.get_u32();
  std::vector<std::pair<std::string, bool>> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name = dec.get_string();
    const bool is_dir = dec.get_bool();
    out.emplace_back(std::move(name), is_dir);
  }
  co_return out;
}

// ---------------------------------------------------------------------------
// Files
// ---------------------------------------------------------------------------

Task<PvfsFilePtr> PvfsClient::create(const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kCreate, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "create " + path);
  auto file = std::make_shared<PvfsFile>();
  file->meta = FileMeta::decode(dec);
  file->size = 0;
  // Create the dfile objects on every storage node (PVFS2 allocates the
  // full distribution eagerly at create time).
  sim::WaitGroup wg(fabric_.simulation());
  bool failed = false;
  for (const auto& dfile : file->meta.dfiles) {
    wg.spawn([](PvfsClient& self, const DfileRef dfile,
                bool& failed) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      try {
        auto r = co_await self.io_call(dfile.server_index, IoProc::kCreate,
                                       std::move(a), 0);
        auto d = r.body();
        if (reply_status(d) != PvfsStatus::kOk) failed = true;
      } catch (const PvfsError&) {
        failed = true;
      }
    }(*this, dfile, failed));
  }
  co_await wg.wait();
  if (failed) throw PvfsError(PvfsStatus::kIo, "create dfiles " + path);
  co_return file;
}

Task<PvfsFilePtr> PvfsClient::open(const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kLookup, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "open " + path);
  auto file = std::make_shared<PvfsFile>();
  file->meta = FileMeta::decode(dec);
  file->size = co_await fetch_size(file);
  co_return file;
}

Task<uint64_t> PvfsClient::fetch_size(PvfsFilePtr file) {
  // PVFS2-style attribute gathering: query every storage node.
  std::vector<uint64_t> sizes(file->meta.dfiles.size(), 0);
  sim::WaitGroup wg(fabric_.simulation());
  bool failed = false;
  for (size_t i = 0; i < file->meta.dfiles.size(); ++i) {
    wg.spawn([](PvfsClient& self, const DfileRef dfile, uint64_t& out,
                bool& failed) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      try {
        auto r = co_await self.io_call(dfile.server_index, IoProc::kGetSize,
                                       std::move(a), 0);
        auto d = r.body();
        if (reply_status(d) == PvfsStatus::kOk) out = d.get_u64();
      } catch (const PvfsError&) {
        failed = true;
      }
    }(*this, file->meta.dfiles[i], sizes[i], failed));
  }
  co_await wg.wait();
  // A missing dfile size would silently shrink the logical size and truncate
  // reads — surface the failure instead.
  if (failed) throw PvfsError(PvfsStatus::kIo, "getattr size gather");
  file->size = logical_size(file->meta, sizes);
  co_return file->size;
}

Task<Payload> PvfsClient::read(PvfsFilePtr file, uint64_t offset,
                               uint64_t length, obs::TraceContext trace) {
  if (offset >= file->size) co_return Payload{};
  const uint64_t end = std::min(file->size, offset + length);
  const auto extents = map_stripes(file->meta, offset, end - offset);

  // Split each extent into buffer_size requests; the pool bounds parallelism.
  struct Piece {
    uint32_t dfile_index;
    uint64_t dfile_offset;
    uint64_t file_offset;
    uint64_t length;
    Payload result;
  };
  std::vector<Piece> pieces;
  for (const auto& ext : extents) {
    uint64_t done = 0;
    while (done < ext.length) {
      const uint64_t n = std::min(config_.buffer_size, ext.length - done);
      pieces.push_back(Piece{ext.dfile_index, ext.dfile_offset + done,
                             ext.file_offset + done, n, Payload{}});
      done += n;
    }
  }

  sim::WaitGroup wg(fabric_.simulation());
  bool failed = false;
  for (auto& piece : pieces) {
    wg.spawn([](PvfsClient& self, const FileMeta& meta, Piece& piece,
                bool& failed, const obs::TraceContext trace) -> Task<void> {
      const DfileRef& dfile = meta.dfiles[piece.dfile_index];
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      a.put_u64(piece.dfile_offset);
      a.put_u64(piece.length);
      rpc::RpcClient::Reply r;
      try {
        r = co_await self.io_call(dfile.server_index, IoProc::kRead,
                                  std::move(a), piece.length, trace);
      } catch (const PvfsError&) {
        failed = true;
        co_return;
      }
      auto d = r.body();
      if (reply_status(d) != PvfsStatus::kOk) {
        failed = true;
        co_return;
      }
      piece.result = d.get_payload();
      // Holes in a dfile read as zeros up to the requested length.
      if (piece.result.size() < piece.length) {
        const uint64_t missing = piece.length - piece.result.size();
        if (piece.result.is_inline()) {
          piece.result.append(Payload::inline_bytes(
              std::vector<std::byte>(missing, std::byte{0})));
        } else {
          piece.result.append(Payload::virtual_bytes(missing));
        }
      }
    }(*this, file->meta, piece, failed, trace));
  }
  co_await wg.wait();
  if (failed) throw PvfsError(PvfsStatus::kIo, "read");

  Payload out;
  for (auto& piece : pieces) out.append(piece.result);
  stats_.bytes_read += out.size();
  co_return out;
}

Task<void> PvfsClient::write(PvfsFilePtr file, uint64_t offset, Payload data,
                             obs::TraceContext trace) {
  const uint64_t len = data.size();
  const auto extents = map_stripes(file->meta, offset, len);

  sim::WaitGroup wg(fabric_.simulation());
  bool failed = false;
  for (const auto& ext : extents) {
    uint64_t done = 0;
    while (done < ext.length) {
      const uint64_t n = std::min(config_.buffer_size, ext.length - done);
      Payload piece = data.slice(ext.file_offset - offset + done, n);
      wg.spawn([](PvfsClient& self, const FileMeta& meta, uint32_t dfile_index,
                  uint64_t dfile_offset, Payload piece, bool& failed,
                  const obs::TraceContext trace) -> Task<void> {
        const DfileRef& dfile = meta.dfiles[dfile_index];
        XdrEncoder a;
        a.put_u64(dfile.object_id);
        a.put_u64(dfile_offset);
        const uint64_t bytes = piece.size();
        a.put_payload(piece);
        try {
          auto r = co_await self.io_call(dfile.server_index, IoProc::kWrite,
                                         std::move(a), bytes, trace);
          auto d = r.body();
          if (reply_status(d) != PvfsStatus::kOk) {
            failed = true;
            co_return;
          }
          // The daemon buffered the bytes; keep our copy until a commit by
          // the same incarnation makes them durable.
          const uint64_t verifier = d.get_u64();
          self.note_daemon_verifier(dfile.server_index, verifier);
          self.retain_piece(dfile.server_index, dfile.object_id, dfile_offset,
                            std::move(piece));
        } catch (const PvfsError&) {
          failed = true;
        }
      }(*this, file->meta, ext.dfile_index, ext.dfile_offset + done,
        std::move(piece), failed, trace));
      done += n;
    }
  }
  co_await wg.wait();
  if (failed) throw PvfsError(PvfsStatus::kIo, "write");
  file->size = std::max(file->size, offset + len);
  stats_.bytes_written += len;
}

Task<void> PvfsClient::fsync(PvfsFilePtr file, obs::TraceContext trace) {
  // fsync drives the commit/replay loop: re-send pieces orphaned by daemon
  // restarts, then commit every dfile and check the returned write verifier
  // against the incarnation that buffered our writes.  A mismatch means the
  // buffered bytes died with the old incarnation — requeue and go again.
  constexpr int kMaxRounds = 8;
  for (int round = 0; round < kMaxRounds; ++round) {
    co_await replay_stale(file, trace);

    bool mismatch = false;
    bool failed = false;
    sim::WaitGroup wg(fabric_.simulation());
    for (const auto& dfile : file->meta.dfiles) {
      // Pieces retained after this point raced the commit and may not be
      // covered by it — only retire ones whose write reply already arrived.
      const uint64_t cutoff = retain_seq_;
      wg.spawn([](PvfsClient& self, const DfileRef dfile, uint64_t cutoff,
                  bool& mismatch, bool& failed,
                  const obs::TraceContext trace) -> Task<void> {
        XdrEncoder a;
        a.put_u64(dfile.object_id);
        try {
          auto r = co_await self.io_call(dfile.server_index, IoProc::kCommit,
                                         std::move(a), 0, trace);
          auto d = r.body();
          if (reply_status(d) != PvfsStatus::kOk) {
            failed = true;
            co_return;
          }
          const uint64_t verifier = d.get_u64();
          DaemonState& ds = self.daemons_.at(dfile.server_index);
          const bool known = ds.verifier_known;
          const uint64_t expected = ds.verifier;
          self.note_daemon_verifier(dfile.server_index, verifier);
          if (known && expected != verifier) {
            mismatch = true;  // retained pieces just moved to the stale set
            co_return;
          }
          // Commit covered everything the daemon buffered before it was
          // issued: retire those pieces.
          auto rit = ds.retained.find(dfile.object_id);
          if (rit != ds.retained.end()) {
            for (auto pit = rit->second.begin(); pit != rit->second.end();) {
              pit = (pit->second.seq <= cutoff) ? rit->second.erase(pit)
                                                : ++pit;
            }
            if (rit->second.empty()) ds.retained.erase(rit);
          }
        } catch (const PvfsError&) {
          failed = true;
        }
      }(*this, dfile, cutoff, mismatch, failed, trace));
    }
    co_await wg.wait();
    if (failed) throw PvfsError(PvfsStatus::kIo, "fsync");

    bool pending = mismatch;
    for (const auto& dfile : file->meta.dfiles) {
      const DaemonState& ds = daemons_.at(dfile.server_index);
      auto sit = ds.stale.find(dfile.object_id);
      if (sit != ds.stale.end() && !sit->second.empty()) pending = true;
    }
    if (!pending) co_return;
  }
  throw PvfsError(PvfsStatus::kIo, "fsync: replay did not converge");
}

Task<void> PvfsClient::close(PvfsFilePtr file) { co_await fsync(file); }

Task<void> PvfsClient::truncate(PvfsFilePtr file, uint64_t size) {
  // Dense striping: dfile i keeps ceil((stripes fully before size) ...).
  // Compute per-dfile target sizes by walking the boundary stripe.
  const uint64_t su = file->meta.stripe_unit;
  const uint64_t n = file->meta.dfiles.size();
  sim::WaitGroup wg(fabric_.simulation());
  bool failed = false;
  for (uint64_t i = 0; i < n; ++i) {
    // Bytes of dfile i that lie below `size` under dense round-robin.
    uint64_t dsize = 0;
    if (size > 0) {
      const uint64_t full_stripes = size / su;
      const uint64_t rem = size % su;
      dsize = (full_stripes / n) * su;
      const uint64_t boundary = full_stripes % n;
      if (i < boundary) {
        dsize += su;
      } else if (i == boundary) {
        dsize += rem;
      }
    }
    // Replay must not resurrect bytes above the new end of the dfile.
    {
      DaemonState& ds = daemons_.at(file->meta.dfiles[i].server_index);
      const uint64_t oid = file->meta.dfiles[i].object_id;
      auto rit = ds.retained.find(oid);
      if (rit != ds.retained.end()) {
        trim_range(rit->second, dsize, ~0ull - dsize);
      }
      auto sit = ds.stale.find(oid);
      if (sit != ds.stale.end()) {
        trim_range(sit->second, dsize, ~0ull - dsize);
      }
    }
    wg.spawn([](PvfsClient& self, const DfileRef dfile, uint64_t dsize,
                bool& failed) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      a.put_u64(dsize);
      try {
        auto r = co_await self.io_call(dfile.server_index, IoProc::kTruncate,
                                       std::move(a), 0);
        auto d = r.body();
        if (reply_status(d) != PvfsStatus::kOk) failed = true;
      } catch (const PvfsError&) {
        failed = true;
      }
    }(*this, file->meta.dfiles[i], dsize, failed));
  }
  co_await wg.wait();
  if (failed) throw PvfsError(PvfsStatus::kIo, "truncate");
  file->size = size;
}

}  // namespace dpnfs::pvfs
