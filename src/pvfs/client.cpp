#include "pvfs/client.hpp"

#include <algorithm>

#include "sim/sync.hpp"
#include "util/format.hpp"
#include "util/log.hpp"

namespace dpnfs::pvfs {

using rpc::Payload;
using rpc::XdrDecoder;
using rpc::XdrEncoder;
using sim::Task;

namespace {
constexpr uint32_t kPvfsVersion = 2;
}

PvfsClient::PvfsClient(rpc::RpcFabric& fabric, sim::Node& node,
                       rpc::RpcAddress meta,
                       std::vector<rpc::RpcAddress> storage,
                       std::string principal, PvfsClientConfig config)
    : fabric_(fabric),
      node_(node),
      meta_(meta),
      storage_(std::move(storage)),
      rpc_(fabric, node, std::move(principal)),
      config_(config),
      buffers_(fabric.simulation(), config.buffer_count),
      daemons_(storage_.size()) {
  rpc_.set_tenant(config_.tenant_id);
  if (obs::MetricsRegistry* reg = fabric.metrics()) {
    const std::string& n = node.name();
    m_verifier_mismatches_ =
        &reg->counter(n, "client.replay", "verifier_mismatches");
    m_replayed_extents_ = &reg->counter(n, "client.replay", "replayed_extents");
    m_replayed_bytes_ = &reg->counter(n, "client.replay", "replayed_bytes");
  } else {
    m_verifier_mismatches_ = &obs::MetricsRegistry::null_counter();
    m_replayed_extents_ = &obs::MetricsRegistry::null_counter();
    m_replayed_bytes_ = &obs::MetricsRegistry::null_counter();
  }
}

PvfsStatus PvfsClient::reply_status(XdrDecoder& dec) {
  const uint32_t raw = dec.get_u32();
  return static_cast<PvfsStatus>(raw);
}

Task<rpc::RpcClient::Reply> PvfsClient::meta_call(MetaProc proc,
                                                  XdrEncoder args) {
  ++stats_.meta_requests;
  co_await node_.cpu().execute(config_.cpu_per_request);
  if (config_.vfs_meta_latency > 0) {
    co_await fabric_.simulation().delay(config_.vfs_meta_latency);
  }
  rpc::CallOptions opts;
  opts.timeout = config_.meta_timeout;
  opts.max_retries = config_.meta_retries > 0 ? config_.meta_retries - 1 : 0;
  auto reply = co_await rpc_.call(meta_, rpc::Program::kPvfsMeta, kPvfsVersion,
                                  static_cast<uint32_t>(proc), std::move(args),
                                  opts);
  if (reply.transport != rpc::Status::kOk) {
    throw PvfsError(PvfsStatus::kIo, "meta RPC timed out");
  }
  co_return reply;
}

Task<rpc::RpcClient::Reply> PvfsClient::io_call(uint32_t server_index,
                                                IoProc proc, XdrEncoder args,
                                                uint64_t data_bytes,
                                                obs::TraceContext trace) {
  co_await buffers_.acquire();
  ++stats_.storage_requests;
  co_await node_.cpu().execute(
      config_.cpu_per_request +
      static_cast<sim::Duration>(config_.cpu_ns_per_byte *
                                 static_cast<double>(data_bytes)));
  rpc::CallOptions opts;
  opts.timeout = config_.io_timeout;
  opts.max_retries = config_.io_retries > 0 ? config_.io_retries - 1 : 0;
  opts.parent = trace;
  auto reply = co_await rpc_.call(storage_.at(server_index),
                                  rpc::Program::kPvfsIo, kPvfsVersion,
                                  static_cast<uint32_t>(proc), std::move(args),
                                  opts);
  buffers_.release();
  if (reply.transport != rpc::Status::kOk) {
    throw PvfsError(PvfsStatus::kIo, "storage RPC timed out");
  }
  co_return reply;
}

Task<std::vector<Payload>> PvfsClient::read_regions(
    const DfileRef& dfile, const std::vector<IoRange>& regions,
    obs::TraceContext trace) {
  uint64_t total = 0;
  for (const IoRange& r : regions) total += r.length;
  XdrEncoder a;
  a.put_u64(dfile.object_id);
  std::vector<Payload> out(regions.size());
  if (regions.size() == 1) {
    a.put_u64(regions[0].offset);
    a.put_u64(regions[0].length);
    auto r = co_await io_call(dfile.server_index, IoProc::kRead, std::move(a),
                              total, trace);
    auto d = r.body();
    if (reply_status(d) != PvfsStatus::kOk) {
      throw PvfsError(PvfsStatus::kIo, "read");
    }
    out[0] = d.get_payload();
  } else {
    a.put_u32(static_cast<uint32_t>(regions.size()));
    for (const IoRange& r : regions) {
      a.put_u64(r.offset);
      a.put_u64(r.length);
    }
    ++stats_.vectored_requests;
    stats_.vectored_regions += regions.size();
    stats_.vectored_bytes += total;
    auto r = co_await io_call(dfile.server_index, IoProc::kReadv, std::move(a),
                              total, trace);
    auto d = r.body();
    if (reply_status(d) != PvfsStatus::kOk) {
      throw PvfsError(PvfsStatus::kIo, "readv");
    }
    for (Payload& p : out) p = d.get_payload();
  }
  // Holes in a dfile read as zeros up to each region's requested length.
  for (size_t i = 0; i < regions.size(); ++i) {
    if (out[i].size() < regions[i].length) {
      const uint64_t missing = regions[i].length - out[i].size();
      if (out[i].is_inline()) {
        out[i].append(Payload::inline_bytes(
            std::vector<std::byte>(missing, std::byte{0})));
      } else {
        out[i].append(Payload::virtual_bytes(missing));
      }
    }
  }
  co_return out;
}

Task<uint64_t> PvfsClient::write_regions(const DfileRef& dfile,
                                         const std::vector<IoRange>& regions,
                                         Payload data, obs::TraceContext trace) {
  const uint64_t total = data.size();
  XdrEncoder a;
  a.put_u64(dfile.object_id);
  IoProc proc = IoProc::kWrite;
  if (regions.size() == 1) {
    a.put_u64(regions[0].offset);
  } else {
    proc = IoProc::kWritev;
    a.put_u32(static_cast<uint32_t>(regions.size()));
    for (const IoRange& r : regions) {
      a.put_u64(r.offset);
      a.put_u64(r.length);
    }
    ++stats_.vectored_requests;
    stats_.vectored_regions += regions.size();
    stats_.vectored_bytes += total;
  }
  a.put_payload(data);
  auto r = co_await io_call(dfile.server_index, proc, std::move(a), total,
                            trace);
  auto d = r.body();
  if (reply_status(d) != PvfsStatus::kOk) {
    throw PvfsError(PvfsStatus::kIo, "write");
  }
  co_return d.get_u64();
}

// ---------------------------------------------------------------------------
// Crash recovery: write verifiers and replay
// ---------------------------------------------------------------------------

void PvfsClient::trim_range(PieceMap& pieces, uint64_t offset, uint64_t len) {
  if (len == 0 || pieces.empty()) return;
  const uint64_t end = offset + len;
  auto it = pieces.upper_bound(offset);
  if (it != pieces.begin()) --it;
  while (it != pieces.end() && it->first < end) {
    const uint64_t po = it->first;
    const uint64_t pe = po + it->second.data.size();
    if (pe <= offset) {
      ++it;
      continue;
    }
    RetainedPiece head;
    RetainedPiece tail;
    if (po < offset) {
      head.seq = it->second.seq;
      head.data = it->second.data.slice(0, offset - po);
    }
    if (pe > end) {
      tail.seq = it->second.seq;
      tail.data = it->second.data.slice(end - po, pe - end);
    }
    it = pieces.erase(it);
    if (head.data.size() > 0) pieces.emplace(po, std::move(head));
    if (tail.data.size() > 0) it = pieces.emplace(end, std::move(tail)).first;
  }
}

void PvfsClient::retain_piece(uint32_t server_index, uint64_t object_id,
                              uint64_t dfile_offset, Payload piece) {
  const uint64_t len = piece.size();
  if (len == 0) return;
  DaemonState& d = daemons_.at(server_index);
  // This write supersedes whatever it overlaps: older retained bytes of the
  // same incarnation and stale bytes awaiting replay (the daemon now holds
  // fresher data for the range).
  trim_range(d.retained[object_id], dfile_offset, len);
  auto sit = d.stale.find(object_id);
  if (sit != d.stale.end()) {
    trim_range(sit->second, dfile_offset, len);
    if (sit->second.empty()) d.stale.erase(sit);
  }
  d.retained[object_id].emplace(dfile_offset,
                                RetainedPiece{++retain_seq_, std::move(piece)});
}

void PvfsClient::note_daemon_verifier(uint32_t server_index,
                                      uint64_t verifier) {
  DaemonState& d = daemons_.at(server_index);
  if (!d.verifier_known) {
    d.verifier_known = true;
    d.verifier = verifier;
    return;
  }
  if (d.verifier == verifier) return;
  // The daemon restarted: every byte it buffered for us died with the old
  // incarnation.  Requeue our retained copies for replay.
  ++stats_.verifier_mismatches;
  m_verifier_mismatches_->inc();
  const uint64_t old_verifier = d.verifier;
  uint64_t moved = 0;
  for (auto& [oid, pieces] : d.retained) {
    PieceMap& stale = d.stale[oid];
    for (auto& [off, piece] : pieces) {
      trim_range(stale, off, piece.data.size());
      moved += piece.data.size();
      stale.emplace(off, std::move(piece));
    }
  }
  d.retained.clear();
  d.verifier = verifier;
  util::logf(util::LogLevel::kWarn, "pvfs.client", node_.simulation().now(),
             "%s: daemon %u write verifier changed (%016llx -> %016llx), "
             "%llu uncommitted bytes queued for replay",
             node_.name().c_str(), static_cast<unsigned>(server_index),
             static_cast<unsigned long long>(old_verifier),
             static_cast<unsigned long long>(verifier),
             static_cast<unsigned long long>(moved));
  if (obs::FlightRecorder* flight = fabric_.flight()) {
    flight->record(node_.simulation().now(), node_.name(), "pvfs.client",
                   "verifier.mismatch",
                   util::sformat("daemon %u %016llx -> %016llx, %llu bytes "
                                 "queued",
                                 static_cast<unsigned>(server_index),
                                 static_cast<unsigned long long>(old_verifier),
                                 static_cast<unsigned long long>(verifier),
                                 static_cast<unsigned long long>(moved)));
  }
}

void PvfsClient::drop_replay_state() {
  for (DaemonState& d : daemons_) {
    d.retained.clear();
    d.stale.clear();
    // Verifiers survive: they identify *daemon* incarnations, which did not
    // restart just because this client's host did.
  }
}

Task<uint64_t> PvfsClient::replay_stale(PvfsFilePtr file,
                                        obs::TraceContext trace) {
  uint64_t replayed = 0;
  for (const auto& dfile : file->meta.dfiles) {
    DaemonState& d = daemons_.at(dfile.server_index);
    auto sit = d.stale.find(dfile.object_id);
    if (sit == d.stale.end() || sit->second.empty()) continue;
    PieceMap pieces = std::move(sit->second);
    d.stale.erase(sit);
    const uint64_t max_regions =
        config_.listio_enabled
            ? std::max<uint32_t>(config_.listio_max_regions, 1)
            : 1;
    while (!pieces.empty()) {
      // Fold the next run of orphaned pieces into one vectored replay (the
      // region list of the dead incarnation's writes, re-sent wholesale).
      std::vector<IoRange> regions;
      std::vector<Payload> datas;
      Payload body;
      uint64_t bytes = 0;
      while (!pieces.empty() && regions.size() < max_regions) {
        auto pit = pieces.begin();
        const uint64_t poff = pit->first;
        const uint64_t plen = pit->second.data.size();
        if (!regions.empty() && bytes + plen > config_.buffer_size) break;
        Payload p = std::move(pit->second.data);
        pieces.erase(pit);
        regions.push_back({poff, plen});
        body.append(p);
        bytes += plen;
        datas.push_back(std::move(p));
      }
      try {
        const uint64_t verifier =
            co_await write_regions(dfile, regions, std::move(body), trace);
        replayed += regions.size();
        stats_.replayed_extents += regions.size();
        stats_.replayed_bytes += bytes;
        m_replayed_extents_->add(regions.size());
        m_replayed_bytes_->add(bytes);
        if (obs::FlightRecorder* flight = fabric_.flight()) {
          flight->record(node_.simulation().now(), node_.name(),
                         "pvfs.client", "wb.replay",
                         util::sformat("daemon %u object %llu %llu bytes "
                                       "%zu extents",
                                       static_cast<unsigned>(
                                           dfile.server_index),
                                       static_cast<unsigned long long>(
                                           dfile.object_id),
                                       static_cast<unsigned long long>(bytes),
                                       regions.size()));
        }
        note_daemon_verifier(dfile.server_index, verifier);
        for (size_t i = 0; i < regions.size(); ++i) {
          retain_piece(dfile.server_index, dfile.object_id, regions[i].offset,
                       std::move(datas[i]));
        }
      } catch (...) {
        // Preserve this batch and every not-yet-attempted piece: they are
        // the only copy of the data.  A later fsync retries.
        PieceMap& stale = daemons_.at(dfile.server_index).stale[dfile.object_id];
        for (size_t i = 0; i < regions.size(); ++i) {
          trim_range(stale, regions[i].offset, regions[i].length);
          stale.emplace(regions[i].offset, RetainedPiece{0, std::move(datas[i])});
        }
        for (auto& [ro, rest] : pieces) {
          trim_range(stale, ro, rest.data.size());
          stale.emplace(ro, std::move(rest));
        }
        throw;
      }
    }
  }
  co_return replayed;
}

// ---------------------------------------------------------------------------
// Namespace
// ---------------------------------------------------------------------------

Task<void> PvfsClient::mkdir(const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kMkdir, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "mkdir " + path);
}

Task<void> PvfsClient::remove(const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kRemove, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "remove " + path);
  const FileMeta removed = FileMeta::decode(dec);
  if (removed.handle == 0) co_return;  // was a directory
  // Client-driven reaping of storage objects.
  sim::WaitGroup wg(fabric_.simulation());
  for (const auto& dfile : removed.dfiles) {
    wg.spawn([](PvfsClient& self, DfileRef dfile) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      try {
        auto r = co_await self.io_call(dfile.server_index, IoProc::kRemove,
                                       std::move(a), 0);
        auto d = r.body();
        (void)reply_status(d);
      } catch (const PvfsError&) {
        // Best-effort reaping; a leaked object is not a correctness issue.
      }
    }(*this, dfile));
  }
  co_await wg.wait();
}

Task<void> PvfsClient::rename(const std::string& from, const std::string& to) {
  XdrEncoder args;
  args.put_string(from);
  args.put_string(to);
  auto reply = co_await meta_call(MetaProc::kRename, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "rename " + from);
}

Task<std::vector<std::pair<std::string, bool>>> PvfsClient::readdir(
    const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kReaddir, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "readdir " + path);
  const uint32_t n = dec.get_u32();
  std::vector<std::pair<std::string, bool>> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name = dec.get_string();
    const bool is_dir = dec.get_bool();
    out.emplace_back(std::move(name), is_dir);
  }
  co_return out;
}

// ---------------------------------------------------------------------------
// Files
// ---------------------------------------------------------------------------

Task<PvfsFilePtr> PvfsClient::create(const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kCreate, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "create " + path);
  auto file = std::make_shared<PvfsFile>();
  file->meta = FileMeta::decode(dec);
  file->size = 0;
  // Create the dfile objects on every storage node (PVFS2 allocates the
  // full distribution eagerly at create time).
  sim::WaitGroup wg(fabric_.simulation());
  uint32_t failures = 0;
  for (const auto& dfile : file->meta.dfiles) {
    wg.spawn([](PvfsClient& self, const DfileRef dfile,
                uint32_t& failures) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      try {
        auto r = co_await self.io_call(dfile.server_index, IoProc::kCreate,
                                       std::move(a), 0);
        auto d = r.body();
        if (reply_status(d) != PvfsStatus::kOk) ++failures;
      } catch (const PvfsError&) {
        ++failures;
      }
    }(*this, dfile, failures));
  }
  co_await wg.wait();
  // Redundant distributions survive creates against dead daemons up to the
  // redundancy level; rebuild re-materializes the missing objects.
  uint32_t tolerated = 0;
  switch (file->meta.kind) {
    case DistKind::kMirror:
      tolerated = static_cast<uint32_t>(file->meta.dfiles.size()) - 1;
      break;
    case DistKind::kErasure:
      tolerated = file->meta.ec_m;
      break;
    case DistKind::kStripe:
      break;
  }
  if (failures > tolerated) {
    throw PvfsError(PvfsStatus::kIo, "create dfiles " + path);
  }
  co_return file;
}

Task<PvfsFilePtr> PvfsClient::open(const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kLookup, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "open " + path);
  auto file = std::make_shared<PvfsFile>();
  file->meta = FileMeta::decode(dec);
  file->size = co_await fetch_size(file);
  co_return file;
}

Task<uint64_t> PvfsClient::fetch_size(PvfsFilePtr file) {
  // PVFS2-style attribute gathering: query every storage node.
  std::vector<uint64_t> sizes(file->meta.dfiles.size(), 0);
  sim::WaitGroup wg(fabric_.simulation());
  bool failed = false;
  for (size_t i = 0; i < file->meta.dfiles.size(); ++i) {
    wg.spawn([](PvfsClient& self, const DfileRef dfile, uint64_t& out,
                bool& failed) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      try {
        auto r = co_await self.io_call(dfile.server_index, IoProc::kGetSize,
                                       std::move(a), 0);
        auto d = r.body();
        if (reply_status(d) == PvfsStatus::kOk) out = d.get_u64();
      } catch (const PvfsError&) {
        failed = true;
      }
    }(*this, file->meta.dfiles[i], sizes[i], failed));
  }
  co_await wg.wait();
  // A missing dfile size would silently shrink the logical size and truncate
  // reads — surface the failure instead.  Redundant distributions tolerate
  // unreachable daemons: surviving replicas/shards still bound the size (the
  // MDS-side LAYOUTCOMMIT size floor covers the final-stripe ambiguity).
  if (failed && file->meta.kind == DistKind::kStripe) {
    throw PvfsError(PvfsStatus::kIo, "getattr size gather");
  }
  uint64_t logical = logical_size(file->meta, sizes);
  if (file->meta.kind != DistKind::kStripe) {
    // Keep the known size as a floor: a dead daemon's dfile may have held
    // the file tail (the MDS's LAYOUTCOMMIT floor flows in via file->size).
    logical = std::max(logical, file->size);
  }
  file->size = logical;
  co_return file->size;
}

Task<Payload> PvfsClient::read(PvfsFilePtr file, uint64_t offset,
                               uint64_t length, obs::TraceContext trace) {
  if (offset >= file->size) co_return Payload{};
  const uint64_t end = std::min(file->size, offset + length);
  const auto extents = map_stripes(file->meta, offset, end - offset);

  // Split each extent into buffer_size requests; the pool bounds parallelism.
  struct Piece {
    uint32_t dfile_index;
    uint64_t dfile_offset;
    uint64_t file_offset;
    uint64_t length;
    Payload result;
  };
  std::vector<Piece> pieces;
  for (const auto& ext : extents) {
    uint64_t done = 0;
    while (done < ext.length) {
      const uint64_t n = std::min(config_.buffer_size, ext.length - done);
      pieces.push_back(Piece{ext.dfile_index, ext.dfile_offset + done,
                             ext.file_offset + done, n, Payload{}});
      done += n;
    }
  }

  // List I/O: fold the pieces of each dfile into vectored requests of up to
  // listio_max_regions regions / buffer_size bytes.  A 1-element batch goes
  // out as the classic kRead, so the batching is free for sequential I/O.
  std::map<uint32_t, std::vector<size_t>> by_dfile;
  for (size_t i = 0; i < pieces.size(); ++i) {
    by_dfile[pieces[i].dfile_index].push_back(i);
  }
  const uint64_t max_regions =
      config_.listio_enabled ? std::max<uint32_t>(config_.listio_max_regions, 1)
                             : 1;
  std::vector<std::vector<size_t>> batches;
  for (auto& [dfi, idxs] : by_dfile) {
    std::vector<size_t> cur;
    uint64_t bytes = 0;
    for (size_t i : idxs) {
      if (!cur.empty() && (cur.size() >= max_regions ||
                           bytes + pieces[i].length > config_.buffer_size)) {
        batches.push_back(std::move(cur));
        cur.clear();
        bytes = 0;
      }
      cur.push_back(i);
      bytes += pieces[i].length;
    }
    if (!cur.empty()) batches.push_back(std::move(cur));
  }

  sim::WaitGroup wg(fabric_.simulation());
  bool failed = false;
  for (auto& batch : batches) {
    wg.spawn([](PvfsClient& self, const FileMeta& meta,
                std::vector<Piece>& pieces, std::vector<size_t> idx,
                bool& failed, const obs::TraceContext trace) -> Task<void> {
      const DfileRef& dfile = meta.dfiles[pieces[idx[0]].dfile_index];
      std::vector<IoRange> regions;
      regions.reserve(idx.size());
      for (size_t i : idx) {
        regions.push_back({pieces[i].dfile_offset, pieces[i].length});
      }
      try {
        auto out = co_await self.read_regions(dfile, regions, trace);
        for (size_t k = 0; k < idx.size(); ++k) {
          pieces[idx[k]].result = std::move(out[k]);
        }
      } catch (const PvfsError&) {
        failed = true;
      }
    }(*this, file->meta, pieces, std::move(batch), failed, trace));
  }
  co_await wg.wait();
  if (failed) throw PvfsError(PvfsStatus::kIo, "read");

  Payload out;
  for (auto& piece : pieces) out.append(piece.result);
  stats_.bytes_read += out.size();
  co_return out;
}

Task<void> PvfsClient::write(PvfsFilePtr file, uint64_t offset, Payload data,
                             obs::TraceContext trace) {
  const uint64_t len = data.size();
  const auto extents = map_stripes_write(file->meta, offset, len);

  struct WritePiece {
    uint32_t dfile_index;
    uint64_t dfile_offset;
    Payload data;
  };
  std::vector<WritePiece> pieces;
  for (const auto& ext : extents) {
    uint64_t done = 0;
    while (done < ext.length) {
      const uint64_t n = std::min(config_.buffer_size, ext.length - done);
      pieces.push_back(WritePiece{
          ext.dfile_index, ext.dfile_offset + done,
          data.slice(ext.file_offset - offset + done, n)});
      done += n;
    }
  }

  // Same per-dfile folding as read(): each batch is one kWrite (1 region)
  // or one kWritev (many regions under one verifier).
  std::map<uint32_t, std::vector<size_t>> by_dfile;
  for (size_t i = 0; i < pieces.size(); ++i) {
    by_dfile[pieces[i].dfile_index].push_back(i);
  }
  const uint64_t max_regions =
      config_.listio_enabled ? std::max<uint32_t>(config_.listio_max_regions, 1)
                             : 1;
  std::vector<std::vector<size_t>> batches;
  for (auto& [dfi, idxs] : by_dfile) {
    std::vector<size_t> cur;
    uint64_t bytes = 0;
    for (size_t i : idxs) {
      if (!cur.empty() && (cur.size() >= max_regions ||
                           bytes + pieces[i].data.size() > config_.buffer_size)) {
        batches.push_back(std::move(cur));
        cur.clear();
        bytes = 0;
      }
      cur.push_back(i);
      bytes += pieces[i].data.size();
    }
    if (!cur.empty()) batches.push_back(std::move(cur));
  }

  sim::WaitGroup wg(fabric_.simulation());
  bool failed = false;
  for (auto& batch : batches) {
    wg.spawn([](PvfsClient& self, const FileMeta& meta,
                std::vector<WritePiece>& pieces, std::vector<size_t> idx,
                bool& failed, const obs::TraceContext trace) -> Task<void> {
      const DfileRef& dfile = meta.dfiles[pieces[idx[0]].dfile_index];
      std::vector<IoRange> regions;
      regions.reserve(idx.size());
      Payload body;
      for (size_t i : idx) {
        regions.push_back({pieces[i].dfile_offset, pieces[i].data.size()});
        body.append(pieces[i].data);
      }
      try {
        const uint64_t verifier =
            co_await self.write_regions(dfile, regions, std::move(body), trace);
        // The daemon buffered the bytes; keep our copies until a commit by
        // the same incarnation makes them durable.  One verifier covers the
        // whole region list.
        self.note_daemon_verifier(dfile.server_index, verifier);
        for (size_t i : idx) {
          self.retain_piece(dfile.server_index, dfile.object_id,
                            pieces[i].dfile_offset, std::move(pieces[i].data));
        }
      } catch (const PvfsError&) {
        failed = true;
      }
    }(*this, file->meta, pieces, std::move(batch), failed, trace));
  }
  co_await wg.wait();
  if (failed) throw PvfsError(PvfsStatus::kIo, "write");
  file->size = std::max(file->size, offset + len);
  stats_.bytes_written += len;
}

Task<void> PvfsClient::fsync(PvfsFilePtr file, obs::TraceContext trace) {
  // fsync drives the commit/replay loop: re-send pieces orphaned by daemon
  // restarts, then commit every dfile and check the returned write verifier
  // against the incarnation that buffered our writes.  A mismatch means the
  // buffered bytes died with the old incarnation — requeue and go again.
  constexpr int kMaxRounds = 8;
  for (int round = 0; round < kMaxRounds; ++round) {
    co_await replay_stale(file, trace);

    bool mismatch = false;
    bool failed = false;
    sim::WaitGroup wg(fabric_.simulation());
    for (const auto& dfile : file->meta.dfiles) {
      // Pieces retained after this point raced the commit and may not be
      // covered by it — only retire ones whose write reply already arrived.
      const uint64_t cutoff = retain_seq_;
      wg.spawn([](PvfsClient& self, const DfileRef dfile, uint64_t cutoff,
                  bool& mismatch, bool& failed,
                  const obs::TraceContext trace) -> Task<void> {
        XdrEncoder a;
        a.put_u64(dfile.object_id);
        try {
          auto r = co_await self.io_call(dfile.server_index, IoProc::kCommit,
                                         std::move(a), 0, trace);
          auto d = r.body();
          if (reply_status(d) != PvfsStatus::kOk) {
            failed = true;
            co_return;
          }
          const uint64_t verifier = d.get_u64();
          DaemonState& ds = self.daemons_.at(dfile.server_index);
          const bool known = ds.verifier_known;
          const uint64_t expected = ds.verifier;
          self.note_daemon_verifier(dfile.server_index, verifier);
          if (known && expected != verifier) {
            mismatch = true;  // retained pieces just moved to the stale set
            co_return;
          }
          // Commit covered everything the daemon buffered before it was
          // issued: retire those pieces.
          auto rit = ds.retained.find(dfile.object_id);
          if (rit != ds.retained.end()) {
            for (auto pit = rit->second.begin(); pit != rit->second.end();) {
              pit = (pit->second.seq <= cutoff) ? rit->second.erase(pit)
                                                : ++pit;
            }
            if (rit->second.empty()) ds.retained.erase(rit);
          }
        } catch (const PvfsError&) {
          failed = true;
        }
      }(*this, dfile, cutoff, mismatch, failed, trace));
    }
    co_await wg.wait();
    if (failed) throw PvfsError(PvfsStatus::kIo, "fsync");

    bool pending = mismatch;
    for (const auto& dfile : file->meta.dfiles) {
      const DaemonState& ds = daemons_.at(dfile.server_index);
      auto sit = ds.stale.find(dfile.object_id);
      if (sit != ds.stale.end() && !sit->second.empty()) pending = true;
    }
    if (!pending) co_return;
  }
  throw PvfsError(PvfsStatus::kIo, "fsync: replay did not converge");
}

Task<void> PvfsClient::close(PvfsFilePtr file) { co_await fsync(file); }

Task<void> PvfsClient::truncate(PvfsFilePtr file, uint64_t size) {
  const uint64_t n = file->meta.dfiles.size();
  sim::WaitGroup wg(fabric_.simulation());
  bool failed = false;
  for (uint64_t i = 0; i < n; ++i) {
    // Bytes of dfile i that lie below `size` under the distribution.
    const uint64_t dsize =
        dfile_size_for(file->meta, static_cast<uint32_t>(i), size);
    // Replay must not resurrect bytes above the new end of the dfile.
    {
      DaemonState& ds = daemons_.at(file->meta.dfiles[i].server_index);
      const uint64_t oid = file->meta.dfiles[i].object_id;
      auto rit = ds.retained.find(oid);
      if (rit != ds.retained.end()) {
        trim_range(rit->second, dsize, ~0ull - dsize);
      }
      auto sit = ds.stale.find(oid);
      if (sit != ds.stale.end()) {
        trim_range(sit->second, dsize, ~0ull - dsize);
      }
    }
    wg.spawn([](PvfsClient& self, const DfileRef dfile, uint64_t dsize,
                bool& failed) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      a.put_u64(dsize);
      try {
        auto r = co_await self.io_call(dfile.server_index, IoProc::kTruncate,
                                       std::move(a), 0);
        auto d = r.body();
        if (reply_status(d) != PvfsStatus::kOk) failed = true;
      } catch (const PvfsError&) {
        failed = true;
      }
    }(*this, file->meta.dfiles[i], dsize, failed));
  }
  co_await wg.wait();
  if (failed) throw PvfsError(PvfsStatus::kIo, "truncate");
  file->size = size;
}

}  // namespace dpnfs::pvfs
