#include "pvfs/client.hpp"

#include <algorithm>

#include "sim/sync.hpp"

namespace dpnfs::pvfs {

using rpc::Payload;
using rpc::XdrDecoder;
using rpc::XdrEncoder;
using sim::Task;

namespace {
constexpr uint32_t kPvfsVersion = 2;
}

PvfsClient::PvfsClient(rpc::RpcFabric& fabric, sim::Node& node,
                       rpc::RpcAddress meta,
                       std::vector<rpc::RpcAddress> storage,
                       std::string principal, PvfsClientConfig config)
    : fabric_(fabric),
      node_(node),
      meta_(meta),
      storage_(std::move(storage)),
      rpc_(fabric, node, std::move(principal)),
      config_(config),
      buffers_(fabric.simulation(), config.buffer_count) {}

PvfsStatus PvfsClient::reply_status(XdrDecoder& dec) {
  const uint32_t raw = dec.get_u32();
  return static_cast<PvfsStatus>(raw);
}

Task<rpc::RpcClient::Reply> PvfsClient::meta_call(MetaProc proc,
                                                  XdrEncoder args) {
  ++stats_.meta_requests;
  co_await node_.cpu().execute(config_.cpu_per_request);
  if (config_.vfs_meta_latency > 0) {
    co_await fabric_.simulation().delay(config_.vfs_meta_latency);
  }
  auto reply = co_await rpc_.call(meta_, rpc::Program::kPvfsMeta, kPvfsVersion,
                                  static_cast<uint32_t>(proc), std::move(args));
  if (reply.transport != rpc::Status::kOk) {
    throw PvfsError(PvfsStatus::kIo, "meta RPC timed out");
  }
  co_return reply;
}

Task<rpc::RpcClient::Reply> PvfsClient::io_call(uint32_t server_index,
                                                IoProc proc, XdrEncoder args,
                                                uint64_t data_bytes,
                                                obs::TraceContext trace) {
  co_await buffers_.acquire();
  ++stats_.storage_requests;
  co_await node_.cpu().execute(
      config_.cpu_per_request +
      static_cast<sim::Duration>(config_.cpu_ns_per_byte *
                                 static_cast<double>(data_bytes)));
  auto reply = co_await rpc_.call(storage_.at(server_index),
                                  rpc::Program::kPvfsIo, kPvfsVersion,
                                  static_cast<uint32_t>(proc), std::move(args),
                                  rpc::CallOptions{.parent = trace});
  buffers_.release();
  if (reply.transport != rpc::Status::kOk) {
    throw PvfsError(PvfsStatus::kIo, "storage RPC timed out");
  }
  co_return reply;
}

// ---------------------------------------------------------------------------
// Namespace
// ---------------------------------------------------------------------------

Task<void> PvfsClient::mkdir(const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kMkdir, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "mkdir " + path);
}

Task<void> PvfsClient::remove(const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kRemove, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "remove " + path);
  const FileMeta removed = FileMeta::decode(dec);
  if (removed.handle == 0) co_return;  // was a directory
  // Client-driven reaping of storage objects.
  sim::WaitGroup wg(fabric_.simulation());
  for (const auto& dfile : removed.dfiles) {
    wg.spawn([](PvfsClient& self, DfileRef dfile) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      auto r = co_await self.io_call(dfile.server_index, IoProc::kRemove,
                                     std::move(a), 0);
      auto d = r.body();
      (void)reply_status(d);
    }(*this, dfile));
  }
  co_await wg.wait();
}

Task<void> PvfsClient::rename(const std::string& from, const std::string& to) {
  XdrEncoder args;
  args.put_string(from);
  args.put_string(to);
  auto reply = co_await meta_call(MetaProc::kRename, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "rename " + from);
}

Task<std::vector<std::pair<std::string, bool>>> PvfsClient::readdir(
    const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kReaddir, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "readdir " + path);
  const uint32_t n = dec.get_u32();
  std::vector<std::pair<std::string, bool>> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string name = dec.get_string();
    const bool is_dir = dec.get_bool();
    out.emplace_back(std::move(name), is_dir);
  }
  co_return out;
}

// ---------------------------------------------------------------------------
// Files
// ---------------------------------------------------------------------------

Task<PvfsFilePtr> PvfsClient::create(const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kCreate, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "create " + path);
  auto file = std::make_shared<PvfsFile>();
  file->meta = FileMeta::decode(dec);
  file->size = 0;
  // Create the dfile objects on every storage node (PVFS2 allocates the
  // full distribution eagerly at create time).
  sim::WaitGroup wg(fabric_.simulation());
  for (const auto& dfile : file->meta.dfiles) {
    wg.spawn([](PvfsClient& self, const DfileRef dfile) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      auto r = co_await self.io_call(dfile.server_index, IoProc::kCreate,
                                     std::move(a), 0);
      auto d = r.body();
      (void)reply_status(d);
    }(*this, dfile));
  }
  co_await wg.wait();
  co_return file;
}

Task<PvfsFilePtr> PvfsClient::open(const std::string& path) {
  XdrEncoder args;
  args.put_string(path);
  auto reply = co_await meta_call(MetaProc::kLookup, std::move(args));
  auto dec = reply.body();
  const PvfsStatus st = reply_status(dec);
  if (st != PvfsStatus::kOk) throw PvfsError(st, "open " + path);
  auto file = std::make_shared<PvfsFile>();
  file->meta = FileMeta::decode(dec);
  file->size = co_await fetch_size(file);
  co_return file;
}

Task<uint64_t> PvfsClient::fetch_size(PvfsFilePtr file) {
  // PVFS2-style attribute gathering: query every storage node.
  std::vector<uint64_t> sizes(file->meta.dfiles.size(), 0);
  sim::WaitGroup wg(fabric_.simulation());
  for (size_t i = 0; i < file->meta.dfiles.size(); ++i) {
    wg.spawn([](PvfsClient& self, const DfileRef dfile, uint64_t& out) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      auto r = co_await self.io_call(dfile.server_index, IoProc::kGetSize,
                                     std::move(a), 0);
      auto d = r.body();
      if (reply_status(d) == PvfsStatus::kOk) out = d.get_u64();
    }(*this, file->meta.dfiles[i], sizes[i]));
  }
  co_await wg.wait();
  file->size = logical_size(file->meta, sizes);
  co_return file->size;
}

Task<Payload> PvfsClient::read(PvfsFilePtr file, uint64_t offset,
                               uint64_t length, obs::TraceContext trace) {
  if (offset >= file->size) co_return Payload{};
  const uint64_t end = std::min(file->size, offset + length);
  const auto extents = map_stripes(file->meta, offset, end - offset);

  // Split each extent into buffer_size requests; the pool bounds parallelism.
  struct Piece {
    uint32_t dfile_index;
    uint64_t dfile_offset;
    uint64_t file_offset;
    uint64_t length;
    Payload result;
  };
  std::vector<Piece> pieces;
  for (const auto& ext : extents) {
    uint64_t done = 0;
    while (done < ext.length) {
      const uint64_t n = std::min(config_.buffer_size, ext.length - done);
      pieces.push_back(Piece{ext.dfile_index, ext.dfile_offset + done,
                             ext.file_offset + done, n, Payload{}});
      done += n;
    }
  }

  sim::WaitGroup wg(fabric_.simulation());
  bool failed = false;
  for (auto& piece : pieces) {
    wg.spawn([](PvfsClient& self, const FileMeta& meta, Piece& piece,
                bool& failed, const obs::TraceContext trace) -> Task<void> {
      const DfileRef& dfile = meta.dfiles[piece.dfile_index];
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      a.put_u64(piece.dfile_offset);
      a.put_u64(piece.length);
      auto r = co_await self.io_call(dfile.server_index, IoProc::kRead,
                                     std::move(a), piece.length, trace);
      auto d = r.body();
      if (reply_status(d) != PvfsStatus::kOk) {
        failed = true;
        co_return;
      }
      piece.result = d.get_payload();
      // Holes in a dfile read as zeros up to the requested length.
      if (piece.result.size() < piece.length) {
        const uint64_t missing = piece.length - piece.result.size();
        if (piece.result.is_inline()) {
          piece.result.append(Payload::inline_bytes(
              std::vector<std::byte>(missing, std::byte{0})));
        } else {
          piece.result.append(Payload::virtual_bytes(missing));
        }
      }
    }(*this, file->meta, piece, failed, trace));
  }
  co_await wg.wait();
  if (failed) throw PvfsError(PvfsStatus::kIo, "read");

  Payload out;
  for (auto& piece : pieces) out.append(piece.result);
  stats_.bytes_read += out.size();
  co_return out;
}

Task<void> PvfsClient::write(PvfsFilePtr file, uint64_t offset, Payload data,
                             obs::TraceContext trace) {
  const uint64_t len = data.size();
  const auto extents = map_stripes(file->meta, offset, len);

  sim::WaitGroup wg(fabric_.simulation());
  bool failed = false;
  for (const auto& ext : extents) {
    uint64_t done = 0;
    while (done < ext.length) {
      const uint64_t n = std::min(config_.buffer_size, ext.length - done);
      Payload piece = data.slice(ext.file_offset - offset + done, n);
      wg.spawn([](PvfsClient& self, const FileMeta& meta, uint32_t dfile_index,
                  uint64_t dfile_offset, Payload piece, bool& failed,
                  const obs::TraceContext trace) -> Task<void> {
        const DfileRef& dfile = meta.dfiles[dfile_index];
        XdrEncoder a;
        a.put_u64(dfile.object_id);
        a.put_u64(dfile_offset);
        const uint64_t bytes = piece.size();
        a.put_payload(piece);
        auto r = co_await self.io_call(dfile.server_index, IoProc::kWrite,
                                       std::move(a), bytes, trace);
        auto d = r.body();
        if (reply_status(d) != PvfsStatus::kOk) failed = true;
      }(*this, file->meta, ext.dfile_index, ext.dfile_offset + done,
        std::move(piece), failed, trace));
      done += n;
    }
  }
  co_await wg.wait();
  if (failed) throw PvfsError(PvfsStatus::kIo, "write");
  file->size = std::max(file->size, offset + len);
  stats_.bytes_written += len;
}

Task<void> PvfsClient::fsync(PvfsFilePtr file, obs::TraceContext trace) {
  sim::WaitGroup wg(fabric_.simulation());
  for (const auto& dfile : file->meta.dfiles) {
    wg.spawn([](PvfsClient& self, const DfileRef dfile,
                const obs::TraceContext trace) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      auto r = co_await self.io_call(dfile.server_index, IoProc::kCommit,
                                     std::move(a), 0, trace);
      auto d = r.body();
      (void)reply_status(d);
    }(*this, dfile, trace));
  }
  co_await wg.wait();
}

Task<void> PvfsClient::close(PvfsFilePtr file) { co_await fsync(file); }

Task<void> PvfsClient::truncate(PvfsFilePtr file, uint64_t size) {
  // Dense striping: dfile i keeps ceil((stripes fully before size) ...).
  // Compute per-dfile target sizes by walking the boundary stripe.
  const uint64_t su = file->meta.stripe_unit;
  const uint64_t n = file->meta.dfiles.size();
  sim::WaitGroup wg(fabric_.simulation());
  for (uint64_t i = 0; i < n; ++i) {
    // Bytes of dfile i that lie below `size` under dense round-robin.
    uint64_t dsize = 0;
    if (size > 0) {
      const uint64_t full_stripes = size / su;
      const uint64_t rem = size % su;
      dsize = (full_stripes / n) * su;
      const uint64_t boundary = full_stripes % n;
      if (i < boundary) {
        dsize += su;
      } else if (i == boundary) {
        dsize += rem;
      }
    }
    wg.spawn([](PvfsClient& self, const DfileRef dfile, uint64_t dsize) -> Task<void> {
      XdrEncoder a;
      a.put_u64(dfile.object_id);
      a.put_u64(dsize);
      auto r = co_await self.io_call(dfile.server_index, IoProc::kTruncate,
                                     std::move(a), 0);
      auto d = r.body();
      (void)reply_status(d);
    }(*this, file->meta.dfiles[i], dsize));
  }
  co_await wg.wait();
  file->size = size;
}

}  // namespace dpnfs::pvfs
