// PVFS2-like parallel file system wire protocol.
//
// Faithful to the architecture the paper exports: a metadata server owning
// the namespace and distribution metadata, and storage daemons owning dfile
// (data file) objects.  Like PVFS2, file *size* is not stored at the
// metadata server — clients gather dfile sizes from the storage nodes and
// reconstruct the logical size (the metadata-decentralization property
// §6.4.3 contrasts with NFSv4's central server).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "rpc/xdr.hpp"

namespace dpnfs::pvfs {

enum class PvfsStatus : uint32_t {
  kOk = 0,
  kNoEnt = 2,
  kIo = 5,
  kExist = 17,
  kNotDir = 20,
  kIsDir = 21,
  kInval = 22,
  kNotEmpty = 39,
};

const char* pvfs_status_name(PvfsStatus s);

class PvfsError : public std::runtime_error {
 public:
  PvfsError(PvfsStatus status, const std::string& context)
      : std::runtime_error(context + ": " + pvfs_status_name(status)),
        status_(status) {}
  PvfsStatus status() const noexcept { return status_; }

 private:
  PvfsStatus status_;
};

/// Metadata-server procedures.
enum class MetaProc : uint32_t {
  kMkdir = 1,
  kCreate = 2,
  kLookup = 3,
  kRemove = 4,
  kRename = 5,
  kReaddir = 6,
};

/// Storage-daemon (I/O) procedures.
///
/// kWrite and kCommit replies append the daemon's 8-byte boot verifier
/// after the payload: equal WRITE/COMMIT verifiers guarantee no daemon
/// restart intervened, so unstable data reached the journal (mirrors the
/// NFS COMMIT verifier, RFC 5661 §18.32).  On a mismatch the client
/// replays its retained unstable pieces (docs/failures.md, "Restart
/// semantics").
enum class IoProc : uint32_t {
  kRead = 1,
  kWrite = 2,
  kCommit = 3,
  kGetSize = 4,
  kRemove = 5,
  kTruncate = 6,
  kCreate = 7,
  // List I/O ("Noncontiguous I/O through PVFS"): one request carrying a
  // vector of (offset, length) regions against one object, backed by a
  // single scatter-gather payload.  Args: oid u64 | count u32 | (offset
  // u64, length u64)* [| payload for kWritev].  A kReadv reply returns one
  // payload per region; a kWritev reply carries one status and one boot
  // verifier covering every region.  The daemon serves kReadv as a single
  // covering span with one disk pass.
  kReadv = 8,
  kWritev = 9,
};

/// One data file (dfile): the portion of a file stored on one storage node.
struct DfileRef {
  uint32_t server_index = 0;  ///< index into the file system's storage list
  uint64_t object_id = 0;     ///< object in that node's store

  bool operator==(const DfileRef&) const = default;

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_u32(server_index);
    enc.put_u64(object_id);
  }
  static DfileRef decode(rpc::XdrDecoder& dec) {
    DfileRef d;
    d.server_index = dec.get_u32();
    d.object_id = dec.get_u64();
    return d;
  }
};

/// How a file's bytes are distributed across its dfiles.
enum class DistKind : uint32_t {
  kStripe = 0,   ///< dense round-robin over all dfiles (PVFS2 simple stripe)
  kMirror = 1,   ///< every dfile holds a full copy (RAID-1)
  kErasure = 2,  ///< RS k+m: first ec_k dfiles data, last ec_m parity
};

/// Distribution + dfile metadata for one regular file.
struct FileMeta {
  uint64_t handle = 0;
  uint64_t stripe_unit = 0;
  DistKind kind = DistKind::kStripe;
  uint32_t ec_k = 0;  ///< kErasure only
  uint32_t ec_m = 0;  ///< kErasure only
  std::vector<DfileRef> dfiles;

  /// Number of dfiles carrying file bytes (excludes erasure parity).
  uint32_t data_dfiles() const noexcept {
    return kind == DistKind::kErasure
               ? ec_k
               : static_cast<uint32_t>(dfiles.size());
  }

  void encode(rpc::XdrEncoder& enc) const {
    enc.put_u64(handle);
    enc.put_u64(stripe_unit);
    enc.put_array(dfiles);
    enc.put_u32(static_cast<uint32_t>(kind));
    enc.put_u32(ec_k);
    enc.put_u32(ec_m);
  }
  static FileMeta decode(rpc::XdrDecoder& dec) {
    FileMeta m;
    m.handle = dec.get_u64();
    m.stripe_unit = dec.get_u64();
    m.dfiles = dec.get_array<DfileRef>();
    const uint32_t kind = dec.get_u32();
    if (kind > 2) throw rpc::XdrError("bad distribution kind");
    m.kind = static_cast<DistKind>(kind);
    m.ec_k = dec.get_u32();
    m.ec_m = dec.get_u32();
    if (m.kind == DistKind::kErasure &&
        (m.ec_k == 0 || m.ec_m == 0 ||
         m.dfiles.size() != static_cast<size_t>(m.ec_k) + m.ec_m)) {
      throw rpc::XdrError("bad erasure distribution");
    }
    return m;
  }
};

/// Maps a logical byte range onto dfiles.
struct StripeExtent {
  uint32_t dfile_index = 0;
  uint64_t dfile_offset = 0;
  uint64_t file_offset = 0;
  uint64_t length = 0;
};

/// Read mapping: kStripe is dense round-robin over all dfiles; kMirror picks
/// one replica per stripe (rotating, to spread readers); kErasure is dense
/// round-robin over the first ec_k (data) dfiles.
std::vector<StripeExtent> map_stripes(const FileMeta& meta, uint64_t offset,
                                      uint64_t length);

/// Write mapping: differs from map_stripes only for kMirror, where every
/// dfile gets a full copy of the range.  (kErasure parity maintenance is a
/// client-stack concern — see docs/failures.md; the native PVFS write path
/// updates data dfiles only.)
std::vector<StripeExtent> map_stripes_write(const FileMeta& meta,
                                            uint64_t offset, uint64_t length);

/// Logical file size implied by per-dfile sizes under the distribution.
/// A dfile whose size is unknown (daemon unreachable) may be reported as 0;
/// redundant distributions then under-estimate at most the final stripe.
uint64_t logical_size(const FileMeta& meta,
                      const std::vector<uint64_t>& dfile_sizes);

/// Exact size dfile `index` must have when the file's logical size is
/// `size` (truncate targets, rebuild verification).
uint64_t dfile_size_for(const FileMeta& meta, uint32_t index, uint64_t size);

}  // namespace dpnfs::pvfs
