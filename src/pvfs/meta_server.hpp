// PVFS2-like metadata server.
//
// Owns the namespace and file distribution metadata.  File creation assigns
// dfiles round-robin across the storage nodes (rotating the starting node
// per file, as PVFS2 does, so single-dfile-heavy workloads spread).
//
// The layout translator (src/core) reads distribution metadata through
// `describe()` — the co-located, in-process access path of the Direct-pNFS
// prototype (Figure 5: the pNFS server and PVFS2 metadata server share a
// node).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pvfs/protocol.hpp"
#include "rpc/fabric.hpp"

namespace dpnfs::pvfs {

struct MetaServerConfig {
  uint64_t stripe_unit = 2ull << 20;  ///< paper: 2 MB stripes
  uint32_t workers = 8;
  sim::Duration cpu_per_op = sim::us(30);

  /// Distribution kind for new files.  kMirror uses `replicas` dfiles;
  /// kErasure uses ec_k + ec_m.  kStripe stripes over every active node.
  DistKind distribution = DistKind::kStripe;
  uint32_t replicas = 2;
  uint32_t ec_k = 4;
  uint32_t ec_m = 2;
  /// Trailing storage nodes held out of new distributions as rebuild
  /// spares.  Active nodes are [0, storage_count - spare_nodes).
  uint32_t spare_nodes = 0;
};

class PvfsMetaServer {
 public:
  /// `storage_count` storage nodes exist; dfiles reference them by index.
  PvfsMetaServer(rpc::RpcFabric& fabric, sim::Node& node, uint16_t port,
                 uint32_t storage_count, MetaServerConfig config = {});

  void start() { rpc_server_->start(); }
  void stop() { rpc_server_->stop(); }
  rpc::RpcAddress address() const { return rpc_server_->address(); }
  /// Requests queued at the RPC daemon right now (utilization sampler).
  size_t rpc_queue_depth() const { return rpc_server_->queue_depth(); }

  /// In-process metadata access for co-located services (layout translator).
  /// Returns nullptr when the path is not a regular file.
  const FileMeta* describe(const std::string& path) const;

  /// In-process lookup by file handle (for translator use from NFS fhs).
  const FileMeta* describe(uint64_t handle) const;

  uint32_t storage_count() const noexcept { return storage_count_; }
  uint64_t stripe_unit() const noexcept { return config_.stripe_unit; }
  const MetaServerConfig& config() const noexcept { return config_; }
  /// Storage nodes currently receiving new distributions.
  uint32_t active_storage() const noexcept {
    return storage_count_ - std::min(storage_count_, config_.spare_nodes);
  }

  // --- Rebuild-service hooks (in-process, MDS-co-located) ---------------

  /// Visits every regular file's distribution metadata.  The visitor may
  /// mutate dfile placements (rebuild retargets a dead node's dfiles).
  void for_each_file(const std::function<void(FileMeta&)>& fn);

  /// Allocates a fresh storage object id (rebuild targets).
  uint64_t allocate_object() { return next_object_++; }

 private:
  struct Entry {
    bool is_dir = false;
    FileMeta meta;  ///< regular files only
    std::map<std::string, std::unique_ptr<Entry>> children;
  };

  sim::Task<void> serve(const rpc::CallContext& ctx, rpc::XdrDecoder& args,
                        rpc::XdrEncoder& results);

  /// Resolves a path to an entry; nullptr if missing.
  Entry* walk(const std::string& path);
  const Entry* walk(const std::string& path) const;
  /// Resolves the parent directory of `path` and the leaf name.
  PvfsStatus walk_parent(const std::string& path, Entry** parent,
                         std::string* leaf);

  FileMeta make_distribution();

  rpc::RpcFabric& fabric_;
  sim::Node& node_;
  uint32_t storage_count_;
  MetaServerConfig config_;
  std::unique_ptr<rpc::RpcServer> rpc_server_;

  Entry root_;
  uint64_t next_handle_ = 1;
  uint64_t next_object_ = 1;
  uint32_t next_start_node_ = 0;
  std::map<uint64_t, const FileMeta*> by_handle_;
};

}  // namespace dpnfs::pvfs
