// PVFS2-like storage daemon.
//
// A thin RPC service over the node's ObjectStore.  Two PVFS2 traits the
// paper leans on are modeled explicitly:
//   * substantial fixed per-request overhead (user-level daemon, kernel
//     buffer crossings) — a CPU charge on every request;
//   * a fixed transfer-buffer pool between kernel and daemon — the RPC
//     worker count bounds request parallelism.
//
// Writes are buffered in the store (memory) and reach the disk on COMMIT —
// PVFS2's "send to stable storage only when necessary or on fsync".
#pragma once

#include <memory>

#include "lfs/object_store.hpp"
#include "rpc/fabric.hpp"

#include "pvfs/protocol.hpp"

namespace dpnfs::pvfs {

struct StorageServerConfig {
  uint32_t buffers = 8;                     ///< bounded transfer-buffer pool
  sim::Duration cpu_per_request = sim::us(450);
  double cpu_ns_per_byte = 2.2;
};

class PvfsStorageServer {
 public:
  PvfsStorageServer(rpc::RpcFabric& fabric, sim::Node& node, uint16_t port,
                    lfs::ObjectStore& store, StorageServerConfig config = {});

  void start() { rpc_server_->start(); }
  void stop() { rpc_server_->stop(); }
  rpc::RpcAddress address() const { return rpc_server_->address(); }
  /// Requests queued at the RPC daemon right now (utilization sampler).
  size_t rpc_queue_depth() const { return rpc_server_->queue_depth(); }
  lfs::ObjectStore& store() noexcept { return store_; }

  /// Write verifier of the daemon incarnation serving right now (carried by
  /// kWrite and kCommit replies; see protocol.hpp).
  uint64_t boot_verifier() const noexcept { return boot_verifier_; }
  /// Restarts this daemon has detected and recovered from.
  uint64_t restarts_observed() const noexcept { return restarts_; }

 private:
  sim::Task<void> serve(const rpc::CallContext& ctx, rpc::XdrDecoder& args,
                        rpc::XdrEncoder& results);

  /// Lazily detects a fault-injector revive of this daemon (same contract as
  /// NfsServer::check_restart): on a boot-instance bump the store's
  /// buffered-but-uncommitted writes and page cache are gone and a fresh
  /// write verifier is adopted.  Journaled state (object existence, sizes of
  /// committed data) survives.
  void check_restart(sim::Time now);

  /// Records a kInternal "store/<op>" span under the request's server span
  /// so the critical-path analyzer can attribute daemon disk time (the
  /// `disk_ns` share of [start, now]) instead of folding it into CPU.
  void trace_store_op(const rpc::CallContext& ctx, const char* op,
                      int64_t start, uint64_t bytes_in, uint64_t bytes_out,
                      int64_t disk_ns) const;

  /// Charges the request's tenant (from the propagated call header) with the
  /// daemon-side data bytes and disk time of one store operation.  No-op
  /// when the fabric carries no tenant ledger.
  void account_store_op(const rpc::CallContext& ctx, uint64_t read_bytes,
                        uint64_t write_bytes, int64_t disk_ns) const;

  rpc::RpcFabric& fabric_;
  sim::Node& node_;
  uint16_t port_;
  lfs::ObjectStore& store_;
  StorageServerConfig config_;
  std::unique_ptr<rpc::RpcServer> rpc_server_;

  // Boot identity: 0 = not yet observed (adopted without a reset on the
  // first request, so fault-free runs never shed state).
  uint64_t boot_instance_ = 0;
  uint64_t boot_verifier_ = 0;
  uint64_t restarts_ = 0;

  // "pvfs.io" component handles, resolved once at construction (null sinks
  // when the fabric carries no registry).
  obs::Counter* m_requests_;
  obs::Counter* m_bytes_read_;
  obs::Counter* m_bytes_written_;
  obs::Counter* m_commits_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace dpnfs::pvfs
