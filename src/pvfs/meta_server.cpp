#include "pvfs/meta_server.hpp"

#include "util/log.hpp"

namespace dpnfs::pvfs {

using rpc::XdrDecoder;
using rpc::XdrEncoder;
using sim::Task;

namespace {

std::vector<std::string> components(const std::string& path) {
  std::vector<std::string> out;
  size_t pos = 1;
  while (pos < path.size()) {
    const size_t next = path.find('/', pos);
    const size_t end = (next == std::string::npos) ? path.size() : next;
    if (end > pos) out.push_back(path.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

}  // namespace

PvfsMetaServer::PvfsMetaServer(rpc::RpcFabric& fabric, sim::Node& node,
                               uint16_t port, uint32_t storage_count,
                               MetaServerConfig config)
    : fabric_(fabric),
      node_(node),
      storage_count_(storage_count),
      config_(config) {
  root_.is_dir = true;
  rpc_server_ = std::make_unique<rpc::RpcServer>(
      fabric, node, port, config.workers,
      [this](const rpc::CallContext& ctx, XdrDecoder& args,
             XdrEncoder& results) -> Task<void> {
        return serve(ctx, args, results);
      });
}

PvfsMetaServer::Entry* PvfsMetaServer::walk(const std::string& path) {
  Entry* cur = &root_;
  for (const auto& comp : components(path)) {
    if (!cur->is_dir) return nullptr;
    auto it = cur->children.find(comp);
    if (it == cur->children.end()) return nullptr;
    cur = it->second.get();
  }
  return cur;
}

const PvfsMetaServer::Entry* PvfsMetaServer::walk(const std::string& path) const {
  return const_cast<PvfsMetaServer*>(this)->walk(path);
}

PvfsStatus PvfsMetaServer::walk_parent(const std::string& path, Entry** parent,
                                       std::string* leaf) {
  if (path.empty() || path[0] != '/' || path == "/") return PvfsStatus::kInval;
  const size_t slash = path.find_last_of('/');
  const std::string dir = (slash == 0) ? "/" : path.substr(0, slash);
  *leaf = path.substr(slash + 1);
  if (leaf->empty()) return PvfsStatus::kInval;
  Entry* p = walk(dir);
  if (p == nullptr) return PvfsStatus::kNoEnt;
  if (!p->is_dir) return PvfsStatus::kNotDir;
  *parent = p;
  return PvfsStatus::kOk;
}

FileMeta PvfsMetaServer::make_distribution() {
  FileMeta meta;
  meta.handle = next_handle_++;
  meta.stripe_unit = config_.stripe_unit;
  meta.kind = config_.distribution;
  const uint32_t active = active_storage();
  uint32_t width = active;
  switch (config_.distribution) {
    case DistKind::kMirror:
      width = std::min(config_.replicas, active);
      break;
    case DistKind::kErasure:
      meta.ec_k = config_.ec_k;
      meta.ec_m = config_.ec_m;
      width = config_.ec_k + config_.ec_m;
      if (width > active) {
        throw PvfsError(PvfsStatus::kInval,
                        "make_distribution: ec_k+ec_m exceeds active nodes");
      }
      break;
    case DistKind::kStripe:
      break;
  }
  if (width == 0) {
    throw PvfsError(PvfsStatus::kInval, "make_distribution: no active nodes");
  }
  const uint32_t start = next_start_node_;
  next_start_node_ = (next_start_node_ + 1) % active;
  for (uint32_t i = 0; i < width; ++i) {
    meta.dfiles.push_back(DfileRef{(start + i) % active, next_object_++});
  }
  return meta;
}

void PvfsMetaServer::for_each_file(
    const std::function<void(FileMeta&)>& fn) {
  // by_handle_ indexes every regular file; cast away the view-constness (the
  // entries live in our own tree).
  for (auto& [handle, meta] : by_handle_) {
    fn(*const_cast<FileMeta*>(meta));
  }
}

const FileMeta* PvfsMetaServer::describe(const std::string& path) const {
  const Entry* e = walk(path);
  if (e == nullptr || e->is_dir) return nullptr;
  return &e->meta;
}

const FileMeta* PvfsMetaServer::describe(uint64_t handle) const {
  const auto it = by_handle_.find(handle);
  return it == by_handle_.end() ? nullptr : it->second;
}

Task<void> PvfsMetaServer::serve(const rpc::CallContext& ctx, XdrDecoder& args,
                                 XdrEncoder& results) {
  co_await node_.cpu().execute(config_.cpu_per_op);
  const auto proc = static_cast<MetaProc>(ctx.header.proc);
  // Mutating operations synchronously journal to the metadata manager's
  // disk (PVFS2 commits its Berkeley DB on every namespace change).
  switch (proc) {
    case MetaProc::kMkdir:
    case MetaProc::kCreate:
    case MetaProc::kRemove:
    case MetaProc::kRename:
      if (node_.has_disk()) {
        co_await node_.disk().io((1ull << 50) + (1ull << 40), 4096);
      }
      break;
    default:
      break;
  }
  // Every reply starts with a PvfsStatus; bodies follow on success.
  switch (proc) {
    case MetaProc::kMkdir: {
      const std::string path = args.get_string();
      Entry* parent = nullptr;
      std::string leaf;
      PvfsStatus st = walk_parent(path, &parent, &leaf);
      if (st == PvfsStatus::kOk && parent->children.contains(leaf)) {
        st = PvfsStatus::kExist;
      }
      results.put_u32(static_cast<uint32_t>(st));
      if (st == PvfsStatus::kOk) {
        auto e = std::make_unique<Entry>();
        e->is_dir = true;
        parent->children.emplace(leaf, std::move(e));
      }
      co_return;
    }
    case MetaProc::kCreate: {
      const std::string path = args.get_string();
      Entry* parent = nullptr;
      std::string leaf;
      PvfsStatus st = walk_parent(path, &parent, &leaf);
      if (st == PvfsStatus::kOk && parent->children.contains(leaf)) {
        st = PvfsStatus::kExist;
      }
      results.put_u32(static_cast<uint32_t>(st));
      if (st == PvfsStatus::kOk) {
        auto e = std::make_unique<Entry>();
        e->is_dir = false;
        e->meta = make_distribution();
        const Entry* stored = e.get();
        parent->children.emplace(leaf, std::move(e));
        by_handle_[stored->meta.handle] = &stored->meta;
        stored->meta.encode(results);
      }
      co_return;
    }
    case MetaProc::kLookup: {
      const std::string path = args.get_string();
      const Entry* e = walk(path);
      PvfsStatus st = PvfsStatus::kOk;
      if (e == nullptr) {
        st = PvfsStatus::kNoEnt;
      } else if (e->is_dir) {
        st = PvfsStatus::kIsDir;
      }
      results.put_u32(static_cast<uint32_t>(st));
      if (st == PvfsStatus::kOk) e->meta.encode(results);
      co_return;
    }
    case MetaProc::kRemove: {
      const std::string path = args.get_string();
      Entry* parent = nullptr;
      std::string leaf;
      PvfsStatus st = walk_parent(path, &parent, &leaf);
      FileMeta removed;
      if (st == PvfsStatus::kOk) {
        auto it = parent->children.find(leaf);
        if (it == parent->children.end()) {
          st = PvfsStatus::kNoEnt;
        } else if (it->second->is_dir && !it->second->children.empty()) {
          st = PvfsStatus::kNotEmpty;
        } else {
          if (!it->second->is_dir) {
            removed = it->second->meta;
            by_handle_.erase(removed.handle);
          }
          parent->children.erase(it);
        }
      }
      results.put_u32(static_cast<uint32_t>(st));
      // The dfile list goes back so the client can reap the storage objects
      // (PVFS2's client-driven remove).
      if (st == PvfsStatus::kOk) removed.encode(results);
      co_return;
    }
    case MetaProc::kRename: {
      const std::string from = args.get_string();
      const std::string to = args.get_string();
      Entry* src_parent = nullptr;
      Entry* dst_parent = nullptr;
      std::string src_leaf, dst_leaf;
      PvfsStatus st = walk_parent(from, &src_parent, &src_leaf);
      if (st == PvfsStatus::kOk) st = walk_parent(to, &dst_parent, &dst_leaf);
      if (st == PvfsStatus::kOk) {
        auto it = src_parent->children.find(src_leaf);
        if (it == src_parent->children.end()) {
          st = PvfsStatus::kNoEnt;
        } else if (dst_parent->children.contains(dst_leaf)) {
          st = PvfsStatus::kExist;
        } else {
          dst_parent->children.emplace(dst_leaf, std::move(it->second));
          src_parent->children.erase(it);
        }
      }
      results.put_u32(static_cast<uint32_t>(st));
      co_return;
    }
    case MetaProc::kReaddir: {
      const std::string path = args.get_string();
      const Entry* e = walk(path);
      PvfsStatus st = PvfsStatus::kOk;
      if (e == nullptr) {
        st = PvfsStatus::kNoEnt;
      } else if (!e->is_dir) {
        st = PvfsStatus::kNotDir;
      }
      results.put_u32(static_cast<uint32_t>(st));
      if (st == PvfsStatus::kOk) {
        results.put_u32(static_cast<uint32_t>(e->children.size()));
        for (const auto& [name, child] : e->children) {
          results.put_string(name);
          results.put_bool(child->is_dir);
        }
      }
      co_return;
    }
  }
  results.put_u32(static_cast<uint32_t>(PvfsStatus::kInval));
}

}  // namespace dpnfs::pvfs
