#include "pvfs/protocol.hpp"

#include <algorithm>

namespace dpnfs::pvfs {

const char* pvfs_status_name(PvfsStatus s) {
  switch (s) {
    case PvfsStatus::kOk: return "PVFS_OK";
    case PvfsStatus::kNoEnt: return "PVFS_ENOENT";
    case PvfsStatus::kIo: return "PVFS_EIO";
    case PvfsStatus::kExist: return "PVFS_EEXIST";
    case PvfsStatus::kNotDir: return "PVFS_ENOTDIR";
    case PvfsStatus::kIsDir: return "PVFS_EISDIR";
    case PvfsStatus::kInval: return "PVFS_EINVAL";
    case PvfsStatus::kNotEmpty: return "PVFS_ENOTEMPTY";
  }
  return "PVFS_E?";
}

namespace {

/// Dense round-robin mapping over the first `n` dfiles.
std::vector<StripeExtent> map_dense(const FileMeta& meta, uint64_t n,
                                    uint64_t offset, uint64_t length) {
  std::vector<StripeExtent> out;
  const uint64_t su = meta.stripe_unit;
  uint64_t pos = offset;
  const uint64_t end = offset + length;
  while (pos < end) {
    const uint64_t stripe = pos / su;
    const uint64_t in_stripe = pos % su;
    const uint64_t take = std::min(su - in_stripe, end - pos);
    StripeExtent ext;
    ext.dfile_index = static_cast<uint32_t>(stripe % n);
    ext.dfile_offset = (stripe / n) * su + in_stripe;
    ext.file_offset = pos;
    ext.length = take;
    if (!out.empty() && out.back().dfile_index == ext.dfile_index &&
        out.back().dfile_offset + out.back().length == ext.dfile_offset) {
      out.back().length += take;
    } else {
      out.push_back(ext);
    }
    pos += take;
  }
  return out;
}

void check_distribution(const FileMeta& meta, const char* who) {
  if (meta.dfiles.empty() || meta.stripe_unit == 0 ||
      (meta.kind == DistKind::kErasure &&
       meta.dfiles.size() != static_cast<size_t>(meta.ec_k) + meta.ec_m)) {
    throw PvfsError(PvfsStatus::kInval,
                    std::string(who) + ": bad distribution");
  }
}

}  // namespace

std::vector<StripeExtent> map_stripes(const FileMeta& meta, uint64_t offset,
                                      uint64_t length) {
  check_distribution(meta, "map_stripes");
  if (meta.kind == DistKind::kMirror) {
    // Full copies: pick one replica per stripe, rotating to spread readers.
    std::vector<StripeExtent> out;
    const uint64_t su = meta.stripe_unit;
    const uint64_t n = meta.dfiles.size();
    uint64_t pos = offset;
    const uint64_t end = offset + length;
    while (pos < end) {
      const uint64_t stripe = pos / su;
      const uint64_t take = std::min(su - pos % su, end - pos);
      StripeExtent ext;
      ext.dfile_index = static_cast<uint32_t>(stripe % n);
      ext.dfile_offset = pos;  // replica offset == file offset
      ext.file_offset = pos;
      ext.length = take;
      if (!out.empty() && out.back().dfile_index == ext.dfile_index &&
          out.back().dfile_offset + out.back().length == ext.dfile_offset) {
        out.back().length += take;
      } else {
        out.push_back(ext);
      }
      pos += take;
    }
    return out;
  }
  return map_dense(meta, meta.data_dfiles(), offset, length);
}

std::vector<StripeExtent> map_stripes_write(const FileMeta& meta,
                                            uint64_t offset, uint64_t length) {
  check_distribution(meta, "map_stripes_write");
  if (meta.kind != DistKind::kMirror) return map_stripes(meta, offset, length);
  std::vector<StripeExtent> out;
  for (uint32_t d = 0; d < meta.dfiles.size(); ++d) {
    StripeExtent ext;
    ext.dfile_index = d;
    ext.dfile_offset = offset;
    ext.file_offset = offset;
    ext.length = length;
    out.push_back(ext);
  }
  return out;
}

uint64_t logical_size(const FileMeta& meta,
                      const std::vector<uint64_t>& dfile_sizes) {
  const uint64_t su = meta.stripe_unit;
  if (meta.kind == DistKind::kMirror) {
    uint64_t logical = 0;
    for (uint64_t s : dfile_sizes) logical = std::max(logical, s);
    return logical;
  }
  const uint64_t n = meta.data_dfiles();
  uint64_t logical = 0;
  for (uint64_t i = 0; i < dfile_sizes.size() && i < n; ++i) {
    const uint64_t s = dfile_sizes[i];
    if (s == 0) continue;
    const uint64_t last = s - 1;                       // last byte in dfile i
    const uint64_t dev_stripe = last / su;             // stripe within dfile
    const uint64_t global_stripe = dev_stripe * n + i; // stripe in the file
    logical = std::max(logical, global_stripe * su + (last % su) + 1);
  }
  return logical;
}

uint64_t dfile_size_for(const FileMeta& meta, uint32_t index, uint64_t size) {
  check_distribution(meta, "dfile_size_for");
  const uint64_t su = meta.stripe_unit;
  if (meta.kind == DistKind::kMirror) return size;
  const uint64_t n = meta.data_dfiles();
  if (meta.kind == DistKind::kErasure && index >= n) {
    // Parity dfiles hold one whole stripe-unit block per stripe group.
    const uint64_t gb = n * su;
    return ((size + gb - 1) / gb) * su;
  }
  // Dense round-robin: full stripes assigned to `index`, plus the partial
  // tail stripe when it lands there.
  const uint64_t full = size / su;
  const uint64_t rem = size % su;
  uint64_t blocks = full / n + (index < full % n ? 1 : 0);
  uint64_t s = blocks * su;
  if (rem > 0 && full % n == index) s += rem;
  return s;
}

}  // namespace dpnfs::pvfs
