#include "pvfs/protocol.hpp"

#include <algorithm>

namespace dpnfs::pvfs {

const char* pvfs_status_name(PvfsStatus s) {
  switch (s) {
    case PvfsStatus::kOk: return "PVFS_OK";
    case PvfsStatus::kNoEnt: return "PVFS_ENOENT";
    case PvfsStatus::kIo: return "PVFS_EIO";
    case PvfsStatus::kExist: return "PVFS_EEXIST";
    case PvfsStatus::kNotDir: return "PVFS_ENOTDIR";
    case PvfsStatus::kIsDir: return "PVFS_EISDIR";
    case PvfsStatus::kInval: return "PVFS_EINVAL";
    case PvfsStatus::kNotEmpty: return "PVFS_ENOTEMPTY";
  }
  return "PVFS_E?";
}

std::vector<StripeExtent> map_stripes(const FileMeta& meta, uint64_t offset,
                                      uint64_t length) {
  std::vector<StripeExtent> out;
  if (meta.dfiles.empty() || meta.stripe_unit == 0) {
    throw PvfsError(PvfsStatus::kInval, "map_stripes: bad distribution");
  }
  const uint64_t su = meta.stripe_unit;
  const uint64_t n = meta.dfiles.size();
  uint64_t pos = offset;
  const uint64_t end = offset + length;
  while (pos < end) {
    const uint64_t stripe = pos / su;
    const uint64_t in_stripe = pos % su;
    const uint64_t take = std::min(su - in_stripe, end - pos);
    StripeExtent ext;
    ext.dfile_index = static_cast<uint32_t>(stripe % n);
    ext.dfile_offset = (stripe / n) * su + in_stripe;
    ext.file_offset = pos;
    ext.length = take;
    if (!out.empty() && out.back().dfile_index == ext.dfile_index &&
        out.back().dfile_offset + out.back().length == ext.dfile_offset) {
      out.back().length += take;
    } else {
      out.push_back(ext);
    }
    pos += take;
  }
  return out;
}

uint64_t logical_size(const FileMeta& meta,
                      const std::vector<uint64_t>& dfile_sizes) {
  const uint64_t su = meta.stripe_unit;
  const uint64_t n = meta.dfiles.size();
  uint64_t logical = 0;
  for (uint64_t i = 0; i < dfile_sizes.size() && i < n; ++i) {
    const uint64_t s = dfile_sizes[i];
    if (s == 0) continue;
    const uint64_t last = s - 1;                       // last byte in dfile i
    const uint64_t dev_stripe = last / su;             // stripe within dfile
    const uint64_t global_stripe = dev_stripe * n + i; // stripe in the file
    logical = std::max(logical, global_stripe * su + (last % su) + 1);
  }
  return logical;
}

}  // namespace dpnfs::pvfs
