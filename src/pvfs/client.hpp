// PVFS2-like native client.
//
// The properties the paper attributes to PVFS2 1.5.1 are implemented
// directly (§5, §6.2):
//   * no client data cache and no write-back cache — every application
//     request goes to the storage nodes;
//   * large transfer buffers with *limited request parallelization* — a
//     bounded buffer pool gates concurrent storage requests;
//   * substantial fixed per-request overhead — a CPU charge on every
//     storage request;
//   * data buffered on storage nodes, committed on fsync/close.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pvfs/protocol.hpp"
#include "rpc/fabric.hpp"

namespace dpnfs::pvfs {

struct PvfsClientConfig {
  uint32_t buffer_count = 8;              ///< concurrent storage requests
  uint64_t buffer_size = 4ull << 20;      ///< max bytes per storage request
  sim::Duration cpu_per_request = sim::us(400);
  /// Kernel<->user-level-daemon crossing cost on the client box.
  double cpu_ns_per_byte = 4.0;
  /// Latency of a metadata operation through the kernel module's upcall
  /// queue (PVFS2 1.x metadata ops were notoriously slow through the VFS).
  /// Zero for co-located services with direct library access (the
  /// Direct-pNFS metadata server of Figure 5).
  sim::Duration vfs_meta_latency = sim::ms(20);
};

struct PvfsClientStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t storage_requests = 0;
  uint64_t meta_requests = 0;
};

/// An open PVFS2 file: distribution metadata plus a cached logical size.
struct PvfsFile {
  FileMeta meta;
  uint64_t size = 0;  ///< client's view; authoritative size needs a gather
};
using PvfsFilePtr = std::shared_ptr<PvfsFile>;

class PvfsClient {
 public:
  PvfsClient(rpc::RpcFabric& fabric, sim::Node& node, rpc::RpcAddress meta,
             std::vector<rpc::RpcAddress> storage, std::string principal,
             PvfsClientConfig config = {});

  // -- Namespace -------------------------------------------------------------
  sim::Task<void> mkdir(const std::string& path);
  sim::Task<void> remove(const std::string& path);
  sim::Task<void> rename(const std::string& from, const std::string& to);
  /// (name, is_dir) pairs.
  sim::Task<std::vector<std::pair<std::string, bool>>> readdir(
      const std::string& path);

  // -- Files -----------------------------------------------------------------
  sim::Task<PvfsFilePtr> create(const std::string& path);
  sim::Task<PvfsFilePtr> open(const std::string& path);
  // Data operations take an optional trace context: when a pNFS data server
  // proxies client I/O through this PVFS client, the storage RPCs it issues
  // are recorded as child hops of the NFS request being served.
  sim::Task<rpc::Payload> read(PvfsFilePtr file, uint64_t offset,
                               uint64_t length, obs::TraceContext trace = {});
  sim::Task<void> write(PvfsFilePtr file, uint64_t offset, rpc::Payload data,
                        obs::TraceContext trace = {});
  sim::Task<void> fsync(PvfsFilePtr file, obs::TraceContext trace = {});
  /// Commits buffered data (matching the exported-FS semantics of §5).
  sim::Task<void> close(PvfsFilePtr file);
  /// Gathers dfile sizes from the storage nodes (PVFS2-style getattr).
  sim::Task<uint64_t> fetch_size(PvfsFilePtr file);
  sim::Task<void> truncate(PvfsFilePtr file, uint64_t size);

  const PvfsClientStats& stats() const noexcept { return stats_; }
  const PvfsClientConfig& config() const noexcept { return config_; }

 private:
  sim::Task<rpc::RpcClient::Reply> meta_call(MetaProc proc,
                                             rpc::XdrEncoder args);
  /// One storage request through the buffer pool (charges client CPU).
  sim::Task<rpc::RpcClient::Reply> io_call(uint32_t server_index, IoProc proc,
                                           rpc::XdrEncoder args,
                                           uint64_t data_bytes,
                                           obs::TraceContext trace = {});
  static PvfsStatus reply_status(rpc::XdrDecoder& dec);

  rpc::RpcFabric& fabric_;
  sim::Node& node_;
  rpc::RpcAddress meta_;
  std::vector<rpc::RpcAddress> storage_;
  rpc::RpcClient rpc_;
  PvfsClientConfig config_;
  sim::Semaphore buffers_;
  PvfsClientStats stats_;
};

}  // namespace dpnfs::pvfs
