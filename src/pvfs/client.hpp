// PVFS2-like native client.
//
// The properties the paper attributes to PVFS2 1.5.1 are implemented
// directly (§5, §6.2):
//   * no client data cache and no write-back cache — every application
//     request goes to the storage nodes;
//   * large transfer buffers with *limited request parallelization* — a
//     bounded buffer pool gates concurrent storage requests;
//   * substantial fixed per-request overhead — a CPU charge on every
//     storage request;
//   * data buffered on storage nodes, committed on fsync/close.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pvfs/protocol.hpp"
#include "rpc/fabric.hpp"

namespace dpnfs::pvfs {

struct PvfsClientConfig {
  uint32_t buffer_count = 8;              ///< concurrent storage requests
  uint64_t buffer_size = 4ull << 20;      ///< max bytes per storage request
  sim::Duration cpu_per_request = sim::us(400);
  /// Kernel<->user-level-daemon crossing cost on the client box.
  double cpu_ns_per_byte = 4.0;
  /// Latency of a metadata operation through the kernel module's upcall
  /// queue (PVFS2 1.x metadata ops were notoriously slow through the VFS).
  /// Zero for co-located services with direct library access (the
  /// Direct-pNFS metadata server of Figure 5).
  sim::Duration vfs_meta_latency = sim::ms(20);
  /// Per-attempt RPC deadline for storage/meta requests.  Zero keeps the
  /// legacy untimed behavior (requests to a crashed daemon park until it
  /// revives); fault-tolerance runs set a deadline so the client can detect
  /// the outage and drive write replay.
  sim::Duration io_timeout = 0;
  uint32_t io_retries = 1;        ///< attempts per storage request (>= 1)
  sim::Duration meta_timeout = 0;
  uint32_t meta_retries = 1;
  /// List I/O: fold multiple (offset, length) regions of one dfile into a
  /// single kReadv/kWritev request.  Off, every region is its own request.
  bool listio_enabled = true;
  uint32_t listio_max_regions = 64;  ///< regions per vectored request
  /// Tenant identity stamped into RPCs this client *originates* (0: none).
  /// Proxied calls (a pNFS server serving some tenant's I/O) propagate the
  /// tenant riding in on the serving request instead.
  uint32_t tenant_id = 0;
};

struct PvfsClientStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t storage_requests = 0;
  uint64_t meta_requests = 0;
  // Crash-recovery accounting (mirrors nfs::ClientStats replay counters).
  uint64_t verifier_mismatches = 0;
  uint64_t replayed_extents = 0;
  uint64_t replayed_bytes = 0;
  // List I/O accounting: kReadv/kWritev requests, regions they carried and
  // bytes they moved (single-region requests go out as classic kRead/kWrite
  // and are not counted here).
  uint64_t vectored_requests = 0;
  uint64_t vectored_regions = 0;
  uint64_t vectored_bytes = 0;
};

/// An open PVFS2 file: distribution metadata plus a cached logical size.
struct PvfsFile {
  FileMeta meta;
  uint64_t size = 0;  ///< client's view; authoritative size needs a gather
};
using PvfsFilePtr = std::shared_ptr<PvfsFile>;

class PvfsClient {
 public:
  PvfsClient(rpc::RpcFabric& fabric, sim::Node& node, rpc::RpcAddress meta,
             std::vector<rpc::RpcAddress> storage, std::string principal,
             PvfsClientConfig config = {});

  // -- Namespace -------------------------------------------------------------
  sim::Task<void> mkdir(const std::string& path);
  sim::Task<void> remove(const std::string& path);
  sim::Task<void> rename(const std::string& from, const std::string& to);
  /// (name, is_dir) pairs.
  sim::Task<std::vector<std::pair<std::string, bool>>> readdir(
      const std::string& path);

  // -- Files -----------------------------------------------------------------
  sim::Task<PvfsFilePtr> create(const std::string& path);
  sim::Task<PvfsFilePtr> open(const std::string& path);
  // Data operations take an optional trace context: when a pNFS data server
  // proxies client I/O through this PVFS client, the storage RPCs it issues
  // are recorded as child hops of the NFS request being served.
  sim::Task<rpc::Payload> read(PvfsFilePtr file, uint64_t offset,
                               uint64_t length, obs::TraceContext trace = {});
  sim::Task<void> write(PvfsFilePtr file, uint64_t offset, rpc::Payload data,
                        obs::TraceContext trace = {});
  sim::Task<void> fsync(PvfsFilePtr file, obs::TraceContext trace = {});
  /// Commits buffered data (matching the exported-FS semantics of §5).
  sim::Task<void> close(PvfsFilePtr file);
  /// Gathers dfile sizes from the storage nodes (PVFS2-style getattr).
  sim::Task<uint64_t> fetch_size(PvfsFilePtr file);
  sim::Task<void> truncate(PvfsFilePtr file, uint64_t size);

  const PvfsClientStats& stats() const noexcept { return stats_; }
  const PvfsClientConfig& config() const noexcept { return config_; }

  /// Forgets all retained/stale write pieces and known daemon verifiers.
  /// Called when the *host* of this client restarts (e.g. a pNFS data
  /// server proxying through it): the new incarnation must not resurrect
  /// the dead incarnation's buffered bytes.
  void drop_replay_state();

 private:
  /// One uncommitted write piece.  `seq` is the retention order: a kCommit
  /// only retires pieces whose reply arrived before it was issued (seq <=
  /// the snapshot taken at issue time), so a write racing the commit keeps
  /// its retention.
  struct RetainedPiece {
    uint64_t seq = 0;
    rpc::Payload data;
  };
  /// dfile offset -> bytes (non-overlapping; newest wins on insert).
  using PieceMap = std::map<uint64_t, RetainedPiece>;

  /// Uncommitted writes sent to one storage daemon incarnation.  PVFS2 has
  /// no client cache, so the retained kWrite payloads here are the client's
  /// only copy until a matching-verifier kCommit retires them.
  struct DaemonState {
    bool verifier_known = false;
    uint64_t verifier = 0;
    /// object id -> pieces awaiting commit by the incarnation above.
    std::map<uint64_t, PieceMap> retained;
    /// Pieces orphaned by a daemon restart (verifier changed before their
    /// commit): must be re-sent by the next fsync.
    std::map<uint64_t, PieceMap> stale;
  };

  /// One (dfile offset, length) region of a vectored storage request.
  struct IoRange {
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  sim::Task<rpc::RpcClient::Reply> meta_call(MetaProc proc,
                                             rpc::XdrEncoder args);
  /// One storage request through the buffer pool (charges client CPU).
  sim::Task<rpc::RpcClient::Reply> io_call(uint32_t server_index, IoProc proc,
                                           rpc::XdrEncoder args,
                                           uint64_t data_bytes,
                                           obs::TraceContext trace = {});
  /// Fetches `regions` of one dfile in a single request (a 1-element list
  /// goes out as the classic kRead).  Each returned payload is zero-padded
  /// to its region's length: dfile holes read as zeros.
  sim::Task<std::vector<rpc::Payload>> read_regions(
      const DfileRef& dfile, const std::vector<IoRange>& regions,
      obs::TraceContext trace);
  /// Sends `regions` of one dfile in a single unstable write carrying the
  /// regions' bytes concatenated in list order (1-element lists use the
  /// classic kWrite).  Returns the daemon's boot verifier, which covers
  /// every region.
  sim::Task<uint64_t> write_regions(const DfileRef& dfile,
                                    const std::vector<IoRange>& regions,
                                    rpc::Payload data, obs::TraceContext trace);
  static PvfsStatus reply_status(rpc::XdrDecoder& dec);

  /// Adopts a write verifier observed in a kWrite/kCommit reply from daemon
  /// `server_index`.  A change moves every retained piece to the stale set
  /// (the incarnation holding them is gone) and counts a mismatch.
  void note_daemon_verifier(uint32_t server_index, uint64_t verifier);
  /// Records a successfully sent unstable write for replay, newest-wins
  /// over any earlier retained/stale piece it overlaps.
  void retain_piece(uint32_t server_index, uint64_t object_id,
                    uint64_t dfile_offset, rpc::Payload piece);
  /// Trims [offset, offset+len) out of a piece map (splitting pieces that
  /// straddle a boundary).
  static void trim_range(PieceMap& pieces, uint64_t offset, uint64_t len);
  /// Re-sends stale pieces belonging to `file`'s dfiles.  Returns the
  /// number of pieces replayed; throws if a daemon stays unreachable.
  sim::Task<uint64_t> replay_stale(PvfsFilePtr file, obs::TraceContext trace);

  rpc::RpcFabric& fabric_;
  sim::Node& node_;
  rpc::RpcAddress meta_;
  std::vector<rpc::RpcAddress> storage_;
  rpc::RpcClient rpc_;
  PvfsClientConfig config_;
  sim::Semaphore buffers_;
  PvfsClientStats stats_;
  std::vector<DaemonState> daemons_;
  uint64_t retain_seq_ = 0;

  obs::Counter* m_verifier_mismatches_;
  obs::Counter* m_replayed_extents_;
  obs::Counter* m_replayed_bytes_;
};

}  // namespace dpnfs::pvfs
