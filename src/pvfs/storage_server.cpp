#include "pvfs/storage_server.hpp"

#include "sim/fault.hpp"
#include "util/format.hpp"
#include "util/log.hpp"

namespace dpnfs::pvfs {

using rpc::XdrDecoder;
using rpc::XdrEncoder;
using sim::Task;

namespace {
/// Disk region for the daemon's synchronous journal/metadata updates.
constexpr uint64_t kJournalPosition = 1ull << 50;
}  // namespace

PvfsStorageServer::PvfsStorageServer(rpc::RpcFabric& fabric, sim::Node& node,
                                     uint16_t port, lfs::ObjectStore& store,
                                     StorageServerConfig config)
    : fabric_(fabric), node_(node), port_(port), store_(store),
      config_(config) {
  if (obs::MetricsRegistry* reg = fabric.metrics()) {
    const std::string& n = node.name();
    m_requests_ = &reg->counter(n, "pvfs.io", "requests");
    m_bytes_read_ = &reg->counter(n, "pvfs.io", "bytes_read");
    m_bytes_written_ = &reg->counter(n, "pvfs.io", "bytes_written");
    m_commits_ = &reg->counter(n, "pvfs.io", "commits");
  } else {
    m_requests_ = &obs::MetricsRegistry::null_counter();
    m_bytes_read_ = &obs::MetricsRegistry::null_counter();
    m_bytes_written_ = &obs::MetricsRegistry::null_counter();
    m_commits_ = &obs::MetricsRegistry::null_counter();
  }
  tracer_ = fabric.tracer();
  rpc_server_ = std::make_unique<rpc::RpcServer>(
      fabric, node, port, config.buffers,
      [this](const rpc::CallContext& ctx, XdrDecoder& args,
             XdrEncoder& results) -> Task<void> {
        return serve(ctx, args, results);
      });
}

void PvfsStorageServer::trace_store_op(const rpc::CallContext& ctx,
                                       const char* op, int64_t start,
                                       uint64_t bytes_in, uint64_t bytes_out,
                                       int64_t disk_ns) const {
  if (tracer_ == nullptr || !ctx.trace.valid()) return;
  obs::Span span;
  span.trace_id = ctx.trace.trace_id;
  span.span_id = tracer_->begin(ctx.trace).span_id;
  span.parent_span_id = ctx.trace.span_id;
  span.kind = obs::SpanKind::kInternal;
  span.name = std::string("store/") + op;
  span.node = node_.name();
  span.start = start;
  span.end = node_.simulation().now();
  span.bytes_out = bytes_out;
  span.bytes_in = bytes_in;
  span.disk = disk_ns;
  tracer_->record(std::move(span));
}

void PvfsStorageServer::account_store_op(const rpc::CallContext& ctx,
                                         uint64_t read_bytes,
                                         uint64_t write_bytes,
                                         int64_t disk_ns) const {
  obs::TenantLedger* tenants = fabric_.tenants();
  if (tenants == nullptr) return;
  tenants->account_data(ctx.trace.tenant, read_bytes, write_bytes);
  tenants->account_disk(ctx.trace.tenant, disk_ns);
}

void PvfsStorageServer::check_restart(sim::Time now) {
  const sim::FaultInjector* faults = fabric_.network().faults();
  const uint64_t instance =
      faults ? faults->boot_instance(node_.id(), port_, now) : 1;
  if (instance == boot_instance_) return;
  const bool first_sight = boot_instance_ == 0;
  boot_instance_ = instance;
  boot_verifier_ =
      faults ? faults->boot_verifier(node_.id(), port_, now)
             : (0x9E3779B97F4A7C15ull ^ ((uint64_t{node_.id()} << 16) | port_));
  if (first_sight) return;  // initial adoption, nothing was lost
  // Buffered (uncommitted) writes lived in the dead daemon's memory; the
  // journal preserved object existence and committed bytes.
  store_.drop_dirty();
  store_.drop_caches();
  ++restarts_;
  util::logf(util::LogLevel::kInfo, "pvfs.io", now,
             "%s:%u storage daemon restarted (instance %llu, verifier %016llx)",
             node_.name().c_str(), static_cast<unsigned>(port_),
             static_cast<unsigned long long>(instance),
             static_cast<unsigned long long>(boot_verifier_));
  if (obs::FlightRecorder* flight = fabric_.flight()) {
    flight->record(now, node_.name(), "pvfs.io", "restart",
                   util::sformat("port %u instance %llu verifier %016llx",
                                 static_cast<unsigned>(port_),
                                 static_cast<unsigned long long>(instance),
                                 static_cast<unsigned long long>(
                                     boot_verifier_)));
  }
}

Task<void> PvfsStorageServer::serve(const rpc::CallContext& ctx,
                                    XdrDecoder& args, XdrEncoder& results) {
  check_restart(node_.simulation().now());
  const auto proc = static_cast<IoProc>(ctx.header.proc);
  m_requests_->inc();
  switch (proc) {
    case IoProc::kRead: {
      const uint64_t oid = args.get_u64();
      const uint64_t offset = args.get_u64();
      const uint64_t length = args.get_u64();
      co_await node_.cpu().execute(
          config_.cpu_per_request +
          static_cast<sim::Duration>(config_.cpu_ns_per_byte *
                                     static_cast<double>(length)));
      results.put_u32(static_cast<uint32_t>(PvfsStatus::kOk));
      if (!store_.exists(oid)) {
        results.put_payload(rpc::Payload{});
      } else {
        const int64_t start = node_.simulation().now();
        const uint64_t disk0 = store_.stats().disk_time_ns;
        rpc::Payload data = co_await store_.read(oid, offset, length);
        const auto disk_ns =
            static_cast<int64_t>(store_.stats().disk_time_ns - disk0);
        trace_store_op(ctx, "read", start, 0, data.size(), disk_ns);
        account_store_op(ctx, data.size(), 0, disk_ns);
        m_bytes_read_->add(data.size());
        results.put_payload(data);
      }
      co_return;
    }
    case IoProc::kWrite: {
      const uint64_t oid = args.get_u64();
      const uint64_t offset = args.get_u64();
      rpc::Payload data = args.get_payload();
      co_await node_.cpu().execute(
          config_.cpu_per_request +
          static_cast<sim::Duration>(config_.cpu_ns_per_byte *
                                     static_cast<double>(data.size())));
      m_bytes_written_->add(data.size());
      const uint64_t len = data.size();
      const int64_t start = node_.simulation().now();
      const uint64_t disk0 = store_.stats().disk_time_ns;
      co_await store_.write(oid, offset, std::move(data), /*stable=*/false);
      {
        const auto disk_ns =
            static_cast<int64_t>(store_.stats().disk_time_ns - disk0);
        trace_store_op(ctx, "write", start, len, 0, disk_ns);
        account_store_op(ctx, 0, len, disk_ns);
      }
      results.put_u32(static_cast<uint32_t>(PvfsStatus::kOk));
      // Buffered write: the verifier tells the client which daemon
      // incarnation holds the volatile bytes (see protocol.hpp).
      results.put_u64(boot_verifier_);
      co_return;
    }
    case IoProc::kReadv: {
      const uint64_t oid = args.get_u64();
      const uint32_t n = args.get_u32();
      if (n == 0 || n > (1u << 20)) {
        results.put_u32(static_cast<uint32_t>(PvfsStatus::kInval));
        co_return;
      }
      std::vector<std::pair<uint64_t, uint64_t>> regions;
      regions.reserve(n);
      uint64_t total = 0, lo = UINT64_MAX, hi = 0;
      for (uint32_t i = 0; i < n; ++i) {
        const uint64_t off = args.get_u64();
        const uint64_t len = args.get_u64();
        regions.emplace_back(off, len);
        total += len;
        lo = std::min(lo, off);
        hi = std::max(hi, off + len);
      }
      co_await node_.cpu().execute(
          config_.cpu_per_request +
          static_cast<sim::Duration>(config_.cpu_ns_per_byte *
                                     static_cast<double>(total)));
      results.put_u32(static_cast<uint32_t>(PvfsStatus::kOk));
      if (!store_.exists(oid)) {
        for (uint32_t i = 0; i < n; ++i) results.put_payload(rpc::Payload{});
        co_return;
      }
      // List I/O's disk-side win: one covering span, one disk pass, sliced
      // per region — instead of one seek-and-read per region.
      const int64_t start = node_.simulation().now();
      const uint64_t disk0 = store_.stats().disk_time_ns;
      rpc::Payload span = co_await store_.read(oid, lo, hi - lo);
      uint64_t out_bytes = 0;
      for (const auto& [off, len] : regions) {
        const uint64_t skip = off - lo;
        const uint64_t avail =
            span.size() > skip ? std::min(len, span.size() - skip) : 0;
        out_bytes += avail;
        results.put_payload(span.slice(skip, avail));
      }
      {
        const auto disk_ns =
            static_cast<int64_t>(store_.stats().disk_time_ns - disk0);
        trace_store_op(ctx, "readv", start, 0, out_bytes, disk_ns);
        account_store_op(ctx, out_bytes, 0, disk_ns);
      }
      m_bytes_read_->add(out_bytes);
      co_return;
    }
    case IoProc::kWritev: {
      const uint64_t oid = args.get_u64();
      const uint32_t n = args.get_u32();
      if (n == 0 || n > (1u << 20)) {
        results.put_u32(static_cast<uint32_t>(PvfsStatus::kInval));
        co_return;
      }
      std::vector<std::pair<uint64_t, uint64_t>> regions;
      regions.reserve(n);
      uint64_t total = 0;
      for (uint32_t i = 0; i < n; ++i) {
        const uint64_t off = args.get_u64();
        const uint64_t len = args.get_u64();
        regions.emplace_back(off, len);
        total += len;
      }
      rpc::Payload data = args.get_payload();
      if (data.size() != total) {
        results.put_u32(static_cast<uint32_t>(PvfsStatus::kInval));
        co_return;
      }
      co_await node_.cpu().execute(
          config_.cpu_per_request +
          static_cast<sim::Duration>(config_.cpu_ns_per_byte *
                                     static_cast<double>(total)));
      m_bytes_written_->add(total);
      const int64_t start = node_.simulation().now();
      const uint64_t disk0 = store_.stats().disk_time_ns;
      uint64_t pos = 0;
      for (const auto& [off, len] : regions) {
        co_await store_.write(oid, off, data.slice(pos, len),
                              /*stable=*/false);
        pos += len;
      }
      {
        const auto disk_ns =
            static_cast<int64_t>(store_.stats().disk_time_ns - disk0);
        trace_store_op(ctx, "writev", start, total, 0, disk_ns);
        account_store_op(ctx, 0, total, disk_ns);
      }
      results.put_u32(static_cast<uint32_t>(PvfsStatus::kOk));
      // One verifier covers every region: they live or die with this
      // daemon incarnation together (see protocol.hpp).
      results.put_u64(boot_verifier_);
      co_return;
    }
    case IoProc::kCommit: {
      const uint64_t oid = args.get_u64();
      m_commits_->inc();
      co_await node_.cpu().execute(config_.cpu_per_request);
      const int64_t start = node_.simulation().now();
      const uint64_t disk0 = store_.stats().disk_time_ns;
      co_await store_.commit(oid);
      // The daemon's bstream fdatasync touches the disk even when the
      // object is clean (journal/metadata update).
      const int64_t j0 = node_.simulation().now();
      co_await node_.disk().io(kJournalPosition, 4096);
      {
        const int64_t disk_ns =
            static_cast<int64_t>(store_.stats().disk_time_ns - disk0) +
            (node_.simulation().now() - j0);
        trace_store_op(ctx, "commit", start, 0, 0, disk_ns);
        account_store_op(ctx, 0, 0, disk_ns);
      }
      results.put_u32(static_cast<uint32_t>(PvfsStatus::kOk));
      // Equal to the verifier of every kWrite it covers iff no restart
      // intervened (mirrors NFS COMMIT semantics).
      results.put_u64(boot_verifier_);
      co_return;
    }
    case IoProc::kGetSize: {
      const uint64_t oid = args.get_u64();
      co_await node_.cpu().execute(config_.cpu_per_request);
      results.put_u32(static_cast<uint32_t>(PvfsStatus::kOk));
      results.put_u64(store_.exists(oid) ? store_.size(oid) : 0);
      co_return;
    }
    case IoProc::kRemove: {
      const uint64_t oid = args.get_u64();
      co_await node_.cpu().execute(config_.cpu_per_request);
      if (store_.exists(oid)) store_.remove(oid);
      results.put_u32(static_cast<uint32_t>(PvfsStatus::kOk));
      co_return;
    }
    case IoProc::kCreate: {
      const uint64_t oid = args.get_u64();
      co_await node_.cpu().execute(config_.cpu_per_request);
      if (!store_.exists(oid)) store_.create(oid);
      // Creating a dfile is a synchronous metadata update on the daemon.
      co_await node_.disk().io(kJournalPosition, 4096);
      results.put_u32(static_cast<uint32_t>(PvfsStatus::kOk));
      co_return;
    }
    case IoProc::kTruncate: {
      const uint64_t oid = args.get_u64();
      const uint64_t size = args.get_u64();
      co_await node_.cpu().execute(config_.cpu_per_request);
      if (!store_.exists(oid)) store_.create(oid);
      store_.truncate(oid, size);
      results.put_u32(static_cast<uint32_t>(PvfsStatus::kOk));
      co_return;
    }
  }
  results.put_u32(static_cast<uint32_t>(PvfsStatus::kInval));
}

}  // namespace dpnfs::pvfs
