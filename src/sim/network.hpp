// Cluster topology: nodes joined by a non-blocking switch.
//
// Matches the paper's testbed: sixteen nodes on gigabit Ethernet through a
// switch whose backplane never bottlenecks — all contention happens at the
// endpoints' NICs.  `Network::transfer` moves bytes between two nodes,
// occupying the sender's TX and the receiver's RX chunk-by-chunk with a
// bounded in-flight window (a coarse stand-in for TCP flow control).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/resources.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace dpnfs::sim {

class FaultInjector;

struct NodeParams {
  std::string name;
  NicParams nic;
  std::optional<DiskParams> disk;  ///< diskless nodes omit this
  CpuParams cpu;
};

/// One machine: NIC + optional disk + CPU.
class Node {
 public:
  Node(Simulation& sim, uint32_t id, const NodeParams& params)
      : sim_(sim),
        id_(id),
        name_(params.name),
        nic_(sim, params.nic),
        cpu_(sim, params.cpu) {
    if (params.disk) disk_.emplace(sim, *params.disk);
  }

  uint32_t id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  Nic& nic() noexcept { return nic_; }
  Cpu& cpu() noexcept { return cpu_; }
  bool has_disk() const noexcept { return disk_.has_value(); }
  Disk& disk() {
    if (!disk_) throw std::logic_error("node " + name_ + " has no disk");
    return *disk_;
  }
  Simulation& simulation() noexcept { return sim_; }

  /// True while a scripted disk fault is active on this node.
  bool disk_failed() const noexcept;

 private:
  friend class Network;

  Simulation& sim_;
  uint32_t id_;
  std::string name_;
  Nic nic_;
  std::optional<Disk> disk_;
  Cpu cpu_;
  const FaultInjector* faults_ = nullptr;
};

struct NetworkParams {
  uint64_t chunk_bytes = 256 * 1024;   ///< bandwidth-sharing granularity
  uint32_t flow_window_chunks = 4;     ///< max in-flight chunks per flow
  double loopback_bytes_per_sec = 3e9; ///< same-node "transfer" (memcpy-ish)
  /// Hot-path shortcuts (disabled by the legacy-core bench mode):
  /// single-chunk messages run TX→RX inline in the caller's coroutine (no
  /// window semaphore, no spawned receive leg), and a multi-chunk flow that
  /// has its TX link to itself batches up to a window's worth of chunks per
  /// TX hold.  Neither changes the bytes or busy time charged to any NIC.
  bool fast_path = true;
};

/// The switched network connecting all nodes.
class Network {
 public:
  explicit Network(Simulation& sim, NetworkParams params = {})
      : sim_(sim), params_(params) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Node& add_node(const NodeParams& params) {
    nodes_.push_back(std::make_unique<Node>(
        sim_, static_cast<uint32_t>(nodes_.size()), params));
    nodes_.back()->faults_ = faults_;
    return *nodes_.back();
  }

  Node& node(uint32_t id) { return *nodes_.at(id); }
  size_t node_count() const noexcept { return nodes_.size(); }
  Simulation& simulation() noexcept { return sim_; }
  const NetworkParams& params() const noexcept { return params_; }

  /// Attaches a fault injector.  Existing and future nodes see it (disk
  /// faults); `transfer` consults it for crashes, drops, and delays.  Pass
  /// nullptr to detach.  The injector must outlive the network.
  void set_fault_injector(FaultInjector* faults);
  FaultInjector* faults() const noexcept { return faults_; }

  /// Per-transfer measurements, filled when the caller passes a stats sink
  /// to `transfer`.  Distinguishes "queued behind my own NIC" (other flows
  /// hold TX) from time genuinely on the wire — the trace layer attributes
  /// the former to the sender's queue, not the network.
  struct TransferStats {
    Duration tx_queue_wait = 0;  ///< waiting for the sender's TX resource
  };

  /// Moves `bytes` from `src` to `dst`; completes when the last byte has
  /// been received (true) or the message was lost to a scripted fault —
  /// crashed endpoint or link drop — after paying the send-side cost
  /// (false).  Same-node transfers bypass the NICs.
  Task<bool> transfer(Node& src, Node& dst, uint64_t bytes,
                      TransferStats* stats = nullptr);

 private:
  Task<void> rx_leg(Nic& dst, uint64_t chunk, Semaphore& window,
                    uint32_t window_permits);

  Simulation& sim_;
  NetworkParams params_;
  std::vector<std::unique_ptr<Node>> nodes_;
  FaultInjector* faults_ = nullptr;
};

}  // namespace dpnfs::sim
