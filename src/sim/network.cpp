#include "sim/network.hpp"

#include <algorithm>

namespace dpnfs::sim {

Task<void> Network::transfer(Node& src, Node& dst, uint64_t bytes) {
  if (&src == &dst) {
    // Local delivery: no NIC involvement, just memory-bandwidth cost.
    co_await sim_.delay(duration_for_bytes(bytes, params_.loopback_bytes_per_sec));
    co_return;
  }

  Nic& s = src.nic();
  Nic& d = dst.nic();
  s.account_tx(bytes);
  d.account_rx(bytes);
  co_await sim_.delay(s.params().latency);

  // The window keeps at most `flow_window_chunks` chunks between the two
  // NICs, so a fast sender cannot run arbitrarily far ahead of a congested
  // receiver (coarse TCP flow control).
  Semaphore window(sim_, params_.flow_window_chunks);
  WaitGroup received(sim_);

  uint64_t remaining = std::max<uint64_t>(bytes, 1);  // header-only msgs move >=1 byte
  while (remaining > 0) {
    const uint64_t chunk = std::min<uint64_t>(params_.chunk_bytes, remaining);
    remaining -= chunk;

    co_await window.acquire();
    co_await s.tx().acquire();
    co_await sim_.delay(duration_for_bytes(chunk, s.params().bytes_per_sec));
    s.tx().release();

    // Receive legs queue FIFO on the destination NIC, overlapping with the
    // transmission of subsequent chunks.
    received.spawn(rx_leg(d, chunk, window));
  }
  co_await received.wait();
}

Task<void> Network::rx_leg(Nic& dst, uint64_t chunk, Semaphore& window) {
  co_await dst.rx().acquire();
  co_await sim_.delay(duration_for_bytes(chunk, dst.params().bytes_per_sec));
  dst.rx().release();
  window.release();
}

}  // namespace dpnfs::sim
