#include "sim/network.hpp"

#include <algorithm>

#include "sim/fault.hpp"

namespace dpnfs::sim {

bool Node::disk_failed() const noexcept {
  return faults_ != nullptr && faults_->disk_failed(id_, sim_.now());
}

void Network::set_fault_injector(FaultInjector* faults) {
  faults_ = faults;
  for (auto& n : nodes_) n->faults_ = faults;
}

Task<bool> Network::transfer(Node& src, Node& dst, uint64_t bytes,
                             TransferStats* stats) {
  if (&src == &dst) {
    // Local delivery: no NIC involvement, just memory-bandwidth cost.
    co_await sim_.delay(duration_for_bytes(bytes, params_.loopback_bytes_per_sec));
    // A crashed node cannot deliver even to itself.
    co_return faults_ == nullptr || !faults_->node_down(src.id(), sim_.now());
  }

  // A crashed sender emits nothing; a message to a crashed receiver is paid
  // for by the sender and then lost at the dead NIC.
  if (faults_ != nullptr && faults_->node_down(src.id(), sim_.now())) {
    co_return false;
  }
  LinkVerdict verdict;
  if (faults_ != nullptr) {
    verdict = faults_->on_message(src.id(), dst.id(), sim_.now());
  }

  Nic& s = src.nic();
  Nic& d = dst.nic();
  s.account_tx(bytes);
  if (!verdict.drop) d.account_rx(bytes);
  co_await sim_.delay(s.params().latency + verdict.extra_delay);

  if (verdict.drop) {
    // Lost in the switch: occupy the sender's TX for the full payload (the
    // bytes really left the host), deliver nothing.
    uint64_t remaining = std::max<uint64_t>(bytes, 1);
    while (remaining > 0) {
      const uint64_t chunk = std::min<uint64_t>(params_.chunk_bytes, remaining);
      remaining -= chunk;
      const Time queued_at = sim_.now();
      co_await s.tx().acquire();
      if (stats != nullptr) stats->tx_queue_wait += sim_.now() - queued_at;
      const Duration tx_time =
          duration_for_bytes(chunk, s.params().bytes_per_sec);
      s.account_tx_busy(tx_time);
      co_await sim_.delay(tx_time);
      s.tx().release();
    }
    co_return false;
  }

  uint64_t remaining = std::max<uint64_t>(bytes, 1);  // header-only msgs move >=1 byte

  if (params_.fast_path && remaining <= params_.chunk_bytes) {
    // Single-chunk message (the common case at scale: headers and small
    // I/O).  TX then RX inline in this coroutine — no window semaphore, no
    // spawned receive leg, no wait group.  Costs charged are identical to
    // the chunked path; only the bookkeeping is lighter.
    const Time queued_at = sim_.now();
    co_await s.tx().acquire();
    if (stats != nullptr) stats->tx_queue_wait += sim_.now() - queued_at;
    const Duration tx_time =
        duration_for_bytes(remaining, s.params().bytes_per_sec);
    s.account_tx_busy(tx_time);
    co_await sim_.delay(tx_time);
    s.tx().release();

    co_await d.rx().acquire();
    const Duration rx_time =
        duration_for_bytes(remaining, d.params().bytes_per_sec);
    d.account_rx_busy(rx_time);
    co_await sim_.delay(rx_time);
    d.rx().release();

    co_return faults_ == nullptr || !faults_->node_down(dst.id(), sim_.now());
  }

  // The window keeps at most `flow_window_chunks` chunks between the two
  // NICs, so a fast sender cannot run arbitrarily far ahead of a congested
  // receiver (coarse TCP flow control).
  Semaphore window(sim_, params_.flow_window_chunks);
  WaitGroup received(sim_);

  s.begin_tx_flow();
  while (remaining > 0) {
    uint64_t chunk = std::min<uint64_t>(params_.chunk_bytes, remaining);
    remaining -= chunk;

    co_await window.acquire();
    uint32_t permits = 1;
    if (params_.fast_path && s.active_tx_flows() == 1) {
      // Sole flow on this TX link: batch additional chunks into this hold
      // to amortize per-chunk scheduling.  The decision consults only the
      // link-local flow census — O(active flows on the affected link).
      // Batches take at most half the window so the next TX hold still
      // overlaps this batch's receive leg (pipelining is what makes a
      // window-flow hit line rate).  Under sharing, chunk granularity
      // preserves fair interleaving.
      const uint32_t batch_cap = std::max(1u, params_.flow_window_chunks / 2);
      while (remaining > 0 && permits < batch_cap && window.try_acquire()) {
        const uint64_t extra = std::min<uint64_t>(params_.chunk_bytes,
                                                  remaining);
        chunk += extra;
        remaining -= extra;
        ++permits;
      }
    }
    const Time queued_at = sim_.now();
    co_await s.tx().acquire();
    if (stats != nullptr) stats->tx_queue_wait += sim_.now() - queued_at;
    const Duration tx_time =
        duration_for_bytes(chunk, s.params().bytes_per_sec);
    s.account_tx_busy(tx_time);
    co_await sim_.delay(tx_time);
    s.tx().release();

    // Receive legs queue FIFO on the destination NIC, overlapping with the
    // transmission of subsequent chunks.
    received.spawn(rx_leg(d, chunk, window, permits));
  }
  co_await received.wait();
  s.end_tx_flow();

  // The receiver crashing while bytes were in flight loses the message.
  co_return faults_ == nullptr || !faults_->node_down(dst.id(), sim_.now());
}

Task<void> Network::rx_leg(Nic& dst, uint64_t chunk, Semaphore& window,
                           uint32_t window_permits) {
  co_await dst.rx().acquire();
  const Duration rx_time =
      duration_for_bytes(chunk, dst.params().bytes_per_sec);
  dst.account_rx_busy(rx_time);
  co_await sim_.delay(rx_time);
  dst.rx().release();
  for (uint32_t i = 0; i < window_permits; ++i) window.release();
}

}  // namespace dpnfs::sim
