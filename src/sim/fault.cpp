#include "sim/fault.hpp"

namespace dpnfs::sim {

namespace {

bool in_window(Time at, Time until, Time now) noexcept {
  return now >= at && now < until;
}

}  // namespace

bool FaultInjector::node_down(uint32_t node, Time now) const noexcept {
  for (const auto& c : plan_.node_crashes) {
    if (c.node == node && in_window(c.at, c.revive, now)) return true;
  }
  return false;
}

bool FaultInjector::service_down(uint32_t node, uint16_t port,
                                 Time now) const noexcept {
  if (node_down(node, now)) return true;
  for (const auto& c : plan_.service_crashes) {
    if (c.node == node && c.port == port && in_window(c.at, c.revive, now)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::disk_failed(uint32_t node, Time now) const noexcept {
  for (const auto& d : plan_.disk_faults) {
    if (d.node == node && in_window(d.at, d.until, now)) return true;
  }
  return false;
}

uint64_t FaultInjector::boot_instance(uint32_t node, uint16_t port,
                                      Time now) const noexcept {
  uint64_t instance = 1;
  for (const auto& c : plan_.node_crashes) {
    if (c.node == node && c.at <= now) ++instance;
  }
  for (const auto& c : plan_.service_crashes) {
    if (c.node == node && c.port == port && c.at <= now) ++instance;
  }
  return instance;
}

uint64_t FaultInjector::boot_verifier(uint32_t node, uint16_t port,
                                      Time now) const noexcept {
  // SplitMix64 finalizer over the incarnation identity.  Deterministic for
  // a fixed plan; distinct across instances with overwhelming probability.
  uint64_t x = plan_.seed;
  x ^= (static_cast<uint64_t>(node) << 32) | port;
  x += 0x9E3779B97F4A7C15ull * (boot_instance(node, port, now) + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

LinkVerdict FaultInjector::on_message(uint32_t src, uint32_t dst, Time now) {
  LinkVerdict verdict;
  for (size_t i = 0; i < plan_.link_faults.size(); ++i) {
    const auto& rule = plan_.link_faults[i];
    if (rule.src && *rule.src != src) continue;
    if (rule.dst && *rule.dst != dst) continue;
    if (!in_window(rule.from, rule.until, now)) continue;

    if (drops_used_[i] < rule.drop_first) {
      ++drops_used_[i];
      verdict.drop = true;
    } else if (rule.drop_probability > 0.0 &&
               rng_.chance(rule.drop_probability)) {
      verdict.drop = true;
    }
    verdict.extra_delay += rule.extra_delay;
  }
  if (verdict.drop) {
    ++dropped_;
    verdict.extra_delay = 0;
  } else if (verdict.extra_delay > 0) {
    ++delayed_;
  }
  return verdict;
}

}  // namespace dpnfs::sim
