// Discrete-event simulation core.
//
// `Simulation` owns the virtual clock and the event queue.  All coroutine
// wake-ups flow through the queue — including zero-delay ones — which keeps
// execution order deterministic (time, then insertion order) and the native
// call stack shallow.
//
// The queue is a calendar queue by default (see event_queue.hpp); the
// pre-overhaul binary heap is available as `QueueKind::kBinaryHeap` so the
// scale bench can measure the old core and tests can assert the two modes
// realize the same total order.
#pragma once

#include <coroutine>
#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace dpnfs::sim {

class Simulation {
 public:
  explicit Simulation(QueueKind queue_kind = QueueKind::kCalendar)
      : queue_(queue_kind) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time.
  Time now() const noexcept { return now_; }

  /// Schedules `h` to resume after `delay` (>= 0).
  void schedule(Duration delay, std::coroutine_handle<> h) {
    schedule_at(now_ + (delay > 0 ? delay : 0), h);
  }

  /// Schedules `h` to resume at absolute time `t` (clamped to >= now).
  void schedule_at(Time t, std::coroutine_handle<> h) {
    if (t < now_) t = now_;
    queue_.push(t, next_seq_++, h);
  }

  /// Awaitable: suspends the caller for `delay` simulated time.
  auto delay(Duration d) {
    struct Awaiter {
      Simulation& sim;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim.schedule(d, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable: yields the processor, resuming after already-queued events
  /// at the current time.
  auto yield() { return delay(0); }

  /// Starts a detached task.  The task self-destroys on completion; an
  /// escaping exception terminates the program.
  void spawn(Task<void> task) {
    auto h = task.release();
    h.promise().detached = true;
    schedule(0, h);
  }

  /// Runs until the event queue is empty.  Returns the number of events
  /// processed.
  uint64_t run();

  /// Runs until the queue is empty or the clock would pass `deadline`.
  /// Returns true if the queue drained before the deadline.
  bool run_until(Time deadline);

  uint64_t events_processed() const noexcept { return events_processed_; }

  QueueKind queue_kind() const noexcept { return queue_.kind(); }

  /// Pending events.
  size_t queue_depth() const noexcept { return queue_.size(); }

  /// Storage retained by the event queue (bounded after bursts by the
  /// queue's shrink hysteresis).
  size_t queue_memory_bytes() const { return queue_.memory_bytes(); }

  /// Same-tick / wheel / overflow push classification (calendar mode).
  const EventQueue::PushMix& queue_push_mix() const noexcept {
    return queue_.push_mix();
  }

 private:
  EventQueue queue_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
};

}  // namespace dpnfs::sim
