// Physical resource models: NIC, disk, CPU.
//
// These are deliberately simple queueing models — the reproduction needs the
// *bottleneck structure* of the paper's testbed (which resource saturates
// under which architecture), not cycle accuracy.  See DESIGN.md §5.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace dpnfs::sim {

/// Full-duplex network interface.  Each direction is an exclusive resource
/// occupied chunk-by-chunk, so concurrent flows share bandwidth fairly at
/// chunk granularity.
struct NicParams {
  double bytes_per_sec = 117e6;  ///< effective GbE w/ jumbo frames
  Duration latency = us(60);     ///< one-way propagation + stack latency
};

class Nic {
 public:
  Nic(Simulation& sim, const NicParams& params)
      : params_(params), tx_(sim, 1), rx_(sim, 1) {}

  const NicParams& params() const noexcept { return params_; }
  Semaphore& tx() noexcept { return tx_; }
  Semaphore& rx() noexcept { return rx_; }

  void account_tx(uint64_t bytes) noexcept { tx_bytes_ += bytes; }
  void account_rx(uint64_t bytes) noexcept { rx_bytes_ += bytes; }
  uint64_t tx_bytes() const noexcept { return tx_bytes_; }
  uint64_t rx_bytes() const noexcept { return rx_bytes_; }

  // Busy time accumulators: the simulated time each direction spent actually
  // transmitting (not queued).  Utilization over a window is the busy-time
  // delta divided by the window — sampled by the Deployment time series.
  void account_tx_busy(Duration d) noexcept { tx_busy_ += d; }
  void account_rx_busy(Duration d) noexcept { rx_busy_ += d; }
  Duration tx_busy() const noexcept { return tx_busy_; }
  Duration rx_busy() const noexcept { return rx_busy_; }

  // Link-local flow census: transfers currently using this NIC's TX.  Kept
  // incrementally (O(1) per transfer), so bandwidth-sharing decisions — e.g.
  // chunk batching only when a flow has the link to itself — consult just
  // the affected link, never a global flow table.
  void begin_tx_flow() noexcept { ++active_tx_flows_; }
  void end_tx_flow() noexcept { --active_tx_flows_; }
  uint32_t active_tx_flows() const noexcept { return active_tx_flows_; }

 private:
  NicParams params_;
  Semaphore tx_;
  Semaphore rx_;
  uint64_t tx_bytes_ = 0;
  uint64_t rx_bytes_ = 0;
  Duration tx_busy_ = 0;
  Duration rx_busy_ = 0;
  uint32_t active_tx_flows_ = 0;
};

/// Single-arm disk with sequential-transfer bandwidth, a positioning cost for
/// non-contiguous access, and a fixed per-request overhead.
struct DiskParams {
  double bytes_per_sec = 44e6;       ///< sequential media rate
  Duration positioning = ms(8);      ///< seek + rotational on discontiguity
  Duration per_request = us(150);    ///< controller/command overhead
};

class Disk {
 public:
  Disk(Simulation& sim, const DiskParams& params)
      : sim_(sim), params_(params), arm_(sim, 1) {}

  const DiskParams& params() const noexcept { return params_; }

  /// Performs one disk I/O (reads and writes cost the same in this model).
  Task<void> io(uint64_t pos, uint64_t bytes) {
    co_await arm_.acquire();
    Duration t = params_.per_request +
                 duration_for_bytes(bytes, params_.bytes_per_sec);
    if (pos != head_) t += params_.positioning;
    head_ = pos + bytes;
    busy_ += t;
    co_await sim_.delay(t);
    arm_.release();
  }

  uint64_t head_position() const noexcept { return head_; }
  /// Time the arm spent servicing requests (excludes queue wait); the
  /// utilization sampler divides deltas of this by the sample window.
  Duration busy() const noexcept { return busy_; }

 private:
  Simulation& sim_;
  DiskParams params_;
  Semaphore arm_;
  uint64_t head_ = 0;
  Duration busy_ = 0;
};

/// Multi-core CPU.  Work items occupy one core for their duration.
struct CpuParams {
  uint32_t cores = 2;
};

class Cpu {
 public:
  Cpu(Simulation& sim, const CpuParams& params)
      : sim_(sim), cores_(sim, params.cores) {}

  /// Executes `work` of CPU time on one core.
  Task<void> execute(Duration work) {
    if (work <= 0) co_return;
    co_await cores_.acquire();
    co_await sim_.delay(work);
    cores_.release();
  }

 private:
  Simulation& sim_;
  Semaphore cores_;
};

}  // namespace dpnfs::sim
