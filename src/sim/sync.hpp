// Synchronization primitives for simulation coroutines.
//
// All primitives wake waiters through the simulation event queue (never by
// direct resume), preserving deterministic FIFO ordering and bounding native
// stack depth.  They are intentionally single-threaded: the whole simulation
// runs on one OS thread.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "sim/simulation.hpp"

namespace dpnfs::sim {

/// Counting semaphore with FIFO waiters.  Models exclusive or limited
/// resources (disk arms, CPU cores, server worker threads, buffer pools).
class Semaphore {
 public:
  Semaphore(Simulation& sim, uint64_t permits) : sim_(sim), permits_(permits) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  uint64_t available() const noexcept { return permits_; }
  size_t waiters() const noexcept { return waiters_.size(); }

  /// Awaitable single-permit acquire.
  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() {
        if (s.permits_ > 0) {
          --s.permits_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Non-suspending acquire: takes a permit iff one is available right now.
  bool try_acquire() noexcept {
    if (permits_ == 0) return false;
    --permits_;
    return true;
  }

  /// Releases one permit; hands it directly to the oldest waiter if any.
  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule(0, h);  // permit transferred, not returned to the pool
    } else {
      ++permits_;
    }
  }

  /// RAII permit: releases on destruction.
  class ScopedPermit {
   public:
    ScopedPermit() = default;
    explicit ScopedPermit(Semaphore* s) : sem_(s) {}
    ScopedPermit(ScopedPermit&& o) noexcept : sem_(std::exchange(o.sem_, nullptr)) {}
    ScopedPermit& operator=(ScopedPermit&& o) noexcept {
      if (this != &o) {
        reset();
        sem_ = std::exchange(o.sem_, nullptr);
      }
      return *this;
    }
    ScopedPermit(const ScopedPermit&) = delete;
    ScopedPermit& operator=(const ScopedPermit&) = delete;
    ~ScopedPermit() { reset(); }

    void reset() {
      if (sem_ != nullptr) std::exchange(sem_, nullptr)->release();
    }

   private:
    Semaphore* sem_ = nullptr;
  };

  /// Awaitable acquire returning an RAII permit.
  Task<ScopedPermit> scoped() {
    co_await acquire();
    co_return ScopedPermit{this};
  }

  Simulation& simulation() noexcept { return sim_; }

 private:
  Simulation& sim_;
  uint64_t permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// One-shot latch: `wait()` suspends until `set()`; after that, waits
/// complete immediately.
class Latch {
 public:
  explicit Latch(Simulation& sim) : sim_(sim) {}

  bool is_set() const noexcept { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_.schedule(0, h);
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Latch& l;
      bool await_ready() const noexcept { return l.set_; }
      void await_suspend(std::coroutine_handle<> h) { l.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulation& sim_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Joins a dynamic set of spawned tasks (Go-style wait group).
class WaitGroup {
 public:
  explicit WaitGroup(Simulation& sim) : sim_(sim) {}

  void add(uint64_t n = 1) { count_ += n; }

  void done() {
    assert(count_ > 0);
    if (--count_ == 0) {
      for (auto h : waiters_) sim_.schedule(0, h);
      waiters_.clear();
    }
  }

  uint64_t pending() const noexcept { return count_; }

  auto wait() {
    struct Awaiter {
      WaitGroup& wg;
      bool await_ready() const noexcept { return wg.count_ == 0; }
      void await_suspend(std::coroutine_handle<> h) { wg.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Spawns `task` detached and marks this group done when it finishes.
  void spawn(Task<void> task) {
    add(1);
    sim_.spawn(run_and_done(std::move(task)));
  }

 private:
  Task<void> run_and_done(Task<void> task) {
    co_await task;
    done();
  }

  Simulation& sim_;
  uint64_t count_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Cyclic barrier: `parties` tasks rendezvous; the last arrival releases
/// everyone and the barrier resets for reuse (MPI_Barrier-style).
class Barrier {
 public:
  Barrier(Simulation& sim, uint64_t parties) : sim_(sim), parties_(parties) {}

  auto arrive_and_wait() {
    struct Awaiter {
      Barrier& b;
      bool await_ready() {
        if (b.arrived_ + 1 == b.parties_) {
          b.arrived_ = 0;
          for (auto h : b.waiters_) b.sim_.schedule(0, h);
          b.waiters_.clear();
          return true;  // last arrival passes through immediately
        }
        ++b.arrived_;
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { b.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulation& sim_;
  uint64_t parties_;
  uint64_t arrived_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Single-value rendezvous: exactly one `set`, at most one concurrent
/// `take`.  Used for RPC reply delivery keyed by xid.
template <typename T>
class Oneshot {
 public:
  explicit Oneshot(Simulation& sim) : sim_(sim) {}
  Oneshot(const Oneshot&) = delete;
  Oneshot& operator=(const Oneshot&) = delete;

  void set(T value) {
    assert(!value_.has_value());
    value_.emplace(std::move(value));
    if (waiter_) sim_.schedule(0, std::exchange(waiter_, {}));
  }

  auto take() {
    struct Awaiter {
      Oneshot& o;
      bool await_ready() const noexcept { return o.value_.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        assert(!o.waiter_);
        o.waiter_ = h;
      }
      T await_resume() { return std::move(*o.value_); }
    };
    return Awaiter{*this};
  }

 private:
  Simulation& sim_;
  std::optional<T> value_;
  std::coroutine_handle<> waiter_;
};

/// FIFO message queue with optional capacity bound and close semantics.
/// `recv()` yields std::nullopt once the channel is closed and drained.
template <typename T>
class Channel {
 public:
  /// `capacity` == 0 means unbounded.
  explicit Channel(Simulation& sim, size_t capacity = 0)
      : sim_(sim), capacity_(capacity) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  size_t size() const noexcept { return items_.size(); }
  bool closed() const noexcept { return closed_; }

  /// Awaitable send; suspends while a bounded channel is full.
  /// Sending on a closed channel is a programming error.
  Task<void> send(T item) {
    assert(!closed_);
    while (capacity_ != 0 && items_.size() >= capacity_) {
      co_await suspend_on(send_waiters_);
      if (closed_) co_return;  // dropped: receiver went away
    }
    items_.push_back(std::move(item));
    wake_one(recv_waiters_);
  }

  /// Non-suspending send for unbounded channels (asserts unbounded).
  void push(T item) {
    assert(capacity_ == 0 && !closed_);
    items_.push_back(std::move(item));
    wake_one(recv_waiters_);
  }

  /// Awaitable receive; nullopt after close+drain.
  Task<std::optional<T>> recv() {
    while (items_.empty()) {
      if (closed_) co_return std::nullopt;
      co_await suspend_on(recv_waiters_);
    }
    T item = std::move(items_.front());
    items_.pop_front();
    wake_one(send_waiters_);
    co_return std::optional<T>(std::move(item));
  }

  void close() {
    closed_ = true;
    wake_all(recv_waiters_);
    wake_all(send_waiters_);
  }

 private:
  struct QueueAwaiter {
    std::deque<std::coroutine_handle<>>& q;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { q.push_back(h); }
    void await_resume() const noexcept {}
  };

  QueueAwaiter suspend_on(std::deque<std::coroutine_handle<>>& q) {
    return QueueAwaiter{q};
  }

  void wake_one(std::deque<std::coroutine_handle<>>& q) {
    if (!q.empty()) {
      sim_.schedule(0, q.front());
      q.pop_front();
    }
  }

  void wake_all(std::deque<std::coroutine_handle<>>& q) {
    for (auto h : q) sim_.schedule(0, h);
    q.clear();
  }

  Simulation& sim_;
  size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
  std::deque<std::coroutine_handle<>> recv_waiters_;
  std::deque<std::coroutine_handle<>> send_waiters_;
};

}  // namespace dpnfs::sim
