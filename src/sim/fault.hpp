// Deterministic fault injection for the simulated cluster.
//
// A `FaultPlan` is a declarative script of what goes wrong and when: whole
// nodes crash and revive, a single daemon (node, port) crashes while the
// rest of its node keeps serving, links drop or delay messages, disks fail.
// A `FaultInjector` executes one plan against the simulation clock; all
// probabilistic decisions come from its own SplitMix64 stream, so a run is
// bit-reproducible for a fixed plan seed.
//
// The injector is consulted by `Network::transfer` (message drops/delays,
// node crashes), by `RpcFabric`/`RpcServer` (service crashes), and by
// `lfs::ObjectStore` via `Node::disk_failed` (disk faults).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace dpnfs::sim {

/// "Never": a revive/until time beyond any simulated run.
inline constexpr Time kNever = std::numeric_limits<Time>::max();

/// Declarative fault script.  Attach one to `core::ClusterConfig::faults`
/// (or hand it to `Network::set_fault_injector` directly) and the whole
/// stack — network, RPC fabric, object stores — obeys it.
struct FaultPlan {
  /// Seed for the injector's private RNG stream (drop-probability rolls).
  uint64_t seed = 0xFA17;

  /// Whole-machine crash: NIC unreachable in both directions during
  /// [at, revive).  In-flight service work on the node is lost (replies
  /// can no longer leave the node).
  struct NodeCrash {
    uint32_t node = 0;
    Time at = 0;
    Time revive = kNever;
  };

  /// Single-daemon crash: the RPC server bound at (node, port) is down
  /// during [at, revive) while every other port on the node keeps serving.
  /// This is how "the NFS data server on storage3 dies" is scripted without
  /// also killing the parallel-FS storage daemon that shares the node.
  struct ServiceCrash {
    uint32_t node = 0;
    uint16_t port = 0;
    Time at = 0;
    Time revive = kNever;
  };

  /// Link fault between (src → dst), active during [from, until).  A nullopt
  /// endpoint matches any node.  `drop_first` drops that many matching
  /// messages deterministically (by arrival order); `drop_probability` then
  /// applies to the rest via the injector's RNG.  `extra_delay` is added to
  /// every matching message that is not dropped.
  struct LinkFault {
    std::optional<uint32_t> src;
    std::optional<uint32_t> dst;
    Time from = 0;
    Time until = kNever;
    uint32_t drop_first = 0;
    double drop_probability = 0.0;
    Duration extra_delay = 0;
  };

  /// Disk failure on `node` during [at, until): every media access throws.
  struct DiskFault {
    uint32_t node = 0;
    Time at = 0;
    Time until = kNever;
  };

  std::vector<NodeCrash> node_crashes;
  std::vector<ServiceCrash> service_crashes;
  std::vector<LinkFault> link_faults;
  std::vector<DiskFault> disk_faults;

  bool empty() const noexcept {
    return node_crashes.empty() && service_crashes.empty() &&
           link_faults.empty() && disk_faults.empty();
  }

  // Fluent builders so a test can script a scenario in one expression.
  FaultPlan& crash_node(uint32_t node, Time at, Time revive = kNever) {
    node_crashes.push_back({node, at, revive});
    return *this;
  }
  FaultPlan& crash_service(uint32_t node, uint16_t port, Time at,
                           Time revive = kNever) {
    service_crashes.push_back({node, port, at, revive});
    return *this;
  }
  FaultPlan& add_link_fault(LinkFault fault) {
    link_faults.push_back(fault);
    return *this;
  }
  FaultPlan& fail_disk(uint32_t node, Time at, Time until = kNever) {
    disk_faults.push_back({node, at, until});
    return *this;
  }
};

/// Verdict for one message crossing the network.
struct LinkVerdict {
  bool drop = false;
  Duration extra_delay = 0;
};

/// Thrown by the storage layer when a scripted disk fault is active.
class DiskFailedError : public std::runtime_error {
 public:
  explicit DiskFailedError(const std::string& node)
      : std::runtime_error("disk failed on " + node) {}
};

/// Executes one `FaultPlan`.  Time-window queries are pure; `on_message`
/// consumes per-rule drop budgets and RNG state and therefore mutates.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(std::move(plan)),
        rng_(plan_.seed),
        drops_used_(plan_.link_faults.size(), 0) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const noexcept { return plan_; }

  bool node_down(uint32_t node, Time now) const noexcept;
  bool service_down(uint32_t node, uint16_t port, Time now) const noexcept;
  bool disk_failed(uint32_t node, Time now) const noexcept;

  /// Boot instance of the service at (node, port): 1 plus the number of
  /// crash windows (whole-node or matching service) that have *started* by
  /// `now`.  Every crash, even one the service has already revived from,
  /// bumps the instance — a revived daemon is a different incarnation with
  /// none of its predecessor's volatile state.  Pure function of the plan,
  /// so all observers (RPC server, backend, store) agree on the incarnation
  /// at any timestamp.
  uint64_t boot_instance(uint32_t node, uint16_t port, Time now) const noexcept;

  /// 8-byte boot verifier for the service's current incarnation: a
  /// SplitMix64 mix of (plan seed, node, port, boot instance), never zero.
  /// Two incarnations of the same service always differ; the value is
  /// stable for the lifetime of one incarnation.
  uint64_t boot_verifier(uint32_t node, uint16_t port, Time now) const noexcept;

  /// Consulted once per message (request or reply) entering the switch.
  LinkVerdict on_message(uint32_t src, uint32_t dst, Time now);

  uint64_t messages_dropped() const noexcept { return dropped_; }
  uint64_t messages_delayed() const noexcept { return delayed_; }

 private:
  FaultPlan plan_;
  util::Rng rng_;
  std::vector<uint32_t> drops_used_;  // parallel to plan_.link_faults
  uint64_t dropped_ = 0;
  uint64_t delayed_ = 0;
};

}  // namespace dpnfs::sim
