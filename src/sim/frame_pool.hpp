// Size-classed free-list recycler for coroutine frames.
//
// Every `sim::Task<T>` coroutine frame is heap-allocated by the compiler
// through the promise's `operator new`.  A busy simulated RPC allocates
// dozens of short-lived frames (transfer legs, semaphore scopes, server
// dispatch), which at thousands of concurrent clients makes malloc/free the
// dominant cost of the run.  `FramePool` intercepts those allocations with
// per-size-class free lists so steady-state frame allocation is O(1) and
// touches memory that is already cache-warm.
//
// Frames are rounded up to 64-byte classes; anything larger than 8 KiB (or
// any allocation while the pool is disabled) falls through to ::operator
// new.  A one-byte header in front of the block records the class, so a
// block allocated while the pool was enabled is correctly recycled even if
// the pool has been disabled in between (and vice versa).
//
// The pool is process-global and can be switched off at runtime
// (`set_enabled(false)`) so `bench_scale` can measure the pre-overhaul
// allocation behavior honestly.  The simulation is single-threaded per
// `Simulation` instance; the free lists are thread_local for safety when
// tests run deployments on multiple threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace dpnfs::sim {

/// Frame-pool counters (thread-local).
struct FramePoolStats {
  uint64_t fresh = 0;   // allocations served by ::operator new
  uint64_t reused = 0;  // allocations served from a free list
};

class FramePool {
 public:
  static void* allocate(std::size_t n) {
    Shard& sh = shard();
    const std::size_t cls = size_class(n);
    if (sh.enabled && cls < kClasses) {
      auto& list = sh.lists[cls];
      if (!list.empty()) {
        void* p = list.back();
        list.pop_back();
        ++sh.stats.reused;
        return offset(p);
      }
    }
    ++sh.stats.fresh;
    // Headered block: remember the class (or kClasses for pass-through) so
    // deallocate recycles correctly regardless of the toggle's history.
    auto* raw = static_cast<unsigned char*>(
        ::operator new(kHeader + (cls < kClasses ? class_bytes(cls) : n)));
    raw[0] = static_cast<unsigned char>(sh.enabled && cls < kClasses
                                            ? cls
                                            : kClasses);
    return raw + kHeader;
  }

  static void deallocate(void* p, std::size_t /*n*/) noexcept {
    auto* raw = static_cast<unsigned char*>(p) - kHeader;
    const unsigned cls = raw[0];
    if (cls < kClasses) {
      auto& list = shard().lists[cls];
      if (list.size() < kMaxPerClass) {
        list.push_back(raw);
        return;
      }
    }
    ::operator delete(raw);
  }

  static bool enabled() noexcept { return shard().enabled; }
  static void set_enabled(bool on) noexcept { shard().enabled = on; }

  using Stats = FramePoolStats;
  static Stats stats() noexcept { return shard().stats; }
  static void reset_stats() noexcept { shard().stats = Stats{}; }

  /// Releases all cached blocks back to the system allocator.
  static void drain() noexcept {
    for (auto& list : shard().lists) {
      for (void* raw : list) ::operator delete(raw);
      list.clear();
      list.shrink_to_fit();
    }
  }

 private:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kClasses = 128;  // up to 8 KiB frames
  static constexpr std::size_t kMaxPerClass = 4096;
  // Header keeps the frame's 16-byte alignment (coroutine frames require at
  // most alignof(std::max_align_t) here).
  static constexpr std::size_t kHeader = alignof(std::max_align_t);

  static std::size_t size_class(std::size_t n) noexcept {
    return (n + kGranularity - 1) / kGranularity;
  }
  static std::size_t class_bytes(std::size_t cls) noexcept {
    return cls * kGranularity;
  }
  static void* offset(void* raw) noexcept {
    return static_cast<unsigned char*>(raw) + kHeader;
  }

  struct Shard {
    bool enabled = true;
    Stats stats;
    std::vector<void*> lists[kClasses];
  };

  // A constinit thread_local pointer avoids the per-access dynamic-init
  // guard a non-trivial thread_local would cost on every coroutine frame
  // allocation.  The shard leaks at thread exit by design — it lives for
  // the process.
  static Shard& shard() noexcept {
    if (shard_p_ == nullptr) shard_p_ = new Shard();
    return *shard_p_;
  }

  static inline constinit thread_local Shard* shard_p_ = nullptr;
};

}  // namespace dpnfs::sim
