// Simulated-time representation.
//
// The simulator counts integer nanoseconds.  Integer time makes event
// ordering exact and platform-independent; combined with a stable sequence
// tie-break in the event queue, every run is bit-reproducible.
#pragma once

#include <cmath>
#include <cstdint>

namespace dpnfs::sim {

/// Absolute simulated time in nanoseconds since simulation start.
using Time = int64_t;

/// Relative simulated time in nanoseconds.
using Duration = int64_t;

constexpr Duration ns(int64_t v) { return v; }
constexpr Duration us(int64_t v) { return v * 1'000; }
constexpr Duration ms(int64_t v) { return v * 1'000'000; }
constexpr Duration sec(int64_t v) { return v * 1'000'000'000; }

/// Converts a floating-point second count to a Duration (rounded to nearest).
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * 1e9 + 0.5);
}

/// Converts a Duration to floating-point seconds (for reporting only).
constexpr double to_seconds(Duration d) { return static_cast<double>(d) * 1e-9; }

/// Time to move `bytes` at `bytes_per_sec`, rounded up to >= 1 ns for any
/// nonzero payload so progress is always made.
constexpr Duration duration_for_bytes(uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0) return 0;
  const double t = static_cast<double>(bytes) / bytes_per_sec * 1e9;
  const auto d = static_cast<Duration>(t + 0.5);
  return d > 0 ? d : 1;
}

}  // namespace dpnfs::sim
