#include "sim/simulation.hpp"

namespace dpnfs::sim {

uint64_t Simulation::run() {
  const uint64_t start = events_processed_;
  while (!queue_.empty()) {
    Event ev = queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.handle.resume();
  }
  return events_processed_ - start;
}

bool Simulation::run_until(Time deadline) {
  while (!queue_.empty()) {
    if (queue_.next_time() > deadline) {
      now_ = deadline;
      return false;
    }
    Event ev = queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.handle.resume();
  }
  return true;
}

}  // namespace dpnfs::sim
