// Event queue for the discrete-event core.
//
// Two interchangeable implementations behind one interface, selected at
// construction time:
//
//  * kCalendar (default): a single-rotation calendar queue — a power-of-two
//    wheel of fixed-width time buckets plus an overflow heap for events past
//    the wheel horizon, plus a FIFO ring for events scheduled at the current
//    instant (the zero-delay wake-ups that dominate semaphore hand-offs and
//    channel pushes).  Push and pop are O(1) amortized at steady state
//    instead of O(log n) heap sifts over the whole pending set.
//
//  * kBinaryHeap: the classic binary min-heap this replaced.  Kept as a
//    runtime mode so `bench_scale` can measure the old core honestly and so
//    the ordering-equivalence tests can pit the two against each other.
//
// Both modes realize the exact same total order — (time, then insertion
// seq) — so a run is bit-identical regardless of the queue kind.  The
// calendar queue keeps same-tick FIFO because seq breaks every tie:
//  * events at the current instant go to the FIFO ring, where push order is
//    seq order (seq is globally monotonic);
//  * a wheel bucket is a (time, seq) min-heap, so draining it interleaves
//    correctly with mid-drain insertions into the same bucket;
//  * pop() takes the global (time, seq) minimum across ring, wheel, and
//    overflow, so an event parked in the wheel at time T always precedes a
//    zero-delay event scheduled later (with a higher seq) at the same T.
//
// Storage obeys a shrink hysteresis (the old heap held its burst-peak
// capacity for the whole run): rings and heap vectors release memory when
// occupancy falls below a quarter of a large capacity, and wheel buckets
// drop oversized allocations once drained.  `memory_bytes()` reports the
// retained footprint so tests can bound it.
#pragma once

#include <algorithm>
#include <bit>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace dpnfs::sim {

struct Event {
  Time time;
  uint64_t seq;
  std::coroutine_handle<> handle;
};

enum class QueueKind { kCalendar, kBinaryHeap };

namespace detail {

// Min-heap order on (time, seq): `a` sorts after `b`.
inline bool event_after(const Event& a, const Event& b) noexcept {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

// Fixed-policy FIFO ring with power-of-two capacity and shrink hysteresis.
class EventRing {
 public:
  bool empty() const noexcept { return count_ == 0; }
  size_t size() const noexcept { return count_; }

  const Event& front() const noexcept { return buf_[head_ & mask()]; }

  void push_back(const Event& e) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask()] = e;
    ++count_;
  }

  Event pop_front() {
    Event e = buf_[head_ & mask()];
    ++head_;
    --count_;
    // Hysteresis: only shed memory once a burst is well and truly over, and
    // never chase small capacities.
    if (buf_.size() > 1024 && count_ < buf_.size() / 8) rebuild(count_ * 4);
    return e;
  }

  size_t capacity_bytes() const noexcept {
    return buf_.capacity() * sizeof(Event);
  }

 private:
  size_t mask() const noexcept { return buf_.size() - 1; }

  void grow() { rebuild(buf_.empty() ? 64 : buf_.size() * 2); }

  void rebuild(size_t want) {
    size_t cap = std::bit_ceil(std::max<size_t>(want, 64));
    std::vector<Event> next(cap);
    for (size_t i = 0; i < count_; ++i) next[i] = buf_[(head_ + i) & mask()];
    buf_.swap(next);
    head_ = 0;
  }

  std::vector<Event> buf_;
  size_t head_ = 0;
  size_t count_ = 0;
};

// (time, seq) min-heap over a vector, with the same shrink hysteresis.
class EventHeap {
 public:
  bool empty() const noexcept { return v_.empty(); }
  size_t size() const noexcept { return v_.size(); }
  const Event& top() const noexcept { return v_.front(); }

  void push(const Event& e) {
    v_.push_back(e);
    std::push_heap(v_.begin(), v_.end(), event_after);
  }

  Event pop() {
    std::pop_heap(v_.begin(), v_.end(), event_after);
    Event e = v_.back();
    v_.pop_back();
    if (v_.capacity() > 4096 && v_.size() < v_.capacity() / 4) {
      std::vector<Event> next;
      next.reserve(std::max<size_t>(64, v_.size() * 2));
      next.assign(v_.begin(), v_.end());
      v_.swap(next);
    }
    return e;
  }

  size_t capacity_bytes() const noexcept {
    return v_.capacity() * sizeof(Event);
  }

 private:
  std::vector<Event> v_;
};

}  // namespace detail

class EventQueue {
 public:
  explicit EventQueue(QueueKind kind = QueueKind::kCalendar) : kind_(kind) {
    if (kind_ == QueueKind::kCalendar) {
      buckets_.resize(kBuckets);
      live_.resize(kBuckets / 64, 0);
    }
  }

  QueueKind kind() const noexcept { return kind_; }
  bool empty() const noexcept { return size_ == 0; }
  size_t size() const noexcept { return size_; }

  void push(Time t, uint64_t seq, std::coroutine_handle<> h) {
    ++size_;
    if (kind_ == QueueKind::kBinaryHeap) {
      heap_.push(Event{t, seq, h});
      return;
    }
    if (t <= current_) {
      // Zero-delay (or clamped-to-now) wake-up: FIFO ring, O(1).  Push order
      // is seq order, so the ring stays sorted by (time, seq).
      ++mix_.immediate;
      immediate_.push_back(Event{current_, seq, h});
      return;
    }
    if (t - current_ >= kHorizon) {
      ++mix_.overflow;
    } else {
      ++mix_.wheel;
    }
    push_wheel(Event{t, seq, h});
  }

  /// How pushed events classified (calendar mode only): same-tick FIFO ring
  /// vs wheel horizon vs overflow heap.  `bench_scale` parameterizes its
  /// event-core replay with the mix a real sweep point measured.
  struct PushMix {
    uint64_t immediate = 0;
    uint64_t wheel = 0;
    uint64_t overflow = 0;
  };
  const PushMix& push_mix() const noexcept { return mix_; }

  /// Earliest pending (time, seq) event's time.  Precondition: !empty().
  Time next_time() const {
    if (kind_ == QueueKind::kBinaryHeap) return heap_.top().time;
    return peek_min()->time;
  }

  /// Removes and returns the (time, seq)-minimum event.
  /// Precondition: !empty().
  Event pop() {
    --size_;
    if (kind_ == QueueKind::kBinaryHeap) return heap_.pop();

    // Global minimum across the three stores.  All immediate events sit at
    // current_, so anything in the wheel/overflow at the same time but a
    // lower seq (scheduled before the clock reached current_) wins.
    const Event* m = peek_min();
    if (!immediate_.empty() && m == &immediate_.front()) {
      return immediate_.pop_front();
    }
    if (!overflow_.empty() && m == &overflow_.top()) {
      Event e = overflow_.pop();
      current_ = e.time;
      migrate_overflow();
      return e;
    }
    return pop_wheel();
  }

  /// Bytes of storage currently retained by the queue (capacities, not live
  /// events).  The shrink hysteresis bounds this after bursts.
  size_t memory_bytes() const {
    size_t total = heap_.capacity_bytes() + overflow_.capacity_bytes() +
                   immediate_.capacity_bytes() +
                   live_.capacity() * sizeof(uint64_t);
    for (const auto& b : buckets_) total += b.capacity() * sizeof(Event);
    return total;
  }

 private:
  // Wheel geometry: 4096 buckets of 2^11 ns (~2 us) cover a ~8.4 ms
  // horizon — wide enough for NIC/disk/CPU service times, while long timers
  // (retry backoff, samplers, run_until deadlines) ride the overflow heap.
  static constexpr size_t kBuckets = 4096;         // power of two
  static constexpr unsigned kWidthShift = 11;      // bucket width 2048 ns
  static constexpr Time kHorizon =
      static_cast<Time>(kBuckets - 1) << kWidthShift;

  static size_t bucket_index(Time t) noexcept {
    return (static_cast<uint64_t>(t) >> kWidthShift) & (kBuckets - 1);
  }

  void push_wheel(const Event& e) {
    if (e.time - current_ >= kHorizon) {
      overflow_.push(e);
      return;
    }
    size_t b = bucket_index(e.time);
    auto& v = buckets_[b];
    if (v.empty()) live_[b / 64] |= uint64_t{1} << (b % 64);
    v.push_back(e);
    std::push_heap(v.begin(), v.end(), detail::event_after);
    // Keep the cached minimum current: a new event can only move the
    // minimum earlier (in cyclic order from the clock's bucket).
    if (wheel_count_ == 0) {
      cached_min_ = b;
    } else if (cached_min_ != kBuckets) {
      const size_t start = bucket_index(current_);
      if (((b - start) & (kBuckets - 1)) <
          ((cached_min_ - start) & (kBuckets - 1))) {
        cached_min_ = b;
      }
    }
    ++wheel_count_;
  }

  // First non-empty bucket in cyclic order from the current cursor.  Bucket
  // windows increase monotonically along that order (single-rotation
  // invariant), so this bucket holds the wheel's (time, seq) minimum.  The
  // result is cached: pushes keep it current and only a drained bucket
  // forces a rescan, so steady-state pops skip the bitmap walk entirely.
  size_t min_bucket() const noexcept {
    if (cached_min_ != kBuckets) return cached_min_;
    cached_min_ = scan_min_bucket();
    return cached_min_;
  }

  size_t scan_min_bucket() const noexcept {
    const size_t start = bucket_index(current_);
    const size_t w0 = start / 64;
    uint64_t bits = live_[w0] & (~uint64_t{0} << (start % 64));
    if (bits != 0) {
      return w0 * 64 + static_cast<size_t>(std::countr_zero(bits));
    }
    // i == live_.size() revisits the start word for its low (wrapped) bits;
    // its high bits were checked above and are known empty.
    for (size_t i = 1; i <= live_.size(); ++i) {
      const size_t w = (w0 + i) % live_.size();
      if (live_[w] != 0) {
        return w * 64 + static_cast<size_t>(std::countr_zero(live_[w]));
      }
    }
    return kBuckets;  // unreachable when wheel_count_ > 0
  }

  const Event* peek_min() const {
    const Event* best = nullptr;
    if (!immediate_.empty()) best = &immediate_.front();
    if (wheel_count_ > 0) {
      const Event& w = buckets_[min_bucket()].front();
      if (!best || detail::event_after(*best, w)) best = &w;
    }
    if (!overflow_.empty()) {
      const Event& o = overflow_.top();
      if (!best || detail::event_after(*best, o)) best = &o;
    }
    return best;
  }

  Event pop_wheel() {
    size_t b = min_bucket();
    auto& v = buckets_[b];
    std::pop_heap(v.begin(), v.end(), detail::event_after);
    Event e = v.back();
    v.pop_back();
    --wheel_count_;
    if (v.empty()) {
      live_[b / 64] &= ~(uint64_t{1} << (b % 64));
      cached_min_ = kBuckets;  // rescan lazily on the next wheel access
      // Drained bucket: drop a burst-sized allocation rather than holding
      // peak capacity in every bucket it ever visited.
      if (v.capacity() > 512) std::vector<Event>().swap(v);
    }
    current_ = e.time;
    migrate_overflow();
    return e;
  }

  // Pull overflow events that fell inside the wheel horizon as the clock
  // advanced.  Amortized against the pops that advanced the clock.
  void migrate_overflow() {
    while (!overflow_.empty() && overflow_.top().time - current_ < kHorizon) {
      push_wheel(overflow_.pop());
    }
  }

  QueueKind kind_;
  size_t size_ = 0;

  // kBinaryHeap storage.
  detail::EventHeap heap_;

  // kCalendar storage.
  Time current_ = 0;  // time of the most recently popped event
  detail::EventRing immediate_;
  std::vector<std::vector<Event>> buckets_;
  std::vector<uint64_t> live_;  // occupancy bitmap over buckets_
  size_t wheel_count_ = 0;
  // Cached min_bucket() result; kBuckets means "rescan".  Mutable: caching
  // inside const peeks is invisible to callers.
  mutable size_t cached_min_ = kBuckets;
  detail::EventHeap overflow_;
  PushMix mix_;
};

}  // namespace dpnfs::sim
