// Coroutine task type for simulation processes.
//
// A `Task<T>` is a lazily-started coroutine.  It begins executing when
// awaited (`co_await some_task()`) or when handed to `Simulation::spawn`.
// On completion it resumes its awaiter by symmetric transfer, so arbitrarily
// deep call chains run without growing the machine stack.
//
// Ownership rules:
//   * An awaited task is owned by the temporary/local `Task` object; the
//     coroutine frame is destroyed when that object goes out of scope
//     (after the co_await completes).
//   * A spawned (detached) task owns itself and self-destroys at final
//     suspend.  An exception escaping a detached task terminates the
//     program — simulation processes must handle their own errors.
#pragma once

#include <coroutine>
#include <cstdio>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

#include "sim/frame_pool.hpp"

namespace dpnfs::sim {

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  bool detached = false;
  std::exception_ptr exception;

  // Coroutine frames for every Task<T> route through the frame pool; see
  // frame_pool.hpp.  Inherited by each promise_type.
  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p, std::size_t n) noexcept {
    FramePool::deallocate(p, n);
  }
};

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) const noexcept {
    PromiseBase& p = h.promise();
    if (p.detached) {
      if (p.exception) {
        std::fputs("fatal: exception escaped a detached simulation task\n",
                   stderr);
        std::terminate();
      }
      h.destroy();
      return std::noop_coroutine();
    }
    if (p.continuation) return p.continuation;
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task;

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() { this->exception = std::current_exception(); }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  bool valid() const noexcept { return static_cast<bool>(h_); }

  /// Relinquishes ownership of the coroutine frame (used by spawn).
  handle_type release() noexcept { return std::exchange(h_, {}); }

  auto operator co_await() noexcept {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;  // start the child by symmetric transfer
      }
      T await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
        return std::move(*p.value);
      }
    };
    return Awaiter{h_};
  }

 private:
  handle_type h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { this->exception = std::current_exception(); }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  bool valid() const noexcept { return static_cast<bool>(h_); }
  handle_type release() noexcept { return std::exchange(h_, {}); }

  auto operator co_await() noexcept {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        auto& p = h.promise();
        if (p.exception) std::rethrow_exception(p.exception);
      }
    };
    return Awaiter{h_};
  }

 private:
  handle_type h_;
};

}  // namespace dpnfs::sim
