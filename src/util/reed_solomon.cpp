#include "util/reed_solomon.hpp"

#include <array>
#include <stdexcept>

namespace dpnfs::util {

namespace {

/// log/exp tables for GF(256) with the AES-adjacent polynomial 0x11d and
/// generator 2, built once at static-init time.
struct GfTables {
  std::array<uint8_t, 256> log{};
  std::array<uint8_t, 512> exp{};

  GfTables() {
    uint32_t x = 1;
    for (uint32_t i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      log[x] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    for (uint32_t i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  }
};

const GfTables& tables() {
  static const GfTables t;
  return t;
}

/// Multiplies `src` by scalar `c` and XORs into `dst` (dst += c * src).
void mul_acc(std::span<std::byte> dst, std::span<const std::byte> src,
             uint8_t c) {
  if (c == 0) return;
  const GfTables& t = tables();
  if (c == 1) {
    for (size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  const uint32_t lc = t.log[c];
  for (size_t i = 0; i < dst.size(); ++i) {
    const uint8_t s = static_cast<uint8_t>(src[i]);
    if (s != 0) {
      dst[i] = static_cast<std::byte>(static_cast<uint8_t>(dst[i]) ^
                                      t.exp[lc + t.log[s]]);
    }
  }
}

}  // namespace

uint8_t ReedSolomon::gf_mul(uint8_t a, uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const GfTables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

uint8_t ReedSolomon::gf_inv(uint8_t a) {
  if (a == 0) throw std::domain_error("gf_inv(0)");
  const GfTables& t = tables();
  return t.exp[255 - t.log[a]];
}

ReedSolomon::ReedSolomon(uint32_t k, uint32_t m) : k_(k), m_(m) {
  if (k == 0 || m == 0 || k + m > 255) {
    throw std::invalid_argument("reed-solomon: need 1 <= k, m and k+m <= 255");
  }
  // Cauchy matrix with x_j = k + j (parity rows) and y_i = i (data columns);
  // the index sets are disjoint so x_j ^ y_i is never zero.
  coding_.resize(static_cast<size_t>(m) * k);
  for (uint32_t j = 0; j < m; ++j) {
    for (uint32_t i = 0; i < k; ++i) {
      coding_[j * k + i] = gf_inv(static_cast<uint8_t>((k + j) ^ i));
    }
  }
}

void ReedSolomon::encode(std::span<const std::vector<std::byte>> data,
                         std::vector<std::vector<std::byte>>* parity) const {
  if (data.size() != k_) throw std::invalid_argument("encode: need k shards");
  const size_t len = data.empty() ? 0 : data[0].size();
  for (const auto& d : data) {
    if (d.size() != len) throw std::invalid_argument("encode: ragged shards");
  }
  parity->assign(m_, std::vector<std::byte>(len, std::byte{0}));
  for (uint32_t j = 0; j < m_; ++j) {
    for (uint32_t i = 0; i < k_; ++i) {
      mul_acc((*parity)[j], data[i], coef(j, i));
    }
  }
}

bool ReedSolomon::reconstruct(
    std::vector<std::optional<std::vector<std::byte>>>* shards) const {
  const uint32_t n = k_ + m_;
  if (shards->size() != n) {
    throw std::invalid_argument("reconstruct: need k+m slots");
  }
  // Pick the first k present shards and remember which generator row each
  // corresponds to (identity rows for data, Cauchy rows for parity).
  std::vector<uint32_t> rows;
  size_t len = 0;
  for (uint32_t s = 0; s < n && rows.size() < k_; ++s) {
    if ((*shards)[s]) {
      rows.push_back(s);
      len = (*shards)[s]->size();
    }
  }
  if (rows.size() < k_) return false;
  for (uint32_t r : rows) {
    if ((*shards)[r]->size() != len) {
      throw std::invalid_argument("reconstruct: ragged shards");
    }
  }

  bool any_data_missing = false;
  for (uint32_t i = 0; i < k_; ++i) {
    any_data_missing = any_data_missing || !(*shards)[i];
  }

  std::vector<std::vector<std::byte>> data(k_);
  if (!any_data_missing) {
    for (uint32_t i = 0; i < k_; ++i) data[i] = *(*shards)[i];
  } else {
    // Invert the k x k submatrix of the generator formed by the chosen rows
    // (Gauss-Jordan over GF(256)); guaranteed nonsingular by the Cauchy
    // construction.
    std::vector<uint8_t> mat(static_cast<size_t>(k_) * k_, 0);
    std::vector<uint8_t> inv(static_cast<size_t>(k_) * k_, 0);
    for (uint32_t r = 0; r < k_; ++r) {
      const uint32_t s = rows[r];
      if (s < k_) {
        mat[r * k_ + s] = 1;  // data shard: identity row
      } else {
        for (uint32_t i = 0; i < k_; ++i) mat[r * k_ + i] = coef(s - k_, i);
      }
      inv[r * k_ + r] = 1;
    }
    for (uint32_t col = 0; col < k_; ++col) {
      uint32_t pivot = col;
      while (pivot < k_ && mat[pivot * k_ + col] == 0) ++pivot;
      if (pivot == k_) return false;  // unreachable for Cauchy; be safe
      if (pivot != col) {
        for (uint32_t i = 0; i < k_; ++i) {
          std::swap(mat[pivot * k_ + i], mat[col * k_ + i]);
          std::swap(inv[pivot * k_ + i], inv[col * k_ + i]);
        }
      }
      const uint8_t p = gf_inv(mat[col * k_ + col]);
      for (uint32_t i = 0; i < k_; ++i) {
        mat[col * k_ + i] = gf_mul(mat[col * k_ + i], p);
        inv[col * k_ + i] = gf_mul(inv[col * k_ + i], p);
      }
      for (uint32_t r = 0; r < k_; ++r) {
        if (r == col) continue;
        const uint8_t f = mat[r * k_ + col];
        if (f == 0) continue;
        for (uint32_t i = 0; i < k_; ++i) {
          mat[r * k_ + i] ^= gf_mul(mat[col * k_ + i], f);
          inv[r * k_ + i] ^= gf_mul(inv[col * k_ + i], f);
        }
      }
    }
    // data_i = sum_r inv[i][r] * chosen_shard[r]
    for (uint32_t i = 0; i < k_; ++i) {
      data[i].assign(len, std::byte{0});
      for (uint32_t r = 0; r < k_; ++r) {
        mul_acc(data[i], *(*shards)[rows[r]], inv[i * k_ + r]);
      }
    }
  }

  for (uint32_t i = 0; i < k_; ++i) {
    if (!(*shards)[i]) (*shards)[i] = data[i];
  }
  // Missing parity shards are recomputed by re-encoding.
  bool parity_missing = false;
  for (uint32_t j = 0; j < m_; ++j) {
    parity_missing = parity_missing || !(*shards)[k_ + j];
  }
  if (parity_missing) {
    std::vector<std::vector<std::byte>> parity;
    encode(data, &parity);
    for (uint32_t j = 0; j < m_; ++j) {
      if (!(*shards)[k_ + j]) (*shards)[k_ + j] = std::move(parity[j]);
    }
  }
  return true;
}

}  // namespace dpnfs::util
