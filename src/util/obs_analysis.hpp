// Trace analysis: critical-path latency attribution, Chrome trace export,
// and utilization time series.
//
// The Tracer (util/obs.hpp) retains per-request span trees; this layer turns
// them into evidence:
//
//  - `analyze_trace` walks one trace's span tree and attributes every
//    nanosecond of the root span's duration to exactly one exclusive phase
//    (client queue, request wire, server queue, service CPU, disk, reply
//    wire) — the per-stage decomposition the paper's Figure 6-8 argument
//    needs.  The phases of a well-formed trace sum *exactly* to its
//    end-to-end latency.
//
//  - `TraceExporter` serializes retained spans as Chrome/Perfetto
//    `trace_event` JSON: one process per simulated node, one track per
//    (node, kind:component) lane, flow arrows along parent edges, and
//    counter tracks from sampled time series.  Load the file in
//    ui.perfetto.dev or chrome://tracing.
//
//  - `TimeSeries` holds gauge samples on a simulated-time axis (NIC/disk
//    utilization, queue depths) recorded by the Deployment sampler.
//
// Like obs.hpp, everything here is simulation-agnostic (plain nanosecond
// integers) so it stays at the bottom of the dependency stack.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/obs.hpp"

namespace dpnfs::obs {

// ---------------------------------------------------------------------------
// Critical-path latency attribution
// ---------------------------------------------------------------------------

/// Exclusive latency phases.  Each nanosecond of a trace's end-to-end time
/// is owned by exactly one phase; `total()` of a well-formed trace equals
/// root end - root start.
struct PhaseBreakdown {
  TimeNs client_queue = 0;  ///< sender-NIC tx-queue wait before request bytes
                            ///< left the client
  TimeNs request_wire = 0;  ///< request transmission + propagation
  TimeNs server_queue = 0;  ///< server request-queue residency
  TimeNs service_cpu = 0;   ///< server-side execution (marshal, CPU charge,
                            ///< cache work) excluding disk and nested hops
  TimeNs disk = 0;          ///< local-store disk time (incl. arm queueing)
  TimeNs reply_wire = 0;    ///< reply transmission + propagation
  TimeNs other = 0;         ///< unattributable: timeout attempts, retry
                            ///< backoff, spans lost to capacity

  TimeNs total() const noexcept {
    return client_queue + request_wire + server_queue + service_cpu + disk +
           reply_wire + other;
  }
  /// The share a second hop adds: everything that is wire or queue.
  TimeNs wire_and_queue() const noexcept {
    return client_queue + request_wire + server_queue + reply_wire;
  }
  void add(const PhaseBreakdown& o) noexcept;
  std::string to_json() const;
};

/// Attribution result for one trace.
struct TraceBreakdown {
  uint64_t trace_id = 0;
  std::string root_op;    ///< root span name, e.g. "nfs/38"
  std::string root_node;  ///< node the root span ran on
  TimeNs start = 0;
  TimeNs end = 0;
  uint32_t hops = 0;  ///< kClientCall spans retained in this trace
  /// One root, acyclic parentage, children inside the parent interval.
  /// When false the phases are still best-effort but may not sum to total.
  bool well_formed = false;
  PhaseBreakdown phases;

  TimeNs total() const noexcept { return end - start; }
};

/// Attributes one trace's latency.  `spans` is every retained span of one
/// trace (any order).  Returns a zero TraceBreakdown (trace_id 0) when no
/// usable root span exists.
TraceBreakdown analyze_trace(const std::vector<Span>& spans);

/// Aggregate attribution for one operation type (root span name).
struct OpBreakdown {
  uint64_t count = 0;
  TimeNs total_ns = 0;
  uint64_t hops = 0;
  PhaseBreakdown phases;
};

/// Whole-run attribution: per-architecture totals plus a per-op split.
struct BreakdownReport {
  uint64_t traces_analyzed = 0;
  uint64_t traces_skipped = 0;  ///< retained traces with no usable root
  TimeNs total_ns = 0;          ///< sum of analyzed traces' end-to-end time
  PhaseBreakdown phases;
  std::map<std::string, OpBreakdown> per_op;

  /// Fraction of total time that is wire or queue — the quantity the
  /// pNFS-2tier re-route hop inflates relative to Direct-pNFS.
  double wire_queue_share() const noexcept;

  /// {"architecture": ..., "traces_analyzed": ..., "phases_ns": {...},
  ///  "wire_queue_share": ..., "per_op": {"nfs/38": {...}, ...}}
  std::string to_json(const std::string& architecture) const;
  /// Human-readable attribution table.
  std::string report() const;
};

/// Analyzes every retained trace in the tracer.
BreakdownReport analyze_all(const Tracer& tracer);

// ---------------------------------------------------------------------------
// Time series
// ---------------------------------------------------------------------------

/// Gauge samples on the simulated-time axis, scoped (node, series name).
class TimeSeries {
 public:
  struct Sample {
    TimeNs t = 0;
    double value = 0.0;
  };

  void add(const std::string& node, const std::string& name, TimeNs t,
           double value);

  bool empty() const noexcept { return sample_count_ == 0; }
  size_t sample_count() const noexcept { return sample_count_; }
  const std::map<std::string, std::map<std::string, std::vector<Sample>>>&
  series() const noexcept {
    return series_;
  }

  /// {"node": {"name": [[t_ns, value], ...], ...}, ...}
  std::string to_json() const;

 private:
  std::map<std::string, std::map<std::string, std::vector<Sample>>> series_;
  size_t sample_count_ = 0;
};

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

class TraceExporter {
 public:
  /// Chrome/Perfetto `trace_event` JSON for every retained span (plus
  /// counter tracks when `series` is given).  ts/dur are microseconds
  /// (the format's unit); span annotations ride in `args`.
  static std::string to_chrome_json(const Tracer& tracer,
                                    const std::string& architecture,
                                    const TimeSeries* series = nullptr);

  /// Writes `to_chrome_json` to `path`; false on I/O failure.
  static bool write_file(const std::string& path, const Tracer& tracer,
                         const std::string& architecture,
                         const TimeSeries* series = nullptr);
};

}  // namespace dpnfs::obs
