// Observability substrate: named metrics and RPC-level tracing.
//
// The paper's argument (Figures 6-8) is about *where* bytes and CPU time go
// in each architecture.  This layer makes that directly observable:
//
//  - `MetricsRegistry` holds named counters, gauges, and histograms scoped
//    (node, component, name), e.g. ("storage2", "pvfs.io", "bytes_written").
//    Handles are resolved once at setup time and are stable for the life of
//    the registry, so hot paths pay only a pointer-indirect increment.
//    Components not wired to a registry use the static null sinks — updates
//    stay branch-free and land in throwaway storage.
//
//  - `Tracer` assigns trace/span ids to RPCs.  The client span id crosses
//    the wire in `rpc::CallHeader`; servers open child spans, so a single
//    application READ shows its full path (client -> data server -> backend,
//    including the pNFS-2tier re-route hop).  Per-trace hop counts are
//    aggregated exactly; full span detail is kept for a bounded number of
//    spans.
//
// Everything here is simulation-agnostic: times are plain nanosecond
// integers so the util layer stays at the bottom of the dependency stack.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"

namespace dpnfs::obs {

/// Nanoseconds (matches sim::Time without depending on the sim layer).
using TimeNs = int64_t;

// ---------------------------------------------------------------------------
// Metric instruments
// ---------------------------------------------------------------------------

/// Monotonic event/byte count.
class Counter {
 public:
  void add(uint64_t delta) noexcept { value_ += delta; }
  void inc() noexcept { ++value_; }
  uint64_t value() const noexcept { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time value (queue depth, buffer occupancy, snapshot exports).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double delta) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Bucketed distribution plus exact count/sum/min/max.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> boundaries);

  void observe(double value);

  uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const noexcept { return min_; }  ///< 0 when empty
  double max() const noexcept { return max_; }  ///< 0 when empty
  const util::Histogram& buckets() const noexcept { return hist_; }
  const std::vector<double>& boundaries() const noexcept { return boundaries_; }

 private:
  std::vector<double> boundaries_;
  util::Histogram hist_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Default boundaries for latency histograms, in microseconds (1us .. 10s).
std::vector<double> latency_us_boundaries();
/// Default boundaries for size histograms, in bytes (512B .. 16MB).
std::vector<double> size_bytes_boundaries();

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

/// Named metrics scoped (node, component, name).  All five architectures
/// share one schema: the same component names appear wherever the same
/// role exists ("rpc" on every RPC daemon, "pvfs.io" on storage daemons,
/// "nfs.server" on NFS servers, "client.cache" on NFS clients, ...).
///
/// `counter()/gauge()/histogram()` create on first use and return stable
/// references (node-based map storage); call them at setup, keep the
/// pointer, and update without further lookups.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& node, const std::string& component,
                   const std::string& name);
  Gauge& gauge(const std::string& node, const std::string& component,
               const std::string& name);
  HistogramMetric& histogram(const std::string& node,
                             const std::string& component,
                             const std::string& name,
                             std::vector<double> boundaries);

  /// Lookup without creating; nullptr when absent.
  const Counter* find_counter(const std::string& node,
                              const std::string& component,
                              const std::string& name) const;
  const Gauge* find_gauge(const std::string& node, const std::string& component,
                          const std::string& name) const;
  const HistogramMetric* find_histogram(const std::string& node,
                                        const std::string& component,
                                        const std::string& name) const;

  bool empty() const noexcept { return nodes_.empty(); }

  /// {"node": {"component": {"counters": {...}, "gauges": {...},
  ///                         "histograms": {...}}}}
  std::string to_json() const;

  /// Human-readable per-node report (one line per metric).
  std::string report() const;

  /// Shared sinks for components constructed without a registry: always
  /// valid, never read.  Updates are as cheap as the real thing, so
  /// instrumented code needs no per-operation branches.
  static Counter& null_counter();
  static Gauge& null_gauge();
  static HistogramMetric& null_histogram();

 private:
  struct Component {
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, HistogramMetric> histograms;
  };

  std::map<std::string, std::map<std::string, Component>> nodes_;
};

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// Identifies a position in a trace tree.  trace_id 0 means "no trace";
/// default-constructed contexts are inert, so untraced call sites pass `{}`.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const noexcept { return trace_id != 0; }
};

enum class SpanKind : uint8_t {
  kClientCall = 0,  ///< one RPC hop as seen by the caller
  kServerExec = 1,  ///< server-side execution of one request
  kInternal = 2,    ///< non-RPC work (e.g. local store access)
};

const char* span_kind_name(SpanKind k);

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  SpanKind kind = SpanKind::kInternal;
  std::string name;  ///< "prog/proc" for RPC spans, free-form otherwise
  std::string node;  ///< simulated node the span executed on
  TimeNs start = 0;
  TimeNs end = 0;
  TimeNs queue_wait = 0;   ///< request-queue residency (server spans)
  uint64_t bytes_out = 0;  ///< wire bytes sent (request for client spans)
  uint64_t bytes_in = 0;   ///< wire bytes received (reply for client spans)
  TimeNs send_wait = 0;    ///< sender-NIC tx-queue wait before the request
                           ///< left the client (client spans)
  TimeNs disk = 0;         ///< disk time absorbed, incl. arm queueing
                           ///< (internal store spans)
};

/// Allocates trace/span ids and aggregates recorded spans.
///
/// Hop accounting is exact for every trace: each kClientCall span counts as
/// one RPC hop against its trace.  Span *detail* is bounded (`span_capacity`)
/// so long benches don't hold millions of spans; overflow is counted, not
/// silently dropped.  The per-trace hop map is likewise bounded
/// (`hop_trace_capacity`): once the cap is hit the oldest trace entries are
/// evicted (trace ids are allocated monotonically, so oldest == smallest)
/// and counted in `hop_traces_evicted()` — long benches stay flat in memory
/// while `rpc_hops_total` and the distinct-trace count remain exact.
class Tracer {
 public:
  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }
  void set_span_capacity(size_t cap) noexcept { span_capacity_ = cap; }
  void set_hop_trace_capacity(size_t cap) noexcept {
    hop_trace_capacity_ = cap;
  }

  /// Starts a span.  An invalid `parent` starts a new trace (a root span);
  /// a valid one continues the parent's trace with a fresh span id.
  TraceContext begin(TraceContext parent = TraceContext{});

  void record(Span span);

  uint64_t traces_started() const noexcept { return traces_started_; }
  uint64_t rpc_hops_total() const noexcept { return rpc_hops_total_; }
  uint64_t spans_recorded() const noexcept { return spans_recorded_; }
  uint64_t spans_dropped() const noexcept { return spans_dropped_; }
  /// Distinct traces that contributed at least one RPC hop (exact even
  /// after hop-map eviction).
  uint64_t hop_traces_seen() const noexcept { return hop_traces_seen_; }
  /// Trace entries evicted from the bounded hop map.
  uint64_t hop_traces_evicted() const noexcept { return hop_traces_evicted_; }

  double mean_hops_per_trace() const noexcept;
  uint32_t max_hops_per_trace() const noexcept;
  /// hop-count -> number of traces with exactly that many RPC hops
  /// (retained traces only; eviction removes entries from this view).
  std::map<uint32_t, uint64_t> hops_histogram() const;

  /// All retained spans of one trace, in recording order.  Indexed by
  /// trace id — O(spans in that trace), not O(all retained spans).
  std::vector<Span> trace_spans(uint64_t trace_id) const;
  const std::deque<Span>& spans() const noexcept { return spans_; }

  /// Aggregate trace statistics (no span detail; see `spans_json`).
  std::string to_json() const;
  /// Detail for up to `limit` retained spans.
  std::string spans_json(size_t limit) const;

 private:
  bool enabled_ = true;
  size_t span_capacity_ = 4096;
  size_t hop_trace_capacity_ = 65536;
  uint64_t next_trace_ = 1;
  uint64_t next_span_ = 1;
  uint64_t traces_started_ = 0;
  uint64_t rpc_hops_total_ = 0;
  uint64_t spans_recorded_ = 0;
  uint64_t spans_dropped_ = 0;
  uint64_t hop_traces_seen_ = 0;
  uint64_t hop_traces_evicted_ = 0;
  uint64_t max_evicted_trace_ = 0;  ///< largest trace id ever evicted
  uint32_t max_hops_ = 0;           ///< running max, survives eviction
  std::map<uint64_t, uint32_t> hops_per_trace_;
  // spans_ is append-only (overflow drops *new* spans), so deque indices
  // are stable and the per-trace index can store them directly.
  std::unordered_map<uint64_t, std::vector<size_t>> trace_index_;
  std::deque<Span> spans_;
};

/// Escapes a string for embedding in a JSON document.
std::string json_escape(const std::string& s);

}  // namespace dpnfs::obs
