// Observability substrate: named metrics and RPC-level tracing.
//
// The paper's argument (Figures 6-8) is about *where* bytes and CPU time go
// in each architecture.  This layer makes that directly observable:
//
//  - `MetricsRegistry` holds named counters, gauges, and histograms scoped
//    (node, component, name), e.g. ("storage2", "pvfs.io", "bytes_written").
//    Handles are resolved once at setup time and are stable for the life of
//    the registry, so hot paths pay only a pointer-indirect increment.
//    Components not wired to a registry use the static null sinks — updates
//    stay branch-free and land in throwaway storage.
//
//  - `Tracer` assigns trace/span ids to RPCs.  The client span id crosses
//    the wire in `rpc::CallHeader`; servers open child spans, so a single
//    application READ shows its full path (client -> data server -> backend,
//    including the pNFS-2tier re-route hop).  Per-trace hop counts are
//    aggregated exactly; full span detail is kept for a bounded number of
//    spans.
//
// Everything here is simulation-agnostic: times are plain nanosecond
// integers so the util layer stays at the bottom of the dependency stack.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"

namespace dpnfs::obs {

/// Nanoseconds (matches sim::Time without depending on the sim layer).
using TimeNs = int64_t;

// ---------------------------------------------------------------------------
// Metric instruments
// ---------------------------------------------------------------------------

/// Monotonic event/byte count.
class Counter {
 public:
  void add(uint64_t delta) noexcept { value_ += delta; }
  void inc() noexcept { ++value_; }
  uint64_t value() const noexcept { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time value (queue depth, buffer occupancy, snapshot exports).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double delta) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Bucketed distribution plus exact count/sum/min/max.
class HistogramMetric {
 public:
  explicit HistogramMetric(std::vector<double> boundaries);

  void observe(double value);

  uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const noexcept { return min_; }  ///< 0 when empty
  double max() const noexcept { return max_; }  ///< 0 when empty
  const util::Histogram& buckets() const noexcept { return hist_; }
  const std::vector<double>& boundaries() const noexcept { return boundaries_; }

 private:
  std::vector<double> boundaries_;
  util::Histogram hist_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Default boundaries for latency histograms, in microseconds (1us .. 10s).
std::vector<double> latency_us_boundaries();
/// Default boundaries for size histograms, in bytes (512B .. 16MB).
std::vector<double> size_bytes_boundaries();

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

/// Named metrics scoped (node, component, name).  All five architectures
/// share one schema: the same component names appear wherever the same
/// role exists ("rpc" on every RPC daemon, "pvfs.io" on storage daemons,
/// "nfs.server" on NFS servers, "client.cache" on NFS clients, ...).
///
/// `counter()/gauge()/histogram()` create on first use and return stable
/// references (node-based map storage); call them at setup, keep the
/// pointer, and update without further lookups.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& node, const std::string& component,
                   const std::string& name);
  Gauge& gauge(const std::string& node, const std::string& component,
               const std::string& name);
  HistogramMetric& histogram(const std::string& node,
                             const std::string& component,
                             const std::string& name,
                             std::vector<double> boundaries);
  /// Fixed-memory streaming percentile digest — the O(1)-per-sample
  /// instrument for hot-path latency (no boundary choice, mergeable).
  util::PercentileDigest& digest(const std::string& node,
                                 const std::string& component,
                                 const std::string& name);

  /// Lookup without creating; nullptr when absent.
  const Counter* find_counter(const std::string& node,
                              const std::string& component,
                              const std::string& name) const;
  const Gauge* find_gauge(const std::string& node, const std::string& component,
                          const std::string& name) const;
  const HistogramMetric* find_histogram(const std::string& node,
                                        const std::string& component,
                                        const std::string& name) const;
  const util::PercentileDigest* find_digest(const std::string& node,
                                            const std::string& component,
                                            const std::string& name) const;

  bool empty() const noexcept { return nodes_.empty(); }

  /// Every node that has registered at least one metric (sorted).
  std::vector<std::string> node_names() const;

  /// {"node": {"component": {"counters": {...}, "gauges": {...},
  ///                         "histograms": {...}, "digests": {...}}}}
  std::string to_json() const;

  /// Human-readable per-node report (one line per metric).
  std::string report() const;

  /// Shared sinks for components constructed without a registry: always
  /// valid, never read.  Updates are as cheap as the real thing, so
  /// instrumented code needs no per-operation branches.
  static Counter& null_counter();
  static Gauge& null_gauge();
  static HistogramMetric& null_histogram();
  static util::PercentileDigest& null_digest();

 private:
  struct Component {
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, HistogramMetric> histograms;
    std::map<std::string, util::PercentileDigest> digests;
  };

  std::map<std::string, std::map<std::string, Component>> nodes_;
};

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// Identifies a position in a trace tree.  trace_id 0 means "no trace";
/// default-constructed contexts are inert, so untraced call sites pass `{}`.
///
/// `sampled` is the trace's head-sampling verdict, decided once at the root
/// `begin()` and inherited by every child context (it crosses the wire in
/// `rpc::CallHeader::flags`, so spans opened on other nodes agree with the
/// root).  Aggregate accounting ignores it; only span *detail* does.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  bool sampled = true;
  /// Tenant the work is on behalf of (0: unassigned).  Rides the context
  /// through proxied hops — servers stamp it from the call header even when
  /// the request is untraced, so per-tenant accounting works at any sample
  /// rate (including tracing off).
  uint32_t tenant = 0;

  bool valid() const noexcept { return trace_id != 0; }
};

enum class SpanKind : uint8_t {
  kClientCall = 0,  ///< one RPC hop as seen by the caller
  kServerExec = 1,  ///< server-side execution of one request
  kInternal = 2,    ///< non-RPC work (e.g. local store access)
};

const char* span_kind_name(SpanKind k);

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  SpanKind kind = SpanKind::kInternal;
  std::string name;  ///< "prog/proc" for RPC spans, free-form otherwise
  std::string node;  ///< simulated node the span executed on
  TimeNs start = 0;
  TimeNs end = 0;
  TimeNs queue_wait = 0;   ///< request-queue residency (server spans)
  uint64_t bytes_out = 0;  ///< wire bytes sent (request for client spans)
  uint64_t bytes_in = 0;   ///< wire bytes received (reply for client spans)
  TimeNs send_wait = 0;    ///< sender-NIC tx-queue wait before the request
                           ///< left the client (client spans)
  TimeNs disk = 0;         ///< disk time absorbed, incl. arm queueing
                           ///< (internal store spans)
  bool error = false;      ///< non-OK outcome (timeout, error reply)
  bool sampled = true;     ///< head-sampling verdict (set by the Tracer)
  bool promoted = false;   ///< tail-retained despite an unsampled verdict
};

/// Allocates trace/span ids and aggregates recorded spans.
///
/// Hop accounting is exact for every trace: each kClientCall span counts as
/// one RPC hop against its trace.  The per-trace hop map is bounded
/// (`hop_trace_capacity`): once the cap is hit the oldest trace entries are
/// evicted (trace ids are allocated monotonically, so oldest == smallest)
/// and counted in `hop_traces_evicted()` — long benches stay flat in memory
/// while `rpc_hops_total` and the distinct-trace count remain exact.
///
/// Span *detail* is governed by two independent mechanisms, both bounded:
///
///  - **Head sampling** (`set_sample_rate`): each trace gets a deterministic
///    verdict at the root `begin()` — a seeded hash of the trace id against
///    the rate — so the same seed and schedule always sample the same trace
///    ids.  Sampled traces' spans land in the retained ring
///    (`span_capacity`), which evicts its *oldest* spans under pressure so
///    a long run keeps the newest detail.
///
///  - **Tail retention** (`set_slo_threshold`): unsampled traces' spans sit
///    in a bounded staging area until their root span ends.  A trace that
///    ended slow (root latency over the SLO threshold) or with an error
///    span is *promoted* — its full detail moves to storage the sampled
///    ring's eviction never touches — so every interesting trace survives
///    even at 1% head sampling.  Fast, clean, unsampled traces are
///    discarded (counted in `spans_sampled_out`).
///
/// Aggregate counters (`traces_started`, `rpc_hops_total`, hop histograms,
/// the per-op SLO digests) are always exact for 100% of traffic; sampling
/// affects only which spans keep their detail.
class Tracer {
 public:
  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }
  void set_span_capacity(size_t cap) noexcept { span_capacity_ = cap; }
  void set_hop_trace_capacity(size_t cap) noexcept {
    hop_trace_capacity_ = cap;
  }

  /// Head-sampling rate in [0, 1]; 1 (the default) records every trace's
  /// detail.  The per-trace verdict is a pure function of (trace id, seed).
  void set_sample_rate(double rate) noexcept;
  double sample_rate() const noexcept { return sample_rate_; }
  void set_sample_seed(uint64_t seed) noexcept { sample_seed_ = seed; }
  uint64_t sample_seed() const noexcept { return sample_seed_; }
  /// Root latency above which an unsampled trace is promoted at trace end;
  /// 0 disables the slow-trace trigger (error promotion still applies).
  void set_slo_threshold(TimeNs t) noexcept { slo_threshold_ = t; }
  TimeNs slo_threshold() const noexcept { return slo_threshold_; }
  /// Bound on spans staged for unsampled in-flight traces (and on promoted
  /// span storage).  0 disables staging entirely: unsampled traces lose
  /// their detail immediately and nothing can be promoted.
  void set_staging_capacity(size_t cap) noexcept { staging_capacity_ = cap; }

  /// The deterministic head-sampling verdict for a trace id.
  bool sample_decision(uint64_t trace_id) const noexcept;

  /// Starts a span.  An invalid `parent` starts a new trace (a root span,
  /// which also fixes the trace's sampling verdict); a valid one continues
  /// the parent's trace — and inherits its verdict — with a fresh span id.
  TraceContext begin(TraceContext parent = TraceContext{});

  void record(Span span);

  uint64_t traces_started() const noexcept { return traces_started_; }
  uint64_t rpc_hops_total() const noexcept { return rpc_hops_total_; }
  uint64_t spans_recorded() const noexcept { return spans_recorded_; }
  uint64_t spans_dropped() const noexcept { return spans_dropped_; }
  /// Head-sampled traces (verdict made at the root begin()).
  uint64_t traces_sampled() const noexcept { return traces_sampled_; }
  /// Unsampled traces promoted at trace end (slow or errored).
  uint64_t traces_promoted() const noexcept { return traces_promoted_; }
  /// Spans discarded purely by the sampling verdict (their trace ended
  /// fast and clean) — detail lost on purpose, not to capacity.
  uint64_t spans_sampled_out() const noexcept { return spans_sampled_out_; }
  /// Distinct traces that contributed at least one RPC hop (exact even
  /// after hop-map eviction).
  uint64_t hop_traces_seen() const noexcept { return hop_traces_seen_; }
  /// Trace entries evicted from the bounded hop map.
  uint64_t hop_traces_evicted() const noexcept { return hop_traces_evicted_; }

  double mean_hops_per_trace() const noexcept;
  uint32_t max_hops_per_trace() const noexcept;
  /// hop-count -> number of traces with exactly that many RPC hops
  /// (retained traces only; eviction removes entries from this view — check
  /// `hop_traces_evicted()` or to_json's `hop_histogram_complete`).
  std::map<uint32_t, uint64_t> hops_histogram() const;

  /// All retained spans of one trace, in recording order (promoted storage
  /// is consulted first).  Indexed by trace id — O(spans in that trace).
  std::vector<Span> trace_spans(uint64_t trace_id) const;
  /// The sampled-detail ring only (promoted spans live separately; use
  /// `retained_spans()` for the full picture).
  const std::deque<Span>& spans() const noexcept { return spans_; }
  /// Every span that still has detail: the sampled ring, then promoted
  /// traces.  Copies — call at export/analysis time, not on hot paths.
  std::vector<Span> retained_spans() const;

  /// Aggregate trace statistics (no span detail; see `spans_json`).
  std::string to_json() const;
  /// Detail for up to `limit` retained spans (sampled ring, then promoted).
  std::string spans_json(size_t limit) const;

  /// Per-op-class SLO report: exact request/error/over-SLO counts and
  /// streaming latency digests for every root span (100% of traffic,
  /// independent of sampling), plus the sampling/promotion counters.
  std::string slo_json() const;

  /// Exact per-op-class accounting behind `slo_json` (see there).
  struct OpSlo {
    uint64_t requests = 0;
    uint64_t errors = 0;
    uint64_t over_slo = 0;
    util::PercentileDigest latency_us;
  };
  const std::map<std::string, OpSlo>& slo_per_op() const noexcept {
    return slo_;
  }

 private:
  void retain(Span span);
  void stage(Span span);
  void evict_oldest_retained();
  void finish_unsampled_trace(size_t staged_index);
  void promote_trace(uint64_t trace_id, std::vector<Span> staged);
  std::vector<Span> take_pooled_vector();
  void recycle_vector(std::vector<Span> v);
  static std::string op_class(const std::string& name);

  bool enabled_ = true;
  size_t span_capacity_ = 4096;
  size_t hop_trace_capacity_ = 65536;
  double sample_rate_ = 1.0;
  uint64_t sample_threshold_ = ~0ull;  ///< rate as a u64 hash threshold
  uint64_t sample_seed_ = 0x0b5e7ab1e5ull;
  TimeNs slo_threshold_ = 0;
  size_t staging_capacity_ = 4096;
  uint64_t next_trace_ = 1;
  uint64_t next_span_ = 1;
  uint64_t traces_started_ = 0;
  uint64_t rpc_hops_total_ = 0;
  uint64_t spans_recorded_ = 0;
  uint64_t spans_dropped_ = 0;
  uint64_t traces_sampled_ = 0;
  uint64_t traces_promoted_ = 0;
  uint64_t spans_sampled_out_ = 0;
  uint64_t hop_traces_seen_ = 0;
  uint64_t hop_traces_evicted_ = 0;
  uint64_t max_evicted_trace_ = 0;  ///< largest trace id ever evicted
  uint32_t max_hops_ = 0;           ///< running max, survives eviction
  std::map<uint64_t, uint32_t> hops_per_trace_;
  // The sampled-detail ring: spans_ evicts from the front under capacity
  // pressure, so trace_index_ stores *absolute* recording positions and
  // spans_base_ tracks how many have been evicted (deque index =
  // absolute - spans_base_).
  std::unordered_map<uint64_t, std::vector<size_t>> trace_index_;
  std::deque<Span> spans_;
  size_t spans_base_ = 0;
  // Staging for unsampled in-flight traces, FIFO by first-span arrival.
  // A flat vector with linear lookup, not a map: entries live only while
  // a trace is in flight (the root span finishes it synchronously), so
  // the scan is over a handful of entries and the per-span hot path at
  // low sampling rates never touches a node-based container.  Bounded:
  // every entry holds >= 1 span and staged_span_count_ <= capacity.
  struct StagedTrace {
    uint64_t trace_id = 0;
    std::vector<Span> spans;
  };
  std::vector<StagedTrace> staged_;
  size_t staged_span_count_ = 0;
  // Recycled span vectors: staging allocates one vector per in-flight
  // trace, and at 1% sampling nearly every trace churns through it.
  std::vector<std::vector<Span>> staging_pool_;
  // Promoted traces: never evicted by sampled-ring pressure, FIFO-bounded
  // by staging_capacity_ spans.
  std::unordered_map<uint64_t, std::vector<Span>> promoted_;
  std::deque<uint64_t> promoted_order_;
  size_t promoted_span_count_ = 0;
  // Per-op-class SLO accounting (root spans only, exact for all traffic).
  std::map<std::string, OpSlo> slo_;
};

/// Escapes a string for embedding in a JSON document.
std::string json_escape(const std::string& s);

}  // namespace dpnfs::obs
