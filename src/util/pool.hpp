// Recycling pool for byte buffers.
//
// XDR encoders, payload gathers, and decode-side fragment copies each churn
// a `std::vector<std::byte>` per RPC.  `BufferPool` keeps retired vectors in
// power-of-two capacity classes and hands them back on the next `take`, so
// steady-state buffer allocation is O(1) per RPC instead of a malloc/free
// pair per message.
//
// Process-global, runtime-toggleable (`set_enabled(false)` restores the
// plain-malloc behavior for the legacy-core bench mode).  Thread_local
// free lists keep it safe when tests run deployments on several threads.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dpnfs::util {

namespace detail {

inline constexpr std::size_t kBufferPoolClasses = 25;  // up to 16 MiB

struct BufferPoolShard {
  bool enabled = true;
  uint64_t fresh = 0;
  uint64_t reused = 0;
  std::size_t cached_bytes = 0;
  std::vector<std::vector<std::byte>> lists[kBufferPoolClasses];
};

}  // namespace detail

class BufferPool {
 public:
  /// Returns an empty vector whose capacity is at least `reserve_hint`.
  static std::vector<std::byte> take(std::size_t reserve_hint) {
    Shard& s = shard();
    if (s.enabled) {
      for (std::size_t cls = class_of(reserve_hint); cls < kClasses; ++cls) {
        auto& list = s.lists[cls];
        if (!list.empty()) {
          std::vector<std::byte> v = std::move(list.back());
          list.pop_back();
          s.cached_bytes -= v.capacity();
          ++s.reused;
          return v;
        }
      }
    }
    ++s.fresh;
    std::vector<std::byte> v;
    v.reserve(reserve_hint);
    return v;
  }

  /// Retires a vector into the pool.  No-op for tiny or oversized buffers
  /// and when the pool is full or disabled.
  static void give(std::vector<std::byte>&& v) noexcept {
    Shard& s = shard();
    const std::size_t cap = v.capacity();
    if (!s.enabled || cap < kMinCapacity || cap > kMaxCapacity) return;
    const std::size_t cls = class_of(cap);
    // The buffer serves requests up to its full capacity, but classes round
    // *up*; file it under the class it can actually satisfy.
    const std::size_t file_under = (std::size_t{1} << cls) <= cap ? cls
                                   : cls > 0                      ? cls - 1
                                                                  : 0;
    auto& list = s.lists[file_under];
    if (list.size() >= kMaxPerClass || s.cached_bytes + cap > kMaxCachedBytes) {
      return;
    }
    v.clear();
    s.cached_bytes += cap;
    list.push_back(std::move(v));
  }

  static bool enabled() noexcept { return shard().enabled; }
  static void set_enabled(bool on) noexcept { shard().enabled = on; }

  struct Stats {
    uint64_t fresh = 0;
    uint64_t reused = 0;
    std::size_t cached_bytes = 0;
  };
  static Stats stats() noexcept {
    Shard& s = shard();
    return {s.fresh, s.reused, s.cached_bytes};
  }
  static void reset_stats() noexcept {
    shard().fresh = 0;
    shard().reused = 0;
  }

  /// Frees every cached buffer.
  static void drain() noexcept {
    Shard& s = shard();
    for (auto& list : s.lists) {
      list.clear();
      list.shrink_to_fit();
    }
    s.cached_bytes = 0;
  }

 private:
  static constexpr std::size_t kClasses = detail::kBufferPoolClasses;
  static constexpr std::size_t kMinCapacity = 64;
  static constexpr std::size_t kMaxCapacity = std::size_t{1} << (kClasses - 1);
  static constexpr std::size_t kMaxPerClass = 64;
  static constexpr std::size_t kMaxCachedBytes = 64u << 20;

  static std::size_t class_of(std::size_t n) noexcept {
    return static_cast<std::size_t>(
        std::bit_width(std::bit_ceil(std::max<std::size_t>(n, 1)) - 1));
  }

  using Shard = detail::BufferPoolShard;

  // A constinit thread_local pointer avoids the per-access dynamic-init
  // guard a non-trivial thread_local object would cost (take/give run on
  // every RPC; the guard showed up in profiles).  The shard leaks at thread
  // exit by design — it lives for the process.
  static Shard& shard() noexcept {
    if (shard_p_ == nullptr) shard_p_ = new Shard();
    return *shard_p_;
  }

  static inline constinit thread_local Shard* shard_p_ = nullptr;
};

}  // namespace dpnfs::util
