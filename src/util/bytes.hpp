// Byte-size literals and formatting shared across the code base.
#pragma once

#include <cstdint>
#include <string>

namespace dpnfs::util {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

/// "2.0 MiB", "512 B", "1.5 GiB" — human-readable size for logs and tables.
std::string format_bytes(uint64_t bytes);

/// Formats a throughput in MB/s (decimal megabytes, as the paper reports).
std::string format_mbps(double bytes_per_second);

/// Decimal megabytes per second from bytes and seconds (paper convention).
constexpr double to_mbps(double bytes, double seconds) {
  return seconds > 0.0 ? bytes / 1e6 / seconds : 0.0;
}

namespace literals {
constexpr uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }
}  // namespace literals

}  // namespace dpnfs::util
