// printf-style std::string formatting (libstdc++ 12 ships no <format>).
#pragma once

#include <cstdarg>
#include <string>

namespace dpnfs::util {

/// vsnprintf into a std::string.
std::string vsformat(const char* fmt, va_list args);

/// snprintf into a std::string.
[[gnu::format(printf, 1, 2)]] std::string sformat(const char* fmt, ...);

}  // namespace dpnfs::util
