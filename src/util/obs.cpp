#include "util/obs.hpp"

#include <algorithm>
#include <cmath>

#include "util/format.hpp"

namespace dpnfs::obs {

using util::sformat;

// ---------------------------------------------------------------------------
// HistogramMetric
// ---------------------------------------------------------------------------

HistogramMetric::HistogramMetric(std::vector<double> boundaries)
    : boundaries_(boundaries), hist_(std::move(boundaries)) {}

void HistogramMetric::observe(double value) {
  hist_.add(value);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

std::vector<double> latency_us_boundaries() {
  // 1us .. 10s in a 1/2/5 progression: fine enough to separate queue wait
  // from service time, coarse enough to stay 22 buckets.
  return {1,     2,     5,     10,    20,    50,    100,   200,
          500,   1e3,   2e3,   5e3,   1e4,   2e4,   5e4,   1e5,
          2e5,   5e5,   1e6,   2e6,   5e6,   1e7};
}

std::vector<double> size_bytes_boundaries() {
  return {512,        4096,        16384,       65536,      262144,
          1048576,    2097152,     4194304,     8388608,    16777216};
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& node,
                                  const std::string& component,
                                  const std::string& name) {
  return nodes_[node][component].counters[name];
}

Gauge& MetricsRegistry::gauge(const std::string& node,
                              const std::string& component,
                              const std::string& name) {
  return nodes_[node][component].gauges[name];
}

HistogramMetric& MetricsRegistry::histogram(const std::string& node,
                                            const std::string& component,
                                            const std::string& name,
                                            std::vector<double> boundaries) {
  auto& hists = nodes_[node][component].histograms;
  auto it = hists.find(name);
  if (it == hists.end()) {
    it = hists.emplace(name, HistogramMetric(std::move(boundaries))).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& node,
                                             const std::string& component,
                                             const std::string& name) const {
  const auto n = nodes_.find(node);
  if (n == nodes_.end()) return nullptr;
  const auto c = n->second.find(component);
  if (c == n->second.end()) return nullptr;
  const auto m = c->second.counters.find(name);
  return m == c->second.counters.end() ? nullptr : &m->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& node,
                                         const std::string& component,
                                         const std::string& name) const {
  const auto n = nodes_.find(node);
  if (n == nodes_.end()) return nullptr;
  const auto c = n->second.find(component);
  if (c == n->second.end()) return nullptr;
  const auto m = c->second.gauges.find(name);
  return m == c->second.gauges.end() ? nullptr : &m->second;
}

util::PercentileDigest& MetricsRegistry::digest(const std::string& node,
                                                const std::string& component,
                                                const std::string& name) {
  return nodes_[node][component].digests[name];
}

const HistogramMetric* MetricsRegistry::find_histogram(
    const std::string& node, const std::string& component,
    const std::string& name) const {
  const auto n = nodes_.find(node);
  if (n == nodes_.end()) return nullptr;
  const auto c = n->second.find(component);
  if (c == n->second.end()) return nullptr;
  const auto m = c->second.histograms.find(name);
  return m == c->second.histograms.end() ? nullptr : &m->second;
}

const util::PercentileDigest* MetricsRegistry::find_digest(
    const std::string& node, const std::string& component,
    const std::string& name) const {
  const auto n = nodes_.find(node);
  if (n == nodes_.end()) return nullptr;
  const auto c = n->second.find(component);
  if (c == n->second.end()) return nullptr;
  const auto m = c->second.digests.find(name);
  return m == c->second.digests.end() ? nullptr : &m->second;
}

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  // %.17g round-trips doubles; trim the noise for integers.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return sformat("%.0f", v);
  }
  return sformat("%.17g", v);
}

std::string histogram_json(const HistogramMetric& h) {
  std::string out = sformat(
      "{\"count\": %llu, \"sum\": %s, \"mean\": %s, \"min\": %s, \"max\": %s, "
      "\"boundaries\": [",
      static_cast<unsigned long long>(h.count()), json_number(h.sum()).c_str(),
      json_number(h.mean()).c_str(), json_number(h.min()).c_str(),
      json_number(h.max()).c_str());
  for (size_t i = 0; i < h.boundaries().size(); ++i) {
    if (i > 0) out += ", ";
    out += json_number(h.boundaries()[i]);
  }
  out += "], \"counts\": [";
  for (size_t i = 0; i < h.buckets().bucket_count(); ++i) {
    if (i > 0) out += ", ";
    out += json_number(h.buckets().bucket_weight(i));
  }
  out += "]}";
  return out;
}

}  // namespace

std::vector<std::string> MetricsRegistry::node_names() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [node, components] : nodes_) out.push_back(node);
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  bool first_node = true;
  for (const auto& [node, components] : nodes_) {
    if (!first_node) out += ", ";
    first_node = false;
    out += sformat("\"%s\": {", json_escape(node).c_str());
    bool first_comp = true;
    for (const auto& [comp, metrics] : components) {
      if (!first_comp) out += ", ";
      first_comp = false;
      out += sformat("\"%s\": {", json_escape(comp).c_str());
      out += "\"counters\": {";
      bool first = true;
      for (const auto& [name, c] : metrics.counters) {
        if (!first) out += ", ";
        first = false;
        out += sformat("\"%s\": %llu", json_escape(name).c_str(),
                       static_cast<unsigned long long>(c.value()));
      }
      out += "}, \"gauges\": {";
      first = true;
      for (const auto& [name, g] : metrics.gauges) {
        if (!first) out += ", ";
        first = false;
        out += sformat("\"%s\": %s", json_escape(name).c_str(),
                       json_number(g.value()).c_str());
      }
      out += "}, \"histograms\": {";
      first = true;
      for (const auto& [name, h] : metrics.histograms) {
        if (!first) out += ", ";
        first = false;
        out += sformat("\"%s\": %s", json_escape(name).c_str(),
                       histogram_json(h).c_str());
      }
      out += "}, \"digests\": {";
      first = true;
      for (const auto& [name, d] : metrics.digests) {
        if (!first) out += ", ";
        first = false;
        out += sformat("\"%s\": %s", json_escape(name).c_str(),
                       d.to_json().c_str());
      }
      out += "}}";
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::report() const {
  std::string out;
  for (const auto& [node, components] : nodes_) {
    out += sformat("node %-10s\n", node.c_str());
    for (const auto& [comp, metrics] : components) {
      for (const auto& [name, c] : metrics.counters) {
        out += sformat("  %-12s %-24s %llu\n", comp.c_str(), name.c_str(),
                       static_cast<unsigned long long>(c.value()));
      }
      for (const auto& [name, g] : metrics.gauges) {
        out += sformat("  %-12s %-24s %.3f\n", comp.c_str(), name.c_str(),
                       g.value());
      }
      for (const auto& [name, h] : metrics.histograms) {
        out += sformat(
            "  %-12s %-24s count=%llu mean=%.1f min=%.1f max=%.1f\n",
            comp.c_str(), name.c_str(),
            static_cast<unsigned long long>(h.count()), h.mean(), h.min(),
            h.max());
      }
      for (const auto& [name, d] : metrics.digests) {
        out += sformat(
            "  %-12s %-24s count=%llu p50=%.1f p99=%.1f max=%.1f\n",
            comp.c_str(), name.c_str(),
            static_cast<unsigned long long>(d.count()), d.p50(), d.p99(),
            d.max());
      }
    }
  }
  return out;
}

Counter& MetricsRegistry::null_counter() {
  static Counter sink;
  return sink;
}

Gauge& MetricsRegistry::null_gauge() {
  static Gauge sink;
  return sink;
}

HistogramMetric& MetricsRegistry::null_histogram() {
  static HistogramMetric sink{std::vector<double>{1.0}};
  return sink;
}

util::PercentileDigest& MetricsRegistry::null_digest() {
  static util::PercentileDigest sink;
  return sink;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kClientCall: return "client";
    case SpanKind::kServerExec: return "server";
    case SpanKind::kInternal: return "internal";
  }
  return "?";
}

namespace {

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mix so consecutive
/// trace ids map to uniformly scattered hash values.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void Tracer::set_sample_rate(double rate) noexcept {
  rate = std::min(1.0, std::max(0.0, rate));
  sample_rate_ = rate;
  if (rate >= 1.0) {
    sample_threshold_ = ~0ull;
  } else {
    // rate * 2^64, computed as rate * 2^32 * 2^32 to stay in double range.
    sample_threshold_ = static_cast<uint64_t>(rate * 4294967296.0 * 4294967296.0);
  }
}

bool Tracer::sample_decision(uint64_t trace_id) const noexcept {
  if (sample_rate_ >= 1.0) return true;
  if (sample_rate_ <= 0.0) return false;
  return mix64(trace_id ^ sample_seed_) < sample_threshold_;
}

TraceContext Tracer::begin(TraceContext parent) {
  if (!enabled_) return TraceContext{};
  TraceContext ctx;
  ctx.tenant = parent.tenant;
  if (parent.valid()) {
    ctx.trace_id = parent.trace_id;
    ctx.sampled = parent.sampled;
  } else {
    ctx.trace_id = next_trace_++;
    ++traces_started_;
    ctx.sampled = sample_decision(ctx.trace_id);
    if (ctx.sampled) ++traces_sampled_;
  }
  ctx.span_id = next_span_++;
  return ctx;
}

void Tracer::record(Span span) {
  if (!enabled_ || span.trace_id == 0) return;
  ++spans_recorded_;
  if (span.kind == SpanKind::kClientCall) {
    ++rpc_hops_total_;
    auto it = hops_per_trace_.find(span.trace_id);
    if (it == hops_per_trace_.end()) {
      // A trace id above the eviction high-water mark is genuinely new; a
      // smaller one is a previously evicted trace resurfacing (counted once).
      if (span.trace_id > max_evicted_trace_) ++hop_traces_seen_;
      it = hops_per_trace_.emplace(span.trace_id, 0).first;
      while (hops_per_trace_.size() > hop_trace_capacity_) {
        auto oldest = hops_per_trace_.begin();
        if (oldest->first == span.trace_id) break;  // never evict the live one
        max_evicted_trace_ = std::max(max_evicted_trace_, oldest->first);
        hops_per_trace_.erase(oldest);
        ++hop_traces_evicted_;
      }
    }
    max_hops_ = std::max(max_hops_, ++it->second);
  }
  // Per-op SLO accounting covers every root span, sampled or not.
  if (span.parent_span_id == 0) {
    OpSlo& op = slo_[op_class(span.name)];
    ++op.requests;
    if (span.error) ++op.errors;
    const TimeNs latency = span.end - span.start;
    if (slo_threshold_ > 0 && latency > slo_threshold_) ++op.over_slo;
    op.latency_us.add(static_cast<double>(latency) * 1e-3);
  }
  span.sampled = sample_decision(span.trace_id);
  if (span.sampled) {
    retain(std::move(span));
  } else {
    stage(std::move(span));
  }
}

void Tracer::retain(Span span) {
  if (span_capacity_ == 0) {
    ++spans_dropped_;
    return;
  }
  while (spans_.size() >= span_capacity_) evict_oldest_retained();
  trace_index_[span.trace_id].push_back(spans_base_ + spans_.size());
  spans_.push_back(std::move(span));
}

void Tracer::evict_oldest_retained() {
  const Span& victim = spans_.front();
  auto it = trace_index_.find(victim.trace_id);
  if (it != trace_index_.end()) {
    // Spans of a trace are recorded (and indexed) in order, so the ring's
    // front is always the first entry of its trace's index vector.
    auto& positions = it->second;
    if (!positions.empty() && positions.front() == spans_base_) {
      positions.erase(positions.begin());
    }
    if (positions.empty()) trace_index_.erase(it);
  }
  spans_.pop_front();
  ++spans_base_;
  ++spans_dropped_;
}

void Tracer::stage(Span span) {
  // Trace already promoted (e.g. a retry child recorded after its errored
  // anchor root): keep the late detail with the rest of the trace.
  if (!promoted_.empty()) {
    const auto promoted_it = promoted_.find(span.trace_id);
    if (promoted_it != promoted_.end()) {
      span.promoted = true;
      promoted_it->second.push_back(std::move(span));
      ++promoted_span_count_;
      return;
    }
  }
  if (staging_capacity_ == 0) {
    ++spans_sampled_out_;
    return;
  }
  const bool is_root = span.parent_span_id == 0;
  size_t idx = staged_.size();
  for (size_t i = 0; i < staged_.size(); ++i) {
    if (staged_[i].trace_id == span.trace_id) {
      idx = i;
      break;
    }
  }
  if (idx == staged_.size()) {
    if (is_root) {
      // Root-only trace (no children staged): the tail verdict is
      // decidable right now — skip staging entirely.  This is the common
      // case for metadata-light ops and keeps near-zero sampling rates
      // near tracing-off cost.
      const TimeNs latency = span.end - span.start;
      const bool slow = slo_threshold_ > 0 && latency > slo_threshold_;
      if (!slow && !span.error) {
        ++spans_sampled_out_;
        return;
      }
      const uint64_t trace_id = span.trace_id;
      std::vector<Span> only = take_pooled_vector();
      only.push_back(std::move(span));
      promote_trace(trace_id, std::move(only));
      return;
    }
    staged_.push_back(StagedTrace{span.trace_id, take_pooled_vector()});
  }
  staged_[idx].spans.push_back(std::move(span));
  ++staged_span_count_;
  if (is_root) {
    finish_unsampled_trace(idx);
    return;
  }
  // Bound staging by evicting whole oldest traces (their roots never
  // arrived; their detail is lost to capacity, not to the verdict).
  while (staged_span_count_ > staging_capacity_ && !staged_.empty()) {
    StagedTrace& victim = staged_.front();
    staged_span_count_ -= victim.spans.size();
    spans_dropped_ += victim.spans.size();
    recycle_vector(std::move(victim.spans));
    staged_.erase(staged_.begin());
  }
}

void Tracer::finish_unsampled_trace(size_t staged_index) {
  StagedTrace& st = staged_[staged_index];
  const uint64_t trace_id = st.trace_id;
  bool any_error = false;
  for (const Span& s : st.spans) {
    if (s.error) {
      any_error = true;
      break;
    }
  }
  // The root is the finishing span — stage() appends it last.
  const Span& root = st.spans.back();
  const TimeNs latency = root.end - root.start;
  const bool slow = slo_threshold_ > 0 && latency > slo_threshold_;
  std::vector<Span> staged = std::move(st.spans);
  staged_span_count_ -= staged.size();
  staged_.erase(staged_.begin() + static_cast<ptrdiff_t>(staged_index));
  if (slow || any_error) {
    promote_trace(trace_id, std::move(staged));
  } else {
    spans_sampled_out_ += staged.size();
    recycle_vector(std::move(staged));
  }
}

std::vector<Span> Tracer::take_pooled_vector() {
  if (staging_pool_.empty()) return {};
  std::vector<Span> v = std::move(staging_pool_.back());
  staging_pool_.pop_back();
  return v;
}

void Tracer::recycle_vector(std::vector<Span> v) {
  if (staging_pool_.size() >= 64) return;
  v.clear();  // frees the Spans' strings, keeps the buffer
  staging_pool_.push_back(std::move(v));
}

void Tracer::promote_trace(uint64_t trace_id, std::vector<Span> staged) {
  ++traces_promoted_;
  auto& dest = promoted_[trace_id];
  promoted_order_.push_back(trace_id);
  for (Span& s : staged) {
    s.promoted = true;
    dest.push_back(std::move(s));
  }
  recycle_vector(std::move(staged));
  promoted_span_count_ += dest.size();
  // Keep promoted storage bounded too: drop whole oldest promoted traces.
  while (promoted_span_count_ > staging_capacity_ &&
         promoted_order_.size() > 1) {
    const uint64_t oldest = promoted_order_.front();
    if (oldest == trace_id) break;  // never drop the trace just promoted
    promoted_order_.pop_front();
    auto victim = promoted_.find(oldest);
    if (victim == promoted_.end()) continue;
    promoted_span_count_ -= victim->second.size();
    spans_dropped_ += victim->second.size();
    promoted_.erase(victim);
  }
}

std::string Tracer::op_class(const std::string& name) {
  // Client spans of timed-out calls carry a " timeout" suffix; the op class
  // must not fragment on outcome (the error flag carries that).
  static constexpr char kSuffix[] = " timeout";
  static constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  if (name.size() > kSuffixLen &&
      name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0) {
    return name.substr(0, name.size() - kSuffixLen);
  }
  return name;
}

double Tracer::mean_hops_per_trace() const noexcept {
  if (hop_traces_seen_ == 0) return 0.0;
  return static_cast<double>(rpc_hops_total_) /
         static_cast<double>(hop_traces_seen_);
}

uint32_t Tracer::max_hops_per_trace() const noexcept { return max_hops_; }

std::map<uint32_t, uint64_t> Tracer::hops_histogram() const {
  std::map<uint32_t, uint64_t> out;
  for (const auto& [trace, hops] : hops_per_trace_) ++out[hops];
  return out;
}

std::vector<Span> Tracer::trace_spans(uint64_t trace_id) const {
  std::vector<Span> out;
  const auto p = promoted_.find(trace_id);
  if (p != promoted_.end()) return p->second;
  const auto it = trace_index_.find(trace_id);
  if (it == trace_index_.end()) return out;
  out.reserve(it->second.size());
  for (const size_t abs : it->second) out.push_back(spans_[abs - spans_base_]);
  return out;
}

std::vector<Span> Tracer::retained_spans() const {
  std::vector<Span> out;
  out.reserve(spans_.size() + promoted_span_count_);
  out.insert(out.end(), spans_.begin(), spans_.end());
  for (const uint64_t trace_id : promoted_order_) {
    const auto it = promoted_.find(trace_id);
    if (it == promoted_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::string Tracer::to_json() const {
  std::string out = sformat(
      "{\"traces_started\": %llu, \"rpc_hops_total\": %llu, "
      "\"mean_hops_per_trace\": %s, \"max_hops_per_trace\": %u, "
      "\"spans_recorded\": %llu, \"spans_dropped\": %llu, "
      "\"sample_rate\": %s, \"traces_sampled\": %llu, "
      "\"traces_promoted\": %llu, \"spans_sampled_out\": %llu, "
      "\"hop_traces_seen\": %llu, \"hop_traces_evicted\": %llu, "
      "\"hop_histogram_complete\": %s, "
      "\"hops_histogram\": {",
      static_cast<unsigned long long>(traces_started_),
      static_cast<unsigned long long>(rpc_hops_total_),
      json_number(mean_hops_per_trace()).c_str(), max_hops_per_trace(),
      static_cast<unsigned long long>(spans_recorded_),
      static_cast<unsigned long long>(spans_dropped_),
      json_number(sample_rate_).c_str(),
      static_cast<unsigned long long>(traces_sampled_),
      static_cast<unsigned long long>(traces_promoted_),
      static_cast<unsigned long long>(spans_sampled_out_),
      static_cast<unsigned long long>(hop_traces_seen_),
      static_cast<unsigned long long>(hop_traces_evicted_),
      hop_traces_evicted_ == 0 ? "true" : "false");
  bool first = true;
  for (const auto& [hops, traces] : hops_histogram()) {
    if (!first) out += ", ";
    first = false;
    out += sformat("\"%u\": %llu", hops,
                   static_cast<unsigned long long>(traces));
  }
  out += "}}";
  return out;
}

std::string Tracer::slo_json() const {
  std::string out = sformat(
      "{\"slo_threshold_ns\": %lld, \"sample_rate\": %s, "
      "\"traces_started\": %llu, \"traces_sampled\": %llu, "
      "\"traces_promoted\": %llu, \"spans_sampled_out\": %llu, "
      "\"per_op\": {",
      static_cast<long long>(slo_threshold_),
      json_number(sample_rate_).c_str(),
      static_cast<unsigned long long>(traces_started_),
      static_cast<unsigned long long>(traces_sampled_),
      static_cast<unsigned long long>(traces_promoted_),
      static_cast<unsigned long long>(spans_sampled_out_));
  bool first = true;
  for (const auto& [op, s] : slo_) {
    if (!first) out += ", ";
    first = false;
    out += sformat(
        "\"%s\": {\"requests\": %llu, \"errors\": %llu, \"over_slo\": %llu, "
        "\"latency_us\": %s}",
        json_escape(op).c_str(),
        static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.errors),
        static_cast<unsigned long long>(s.over_slo),
        s.latency_us.to_json().c_str());
  }
  out += "}}";
  return out;
}

std::string Tracer::spans_json(size_t limit) const {
  std::string out = "[";
  size_t n = 0;
  for (const auto& s : retained_spans()) {
    if (n >= limit) break;
    if (n > 0) out += ", ";
    ++n;
    out += sformat(
        "{\"trace\": %llu, \"span\": %llu, \"parent\": %llu, "
        "\"kind\": \"%s\", \"name\": \"%s\", \"node\": \"%s\", "
        "\"start_ns\": %lld, \"end_ns\": %lld, \"queue_wait_ns\": %lld, "
        "\"bytes_out\": %llu, \"bytes_in\": %llu, "
        "\"send_wait_ns\": %lld, \"disk_ns\": %lld, "
        "\"error\": %s, \"sampled\": %s, \"promoted\": %s}",
        static_cast<unsigned long long>(s.trace_id),
        static_cast<unsigned long long>(s.span_id),
        static_cast<unsigned long long>(s.parent_span_id),
        span_kind_name(s.kind), json_escape(s.name).c_str(),
        json_escape(s.node).c_str(), static_cast<long long>(s.start),
        static_cast<long long>(s.end), static_cast<long long>(s.queue_wait),
        static_cast<unsigned long long>(s.bytes_out),
        static_cast<unsigned long long>(s.bytes_in),
        static_cast<long long>(s.send_wait), static_cast<long long>(s.disk),
        s.error ? "true" : "false", s.sampled ? "true" : "false",
        s.promoted ? "true" : "false");
  }
  out += "]";
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += sformat("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace dpnfs::obs
