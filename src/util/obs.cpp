#include "util/obs.hpp"

#include <algorithm>
#include <cmath>

#include "util/format.hpp"

namespace dpnfs::obs {

using util::sformat;

// ---------------------------------------------------------------------------
// HistogramMetric
// ---------------------------------------------------------------------------

HistogramMetric::HistogramMetric(std::vector<double> boundaries)
    : boundaries_(boundaries), hist_(std::move(boundaries)) {}

void HistogramMetric::observe(double value) {
  hist_.add(value);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

std::vector<double> latency_us_boundaries() {
  // 1us .. 10s in a 1/2/5 progression: fine enough to separate queue wait
  // from service time, coarse enough to stay 22 buckets.
  return {1,     2,     5,     10,    20,    50,    100,   200,
          500,   1e3,   2e3,   5e3,   1e4,   2e4,   5e4,   1e5,
          2e5,   5e5,   1e6,   2e6,   5e6,   1e7};
}

std::vector<double> size_bytes_boundaries() {
  return {512,        4096,        16384,       65536,      262144,
          1048576,    2097152,     4194304,     8388608,    16777216};
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& node,
                                  const std::string& component,
                                  const std::string& name) {
  return nodes_[node][component].counters[name];
}

Gauge& MetricsRegistry::gauge(const std::string& node,
                              const std::string& component,
                              const std::string& name) {
  return nodes_[node][component].gauges[name];
}

HistogramMetric& MetricsRegistry::histogram(const std::string& node,
                                            const std::string& component,
                                            const std::string& name,
                                            std::vector<double> boundaries) {
  auto& hists = nodes_[node][component].histograms;
  auto it = hists.find(name);
  if (it == hists.end()) {
    it = hists.emplace(name, HistogramMetric(std::move(boundaries))).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& node,
                                             const std::string& component,
                                             const std::string& name) const {
  const auto n = nodes_.find(node);
  if (n == nodes_.end()) return nullptr;
  const auto c = n->second.find(component);
  if (c == n->second.end()) return nullptr;
  const auto m = c->second.counters.find(name);
  return m == c->second.counters.end() ? nullptr : &m->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& node,
                                         const std::string& component,
                                         const std::string& name) const {
  const auto n = nodes_.find(node);
  if (n == nodes_.end()) return nullptr;
  const auto c = n->second.find(component);
  if (c == n->second.end()) return nullptr;
  const auto m = c->second.gauges.find(name);
  return m == c->second.gauges.end() ? nullptr : &m->second;
}

const HistogramMetric* MetricsRegistry::find_histogram(
    const std::string& node, const std::string& component,
    const std::string& name) const {
  const auto n = nodes_.find(node);
  if (n == nodes_.end()) return nullptr;
  const auto c = n->second.find(component);
  if (c == n->second.end()) return nullptr;
  const auto m = c->second.histograms.find(name);
  return m == c->second.histograms.end() ? nullptr : &m->second;
}

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  // %.17g round-trips doubles; trim the noise for integers.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return sformat("%.0f", v);
  }
  return sformat("%.17g", v);
}

std::string histogram_json(const HistogramMetric& h) {
  std::string out = sformat(
      "{\"count\": %llu, \"sum\": %s, \"mean\": %s, \"min\": %s, \"max\": %s, "
      "\"boundaries\": [",
      static_cast<unsigned long long>(h.count()), json_number(h.sum()).c_str(),
      json_number(h.mean()).c_str(), json_number(h.min()).c_str(),
      json_number(h.max()).c_str());
  for (size_t i = 0; i < h.boundaries().size(); ++i) {
    if (i > 0) out += ", ";
    out += json_number(h.boundaries()[i]);
  }
  out += "], \"counts\": [";
  for (size_t i = 0; i < h.buckets().bucket_count(); ++i) {
    if (i > 0) out += ", ";
    out += json_number(h.buckets().bucket_weight(i));
  }
  out += "]}";
  return out;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  bool first_node = true;
  for (const auto& [node, components] : nodes_) {
    if (!first_node) out += ", ";
    first_node = false;
    out += sformat("\"%s\": {", json_escape(node).c_str());
    bool first_comp = true;
    for (const auto& [comp, metrics] : components) {
      if (!first_comp) out += ", ";
      first_comp = false;
      out += sformat("\"%s\": {", json_escape(comp).c_str());
      out += "\"counters\": {";
      bool first = true;
      for (const auto& [name, c] : metrics.counters) {
        if (!first) out += ", ";
        first = false;
        out += sformat("\"%s\": %llu", json_escape(name).c_str(),
                       static_cast<unsigned long long>(c.value()));
      }
      out += "}, \"gauges\": {";
      first = true;
      for (const auto& [name, g] : metrics.gauges) {
        if (!first) out += ", ";
        first = false;
        out += sformat("\"%s\": %s", json_escape(name).c_str(),
                       json_number(g.value()).c_str());
      }
      out += "}, \"histograms\": {";
      first = true;
      for (const auto& [name, h] : metrics.histograms) {
        if (!first) out += ", ";
        first = false;
        out += sformat("\"%s\": %s", json_escape(name).c_str(),
                       histogram_json(h).c_str());
      }
      out += "}}";
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::report() const {
  std::string out;
  for (const auto& [node, components] : nodes_) {
    out += sformat("node %-10s\n", node.c_str());
    for (const auto& [comp, metrics] : components) {
      for (const auto& [name, c] : metrics.counters) {
        out += sformat("  %-12s %-24s %llu\n", comp.c_str(), name.c_str(),
                       static_cast<unsigned long long>(c.value()));
      }
      for (const auto& [name, g] : metrics.gauges) {
        out += sformat("  %-12s %-24s %.3f\n", comp.c_str(), name.c_str(),
                       g.value());
      }
      for (const auto& [name, h] : metrics.histograms) {
        out += sformat(
            "  %-12s %-24s count=%llu mean=%.1f min=%.1f max=%.1f\n",
            comp.c_str(), name.c_str(),
            static_cast<unsigned long long>(h.count()), h.mean(), h.min(),
            h.max());
      }
    }
  }
  return out;
}

Counter& MetricsRegistry::null_counter() {
  static Counter sink;
  return sink;
}

Gauge& MetricsRegistry::null_gauge() {
  static Gauge sink;
  return sink;
}

HistogramMetric& MetricsRegistry::null_histogram() {
  static HistogramMetric sink{std::vector<double>{1.0}};
  return sink;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kClientCall: return "client";
    case SpanKind::kServerExec: return "server";
    case SpanKind::kInternal: return "internal";
  }
  return "?";
}

TraceContext Tracer::begin(TraceContext parent) {
  if (!enabled_) return TraceContext{};
  TraceContext ctx;
  if (parent.valid()) {
    ctx.trace_id = parent.trace_id;
  } else {
    ctx.trace_id = next_trace_++;
    ++traces_started_;
  }
  ctx.span_id = next_span_++;
  return ctx;
}

void Tracer::record(Span span) {
  if (!enabled_ || span.trace_id == 0) return;
  ++spans_recorded_;
  if (span.kind == SpanKind::kClientCall) {
    ++rpc_hops_total_;
    auto it = hops_per_trace_.find(span.trace_id);
    if (it == hops_per_trace_.end()) {
      // A trace id above the eviction high-water mark is genuinely new; a
      // smaller one is a previously evicted trace resurfacing (counted once).
      if (span.trace_id > max_evicted_trace_) ++hop_traces_seen_;
      it = hops_per_trace_.emplace(span.trace_id, 0).first;
      while (hops_per_trace_.size() > hop_trace_capacity_) {
        auto oldest = hops_per_trace_.begin();
        if (oldest->first == span.trace_id) break;  // never evict the live one
        max_evicted_trace_ = std::max(max_evicted_trace_, oldest->first);
        hops_per_trace_.erase(oldest);
        ++hop_traces_evicted_;
      }
    }
    max_hops_ = std::max(max_hops_, ++it->second);
  }
  if (spans_.size() >= span_capacity_) {
    ++spans_dropped_;
    return;
  }
  trace_index_[span.trace_id].push_back(spans_.size());
  spans_.push_back(std::move(span));
}

double Tracer::mean_hops_per_trace() const noexcept {
  if (hop_traces_seen_ == 0) return 0.0;
  return static_cast<double>(rpc_hops_total_) /
         static_cast<double>(hop_traces_seen_);
}

uint32_t Tracer::max_hops_per_trace() const noexcept { return max_hops_; }

std::map<uint32_t, uint64_t> Tracer::hops_histogram() const {
  std::map<uint32_t, uint64_t> out;
  for (const auto& [trace, hops] : hops_per_trace_) ++out[hops];
  return out;
}

std::vector<Span> Tracer::trace_spans(uint64_t trace_id) const {
  std::vector<Span> out;
  const auto it = trace_index_.find(trace_id);
  if (it == trace_index_.end()) return out;
  out.reserve(it->second.size());
  for (const size_t idx : it->second) out.push_back(spans_[idx]);
  return out;
}

std::string Tracer::to_json() const {
  std::string out = sformat(
      "{\"traces_started\": %llu, \"rpc_hops_total\": %llu, "
      "\"mean_hops_per_trace\": %s, \"max_hops_per_trace\": %u, "
      "\"spans_recorded\": %llu, \"spans_dropped\": %llu, "
      "\"hop_traces_evicted\": %llu, "
      "\"hops_histogram\": {",
      static_cast<unsigned long long>(traces_started_),
      static_cast<unsigned long long>(rpc_hops_total_),
      json_number(mean_hops_per_trace()).c_str(), max_hops_per_trace(),
      static_cast<unsigned long long>(spans_recorded_),
      static_cast<unsigned long long>(spans_dropped_),
      static_cast<unsigned long long>(hop_traces_evicted_));
  bool first = true;
  for (const auto& [hops, traces] : hops_histogram()) {
    if (!first) out += ", ";
    first = false;
    out += sformat("\"%u\": %llu", hops,
                   static_cast<unsigned long long>(traces));
  }
  out += "}}";
  return out;
}

std::string Tracer::spans_json(size_t limit) const {
  std::string out = "[";
  size_t n = 0;
  for (const auto& s : spans_) {
    if (n >= limit) break;
    if (n > 0) out += ", ";
    ++n;
    out += sformat(
        "{\"trace\": %llu, \"span\": %llu, \"parent\": %llu, "
        "\"kind\": \"%s\", \"name\": \"%s\", \"node\": \"%s\", "
        "\"start_ns\": %lld, \"end_ns\": %lld, \"queue_wait_ns\": %lld, "
        "\"bytes_out\": %llu, \"bytes_in\": %llu, "
        "\"send_wait_ns\": %lld, \"disk_ns\": %lld}",
        static_cast<unsigned long long>(s.trace_id),
        static_cast<unsigned long long>(s.span_id),
        static_cast<unsigned long long>(s.parent_span_id),
        span_kind_name(s.kind), json_escape(s.name).c_str(),
        json_escape(s.node).c_str(), static_cast<long long>(s.start),
        static_cast<long long>(s.end), static_cast<long long>(s.queue_wait),
        static_cast<unsigned long long>(s.bytes_out),
        static_cast<unsigned long long>(s.bytes_in),
        static_cast<long long>(s.send_wait), static_cast<long long>(s.disk));
  }
  out += "]";
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += sformat("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace dpnfs::obs
