#include "util/stats.hpp"

#include "util/format.hpp"

#include <algorithm>
#include <cmath>

#include <limits>
#include <stdexcept>

namespace dpnfs::util {

void Summary::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_ = false;
}

double Summary::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank definition: smallest sample with cumulative frequency >= p.
  const auto n = samples_.size();
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  if (boundaries_.empty()) throw std::invalid_argument("empty histogram boundaries");
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    if (boundaries_[i] <= boundaries_[i - 1]) {
      throw std::invalid_argument("histogram boundaries must increase");
    }
  }
  counts_.assign(boundaries_.size() + 1, 0.0);
}

void Histogram::add(double value, double weight) {
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  counts_[static_cast<size_t>(it - boundaries_.begin())] += weight;
  total_ += weight;
}

double Histogram::cumulative_fraction_below(double value) const {
  if (total_ <= 0.0) return 0.0;
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  const auto limit = static_cast<size_t>(it - boundaries_.begin());
  double acc = 0.0;
  for (size_t i = 0; i <= limit && i < counts_.size(); ++i) acc += counts_[i];
  return acc / total_;
}

std::string Histogram::to_string() const {
  std::string out;
  double lo = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double hi = (i < boundaries_.size())
                          ? boundaries_[i]
                          : std::numeric_limits<double>::infinity();
    out += sformat("[%12.3g, %12.3g): %g\n", lo, hi, counts_[i]);
    lo = hi;
  }
  return out;
}

}  // namespace dpnfs::util
