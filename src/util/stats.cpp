#include "util/stats.hpp"

#include "util/format.hpp"

#include <algorithm>
#include <cmath>

#include <limits>
#include <stdexcept>

namespace dpnfs::util {

void Summary::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_ = false;
}

double Summary::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank definition: smallest sample with cumulative frequency >= p.
  const auto n = samples_.size();
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

size_t PercentileDigest::bucket_of(double value) noexcept {
  if (!(value > 0.0) || !std::isfinite(value)) return 0;
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // frac in [0.5, 1)
  if (exp < kMinExp) return 0;
  if (exp > kMaxExp) return kBucketCount - 1;
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return static_cast<size_t>(exp - kMinExp) * kSubBuckets +
         static_cast<size_t>(sub);
}

double PercentileDigest::bucket_mid(size_t bucket) noexcept {
  const int exp = static_cast<int>(bucket / kSubBuckets) + kMinExp;
  const int sub = static_cast<int>(bucket % kSubBuckets);
  const double frac =
      0.5 + (static_cast<double>(sub) + 0.5) / (2.0 * kSubBuckets);
  return std::ldexp(frac, exp);
}

void PercentileDigest::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[bucket_of(value)];
}

void PercentileDigest::merge(const PercentileDigest& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
}

double PercentileDigest::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::min(max_, std::max(min_, bucket_mid(i)));
    }
  }
  return max_;
}

std::string PercentileDigest::to_json() const {
  const auto num = [](double v) {
    if (!std::isfinite(v)) return std::string("0");
    if (v == std::floor(v) && std::abs(v) < 1e15) return sformat("%.0f", v);
    return sformat("%.17g", v);
  };
  return sformat(
      "{\"count\": %llu, \"sum\": %s, \"mean\": %s, \"min\": %s, "
      "\"max\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s, \"p999\": %s}",
      static_cast<unsigned long long>(count_), num(sum_).c_str(),
      num(mean()).c_str(), num(min()).c_str(), num(max()).c_str(),
      num(p50()).c_str(), num(p90()).c_str(), num(p99()).c_str(),
      num(p999()).c_str());
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  if (boundaries_.empty()) throw std::invalid_argument("empty histogram boundaries");
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    if (boundaries_[i] <= boundaries_[i - 1]) {
      throw std::invalid_argument("histogram boundaries must increase");
    }
  }
  counts_.assign(boundaries_.size() + 1, 0.0);
}

void Histogram::add(double value, double weight) {
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  counts_[static_cast<size_t>(it - boundaries_.begin())] += weight;
  total_ += weight;
}

double Histogram::cumulative_fraction_below(double value) const {
  if (total_ <= 0.0) return 0.0;
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  const auto limit = static_cast<size_t>(it - boundaries_.begin());
  double acc = 0.0;
  for (size_t i = 0; i <= limit && i < counts_.size(); ++i) acc += counts_[i];
  return acc / total_;
}

std::string Histogram::to_string() const {
  std::string out;
  double lo = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double hi = (i < boundaries_.size())
                          ? boundaries_[i]
                          : std::numeric_limits<double>::infinity();
    out += sformat("[%12.3g, %12.3g): %g\n", lo, hi, counts_[i]);
    lo = hi;
  }
  return out;
}

}  // namespace dpnfs::util
