// Streaming statistics helpers used by the workload runners and benches.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dpnfs::util {

/// Accumulates a stream of samples and answers summary queries.
///
/// Keeps every sample (workload runs produce at most a few hundred thousand
/// latency samples), so exact percentiles are available.
class Summary {
 public:
  void add(double sample);

  size_t count() const noexcept { return samples_.size(); }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double stddev() const noexcept;
  /// Exact percentile by nearest-rank; `p` in [0, 100].
  double percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// Fixed-memory streaming percentile digest (HDR-histogram style).
///
/// Buckets are log-spaced: one major bucket per power of two, split into
/// `kSubBuckets` linear sub-buckets, so every bucket's width is at most
/// `relative_error()` of its value.  Memory is a fixed ~12 KB regardless of
/// sample count, `add` is O(1) with no allocation, and two digests over
/// disjoint streams `merge` into the digest of the combined stream —
/// unlike `Summary`, which keeps every sample and is unbounded on hot
/// paths.  Quantiles use the same nearest-rank definition as `Summary`, so
/// the two agree within one bucket width on any distribution.
class PercentileDigest {
 public:
  void add(double value) noexcept;
  void merge(const PercentileDigest& other) noexcept;

  uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Nearest-rank quantile; `q` in [0, 1].  The answer is the midpoint of
  /// the bucket holding the rank, clamped into [min(), max()], so it is
  /// within `relative_error()` of the exact sample.
  double quantile(double q) const noexcept;
  double p50() const noexcept { return quantile(0.50); }
  double p90() const noexcept { return quantile(0.90); }
  double p99() const noexcept { return quantile(0.99); }
  double p999() const noexcept { return quantile(0.999); }

  /// Worst-case relative half-width of a bucket: quantiles are within this
  /// fraction of the exact nearest-rank sample.
  static constexpr double relative_error() {
    return 1.0 / static_cast<double>(kSubBuckets);
  }

  /// {"count": N, "sum": x, "mean": x, "min": x, "max": x,
  ///  "p50": x, "p90": x, "p99": x, "p999": x}
  std::string to_json() const;

 private:
  // 2^kSubBits linear sub-buckets per power of two: 6.25% bucket width.
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr int kMinExp = -30;  // ~1e-9: below this, bucket 0
  static constexpr int kMaxExp = 64;   // ~1.8e19: above this, last bucket
  static constexpr size_t kBucketCount =
      static_cast<size_t>(kMaxExp - kMinExp + 1) * kSubBuckets;

  static size_t bucket_of(double value) noexcept;
  static double bucket_mid(size_t bucket) noexcept;

  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-boundary histogram for request-size / latency distributions.
class Histogram {
 public:
  /// `boundaries` must be strictly increasing; bucket i covers
  /// [boundaries[i-1], boundaries[i]) with an implicit final overflow bucket.
  explicit Histogram(std::vector<double> boundaries);

  void add(double value, double weight = 1.0);

  size_t bucket_count() const noexcept { return counts_.size(); }
  double bucket_weight(size_t i) const { return counts_.at(i); }
  double total_weight() const noexcept { return total_; }
  /// Fraction of total weight at or below `value`'s bucket upper bound.
  double cumulative_fraction_below(double value) const;

  std::string to_string() const;

 private:
  std::vector<double> boundaries_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace dpnfs::util
