// Streaming statistics helpers used by the workload runners and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dpnfs::util {

/// Accumulates a stream of samples and answers summary queries.
///
/// Keeps every sample (workload runs produce at most a few hundred thousand
/// latency samples), so exact percentiles are available.
class Summary {
 public:
  void add(double sample);

  size_t count() const noexcept { return samples_.size(); }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double stddev() const noexcept;
  /// Exact percentile by nearest-rank; `p` in [0, 100].
  double percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// Fixed-boundary histogram for request-size / latency distributions.
class Histogram {
 public:
  /// `boundaries` must be strictly increasing; bucket i covers
  /// [boundaries[i-1], boundaries[i]) with an implicit final overflow bucket.
  explicit Histogram(std::vector<double> boundaries);

  void add(double value, double weight = 1.0);

  size_t bucket_count() const noexcept { return counts_.size(); }
  double bucket_weight(size_t i) const { return counts_.at(i); }
  double total_weight() const noexcept { return total_; }
  /// Fraction of total weight at or below `value`'s bucket upper bound.
  double cumulative_fraction_below(double value) const;

  std::string to_string() const;

 private:
  std::vector<double> boundaries_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace dpnfs::util
