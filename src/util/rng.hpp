// Deterministic pseudo-random source for workload generators.
//
// Workloads must be reproducible across runs and architectures: the same
// seed must generate the same request stream regardless of scheduling.  Each
// simulated client therefore owns its own Rng, derived from (seed, client id).
#pragma once

#include <cstdint>
#include <random>

namespace dpnfs::util {

/// Deterministic 64-bit generator (SplitMix64 core).
///
/// SplitMix64 is tiny, fast, passes BigCrush, and — unlike std::mt19937 —
/// has a trivially documented cross-platform output sequence.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Derives an independent stream for a sub-entity (e.g. client index).
  Rng fork(uint64_t stream_id) { return Rng(next() ^ (stream_id * 0xBF58476D1CE4E5B9ULL)); }

  uint64_t next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).  `bound` must be nonzero.
  uint64_t below(uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t range(uint64_t lo, uint64_t hi) { return lo + below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability `p`.
  bool chance(double p) { return uniform() < p; }

 private:
  uint64_t state_;
};

}  // namespace dpnfs::util
