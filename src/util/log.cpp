#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dpnfs::util {
namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("DPNFS_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

LogLevel& threshold_ref() {
  static LogLevel level = parse_env_level();
  return level;
}

LogSink& sink_ref() {
  static LogSink sink;
  return sink;
}

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() noexcept { return threshold_ref(); }

void set_log_threshold(LogLevel level) noexcept { threshold_ref() = level; }

LogSink set_log_sink(LogSink sink) {
  LogSink previous = std::move(sink_ref());
  sink_ref() = std::move(sink);
  return previous;
}

void log_line(LogLevel level, std::string_view component, int64_t sim_time_ns,
              std::string_view message) {
  if (level >= LogLevel::kWarn && level < LogLevel::kOff && sink_ref()) {
    sink_ref()(level, component, sim_time_ns, message);
  }
  if (level < log_threshold()) return;
  if (sim_time_ns >= 0) {
    std::fprintf(stderr, "%s [%12.6fs] %.*s: %.*s\n", level_name(level),
                 static_cast<double>(sim_time_ns) * 1e-9,
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  } else {
    std::fprintf(stderr, "%s %.*s: %.*s\n", level_name(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  }
}

void logf(LogLevel level, std::string_view component, int64_t sim_time_ns,
          const char* fmt, ...) {
  // Format when either the stderr threshold passes *or* a WARN+ sink wants
  // the line (flight recording is independent of the print threshold).
  const bool sink_wants =
      level >= LogLevel::kWarn && level < LogLevel::kOff && sink_ref();
  if (level < log_threshold() && !sink_wants) return;
  va_list args;
  va_start(args, fmt);
  const std::string msg = vsformat(fmt, args);
  va_end(args);
  log_line(level, component, sim_time_ns, msg);
}

}  // namespace dpnfs::util
