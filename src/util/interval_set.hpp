// Disjoint half-open interval set over uint64_t offsets.
//
// Used for byte-range bookkeeping throughout the stack: dirty ranges in the
// object store, cached ranges in the client page cache, poisoned (virtual)
// content ranges, and layout segment coverage.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

namespace dpnfs::util {

class IntervalSet {
 public:
  struct Interval {
    uint64_t start;
    uint64_t end;  // exclusive

    uint64_t length() const noexcept { return end - start; }
    bool operator==(const Interval&) const = default;
  };

  /// Adds [start, end), merging with neighbours.
  void add(uint64_t start, uint64_t end) {
    check(start, end);
    if (start == end) return;
    // Find the first interval that could merge: any interval whose end >=
    // start.  Merge all intervals overlapping or adjacent to [start, end).
    auto it = map_.lower_bound(start);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) it = prev;
    }
    while (it != map_.end() && it->first <= end) {
      start = std::min(start, it->first);
      end = std::max(end, it->second);
      total_ -= it->second - it->first;
      it = map_.erase(it);
    }
    map_.emplace(start, end);
    total_ += end - start;
  }

  /// Removes [start, end), splitting intervals as needed.
  void subtract(uint64_t start, uint64_t end) {
    check(start, end);
    if (start == end) return;
    auto it = map_.lower_bound(start);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > start) it = prev;
    }
    while (it != map_.end() && it->first < end) {
      const uint64_t is = it->first;
      const uint64_t ie = it->second;
      total_ -= ie - is;
      it = map_.erase(it);
      if (is < start) {
        map_.emplace(is, start);
        total_ += start - is;
      }
      if (ie > end) {
        map_.emplace(end, ie);
        total_ += ie - end;
        break;
      }
    }
  }

  /// True if every byte of [start, end) is present.
  bool covers(uint64_t start, uint64_t end) const {
    check(start, end);
    if (start == end) return true;
    auto it = map_.upper_bound(start);
    if (it == map_.begin()) return false;
    --it;
    return it->first <= start && it->second >= end;
  }

  /// True if any byte of [start, end) is present.
  bool intersects(uint64_t start, uint64_t end) const {
    check(start, end);
    if (start == end) return false;
    auto it = map_.lower_bound(start);
    if (it != map_.end() && it->first < end) return true;
    if (it == map_.begin()) return false;
    --it;
    return it->second > start;
  }

  /// The intersection of the set with [start, end), in order.
  std::vector<Interval> intersection(uint64_t start, uint64_t end) const {
    check(start, end);
    std::vector<Interval> out;
    if (start == end) return out;
    auto it = map_.upper_bound(start);
    if (it != map_.begin() && std::prev(it)->second > start) --it;
    for (; it != map_.end() && it->first < end; ++it) {
      out.push_back(Interval{std::max(start, it->first), std::min(end, it->second)});
    }
    return out;
  }

  /// The sub-ranges of [start, end) NOT present in the set, in order.
  std::vector<Interval> gaps(uint64_t start, uint64_t end) const {
    std::vector<Interval> out;
    uint64_t cursor = start;
    for (const Interval& hit : intersection(start, end)) {
      if (hit.start > cursor) out.push_back(Interval{cursor, hit.start});
      cursor = hit.end;
    }
    if (cursor < end) out.push_back(Interval{cursor, end});
    return out;
  }

  bool empty() const noexcept { return map_.empty(); }
  size_t interval_count() const noexcept { return map_.size(); }

  /// O(1): maintained incrementally by add/subtract.
  uint64_t total_length() const noexcept { return total_; }

  std::vector<Interval> intervals() const {
    std::vector<Interval> out;
    out.reserve(map_.size());
    for (const auto& [s, e] : map_) out.push_back(Interval{s, e});
    return out;
  }

  void clear() noexcept {
    map_.clear();
    total_ = 0;
  }

 private:
  static void check(uint64_t start, uint64_t end) {
    if (start > end) throw std::invalid_argument("interval start > end");
  }

  std::map<uint64_t, uint64_t> map_;  // start -> end
  uint64_t total_ = 0;
};

}  // namespace dpnfs::util
