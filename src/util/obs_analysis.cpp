#include "util/obs_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "util/format.hpp"

namespace dpnfs::obs {

using util::sformat;

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 1e15) return sformat("%.0f", v);
  return sformat("%.17g", v);
}

// ---------------------------------------------------------------------------
// Interval arithmetic
//
// An Intervals list is disjoint, sorted, half-open [lo, hi).  The attribution
// walk partitions the root interval among the span tree: each child claims
// (owned ∩ its extended interval), earliest-starting child first, so no
// nanosecond is counted twice even when siblings overlap (stripe fan-out).
// ---------------------------------------------------------------------------

struct Interval {
  TimeNs lo = 0;
  TimeNs hi = 0;
};
using Intervals = std::vector<Interval>;

Intervals clip(const Intervals& a, Interval b) {
  Intervals out;
  for (const auto& iv : a) {
    const TimeNs lo = std::max(iv.lo, b.lo);
    const TimeNs hi = std::min(iv.hi, b.hi);
    if (lo < hi) out.push_back({lo, hi});
  }
  return out;
}

Intervals subtract(const Intervals& a, Interval b) {
  Intervals out;
  for (const auto& iv : a) {
    if (iv.hi <= b.lo || iv.lo >= b.hi) {
      out.push_back(iv);
      continue;
    }
    if (iv.lo < b.lo) out.push_back({iv.lo, b.lo});
    if (iv.hi > b.hi) out.push_back({b.hi, iv.hi});
  }
  return out;
}

TimeNs total_len(const Intervals& a) {
  TimeNs n = 0;
  for (const auto& iv : a) n += iv.hi - iv.lo;
  return n;
}

// ---------------------------------------------------------------------------
// Attribution walk
// ---------------------------------------------------------------------------

/// A span's claim on its parent's time.  Server spans claim from enqueue
/// (start - queue_wait) so the queue residency is attributed to them, not
/// left looking like wire time in the parent.
Interval extended(const Span& s) {
  TimeNs lo = s.start;
  if (s.kind == SpanKind::kServerExec) lo -= std::max<TimeNs>(s.queue_wait, 0);
  return {lo, std::max(s.end, lo)};
}

class Attribution {
 public:
  explicit Attribution(const std::vector<Span>& spans) {
    for (const Span& s : spans) by_id_.emplace(s.span_id, &s);
    for (const Span& s : spans) {
      if (s.parent_span_id != 0 && by_id_.count(s.parent_span_id)) {
        kids_[s.parent_span_id].push_back(&s);
      } else {
        roots_.push_back(&s);
      }
    }
    for (auto& [id, v] : kids_) {
      std::sort(v.begin(), v.end(), [](const Span* a, const Span* b) {
        return a->start != b->start ? a->start < b->start
                                    : a->span_id < b->span_id;
      });
    }
  }

  TraceBreakdown run(const std::vector<Span>& spans) {
    TraceBreakdown out;
    const Span* root = pick_root();
    if (root == nullptr) return out;
    out.trace_id = root->trace_id;
    out.root_op = root->name;
    out.root_node = root->node;
    out.start = root->start;
    out.end = std::max(root->end, root->start);
    for (const Span& s : spans) {
      if (s.kind == SpanKind::kClientCall) ++out.hops;
    }
    walk(*root, Intervals{{out.start, out.end}});
    out.phases = phases_;
    out.well_formed = ok_ && roots_.size() == 1;
    return out;
  }

 private:
  const Span* pick_root() const {
    // Prefer client-call roots (application RPCs); among candidates the
    // earliest start wins so the breakdown covers the whole request.
    const Span* best = nullptr;
    for (const Span* r : roots_) {
      if (best == nullptr) {
        best = r;
        continue;
      }
      const bool r_client = r->kind == SpanKind::kClientCall;
      const bool b_client = best->kind == SpanKind::kClientCall;
      if (r_client != b_client) {
        if (r_client) best = r;
        continue;
      }
      if (r->start < best->start ||
          (r->start == best->start && r->span_id < best->span_id)) {
        best = r;
      }
    }
    return best;
  }

  void walk(const Span& s, Intervals owned) {
    if (!visited_.insert(s.span_id).second || ++depth_ > 512) {
      ok_ = false;  // cyclic parentage or absurd depth: stop, keep best effort
      return;
    }
    Intervals avail = std::move(owned);
    std::vector<std::pair<const Span*, Intervals>> kid_owned;
    if (const auto kit = kids_.find(s.span_id); kit != kids_.end()) {
      for (const Span* k : kit->second) {
        const Interval e = extended(*k);
        Intervals ki = clip(avail, e);
        if (!ki.empty()) avail = subtract(avail, e);
        kid_owned.emplace_back(k, std::move(ki));
      }
    }
    classify(s, avail, kid_owned);
    for (auto& [k, ki] : kid_owned) walk(*k, std::move(ki));
    --depth_;
  }

  /// Attributes the segments no child claimed.
  void classify(const Span& s, const Intervals& segments,
                const std::vector<std::pair<const Span*, Intervals>>& kids) {
    switch (s.kind) {
      case SpanKind::kClientCall: {
        // The latest server-exec child marks the request/reply boundary;
        // leading time is the request on the wire, trailing time the reply.
        const Span* se = nullptr;
        for (const auto& [k, ki] : kids) {
          if (k->kind == SpanKind::kServerExec &&
              (se == nullptr || k->start > se->start)) {
            se = k;
          }
        }
        TimeNs req = 0, rep = 0, oth = 0;
        for (const auto& iv : segments) {
          if (se == nullptr) {
            // No server execution seen (timed-out attempt, retry backoff,
            // or the server span fell to capacity): unattributable.
            oth += iv.hi - iv.lo;
            continue;
          }
          const Interval e = extended(*se);
          const TimeNs before = std::max<TimeNs>(
              0, std::min(iv.hi, e.lo) - iv.lo);
          const TimeNs after = std::max<TimeNs>(
              0, iv.hi - std::max(iv.lo, e.hi));
          req += before;
          rep += after;
          oth += (iv.hi - iv.lo) - before - after;
        }
        // The leading chunk of "request wire" that was really spent queued
        // behind the sender NIC is client queue, not wire.
        const TimeNs cq =
            std::min(std::max<TimeNs>(s.send_wait, 0), req);
        phases_.client_queue += cq;
        phases_.request_wire += req - cq;
        phases_.reply_wire += rep;
        phases_.other += oth;
        break;
      }
      case SpanKind::kServerExec: {
        // Owned time before `start` is queue residency (the extended
        // interval begins at enqueue); the rest is service execution.
        for (const auto& iv : segments) {
          const TimeNs queued =
              std::max<TimeNs>(0, std::min(iv.hi, s.start) - iv.lo);
          phases_.server_queue += queued;
          phases_.service_cpu += (iv.hi - iv.lo) - queued;
        }
        break;
      }
      case SpanKind::kInternal: {
        // Store spans carry measured disk time; the remainder is CPU-side
        // store work (cache copies, marshalling).
        const TimeNs excl = total_len(segments);
        const TimeNs d = std::min(std::max<TimeNs>(s.disk, 0), excl);
        phases_.disk += d;
        phases_.service_cpu += excl - d;
        break;
      }
    }
  }

  std::unordered_map<uint64_t, const Span*> by_id_;
  std::unordered_map<uint64_t, std::vector<const Span*>> kids_;
  std::vector<const Span*> roots_;
  std::unordered_set<uint64_t> visited_;
  PhaseBreakdown phases_;
  bool ok_ = true;
  int depth_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// PhaseBreakdown / BreakdownReport
// ---------------------------------------------------------------------------

void PhaseBreakdown::add(const PhaseBreakdown& o) noexcept {
  client_queue += o.client_queue;
  request_wire += o.request_wire;
  server_queue += o.server_queue;
  service_cpu += o.service_cpu;
  disk += o.disk;
  reply_wire += o.reply_wire;
  other += o.other;
}

std::string PhaseBreakdown::to_json() const {
  return sformat(
      "{\"client_queue\": %lld, \"request_wire\": %lld, "
      "\"server_queue\": %lld, \"service_cpu\": %lld, \"disk\": %lld, "
      "\"reply_wire\": %lld, \"other\": %lld}",
      static_cast<long long>(client_queue),
      static_cast<long long>(request_wire),
      static_cast<long long>(server_queue),
      static_cast<long long>(service_cpu), static_cast<long long>(disk),
      static_cast<long long>(reply_wire), static_cast<long long>(other));
}

TraceBreakdown analyze_trace(const std::vector<Span>& spans) {
  if (spans.empty()) return TraceBreakdown{};
  Attribution a(spans);
  return a.run(spans);
}

double BreakdownReport::wire_queue_share() const noexcept {
  if (total_ns <= 0) return 0.0;
  return static_cast<double>(phases.wire_and_queue()) /
         static_cast<double>(total_ns);
}

std::string BreakdownReport::to_json(const std::string& architecture) const {
  std::string out = sformat(
      "{\"architecture\": \"%s\", \"traces_analyzed\": %llu, "
      "\"traces_skipped\": %llu, \"total_ns\": %lld, "
      "\"wire_queue_share\": %s, \"phases_ns\": %s, \"per_op\": {",
      json_escape(architecture).c_str(),
      static_cast<unsigned long long>(traces_analyzed),
      static_cast<unsigned long long>(traces_skipped),
      static_cast<long long>(total_ns),
      json_number(wire_queue_share()).c_str(), phases.to_json().c_str());
  bool first = true;
  for (const auto& [op, b] : per_op) {
    if (!first) out += ", ";
    first = false;
    const double mean_ns =
        b.count == 0 ? 0.0
                     : static_cast<double>(b.total_ns) /
                           static_cast<double>(b.count);
    const double mean_hops =
        b.count == 0 ? 0.0
                     : static_cast<double>(b.hops) /
                           static_cast<double>(b.count);
    out += sformat(
        "\"%s\": {\"count\": %llu, \"total_ns\": %lld, \"mean_ns\": %s, "
        "\"hops\": %llu, \"mean_hops\": %s, \"phases_ns\": %s}",
        json_escape(op).c_str(), static_cast<unsigned long long>(b.count),
        static_cast<long long>(b.total_ns), json_number(mean_ns).c_str(),
        static_cast<unsigned long long>(b.hops),
        json_number(mean_hops).c_str(), b.phases.to_json().c_str());
  }
  out += "}}";
  return out;
}

std::string BreakdownReport::report() const {
  std::string out = sformat(
      "critical-path attribution: %llu traces analyzed, %llu skipped\n",
      static_cast<unsigned long long>(traces_analyzed),
      static_cast<unsigned long long>(traces_skipped));
  const double tot = total_ns > 0 ? static_cast<double>(total_ns) : 1.0;
  const auto line = [&](const char* name, TimeNs v) {
    out += sformat("  %-14s %12.3f ms  %5.1f%%\n", name, v / 1e6,
                   100.0 * static_cast<double>(v) / tot);
  };
  line("client_queue", phases.client_queue);
  line("request_wire", phases.request_wire);
  line("server_queue", phases.server_queue);
  line("service_cpu", phases.service_cpu);
  line("disk", phases.disk);
  line("reply_wire", phases.reply_wire);
  line("other", phases.other);
  out += sformat("  %-14s %12.3f ms\n", "end-to-end", total_ns / 1e6);
  for (const auto& [op, b] : per_op) {
    const double mean_us =
        b.count == 0 ? 0.0 : static_cast<double>(b.total_ns) / 1e3 /
                                 static_cast<double>(b.count);
    const double mean_hops =
        b.count == 0 ? 0.0 : static_cast<double>(b.hops) /
                                 static_cast<double>(b.count);
    const double op_tot =
        b.total_ns > 0 ? static_cast<double>(b.total_ns) : 1.0;
    out += sformat(
        "  op %-12s count=%llu mean_us=%.1f hops/trace=%.2f "
        "wire+queue=%.1f%% disk=%.1f%%\n",
        op.c_str(), static_cast<unsigned long long>(b.count), mean_us,
        mean_hops,
        100.0 * static_cast<double>(b.phases.wire_and_queue()) / op_tot,
        100.0 * static_cast<double>(b.phases.disk) / op_tot);
  }
  return out;
}

BreakdownReport analyze_all(const Tracer& tracer) {
  // Bucket retained spans by trace, preserving recording order (sampled
  // ring plus tail-promoted traces).
  std::map<uint64_t, std::vector<Span>> traces;
  for (const Span& s : tracer.retained_spans()) traces[s.trace_id].push_back(s);
  BreakdownReport rep;
  for (const auto& [id, spans] : traces) {
    const TraceBreakdown tb = analyze_trace(spans);
    if (tb.trace_id == 0) {
      ++rep.traces_skipped;
      continue;
    }
    ++rep.traces_analyzed;
    rep.total_ns += tb.total();
    rep.phases.add(tb.phases);
    OpBreakdown& op = rep.per_op[tb.root_op];
    ++op.count;
    op.total_ns += tb.total();
    op.hops += tb.hops;
    op.phases.add(tb.phases);
  }
  return rep;
}

// ---------------------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------------------

void TimeSeries::add(const std::string& node, const std::string& name,
                     TimeNs t, double value) {
  series_[node][name].push_back(Sample{t, value});
  ++sample_count_;
}

std::string TimeSeries::to_json() const {
  std::string out = "{";
  bool first_node = true;
  for (const auto& [node, by_name] : series_) {
    if (!first_node) out += ", ";
    first_node = false;
    out += sformat("\"%s\": {", json_escape(node).c_str());
    bool first_name = true;
    for (const auto& [name, samples] : by_name) {
      if (!first_name) out += ", ";
      first_name = false;
      out += sformat("\"%s\": [", json_escape(name).c_str());
      for (size_t i = 0; i < samples.size(); ++i) {
        if (i > 0) out += ", ";
        out += sformat("[%lld, %s]", static_cast<long long>(samples[i].t),
                       json_number(samples[i].value).c_str());
      }
      out += "]";
    }
    out += "}";
  }
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// TraceExporter
// ---------------------------------------------------------------------------

namespace {

std::string ts_us(TimeNs ns) { return sformat("%.3f", ns / 1000.0); }

/// "nfs/38" -> "nfs"; free-form names pass through.
std::string component_of(const std::string& name) {
  const size_t slash = name.find('/');
  return slash == std::string::npos ? name : name.substr(0, slash);
}

}  // namespace

std::string TraceExporter::to_chrome_json(const Tracer& tracer,
                                          const std::string& architecture,
                                          const TimeSeries* series) {
  // pid per node (first-seen order), tid per (node, "kind component") lane —
  // Perfetto renders each simulated machine as a process with one track per
  // daemon role.
  std::map<std::string, int> pids;
  std::map<std::pair<int, std::string>, int> tids;
  std::map<int, int> next_tid;
  std::string meta;
  std::string events;
  const auto pid_of = [&](const std::string& node) {
    auto it = pids.find(node);
    if (it == pids.end()) {
      const int pid = static_cast<int>(pids.size()) + 1;
      it = pids.emplace(node, pid).first;
      meta += sformat(
          "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %d, "
          "\"args\": {\"name\": \"%s\"}},\n",
          pid, json_escape(node).c_str());
    }
    return it->second;
  };
  const auto tid_of = [&](int pid, const std::string& lane) {
    auto it = tids.find({pid, lane});
    if (it == tids.end()) {
      const int tid = ++next_tid[pid];
      it = tids.emplace(std::make_pair(pid, lane), tid).first;
      meta += sformat(
          "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": %d, "
          "\"tid\": %d, \"args\": {\"name\": \"%s\"}},\n",
          pid, tid, json_escape(lane).c_str());
    }
    return it->second;
  };

  const std::vector<Span> retained = tracer.retained_spans();
  std::unordered_map<uint64_t, const Span*> by_id;
  for (const Span& s : retained) by_id.emplace(s.span_id, &s);
  const auto locate = [&](const Span& s) {
    const int pid = pid_of(s.node);
    const std::string lane =
        std::string(span_kind_name(s.kind)) + " " + component_of(s.name);
    return std::make_pair(pid, tid_of(pid, lane));
  };

  for (const Span& s : retained) {
    const auto [pid, tid] = locate(s);
    events += sformat(
        "{\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"%s\", \"pid\": %d, "
        "\"tid\": %d, \"ts\": %s, \"dur\": %s, \"args\": {\"trace\": %llu, "
        "\"span\": %llu, \"parent\": %llu, \"queue_wait_ns\": %lld, "
        "\"send_wait_ns\": %lld, \"disk_ns\": %lld, \"bytes_out\": %llu, "
        "\"bytes_in\": %llu, \"sampled\": %d, \"promoted\": %d}},\n",
        json_escape(s.name).c_str(), span_kind_name(s.kind), pid, tid,
        ts_us(s.start).c_str(),
        ts_us(std::max<TimeNs>(0, s.end - s.start)).c_str(),
        static_cast<unsigned long long>(s.trace_id),
        static_cast<unsigned long long>(s.span_id),
        static_cast<unsigned long long>(s.parent_span_id),
        static_cast<long long>(s.queue_wait),
        static_cast<long long>(s.send_wait), static_cast<long long>(s.disk),
        static_cast<unsigned long long>(s.bytes_out),
        static_cast<unsigned long long>(s.bytes_in),
        s.sampled ? 1 : 0, s.promoted ? 1 : 0);
    // Parent edge as a flow arrow (span nesting crosses nodes, so slice
    // nesting alone can't show it).
    if (s.parent_span_id != 0) {
      const auto pit = by_id.find(s.parent_span_id);
      if (pit != by_id.end()) {
        const Span& p = *pit->second;
        const auto [ppid, ptid] = locate(p);
        const TimeNs from =
            std::min(std::max(s.start, p.start), std::max(p.start, p.end));
        events += sformat(
            "{\"ph\": \"s\", \"id\": %llu, \"name\": \"parent\", "
            "\"cat\": \"flow\", \"pid\": %d, \"tid\": %d, \"ts\": %s},\n",
            static_cast<unsigned long long>(s.span_id), ppid, ptid,
            ts_us(from).c_str());
        events += sformat(
            "{\"ph\": \"f\", \"bp\": \"e\", \"id\": %llu, "
            "\"name\": \"parent\", \"cat\": \"flow\", \"pid\": %d, "
            "\"tid\": %d, \"ts\": %s},\n",
            static_cast<unsigned long long>(s.span_id), pid, tid,
            ts_us(s.start).c_str());
      }
    }
  }

  if (series != nullptr) {
    for (const auto& [node, by_name] : series->series()) {
      const int pid = pid_of(node);
      for (const auto& [name, samples] : by_name) {
        for (const auto& sample : samples) {
          events += sformat(
              "{\"ph\": \"C\", \"name\": \"%s\", \"pid\": %d, \"ts\": %s, "
              "\"args\": {\"value\": %s}},\n",
              json_escape(name).c_str(), pid, ts_us(sample.t).c_str(),
              json_number(sample.value).c_str());
        }
      }
    }
  }

  std::string out = sformat(
      "{\"displayTimeUnit\": \"ns\",\n\"otherData\": {\"architecture\": "
      "\"%s\", \"spans_dropped\": %llu, \"sample_rate\": %s, "
      "\"traces_sampled\": %llu, \"traces_promoted\": %llu},\n"
      "\"traceEvents\": [\n",
      json_escape(architecture).c_str(),
      static_cast<unsigned long long>(tracer.spans_dropped()),
      json_number(tracer.sample_rate()).c_str(),
      static_cast<unsigned long long>(tracer.traces_sampled()),
      static_cast<unsigned long long>(tracer.traces_promoted()));
  out += meta;
  out += events;
  // Strip the trailing ",\n" so the array is valid JSON.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]}\n";
  return out;
}

bool TraceExporter::write_file(const std::string& path, const Tracer& tracer,
                               const std::string& architecture,
                               const TimeSeries* series) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_chrome_json(tracer, architecture, series);
  const size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = (n == body.size()) && std::fclose(f) == 0;
  if (n != body.size()) std::fclose(f);
  return ok;
}

}  // namespace dpnfs::obs
