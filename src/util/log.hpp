// Lightweight leveled logger for the Direct-pNFS reproduction.
//
// The simulator is single-threaded by design (a discrete-event loop), so the
// logger keeps no locks.  Protocol modules tag each line with a component
// name and the current simulated time, which makes protocol traces readable
// ("[12.00345s] nfs.client ...").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/format.hpp"

namespace dpnfs::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the global log threshold.  Messages below it are discarded.
LogLevel log_threshold() noexcept;

/// Sets the global log threshold.  The DPNFS_LOG environment variable
/// ("trace", "debug", "info", "warn", "error", "off") sets the initial value.
void set_log_threshold(LogLevel level) noexcept;

/// Optional tap for WARN+ lines (the flight recorder routes them into its
/// event ring).  The sink receives every kWarn/kError line *regardless of
/// the print threshold* — dumps carry the log tail even when stderr output
/// is silenced — but never lines below kWarn.
using LogSink = std::function<void(LogLevel, std::string_view component,
                                   int64_t sim_time_ns,
                                   std::string_view message)>;

/// Installs the WARN+ sink and returns the previous one (restore it when
/// the owner goes away).  An empty function disables the tap.
LogSink set_log_sink(LogSink sink);

/// Emits one formatted log line.  `sim_time_ns` may be negative when no
/// simulation clock is available (the timestamp is then omitted).
void log_line(LogLevel level, std::string_view component, int64_t sim_time_ns,
              std::string_view message);

/// Formats and emits if `level` passes the threshold.
[[gnu::format(printf, 4, 5)]] void logf(LogLevel level,
                                        std::string_view component,
                                        int64_t sim_time_ns, const char* fmt,
                                        ...);

}  // namespace dpnfs::util
