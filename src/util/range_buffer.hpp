// Sparse byte-range content buffer.
//
// Stores file content as disjoint real-byte extents plus a set of "virtual"
// ranges whose size is known but whose bytes were never materialized (see
// rpc::Payload).  Shared by the server-side object store and the client
// page cache so both sides verify real content identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "rpc/payload.hpp"
#include "util/interval_set.hpp"

namespace dpnfs::util {

class RangeBuffer {
 public:
  /// Stores `data` at `offset`, replacing whatever was there.
  void store(uint64_t offset, const rpc::Payload& data);

  /// Loads [offset, offset+length).  Never-written gaps read as zeros; any
  /// overlap with a virtual range yields a virtual payload.
  rpc::Payload load(uint64_t offset, uint64_t length) const;

  /// Forgets content in [start, end) (eviction / truncation).  Dropped
  /// ranges read as zeros again.
  void drop(uint64_t start, uint64_t end);

  void clear();

  /// True if [start, end) overlaps a virtual (unmaterialized) range.
  bool tainted(uint64_t start, uint64_t end) const {
    return virtual_ranges_.intersects(start, end);
  }

 private:
  void erase_real(uint64_t start, uint64_t end);

  std::map<uint64_t, std::vector<std::byte>> extents_;
  IntervalSet virtual_ranges_;
};

/// Elevator queue of disjoint byte extents, each carrying a value (the
/// client's per-data-server write-back scheduler queues dirty extents with
/// their payloads here).  `pop_run` services the queue in ascending-offset
/// order — elevator style — and coalesces a run of *adjacent* extents into
/// one dispatch, capped at `max_run` bytes, so many small dirties leave as
/// one big request.  A caller-supplied predicate can veto individual merges
/// (e.g. "only if also contiguous in file space").
template <typename V>
class ExtentQueue {
 public:
  struct Item {
    uint64_t start = 0;
    uint64_t length = 0;
    V value;
  };

  /// Inserts an extent.  The caller keeps extents disjoint (use
  /// `pop_overlap` first when re-dirtying a queued range).
  void push(uint64_t start, uint64_t length, V value) {
    total_ += length;
    extents_.insert_or_assign(start, Entry{length, std::move(value)});
  }

  /// Removes and returns one extent overlapping [start, end), if any.
  /// Callers loop until empty, merge content, and re-push — that keeps the
  /// queue disjoint so dispatch order can never resurrect stale bytes.
  std::optional<Item> pop_overlap(uint64_t start, uint64_t end) {
    auto it = extents_.lower_bound(start);
    if (it != extents_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.length > start) it = prev;
    }
    if (it == extents_.end() || it->first >= end) return std::nullopt;
    Item out{it->first, it->second.length, std::move(it->second.value)};
    total_ -= out.length;
    extents_.erase(it);
    return out;
  }

  /// Pops the lowest-offset run of adjacent extents totaling at most
  /// `max_run` bytes.  `merge_ok(prev_value, next_value)` gates each
  /// extension of the run; pass a constant-true predicate for pure
  /// offset-adjacency coalescing.  When the lowest extent alone exceeds
  /// `max_run`, `split(value, head_len)` must carve off and return the
  /// value for the first `head_len` bytes, leaving `value` as the tail.
  /// Empty result means an empty queue.
  template <typename MergeOk, typename Split>
  std::vector<Item> pop_run(uint64_t max_run, MergeOk&& merge_ok,
                            Split&& split) {
    std::vector<Item> run;
    auto it = extents_.begin();
    if (it == extents_.end()) return run;
    uint64_t run_len = 0;
    while (it != extents_.end() && it->second.length + run_len <= max_run) {
      if (!run.empty()) {
        const Item& prev = run.back();
        if (it->first != prev.start + prev.length ||
            !merge_ok(prev.value, it->second.value)) {
          break;
        }
      }
      run.push_back(Item{it->first, it->second.length,
                         std::move(it->second.value)});
      run_len += run.back().length;
      total_ -= run.back().length;
      it = extents_.erase(it);
    }
    if (run.empty()) {
      // First extent alone exceeds max_run: split it.
      Item head{it->first, max_run, split(it->second.value, max_run)};
      it->second.length -= max_run;
      auto node = extents_.extract(it);
      node.key() += max_run;
      extents_.insert(std::move(node));
      total_ -= max_run;
      run.push_back(std::move(head));
    }
    return run;
  }

  bool empty() const noexcept { return extents_.empty(); }
  size_t size() const noexcept { return extents_.size(); }
  uint64_t total_bytes() const noexcept { return total_; }

 private:
  struct Entry {
    uint64_t length;
    V value;
  };
  std::map<uint64_t, Entry> extents_;
  uint64_t total_ = 0;
};

}  // namespace dpnfs::util
