// Sparse byte-range content buffer.
//
// Stores file content as disjoint real-byte extents plus a set of "virtual"
// ranges whose size is known but whose bytes were never materialized (see
// rpc::Payload).  Shared by the server-side object store and the client
// page cache so both sides verify real content identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "rpc/payload.hpp"
#include "util/interval_set.hpp"

namespace dpnfs::util {

class RangeBuffer {
 public:
  /// Stores `data` at `offset`, replacing whatever was there.
  void store(uint64_t offset, const rpc::Payload& data);

  /// Loads [offset, offset+length).  Never-written gaps read as zeros; any
  /// overlap with a virtual range yields a virtual payload.
  rpc::Payload load(uint64_t offset, uint64_t length) const;

  /// Forgets content in [start, end) (eviction / truncation).  Dropped
  /// ranges read as zeros again.
  void drop(uint64_t start, uint64_t end);

  void clear();

  /// True if [start, end) overlaps a virtual (unmaterialized) range.
  bool tainted(uint64_t start, uint64_t end) const {
    return virtual_ranges_.intersects(start, end);
  }

 private:
  void erase_real(uint64_t start, uint64_t end);

  std::map<uint64_t, std::vector<std::byte>> extents_;
  IntervalSet virtual_ranges_;
};

}  // namespace dpnfs::util
