// Per-tenant resource attribution, cardinality-bounded.
//
// Every RPC carries a `tenant_id` (rpc::CallHeader, flag-gated); the daemons
// that do work on its behalf — the RPC server, the NFS server, the PVFS
// storage daemon, the Direct-pNFS local backend — charge that work here.
// Attribution is held in one Space-Saving `util::TopK` tracker so memory
// stays O(K) at thousands of tenants, plus an unconditional `total()`
// accumulator covering 100% of traffic: while `tenants_evicted() == 0` the
// per-tenant rows sum *exactly* to the totals (and the totals match the
// aggregate `rpc` counters by construction — both are fed from the same
// call sites).
//
// Tenant 0 is reserved: traffic with no assigned tenant (mounts, backchannel
// callbacks, proxy metadata chatter) is accounted under the "none" row, so
// the summation invariant holds for every request, not just tenant-stamped
// ones.
#pragma once

#include <cstdint>
#include <string>

#include "util/stats.hpp"
#include "util/topk.hpp"

namespace dpnfs::obs {

/// What one tenant consumed.  All fields are exact sums of the accounting
/// calls that landed on this entry (fresh after an eviction replaces it).
struct TenantStats {
  uint64_t rpcs = 0;            ///< requests served across all RPC daemons
  uint64_t wire_bytes_in = 0;   ///< request bytes received
  uint64_t wire_bytes_out = 0;  ///< reply bytes sent
  uint64_t queue_ns = 0;        ///< request-queue residency
  uint64_t service_ns = 0;      ///< service execution time (CPU + waits)
  uint64_t disk_ns = 0;         ///< measured store disk time absorbed
  uint64_t read_bytes = 0;      ///< application data read (NFS/PVFS data ops)
  uint64_t write_bytes = 0;     ///< application data written
  uint64_t errors = 0;          ///< non-OK replies
  uint64_t over_slo = 0;        ///< requests whose queue+service > threshold
  util::PercentileDigest latency_us;  ///< per-request queue+service latency

  void merge(const TenantStats& o) {
    rpcs += o.rpcs;
    wire_bytes_in += o.wire_bytes_in;
    wire_bytes_out += o.wire_bytes_out;
    queue_ns += o.queue_ns;
    service_ns += o.service_ns;
    disk_ns += o.disk_ns;
    read_bytes += o.read_bytes;
    write_bytes += o.write_bytes;
    errors += o.errors;
    over_slo += o.over_slo;
    latency_us.merge(o.latency_us);
  }
};

/// Deployment-wide tenant accounting (attach via RpcFabric, like the
/// metrics registry: daemons pick it up at construction time).
class TenantLedger {
 public:
  explicit TenantLedger(size_t capacity = 64) : topk_(capacity) {}

  /// Requests slower than this (queue + service, ns) count as over-SLO for
  /// their tenant; 0 disables (mirrors ClusterConfig::trace_slo_threshold).
  void set_slo_threshold(int64_t t) noexcept { slo_threshold_ = t; }
  int64_t slo_threshold() const noexcept { return slo_threshold_; }

  /// One served RPC (called by RpcServer after the service ran).  The
  /// tenant's Space-Saving weight is its request count.
  void account_rpc(uint32_t tenant, uint64_t bytes_in, uint64_t bytes_out,
                   int64_t queue_ns, int64_t service_ns, bool error) {
    const int64_t total_ns = queue_ns + service_ns;
    const bool over =
        slo_threshold_ > 0 && total_ns > slo_threshold_;
    TenantStats& t = topk_.update(tenant, 1);
    charge_rpc(t, bytes_in, bytes_out, queue_ns, service_ns, error, over);
    charge_rpc(total_, bytes_in, bytes_out, queue_ns, service_ns, error, over);
  }

  /// Application data bytes moved by an NFS/PVFS data op.
  void account_data(uint32_t tenant, uint64_t read_bytes,
                    uint64_t write_bytes) {
    TenantStats& t = topk_.update(tenant, 0);
    t.read_bytes += read_bytes;
    t.write_bytes += write_bytes;
    total_.read_bytes += read_bytes;
    total_.write_bytes += write_bytes;
  }

  /// Measured store disk time absorbed on a tenant's behalf.
  void account_disk(uint32_t tenant, int64_t disk_ns) {
    if (disk_ns <= 0) return;
    topk_.update(tenant, 0).disk_ns += static_cast<uint64_t>(disk_ns);
    total_.disk_ns += static_cast<uint64_t>(disk_ns);
  }

  const util::TopK<TenantStats>& topk() const noexcept { return topk_; }
  /// Exact totals over every accounting call (never evicted).
  const TenantStats& total() const noexcept { return total_; }
  uint64_t tenants_seen() const noexcept { return topk_.seen(); }
  uint64_t tenants_evicted() const noexcept { return topk_.evicted(); }

  /// Display key: "none" for the reserved tenant 0, "tenant<N>" otherwise.
  static std::string tenant_name(uint64_t id);

  /// The `"tenants"` section of Deployment::metrics_json (see
  /// docs/observability.md): top-K rows by request count plus exact totals
  /// and the seen/evicted cardinality counters.
  std::string to_json() const;

 private:
  static void charge_rpc(TenantStats& t, uint64_t bytes_in,
                         uint64_t bytes_out, int64_t queue_ns,
                         int64_t service_ns, bool error, bool over) {
    t.rpcs += 1;
    t.wire_bytes_in += bytes_in;
    t.wire_bytes_out += bytes_out;
    t.queue_ns += static_cast<uint64_t>(queue_ns);
    t.service_ns += static_cast<uint64_t>(service_ns);
    if (error) ++t.errors;
    if (over) ++t.over_slo;
    t.latency_us.add(static_cast<double>(queue_ns + service_ns) * 1e-3);
  }

  util::TopK<TenantStats> topk_;
  TenantStats total_;
  int64_t slo_threshold_ = 0;
};

}  // namespace dpnfs::obs
