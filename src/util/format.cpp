#include "util/format.hpp"

#include <cstdio>
#include <vector>

namespace dpnfs::util {

std::string vsformat(const char* fmt, va_list args) {
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed <= 0) return {};
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  return out;
}

std::string sformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = vsformat(fmt, args);
  va_end(args);
  return out;
}

}  // namespace dpnfs::util
