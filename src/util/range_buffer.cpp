#include "util/range_buffer.hpp"

#include <algorithm>

namespace dpnfs::util {

using rpc::Payload;

void RangeBuffer::erase_real(uint64_t start, uint64_t end) {
  auto it = extents_.lower_bound(start);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    const uint64_t ext_end = prev->first + prev->second.size();
    if (ext_end > start) {
      std::vector<std::byte> tail;
      if (ext_end > end) {
        tail.assign(prev->second.begin() + static_cast<ptrdiff_t>(end - prev->first),
                    prev->second.end());
      }
      prev->second.resize(start - prev->first);
      if (prev->second.empty()) extents_.erase(prev);
      if (!tail.empty()) extents_.emplace(end, std::move(tail));
      it = extents_.lower_bound(start);
    }
  }
  while (it != extents_.end() && it->first < end) {
    const uint64_t ext_end = it->first + it->second.size();
    if (ext_end <= end) {
      it = extents_.erase(it);
    } else {
      std::vector<std::byte> tail(
          it->second.begin() + static_cast<ptrdiff_t>(end - it->first),
          it->second.end());
      extents_.erase(it);
      extents_.emplace(end, std::move(tail));
      break;
    }
  }
}

void RangeBuffer::store(uint64_t offset, const Payload& data) {
  if (data.size() == 0) return;
  const uint64_t end = offset + data.size();
  erase_real(offset, end);
  if (data.is_inline()) {
    virtual_ranges_.subtract(offset, end);
    // Scatter-gather payloads land as one extent per fragment (adjacent in
    // the map); load() reassembles across extent boundaries anyway.
    uint64_t pos = offset;
    for (const auto& frag : data.fragments()) {
      const auto v = frag.view();
      if (v.empty()) continue;
      // The cache mutates its extents in place (tail splits, truncation),
      // so it owns a copy rather than a view of the shared fragment.
      extents_.emplace(pos, std::vector<std::byte>(v.begin(), v.end()));
      pos += v.size();
    }
  } else {
    virtual_ranges_.add(offset, end);
  }
}

Payload RangeBuffer::load(uint64_t offset, uint64_t length) const {
  if (length == 0) return Payload{};
  const uint64_t end = offset + length;
  if (virtual_ranges_.intersects(offset, end)) {
    return Payload::virtual_bytes(length);
  }
  std::vector<std::byte> out(length, std::byte{0});
  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) --it;
  for (; it != extents_.end() && it->first < end; ++it) {
    const uint64_t ext_start = it->first;
    const uint64_t ext_end = ext_start + it->second.size();
    const uint64_t lo = std::max(offset, ext_start);
    const uint64_t hi = std::min(end, ext_end);
    if (lo >= hi) continue;
    std::copy(it->second.begin() + static_cast<ptrdiff_t>(lo - ext_start),
              it->second.begin() + static_cast<ptrdiff_t>(hi - ext_start),
              out.begin() + static_cast<ptrdiff_t>(lo - offset));
  }
  return Payload::inline_bytes(std::move(out));
}

void RangeBuffer::drop(uint64_t start, uint64_t end) {
  erase_real(start, end);
  virtual_ranges_.subtract(start, end);
}

void RangeBuffer::clear() {
  extents_.clear();
  virtual_ranges_.clear();
}

}  // namespace dpnfs::util
