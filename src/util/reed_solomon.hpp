// Systematic Reed-Solomon erasure coding over GF(256).
//
// A (k, m) code stores k data shards and m parity shards; any k of the
// k + m shards reconstruct the rest.  The generator matrix is
// [ I_k ; C ] where C is a Cauchy matrix — every k x k submatrix of a
// Cauchy-extended identity is invertible, so reconstruction never hits a
// singular system (the classic Vandermonde construction does not have this
// property for all k, m).
//
// Shards are equal-length byte blocks.  The code is deterministic and
// allocation-light: GF tables are built once per (k, m) instance.  Used by
// the erasure-coded aggregation driver (client-side parity generation and
// degraded-read reconstruction) and by the MDS rebuild service.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace dpnfs::util {

class ReedSolomon {
 public:
  /// Requires 1 <= k, 1 <= m, k + m <= 255.
  ReedSolomon(uint32_t k, uint32_t m);

  uint32_t k() const noexcept { return k_; }
  uint32_t m() const noexcept { return m_; }

  /// Computes the m parity shards for k equal-length data shards.
  /// `parity` is resized to m shards of the same length.
  void encode(std::span<const std::vector<std::byte>> data,
              std::vector<std::vector<std::byte>>* parity) const;

  /// Reconstructs every missing shard in place.  `shards` has k + m slots
  /// (data shards first); a nullopt slot is missing.  All present shards
  /// must share one length.  Returns false when fewer than k shards are
  /// present; on success every slot is filled.
  bool reconstruct(
      std::vector<std::optional<std::vector<std::byte>>>* shards) const;

  // GF(256) arithmetic (poly 0x11d), exposed for tests.
  static uint8_t gf_mul(uint8_t a, uint8_t b) noexcept;
  static uint8_t gf_inv(uint8_t a);

 private:
  uint32_t k_;
  uint32_t m_;
  std::vector<uint8_t> coding_;  // m x k Cauchy rows, row-major

  uint8_t coef(uint32_t row, uint32_t col) const noexcept {
    return coding_[row * k_ + col];
  }
};

}  // namespace dpnfs::util
