#include "util/tenant.hpp"

#include "util/format.hpp"
#include "util/obs.hpp"

namespace dpnfs::obs {

std::string TenantLedger::tenant_name(uint64_t id) {
  return id == 0 ? "none"
                 : util::sformat("tenant%llu",
                                 static_cast<unsigned long long>(id));
}

namespace {

std::string stats_json(const TenantStats& t) {
  std::string out = util::sformat(
      "{\"rpcs\": %llu, \"wire_bytes_in\": %llu, \"wire_bytes_out\": %llu, "
      "\"queue_ns\": %llu, \"service_ns\": %llu, \"disk_ns\": %llu, "
      "\"read_bytes\": %llu, \"write_bytes\": %llu, \"errors\": %llu, "
      "\"over_slo\": %llu, \"latency_us\": ",
      static_cast<unsigned long long>(t.rpcs),
      static_cast<unsigned long long>(t.wire_bytes_in),
      static_cast<unsigned long long>(t.wire_bytes_out),
      static_cast<unsigned long long>(t.queue_ns),
      static_cast<unsigned long long>(t.service_ns),
      static_cast<unsigned long long>(t.disk_ns),
      static_cast<unsigned long long>(t.read_bytes),
      static_cast<unsigned long long>(t.write_bytes),
      static_cast<unsigned long long>(t.errors),
      static_cast<unsigned long long>(t.over_slo));
  out += t.latency_us.to_json();
  out += "}";
  return out;
}

}  // namespace

std::string TenantLedger::to_json() const {
  std::string out = util::sformat(
      "{\"topk\": %zu, \"tenants_seen\": %llu, \"tenants_evicted\": %llu, "
      "\"slo_threshold_ns\": %lld, \"per_tenant\": {",
      topk_.capacity(), static_cast<unsigned long long>(topk_.seen()),
      static_cast<unsigned long long>(topk_.evicted()),
      static_cast<long long>(slo_threshold_));
  bool first = true;
  for (const auto& e : topk_.sorted()) {
    if (!first) out += ", ";
    first = false;
    out += util::sformat(
        "\"%s\": {\"weight\": %llu, \"weight_error\": %llu, \"stats\": ",
        json_escape(tenant_name(e.key)).c_str(),
        static_cast<unsigned long long>(e.weight),
        static_cast<unsigned long long>(e.error));
    out += stats_json(e.value);
    out += "}";
  }
  out += "}, \"total\": ";
  out += stats_json(total_);
  out += "}";
  return out;
}

}  // namespace dpnfs::obs
