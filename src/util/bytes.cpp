#include "util/bytes.hpp"

#include "util/format.hpp"

namespace dpnfs::util {

std::string format_bytes(uint64_t bytes) {
  if (bytes >= kGiB) {
    return sformat("%.1f GiB", static_cast<double>(bytes) / static_cast<double>(kGiB));
  }
  if (bytes >= kMiB) {
    return sformat("%.1f MiB", static_cast<double>(bytes) / static_cast<double>(kMiB));
  }
  if (bytes >= kKiB) {
    return sformat("%.1f KiB", static_cast<double>(bytes) / static_cast<double>(kKiB));
  }
  return sformat("%llu B", static_cast<unsigned long long>(bytes));
}

std::string format_mbps(double bytes_per_second) {
  return sformat("%.1f MB/s", bytes_per_second / 1e6);
}

}  // namespace dpnfs::util
