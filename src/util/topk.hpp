// Space-Saving heavy-hitter tracker (Metwally, Agrawal, El Abbadi 2005).
//
// Tracks the top-K keys by accumulated weight in O(K) memory regardless of
// how many distinct keys stream past: when a new key arrives at capacity,
// the minimum-weight entry is evicted and the newcomer inherits its weight
// as an overestimation `error` bound.  Guarantees:
//
//  - while distinct keys <= K nothing is ever evicted, every count is exact
//    and every `error` is zero;
//  - after eviction, a resident entry's true weight lies in
//    [weight - error, weight];
//  - fully deterministic: ties on eviction and in `sorted()` break on the
//    smaller key, so two runs feeding the same stream produce bit-identical
//    trackers (the chaos-soak reproducibility contract extends to these).
//
// Entries carry an arbitrary payload `V` (default-constructible, with a
// `merge(const V&)` member).  The payload restarts fresh when an eviction
// replaces the entry — only the Space-Saving weight carries over — so
// payload sums are exact precisely when `evicted() == 0`.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dpnfs::util {

template <typename V>
class TopK {
 public:
  struct Entry {
    uint64_t key = 0;
    uint64_t weight = 0;  ///< Space-Saving count (upper bound on the truth)
    uint64_t error = 0;   ///< overestimation bound inherited at insertion
    V value{};
  };

  explicit TopK(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
    entries_.reserve(capacity_);
    index_.reserve(capacity_);
  }

  size_t capacity() const noexcept { return capacity_; }
  size_t size() const noexcept { return entries_.size(); }
  /// Insertions of keys that were not resident at the time (exact distinct
  /// count while `evicted() == 0`; a lower bound afterwards, because an
  /// evicted key that returns is counted again).
  uint64_t seen() const noexcept { return seen_; }
  /// Entries evicted to make room.  Zero means every count is exact.
  uint64_t evicted() const noexcept { return evicted_; }

  /// Adds `increment` to `key`'s weight (inserting or evicting per
  /// Space-Saving) and returns the entry's payload for in-place updates.
  V& update(uint64_t key, uint64_t increment = 1) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      Entry& e = entries_[it->second];
      e.weight += increment;
      return e.value;
    }
    ++seen_;
    if (entries_.size() < capacity_) {
      index_.emplace(key, entries_.size());
      entries_.push_back(Entry{key, increment, 0, V{}});
      return entries_.back().value;
    }
    // Evict the minimum-weight entry; ties break on the smaller key so the
    // victim is a pure function of the tracker's state.
    size_t victim = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      const Entry& v = entries_[victim];
      if (e.weight < v.weight || (e.weight == v.weight && e.key < v.key)) {
        victim = i;
      }
    }
    ++evicted_;
    Entry& e = entries_[victim];
    index_.erase(e.key);
    index_.emplace(key, victim);
    e = Entry{key, e.weight + increment, e.weight, V{}};
    return e.value;
  }

  const Entry* find(uint64_t key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &entries_[it->second];
  }

  /// Entries ordered by weight descending, key ascending on ties —
  /// deterministic for identical streams.
  std::vector<Entry> sorted() const {
    std::vector<Entry> out = entries_;
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return a.weight != b.weight ? a.weight > b.weight : a.key < b.key;
    });
    return out;
  }

  /// Folds `other` into this tracker: weights and error bounds of common
  /// keys add, foreign keys join, then the union is truncated back to the
  /// top `capacity()` by (weight desc, key asc).  In the exact regime
  /// (distinct keys across all operands <= capacity, no evictions) merge is
  /// associative and commutative: any merge order yields the same tracker.
  /// Under truncation the result is still deterministic for a fixed order.
  void merge(const TopK& other) {
    for (const Entry& o : other.entries_) {
      auto it = index_.find(o.key);
      if (it != index_.end()) {
        Entry& e = entries_[it->second];
        e.weight += o.weight;
        e.error += o.error;
        e.value.merge(o.value);
      } else {
        entries_.push_back(o);
      }
    }
    seen_ += other.seen_;
    evicted_ += other.evicted_;
    if (entries_.size() > capacity_) {
      std::sort(entries_.begin(), entries_.end(),
                [](const Entry& a, const Entry& b) {
                  return a.weight != b.weight ? a.weight > b.weight
                                              : a.key < b.key;
                });
      evicted_ += entries_.size() - capacity_;
      entries_.resize(capacity_);
    }
    index_.clear();
    for (size_t i = 0; i < entries_.size(); ++i) {
      index_.emplace(entries_[i].key, i);
    }
  }

 private:
  size_t capacity_;
  std::vector<Entry> entries_;
  std::unordered_map<uint64_t, size_t> index_;
  uint64_t seen_ = 0;
  uint64_t evicted_ = 0;
};

}  // namespace dpnfs::util
