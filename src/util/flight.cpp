#include "util/flight.hpp"

#include "util/format.hpp"
#include "util/obs.hpp"

namespace dpnfs::obs {

void FlightRecorder::record(int64_t time_ns, std::string_view node,
                            std::string_view component, std::string_view kind,
                            std::string_view detail) {
  FlightEvent e;
  e.seq = ++recorded_;
  e.time_ns = time_ns;
  e.node = std::string(node);
  e.component = std::string(component);
  e.kind = std::string(kind);
  e.detail = std::string(detail);
  events_.push_back(std::move(e));
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

std::string FlightRecorder::to_json() const {
  std::string out = util::sformat(
      "{\"capacity\": %zu, \"events_recorded\": %llu, "
      "\"events_dropped\": %llu, \"events\": [",
      capacity_, static_cast<unsigned long long>(recorded_),
      static_cast<unsigned long long>(dropped_));
  bool first = true;
  for (const FlightEvent& e : events_) {
    if (!first) out += ", ";
    first = false;
    out += util::sformat(
        "{\"seq\": %llu, \"time_ns\": %lld, \"node\": \"%s\", "
        "\"component\": \"%s\", \"kind\": \"%s\", \"detail\": \"%s\"}",
        static_cast<unsigned long long>(e.seq),
        static_cast<long long>(e.time_ns), json_escape(e.node).c_str(),
        json_escape(e.component).c_str(), json_escape(e.kind).c_str(),
        json_escape(e.detail).c_str());
  }
  out += "]}";
  return out;
}

}  // namespace dpnfs::obs
