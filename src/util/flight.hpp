// Flight recorder: a bounded ring of structured fault/recovery events.
//
// Chaos-soak failures are only debuggable post-hoc if the seconds *before*
// the failure are on record.  The recorder keeps the newest `capacity`
// events — recovery-ladder steps, breaker trips, write replay, service
// restarts, grace-period transitions, WARN+ log lines — each stamped with
// the simulated time and a monotonic sequence number, and dumps them as one
// JSON document on fault injection, oracle mismatch, or on demand
// (`simulate --flight-out=FILE`).
//
// Every field is a pure function of the simulation (sim time, node and
// component names, deterministic counters), so two runs with the same seed
// produce byte-identical dumps — a failing dump *is* its reproduction.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

namespace dpnfs::obs {

struct FlightEvent {
  uint64_t seq = 0;      ///< monotonic, 1-based recording order
  int64_t time_ns = 0;   ///< simulated time (-1: no clock available)
  std::string node;      ///< simulated machine ("" when not attributable)
  std::string component; ///< subsystem that reported it ("nfs.client", ...)
  std::string kind;      ///< event class ("restart", "breaker.open", ...)
  std::string detail;    ///< human-readable specifics
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(int64_t time_ns, std::string_view node,
              std::string_view component, std::string_view kind,
              std::string_view detail);

  const std::deque<FlightEvent>& events() const noexcept { return events_; }
  size_t capacity() const noexcept { return capacity_; }
  uint64_t events_recorded() const noexcept { return recorded_; }
  /// Oldest events pushed out of the ring (recorded - resident).
  uint64_t events_dropped() const noexcept { return dropped_; }

  /// {"capacity": .., "events_recorded": .., "events_dropped": ..,
  ///  "events": [{"seq", "time_ns", "node", "component", "kind",
  ///              "detail"}, ...]}   (oldest resident event first)
  std::string to_json() const;

 private:
  size_t capacity_;
  std::deque<FlightEvent> events_;
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace dpnfs::obs
