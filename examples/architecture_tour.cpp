// Architecture tour: the same 30-second IOR-style burst on all five access
// architectures of the paper's evaluation, printed side by side — the
// fastest way to see the paper's headline result.
#include <cstdio>

#include "core/deployment.hpp"
#include "util/bytes.hpp"
#include "workload/ior.hpp"
#include "workload/runner.hpp"

using namespace dpnfs;
using core::Architecture;

int main() {
  const Architecture archs[] = {
      Architecture::kDirectPnfs, Architecture::kNativePvfs,
      Architecture::kPnfs2Tier, Architecture::kPnfs3Tier,
      Architecture::kPlainNfs};

  std::printf("Four clients, 100 MB per client, 6 storage nodes\n\n");
  std::printf("%-14s%16s%16s%18s\n", "architecture", "write MB/s",
              "read MB/s", "8KB-write MB/s");
  for (Architecture arch : archs) {
    double results[3] = {};
    struct Case {
      bool write;
      uint64_t block;
    } cases[3] = {{true, 2 << 20}, {false, 2 << 20}, {true, 8 * 1024}};
    for (int c = 0; c < 3; ++c) {
      core::Deployment d(core::ClusterConfig{.architecture = arch, .clients = 4});
      workload::IorConfig ior;
      ior.write = cases[c].write;
      ior.block_size = cases[c].block;
      ior.bytes_per_client = 100'000'000;
      workload::IorWorkload w(ior);
      results[c] = run_workload(d, w).aggregate_mbps();
    }
    std::printf("%-14s%16.1f%16.1f%18.1f\n", core::architecture_name(arch),
                results[0], results[1], results[2]);
  }
  std::printf("\nDirect-pNFS matches the parallel file system on big I/O and\n"
              "keeps that speed at small request sizes; every proxied design\n"
              "pays for indirection.\n");
  return 0;
}
