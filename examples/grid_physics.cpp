// Grid-physics scenario (the paper's motivating HEP use case, §1 and §6.3).
//
// Eight analysis nodes simultaneously digitize detector events into
// per-node files with the ATLAS request-size mixture, then a single
// analysis job re-reads every file for event selection — the
// "simultaneous, parallel access to a single data set" pattern GridNFS
// targets.  Run it on Direct-pNFS and native PVFS2 and compare.
#include <cstdio>

#include "core/deployment.hpp"
#include "util/bytes.hpp"
#include "workload/atlas.hpp"
#include "workload/runner.hpp"

using namespace dpnfs;
using namespace dpnfs::util::literals;
using sim::Task;

namespace {

Task<void> analysis_pass(core::Deployment& cluster, double& seconds,
                         uint64_t& bytes) {
  // One analysis client ingests every digitization output file.
  for (size_t i = 0; i < cluster.client_count(); ++i) {
    cluster.client(i).drop_caches();
  }
  const sim::Time t0 = cluster.simulation().now();
  auto& fs = cluster.client(0);
  uint64_t total = 0;
  for (size_t i = 0; i < cluster.client_count(); ++i) {
    auto f = co_await fs.open("/atlas/f" + std::to_string(i), false);
    for (uint64_t off = 0; off < f->size(); off += 2_MiB) {
      rpc::Payload p = co_await f->read(off, 2_MiB);
      total += p.size();
    }
    co_await f->close();
  }
  seconds = sim::to_seconds(cluster.simulation().now() - t0);
  bytes = total;
}

void run(core::Architecture arch) {
  core::ClusterConfig config;
  config.architecture = arch;
  config.clients = 8;
  core::Deployment cluster(config);

  workload::AtlasConfig acfg;
  acfg.bytes_per_client = 200'000'000;  // scaled-down event sample
  acfg.file_span = 200'000'000;
  workload::AtlasWorkload digitization(acfg);

  const auto digi = run_workload(cluster, digitization);

  double analysis_seconds = 0;
  uint64_t analysis_bytes = 0;
  cluster.simulation().spawn(
      analysis_pass(cluster, analysis_seconds, analysis_bytes));
  cluster.simulation().run();

  std::printf("%-14s digitization: %7.1f MB/s   analysis ingest: %7.1f MB/s\n",
              core::architecture_name(arch), digi.aggregate_mbps(),
              analysis_bytes / 1e6 / analysis_seconds);
}

}  // namespace

int main() {
  std::printf("Grid physics: 8-node ATLAS digitization + single-node "
              "analysis ingest\n\n");
  run(core::Architecture::kDirectPnfs);
  run(core::Architecture::kNativePvfs);
  std::printf("\nDirect-pNFS keeps the mixed small/large digitization writes\n"
              "fast (client write-back coalescing) while matching the parallel\n"
              "file system on the bulk analysis reads.\n");
  return 0;
}
