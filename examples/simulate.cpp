// dpnfs-simulate: command-line driver for custom experiments.
//
//   simulate --arch=direct --workload=ior-write --clients=8
//            --bytes=500000000 --block=2097152 [--verbose]
//
// Architectures: direct, pvfs, 2tier, 3tier, nfs
// Workloads:     ior-write, ior-read, ior-write-single, ior-read-single,
//                atlas, btio, oltp, postmark, tenant-mix
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/adapters.hpp"
#include "core/deployment.hpp"
#include "util/obs_analysis.hpp"
#include "workload/atlas.hpp"
#include "workload/btio.hpp"
#include "workload/ior.hpp"
#include "workload/oltp.hpp"
#include "workload/postmark.hpp"
#include "workload/strided.hpp"
#include "workload/tenant_mix.hpp"
#include "workload/runner.hpp"

using namespace dpnfs;

namespace {

const char* arg_value(int argc, char** argv, const char* key,
                      const char* fallback) {
  const size_t klen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, klen) == 0 && argv[i][klen] == '=') {
      return argv[i] + klen + 1;
    }
  }
  return fallback;
}

bool flag(int argc, char** argv, const char* key) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], key) == 0) return true;
  }
  return false;
}

bool write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t n = std::fwrite(body.data(), 1, body.size(), f);
  return std::fclose(f) == 0 && n == body.size();
}

core::Architecture parse_arch(const std::string& s) {
  if (s == "direct") return core::Architecture::kDirectPnfs;
  if (s == "pvfs") return core::Architecture::kNativePvfs;
  if (s == "2tier") return core::Architecture::kPnfs2Tier;
  if (s == "3tier") return core::Architecture::kPnfs3Tier;
  if (s == "nfs") return core::Architecture::kPlainNfs;
  std::fprintf(stderr, "unknown --arch '%s' (direct|pvfs|2tier|3tier|nfs)\n",
               s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (flag(argc, argv, "--help") || flag(argc, argv, "-h")) {
    std::printf(
        "usage: simulate [--arch=direct|pvfs|2tier|3tier|nfs]\n"
        "                [--workload=ior-write|ior-read|ior-write-single|\n"
        "                 ior-read-single|atlas|btio|strided|oltp|\n"
        "                 oltp-update|postmark|tenant-mix]\n"
        "                [--clients=N] [--storage-nodes=N]\n"
        "                [--bytes=N] [--block=N] [--stripe=N] [--txns=N]\n"
        "                [--latency-us=N] [--nic-mbps=N] [--verbose]\n"
        "                [--wb-window-per-ds=N] [--no-coalesce]\n"
        "                [--no-listio] [--listio-max-regions=N]\n"
        "                [--fault-ds-crash=N] [--fault-at-ms=T]\n"
        "                [--fault-revive-ms=T] [--fault-ds-restart=N]\n"
        "                [--fault-ds-kill=N] [--rebuild-after-ms=T]\n"
        "                [--redundancy=stripe|mirror|ec] [--replicas=N]\n"
        "                [--ec-k=K] [--ec-m=M] [--spares=N]\n"
        "                [--chaos-seed=S] [--chaos-restarts=N]\n"
        "                [--trace-out=FILE] [--trace-spans=N]\n"
        "                [--trace-sample-rate=R] [--slo-ms=N]\n"
        "                [--breakdown] [--sample-ms=N]\n"
        "                [--tenants=N] [--metrics-out=FILE]\n"
        "                [--flight-out=FILE]\n"
        "\n"
        "--wb-window-per-ds=N caps concurrent write-back WRITEs per data\n"
        "server (default 8); --no-coalesce disables merging adjacent dirty\n"
        "extents into wsize WRITEs before dispatch (ablation switches for\n"
        "the per-DS write-back scheduler).\n"
        "--no-listio disables vectored (list) I/O: every region goes out as\n"
        "its own single-range READ/WRITE (kRead/kWrite on the PVFS wire);\n"
        "--listio-max-regions=N caps the regions folded into one vectored\n"
        "request (default 64).  The strided workload is the showcase:\n"
        "--workload=strided interleaves per-client records so each client's\n"
        "dirty extents are non-adjacent (see EXPERIMENTS.md).\n"
        "\n"
        "--fault-ds-crash=N kills the NFS data-server daemon on storage\n"
        "node N (and enables the client recovery knobs, see\n"
        "docs/failures.md); the run must still complete via MDS fallback.\n"
        "\n"
        "--fault-ds-kill=N permanently kills storage node N — the NFS data\n"
        "server AND the PVFS storage daemon, never revived.  Combine with\n"
        "--redundancy=mirror (--replicas copies) or --redundancy=ec\n"
        "(systematic Reed-Solomon, --ec-k data + --ec-m parity fragments):\n"
        "clients keep going through degraded reads/writes, and with\n"
        "--spares=N > 0 the MDS rebuild service declares the node dead\n"
        "after --rebuild-after-ms (default 1500) and re-materializes its\n"
        "objects onto a spare while traffic continues (docs/failures.md).\n"
        "--fault-ds-restart=N crash-restarts the data service on storage\n"
        "node N: the service revives at --fault-revive-ms (default\n"
        "--fault-at-ms + 500) with a fresh boot verifier, and clients must\n"
        "replay any unstable writes the dead incarnation was buffering\n"
        "(docs/failures.md, 'Restart semantics').\n"
        "--chaos-seed=S schedules a seeded, reproducible storm of service\n"
        "restarts (--chaos-restarts of them, default 3 data-server plus one\n"
        "MDS restart) across the run; the same seed yields the same\n"
        "schedule.\n"
        "\n"
        "--trace-out=FILE writes every retained span as Chrome/Perfetto\n"
        "trace_event JSON (open in ui.perfetto.dev); span retention is\n"
        "raised to 262144 unless --trace-spans overrides it.\n"
        "--trace-sample-rate=R keeps span detail for fraction R of traces\n"
        "(deterministic per-trace verdict; aggregate counters and the SLO\n"
        "digests stay exact at any rate; default 1.0 = every trace).\n"
        "--slo-ms=N tail-promotes any unsampled trace that ends slower\n"
        "than N ms, or with an error, with full span detail (default 0 =\n"
        "promote only errored traces).  See docs/observability.md.\n"
        "--breakdown prints the critical-path latency attribution (client\n"
        "queue / request wire / server queue / service CPU / disk / reply\n"
        "wire) followed by its JSON document.\n"
        "--sample-ms=N sets the utilization sampling interval (default\n"
        "100 ms of simulated time; 0 disables).\n"
        "\n"
        "--tenants=N assigns clients tenant ids 1..N round-robin; every\n"
        "RPC then carries its tenant (flag-gated, 4 bytes) and the servers\n"
        "account RPCs, wire bytes, disk time and latency per tenant into\n"
        "the 'tenants' section of the metrics document (0 = off, the\n"
        "default; the wire stays byte-identical to the legacy layout).\n"
        "--workload=tenant-mix splits clients between a sequential-ingest\n"
        "tenant (IOR write) and an OLTP tenant (defaults --tenants=2 so\n"
        "tenant1=ingest, tenant2=OLTP; see EXPERIMENTS.md).\n"
        "--metrics-out=FILE writes the full metrics JSON document\n"
        "(Deployment::metrics_json — nodes, trace, slo, tenants, health,\n"
        "timeseries) to FILE, like --trace-out does for the span timeline.\n"
        "--flight-out=FILE dumps the flight recorder (bounded ring of\n"
        "restart/recovery/breaker/replay events plus WARN+ log lines) as\n"
        "JSON to FILE; with the same seed and schedule two runs produce\n"
        "bit-identical dumps.\n");
    return 0;
  }

  core::ClusterConfig cfg;
  cfg.architecture = parse_arch(arg_value(argc, argv, "--arch", "direct"));
  cfg.clients = static_cast<uint32_t>(
      std::atoi(arg_value(argc, argv, "--clients", "8")));
  cfg.storage_nodes = static_cast<uint32_t>(
      std::atoi(arg_value(argc, argv, "--storage-nodes", "6")));
  cfg.stripe_unit = std::strtoull(
      arg_value(argc, argv, "--stripe", "2097152"), nullptr, 10);
  const std::string redundancy =
      arg_value(argc, argv, "--redundancy", "stripe");
  if (redundancy == "mirror") {
    cfg.distribution = pvfs::DistKind::kMirror;
  } else if (redundancy == "ec") {
    cfg.distribution = pvfs::DistKind::kErasure;
  } else if (redundancy != "stripe") {
    std::fprintf(stderr, "unknown --redundancy '%s' (stripe|mirror|ec)\n",
                 redundancy.c_str());
    return 2;
  }
  cfg.replicas = static_cast<uint32_t>(
      std::max(2, std::atoi(arg_value(argc, argv, "--replicas", "2"))));
  cfg.ec_k = static_cast<uint32_t>(
      std::max(1, std::atoi(arg_value(argc, argv, "--ec-k", "4"))));
  cfg.ec_m = static_cast<uint32_t>(
      std::max(1, std::atoi(arg_value(argc, argv, "--ec-m", "2"))));
  cfg.spare_nodes = static_cast<uint32_t>(
      std::max(0, std::atoi(arg_value(argc, argv, "--spares", "0"))));
  cfg.nic.latency =
      sim::us(std::atoll(arg_value(argc, argv, "--latency-us", "60")));
  cfg.nic.bytes_per_sec =
      std::atof(arg_value(argc, argv, "--nic-mbps", "117")) * 1e6;
  cfg.nfs_client.wb_window_per_ds = static_cast<uint32_t>(std::max(
      1, std::atoi(arg_value(argc, argv, "--wb-window-per-ds", "8"))));
  if (flag(argc, argv, "--no-coalesce")) cfg.nfs_client.coalesce_writes = false;
  if (flag(argc, argv, "--no-listio")) cfg.listio_enabled = false;
  cfg.listio_max_regions = static_cast<uint32_t>(std::max(
      1, std::atoi(arg_value(argc, argv, "--listio-max-regions", "64"))));

  const std::string trace_out = arg_value(argc, argv, "--trace-out", "");
  const bool breakdown = flag(argc, argv, "--breakdown");
  // A full timeline needs far more span detail than the default aggregate
  // retention; the explicit knob wins when given.
  const long long trace_spans =
      std::atoll(arg_value(argc, argv, "--trace-spans",
                           trace_out.empty() ? "4096" : "262144"));
  cfg.trace_span_capacity = static_cast<size_t>(std::max(0LL, trace_spans));
  cfg.trace_sample_rate =
      std::atof(arg_value(argc, argv, "--trace-sample-rate", "1.0"));
  cfg.trace_slo_threshold =
      sim::ms(std::atoll(arg_value(argc, argv, "--slo-ms", "0")));
  cfg.sample_interval =
      sim::ms(std::atoll(arg_value(argc, argv, "--sample-ms", "100")));
  const std::string metrics_out = arg_value(argc, argv, "--metrics-out", "");
  const std::string flight_out = arg_value(argc, argv, "--flight-out", "");
  const std::string wl = arg_value(argc, argv, "--workload", "ior-write");
  // tenant-mix defaults to one tenant per child workload.
  cfg.tenants = static_cast<uint32_t>(std::max(
      0, std::atoi(arg_value(argc, argv, "--tenants",
                             wl == "tenant-mix" ? "2" : "0"))));

  const uint64_t bytes =
      std::strtoull(arg_value(argc, argv, "--bytes", "100000000"), nullptr, 10);
  const uint64_t block =
      std::strtoull(arg_value(argc, argv, "--block", "2097152"), nullptr, 10);
  const uint32_t txns = static_cast<uint32_t>(
      std::atoi(arg_value(argc, argv, "--txns", "2000")));

  const int fault_ds = std::atoi(arg_value(argc, argv, "--fault-ds-crash", "-1"));
  if (fault_ds >= 0) {
    const sim::Time at =
        sim::ms(std::atoll(arg_value(argc, argv, "--fault-at-ms", "1000")));
    const long long revive_ms =
        std::atoll(arg_value(argc, argv, "--fault-revive-ms", "-1"));
    cfg.faults.crash_service(static_cast<uint32_t>(fault_ds), rpc::kNfsPort, at,
                             revive_ms < 0 ? sim::kNever : sim::ms(revive_ms));
    // Deadlines/retries are off by default; a scripted crash is pointless
    // without them.  The deadline must sit above worst-case healthy queueing
    // (several stripe-width transfers) or live servers trip the breaker too.
    cfg.nfs_client.ds_timeout = sim::ms(250);
    cfg.nfs_client.breaker_threshold = 2;
    cfg.nfs_client.breaker_reset = sim::sec(60);
  }

  // Data-service and MDS endpoints by architecture (node ids are assigned
  // in Deployment add-order: storage nodes first).
  auto ds_target = [&cfg](uint32_t i) -> std::pair<uint32_t, uint16_t> {
    switch (cfg.architecture) {
      case core::Architecture::kNativePvfs:
        return {i % cfg.storage_nodes, rpc::kPvfsIoPort};
      case core::Architecture::kPnfs3Tier:
        return {cfg.storage_nodes / 2 + (i % cfg.three_tier_data_servers),
                rpc::kNfsPort};
      case core::Architecture::kPlainNfs:
        return {cfg.storage_nodes, rpc::kNfsPort};
      default:
        return {i % cfg.storage_nodes, rpc::kNfsPort};
    }
  };
  auto mds_target = [&cfg]() -> std::pair<uint32_t, uint16_t> {
    switch (cfg.architecture) {
      case core::Architecture::kNativePvfs:
        return {0u, rpc::kPvfsMetaPort};
      case core::Architecture::kPnfs3Tier:
        return {cfg.storage_nodes / 2, core::kMdsPort};
      case core::Architecture::kPlainNfs:
        return {cfg.storage_nodes, rpc::kNfsPort};
      default:
        return {0u, core::kMdsPort};
    }
  };
  // Recovery knobs for faults the run is expected to ride out: deadlines,
  // retries that outlast a crash window, an MDS grace period, and — on
  // Direct-pNFS — no MDS write fallback (the data server and the PVFS
  // daemon share the node's object store, so proxying writes around a
  // restarting DS would dodge the very state loss being tested; see
  // docs/failures.md).
  auto enable_restart_recovery = [&cfg] {
    // The retry budget must outlast back-to-back crash windows (the chaos
    // schedule can hit the same service repeatedly), not just one outage.
    cfg.nfs_client.ds_timeout = sim::ms(250);
    cfg.nfs_client.ds_rpc_retries = 8;
    cfg.nfs_client.slice_retries = 4;
    cfg.nfs_client.breaker_threshold = 4;
    cfg.nfs_client.breaker_reset = sim::ms(500);
    cfg.nfs_client.mds_timeout = sim::ms(500);
    cfg.mds_grace_period = sim::ms(200);
    cfg.pvfs_client.io_timeout = sim::ms(250);
    cfg.pvfs_client.io_retries = 10;
    cfg.pvfs_client.meta_timeout = sim::ms(500);
    cfg.pvfs_client.meta_retries = 6;
    if (cfg.architecture == core::Architecture::kDirectPnfs) {
      cfg.nfs_client.mds_fallback = false;
    }
  };

  const int fault_restart =
      std::atoi(arg_value(argc, argv, "--fault-ds-restart", "-1"));
  if (fault_restart >= 0) {
    const sim::Time at =
        sim::ms(std::atoll(arg_value(argc, argv, "--fault-at-ms", "1000")));
    const long long revive_ms =
        std::atoll(arg_value(argc, argv, "--fault-revive-ms", "0"));
    const sim::Time revive = revive_ms > 0 ? sim::ms(revive_ms) : at + sim::ms(500);
    const auto [node, port] = ds_target(static_cast<uint32_t>(fault_restart));
    cfg.faults.crash_service(node, port, at, revive);
    enable_restart_recovery();
  }

  // Permanent data-server loss: both daemons on the node die for good;
  // redundancy (mirror or EC) carries the traffic and — with spares — the
  // rebuild service re-materializes the node's objects in the background.
  const int fault_kill =
      std::atoi(arg_value(argc, argv, "--fault-ds-kill", "-1"));
  if (fault_kill >= 0) {
    const sim::Time at =
        sim::ms(std::atoll(arg_value(argc, argv, "--fault-at-ms", "1000")));
    const auto [node, port] = ds_target(static_cast<uint32_t>(fault_kill));
    cfg.faults.crash_service(node, port, at, sim::kNever);
    if (port != rpc::kPvfsIoPort) {
      cfg.faults.crash_service(node, rpc::kPvfsIoPort, at, sim::kNever);
    }
    enable_restart_recovery();
    // The node is never coming back: meta-side size gathers must fast-fail
    // on the dead daemon (redundant kinds tolerate the miss) instead of
    // burning a restart-sized retry budget inside every MDS attribute call.
    cfg.pvfs_client.io_timeout = sim::ms(200);
    cfg.pvfs_client.io_retries = 1;
    cfg.nfs_client.mds_timeout = sim::ms(3000);
    // A tripped breaker should stay open: half-open probes against a node
    // that is never coming back just re-burn the retry ladder.
    cfg.nfs_client.ds_rpc_retries = 2;
    cfg.nfs_client.slice_retries = 1;
    cfg.nfs_client.breaker_threshold = 2;
    cfg.nfs_client.breaker_reset = sim::sec(600);
    if (cfg.spare_nodes > 0) {
      cfg.rebuild_enabled = true;
      cfg.rebuild.dead_threshold = sim::ms(
          std::atoll(arg_value(argc, argv, "--rebuild-after-ms", "1500")));
    }
  }

  const long long chaos_seed =
      std::atoll(arg_value(argc, argv, "--chaos-seed", "-1"));
  if (chaos_seed >= 0) {
    const int chaos_restarts =
        std::atoi(arg_value(argc, argv, "--chaos-restarts", "3"));
    uint64_t s = static_cast<uint64_t>(chaos_seed);
    auto next = [&s]() {  // SplitMix64: the schedule is a pure seed function
      s += 0x9E3779B97F4A7C15ull;
      uint64_t z = s;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (int i = 0; i < chaos_restarts; ++i) {
      const auto [node, port] = ds_target(static_cast<uint32_t>(next()));
      const sim::Time at = sim::ms(200 + static_cast<int64_t>(next() % 2000));
      cfg.faults.crash_service(node, port, at,
                               at + sim::ms(200 + static_cast<int64_t>(next() % 400)));
    }
    const auto [mds_node, mds_port] = mds_target();
    const sim::Time mds_at = sim::ms(500 + static_cast<int64_t>(next() % 1500));
    cfg.faults.crash_service(mds_node, mds_port, mds_at, mds_at + sim::ms(300));
    enable_restart_recovery();
  }

  core::Deployment d(cfg);
  if (d.rebuild() != nullptr) {
    d.start_rebuild();
    // The monitor would keep the event queue alive forever; let it watch
    // until the scripted kill has been rebuilt (or give up), then stop so
    // the run can drain.
    d.simulation().spawn([](core::Deployment& dd) -> sim::Task<void> {
      for (int spin = 0; spin < 600; ++spin) {
        co_await dd.simulation().delay(sim::ms(100));
        if (dd.rebuild()->stats().rebuilds_completed >= 1) break;
      }
      dd.stop_rebuild();
    }(d));
  }

  workload::RunResult result;
  if (wl.rfind("ior-", 0) == 0) {
    workload::IorConfig icfg;
    icfg.write = wl.find("write") != std::string::npos;
    icfg.single_file = wl.find("single") != std::string::npos;
    icfg.bytes_per_client = bytes;
    icfg.block_size = block;
    workload::IorWorkload w(icfg);
    result = run_workload(d, w);
  } else if (wl == "atlas") {
    workload::AtlasConfig acfg;
    acfg.bytes_per_client = bytes;
    acfg.file_span = bytes;
    workload::AtlasWorkload w(acfg);
    result = run_workload(d, w);
  } else if (wl == "btio") {
    workload::BtioConfig bcfg;
    bcfg.file_bytes = bytes;
    workload::BtioWorkload w(bcfg);
    result = run_workload(d, w);
  } else if (wl == "strided") {
    workload::StridedConfig scfg;
    // Size the run from --bytes: records per checkpoint so the dense file
    // totals roughly the requested bytes.
    const uint64_t per_ckpt =
        bytes / (static_cast<uint64_t>(scfg.checkpoints) * cfg.clients *
                 scfg.record_bytes);
    scfg.records_per_checkpoint =
        static_cast<uint32_t>(std::max<uint64_t>(1, per_ckpt));
    workload::StridedWorkload w(scfg);
    result = run_workload(d, w);
  } else if (wl == "oltp" || wl == "oltp-update") {
    workload::OltpConfig ocfg;
    ocfg.file_bytes = bytes;
    ocfg.transactions_per_client = txns;
    ocfg.update_only = wl == "oltp-update";
    workload::OltpWorkload w(ocfg);
    result = run_workload(d, w);
  } else if (wl == "postmark") {
    workload::PostmarkConfig pcfg;
    pcfg.transactions = txns;
    workload::PostmarkWorkload w(pcfg);
    result = run_workload(d, w);
  } else if (wl == "tenant-mix") {
    // Child order matches the round-robin tenant assignment: client i gets
    // tenant 1 + (i % tenants) and runs child i % 2, so tenant1 = ingest
    // (sequential IOR write) and tenant2 = OLTP when --tenants=2.
    workload::IorConfig icfg;
    icfg.write = true;
    icfg.bytes_per_client = bytes;
    icfg.block_size = block;
    workload::OltpConfig ocfg;
    ocfg.file_bytes = bytes;
    ocfg.transactions_per_client = txns;
    std::vector<std::unique_ptr<workload::Workload>> children;
    children.push_back(std::make_unique<workload::IorWorkload>(icfg));
    children.push_back(std::make_unique<workload::OltpWorkload>(ocfg));
    workload::TenantMixWorkload w(std::move(children));
    result = run_workload(d, w);
  } else {
    std::fprintf(stderr, "unknown --workload '%s'\n", wl.c_str());
    return 2;
  }

  std::printf("architecture      %s\n", core::architecture_name(cfg.architecture));
  std::printf("workload          %s\n", wl.c_str());
  std::printf("clients           %u\n", cfg.clients);
  std::printf("simulated time    %.3f s\n", result.elapsed_seconds);
  std::printf("app bytes moved   %.1f MB\n", result.app_bytes / 1e6);
  std::printf("aggregate         %.1f MB/s\n", result.aggregate_mbps());
  if (result.transactions > 0) {
    std::printf("transactions      %llu (%.1f tps)\n",
                static_cast<unsigned long long>(result.transactions),
                result.tps());
  }
  if (fault_ds >= 0 || fault_restart >= 0 || fault_kill >= 0 ||
      chaos_seed >= 0) {
    uint64_t retries = 0, fallbacks = 0, trips = 0;
    uint64_t mismatches = 0, replayed = 0, replayed_bytes = 0;
    uint64_t reroutes = 0, degraded_reads = 0, degraded_writes = 0;
    uint64_t degraded_commits = 0, reconstructions = 0;
    for (size_t i = 0; i < d.client_count(); ++i) {
      if (auto* c = dynamic_cast<core::NfsFileSystemClient*>(&d.client(i))) {
        const auto& s = c->native().stats();
        retries += s.recovery_retries;
        fallbacks += s.mds_fallbacks;
        trips += s.breaker_trips;
        mismatches += s.verifier_mismatches;
        replayed += s.replayed_extents;
        replayed_bytes += s.replayed_bytes;
        reroutes += s.replica_reroutes;
        degraded_reads += s.degraded_reads;
        degraded_writes += s.degraded_writes;
        degraded_commits += s.degraded_commits;
        reconstructions += s.ec_reconstructions;
      } else if (auto* p =
                     dynamic_cast<core::PvfsFileSystemClient*>(&d.client(i))) {
        const auto& s = p->native().stats();
        mismatches += s.verifier_mismatches;
        replayed += s.replayed_extents;
        replayed_bytes += s.replayed_bytes;
      }
    }
    std::printf("recovery          %llu retries, %llu MDS fallbacks, "
                "%llu breaker trips\n",
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(fallbacks),
                static_cast<unsigned long long>(trips));
    std::printf("replay            %llu verifier mismatches, %llu extents "
                "(%.1f MB) replayed\n",
                static_cast<unsigned long long>(mismatches),
                static_cast<unsigned long long>(replayed),
                replayed_bytes / 1e6);
    if (reroutes + degraded_reads + degraded_writes + degraded_commits +
            reconstructions >
        0) {
      std::printf("redundancy        %llu reroutes, %llu degraded reads, "
                  "%llu degraded writes, %llu degraded commits, "
                  "%llu EC reconstructions\n",
                  static_cast<unsigned long long>(reroutes),
                  static_cast<unsigned long long>(degraded_reads),
                  static_cast<unsigned long long>(degraded_writes),
                  static_cast<unsigned long long>(degraded_commits),
                  static_cast<unsigned long long>(reconstructions));
    }
    if (const core::RebuildManager* r = d.rebuild()) {
      const core::RebuildStats& rs = r->stats();
      std::printf("rebuild           %llu declared dead, %llu/%llu objects "
                  "rebuilt/failed (%.1f MB)\n",
                  static_cast<unsigned long long>(rs.dses_declared_dead),
                  static_cast<unsigned long long>(rs.objects_rebuilt),
                  static_cast<unsigned long long>(rs.objects_failed),
                  rs.bytes_rebuilt / 1e6);
    }
  }
  if (flag(argc, argv, "--verbose")) {
    std::printf("\nper-node traffic:\n");
    d.print_traffic_report();
  }
  if (breakdown) {
    obs::BreakdownReport rep = obs::analyze_all(d.tracer());
    std::printf("\n%s", rep.report().c_str());
    std::printf("%s\n",
                rep.to_json(core::architecture_name(cfg.architecture)).c_str());
  }
  if (!trace_out.empty()) {
    if (!d.write_trace(trace_out)) {
      std::fprintf(stderr, "failed to write trace to '%s'\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("trace timeline    %s (%zu spans%s; open in ui.perfetto.dev)\n",
                trace_out.c_str(), d.tracer().retained_spans().size(),
                d.tracer().spans_dropped() > 0 ? ", some dropped" : "");
  }
  if (cfg.tenants > 0) {
    std::printf("tenants           %u assigned, %llu seen, %llu evicted\n",
                cfg.tenants,
                static_cast<unsigned long long>(d.tenant_ledger().tenants_seen()),
                static_cast<unsigned long long>(
                    d.tenant_ledger().tenants_evicted()));
  }
  if (!metrics_out.empty()) {
    if (!write_text_file(metrics_out, d.metrics_json())) {
      std::fprintf(stderr, "failed to write metrics to '%s'\n",
                   metrics_out.c_str());
      return 1;
    }
    std::printf("metrics document  %s\n", metrics_out.c_str());
  }
  if (!flight_out.empty()) {
    if (!d.write_flight(flight_out)) {
      std::fprintf(stderr, "failed to write flight dump to '%s'\n",
                   flight_out.c_str());
      return 1;
    }
    std::printf("flight recorder   %s (%llu events)\n", flight_out.c_str(),
                static_cast<unsigned long long>(d.flight().events_recorded()));
  }
  return 0;
}
