// Quickstart: build a Direct-pNFS cluster, write a file through the stock
// NFSv4.1 client, read it back, and look at where the bytes landed.
//
//   $ ./build/examples/quickstart
//
// Everything below runs inside the discrete-event simulation: the "cluster"
// is six storage nodes (PVFS2-like storage daemons + co-located NFSv4.1
// data servers), a metadata server with the Direct-pNFS layout translator,
// and one client node — all exchanging real XDR-encoded RPCs over a
// simulated gigabit network.
#include <cstdio>

#include "core/deployment.hpp"
#include "util/bytes.hpp"

using namespace dpnfs;
using namespace dpnfs::util::literals;
using sim::Task;

namespace {

Task<void> demo(core::Deployment& cluster) {
  // 1. Mount: EXCHANGE_ID, CREATE_SESSION, GETDEVICELIST under the hood.
  co_await cluster.mount_all();
  core::FileSystemClient& fs = cluster.client(0);

  // 2. Create a directory and a file; the MDS grants a pNFS layout at open.
  co_await fs.mkdir("/demo");
  auto file = co_await fs.open("/demo/hello.dat", /*create=*/true);

  // 3. Write 64 MiB.  The client write-back cache coalesces this into 2 MB
  //    WRITEs sent *directly* to the data server holding each stripe.
  std::printf("writing 64 MiB...\n");
  for (uint64_t off = 0; off < 64_MiB; off += 4_MiB) {
    co_await file->write(off, rpc::Payload::virtual_bytes(4_MiB));
  }
  co_await file->close();  // close commits to stable storage

  // 4. Read it back (server caches are warm; client cache dropped so the
  //    bytes really cross the wire again).
  fs.drop_caches();
  auto again = co_await fs.open("/demo/hello.dat", false);
  std::printf("reading %s back...\n", util::format_bytes(again->size()).c_str());
  uint64_t total = 0;
  for (uint64_t off = 0; off < again->size(); off += 4_MiB) {
    rpc::Payload p = co_await again->read(off, 4_MiB);
    total += p.size();
  }
  co_await again->close();
  std::printf("read %s\n", util::format_bytes(total).c_str());
}

}  // namespace

int main() {
  core::ClusterConfig config;  // the paper's testbed: 6 storage nodes, GbE
  config.architecture = core::Architecture::kDirectPnfs;
  config.clients = 1;
  core::Deployment cluster(config);

  cluster.simulation().spawn(demo(cluster));
  cluster.simulation().run();

  std::printf("\nsimulated time: %.3f s\n",
              sim::to_seconds(cluster.simulation().now()));
  std::printf("layouts granted by the translator: %llu\n",
              static_cast<unsigned long long>(
                  cluster.translator()->layouts_granted()));
  std::printf("\nper-storage-node disk traffic (striping in action):\n");
  int i = 0;
  for (auto* store : cluster.stores()) {
    std::printf("  storage%d: %s written to disk\n", i++,
                util::format_bytes(store->stats().disk_write_bytes).c_str());
  }
  return 0;
}
