// Render-farm scenario (the paper's digital-studio motivation, §1:
// "terabytes of data every day ... access from compute clusters and
// heterogeneous workstations").
//
// Eight render nodes each read a shared scene-asset file and write a batch
// of output frames; a compositing node then reads everything back.  The
// same binary runs the workload over Direct-pNFS, pNFS-2tier, and plain
// NFSv4 — the heterogeneity argument in action: the *client* never changes,
// only the deployment behind the mount.
#include <cstdio>

#include "core/deployment.hpp"
#include "util/bytes.hpp"

using namespace dpnfs;
using namespace dpnfs::util::literals;
using sim::Task;

namespace {

constexpr uint64_t kAssetBytes = 96_MiB;
constexpr int kFramesPerNode = 12;
constexpr uint64_t kFrameBytes = 12_MiB;  // ~4K EXR frame

Task<void> render_node(core::Deployment& cluster, size_t idx) {
  auto& fs = cluster.client(idx);
  // Load the scene assets (shared file, warm server caches after the first
  // reader).
  auto assets = co_await fs.open("/scene/assets.bin", false);
  for (uint64_t off = 0; off < assets->size(); off += 4_MiB) {
    (void)co_await assets->read(off, 4_MiB);
  }
  co_await assets->close();
  // Render frames.
  for (int f = 0; f < kFramesPerNode; ++f) {
    const std::string path = "/frames/node" + std::to_string(idx) + "_f" +
                             std::to_string(f) + ".exr";
    auto frame = co_await fs.open(path, true);
    co_await frame->write(0, rpc::Payload::virtual_bytes(kFrameBytes));
    co_await frame->close();
  }
}

Task<void> scenario(core::Deployment& cluster, double& render_s,
                    double& composite_s) {
  co_await cluster.mount_all();
  auto& fs0 = cluster.client(0);
  co_await fs0.mkdir("/scene");
  co_await fs0.mkdir("/frames");
  {
    auto assets = co_await fs0.open("/scene/assets.bin", true);
    co_await assets->write(0, rpc::Payload::virtual_bytes(kAssetBytes));
    co_await assets->close();
    fs0.drop_caches();
  }

  const sim::Time t0 = cluster.simulation().now();
  sim::WaitGroup farm(cluster.simulation());
  for (size_t i = 0; i < cluster.client_count(); ++i) {
    farm.spawn(render_node(cluster, i));
  }
  co_await farm.wait();
  const sim::Time t1 = cluster.simulation().now();

  // Compositing: one node ingests every frame.
  auto& comp = cluster.client(0);
  const auto frames = co_await comp.list("/frames");
  for (const auto& name : frames) {
    auto f = co_await comp.open("/frames/" + name, false);
    for (uint64_t off = 0; off < f->size(); off += 4_MiB) {
      (void)co_await f->read(off, 4_MiB);
    }
    co_await f->close();
  }
  const sim::Time t2 = cluster.simulation().now();
  render_s = sim::to_seconds(t1 - t0);
  composite_s = sim::to_seconds(t2 - t1);
}

void run(core::Architecture arch) {
  core::ClusterConfig config;
  config.architecture = arch;
  config.clients = 8;
  core::Deployment cluster(config);
  double render_s = 0, composite_s = 0;
  cluster.simulation().spawn(scenario(cluster, render_s, composite_s));
  cluster.simulation().run();
  const double frame_bytes = 8.0 * kFramesPerNode * kFrameBytes;
  std::printf("%-14s render: %6.1fs (%6.1f MB/s)   composite: %6.1fs\n",
              core::architecture_name(arch), render_s,
              frame_bytes / 1e6 / render_s, composite_s);
}

}  // namespace

int main() {
  std::printf("Render farm: 8 nodes x %d frames of %s, shared %s asset file\n\n",
              kFramesPerNode, util::format_bytes(kFrameBytes).c_str(),
              util::format_bytes(kAssetBytes).c_str());
  run(core::Architecture::kDirectPnfs);
  run(core::Architecture::kPnfs2Tier);
  run(core::Architecture::kPlainNfs);
  std::printf("\nThe client code is identical in all three runs — only the\n"
              "deployment changes.  Direct layouts keep frame traffic off the\n"
              "inter-server paths.\n");
  return 0;
}
