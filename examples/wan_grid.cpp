// GridNFS over the wide area (the paper's §1-2 motivation: "A single client
// can access data within a LAN and across a WAN").
//
// The same Direct-pNFS cluster is driven with one-way network latencies
// from LAN (60 us) to transcontinental (40 ms).  Bulk transfers survive
// latency (pipelined wsize WRITEs and readahead), while chatty small-I/O
// suffers — the classic WAN trade-off, quantified.
#include <cstdio>

#include "core/deployment.hpp"
#include "workload/ior.hpp"
#include "workload/oltp.hpp"
#include "workload/runner.hpp"

using namespace dpnfs;

namespace {

struct Row {
  double bulk_write_mbps;
  double bulk_read_mbps;
  double oltp_tps;
};

Row run_with_latency(sim::Duration latency) {
  Row row{};
  {
    core::ClusterConfig cfg;
    cfg.clients = 4;
    cfg.nic.latency = latency;
    core::Deployment d(cfg);
    workload::IorConfig ior;
    ior.bytes_per_client = 100'000'000;
    workload::IorWorkload w(ior);
    row.bulk_write_mbps = run_workload(d, w).aggregate_mbps();
  }
  {
    core::ClusterConfig cfg;
    cfg.clients = 4;
    cfg.nic.latency = latency;
    core::Deployment d(cfg);
    workload::IorConfig ior;
    ior.write = false;
    ior.bytes_per_client = 100'000'000;
    workload::IorWorkload w(ior);
    row.bulk_read_mbps = run_workload(d, w).aggregate_mbps();
  }
  {
    core::ClusterConfig cfg;
    cfg.clients = 4;
    cfg.nic.latency = latency;
    core::Deployment d(cfg);
    workload::OltpConfig ocfg;
    ocfg.file_bytes = 64ull << 20;
    ocfg.transactions_per_client = 400;
    workload::OltpWorkload w(ocfg);
    row.oltp_tps = run_workload(d, w).tps();
  }
  return row;
}

}  // namespace

int main() {
  std::printf("Direct-pNFS across the WAN (4 clients, 6 storage nodes)\n\n");
  std::printf("%-18s%16s%16s%14s\n", "one-way latency", "bulk write MB/s",
              "bulk read MB/s", "OLTP tps");
  struct Case {
    const char* label;
    sim::Duration latency;
  } cases[] = {
      {"60 us (LAN)", sim::us(60)},
      {"1 ms (metro)", sim::ms(1)},
      {"10 ms (region)", sim::ms(10)},
      {"40 ms (cross-US)", sim::ms(40)},
  };
  for (const auto& c : cases) {
    const Row r = run_with_latency(c.latency);
    std::printf("%-18s%16.1f%16.1f%14.1f\n", c.label, r.bulk_write_mbps,
                r.bulk_read_mbps, r.oltp_tps);
  }
  std::printf("\nPipelined bulk I/O tolerates latency; synchronous small\n"
              "transactions pay a full RTT per step — GridNFS's argument for\n"
              "shared parallel access over copy-based tools.\n");
  return 0;
}
