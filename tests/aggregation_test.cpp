// Aggregation driver tests: exact mappings plus the partition/coverage
// properties every driver must satisfy.
#include <gtest/gtest.h>

#include "core/aggregation_drivers.hpp"
#include "nfs/layout.hpp"
#include "util/rng.hpp"

namespace dpnfs::core {
namespace {

using nfs::AggregationType;
using nfs::FileLayout;
using nfs::StripeSegment;

FileLayout base_layout(uint32_t devices, uint64_t stripe_unit) {
  FileLayout l;
  l.aggregation = AggregationType::kRoundRobin;
  l.stripe_unit = stripe_unit;
  for (uint32_t i = 0; i < devices; ++i) {
    l.devices.push_back(nfs::DeviceId{i});
    l.fhs.push_back(nfs::FileHandle{100 + i});
  }
  return l;
}

/// Checks that `segments` exactly partition [offset, offset+length) in file
/// order (required for read assembly).
void check_partition(const std::vector<StripeSegment>& segments,
                     uint64_t offset, uint64_t length) {
  uint64_t cursor = offset;
  for (const auto& seg : segments) {
    ASSERT_EQ(seg.file_offset, cursor);
    ASSERT_GT(seg.length, 0u);
    cursor += seg.length;
  }
  ASSERT_EQ(cursor, offset + length);
}

// ---------------------------------------------------------------------------
// Round-robin (standard scheme)
// ---------------------------------------------------------------------------

TEST(RoundRobin, DensePacking) {
  nfs::RoundRobinDriver d;
  FileLayout l = base_layout(3, 100);
  // Stripe 4 lives on device 1 (4 % 3), at dense offset (4/3)*100 = 100.
  auto segs = d.map_read(l, 400, 50);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].device_index, 1u);
  EXPECT_EQ(segs[0].dev_offset, 100u);
}

TEST(RoundRobin, CrossStripeSplits) {
  nfs::RoundRobinDriver d;
  FileLayout l = base_layout(3, 100);
  auto segs = d.map_read(l, 50, 100);  // stripes 0 and 1
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].device_index, 0u);
  EXPECT_EQ(segs[0].dev_offset, 50u);
  EXPECT_EQ(segs[0].length, 50u);
  EXPECT_EQ(segs[1].device_index, 1u);
  EXPECT_EQ(segs[1].dev_offset, 0u);
  check_partition(segs, 50, 100);
}

TEST(RoundRobin, SingleDeviceMergesToOneSegment) {
  nfs::RoundRobinDriver d;
  FileLayout l = base_layout(1, 100);
  auto segs = d.map_read(l, 0, 1000);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].length, 1000u);
}

TEST(Cyclic, RotatesByFirstDeviceParam) {
  nfs::CyclicDriver d;
  FileLayout l = base_layout(4, 100);
  l.aggregation = AggregationType::kCyclic;
  l.params = {2};  // first stripe lands on device 2
  auto segs = d.map_read(l, 0, 100);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].device_index, 2u);
  segs = d.map_read(l, 200, 100);  // stripe 2 -> device (2+2)%4 = 0
  EXPECT_EQ(segs[0].device_index, 0u);
}

// ---------------------------------------------------------------------------
// Variable stripe
// ---------------------------------------------------------------------------

TEST(VariableStripe, RegionsChangeStripeSize) {
  VariableStripeDriver d;
  FileLayout l = base_layout(2, 0);
  l.aggregation = AggregationType::kVariableStripe;
  // 2 regions: 4 stripes of 10 bytes, then 100-byte stripes forever.
  l.params = {2, 10, 4, 100, 1};
  // First region: stripes 0..3 alternate devices 0,1,0,1.
  auto segs = d.map_read(l, 0, 40);
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[0].device_index, 0u);
  EXPECT_EQ(segs[1].device_index, 1u);
  EXPECT_EQ(segs[2].dev_offset, 10u);  // dense on device 0
  // Second region starts at byte 40 with stripe 4 -> device 0.
  segs = d.map_read(l, 40, 100);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].device_index, 0u);
  EXPECT_EQ(segs[0].dev_offset, 20u);  // after two 10-byte stripes
  check_partition(segs, 40, 100);
}

TEST(VariableStripe, MalformedParamsThrow) {
  VariableStripeDriver d;
  FileLayout l = base_layout(2, 0);
  l.params = {};
  EXPECT_THROW(d.map_read(l, 0, 10), std::invalid_argument);
  l.params = {1, 10};  // missing count
  EXPECT_THROW(d.map_read(l, 0, 10), std::invalid_argument);
  l.params = {1, 0, 5};  // zero stripe size
  EXPECT_THROW(d.map_read(l, 0, 10), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Replicated
// ---------------------------------------------------------------------------

TEST(Replicated, WritesGoToEveryDevice) {
  ReplicatedDriver d;
  FileLayout l = base_layout(3, 100);
  auto segs = d.map_write(l, 250, 100);
  ASSERT_EQ(segs.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(segs[i].device_index, i);
    EXPECT_EQ(segs[i].dev_offset, 250u);  // full copy: identity offsets
    EXPECT_EQ(segs[i].length, 100u);
  }
}

TEST(Replicated, ReadsSpreadAcrossReplicas) {
  ReplicatedDriver d;
  FileLayout l = base_layout(3, 100);
  auto segs = d.map_read(l, 0, 300);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].device_index, 0u);
  EXPECT_EQ(segs[1].device_index, 1u);
  EXPECT_EQ(segs[2].device_index, 2u);
  check_partition(segs, 0, 300);
  // Device offsets equal file offsets (each replica is a full copy).
  EXPECT_EQ(segs[1].dev_offset, segs[1].file_offset);
}

// ---------------------------------------------------------------------------
// Nested
// ---------------------------------------------------------------------------

TEST(Nested, GroupThenSubDeviceOrder) {
  NestedDriver d;
  FileLayout l = base_layout(4, 100);
  l.aggregation = AggregationType::kNested;
  l.params = {2};  // 2 groups of 2
  // Stripes 0..3 -> devices 0, 2, 1, 3 (group round-robin, then within).
  const size_t expect[] = {0, 2, 1, 3};
  for (uint64_t s = 0; s < 4; ++s) {
    auto segs = d.map_read(l, s * 100, 100);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0].device_index, expect[s]) << "stripe " << s;
  }
  // Stripe 4 wraps to device 0 at group-round offset (4/2)*100 = 200: every
  // member of a mirror group holds its group's round at the same offset, so
  // any member can serve the stripe during degraded reads.
  auto segs = d.map_read(l, 400, 100);
  EXPECT_EQ(segs[0].device_index, 0u);
  EXPECT_EQ(segs[0].dev_offset, 200u);
}

TEST(Nested, WritesCopyToEveryGroupMember) {
  NestedDriver d;
  FileLayout l = base_layout(4, 100);
  l.aggregation = AggregationType::kNested;
  l.params = {2};  // 2 groups of 2
  // Stripe 1 belongs to group 1 (devices 2 and 3); both get a copy at the
  // same device offset.
  auto segs = d.map_write(l, 100, 100);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].device_index, 2u);
  EXPECT_EQ(segs[1].device_index, 3u);
  for (const auto& s : segs) {
    EXPECT_EQ(s.dev_offset, 0u);
    EXPECT_EQ(s.file_offset, 100u);
    EXPECT_EQ(s.length, 100u);
  }
  // A two-stripe range fans out to both groups, two copies each.
  segs = d.map_write(l, 0, 200);
  ASSERT_EQ(segs.size(), 4u);
}

TEST(Nested, BadGroupSizeThrows) {
  NestedDriver d;
  FileLayout l = base_layout(4, 100);
  l.params = {3};  // 4 % 3 != 0
  EXPECT_THROW(d.map_read(l, 0, 10), std::invalid_argument);
  l.params = {};
  EXPECT_THROW(d.map_read(l, 0, 10), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Erasure coded
// ---------------------------------------------------------------------------

FileLayout ec_layout(uint64_t k, uint64_t m, uint64_t su) {
  FileLayout l = base_layout(static_cast<uint32_t>(k + m), su);
  l.aggregation = AggregationType::kErasureCoded;
  l.params = {k, m};
  return l;
}

TEST(ErasureCoded, ReadsOnlyTouchDataDevices) {
  ErasureCodedDriver d;
  FileLayout l = ec_layout(4, 2, 100);
  // Stripe 5 -> data device 1 (5 % 4) at offset (5/4)*100 = 100.
  auto segs = d.map_read(l, 500, 100);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].device_index, 1u);
  EXPECT_EQ(segs[0].dev_offset, 100u);
  EXPECT_FALSE(segs[0].parity);
  auto wide = d.map_read(l, 0, 1600);  // four full groups
  for (const auto& s : wide) {
    EXPECT_LT(s.device_index, 4u);  // never devices 4..5 (parity)
    EXPECT_FALSE(s.parity);
  }
  check_partition(wide, 0, 1600);
}

TEST(ErasureCoded, WritesAddParityPerTouchedGroup) {
  ErasureCodedDriver d;
  FileLayout l = ec_layout(4, 2, 100);
  // One byte in group 1 (group bytes = 400): one data segment plus m=2
  // parity segments on devices 4 and 5 at group-round offset 1*100.
  auto segs = d.map_write(l, 450, 1);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].device_index, 0u);  // stripe 4 -> data device 0
  EXPECT_FALSE(segs[0].parity);
  for (size_t j = 1; j < 3; ++j) {
    EXPECT_EQ(segs[j].device_index, 3u + j);
    EXPECT_TRUE(segs[j].parity);
    EXPECT_EQ(segs[j].dev_offset, 100u);
    EXPECT_EQ(segs[j].file_offset, 400u);  // group start in file space
    EXPECT_EQ(segs[j].length, 100u);       // always a whole stripe unit
  }
  // A range spanning groups 0..1 emits parity for both groups.
  segs = d.map_write(l, 0, 800);
  size_t parity = 0;
  for (const auto& s : segs) parity += s.parity ? 1 : 0;
  EXPECT_EQ(parity, 4u);  // 2 groups x m=2
}

TEST(ErasureCoded, MalformedParamsThrow) {
  ErasureCodedDriver d;
  FileLayout l = ec_layout(4, 2, 100);
  l.params = {4};  // missing m
  EXPECT_THROW(d.map_read(l, 0, 10), std::invalid_argument);
  l.params = {4, 2};
  l.devices.pop_back();  // devices != k + m
  EXPECT_THROW(d.map_read(l, 0, 10), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Properties shared by all drivers
// ---------------------------------------------------------------------------

struct DriverCase {
  const nfs::AggregationDriver* driver;
  FileLayout layout;
  std::string name;
};

class AllDrivers : public ::testing::Test {
 protected:
  AllDrivers() : registry_(full_aggregation_registry()) {
    {
      FileLayout l = base_layout(4, 64);
      cases_.push_back({registry_.find(AggregationType::kRoundRobin), l, "rr"});
    }
    {
      FileLayout l = base_layout(4, 64);
      l.aggregation = AggregationType::kCyclic;
      l.params = {3};
      cases_.push_back({registry_.find(AggregationType::kCyclic), l, "cyclic"});
    }
    {
      FileLayout l = base_layout(4, 64);
      l.aggregation = AggregationType::kVariableStripe;
      l.params = {3, 16, 8, 64, 4, 256, 1};
      cases_.push_back(
          {registry_.find(AggregationType::kVariableStripe), l, "variable"});
    }
    {
      FileLayout l = base_layout(4, 64);
      l.aggregation = AggregationType::kReplicated;
      cases_.push_back(
          {registry_.find(AggregationType::kReplicated), l, "replicated"});
    }
    {
      FileLayout l = base_layout(4, 64);
      l.aggregation = AggregationType::kNested;
      l.params = {2};
      cases_.push_back({registry_.find(AggregationType::kNested), l, "nested"});
    }
    {
      FileLayout l = base_layout(6, 64);
      l.aggregation = AggregationType::kErasureCoded;
      l.params = {4, 2};
      cases_.push_back(
          {registry_.find(AggregationType::kErasureCoded), l, "ec"});
    }
  }

  nfs::AggregationRegistry registry_;
  std::vector<DriverCase> cases_;
};

TEST_F(AllDrivers, ReadMapPartitionsAnyRange) {
  util::Rng rng(5);
  for (const auto& c : cases_) {
    ASSERT_NE(c.driver, nullptr) << c.name;
    for (int trial = 0; trial < 200; ++trial) {
      const uint64_t offset = rng.below(10'000);
      const uint64_t length = rng.range(1, 4'000);
      auto segs = c.driver->map_read(c.layout, offset, length);
      uint64_t cursor = offset;
      for (const auto& seg : segs) {
        ASSERT_EQ(seg.file_offset, cursor) << c.name;
        ASSERT_LT(seg.device_index, c.layout.devices.size()) << c.name;
        cursor += seg.length;
      }
      ASSERT_EQ(cursor, offset + length) << c.name;
    }
  }
}

TEST_F(AllDrivers, MappingIsDeterministicAndConsistentWithSubranges) {
  // Mapping [a, c) must agree with mapping [a, b) + [b, c): the same file
  // byte always lands on the same (device, dev_offset).
  util::Rng rng(6);
  for (const auto& c : cases_) {
    if (c.layout.aggregation == AggregationType::kReplicated) continue;
    for (int trial = 0; trial < 50; ++trial) {
      const uint64_t a = rng.below(5'000);
      const uint64_t b = a + rng.range(1, 1'000);
      const uint64_t cc = b + rng.range(1, 1'000);
      auto whole = c.driver->map_read(c.layout, a, cc - a);
      auto left = c.driver->map_read(c.layout, a, b - a);
      auto right = c.driver->map_read(c.layout, b, cc - b);

      // Build byte -> (device, dev_offset) maps and compare.
      auto locate = [](const std::vector<StripeSegment>& segs, uint64_t byte)
          -> std::pair<size_t, uint64_t> {
        for (const auto& s : segs) {
          if (byte >= s.file_offset && byte < s.file_offset + s.length) {
            return {s.device_index, s.dev_offset + (byte - s.file_offset)};
          }
        }
        return {SIZE_MAX, 0};
      };
      for (uint64_t probe = a; probe < cc; probe += 37) {
        const auto from_whole = locate(whole, probe);
        const auto from_split =
            probe < b ? locate(left, probe) : locate(right, probe);
        ASSERT_EQ(from_whole, from_split) << c.name << " byte " << probe;
      }
    }
  }
}

TEST_F(AllDrivers, NoTwoSegmentsOverlapOnOneDevice) {
  for (const auto& c : cases_) {
    if (c.layout.aggregation == AggregationType::kReplicated) continue;
    auto segs = c.driver->map_read(c.layout, 0, 8192);
    for (size_t i = 0; i < segs.size(); ++i) {
      for (size_t j = i + 1; j < segs.size(); ++j) {
        if (segs[i].device_index != segs[j].device_index) continue;
        const bool disjoint =
            segs[i].dev_offset + segs[i].length <= segs[j].dev_offset ||
            segs[j].dev_offset + segs[j].length <= segs[i].dev_offset;
        ASSERT_TRUE(disjoint) << c.name;
      }
    }
  }
}

TEST_F(AllDrivers, WriteMapCoversRangeWithExpectedRedundancy) {
  // Every file byte written must land on at least one device (non-parity
  // segment), and redundant schemes must cover it on every required copy.
  util::Rng rng(7);
  for (const auto& c : cases_) {
    size_t copies = 1;
    if (c.layout.aggregation == AggregationType::kReplicated) {
      copies = c.layout.devices.size();
    } else if (c.layout.aggregation == AggregationType::kNested) {
      copies = c.layout.params[0];
    }
    for (int trial = 0; trial < 100; ++trial) {
      const uint64_t offset = rng.below(10'000);
      const uint64_t length = rng.range(1, 4'000);
      auto segs = c.driver->map_write(c.layout, offset, length);
      for (uint64_t probe = offset; probe < offset + length; probe += 53) {
        size_t hits = 0;
        for (const auto& s : segs) {
          if (s.parity) continue;
          if (probe >= s.file_offset && probe < s.file_offset + s.length) {
            ++hits;
          }
        }
        ASSERT_EQ(hits, copies) << c.name << " byte " << probe;
      }
      if (c.layout.aggregation == AggregationType::kErasureCoded) {
        // m parity segments per touched group, always whole stripe units.
        const uint64_t gb = c.layout.params[0] * c.layout.stripe_unit;
        const uint64_t groups =
            (offset + length - 1) / gb - offset / gb + 1;
        size_t parity = 0;
        for (const auto& s : segs) {
          if (!s.parity) continue;
          ++parity;
          ASSERT_EQ(s.length, c.layout.stripe_unit) << c.name;
          ASSERT_GE(s.device_index, c.layout.params[0]) << c.name;
        }
        ASSERT_EQ(parity, groups * c.layout.params[1]) << c.name;
      }
    }
  }
}

TEST(Registry, FullRegistryKnowsEveryScheme) {
  auto reg = full_aggregation_registry();
  EXPECT_NE(reg.find(AggregationType::kRoundRobin), nullptr);
  EXPECT_NE(reg.find(AggregationType::kCyclic), nullptr);
  EXPECT_NE(reg.find(AggregationType::kVariableStripe), nullptr);
  EXPECT_NE(reg.find(AggregationType::kReplicated), nullptr);
  EXPECT_NE(reg.find(AggregationType::kNested), nullptr);
  EXPECT_NE(reg.find(AggregationType::kErasureCoded), nullptr);
}

TEST(Registry, StandardRegistryLacksExtensions) {
  auto reg = nfs::AggregationRegistry::with_standard_drivers();
  EXPECT_NE(reg.find(AggregationType::kRoundRobin), nullptr);
  EXPECT_NE(reg.find(AggregationType::kCyclic), nullptr);
  EXPECT_EQ(reg.find(AggregationType::kReplicated), nullptr);
  EXPECT_EQ(reg.find(AggregationType::kNested), nullptr);
}

}  // namespace
}  // namespace dpnfs::core
