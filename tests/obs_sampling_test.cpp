// Scale-ready observability: head-sampling determinism, tail-based
// promotion of slow/errored traces, the oldest-evicting retained-span ring,
// hop-histogram completeness reporting, streaming percentile digests vs
// exact Summary, and end-to-end sampled-set reproducibility through real
// deployments.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "util/obs.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/ior.hpp"

namespace dpnfs {
namespace {

using obs::Span;
using obs::SpanKind;
using obs::TraceContext;
using obs::Tracer;

Span root_span(const TraceContext& ctx, obs::TimeNs start, obs::TimeNs end,
               const std::string& name = "nfs/38") {
  Span s;
  s.trace_id = ctx.trace_id;
  s.span_id = ctx.span_id;
  s.parent_span_id = 0;
  s.kind = SpanKind::kClientCall;
  s.name = name;
  s.node = "client0";
  s.start = start;
  s.end = end;
  return s;
}

Span child_span(const TraceContext& ctx, uint64_t parent, obs::TimeNs start,
                obs::TimeNs end) {
  Span s;
  s.trace_id = ctx.trace_id;
  s.span_id = ctx.span_id;
  s.parent_span_id = parent;
  s.kind = SpanKind::kServerExec;
  s.name = "nfs/38";
  s.node = "storage0";
  s.start = start;
  s.end = end;
  return s;
}

// ---------------------------------------------------------------------------
// Head-sampling determinism
// ---------------------------------------------------------------------------

TEST(Sampling, VerdictIsDeterministicAcrossTracers) {
  Tracer a;
  Tracer b;
  for (Tracer* t : {&a, &b}) {
    t->set_sample_rate(0.25);
    t->set_sample_seed(42);
  }
  std::set<uint64_t> sampled_a;
  std::set<uint64_t> sampled_b;
  for (int i = 0; i < 2000; ++i) {
    const TraceContext ca = a.begin();
    const TraceContext cb = b.begin();
    if (ca.sampled) sampled_a.insert(ca.trace_id);
    if (cb.sampled) sampled_b.insert(cb.trace_id);
  }
  EXPECT_EQ(sampled_a, sampled_b);
  EXPECT_EQ(a.traces_sampled(), sampled_a.size());
  // ~25% of 2000, loose bounds: the verdict hash must not be degenerate.
  EXPECT_GT(sampled_a.size(), 350u);
  EXPECT_LT(sampled_a.size(), 650u);

  // A different seed samples a different subset at the same rate.
  Tracer c;
  c.set_sample_rate(0.25);
  c.set_sample_seed(43);
  std::set<uint64_t> sampled_c;
  for (int i = 0; i < 2000; ++i) {
    const TraceContext cc = c.begin();
    if (cc.sampled) sampled_c.insert(cc.trace_id);
  }
  EXPECT_NE(sampled_a, sampled_c);
}

TEST(Sampling, ChildContextInheritsRootVerdict) {
  Tracer t;
  t.set_sample_rate(0.5);
  t.set_sample_seed(7);
  bool saw_sampled = false;
  bool saw_unsampled = false;
  for (int i = 0; i < 64; ++i) {
    const TraceContext root = t.begin();
    const TraceContext child = t.begin(root);
    const TraceContext grandchild = t.begin(child);
    EXPECT_EQ(child.sampled, root.sampled);
    EXPECT_EQ(grandchild.sampled, root.sampled);
    EXPECT_EQ(root.sampled, t.sample_decision(root.trace_id));
    saw_sampled = saw_sampled || root.sampled;
    saw_unsampled = saw_unsampled || !root.sampled;
  }
  EXPECT_TRUE(saw_sampled);
  EXPECT_TRUE(saw_unsampled);
}

TEST(Sampling, AggregatesStayExactAtAnyRate) {
  // The same span stream through rate-1.0 and rate-0.0 tracers must agree
  // on every aggregate: sampling trades span detail, never accounting.
  Tracer always;
  Tracer never;
  never.set_sample_rate(0.0);
  never.set_staging_capacity(0);
  for (Tracer* t : {&always, &never}) {
    for (int i = 0; i < 100; ++i) {
      const TraceContext root = t->begin();
      const TraceContext child = t->begin(root);
      t->record(child_span(child, root.span_id, 10, 90));
      t->record(root_span(root, 0, 100));
    }
  }
  EXPECT_EQ(always.traces_started(), never.traces_started());
  EXPECT_EQ(always.rpc_hops_total(), never.rpc_hops_total());
  EXPECT_EQ(always.spans_recorded(), never.spans_recorded());
  EXPECT_EQ(always.hops_histogram(), never.hops_histogram());
  EXPECT_EQ(always.hop_traces_seen(), never.hop_traces_seen());
  // The per-op SLO section sees all traffic in both.
  EXPECT_NE(always.slo_json().find("\"requests\": 100"), std::string::npos);
  EXPECT_NE(never.slo_json().find("\"requests\": 100"), std::string::npos);
  // Detail differs as designed.
  EXPECT_EQ(always.spans().size(), 200u);
  EXPECT_TRUE(never.spans().empty());
  EXPECT_TRUE(never.retained_spans().empty());
  EXPECT_EQ(never.spans_sampled_out(), 200u);
}

// ---------------------------------------------------------------------------
// Tail-based retention
// ---------------------------------------------------------------------------

TEST(TailRetention, SlowTraceIsPromotedAtNearZeroRate) {
  Tracer t;
  t.set_sample_rate(0.001);
  t.set_sample_seed(1);
  t.set_slo_threshold(1'000'000);  // 1 ms
  uint64_t slow_trace = 0;
  // Many fast traces plus one slow one, all (almost surely) unsampled.
  for (int i = 0; i < 200; ++i) {
    const TraceContext root = t.begin();
    const TraceContext child = t.begin(root);
    const bool slow = i == 117;
    const obs::TimeNs end = slow ? 5'000'000 : 200'000;
    if (slow) slow_trace = root.trace_id;
    t.record(child_span(child, root.span_id, 10, end - 10));
    t.record(root_span(root, 0, end));
  }
  ASSERT_NE(slow_trace, 0u);
  if (t.sample_decision(slow_trace)) GTEST_SKIP() << "unlucky seed";
  const std::vector<Span> kept = t.trace_spans(slow_trace);
  ASSERT_EQ(kept.size(), 2u) << "slow trace must keep full span detail";
  for (const Span& s : kept) {
    EXPECT_FALSE(s.sampled);
    EXPECT_TRUE(s.promoted);
  }
  EXPECT_GE(t.traces_promoted(), 1u);
  // Fast clean unsampled traces were discarded on purpose.
  EXPECT_GT(t.spans_sampled_out(), 0u);
}

TEST(TailRetention, ErroredTraceIsPromotedAtRateZero) {
  Tracer t;
  t.set_sample_rate(0.0);
  const TraceContext ok = t.begin();
  t.record(root_span(ok, 0, 100));
  const TraceContext bad = t.begin();
  Span failing = root_span(bad, 0, 100, "nfs/38 timeout");
  failing.error = true;
  t.record(std::move(failing));
  EXPECT_TRUE(t.trace_spans(ok.trace_id).empty());
  const std::vector<Span> kept = t.trace_spans(bad.trace_id);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_TRUE(kept.front().promoted);
  EXPECT_TRUE(kept.front().error);
  EXPECT_EQ(t.traces_promoted(), 1u);
}

TEST(TailRetention, ErroredChildPromotesWholeTrace) {
  // The root may finish clean (e.g. a retry succeeded) while a child hop
  // timed out: the error anywhere in the trace makes it interesting.
  Tracer t;
  t.set_sample_rate(0.0);
  const TraceContext root = t.begin();
  const TraceContext child = t.begin(root);
  Span failing = child_span(child, root.span_id, 10, 90);
  failing.error = true;
  t.record(std::move(failing));
  t.record(root_span(root, 0, 100));
  EXPECT_EQ(t.trace_spans(root.trace_id).size(), 2u);
  EXPECT_EQ(t.traces_promoted(), 1u);
}

TEST(TailRetention, LateSpansJoinAlreadyPromotedTrace) {
  // Retried RPCs record children *after* the errored anchor root: by then
  // the trace is promoted, and the late detail must land with it.
  Tracer t;
  t.set_sample_rate(0.0);
  const TraceContext root = t.begin();
  Span anchor = root_span(root, 0, 100, "nfs/38 timeout");
  anchor.error = true;
  t.record(std::move(anchor));
  ASSERT_EQ(t.traces_promoted(), 1u);
  const TraceContext retry = t.begin(root);
  t.record(child_span(retry, root.span_id, 150, 250));
  const std::vector<Span> kept = t.trace_spans(root.trace_id);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_TRUE(kept.back().promoted);
}

TEST(TailRetention, StagingDisabledMeansNoPromotion) {
  Tracer t;
  t.set_sample_rate(0.0);
  t.set_staging_capacity(0);
  const TraceContext bad = t.begin();
  Span failing = root_span(bad, 0, 100);
  failing.error = true;
  t.record(std::move(failing));
  EXPECT_TRUE(t.trace_spans(bad.trace_id).empty());
  EXPECT_EQ(t.traces_promoted(), 0u);
  EXPECT_EQ(t.spans_sampled_out(), 1u);
}

// ---------------------------------------------------------------------------
// Retained-span ring (satellite: evict oldest, not newest)
// ---------------------------------------------------------------------------

TEST(SpanRing, OverflowEvictsOldestSpans) {
  Tracer t;
  t.set_span_capacity(2);
  std::vector<uint64_t> traces;
  for (int i = 0; i < 5; ++i) {
    const TraceContext c = t.begin();
    traces.push_back(c.trace_id);
    t.record(root_span(c, i * 100, i * 100 + 10));
  }
  ASSERT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans_dropped(), 3u);
  EXPECT_EQ(t.spans_recorded(), 5u);
  // A long run keeps the *newest* detail: traces 4 and 5 survive, 1-3 are
  // gone (the pre-ring behavior kept 1-2 and dropped everything after).
  EXPECT_TRUE(t.trace_spans(traces[0]).empty());
  EXPECT_TRUE(t.trace_spans(traces[1]).empty());
  EXPECT_TRUE(t.trace_spans(traces[2]).empty());
  EXPECT_EQ(t.trace_spans(traces[3]).size(), 1u);
  EXPECT_EQ(t.trace_spans(traces[4]).size(), 1u);
  EXPECT_EQ(t.spans().front().trace_id, traces[3]);
  EXPECT_EQ(t.spans().back().trace_id, traces[4]);
}

TEST(SpanRing, PromotedTraceSurvivesRingChurn) {
  Tracer t;
  t.set_sample_rate(0.5);
  t.set_sample_seed(99);
  t.set_span_capacity(4);
  // Promote one unsampled errored trace, then churn the sampled ring far
  // past its capacity: promoted detail must not be evicted.
  uint64_t promoted_trace = 0;
  for (int i = 0; i < 400; ++i) {
    const TraceContext c = t.begin();
    Span s = root_span(c, i * 100, i * 100 + 10);
    if (promoted_trace == 0 && !c.sampled) {
      promoted_trace = c.trace_id;
      s.error = true;
    }
    t.record(std::move(s));
  }
  ASSERT_NE(promoted_trace, 0u);
  EXPECT_LE(t.spans().size(), 4u);
  const std::vector<Span> kept = t.trace_spans(promoted_trace);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_TRUE(kept.front().promoted);
  // And it shows up in the full retained view alongside the ring.
  bool found = false;
  for (const Span& s : t.retained_spans()) {
    found = found || s.trace_id == promoted_trace;
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Hop-histogram completeness (satellite: truncated view must say so)
// ---------------------------------------------------------------------------

TEST(Tracer, HopHistogramReportsCompleteness) {
  Tracer fresh;
  const TraceContext c = fresh.begin();
  fresh.record(root_span(c, 0, 10));
  const std::string complete = fresh.to_json();
  EXPECT_NE(complete.find("\"hop_histogram_complete\": true"),
            std::string::npos);
  EXPECT_NE(complete.find("\"hop_traces_seen\": 1"), std::string::npos);

  Tracer evicting;
  evicting.set_hop_trace_capacity(4);
  for (int i = 0; i < 10; ++i) {
    const TraceContext r = evicting.begin();
    evicting.record(root_span(r, 0, 10));
  }
  EXPECT_EQ(evicting.hop_traces_seen(), 10u);
  EXPECT_EQ(evicting.hop_traces_evicted(), 6u);
  const std::string truncated = evicting.to_json();
  EXPECT_NE(truncated.find("\"hop_histogram_complete\": false"),
            std::string::npos);
  EXPECT_NE(truncated.find("\"hop_traces_seen\": 10"), std::string::npos);
  EXPECT_NE(truncated.find("\"hop_traces_evicted\": 6"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Streaming percentile digest
// ---------------------------------------------------------------------------

TEST(PercentileDigest, MatchesSummaryWithinBucketWidth) {
  util::Rng rng(12345);
  util::Summary exact;
  util::PercentileDigest digest;
  // A heavy-tailed latency-shaped distribution across several decades.
  for (int i = 0; i < 50'000; ++i) {
    const double u = rng.uniform();
    const double v = 50.0 * std::exp(6.0 * u);  // ~50us .. ~20ms
    exact.add(v);
    digest.add(v);
  }
  EXPECT_EQ(digest.count(), 50'000u);
  EXPECT_NEAR(digest.mean(), exact.mean(), exact.mean() * 1e-9);
  EXPECT_DOUBLE_EQ(digest.min(), exact.min());
  EXPECT_DOUBLE_EQ(digest.max(), exact.max());
  for (const double q : {0.50, 0.90, 0.99, 0.999}) {
    const double want = exact.percentile(q * 100.0);
    const double got = digest.quantile(q);
    EXPECT_NEAR(got, want, want * util::PercentileDigest::relative_error())
        << "q=" << q;
  }
}

TEST(PercentileDigest, MergeEqualsCombinedStream) {
  util::Rng rng(777);
  util::PercentileDigest a;
  util::PercentileDigest b;
  util::PercentileDigest combined;
  for (int i = 0; i < 10'000; ++i) {
    const double v = 1.0 + rng.uniform() * 999.0;
    (i % 2 == 0 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  // Summation order differs between the split and combined streams, so the
  // sums agree only up to floating-point reassociation error.
  EXPECT_NEAR(a.sum(), combined.sum(), 1e-6 * combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
  }
}

TEST(PercentileDigest, EmptyAndJson) {
  util::PercentileDigest d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 0.0);
  d.add(12.0);
  const std::string json = d.to_json();
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\": 12"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: deployments
// ---------------------------------------------------------------------------

std::set<uint64_t> run_sampled_trace_ids(uint64_t seed) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 3;
  cfg.clients = 2;
  cfg.trace_sample_rate = 0.5;
  cfg.trace_sample_seed = seed;
  cfg.trace_slo_threshold = sim::sec(10);  // nothing is that slow here
  core::Deployment d(cfg);
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 8ull << 20;
  workload::IorWorkload w(ior);
  workload::run_workload(d, w);
  std::set<uint64_t> ids;
  for (const Span& s : d.tracer().spans()) ids.insert(s.trace_id);
  EXPECT_GT(d.tracer().traces_sampled(), 0u);
  EXPECT_LT(d.tracer().traces_sampled(), d.tracer().traces_started());
  return ids;
}

TEST(Deployment, SampledTraceIdSetsAreReproducible) {
  const std::set<uint64_t> first = run_sampled_trace_ids(2024);
  const std::set<uint64_t> second = run_sampled_trace_ids(2024);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Deployment, MetricsJsonCarriesSloSection) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 3;
  cfg.clients = 1;
  cfg.trace_sample_rate = 0.25;
  cfg.trace_slo_threshold = sim::ms(50);
  core::Deployment d(cfg);
  workload::IorConfig ior;
  ior.write = true;
  ior.bytes_per_client = 8ull << 20;
  workload::IorWorkload w(ior);
  const workload::RunResult r = workload::run_workload(d, w);
  EXPECT_NE(r.metrics_json.find("\"slo\":"), std::string::npos);
  EXPECT_NE(r.metrics_json.find("\"per_op\""), std::string::npos);
  EXPECT_NE(r.metrics_json.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(r.metrics_json.find("\"traces_sampled\""), std::string::npos);
  EXPECT_NE(r.metrics_json.find("\"traces_promoted\""), std::string::npos);
  EXPECT_NE(r.metrics_json.find("\"hop_histogram_complete\""),
            std::string::npos);
  EXPECT_NE(r.metrics_json.find("\"digests\""), std::string::npos);
  // The rpc service-time digest rode along with the histograms.
  const util::PercentileDigest* svc =
      d.metrics().find_digest("storage0", "rpc", "service_us");
  ASSERT_NE(svc, nullptr);
  EXPECT_GT(svc->count(), 0u);
}

}  // namespace
}  // namespace dpnfs
