// End-to-end failure recovery under scripted fault injection (part of the
// `faults` ctest label).  Scenarios: an NFS data-server daemon crashing
// mid-write (the client must finish via transport retries, same-DS slice
// retries, layout re-fetch, and MDS fallback — with byte-identical data),
// RPC deadlines that expire instead of hanging, retries appearing as child
// spans of one trace, whole-node crash + revive, a layout recall racing
// in-flight recovery, and disk faults surfacing as I/O errors.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/adapters.hpp"
#include "core/deployment.hpp"
#include "lfs/object_store.hpp"
#include "nfs/client.hpp"
#include "nfs/local_backend.hpp"
#include "nfs/server.hpp"
#include "rpc/fabric.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "util/bytes.hpp"
#include "util/obs.hpp"

namespace dpnfs {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

/// Deterministic content for [offset, offset+length): every byte is a
/// function of its absolute file offset, so reassembled reads are checkable
/// regardless of which path (DS or MDS) served them.
Payload pattern_payload(uint64_t offset, uint64_t length) {
  std::vector<std::byte> v(length);
  for (uint64_t i = 0; i < length; ++i) {
    const uint64_t o = offset + i;
    v[i] = static_cast<std::byte>((o * 131 + (o >> 12) * 7 + 13) & 0xFF);
  }
  return Payload::inline_bytes(std::move(v));
}

// ---------------------------------------------------------------------------
// DS daemon crash mid-write on Direct-pNFS -> MDS fallback, correct data
// ---------------------------------------------------------------------------

struct RecoveryOutcome {
  sim::Time finished = 0;
  nfs::ClientStats writer{};
  bool data_ok = false;
  bool export_has_recovery = false;
};

/// One storage node's NFS daemon (port 2049) crashes at kCrashAt — after the
/// first half of the file is written — while the PVFS I/O daemon on the same
/// node keeps serving.  The write must complete through the MDS and the file
/// must read back byte-identical (the MDS path reaches the same stripe
/// objects through the parallel FS).
RecoveryOutcome run_ds_crash_scenario() {
  constexpr sim::Time kCrashAt = sim::sec(1);
  constexpr uint64_t kHalf = 8_MiB;

  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  cfg.nfs_client.ds_timeout = sim::ms(20);
  cfg.nfs_client.ds_rpc_retries = 1;
  cfg.nfs_client.slice_retries = 1;
  cfg.nfs_client.breaker_threshold = 2;
  cfg.nfs_client.breaker_reset = sim::sec(60);
  // Storage nodes get ids 0..3; kill the NFS DS daemon on storage1 only.
  cfg.faults.crash_service(1, rpc::kNfsPort, kCrashAt);

  core::Deployment d(cfg);
  RecoveryOutcome out;
  d.simulation().spawn([](core::Deployment& d, RecoveryOutcome& out,
                          sim::Time crash_at, uint64_t half) -> Task<void> {
    co_await d.mount_all();
    auto f = co_await d.client(0).open("/f", true);
    co_await f->write(0, pattern_payload(0, half));
    co_await f->fsync();

    // Second half lands after the scripted crash.
    auto& sim = d.simulation();
    if (sim.now() <= crash_at) co_await sim.delay(crash_at + sim::ms(1) - sim.now());
    co_await f->write(half, pattern_payload(half, half));
    co_await f->fsync();
    co_await f->close();

    // Read back through the second client: its DS-bound READs recover too.
    auto g = co_await d.client(1).open_read("/f");
    Payload back = co_await g->read(0, 2 * half);
    Payload want = pattern_payload(0, half);
    want.append(pattern_payload(half, half));
    out.data_ok = back == want;
    co_await g->close();
    out.finished = sim.now();
  }(d, out, kCrashAt, kHalf));
  d.simulation().run();

  out.writer =
      dynamic_cast<core::NfsFileSystemClient&>(d.client(0)).native().stats();
  out.export_has_recovery =
      d.metrics_json().find("client.recovery") != std::string::npos;
  return out;
}

TEST(FaultRecovery, DsCrashMidWriteRecoversViaMdsFallback) {
  const RecoveryOutcome out = run_ds_crash_scenario();
  EXPECT_TRUE(out.data_ok);
  EXPECT_GT(out.finished, sim::sec(1));
  EXPECT_GT(out.writer.recovery_retries, 0u);
  EXPECT_GT(out.writer.mds_fallbacks, 0u);
  EXPECT_GE(out.writer.breaker_trips, 1u);
  EXPECT_GT(out.writer.layout_refetches, 0u);
  EXPECT_TRUE(out.export_has_recovery);
}

TEST(FaultRecovery, DsCrashScenarioIsDeterministic) {
  const RecoveryOutcome a = run_ds_crash_scenario();
  const RecoveryOutcome b = run_ds_crash_scenario();
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.data_ok, b.data_ok);
  EXPECT_EQ(a.writer.recovery_retries, b.writer.recovery_retries);
  EXPECT_EQ(a.writer.mds_fallbacks, b.writer.mds_fallbacks);
  EXPECT_EQ(a.writer.breaker_trips, b.writer.breaker_trips);
  EXPECT_EQ(a.writer.layout_refetches, b.writer.layout_refetches);
}

// ---------------------------------------------------------------------------
// RPC-level deadlines, retries, and trace shape
// ---------------------------------------------------------------------------

struct RpcRig {
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  std::unique_ptr<sim::FaultInjector> injector;

  RpcRig() { fabric.set_observability(&metrics, &tracer); }

  sim::Node& add_node(const std::string& name, bool with_disk = false) {
    return net.add_node(sim::NodeParams{
        .name = name,
        .nic = sim::NicParams{.bytes_per_sec = 100e6, .latency = sim::us(10)},
        .disk = with_disk ? std::optional<sim::DiskParams>(sim::DiskParams{})
                          : std::nullopt,
        .cpu = sim::CpuParams{.cores = 2}});
  }

  void inject(sim::FaultPlan plan) {
    injector = std::make_unique<sim::FaultInjector>(std::move(plan));
    net.set_fault_injector(injector.get());
  }
};

rpc::RpcService echo_handler() {
  return [](const rpc::CallContext&, rpc::XdrDecoder&,
            rpc::XdrEncoder& out) -> Task<void> {
    out.put_u32(42);
    co_return;
  };
}

TEST(FaultRecovery, DeadlineExpiryProducesTimedOutNotHang) {
  RpcRig r;
  auto& client_node = r.add_node("client");
  auto& server_node = r.add_node("server");
  rpc::RpcServer server(r.fabric, server_node, rpc::kNfsPort, 2,
                        echo_handler());
  server.start();
  // Daemon down forever: every attempt must expire at its deadline.
  r.inject(sim::FaultPlan{}.crash_service(server_node.id(), rpc::kNfsPort, 0));

  rpc::RpcClient client(r.fabric, client_node, "t@SIM");
  bool done = false;
  rpc::RpcClient::Reply reply;
  r.sim.spawn([](rpc::RpcClient& c, rpc::RpcAddress to, bool& done,
                 rpc::RpcClient::Reply& reply) -> Task<void> {
    reply = co_await c.call(to, rpc::Program::kNfs, 4, 1, rpc::XdrEncoder{},
                            rpc::CallOptions{.timeout = sim::ms(10),
                                             .max_retries = 2,
                                             .backoff = sim::ms(5)});
    done = true;
  }(client, server.address(), done, reply));
  r.sim.run();

  ASSERT_TRUE(done);  // the simulation drained: no hung coroutine
  EXPECT_EQ(reply.transport, rpc::Status::kTimedOut);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_EQ(client.timeouts(), 3u);
  // 3 attempts x 10 ms + backoffs: bounded, far below the 2 s drop fallback.
  EXPECT_LT(r.sim.now(), sim::ms(200));
}

TEST(FaultRecovery, DroppedCallWithoutDeadlineUsesFabricDropTimeout) {
  RpcRig r;
  auto& client_node = r.add_node("client");
  auto& server_node = r.add_node("server");
  rpc::RpcServer server(r.fabric, server_node, rpc::kNfsPort, 2,
                        echo_handler());
  server.start();
  r.inject(sim::FaultPlan{}.crash_service(server_node.id(), rpc::kNfsPort, 0));

  rpc::RpcClient client(r.fabric, client_node, "t@SIM");
  bool done = false;
  rpc::RpcClient::Reply reply;
  r.sim.spawn([](rpc::RpcClient& c, rpc::RpcAddress to, bool& done,
                 rpc::RpcClient::Reply& reply) -> Task<void> {
    reply = co_await c.call(to, rpc::Program::kNfs, 4, 1, rpc::XdrEncoder{});
    done = true;
  }(client, server.address(), done, reply));
  r.sim.run();

  ASSERT_TRUE(done);
  EXPECT_EQ(reply.transport, rpc::Status::kTimedOut);
  EXPECT_GE(r.sim.now(), r.fabric.drop_timeout());
}

TEST(FaultRecovery, RetriedCallsAreChildSpansOfOneTrace) {
  RpcRig r;
  auto& client_node = r.add_node("client");
  auto& server_node = r.add_node("server");
  rpc::RpcServer server(r.fabric, server_node, rpc::kNfsPort, 2,
                        echo_handler());
  server.start();
  // Down long enough to kill attempt 1, back up for the retry.
  r.inject(sim::FaultPlan{}.crash_service(server_node.id(), rpc::kNfsPort, 0,
                                          sim::ms(12)));

  rpc::RpcClient client(r.fabric, client_node, "t@SIM");
  rpc::RpcClient::Reply reply;
  r.sim.spawn([](rpc::RpcClient& c, rpc::RpcAddress to,
                 rpc::RpcClient::Reply& reply) -> Task<void> {
    reply = co_await c.call(to, rpc::Program::kNfs, 4, 1, rpc::XdrEncoder{},
                            rpc::CallOptions{.timeout = sim::ms(10),
                                             .max_retries = 3,
                                             .backoff = sim::ms(4)});
  }(client, server.address(), reply));
  r.sim.run();

  EXPECT_TRUE(reply.ok());
  EXPECT_GE(client.retries(), 1u);
  EXPECT_EQ(r.tracer.traces_started(), 1u);

  std::vector<obs::Span> attempts;
  for (const obs::Span& s : r.tracer.spans()) {
    if (s.kind == obs::SpanKind::kClientCall) attempts.push_back(s);
  }
  ASSERT_GE(attempts.size(), 2u);
  // Attempt 1 anchors the trace; every retry is its child in the same trace.
  const obs::Span& anchor = attempts.front();
  EXPECT_EQ(anchor.parent_span_id, 0u);
  EXPECT_NE(anchor.name.find(" timeout"), std::string::npos);
  EXPECT_EQ(anchor.bytes_in, 0u);
  for (size_t i = 1; i < attempts.size(); ++i) {
    EXPECT_EQ(attempts[i].trace_id, anchor.trace_id);
    EXPECT_EQ(attempts[i].parent_span_id, anchor.span_id);
  }
  EXPECT_EQ(attempts.back().name.find(" timeout"), std::string::npos);
}

TEST(FaultRecovery, NodeCrashAndReviveRecoversWithRetries) {
  RpcRig r;
  auto& client_node = r.add_node("client");
  auto& server_node = r.add_node("server");
  rpc::RpcServer server(r.fabric, server_node, rpc::kNfsPort, 2,
                        echo_handler());
  server.start();
  // The whole machine is unreachable for 50 ms, then comes back.
  r.inject(sim::FaultPlan{}.crash_node(server_node.id(), 0, sim::ms(50)));

  rpc::RpcClient client(r.fabric, client_node, "t@SIM");
  rpc::RpcClient::Reply reply;
  r.sim.spawn([](rpc::RpcClient& c, rpc::RpcAddress to,
                 rpc::RpcClient::Reply& reply) -> Task<void> {
    reply = co_await c.call(to, rpc::Program::kNfs, 4, 1, rpc::XdrEncoder{},
                            rpc::CallOptions{.timeout = sim::ms(20),
                                             .max_retries = 5,
                                             .backoff = sim::ms(10)});
  }(client, server.address(), reply));
  r.sim.run();

  EXPECT_TRUE(reply.ok());
  EXPECT_GE(client.retries(), 1u);
  EXPECT_GE(r.sim.now(), sim::ms(50));  // only succeeded after the revive
}

// ---------------------------------------------------------------------------
// Layout recall racing in-flight recovery
// ---------------------------------------------------------------------------

TEST(FaultRecovery, LayoutRecallDuringRetryCompletes) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  cfg.nfs_client.ds_timeout = sim::ms(20);
  cfg.nfs_client.ds_rpc_retries = 1;
  cfg.nfs_client.slice_retries = 1;
  cfg.nfs_client.breaker_threshold = 2;
  cfg.nfs_client.breaker_reset = sim::sec(60);
  // storage1's DS daemon is down from the start; client 0's writes to it
  // spend a long time in the retry ladder.
  cfg.faults.crash_service(1, rpc::kNfsPort, 0, sim::sec(30));

  core::Deployment d(cfg);
  bool writer_done = false;
  bool truncator_done = false;
  sim::Latch fsync_started(d.simulation());
  d.simulation().spawn([](core::Deployment& d, bool& writer_done,
                          bool& truncator_done,
                          sim::Latch& fsync_started) -> Task<void> {
    co_await d.mount_all();
    sim::WaitGroup wg(d.simulation());
    wg.spawn([](core::Deployment& d, bool& done,
                sim::Latch& fsync_started) -> Task<void> {
      auto f = co_await d.client(0).open("/f", true);
      co_await f->write(0, pattern_payload(0, 8_MiB));
      fsync_started.set();
      co_await f->fsync();  // retries against dead storage1 -> MDS fallback
      co_await f->close();
      done = true;
    }(d, writer_done, fsync_started));
    wg.spawn([](core::Deployment& d, bool& done,
                sim::Latch& fsync_started) -> Task<void> {
      // Land the SETATTR (and the layout recall it triggers) while client 0
      // is inside the retry ladder: the first WRITE to the dead DS spends
      // >= 40 ms in transport timeouts before the first slice retry.
      co_await fsync_started.wait();
      co_await d.simulation().delay(sim::ms(25));
      auto& peer =
          dynamic_cast<core::NfsFileSystemClient&>(d.client(1)).native();
      co_await peer.truncate("/f", 1_MiB);
      done = true;
    }(d, truncator_done, fsync_started));
    co_await wg.wait();
  }(d, writer_done, truncator_done, fsync_started));
  d.simulation().run();

  EXPECT_TRUE(writer_done);
  EXPECT_TRUE(truncator_done);
  const auto& stats =
      dynamic_cast<core::NfsFileSystemClient&>(d.client(0)).native().stats();
  EXPECT_GT(stats.recovery_retries + stats.mds_fallbacks, 0u);
}

// ---------------------------------------------------------------------------
// Boot-instance boundaries: replies queued before a crash never surface
// ---------------------------------------------------------------------------

TEST(FaultRecovery, QueuedReplyDroppedAcrossServiceRestart) {
  RpcRig r;
  auto& client_node = r.add_node("client");
  auto& server_node = r.add_node("server");
  int runs = 0;
  // Each execution stamps its run number into the reply after a 30 ms think
  // time, so a reply computed by boot instance 1 but sent after the revive
  // is distinguishable from a fresh execution.
  rpc::RpcServer server(
      r.fabric, server_node, rpc::kNfsPort, 2,
      [&r, &runs](const rpc::CallContext&, rpc::XdrDecoder&,
                  rpc::XdrEncoder& out) -> Task<void> {
        const uint32_t run = static_cast<uint32_t>(++runs);
        co_await r.sim.delay(sim::ms(30));
        out.put_u32(run);
      });
  server.start();
  // The service dies at 10 ms — while execution #1 is in flight — and is
  // back at 20 ms.  The reply straddles the boot boundary and must be
  // dropped, not delivered late to the retrying client.
  r.inject(sim::FaultPlan{}.crash_service(server_node.id(), rpc::kNfsPort,
                                          sim::ms(10), sim::ms(20)));

  rpc::RpcClient client(r.fabric, client_node, "t@SIM");
  rpc::RpcClient::Reply reply;
  r.sim.spawn([](rpc::RpcClient& c, rpc::RpcAddress to,
                 rpc::RpcClient::Reply& reply) -> Task<void> {
    reply = co_await c.call(to, rpc::Program::kNfs, 4, 1, rpc::XdrEncoder{},
                            rpc::CallOptions{.timeout = sim::ms(40),
                                             .max_retries = 2,
                                             .backoff = sim::ms(5)});
  }(client, server.address(), reply));
  r.sim.run();

  ASSERT_TRUE(reply.ok());
  auto body = reply.body();
  EXPECT_EQ(body.get_u32(), 2u);  // the answer came from the NEW instance
  EXPECT_EQ(runs, 2);             // old execution ran but its reply vanished
  EXPECT_GE(client.timeouts(), 1u);
  EXPECT_EQ(r.injector->boot_instance(server_node.id(), rpc::kNfsPort,
                                      r.sim.now()),
            2u);
}

// ---------------------------------------------------------------------------
// Write verifiers: clean restart between WRITE and COMMIT
// ---------------------------------------------------------------------------

/// Direct-pNFS rig for the verifier tests: 2 DSes, streaming unstable
/// write-back with background COMMITs disabled so data is guaranteed to sit
/// uncommitted in server memory across the scripted restart window.
core::ClusterConfig verifier_rig_config() {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 2;
  cfg.clients = 2;
  cfg.nfs_client.wb_commit_backlog = 0;  // fsync is the only COMMIT source
  return cfg;
}

TEST(FaultRecovery, CommitAfterCleanRestartMismatchesExactlyOnce) {
  core::ClusterConfig cfg = verifier_rig_config();
  // storage1's DS daemon restarts cleanly (no request in flight) in the gap
  // between the streamed WRITEs and the explicit fsync.
  cfg.faults.crash_service(1, rpc::kNfsPort, sim::ms(500), sim::ms(520));

  core::Deployment d(cfg);
  bool data_ok = false;
  d.simulation().spawn([](core::Deployment& d, bool& data_ok) -> Task<void> {
    co_await d.mount_all();
    auto f = co_await d.client(0).open("/f", true);
    // 4 MiB = one full 2 MiB stripe chunk per DS; both stream out as
    // UNSTABLE WRITEs immediately and then sit uncommitted.
    co_await f->write(0, pattern_payload(0, 4_MiB));
    co_await d.simulation().delay(sim::ms(600) - d.simulation().now());
    // First COMMIT to the revived DS returns the new boot verifier: the
    // client must detect the mismatch once and replay the lost extent.
    co_await f->fsync();
    // A second fsync must be a no-op: the replayed data was committed
    // under the new verifier.
    co_await f->fsync();
    co_await f->close();

    auto g = co_await d.client(1).open_read("/f");
    Payload back = co_await g->read(0, 4_MiB);
    data_ok = back == pattern_payload(0, 4_MiB);
    co_await g->close();
  }(d, data_ok));
  d.simulation().run();

  EXPECT_TRUE(data_ok);
  const auto& stats =
      dynamic_cast<core::NfsFileSystemClient&>(d.client(0)).native().stats();
  EXPECT_EQ(stats.verifier_mismatches, 1u);  // exactly once, not per retry
  EXPECT_GE(stats.replayed_extents, 1u);
  EXPECT_EQ(stats.replayed_bytes, 2_MiB);  // only the crashed DS's chunk
  EXPECT_EQ(stats.mds_fallbacks, 0u);      // replay, not proxy degradation
}

TEST(FaultRecovery, ReplayIsIdempotentAcrossRepeatedRestarts) {
  core::ClusterConfig cfg = verifier_rig_config();
  // The same DS restarts twice; the same byte range is replayed each time.
  cfg.faults.crash_service(1, rpc::kNfsPort, sim::ms(500), sim::ms(520));
  cfg.faults.crash_service(1, rpc::kNfsPort, sim::ms(1500), sim::ms(1520));

  core::Deployment d(cfg);
  bool round_ok[2] = {false, false};
  d.simulation().spawn([](core::Deployment& d, bool* round_ok) -> Task<void> {
    co_await d.mount_all();
    auto f = co_await d.client(0).open("/f", true);
    for (int round = 0; round < 2; ++round) {
      // Identical bytes at identical offsets each round: the second replay
      // re-sends extents the object already holds.
      co_await f->write(0, pattern_payload(0, 4_MiB));
      const sim::Time quiet = sim::ms(600 + 1000 * round);
      co_await d.simulation().delay(quiet - d.simulation().now());
      co_await f->fsync();
      auto g = co_await d.client(1).open_read("/f");
      Payload back = co_await g->read(0, 4_MiB);
      round_ok[round] = back == pattern_payload(0, 4_MiB);
      co_await g->close();
      d.client(1).drop_caches();
    }
    co_await f->close();
  }(d, round_ok));
  d.simulation().run();

  // Double replay of the same extents leaves the object byte-identical.
  EXPECT_TRUE(round_ok[0]);
  EXPECT_TRUE(round_ok[1]);
  const auto& stats =
      dynamic_cast<core::NfsFileSystemClient&>(d.client(0)).native().stats();
  EXPECT_EQ(stats.verifier_mismatches, 2u);
  EXPECT_EQ(stats.replayed_bytes, 4_MiB);  // 2 MiB lost per restart
}

// ---------------------------------------------------------------------------
// MDS restart: grace period, session recovery, one layout re-fetch per file
// ---------------------------------------------------------------------------

TEST(FaultRecovery, MdsRestartRefetchesLayoutOncePerOpenFile) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 2;
  cfg.clients = 1;
  cfg.nfs_client.mds_timeout = sim::ms(500);
  cfg.mds_grace_period = sim::ms(50);  // revived MDS answers GRACE first
  // The MDS service (not the co-located DS daemon) restarts at 500 ms.
  cfg.faults.crash_service(0, core::kMdsPort, sim::ms(500), sim::ms(520));

  core::Deployment d(cfg);
  uint64_t refetches_before = 0;
  uint64_t refetches_after_two = 0;
  bool data_ok = false;
  d.simulation().spawn([](core::Deployment& d, uint64_t& before,
                          uint64_t& after_two, bool& data_ok) -> Task<void> {
    co_await d.mount_all();
    auto& nc = dynamic_cast<core::NfsFileSystemClient&>(d.client(0)).native();
    auto a = co_await d.client(0).open("/a", true);
    auto b = co_await d.client(0).open("/b", true);
    co_await a->write(0, pattern_payload(0, 2_MiB));
    co_await a->fsync();
    co_await b->write(0, pattern_payload(1_GiB, 2_MiB));
    co_await b->fsync();
    before = nc.stats().layout_refetches;

    // Land the first post-revive op *inside* the 50 ms grace window: the
    // client must absorb NFS4ERR_GRACE retries, then re-establish the
    // session — which invalidates every held layout (the new boot instance
    // knows nothing of them).
    co_await d.simulation().delay(sim::ms(530) - d.simulation().now());
    co_await a->write(2_MiB, pattern_payload(2_MiB, 2_MiB));
    co_await a->fsync();  // LAYOUTCOMMIT hits the restarted MDS
    // Each open file re-fetches its layout exactly once, on its next I/O.
    co_await b->write(2_MiB, pattern_payload(1_GiB + 2_MiB, 2_MiB));
    co_await b->fsync();
    co_await a->write(4_MiB, pattern_payload(4_MiB, 2_MiB));
    co_await a->fsync();
    after_two = nc.stats().layout_refetches;

    // Further I/O on already-refreshed layouts must not re-fetch again.
    co_await a->write(6_MiB, pattern_payload(6_MiB, 2_MiB));
    co_await a->fsync();
    co_await b->write(4_MiB, pattern_payload(1_GiB + 4_MiB, 2_MiB));
    co_await b->fsync();
    co_await a->close();
    co_await b->close();

    auto ra = co_await d.client(0).open_read("/a");
    Payload back = co_await ra->read(0, 8_MiB);
    Payload want = pattern_payload(0, 8_MiB);
    data_ok = back == want;
    co_await ra->close();
  }(d, refetches_before, refetches_after_two, data_ok));
  d.simulation().run();

  const auto& stats =
      dynamic_cast<core::NfsFileSystemClient&>(d.client(0)).native().stats();
  EXPECT_TRUE(data_ok);
  // Exactly one LAYOUTGET per open file with a layout, no more.
  EXPECT_EQ(refetches_after_two - refetches_before, 2u);
  EXPECT_EQ(stats.layout_refetches, refetches_after_two);
  EXPECT_GE(stats.session_recoveries, 1u);
}

// ---------------------------------------------------------------------------
// Disk faults
// ---------------------------------------------------------------------------

TEST(FaultRecovery, DiskFaultSurfacesAsIoErrorThenHeals) {
  RpcRig r;
  auto& server_node = r.add_node("server", /*with_disk=*/true);
  auto& client_node = r.add_node("client");
  lfs::ObjectStore store(server_node);
  nfs::LocalBackend backend(store);
  nfs::NfsServer server(r.fabric, server_node, rpc::kNfsPort, backend);
  server.start();
  // Disk dead until t = 100 ms; commits in that window must fail cleanly.
  r.inject(sim::FaultPlan{}.fail_disk(server_node.id(), 0, sim::ms(100)));

  nfs::NfsClient client(r.fabric, client_node, server.address(), "t@SIM",
                        nfs::ClientConfig{.pnfs_enabled = false});
  bool failed_during_fault = false;
  bool healed = false;
  r.sim.spawn([](nfs::NfsClient& c, sim::Simulation& sim,
                 bool& failed_during_fault, bool& healed) -> Task<void> {
    co_await c.mount();
    auto f = co_await c.open("/f", true);
    co_await c.write(f, 0, Payload::virtual_bytes(64_KiB));
    try {
      co_await c.fsync(f);  // COMMIT -> flush -> DiskFailedError -> kIo
    } catch (const nfs::NfsError&) {
      failed_during_fault = true;
    }
    co_await sim.delay(sim::ms(150) - sim.now());
    co_await c.write(f, 64_KiB, Payload::virtual_bytes(64_KiB));
    co_await c.fsync(f);  // disk healed: must succeed
    healed = true;
    co_await c.close(f);
  }(client, r.sim, failed_during_fault, healed));
  r.sim.run();

  EXPECT_TRUE(failed_during_fault);
  EXPECT_TRUE(healed);
}

}  // namespace
}  // namespace dpnfs
