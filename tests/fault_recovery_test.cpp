// End-to-end failure recovery under scripted fault injection (part of the
// `faults` ctest label).  Scenarios: an NFS data-server daemon crashing
// mid-write (the client must finish via transport retries, same-DS slice
// retries, layout re-fetch, and MDS fallback — with byte-identical data),
// RPC deadlines that expire instead of hanging, retries appearing as child
// spans of one trace, whole-node crash + revive, a layout recall racing
// in-flight recovery, and disk faults surfacing as I/O errors.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/adapters.hpp"
#include "core/deployment.hpp"
#include "lfs/object_store.hpp"
#include "nfs/client.hpp"
#include "nfs/local_backend.hpp"
#include "nfs/server.hpp"
#include "rpc/fabric.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "util/bytes.hpp"
#include "util/obs.hpp"

namespace dpnfs {
namespace {

using namespace dpnfs::util::literals;
using rpc::Payload;
using sim::Task;

/// Deterministic content for [offset, offset+length): every byte is a
/// function of its absolute file offset, so reassembled reads are checkable
/// regardless of which path (DS or MDS) served them.
Payload pattern_payload(uint64_t offset, uint64_t length) {
  std::vector<std::byte> v(length);
  for (uint64_t i = 0; i < length; ++i) {
    const uint64_t o = offset + i;
    v[i] = static_cast<std::byte>((o * 131 + (o >> 12) * 7 + 13) & 0xFF);
  }
  return Payload::inline_bytes(std::move(v));
}

// ---------------------------------------------------------------------------
// DS daemon crash mid-write on Direct-pNFS -> MDS fallback, correct data
// ---------------------------------------------------------------------------

struct RecoveryOutcome {
  sim::Time finished = 0;
  nfs::ClientStats writer{};
  bool data_ok = false;
  bool export_has_recovery = false;
};

/// One storage node's NFS daemon (port 2049) crashes at kCrashAt — after the
/// first half of the file is written — while the PVFS I/O daemon on the same
/// node keeps serving.  The write must complete through the MDS and the file
/// must read back byte-identical (the MDS path reaches the same stripe
/// objects through the parallel FS).
RecoveryOutcome run_ds_crash_scenario() {
  constexpr sim::Time kCrashAt = sim::sec(1);
  constexpr uint64_t kHalf = 8_MiB;

  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  cfg.nfs_client.ds_timeout = sim::ms(20);
  cfg.nfs_client.ds_rpc_retries = 1;
  cfg.nfs_client.slice_retries = 1;
  cfg.nfs_client.breaker_threshold = 2;
  cfg.nfs_client.breaker_reset = sim::sec(60);
  // Storage nodes get ids 0..3; kill the NFS DS daemon on storage1 only.
  cfg.faults.crash_service(1, rpc::kNfsPort, kCrashAt);

  core::Deployment d(cfg);
  RecoveryOutcome out;
  d.simulation().spawn([](core::Deployment& d, RecoveryOutcome& out,
                          sim::Time crash_at, uint64_t half) -> Task<void> {
    co_await d.mount_all();
    auto f = co_await d.client(0).open("/f", true);
    co_await f->write(0, pattern_payload(0, half));
    co_await f->fsync();

    // Second half lands after the scripted crash.
    auto& sim = d.simulation();
    if (sim.now() <= crash_at) co_await sim.delay(crash_at + sim::ms(1) - sim.now());
    co_await f->write(half, pattern_payload(half, half));
    co_await f->fsync();
    co_await f->close();

    // Read back through the second client: its DS-bound READs recover too.
    auto g = co_await d.client(1).open_read("/f");
    Payload back = co_await g->read(0, 2 * half);
    Payload want = pattern_payload(0, half);
    want.append(pattern_payload(half, half));
    out.data_ok = back == want;
    co_await g->close();
    out.finished = sim.now();
  }(d, out, kCrashAt, kHalf));
  d.simulation().run();

  out.writer =
      dynamic_cast<core::NfsFileSystemClient&>(d.client(0)).native().stats();
  out.export_has_recovery =
      d.metrics_json().find("client.recovery") != std::string::npos;
  return out;
}

TEST(FaultRecovery, DsCrashMidWriteRecoversViaMdsFallback) {
  const RecoveryOutcome out = run_ds_crash_scenario();
  EXPECT_TRUE(out.data_ok);
  EXPECT_GT(out.finished, sim::sec(1));
  EXPECT_GT(out.writer.recovery_retries, 0u);
  EXPECT_GT(out.writer.mds_fallbacks, 0u);
  EXPECT_GE(out.writer.breaker_trips, 1u);
  EXPECT_GT(out.writer.layout_refetches, 0u);
  EXPECT_TRUE(out.export_has_recovery);
}

TEST(FaultRecovery, DsCrashScenarioIsDeterministic) {
  const RecoveryOutcome a = run_ds_crash_scenario();
  const RecoveryOutcome b = run_ds_crash_scenario();
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.data_ok, b.data_ok);
  EXPECT_EQ(a.writer.recovery_retries, b.writer.recovery_retries);
  EXPECT_EQ(a.writer.mds_fallbacks, b.writer.mds_fallbacks);
  EXPECT_EQ(a.writer.breaker_trips, b.writer.breaker_trips);
  EXPECT_EQ(a.writer.layout_refetches, b.writer.layout_refetches);
}

// ---------------------------------------------------------------------------
// RPC-level deadlines, retries, and trace shape
// ---------------------------------------------------------------------------

struct RpcRig {
  sim::Simulation sim;
  sim::Network net{sim};
  rpc::RpcFabric fabric{net};
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  std::unique_ptr<sim::FaultInjector> injector;

  RpcRig() { fabric.set_observability(&metrics, &tracer); }

  sim::Node& add_node(const std::string& name, bool with_disk = false) {
    return net.add_node(sim::NodeParams{
        .name = name,
        .nic = sim::NicParams{.bytes_per_sec = 100e6, .latency = sim::us(10)},
        .disk = with_disk ? std::optional<sim::DiskParams>(sim::DiskParams{})
                          : std::nullopt,
        .cpu = sim::CpuParams{.cores = 2}});
  }

  void inject(sim::FaultPlan plan) {
    injector = std::make_unique<sim::FaultInjector>(std::move(plan));
    net.set_fault_injector(injector.get());
  }
};

rpc::RpcService echo_handler() {
  return [](const rpc::CallContext&, rpc::XdrDecoder&,
            rpc::XdrEncoder& out) -> Task<void> {
    out.put_u32(42);
    co_return;
  };
}

TEST(FaultRecovery, DeadlineExpiryProducesTimedOutNotHang) {
  RpcRig r;
  auto& client_node = r.add_node("client");
  auto& server_node = r.add_node("server");
  rpc::RpcServer server(r.fabric, server_node, rpc::kNfsPort, 2,
                        echo_handler());
  server.start();
  // Daemon down forever: every attempt must expire at its deadline.
  r.inject(sim::FaultPlan{}.crash_service(server_node.id(), rpc::kNfsPort, 0));

  rpc::RpcClient client(r.fabric, client_node, "t@SIM");
  bool done = false;
  rpc::RpcClient::Reply reply;
  r.sim.spawn([](rpc::RpcClient& c, rpc::RpcAddress to, bool& done,
                 rpc::RpcClient::Reply& reply) -> Task<void> {
    reply = co_await c.call(to, rpc::Program::kNfs, 4, 1, rpc::XdrEncoder{},
                            rpc::CallOptions{.timeout = sim::ms(10),
                                             .max_retries = 2,
                                             .backoff = sim::ms(5)});
    done = true;
  }(client, server.address(), done, reply));
  r.sim.run();

  ASSERT_TRUE(done);  // the simulation drained: no hung coroutine
  EXPECT_EQ(reply.transport, rpc::Status::kTimedOut);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_EQ(client.timeouts(), 3u);
  // 3 attempts x 10 ms + backoffs: bounded, far below the 2 s drop fallback.
  EXPECT_LT(r.sim.now(), sim::ms(200));
}

TEST(FaultRecovery, DroppedCallWithoutDeadlineUsesFabricDropTimeout) {
  RpcRig r;
  auto& client_node = r.add_node("client");
  auto& server_node = r.add_node("server");
  rpc::RpcServer server(r.fabric, server_node, rpc::kNfsPort, 2,
                        echo_handler());
  server.start();
  r.inject(sim::FaultPlan{}.crash_service(server_node.id(), rpc::kNfsPort, 0));

  rpc::RpcClient client(r.fabric, client_node, "t@SIM");
  bool done = false;
  rpc::RpcClient::Reply reply;
  r.sim.spawn([](rpc::RpcClient& c, rpc::RpcAddress to, bool& done,
                 rpc::RpcClient::Reply& reply) -> Task<void> {
    reply = co_await c.call(to, rpc::Program::kNfs, 4, 1, rpc::XdrEncoder{});
    done = true;
  }(client, server.address(), done, reply));
  r.sim.run();

  ASSERT_TRUE(done);
  EXPECT_EQ(reply.transport, rpc::Status::kTimedOut);
  EXPECT_GE(r.sim.now(), r.fabric.drop_timeout());
}

TEST(FaultRecovery, RetriedCallsAreChildSpansOfOneTrace) {
  RpcRig r;
  auto& client_node = r.add_node("client");
  auto& server_node = r.add_node("server");
  rpc::RpcServer server(r.fabric, server_node, rpc::kNfsPort, 2,
                        echo_handler());
  server.start();
  // Down long enough to kill attempt 1, back up for the retry.
  r.inject(sim::FaultPlan{}.crash_service(server_node.id(), rpc::kNfsPort, 0,
                                          sim::ms(12)));

  rpc::RpcClient client(r.fabric, client_node, "t@SIM");
  rpc::RpcClient::Reply reply;
  r.sim.spawn([](rpc::RpcClient& c, rpc::RpcAddress to,
                 rpc::RpcClient::Reply& reply) -> Task<void> {
    reply = co_await c.call(to, rpc::Program::kNfs, 4, 1, rpc::XdrEncoder{},
                            rpc::CallOptions{.timeout = sim::ms(10),
                                             .max_retries = 3,
                                             .backoff = sim::ms(4)});
  }(client, server.address(), reply));
  r.sim.run();

  EXPECT_TRUE(reply.ok());
  EXPECT_GE(client.retries(), 1u);
  EXPECT_EQ(r.tracer.traces_started(), 1u);

  std::vector<obs::Span> attempts;
  for (const obs::Span& s : r.tracer.spans()) {
    if (s.kind == obs::SpanKind::kClientCall) attempts.push_back(s);
  }
  ASSERT_GE(attempts.size(), 2u);
  // Attempt 1 anchors the trace; every retry is its child in the same trace.
  const obs::Span& anchor = attempts.front();
  EXPECT_EQ(anchor.parent_span_id, 0u);
  EXPECT_NE(anchor.name.find(" timeout"), std::string::npos);
  EXPECT_EQ(anchor.bytes_in, 0u);
  for (size_t i = 1; i < attempts.size(); ++i) {
    EXPECT_EQ(attempts[i].trace_id, anchor.trace_id);
    EXPECT_EQ(attempts[i].parent_span_id, anchor.span_id);
  }
  EXPECT_EQ(attempts.back().name.find(" timeout"), std::string::npos);
}

TEST(FaultRecovery, NodeCrashAndReviveRecoversWithRetries) {
  RpcRig r;
  auto& client_node = r.add_node("client");
  auto& server_node = r.add_node("server");
  rpc::RpcServer server(r.fabric, server_node, rpc::kNfsPort, 2,
                        echo_handler());
  server.start();
  // The whole machine is unreachable for 50 ms, then comes back.
  r.inject(sim::FaultPlan{}.crash_node(server_node.id(), 0, sim::ms(50)));

  rpc::RpcClient client(r.fabric, client_node, "t@SIM");
  rpc::RpcClient::Reply reply;
  r.sim.spawn([](rpc::RpcClient& c, rpc::RpcAddress to,
                 rpc::RpcClient::Reply& reply) -> Task<void> {
    reply = co_await c.call(to, rpc::Program::kNfs, 4, 1, rpc::XdrEncoder{},
                            rpc::CallOptions{.timeout = sim::ms(20),
                                             .max_retries = 5,
                                             .backoff = sim::ms(10)});
  }(client, server.address(), reply));
  r.sim.run();

  EXPECT_TRUE(reply.ok());
  EXPECT_GE(client.retries(), 1u);
  EXPECT_GE(r.sim.now(), sim::ms(50));  // only succeeded after the revive
}

// ---------------------------------------------------------------------------
// Layout recall racing in-flight recovery
// ---------------------------------------------------------------------------

TEST(FaultRecovery, LayoutRecallDuringRetryCompletes) {
  core::ClusterConfig cfg;
  cfg.architecture = core::Architecture::kDirectPnfs;
  cfg.storage_nodes = 4;
  cfg.clients = 2;
  cfg.nfs_client.ds_timeout = sim::ms(20);
  cfg.nfs_client.ds_rpc_retries = 1;
  cfg.nfs_client.slice_retries = 1;
  cfg.nfs_client.breaker_threshold = 2;
  cfg.nfs_client.breaker_reset = sim::sec(60);
  // storage1's DS daemon is down from the start; client 0's writes to it
  // spend a long time in the retry ladder.
  cfg.faults.crash_service(1, rpc::kNfsPort, 0, sim::sec(30));

  core::Deployment d(cfg);
  bool writer_done = false;
  bool truncator_done = false;
  sim::Latch fsync_started(d.simulation());
  d.simulation().spawn([](core::Deployment& d, bool& writer_done,
                          bool& truncator_done,
                          sim::Latch& fsync_started) -> Task<void> {
    co_await d.mount_all();
    sim::WaitGroup wg(d.simulation());
    wg.spawn([](core::Deployment& d, bool& done,
                sim::Latch& fsync_started) -> Task<void> {
      auto f = co_await d.client(0).open("/f", true);
      co_await f->write(0, pattern_payload(0, 8_MiB));
      fsync_started.set();
      co_await f->fsync();  // retries against dead storage1 -> MDS fallback
      co_await f->close();
      done = true;
    }(d, writer_done, fsync_started));
    wg.spawn([](core::Deployment& d, bool& done,
                sim::Latch& fsync_started) -> Task<void> {
      // Land the SETATTR (and the layout recall it triggers) while client 0
      // is inside the retry ladder: the first WRITE to the dead DS spends
      // >= 40 ms in transport timeouts before the first slice retry.
      co_await fsync_started.wait();
      co_await d.simulation().delay(sim::ms(25));
      auto& peer =
          dynamic_cast<core::NfsFileSystemClient&>(d.client(1)).native();
      co_await peer.truncate("/f", 1_MiB);
      done = true;
    }(d, truncator_done, fsync_started));
    co_await wg.wait();
  }(d, writer_done, truncator_done, fsync_started));
  d.simulation().run();

  EXPECT_TRUE(writer_done);
  EXPECT_TRUE(truncator_done);
  const auto& stats =
      dynamic_cast<core::NfsFileSystemClient&>(d.client(0)).native().stats();
  EXPECT_GT(stats.recovery_retries + stats.mds_fallbacks, 0u);
}

// ---------------------------------------------------------------------------
// Disk faults
// ---------------------------------------------------------------------------

TEST(FaultRecovery, DiskFaultSurfacesAsIoErrorThenHeals) {
  RpcRig r;
  auto& server_node = r.add_node("server", /*with_disk=*/true);
  auto& client_node = r.add_node("client");
  lfs::ObjectStore store(server_node);
  nfs::LocalBackend backend(store);
  nfs::NfsServer server(r.fabric, server_node, rpc::kNfsPort, backend);
  server.start();
  // Disk dead until t = 100 ms; commits in that window must fail cleanly.
  r.inject(sim::FaultPlan{}.fail_disk(server_node.id(), 0, sim::ms(100)));

  nfs::NfsClient client(r.fabric, client_node, server.address(), "t@SIM",
                        nfs::ClientConfig{.pnfs_enabled = false});
  bool failed_during_fault = false;
  bool healed = false;
  r.sim.spawn([](nfs::NfsClient& c, sim::Simulation& sim,
                 bool& failed_during_fault, bool& healed) -> Task<void> {
    co_await c.mount();
    auto f = co_await c.open("/f", true);
    co_await c.write(f, 0, Payload::virtual_bytes(64_KiB));
    try {
      co_await c.fsync(f);  // COMMIT -> flush -> DiskFailedError -> kIo
    } catch (const nfs::NfsError&) {
      failed_during_fault = true;
    }
    co_await sim.delay(sim::ms(150) - sim.now());
    co_await c.write(f, 64_KiB, Payload::virtual_bytes(64_KiB));
    co_await c.fsync(f);  // disk healed: must succeed
    healed = true;
    co_await c.close(f);
  }(client, r.sim, failed_during_fault, healed));
  r.sim.run();

  EXPECT_TRUE(failed_during_fault);
  EXPECT_TRUE(healed);
}

}  // namespace
}  // namespace dpnfs
