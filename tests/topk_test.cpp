// util::TopK: the Space-Saving heavy-hitter tracker behind per-tenant
// accounting.  The contracts under test are the ones TenantLedger leans on:
// exact counts while distinct keys fit, deterministic eviction, associative
// merge in the exact regime, and O(K) memory no matter how many distinct
// keys stream past.
#include "util/topk.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace dpnfs::util {
namespace {

struct Payload {
  uint64_t sum = 0;
  void merge(const Payload& o) { sum += o.sum; }
};

using Tracker = TopK<Payload>;

TEST(TopK, ExactWhileUnderCapacity) {
  Tracker t(8);
  for (uint64_t round = 1; round <= 3; ++round) {
    for (uint64_t key = 1; key <= 5; ++key) {
      t.update(key, key).sum += key;
    }
  }
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.seen(), 5u);
  EXPECT_EQ(t.evicted(), 0u);
  for (uint64_t key = 1; key <= 5; ++key) {
    const Tracker::Entry* e = t.find(key);
    ASSERT_NE(e, nullptr) << "key " << key;
    EXPECT_EQ(e->weight, 3 * key);
    EXPECT_EQ(e->error, 0u);
    EXPECT_EQ(e->value.sum, 3 * key);
  }
  EXPECT_EQ(t.find(99), nullptr);
}

TEST(TopK, SortedOrdersByWeightThenKey) {
  Tracker t(8);
  t.update(3, 10);
  t.update(1, 20);
  t.update(7, 10);  // ties key 3 on weight; smaller key sorts first
  t.update(2, 30);
  const std::vector<Tracker::Entry> s = t.sorted();
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0].key, 2u);
  EXPECT_EQ(s[1].key, 1u);
  EXPECT_EQ(s[2].key, 3u);
  EXPECT_EQ(s[3].key, 7u);
}

TEST(TopK, EvictionIsDeterministicAndBoundsError) {
  Tracker t(3);
  t.update(1, 10);
  t.update(2, 5);
  t.update(3, 7);
  // Key 4 arrives at capacity: the minimum (key 2, weight 5) is evicted and
  // the newcomer inherits its weight as the error bound.
  t.update(4, 1);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.evicted(), 1u);
  EXPECT_EQ(t.find(2), nullptr);
  const Tracker::Entry* e = t.find(4);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->weight, 6u);  // 5 inherited + 1 increment
  EXPECT_EQ(e->error, 5u);
  // Payload restarted fresh — it never belonged to key 2.
  EXPECT_EQ(e->value.sum, 0u);
}

TEST(TopK, EvictionTieBreaksOnSmallerKey) {
  Tracker t(2);
  t.update(9, 4);
  t.update(5, 4);  // same weight as key 9
  t.update(1, 1);  // must evict key 5 (smaller key among the tied minima)
  EXPECT_EQ(t.find(5), nullptr);
  ASSERT_NE(t.find(9), nullptr);
  ASSERT_NE(t.find(1), nullptr);
}

TEST(TopK, IdenticalStreamsProduceIdenticalTrackers) {
  auto feed = [] {
    Tracker t(4);
    for (uint64_t i = 0; i < 200; ++i) {
      t.update(i % 11 + 1, (i * 7) % 5 + 1);
    }
    return t.sorted();
  };
  const auto a = feed();
  const auto b = feed();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].weight, b[i].weight);
    EXPECT_EQ(a[i].error, b[i].error);
  }
}

TEST(TopK, MergeIsAssociativeInExactRegime) {
  // Three trackers over disjoint-ish key sets, union still <= capacity:
  // merge order must not matter.
  auto make = [](uint64_t base) {
    Tracker t(8);
    t.update(base, base * 2).sum += base;
    t.update(base + 1, 3).sum += 1;
    t.update(7, 1).sum += 7;  // shared key across all three
    return t;
  };
  Tracker left = make(1);   // keys 1,2,7
  Tracker mid = make(3);    // keys 3,4,7
  Tracker right = make(5);  // keys 5,6,7

  Tracker ab = make(1);
  ab.merge(mid);
  ab.merge(right);  // (a+b)+c

  Tracker bc = make(3);
  bc.merge(right);
  Tracker a_bc = make(1);
  a_bc.merge(bc);  // a+(b+c)

  const auto lhs = ab.sorted();
  const auto rhs = a_bc.sorted();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].key, rhs[i].key);
    EXPECT_EQ(lhs[i].weight, rhs[i].weight);
    EXPECT_EQ(lhs[i].error, rhs[i].error);
    EXPECT_EQ(lhs[i].value.sum, rhs[i].value.sum);
  }
  EXPECT_EQ(ab.evicted(), 0u);
  const Tracker::Entry* shared = ab.find(7);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->weight, 3u);
  EXPECT_EQ(shared->value.sum, 21u);
}

TEST(TopK, MergeTruncatesBackToCapacityDeterministically) {
  Tracker a(3);
  a.update(1, 10);
  a.update(2, 8);
  a.update(3, 6);
  Tracker b(3);
  b.update(4, 9);
  b.update(5, 7);
  b.update(6, 5);
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.evicted(), 3u);  // union of 6 truncated to 3
  const auto s = a.sorted();
  EXPECT_EQ(s[0].key, 1u);
  EXPECT_EQ(s[1].key, 4u);
  EXPECT_EQ(s[2].key, 2u);
}

TEST(TopK, MemoryBoundedAtTenThousandDistinctKeys) {
  constexpr size_t kCap = 16;
  Tracker t(kCap);
  // A heavy hitter interleaved with a long tail of one-shot keys: the tail
  // churns through the tracker but can never displace the heavy key, and
  // residency never exceeds capacity.
  constexpr uint64_t kHeavy = 424242;
  for (uint64_t i = 0; i < 10'000; ++i) {
    t.update(kHeavy, 100);
    t.update(1'000'000 + i, 1);
    ASSERT_LE(t.size(), kCap);
  }
  EXPECT_EQ(t.size(), kCap);
  EXPECT_EQ(t.seen(), 10'001u);
  EXPECT_GT(t.evicted(), 9'000u);
  const Tracker::Entry* heavy = t.find(kHeavy);
  ASSERT_NE(heavy, nullptr);
  EXPECT_EQ(heavy->weight, 1'000'000u);
  EXPECT_EQ(heavy->error, 0u);  // inserted first, never evicted
  // Space-Saving guarantee: every resident entry's true weight lies in
  // [weight - error, weight].
  for (const auto& e : t.sorted()) {
    EXPECT_GE(e.weight, e.error);
  }
}

TEST(TopK, ZeroIncrementStillInsertsKey) {
  // TenantLedger::account_data uses update(key, 0) so pure-data tenants are
  // resident even before their first counted RPC.
  Tracker t(4);
  t.update(12, 0).sum += 99;
  const Tracker::Entry* e = t.find(12);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->weight, 0u);
  EXPECT_EQ(e->value.sum, 99u);
  EXPECT_EQ(t.seen(), 1u);
}

}  // namespace
}  // namespace dpnfs::util
